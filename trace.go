package realrate

import (
	"io"
	"time"

	"repro/internal/trace"
)

// TraceSummary is the per-thread scheduling aggregate from an enabled
// trace: how often and how long the thread ran, and how quickly it was
// dispatched after waking.
type TraceSummary struct {
	Thread      string
	Segments    int
	TotalRun    time.Duration
	MeanSegment time.Duration
	Longest     time.Duration
	Wakes       int
	// LatencyP50/P99 are wake-to-dispatch scheduling latencies.
	LatencyP50, LatencyP99 time.Duration
}

// Tracing provides access to an enabled scheduler trace.
type Tracing struct {
	rec *trace.Recorder
}

// EnableTracing starts recording scheduler events (dispatches, wakes,
// blocks). maxEvents bounds the raw log (0 keeps everything); aggregates
// are unaffected by the bound. Call before Run.
//
// The recorder is fed through the same observer hub as System.Observe, so
// tracing and observers compose.
func (s *System) EnableTracing(maxEvents int) *Tracing {
	rec := trace.NewRecorder()
	rec.MaxEvents = maxEvents
	// On a multi-CPU machine the CSV grows a cpu column (migrations show
	// "from>to"); single-CPU traces keep the pre-SMP format byte-for-byte.
	rec.MultiCPU = s.kern.NumCPUs() > 1
	s.hub.rec = rec
	s.hub.install()
	return &Tracing{rec: rec}
}

// Summaries returns per-thread aggregates sorted by thread name.
func (t *Tracing) Summaries() []TraceSummary {
	sums := t.rec.Summaries()
	out := make([]TraceSummary, len(sums))
	for i, s := range sums {
		out[i] = TraceSummary{
			Thread:      s.Thread,
			Segments:    s.Segments,
			TotalRun:    time.Duration(s.TotalRun),
			MeanSegment: time.Duration(s.MeanSegment),
			Longest:     time.Duration(s.Longest),
			Wakes:       s.Wakes,
			LatencyP50:  time.Duration(s.LatencyP50),
			LatencyP99:  time.Duration(s.LatencyP99),
		}
	}
	return out
}

// WriteCSV dumps the raw event log (time, kind, thread, segment length,
// wait queue).
func (t *Tracing) WriteCSV(w io.Writer) error { return t.rec.WriteCSV(w) }

// Print writes the per-thread summary table.
func (t *Tracing) Print(w io.Writer) { t.rec.PrintSummaries(w) }
