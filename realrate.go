// Package realrate is a feedback-driven proportion allocator for real-rate
// scheduling: a reproduction of Steere, Goel, Gruenberg, McNamee, Pu, and
// Walpole's OSDI 1999 paper as a Go library.
//
// The library simulates a machine (a single-CPU 400 MHz Linux 2.0.35 box
// by default; Config.CPUs builds an SMP machine with work-pull migration
// and per-thread affinity) whose scheduler allocates CPU by proportion and
// period instead of priority. A feedback controller assigns both
// automatically from observations of application progress through
// symbiotic interfaces — bounded buffers that expose their fill level to
// the kernel:
//
//	sys := realrate.NewSystem(realrate.Config{})
//	q := sys.NewQueue("pipe", 1<<20)
//	prod, _ := sys.Spawn("producer", producerProg,
//	    realrate.Reserve(100, 10*time.Millisecond))
//	cons, _ := sys.Spawn("consumer", consumerProg,
//	    realrate.RealRate(0, realrate.ConsumerOf(q)))
//	sys.Run(10 * time.Second)
//
// Threads fall into the paper's Figure 2 taxonomy, expressed as Spawn
// options: Reserve declares proportion and period (a reservation, honored
// after admission control); Aperiodic declares proportion only; RealRate
// supplies progress sources and gets both estimated; a thread spawned with
// no class option is miscellaneous — it supplies nothing and is grown by a
// constant-pressure heuristic until satisfied or squished. Interactive
// threads get a small period and a proportion estimated from their burst
// lengths; Unmanaged threads run outside the controller entirely.
//
// Three further seams make the stack pluggable: Config.Policy swaps the
// scheduling discipline (the paper's RBS against the Stride, Lottery,
// Linux-goodness, and RoundRobin baselines); ProgressSource generalizes
// the progress metric (kernel queues via ConsumerOf/ProducerOf, work-unit
// paces via NewPace, or any user-implemented metric — §4.5's "any
// measurable work unit"); and Observer taps dispatches, actuations,
// admission decisions, and quality exceptions without touching the hot
// paths when unused.
package realrate

import (
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/overload"
	"repro/internal/progress"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// PPT is the proportion denominator: allocations are in parts-per-thousand
// of the CPU.
const PPT = 1000

// Config configures a System. The zero value reproduces the paper's
// testbed: 400 MHz CPU, 1 ms dispatch tick, 100 Hz controller, feedback
// reservation scheduling.
type Config struct {
	// Policy is the scheduling discipline. Nil selects RBS(), the paper's
	// feedback reservation scheduler; Stride, Lottery, Linux, and
	// RoundRobin select the comparison baselines (which run without the
	// feedback controller). The instance must not be shared between
	// systems.
	Policy Policy
	// CPUs is the number of CPUs of the simulated machine (default 1, the
	// paper's testbed). With N CPUs the machine's capacity is N×1000 ppt:
	// the admission ceiling and the squish scale accordingly, threads can
	// be pinned with the Affinity spawn option, and idle CPUs work-pull
	// runnable threads from their peers (observable via
	// Observer.OnMigration). CPUs=1 reproduces the paper's dispatch
	// schedules byte-for-byte.
	CPUs int
	// ClockHz is the simulated CPU clock rate (default 400 MHz).
	ClockHz int64
	// TickInterval is the timer-interrupt (dispatch) interval, default 1ms.
	TickInterval time.Duration
	// ControllerInterval is the feedback controller's period, default 10ms.
	ControllerInterval time.Duration
	// OverloadThreshold is the admission/squish ceiling in ppt, default
	// 900 (the spare 100 covers scheduling and interrupt overhead).
	OverloadThreshold int
	// PeriodAdaptation enables the period heuristic of §3.3 (off by
	// default, as in all the paper's experiments).
	PeriodAdaptation bool
	// PreciseAccounting ends run segments exactly at budget exhaustion
	// instead of at tick granularity (§4.3's proposed improvement).
	PreciseAccounting bool
	// DispatchCost, TickCost, SwitchCost override the kernel overhead
	// model in cycles (defaults reproduce Figure 8's knee).
	DispatchCost, TickCost, SwitchCost int64
	// Controller overrides the controller tuning; zero fields keep
	// defaults. Most users never touch this.
	Controller ControllerTuning
	// Faults installs a seeded, declarative fault-injection schedule (see
	// FaultPlan): corrupted progress signals, clock jitter, CPU stalls,
	// stuck threads, dropped/delayed actuations. Nil — the default —
	// costs nothing: the hot paths pay one nil check and the dispatch
	// schedule is byte-identical to a build without the fault apparatus.
	Faults *FaultPlan
	// Overload installs the supervisory overload governor and enables SLO
	// latency accounting (see OverloadConfig and System.SLO). Nil — the
	// default — costs nothing: the hot paths pay one nil check and the
	// dispatch schedule is byte-identical to a build without the governor.
	Overload *OverloadConfig
	// CtlPlane configures the sharded, staggered, event-driven control
	// plane for machines with very many jobs. The zero value — one shard,
	// periodic — keeps the classic controller thread and its
	// byte-identical dispatch schedule.
	CtlPlane CtlPlaneConfig
	// DisablePools turns off free-list recycling of the spawn→exit life
	// cycle: kernel thread slots, reservation segments, scheduler
	// per-thread state, and controller jobs are then left to the garbage
	// collector instead of being reissued to later spawns. Recycling is
	// on by default — it changes no dispatch schedule (pools preserve
	// enqueue-sequence tie-breaks and observer event order) and cuts
	// allocation churn by an order of magnitude under open-loop spawn
	// storms. The knob exists for A/B verification of exactly that claim.
	DisablePools bool
}

// ControllerTuning exposes the controller knobs that experiments vary.
type ControllerTuning struct {
	// K is the pressure-to-proportion gain (ppt per unit pressure).
	K float64
	// Kp, Ki, Kd are the PID gains of the pressure filter G.
	Kp, Ki, Kd float64
	// MiscPressure is the constant pressure for miscellaneous threads.
	MiscPressure float64
	// ReclaimFraction and ReclaimC tune Figure 4's P−C reclamation.
	ReclaimFraction float64
	ReclaimC        int
	// BaseCost and PerJobCost model the controller's own per-interval
	// execution cost in cycles (Figure 5's intercept and slope).
	BaseCost, PerJobCost int64
	// WatchdogIntervals is how many consecutive flat (or rejected)
	// progress samples demote a real-rate thread one rung down the
	// degradation ladder (default 50, i.e. half a second at 100 Hz;
	// negative disables the watchdog). WatchdogRecovery is how many
	// consecutive moving samples promote it one rung back (default 5).
	WatchdogIntervals int
	WatchdogRecovery  int
}

// System is a simulated machine: kernel, scheduling policy, progress
// registry, and — under the default RBS policy — the feedback controller.
type System struct {
	eng    *sim.Engine
	kern   *kernel.Kernel
	policy kernel.Policy
	// rbs is the reservation dispatcher when the policy is RBS, nil under
	// a baseline policy.
	rbs *rbs.Policy
	reg *progress.Registry
	// ctl is nil under baseline policies: no feedback allocator runs.
	ctl *core.Controller
	// plane is the sharded control plane when Config.CtlPlane asks for
	// one; nil keeps the classic controller thread.
	plane *ctlplane.Plane

	// byKern maps kernel threads back to their public handles, so quality
	// events and observer callbacks stay O(1) at 10k threads. Entries are
	// dropped when the thread exits (see threadExited), so admission churn
	// cannot grow the map without bound.
	byKern map[*kernel.Thread]*Thread

	// thSlab is the current chunk backing public Thread handles. Handles
	// are deliberately NOT pooled — a caller may hold one long after the
	// thread exits and read its frozen statistics — but carving them from
	// slab chunks makes an admission storm cost 1/256th of an allocation
	// per spawn instead of one.
	thSlab []Thread
	// qSlab backs public Queue wrappers the same way.
	qSlab []Queue

	hub       observerHub
	onQuality func(QualityEvent)

	// slo is the wake→dispatch latency tracker, nil without
	// Config.Overload.
	slo *sloTracker

	// faults is the compiled fault injector, nil without Config.Faults.
	faults *faults.Injector
	// stuckCycles is the spin-burst length for StuckThread faults (1 ms
	// of this machine's clock), precomputed so the hijacked program path
	// does not divide on every step.
	stuckCycles sim.Cycles
	// srcRejects counts NaN/Inf values refused by the custom-source
	// clamping adapter (see customMetric), feeding Health.
	srcRejects uint64

	// pooled mirrors !Config.DisablePools: exited threads' slots and
	// controller jobs are recycled, so exits must be reaped eagerly (see
	// threadExited) and handles carry their slot generation.
	pooled bool

	started bool
}

// NewSystem builds a machine from the configuration.
func NewSystem(cfg Config) *System {
	kcfg := kernel.DefaultConfig()
	if cfg.CPUs > 0 {
		kcfg.CPUs = cfg.CPUs
	}
	if cfg.ClockHz > 0 {
		kcfg.ClockRate = sim.Hz(cfg.ClockHz)
	}
	if cfg.TickInterval > 0 {
		kcfg.TickInterval = sim.FromStd(cfg.TickInterval)
	}
	if cfg.DispatchCost > 0 {
		kcfg.DispatchCost = sim.Cycles(cfg.DispatchCost)
	}
	if cfg.TickCost > 0 {
		kcfg.TickCost = sim.Cycles(cfg.TickCost)
	}
	if cfg.SwitchCost > 0 {
		kcfg.SwitchCost = sim.Cycles(cfg.SwitchCost)
	}

	// Resolve the policy seam: unwrap public wrappers so the kernel's
	// dispatch hot path calls the scheduler directly, and identify RBS so
	// the feedback controller can be wired to it.
	var kpol kernel.Policy
	switch p := cfg.Policy.(type) {
	case nil:
		kpol = rbs.New()
	case kernelPolicyHolder:
		kpol = p.kernelPolicy()
	default:
		kpol = p
	}
	rbsPol, _ := kpol.(*rbs.Policy)
	if rbsPol != nil {
		rbsPol.PreciseAccounting = cfg.PreciseAccounting
	}

	eng := sim.NewEngine()
	kern := kernel.New(eng, kcfg, kpol)
	reg := progress.NewRegistry()

	ccfg := core.Config{}
	if cfg.ControllerInterval > 0 {
		ccfg.Interval = sim.FromStd(cfg.ControllerInterval)
	}
	if cfg.OverloadThreshold > 0 {
		ccfg.OverloadThreshold = cfg.OverloadThreshold
	}
	ccfg.PeriodAdaptation = cfg.PeriodAdaptation
	t := cfg.Controller
	if t.K != 0 {
		ccfg.K = t.K
	}
	def := core.DefaultConfig()
	if t.Kp != 0 || t.Ki != 0 || t.Kd != 0 {
		ccfg.PID = def.PID
		if t.Kp != 0 {
			ccfg.PID.Kp = t.Kp
		}
		if t.Ki != 0 {
			ccfg.PID.Ki = t.Ki
		}
		if t.Kd != 0 {
			ccfg.PID.Kd = t.Kd
		}
	}
	if t.MiscPressure != 0 {
		ccfg.MiscPressure = t.MiscPressure
	}
	if t.ReclaimFraction != 0 {
		ccfg.ReclaimFraction = t.ReclaimFraction
	}
	if t.ReclaimC != 0 {
		ccfg.ReclaimC = t.ReclaimC
	}
	if t.BaseCost != 0 {
		ccfg.BaseCost = sim.Cycles(t.BaseCost)
	}
	if t.PerJobCost != 0 {
		ccfg.PerJobCost = sim.Cycles(t.PerJobCost)
	}
	ccfg.WatchdogIntervals = t.WatchdogIntervals
	ccfg.WatchdogRecovery = t.WatchdogRecovery

	s := &System{
		eng:    eng,
		kern:   kern,
		policy: kpol,
		rbs:    rbsPol,
		reg:    reg,
		byKern: make(map[*kernel.Thread]*Thread),
	}
	s.hub.sys = s
	kern.SetExitHook(s.threadExited)
	if cfg.Faults != nil && len(cfg.Faults.Specs) > 0 {
		s.faults = s.buildInjector(cfg.Faults)
		s.stuckCycles = sim.DurationToCycles(sim.Millisecond, kcfg.ClockRate)
		kern.SetFaultInjector(s.faults)
	}
	if rbsPol != nil {
		s.ctl = core.New(kern, rbsPol, reg, ccfg)
		// Quality exceptions and faults are rare, so the hooks are
		// installed unconditionally; they fan out to observers.
		s.ctl.OnQuality(s.fireQuality)
		s.ctl.OnFault(s.fireFault)
		s.ctl.OnDegrade(s.fireDegrade)
		s.ctl.OnRecover(s.fireRecover)
		if s.faults != nil {
			s.ctl.SetFaults(s.faults)
		}
	}
	if cfg.Overload != nil {
		// SLO accounting taps the kernel's wake/dispatch edges through the
		// observer hub, under every policy; the brownout ladder itself
		// needs the controller's saturation signals, so it only runs under
		// the feedback policy.
		s.slo = newSLOTracker(s, cfg.Overload.LatencySLO, cfg.Overload.SessionSLO)
		s.hub.slo = s.slo
		s.hub.install()
		if s.ctl != nil {
			s.ctl.SetGovernor(overload.New(cfg.Overload.governorConfig()))
			s.ctl.OnShed(s.fireShed)
			s.ctl.OnRungChange(s.fireOverload)
			if cfg.Overload.LatencyTrip > 0 {
				// The probe sorts the recent latency window every control
				// interval — only worth paying when the ladder is actually
				// latency-driven.
				s.ctl.SetSLOProbe(s.slo.recentP99)
			}
		}
	}
	if s.ctl != nil && !cfg.CtlPlane.legacy() {
		// Built last so the plane sees the fully-wired controller; it
		// claims the controller's job-change hooks and — in event mode —
		// the registry's dirty hook.
		s.plane = buildPlane(s, cfg.CtlPlane)
	}
	if !cfg.DisablePools {
		s.pooled = true
		kern.SetRecycle(true)
		if rbsPol != nil {
			rbsPol.SetRecycle(true)
		}
		if s.ctl != nil {
			s.ctl.SetRecycle(true)
		}
	}
	return s
}

// PolicyName returns the name of the scheduling policy driving the system.
func (s *System) PolicyName() string { return s.policy.Name() }

// Run advances the simulation by d, starting the machine and controller on
// the first call.
func (s *System) Run(d time.Duration) {
	if !s.started {
		s.started = true
		if s.plane != nil {
			s.plane.Start()
		} else if s.ctl != nil {
			s.ctl.Start()
		}
		s.kern.Start()
	}
	s.eng.RunFor(sim.FromStd(d))
}

// Stop halts dispatching; Run may still be used to drain time.
func (s *System) Stop() { s.kern.Stop() }

// Now returns the current simulated time since system creation.
func (s *System) Now() time.Duration { return time.Duration(s.kern.Now()) }

// After schedules fn to be called once, with the simulated timestamp, d
// after the current simulated instant. Unlike Every it fires exactly once;
// open-loop workload drivers use it to inject arrivals, removals, and
// renegotiations at precomputed instants. The callback may spawn or kill
// threads. Call before or between Runs, or from another callback.
func (s *System) After(d time.Duration, fn func(now time.Duration)) {
	iv := sim.FromStd(d)
	if iv < 0 {
		panic("realrate: negative delay")
	}
	s.eng.After(iv, func(now sim.Time) { fn(time.Duration(now)) })
}

// Timer is a reusable one-shot simulation timer: the callback is wired
// once at creation and the timer is re-armed with Arm, reusing the
// engine's pooled event object. Open-loop drivers firing hundreds of
// thousands of irregular arrivals use one Timer re-armed from inside its
// own callback instead of one System.After closure per arrival.
type Timer struct {
	sys *System
	fn  func(now time.Duration)
	efn func(sim.Time)
	ev  *sim.Event
	// firing marks the span of the callback itself; armed marks a pending
	// schedule. Together they tell Arm whether the engine event object is
	// still ours to re-arm or has been recycled.
	firing, armed bool
}

// NewTimer returns an unarmed timer that will call fn at each instant it
// is armed for.
func (s *System) NewTimer(fn func(now time.Duration)) *Timer {
	t := &Timer{sys: s, fn: fn}
	t.efn = func(now sim.Time) {
		t.firing, t.armed = true, false
		t.fn(time.Duration(now))
		t.firing = false
		if !t.armed {
			t.ev = nil // the engine recycles the event once we return
		}
	}
	return t
}

// Arm schedules the timer to fire once, d from now. Arming a pending
// timer moves it; re-arming from inside the callback is the periodic
// idiom and costs no allocation.
func (t *Timer) Arm(d time.Duration) {
	iv := sim.FromStd(d)
	if iv < 0 {
		panic("realrate: negative delay")
	}
	when := t.sys.eng.Now().Add(iv)
	if t.ev != nil && (t.firing || t.armed) {
		t.sys.eng.Reschedule(t.ev, when)
	} else {
		t.ev = t.sys.eng.At(when, t.efn)
	}
	t.armed = true
}

// Every schedules fn to be called with the simulated timestamp every
// interval, forever. Call before or between Runs.
func (s *System) Every(interval time.Duration, fn func(now time.Duration)) {
	iv := sim.FromStd(interval)
	if iv <= 0 {
		panic("realrate: non-positive sampling interval")
	}
	var tick func(sim.Time)
	tick = func(now sim.Time) {
		fn(time.Duration(now))
		s.eng.After(iv, tick)
	}
	s.eng.After(iv, tick)
}

// OnQuality installs a callback for quality exceptions: raised when
// sustained overload squishes a job below what its progress requires.
// Under a baseline policy no controller runs, so the callback never fires.
func (s *System) OnQuality(fn func(QualityEvent)) { s.onQuality = fn }

// fireQuality translates a controller exception to the public event and
// fans it out to the OnQuality callback and every observer.
func (s *System) fireQuality(ex core.QualityException) {
	ev := QualityEvent{
		Thread:    s.byKern[ex.Job.Thread()],
		Time:      time.Duration(ex.Time),
		Pressure:  ex.Pressure,
		Desired:   ex.Desired,
		Allocated: ex.Allocated,
		Reason:    ex.Reason,
	}
	if s.onQuality != nil {
		s.onQuality(ev)
	}
	for _, o := range s.hub.obs {
		o.OnQuality(ev)
	}
}

// QualityEvent is a quality exception surfaced to the application.
type QualityEvent struct {
	Thread    *Thread
	Time      time.Duration
	Pressure  float64
	Desired   int
	Allocated int
	Reason    string
}

// Stats is machine-level accounting. Idle, SchedOverhead, and the event
// counters are summed over all CPUs; the machine's capacity is
// Elapsed × CPUs.
type Stats struct {
	Elapsed         time.Duration
	Idle            time.Duration
	SchedOverhead   time.Duration
	Dispatches      uint64
	Ticks           uint64
	ContextSwitches uint64
	Migrations      uint64
	CPUs            int
	MissedDeadlines uint64
	ControllerSteps uint64
	Actuations      uint64
}

// CPUStat is one CPU's accounting snapshot.
type CPUStat struct {
	// CPU is the CPU index.
	CPU int
	// Current is the thread running there right now (nil when idle, or
	// when the occupant has no public handle, e.g. the controller).
	Current *Thread
	// Idle is the time this CPU spent with nothing to run.
	Idle time.Duration
	// Dispatches and Switches count scheduler activity on this CPU.
	Dispatches uint64
	Switches   uint64
	// Migrations counts threads pulled onto this CPU by work-pull.
	Migrations uint64
}

// Stats returns a snapshot of machine accounting. Under a baseline policy
// the controller and missed-deadline counters stay zero.
func (s *System) Stats() Stats {
	ks := s.kern.Stats()
	st := Stats{
		Elapsed:         time.Duration(ks.Elapsed),
		Idle:            time.Duration(ks.Idle),
		SchedOverhead:   time.Duration(ks.Overhead),
		Dispatches:      ks.Dispatches,
		Ticks:           ks.Ticks,
		ContextSwitches: ks.Switches,
		Migrations:      ks.Migrations,
		CPUs:            ks.CPUs,
	}
	if s.rbs != nil {
		st.MissedDeadlines = s.rbs.MissedDeadlines()
	}
	if s.ctl != nil {
		st.ControllerSteps = s.ctl.Steps()
		st.Actuations = s.ctl.Actuations()
	}
	return st
}

// CPUs returns the machine's CPU count.
func (s *System) CPUs() int { return s.kern.NumCPUs() }

// CPUStats returns a per-CPU accounting snapshot: the thread each CPU is
// running, its idle time, and its dispatch/switch/migration counters.
// cmd/rrtop's per-CPU columns read from here instead of scanning threads.
func (s *System) CPUStats() []CPUStat {
	out := make([]CPUStat, s.kern.NumCPUs())
	for i := range out {
		ks := s.kern.CPUStatsOf(i)
		out[i] = CPUStat{
			CPU:        i,
			Idle:       time.Duration(ks.Idle),
			Dispatches: ks.Dispatches,
			Switches:   ks.Switches,
			Migrations: ks.MigrationsIn,
		}
		if t := s.kern.CurrentOn(i); t != nil {
			out[i].Current = s.byKern[t]
		}
	}
	return out
}

// ControllerCPU returns the CPU time consumed by the controller thread —
// the overhead Figure 5 measures. Zero under baseline policies.
func (s *System) ControllerCPU() time.Duration {
	if s.ctl == nil {
		return 0
	}
	if s.plane != nil {
		return time.Duration(s.plane.CPUTime())
	}
	t := s.ctl.Thread()
	if t == nil {
		return 0
	}
	return time.Duration(t.CPUTime())
}

// TotalProportion returns the summed proportions of all registered threads
// (the overload signal). Zero under baseline policies, which have no
// reservations.
func (s *System) TotalProportion() int {
	if s.rbs == nil {
		return 0
	}
	return s.rbs.TotalProportion()
}
