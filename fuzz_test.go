package realrate

import (
	"testing"
	"time"

	"repro/internal/kernel"
)

// decodeSpawnOptions turns fuzz bytes into one Spawn's option list. Every
// option constructor is reachable, with both valid and invalid arguments,
// so the fuzzer explores the full combinator lattice (conflicting classes,
// option-after-class errors, policy-specific options on the wrong policy).
func decodeSpawnOptions(data []byte, sys *System, q *Queue, lead *Thread) ([]SpawnOption, []byte) {
	var opts []SpawnOption
	n := 1 + int(data[0]%4) // 1..4 options per spawn
	data = data[1:]
	for i := 0; i < n && len(data) >= 2; i++ {
		arg := int(data[1])
		switch data[0] % 10 {
		case 0:
			opts = append(opts, Reserve(arg*8, time.Duration(1+arg%50)*time.Millisecond))
		case 1:
			opts = append(opts, Aperiodic(arg*8))
		case 2:
			opts = append(opts, RealRate(time.Duration(arg%40)*time.Millisecond, ConsumerOf(q)))
		case 3:
			opts = append(opts, RealRate(0)) // always an error: no sources
		case 4:
			opts = append(opts, Interactive())
		case 5:
			opts = append(opts, Miscellaneous())
		case 6:
			opts = append(opts, Unmanaged())
		case 7:
			opts = append(opts, InJob(lead))
		case 8:
			opts = append(opts, Importance(float64(arg)-8)) // negative and zero reachable
		case 9:
			if arg%2 == 0 {
				opts = append(opts, Tickets(int64(arg)-16))
			} else {
				opts = append(opts, Nice(arg%40-20))
			}
		}
		data = data[2:]
	}
	return opts, data
}

// TestExitUnregistersProgressUnderBaseline guards the baseline half of the
// exit path: with no controller running, the kernel exit hook alone must
// unlink a dead thread's progress registration — otherwise open-loop
// paced/real-rate arrivals under a baseline policy grow the registry
// without bound.
func TestExitUnregistersProgressUnderBaseline(t *testing.T) {
	sys := NewSystem(Config{Policy: Stride(10 * time.Millisecond)})
	pace := NewPace("w", 100, 50)
	th, err := sys.Spawn("w", ProgramFunc(func(th *Thread, now time.Duration) Action {
		return Exit()
	}), RealRate(30*time.Millisecond, pace))
	if err != nil {
		t.Fatal(err)
	}
	if !sys.reg.HasMetrics(th.t) {
		t.Fatal("progress source not registered at spawn")
	}
	sys.Run(100 * time.Millisecond)
	if th.State() != "exited" {
		t.Fatalf("thread did not exit: %v", th.State())
	}
	if sys.reg.HasMetrics(th.t) {
		t.Fatal("exited thread leaked its progress registration (no controller to reap it)")
	}
	if _, ok := sys.byKern[th.t]; ok {
		t.Fatal("exited thread leaked its byKern entry")
	}
}

// FuzzSpawnOptions drives random option sets through System.Spawn on every
// policy and asserts the error-vs-retire consistency contract: a Spawn
// that returns an error must leave no trace — the kernel thread it may
// have created is fully retired (Kernel.Retire), never runs, keeps no
// progress registration, and is absent from the public index — while a
// successful Spawn yields a live, indexed, schedulable thread.
func FuzzSpawnOptions(f *testing.F) {
	f.Add([]byte{2, 0, 50, 1, 10})             // reserve + aperiodic conflict
	f.Add([]byte{1, 2, 0, 3, 0, 7, 0})         // real-rate; no-source; injob
	f.Add([]byte{3, 8, 0, 9, 2, 9, 3})         // invalid importance + tickets + nice
	f.Add([]byte{1, 0, 120, 1, 0, 120, 0, 50}) // oversubscription
	f.Add([]byte{4, 6, 0, 8, 12, 5, 0, 2, 9})

	policies := []func() Policy{
		func() Policy { return nil },
		func() Policy { return Stride(10 * time.Millisecond) },
		func() Policy { return Lottery(10*time.Millisecond, 99) },
		func() Policy { return Linux() },
		func() Policy { return RoundRobin(10 * time.Millisecond) },
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		sys := NewSystem(Config{Policy: policies[int(data[0])%len(policies)]()})
		data = data[1:]
		q := sys.NewQueue("q", 1<<16)
		lead, err := sys.Spawn("lead", HogProgram(100_000))
		if err != nil {
			t.Fatalf("lead spawn: %v", err)
		}

		type rejected struct{ th *kernel.Thread }
		var rejects []rejected
		for len(data) >= 3 {
			var opts []SpawnOption
			opts, data = decodeSpawnOptions(data, sys, q, lead)
			before := len(sys.kern.Threads())
			th, err := sys.Spawn("fuzzed", HogProgram(200_000), opts...)
			created := sys.kern.Threads()[before:]
			if err != nil {
				if th != nil {
					t.Fatalf("Spawn returned both a handle and an error: %v", err)
				}
				// Error-vs-retire consistency: anything created on the way
				// to the error is exited, unindexed, and unregistered.
				for _, kt := range created {
					if kt.State() != kernel.StateExited {
						t.Fatalf("rejected spawn left thread in state %v (opts error: %v)", kt.State(), err)
					}
					if _, ok := sys.byKern[kt]; ok {
						t.Fatalf("rejected spawn left a stale byKern entry (opts error: %v)", err)
					}
					if sys.reg.HasMetrics(kt) {
						t.Fatalf("rejected spawn left progress metrics registered (opts error: %v)", err)
					}
					rejects = append(rejects, rejected{kt})
				}
				continue
			}
			if th.State() == "exited" {
				t.Fatal("successful spawn returned an exited thread")
			}
			if sys.byKern[th.t] != th {
				t.Fatal("successful spawn not indexed")
			}
		}

		// The machine must run with whatever mix was admitted, and the
		// rejected threads must never consume CPU.
		sys.Run(30 * time.Millisecond)
		for _, r := range rejects {
			if r.th.CPUTime() != 0 {
				t.Fatalf("rejected thread ran for %v", time.Duration(r.th.CPUTime()))
			}
			if r.th.State() != kernel.StateExited {
				t.Fatalf("rejected thread resurrected: %v", r.th.State())
			}
		}
		// Exit bookkeeping stays closed: live public handles only.
		for kt, th := range sys.byKern {
			if kt.State() == kernel.StateExited {
				t.Fatalf("stale byKern entry for exited thread %s", th.Name())
			}
		}
	})
}
