package realrate

import (
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Program is the behavior of a simulated thread: a state machine that
// returns one Action at a time. Next is called when the previous action
// completes; return Exit() to retire the thread.
type Program interface {
	Next(t *Thread, now time.Duration) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(t *Thread, now time.Duration) Action

// Next calls the function.
func (f ProgramFunc) Next(t *Thread, now time.Duration) Action { return f(t, now) }

// Action is one operation of a thread program. Construct actions with
// Compute, Produce, Consume, Sleep, SleepUntil, Lock, Unlock, Wait, Yield,
// and Exit.
type Action struct {
	op kernel.Op
}

// Compute burns n simulated CPU cycles.
func Compute(n int64) Action {
	return Action{kernel.OpCompute{Cycles: sim.Cycles(n)}}
}

// ComputeFor burns the CPU for approximately d of simulated time at the
// system's clock rate; the conversion happens when the action executes.
func ComputeFor(s *System, d time.Duration) Action {
	c := sim.DurationToCycles(sim.FromStd(d), s.kern.Config().ClockRate)
	return Action{kernel.OpCompute{Cycles: c}}
}

// Produce enqueues n bytes into q, blocking while the queue lacks space.
func Produce(q *Queue, n int64) Action {
	return Action{kernel.OpProduce{Queue: q.q, Bytes: n}}
}

// Consume dequeues n bytes from q, blocking while the data is not there.
func Consume(q *Queue, n int64) Action {
	return Action{kernel.OpConsume{Queue: q.q, Bytes: n}}
}

// Sleep blocks the thread for at least d (wakeups land on dispatch ticks).
func Sleep(d time.Duration) Action {
	return Action{kernel.OpSleep{D: sim.FromStd(d)}}
}

// SleepUntil blocks the thread until the given simulated instant.
func SleepUntil(at time.Duration) Action {
	return Action{kernel.OpSleepUntil{At: sim.Time(at)}}
}

// Lock acquires m, blocking while another thread holds it.
func Lock(m *Mutex) Action { return Action{kernel.OpLock{M: m.m}} }

// Unlock releases m; unlocking a mutex the thread does not hold panics.
func Unlock(m *Mutex) Action { return Action{kernel.OpUnlock{M: m.m}} }

// Wait parks the thread on w until another thread calls w.WakeOne.
func Wait(w *WaitQueue) Action { return Action{kernel.OpBlock{WQ: w.wq}} }

// Yield releases the CPU without blocking.
func Yield() Action { return Action{kernel.OpYield{}} }

// Exit retires the thread.
func Exit() Action { return Action{kernel.OpExit{}} }

// Ops is a reusable action buffer for allocation-sensitive programs. The
// package-level constructors (Compute, Produce, Consume, ...) box a fresh
// kernel operation on every call, so a program stepped millions of times
// across an open-loop storm pays one small heap allocation per step just
// for the box. An Ops value owns one operation of each kind and its
// methods return Actions backed by that storage, making the steady-state
// step cost zero allocations.
//
// One Ops belongs to one thread's program. An Action returned by a method
// stays valid until the same method is called again — exactly the
// lifetime of one program step, since the kernel never holds an operation
// past the step that completes it. Yield and Exit have no parameters to
// carry, so the package-level constructors are already allocation-free
// for them.
type Ops struct {
	compute    kernel.OpCompute
	produce    kernel.OpProduce
	consume    kernel.OpConsume
	sleep      kernel.OpSleep
	sleepUntil kernel.OpSleepUntil
}

// Compute is the reusable form of the package-level Compute.
func (o *Ops) Compute(n int64) Action {
	o.compute.Cycles = sim.Cycles(n)
	return Action{&o.compute}
}

// Produce is the reusable form of the package-level Produce.
func (o *Ops) Produce(q *Queue, n int64) Action {
	o.produce.Queue, o.produce.Bytes = q.q, n
	return Action{&o.produce}
}

// Consume is the reusable form of the package-level Consume.
func (o *Ops) Consume(q *Queue, n int64) Action {
	o.consume.Queue, o.consume.Bytes = q.q, n
	return Action{&o.consume}
}

// Sleep is the reusable form of the package-level Sleep.
func (o *Ops) Sleep(d time.Duration) Action {
	o.sleep.D = sim.FromStd(d)
	return Action{&o.sleep}
}

// SleepUntil is the reusable form of the package-level SleepUntil.
func (o *Ops) SleepUntil(at time.Duration) Action {
	o.sleepUntil.At = sim.Time(at)
	return Action{&o.sleepUntil}
}

// programAdapter bridges the public Program to the kernel's interface.
type programAdapter struct {
	sys  *System
	prog Program
	self *Thread
	// stuckOp is the reused spin burst emitted while a StuckThread fault
	// hijacks the program: CPU is consumed, no progress is made.
	stuckOp kernel.OpCompute
}

func (a *programAdapter) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	if a.sys.faults != nil && a.sys.faults.ThreadStuck(t.Name(), now) {
		a.stuckOp.Cycles = a.sys.stuckCycles
		return &a.stuckOp
	}
	act := a.prog.Next(a.self, time.Duration(now))
	if act.op == nil {
		panic("realrate: program returned zero Action; use Exit() to retire a thread")
	}
	return act.op
}

// HogProgram returns a program that computes forever in bursts of the
// given cycle count — the canonical CPU-bound load.
func HogProgram(burst int64) Program {
	return ProgramFunc(func(t *Thread, now time.Duration) Action {
		return Compute(burst)
	})
}
