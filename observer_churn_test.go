package realrate_test

import (
	"testing"
	"time"

	realrate "repro"

	"repro/internal/workload/gen"
)

// orderEvent is one observer callback, in arrival order.
type orderEvent struct {
	kind string // "admit", "dispatch", "actuate", "exit"
	at   time.Duration
	th   *realrate.Thread
}

// orderingObserver records the full event stream.
type orderingObserver struct {
	realrate.NopObserver
	events []orderEvent
}

func (o *orderingObserver) OnDispatch(now time.Duration, th *realrate.Thread, cpu int) {
	o.events = append(o.events, orderEvent{"dispatch", now, th})
}

func (o *orderingObserver) OnActuation(now time.Duration, th *realrate.Thread, prop int, period time.Duration) {
	o.events = append(o.events, orderEvent{"actuate", now, th})
}

func (o *orderingObserver) OnAdmission(ev realrate.AdmissionEvent) {
	if ev.Accepted {
		o.events = append(o.events, orderEvent{"admit", ev.Time, ev.Thread})
	}
}

func (o *orderingObserver) OnExit(now time.Duration, th *realrate.Thread) {
	o.events = append(o.events, orderEvent{"exit", now, th})
}

// TestObserverOrderingUnderChurn runs generated admission-churn scenarios
// and asserts the observer lifecycle contract per thread: events carry
// non-decreasing timestamps, an accepted admission precedes the thread's
// first dispatch, and nothing — no dispatch, no actuation — fires after
// the thread's OnExit, which fires exactly once.
func TestObserverOrderingUnderChurn(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, policy := range []string{"rbs", "stride"} {
			sp, err := gen.ForSeed("churn", seed)
			if err != nil {
				t.Fatal(err)
			}
			obs := &orderingObserver{}
			res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: policy, Observer: obs})
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Kills == 0 {
				t.Fatalf("seed %d: churn scenario killed nothing", seed)
			}
			if len(obs.events) == 0 {
				t.Fatalf("seed %d/%s: no events observed", seed, policy)
			}

			type life struct {
				admitted      bool
				admitAt       time.Duration
				dispatched    bool
				firstDispatch time.Duration
				exits         int
				exitAt        time.Duration
			}
			lives := make(map[*realrate.Thread]*life)
			at := func(th *realrate.Thread) *life {
				l := lives[th]
				if l == nil {
					l = &life{}
					lives[th] = l
				}
				return l
			}
			last := time.Duration(-1)
			for _, ev := range obs.events {
				// Dispatch events are stamped at segment start — engine now
				// plus pending kernel overhead — so they may sit slightly
				// ahead of same-instant events; order among the rest is the
				// engine's causal order and must be monotone.
				if ev.kind != "dispatch" {
					if ev.at < last {
						t.Fatalf("seed %d/%s: time went backwards: %v after %v (%s)",
							seed, policy, ev.at, last, ev.kind)
					}
					last = ev.at
				}
				if ev.th == nil {
					continue // the controller's thread has no public handle
				}
				l := at(ev.th)
				switch ev.kind {
				case "admit":
					if !l.admitted {
						l.admitted, l.admitAt = true, ev.at
					}
				case "dispatch":
					if !l.dispatched {
						l.dispatched, l.firstDispatch = true, ev.at
					}
					if l.exits > 0 {
						t.Errorf("seed %d/%s: %s dispatched at %v after its exit at %v",
							seed, policy, ev.th.Name(), ev.at, l.exitAt)
					}
				case "actuate":
					if l.exits > 0 {
						t.Errorf("seed %d/%s: %s actuated at %v after its exit at %v",
							seed, policy, ev.th.Name(), ev.at, l.exitAt)
					}
				case "exit":
					l.exits++
					l.exitAt = ev.at
					if l.exits > 1 {
						t.Errorf("seed %d/%s: %s exited %d times", seed, policy, ev.th.Name(), l.exits)
					}
				}
			}
			for th, l := range lives {
				if l.admitted && l.dispatched && l.firstDispatch < l.admitAt {
					t.Errorf("seed %d/%s: %s dispatched at %v before its admission at %v",
						seed, policy, th.Name(), l.firstDispatch, l.admitAt)
				}
				// Every exited thread's handle must agree it is gone.
				if l.exits > 0 && th.State() != "exited" {
					t.Errorf("seed %d/%s: %s got OnExit but is %q", seed, policy, th.Name(), th.State())
				}
			}
		}
	}
}

// TestKillRetiresImmediately pins the public Kill semantics: the thread
// stops consuming CPU at once, observers see its OnExit, and its
// reservation is admittable again after the next control interval.
func TestKillRetiresImmediately(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	obs := &orderingObserver{}
	sys.Observe(obs)
	rt, err := sys.Spawn("rt", realrate.HogProgram(400_000), realrate.Reserve(600, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Second)
	used := rt.CPUTime()
	if used == 0 {
		t.Fatal("rt never ran")
	}
	rt.Kill()
	rt.Kill() // idempotent
	if rt.State() != "exited" {
		t.Fatalf("state after Kill = %q", rt.State())
	}
	sys.Run(time.Second)
	if got := rt.CPUTime(); got != used {
		t.Fatalf("killed thread kept running: %v -> %v", used, got)
	}
	exits := 0
	for _, ev := range obs.events {
		if ev.kind == "exit" && ev.th == rt {
			exits++
		}
	}
	if exits != 1 {
		t.Fatalf("observers saw %d exits for the killed thread, want 1", exits)
	}
	// The freed 600 ppt is admittable again once the controller reaps.
	if _, err := sys.Spawn("next", realrate.HogProgram(400_000), realrate.Reserve(600, 10*time.Millisecond)); err != nil {
		t.Fatalf("reservation not freed after Kill: %v", err)
	}
}
