package realrate

import (
	"time"

	"repro/internal/kernel"
	"repro/internal/progress"
	"repro/internal/sim"
)

// Queue is a bounded byte buffer with a symbiotic interface: its fill
// level, size, and each endpoint's role are visible to the scheduler, which
// is how real-rate threads' progress is monitored.
type Queue struct {
	sys *System
	q   *kernel.Queue
}

// NewQueue creates a bounded buffer of the given capacity in bytes.
// Wrappers are carved from a slab chunk, like the kernel queues beneath
// them, so a session-pipeline storm pays 1/256th of an allocation each.
func (s *System) NewQueue(name string, size int64) *Queue {
	if len(s.qSlab) == 0 {
		s.qSlab = make([]Queue, 256)
	}
	q := &s.qSlab[0]
	s.qSlab = s.qSlab[1:]
	*q = Queue{sys: s, q: s.kern.NewQueue(name, size)}
	return q
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.q.Name() }

// Size returns the capacity in bytes.
func (q *Queue) Size() int64 { return q.q.Size() }

// Fill returns the bytes currently buffered.
func (q *Queue) Fill() int64 { return q.q.Fill() }

// FillLevel returns Fill/Size in [0, 1] — the progress signal.
func (q *Queue) FillLevel() float64 { return q.q.FillLevel() }

// Produced returns total bytes ever enqueued.
func (q *Queue) Produced() int64 { return q.q.Produced() }

// Consumed returns total bytes ever dequeued.
func (q *Queue) Consumed() int64 { return q.q.Consumed() }

// Recycle empties the queue and zeroes its counters so the object can be
// reused for a new logical stream — a pooled session pipeline reattaches
// a recycled queue instead of allocating one per session. The caller must
// prove the previous life is over: Recycle panics if any thread is
// blocked on the queue, and every thread linked to it must have exited
// (their progress registrations are torn down with them at exit).
func (q *Queue) Recycle() { q.q.Reset() }

// QueueLink declares a thread's role on a queue — the canonical
// ProgressSource, and the public form of the meta-interface registration
// call.
type QueueLink struct {
	queue *Queue
	role  progress.Role
}

// ProducerOf links the spawned thread as the producer of q.
func ProducerOf(q *Queue) QueueLink {
	return QueueLink{queue: q, role: progress.Producer}
}

// ConsumerOf links the spawned thread as the consumer of q.
func ConsumerOf(q *Queue) QueueLink {
	return QueueLink{queue: q, role: progress.Consumer}
}

// Pressure implements ProgressSource: R · (fill/size − ½).
func (l QueueLink) Pressure(now time.Duration) float64 {
	return progress.QueueMetric{Queue: l.queue.q, Role: l.role}.Pressure(sim.Time(now))
}

// Describe implements ProgressSource.
func (l QueueLink) Describe() string {
	return progress.QueueMetric{Queue: l.queue.q, Role: l.role}.Describe()
}

// Mutex is a simulated kernel mutex with FIFO handoff and, deliberately,
// no priority inheritance — the Mars Pathfinder scenario depends on it.
type Mutex struct {
	m *kernel.Mutex
}

// NewMutex returns an unlocked mutex registered with the system's kernel,
// so tracing and monitoring tools can enumerate and name it.
func (s *System) NewMutex(name string) *Mutex {
	return &Mutex{m: s.kern.NewMutex(name)}
}

// Name returns the mutex's name.
func (m *Mutex) Name() string { return m.m.Name() }

// MutexNames returns the names of every mutex created through NewMutex, in
// creation order — the registry tracing and monitoring tools enumerate.
func (s *System) MutexNames() []string {
	ms := s.kern.Mutexes()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name()
	}
	return names
}

// Contended returns how many lock attempts had to wait.
func (m *Mutex) Contended() uint64 { return m.m.Contended() }

// Acquisitions returns how many lock operations succeeded.
func (m *Mutex) Acquisitions() uint64 { return m.m.Acquisitions() }

// WaitQueue is a raw blocking primitive: threads Wait on it and other
// threads WakeOne them — the "tty" of interactive jobs.
type WaitQueue struct {
	sys *System
	wq  *kernel.WaitQueue
}

// NewWaitQueue returns an empty wait queue.
func (s *System) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{sys: s, wq: kernel.NewWaitQueue(name)}
}

// WakeOne wakes the longest-waiting thread, reporting whether one waited.
func (w *WaitQueue) WakeOne() bool { return w.sys.kern.WakeOne(w.wq) }

// Waiters returns the number of parked threads.
func (w *WaitQueue) Waiters() int { return w.wq.Len() }
