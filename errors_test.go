package realrate_test

import (
	"errors"
	"testing"
	"time"

	realrate "repro"
)

// fivePolicies builds one fresh instance of every scheduling discipline.
func fivePolicies() map[string]realrate.Policy {
	return map[string]realrate.Policy{
		"rbs":         realrate.RBS(),
		"stride":      realrate.Stride(10 * time.Millisecond),
		"lottery":     realrate.Lottery(10*time.Millisecond, 1),
		"linux":       realrate.Linux(),
		"round-robin": realrate.RoundRobin(10 * time.Millisecond),
	}
}

// TestTypedErrorsRoundTripAcrossPolicies pins the public error contract of
// System.Spawn under every policy: under RBS a malformed reservation
// surfaces as *ReservationError and an oversized one as *AdmissionError —
// both matchable with errors.As against the public aliases, end to end —
// while the baseline policies (no admission control by design) degrade the
// reservation to a share hint and spawn successfully.
func TestTypedErrorsRoundTripAcrossPolicies(t *testing.T) {
	for name, pol := range fivePolicies() {
		t.Run(name, func(t *testing.T) {
			sys := realrate.NewSystem(realrate.Config{Policy: pol})

			_, err := sys.Spawn("bad", realrate.HogProgram(1000), realrate.Reserve(-5, 10*time.Millisecond))
			if name == "rbs" {
				var re *realrate.ReservationError
				if !errors.As(err, &re) {
					t.Fatalf("Reserve(-5): error %T (%v), want *realrate.ReservationError", err, err)
				}
				if re.Proportion != -5 {
					t.Fatalf("ReservationError.Proportion = %d, want -5", re.Proportion)
				}
			} else if err != nil {
				t.Fatalf("baseline %s rejected a degraded reservation: %v", name, err)
			}

			_, err = sys.Spawn("huge", realrate.HogProgram(1000), realrate.Reserve(1800, 10*time.Millisecond))
			if name == "rbs" {
				var ae *realrate.AdmissionError
				if !errors.As(err, &ae) {
					t.Fatalf("Reserve(1800): error %T (%v), want *realrate.AdmissionError", err, err)
				}
				if ae.Requested != 1800 || ae.Available >= 1800 {
					t.Fatalf("AdmissionError = %+v", ae)
				}
			} else if err != nil {
				t.Fatalf("baseline %s rejected an oversized reservation: %v", name, err)
			}
		})
	}
}

// TestOverloadErrorRoundTrip drives a governed system into throttle with
// raw miscellaneous demand, then asserts the refusal round-trips through
// System.Spawn as a public *OverloadError with a usable retry-after hint.
func TestOverloadErrorRoundTrip(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{
		Overload: &realrate.OverloadConfig{TripIntervals: 1},
	})
	for _, name := range []string{"h0", "h1", "h2", "h3"} {
		if _, err := sys.Spawn(name, realrate.HogProgram(400_000)); err != nil {
			t.Fatal(err)
		}
	}
	// Four busy hogs desire ~3200 ppt of a 900 ppt machine; with a
	// one-interval trip the ladder leaves normal within a few intervals.
	sys.Run(100 * time.Millisecond)
	if rung := sys.Health().OverloadRung; rung == "normal" {
		t.Fatal("governor still at normal under 3.5× demand")
	}

	_, err := sys.Spawn("late", realrate.HogProgram(1000))
	var oe *realrate.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("spawn under throttle: error %T (%v), want *realrate.OverloadError", err, err)
	}
	if oe.Rung == "" || oe.RetryAfter <= 0 {
		t.Fatalf("OverloadError = %+v, want a rung name and positive retry-after", oe)
	}
	if h := sys.Health(); h.Throttled == 0 {
		t.Fatal("refusal did not count in Health().Throttled")
	}

	// Unmanaged threads live outside the controller: never throttled.
	if _, err := sys.Spawn("um", realrate.HogProgram(1000), realrate.Unmanaged()); err != nil {
		t.Fatalf("unmanaged spawn throttled: %v", err)
	}
}
