package realrate_test

import (
	"fmt"
	"testing"
	"time"

	realrate "repro"
)

// TestSLOAccounting pins the public SLO surface: arming Config.Overload
// turns the wake→dispatch tracker on, the report's percentiles are
// ordered, attainment is a fraction, and both the per-class and per-job
// breakdowns carry the threads that actually ran.
func TestSLOAccounting(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{
		Overload: &realrate.OverloadConfig{LatencySLO: 10 * time.Millisecond},
	})
	if _, err := sys.Spawn("rt", realrate.HogProgram(200_000),
		realrate.Reserve(300, 10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn("bg", realrate.HogProgram(200_000)); err != nil {
		t.Fatal(err)
	}
	sys.Run(500 * time.Millisecond)

	rep := sys.SLO()
	if rep.Samples == 0 {
		t.Fatal("no wake→dispatch samples after a 500ms run")
	}
	if rep.Target != 10*time.Millisecond {
		t.Fatalf("Target = %v, want the configured 10ms", rep.Target)
	}
	if rep.P50 > rep.P99 || rep.P99 > rep.P999 {
		t.Fatalf("percentiles out of order: p50 %v p99 %v p999 %v", rep.P50, rep.P99, rep.P999)
	}
	if rep.Attainment < 0 || rep.Attainment > 1 {
		t.Fatalf("Attainment = %v, want a fraction", rep.Attainment)
	}
	for _, name := range []string{"rt", "bg"} {
		st, ok := rep.Jobs[name]
		if !ok {
			t.Fatalf("Jobs breakdown missing %q (have %v)", name, rep.Jobs)
		}
		if st.Samples == 0 {
			t.Fatalf("job %q has no samples", name)
		}
	}
	if len(rep.Classes) == 0 {
		t.Fatal("Classes breakdown empty")
	}
	var sum uint64
	for _, st := range rep.Jobs {
		sum += st.Samples
	}
	if sum != rep.Samples {
		t.Fatalf("per-job samples sum to %d, total is %d", sum, rep.Samples)
	}
}

// TestSLODisabledWithoutGovernorConfig: with Overload nil the tracker is
// off — zero report, zero hot-path cost, byte-identical behavior.
func TestSLODisabledWithoutGovernorConfig(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	if _, err := sys.Spawn("bg", realrate.HogProgram(200_000)); err != nil {
		t.Fatal(err)
	}
	sys.Run(100 * time.Millisecond)
	rep := sys.SLO()
	if rep.Samples != 0 || rep.Target != 0 || rep.Classes != nil || rep.Jobs != nil {
		t.Fatalf("SLO report with no governor config = %+v, want zero", rep)
	}
}

// waitForever computes one burst (so the thread's spawn edge closes into
// a real sample) and then parks on w; every wake parks it again.
func waitForever(w *realrate.WaitQueue) realrate.Program {
	first := true
	return realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		if first {
			first = false
			return realrate.Compute(50_000)
		}
		return realrate.Wait(w)
	})
}

// TestOpenWakeEdgeAtRunEndExcluded pins the open-edge rule at the
// measurement boundary: a thread woken but never dispatched before the
// simulation stops has an open wake→dispatch edge, and an open edge is
// excluded from the SLO accounting — not counted as met (the latency is
// unknown) and not counted as missed (the thread never got to run). A
// tracker that closed open edges at the run horizon would award every
// straggler a phantom sample.
func TestOpenWakeEdgeAtRunEndExcluded(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{
		Overload: &realrate.OverloadConfig{LatencySLO: 10 * time.Millisecond},
	})
	wq := sys.NewWaitQueue("tty")
	if _, err := sys.Spawn("waiter", waitForever(wq)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn("hog", realrate.HogProgram(200_000)); err != nil {
		t.Fatal(err)
	}
	sys.Run(100 * time.Millisecond)

	before := sys.SLO().Jobs["waiter"]
	if before.Samples == 0 {
		t.Fatal("waiter never dispatched in 100ms: setup broken")
	}
	// Wake at the run horizon: the edge opens, the simulation never runs
	// again, so no dispatch can close it.
	if !wq.WakeOne() {
		t.Fatal("no waiter parked on the queue")
	}
	after := sys.SLO().Jobs["waiter"]
	if after.Samples != before.Samples {
		t.Fatalf("open wake edge at run end counted as a sample: %d -> %d samples",
			before.Samples, after.Samples)
	}
	if after.Attainment != before.Attainment {
		t.Fatalf("open wake edge moved attainment: %v -> %v", before.Attainment, after.Attainment)
	}
}

// TestKillMidWaitClosesEdgeOnce pins the other open-edge rule: a thread
// killed between its wake and its dispatch — exactly what the governor's
// shed rung does to a parked session stage — drops its open edge with the
// handle, once. No sample is recorded for the severed edge (the thread
// never reached a CPU, so there is no latency to measure), later samples
// are unaffected, and a second Kill is a no-op rather than a double-close.
func TestKillMidWaitClosesEdgeOnce(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{
		Overload: &realrate.OverloadConfig{LatencySLO: 10 * time.Millisecond},
	})
	wq := sys.NewWaitQueue("tty")
	waiter, err := sys.Spawn("waiter", waitForever(wq))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn("hog", realrate.HogProgram(200_000)); err != nil {
		t.Fatal(err)
	}
	var before realrate.SLOStat
	sys.After(50*time.Millisecond, func(now time.Duration) {
		before = sys.SLO().Jobs["waiter"]
		// Wake and kill inside one callback: the scheduler cannot run
		// between the two, so the kill lands while the wake edge is open.
		if !wq.WakeOne() {
			t.Error("no waiter parked on the queue")
		}
		waiter.Kill()
	})
	sys.Run(200 * time.Millisecond)

	if waiter.State() != "exited" {
		t.Fatalf("waiter state = %s, want exited", waiter.State())
	}
	if before.Samples == 0 {
		t.Fatal("waiter never dispatched before the kill: setup broken")
	}
	after := sys.SLO().Jobs["waiter"]
	if after.Samples != before.Samples {
		t.Fatalf("kill mid-wait changed the sample count: %d -> %d",
			before.Samples, after.Samples)
	}
	if after.Attainment != before.Attainment {
		t.Fatalf("kill mid-wait moved attainment: %v -> %v", before.Attainment, after.Attainment)
	}
	// The run kept going for 150ms after the kill: the dropped handle must
	// not have resurrected (an exited thread re-sampling would inflate the
	// count) and killing again must be a quiet no-op.
	waiter.Kill()
	if got := sys.SLO().Jobs["waiter"]; got.Samples != before.Samples {
		t.Fatalf("second kill changed the sample count: %d -> %d", before.Samples, got.Samples)
	}
}

// TestGovernorIdleZeroThroughputCost proves the "enabled but idle"
// guarantee: arming the governor on a machine it never trips must not
// cost the workload any throughput. The same hog storm runs with the
// governor off and idle; dispatches, per-thread CPU time, and total
// reserved proportion must agree within 1% (they are in fact identical —
// the governor only reads controller state, and the SLO tap lives on the
// observer seam outside simulated time).
func TestGovernorIdleZeroThroughputCost(t *testing.T) {
	run := func(overload *realrate.OverloadConfig) (uint64, time.Duration) {
		sys := realrate.NewSystem(realrate.Config{Overload: overload})
		var hogs []*realrate.Thread
		for j := 0; j < 50; j++ {
			th, err := sys.Spawn(fmt.Sprintf("hog%d", j), realrate.HogProgram(400_000))
			if err != nil {
				t.Fatal(err)
			}
			hogs = append(hogs, th)
		}
		sys.Run(2 * time.Second)
		if overload != nil && sys.Health().OverloadRung != "normal" {
			t.Fatalf("governor not idle: rung %s", sys.Health().OverloadRung)
		}
		var cpu time.Duration
		for _, th := range hogs {
			cpu += th.CPUTime()
		}
		return sys.Stats().Dispatches, cpu
	}
	offDisp, offCPU := run(nil)
	idleDisp, idleCPU := run(&realrate.OverloadConfig{GapFactor: 1e12})
	if offDisp != idleDisp {
		overhead := 100 * (1 - float64(idleDisp)/float64(offDisp))
		if overhead > 1 || overhead < -1 {
			t.Fatalf("idle governor changed storm throughput: %d -> %d dispatches (%.2f%%)",
				offDisp, idleDisp, overhead)
		}
	}
	if offCPU != idleCPU {
		t.Fatalf("idle governor changed workload CPU time: %v -> %v", offCPU, idleCPU)
	}
}
