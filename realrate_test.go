package realrate_test

import (
	"strings"
	"testing"
	"time"

	realrate "repro"
)

// pipeline spawns the canonical reserved-producer / controlled-consumer
// pair on sys and returns the queue and consumer.
func pipeline(t *testing.T, sys *realrate.System) (*realrate.Queue, *realrate.Thread) {
	t.Helper()
	pipe := sys.NewQueue("pipe", 1<<20)
	pc := true
	producer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		pc = !pc
		if pc {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(pipe, 20_000)
	})
	cc := true
	consumer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		cc = !cc
		if cc {
			return realrate.Consume(pipe, 4096)
		}
		return realrate.Compute(40 * 4096)
	})
	if _, err := sys.SpawnRealTime("producer", producer, 100, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	cons := sys.SpawnRealRate("consumer", consumer, 0, realrate.ConsumerOf(pipe))
	return pipe, cons
}

func TestSystemRunAdvancesTime(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	sys.Run(time.Second)
	if sys.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", sys.Now())
	}
	sys.Run(time.Second)
	if sys.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", sys.Now())
	}
}

func TestPublicPipelineConverges(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	pipe, cons := pipeline(t, sys)
	sys.Run(10 * time.Second)

	if fl := pipe.FillLevel(); fl < 0.35 || fl > 0.65 {
		t.Fatalf("fill level = %.3f, want ≈0.5", fl)
	}
	if a := cons.Allocation(); a < 120 || a > 300 {
		t.Fatalf("consumer allocation = %d ppt, want ≈200", a)
	}
	if cons.Class() != "real-rate" {
		t.Fatalf("consumer class = %q", cons.Class())
	}
	if cons.Period() != 30*time.Millisecond {
		t.Fatalf("consumer default period = %v, want 30ms", cons.Period())
	}
}

func TestAdmissionErrorSurfaced(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	if _, err := sys.SpawnRealTime("big", realrate.HogProgram(1000), 800, 10*time.Millisecond); err != nil {
		t.Fatalf("first reservation rejected: %v", err)
	}
	if _, err := sys.SpawnRealTime("too-big", realrate.HogProgram(1000), 300, 10*time.Millisecond); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestUnmanagedThreadRunsInLeftover(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	um := sys.SpawnUnmanaged("legacy", realrate.HogProgram(400_000))
	sys.Run(2 * time.Second)
	if um.CPUTime() < time.Second {
		t.Fatalf("unmanaged thread got %v of an idle machine", um.CPUTime())
	}
	if um.Class() != "unmanaged" || um.Allocation() != 0 {
		t.Fatalf("unmanaged metadata wrong: class=%q alloc=%d", um.Class(), um.Allocation())
	}
}

func TestMiscThreadsShareEqually(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	a := sys.SpawnMiscellaneous("a", realrate.HogProgram(400_000))
	b := sys.SpawnMiscellaneous("b", realrate.HogProgram(400_000))
	sys.Run(8 * time.Second)
	ra := a.CPUTime().Seconds()
	rb := b.CPUTime().Seconds()
	if ra/rb < 0.8 || ra/rb > 1.25 {
		t.Fatalf("misc split %.2f/%.2f, want ≈equal", ra, rb)
	}
}

func TestImportanceViaPublicAPI(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	vip := sys.SpawnMiscellaneous("vip", realrate.HogProgram(400_000))
	std := sys.SpawnMiscellaneous("std", realrate.HogProgram(400_000))
	vip.SetImportance(4)
	sys.Run(8 * time.Second)
	if vip.CPUTime() <= std.CPUTime() {
		t.Fatalf("importance ignored: vip=%v std=%v", vip.CPUTime(), std.CPUTime())
	}
	if std.CPUTime() == 0 {
		t.Fatal("standard job starved")
	}
}

func TestMutexAndWaitQueue(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	m := sys.NewMutex("m")
	wq := sys.NewWaitQueue("tty")

	handled := 0
	phase := 0
	worker := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		phase++
		switch phase % 4 {
		case 1:
			return realrate.Wait(wq)
		case 2:
			return realrate.Lock(m)
		case 3:
			return realrate.Compute(100_000)
		default:
			handled++
			return realrate.Unlock(m)
		}
	})
	sys.SpawnMiscellaneous("worker", worker)

	wphase := 0
	waker := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		wphase++
		if wphase%2 == 1 {
			return realrate.Sleep(10 * time.Millisecond)
		}
		wq.WakeOne()
		return realrate.Compute(1000)
	})
	sys.SpawnMiscellaneous("waker", waker)

	sys.Run(2 * time.Second)
	if handled < 50 {
		t.Fatalf("worker handled %d events, want ≈100", handled)
	}
	if m.Acquisitions() == 0 {
		t.Fatal("mutex never used")
	}
}

func TestThreadExitViaPublicAPI(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	n := 0
	mortal := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		n++
		if n > 5 {
			return realrate.Exit()
		}
		return realrate.Compute(1000)
	})
	th := sys.SpawnMiscellaneous("mortal", mortal)
	sys.Run(time.Second)
	if th.State() != "exited" {
		t.Fatalf("state = %q, want exited", th.State())
	}
}

func TestEverySampler(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	var samples []time.Duration
	sys.Every(100*time.Millisecond, func(now time.Duration) {
		samples = append(samples, now)
	})
	sys.Run(time.Second)
	if len(samples) != 10 {
		t.Fatalf("got %d samples in 1s at 100ms, want 10", len(samples))
	}
	if samples[0] != 100*time.Millisecond {
		t.Fatalf("first sample at %v", samples[0])
	}
}

func TestStatsPopulated(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	sys.SpawnMiscellaneous("hog", realrate.HogProgram(400_000))
	sys.Run(time.Second)
	st := sys.Stats()
	if st.Elapsed != time.Second {
		t.Fatalf("Elapsed = %v", st.Elapsed)
	}
	if st.Ticks < 990 || st.Ticks > 1010 {
		t.Fatalf("Ticks = %d", st.Ticks)
	}
	if st.ControllerSteps < 95 || st.ControllerSteps > 105 {
		t.Fatalf("ControllerSteps = %d", st.ControllerSteps)
	}
	if st.Dispatches == 0 || st.SchedOverhead == 0 {
		t.Fatal("overhead accounting empty")
	}
	if sys.ControllerCPU() == 0 {
		t.Fatal("controller consumed no CPU")
	}
}

func TestQualityEventDelivered(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	pipe := sys.NewQueue("pipe", 1<<20)
	pc := true
	producer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		pc = !pc
		if pc {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(pipe, 20_000)
	})
	// Impossible consumer: needs 400 cycles/byte at 2 MB/s = 2x the CPU.
	cc := true
	consumer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		cc = !cc
		if cc {
			return realrate.Consume(pipe, 4096)
		}
		return realrate.Compute(400 * 4096)
	})
	if _, err := sys.SpawnRealTime("producer", producer, 100, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sys.SpawnRealRate("consumer", consumer, 0, realrate.ConsumerOf(pipe))

	events := 0
	sys.OnQuality(func(ev realrate.QualityEvent) {
		events++
		if ev.Thread == nil || ev.Thread.Name() != "consumer" {
			t.Errorf("quality event thread = %v", ev.Thread)
		}
	})
	sys.Run(20 * time.Second)
	if events == 0 {
		t.Fatal("no quality events under permanent overload")
	}
}

func TestPacedComputationHoldsTargetRate(t *testing.T) {
	// §4.5: a password cracker with a pseudo-progress metric. Each key
	// costs 100k cycles; the target is 1200 keys/s = 120M cycles/s = 30%
	// of the CPU. A hog competes for everything else.
	sys := realrate.NewSystem(realrate.Config{})
	keys := 0
	var pace *realrate.Pace
	cracker := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if keys > 0 { // report the key finished by the previous burst
			pace.Complete(1)
		}
		keys++
		return realrate.Compute(100_000)
	})
	th, p := sys.SpawnPaced("cracker", cracker, 1200, 2400) // 2s of buffer
	pace = p
	sys.SpawnMiscellaneous("hog", realrate.HogProgram(400_000))
	sys.Run(10 * time.Second)

	rate := float64(keys) / 10
	if rate < 1050 || rate > 1450 {
		t.Fatalf("cracking rate = %.0f keys/s, want ≈1200", rate)
	}
	if a := th.Allocation(); a < 200 || a > 450 {
		t.Fatalf("cracker allocation = %d ppt, want ≈300", a)
	}
	// On rate means the virtual buffer hovers near half.
	if fl := p.FillLevel(); fl < 0.2 || fl > 0.8 {
		t.Fatalf("virtual fill = %.3f, want ≈0.5", fl)
	}
}

func TestRenegotiateViaPublicAPI(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	th, err := sys.SpawnRealTime("rt", realrate.HogProgram(400_000), 200, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(time.Second)
	if err := th.Renegotiate(500); err != nil {
		t.Fatalf("renegotiate failed: %v", err)
	}
	before := th.CPUTime()
	sys.Run(2 * time.Second)
	share := (th.CPUTime() - before).Seconds() / 2
	if share < 0.45 {
		t.Fatalf("renegotiated share = %.3f, want ≈0.50", share)
	}
	if err := th.Renegotiate(5000); err == nil {
		t.Fatal("impossible renegotiation accepted")
	}
}

func TestAperiodicClass(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	th, err := sys.SpawnAperiodic("codec", realrate.HogProgram(400_000), 200)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2 * time.Second)
	if th.Class() != "aperiodic-real-time" {
		t.Fatalf("class = %q", th.Class())
	}
	if th.Period() != 30*time.Millisecond {
		t.Fatalf("default period = %v, want 30ms", th.Period())
	}
	share := th.CPUTime().Seconds() / 2
	if share < 0.19 || share > 0.27 {
		t.Fatalf("aperiodic share = %.3f, want ≈0.20", share)
	}
}

func TestInteractiveClassViaPublicAPI(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	tty := sys.NewWaitQueue("tty")
	served := 0
	sphase := 0
	editor := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		sphase++
		if sphase%2 == 1 {
			return realrate.Wait(tty)
		}
		served++
		return realrate.Compute(2_000_000)
	})
	it := sys.SpawnInteractive("editor", editor)
	uphase := 0
	user := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		uphase++
		if uphase%2 == 1 {
			return realrate.Sleep(50 * time.Millisecond)
		}
		tty.WakeOne()
		return realrate.Compute(1000)
	})
	if _, err := sys.SpawnRealTime("user", user, 20, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sys.SpawnMiscellaneous("hog", realrate.HogProgram(400_000))
	sys.Run(10 * time.Second)

	if served < 150 {
		t.Fatalf("editor served %d events under load, want ≈200", served)
	}
	if it.Class() != "interactive" {
		t.Fatalf("class = %q", it.Class())
	}
}

func TestTracingViaPublicAPI(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	tr := sys.EnableTracing(0)
	sys.SpawnMiscellaneous("hog", realrate.HogProgram(400_000))
	sys.Run(time.Second)
	sums := tr.Summaries()
	found := false
	for _, s := range sums {
		if s.Thread == "hog" {
			found = true
			if s.Segments == 0 || s.TotalRun < 500*time.Millisecond {
				t.Fatalf("hog trace summary implausible: %+v", s)
			}
		}
	}
	if !found {
		t.Fatal("hog missing from trace summaries")
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dispatch,hog") {
		t.Fatal("CSV missing dispatch events")
	}
}

func TestPublicAccessorsAndActions(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{
		ClockHz:            400_000_000,
		TickInterval:       time.Millisecond,
		ControllerInterval: 10 * time.Millisecond,
		OverloadThreshold:  900,
		DispatchCost:       1900, TickCost: 900, SwitchCost: 200,
		Controller: realrate.ControllerTuning{
			K: 2000, Kp: 1, Ki: 4, Kd: 0.05,
			MiscPressure: 0.4, ReclaimFraction: 0.5, ReclaimC: 20,
			BaseCost: 2280, PerJobCost: 2640,
		},
	})
	q := sys.NewQueue("pipe", 4096)
	if q.Name() != "pipe" || q.Size() != 4096 || q.Fill() != 0 {
		t.Fatal("queue accessors wrong")
	}
	m := sys.NewMutex("m")
	wq := sys.NewWaitQueue("w")
	if wq.Waiters() != 0 {
		t.Fatal("fresh wait queue has waiters")
	}

	// Exercise every public action constructor in one program.
	phase := 0
	prog := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		phase++
		switch phase {
		case 1:
			return realrate.ComputeFor(sys, time.Millisecond)
		case 2:
			return realrate.Produce(q, 512)
		case 3:
			return realrate.Consume(q, 512)
		case 4:
			return realrate.Lock(m)
		case 5:
			return realrate.Unlock(m)
		case 6:
			return realrate.Yield()
		case 7:
			return realrate.SleepUntil(now + 2*time.Millisecond)
		case 8:
			return realrate.Sleep(time.Millisecond)
		default:
			return realrate.Compute(100_000)
		}
	})
	th := sys.SpawnRealRate("omni", prog, 15*time.Millisecond, realrate.ConsumerOf(q))
	sys.Run(time.Second)

	if th.Desired() < 0 || th.Allocation() < 0 {
		t.Fatal("negative allocation")
	}
	_ = th.Pressure()
	_ = th.Squished()
	if th.Period() != 15*time.Millisecond {
		t.Fatalf("period = %v", th.Period())
	}
	if q.Produced() != q.Consumed() {
		t.Fatalf("produced %d != consumed %d", q.Produced(), q.Consumed())
	}
	if m.Contended() != 0 {
		t.Fatal("uncontended mutex reported contention")
	}
	if sys.TotalProportion() <= 0 {
		t.Fatal("TotalProportion empty with registered jobs")
	}

	// Stop freezes the machine.
	sys.Stop()
	before := th.CPUTime()
	sys.Run(100 * time.Millisecond)
	if th.CPUTime() != before {
		t.Fatal("thread ran after Stop")
	}
}

func TestTracingPrint(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	tr := sys.EnableTracing(100)
	sys.SpawnMiscellaneous("hog", realrate.HogProgram(400_000))
	sys.Run(200 * time.Millisecond)
	var sb strings.Builder
	tr.Print(&sb)
	if !strings.Contains(sb.String(), "THREAD") || !strings.Contains(sb.String(), "hog") {
		t.Fatalf("summary table malformed:\n%s", sb.String())
	}
}

func TestSpawnIntoJobSharesAllocation(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	// A two-thread miscellaneous job against a one-thread job: CPU is
	// allocated per job, so the pairs end up equal.
	lead := sys.SpawnMiscellaneous("pair0", realrate.HogProgram(400_000))
	second := sys.SpawnIntoJob(lead, "pair1", realrate.HogProgram(400_000))
	solo := sys.SpawnMiscellaneous("solo", realrate.HogProgram(400_000))
	sys.Run(8 * time.Second)

	pair := lead.CPUTime().Seconds() + second.CPUTime().Seconds()
	single := solo.CPUTime().Seconds()
	if r := pair / single; r < 0.75 || r > 1.35 {
		t.Fatalf("2-thread job %.2fs vs 1-thread job %.2fs; want per-job fairness", pair, single)
	}
	// Both members report the job's class and allocation.
	if second.Class() != "miscellaneous" || second.Allocation() != lead.Allocation() {
		t.Fatalf("member metadata: class=%q alloc=%d vs lead %d",
			second.Class(), second.Allocation(), lead.Allocation())
	}
}
