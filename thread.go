package realrate

import (
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Thread is a handle to a simulated thread under real-rate scheduling.
type Thread struct {
	sys *System
	t   *kernel.Thread
	job *core.Job
}

// spawn creates the kernel thread wired to the public program.
func (s *System) spawn(name string, prog Program) *Thread {
	th := &Thread{sys: s}
	ad := &programAdapter{sys: s, prog: prog, self: th}
	th.t = s.kern.Spawn(name, ad)
	s.threads = append(s.threads, th)
	return th
}

// SpawnRealTime creates a thread with a hard reservation: proportion in
// parts-per-thousand over the given period. Admission control may reject
// the request, in which case the thread is not created.
func (s *System) SpawnRealTime(name string, prog Program, proportion int, period time.Duration) (*Thread, error) {
	th := s.spawn(name, prog)
	job, err := s.ctl.AddRealTime(th.t, proportion, sim.FromStd(period))
	if err != nil {
		// Retire the just-created thread; it never ran.
		s.removeThread(th)
		return nil, err
	}
	th.job = job
	return th, nil
}

// SpawnAperiodic creates an aperiodic real-time thread: known proportion,
// no period; the controller assigns the 30 ms default.
func (s *System) SpawnAperiodic(name string, prog Program, proportion int) (*Thread, error) {
	th := s.spawn(name, prog)
	job, err := s.ctl.AddAperiodicRealTime(th.t, proportion)
	if err != nil {
		s.removeThread(th)
		return nil, err
	}
	th.job = job
	return th, nil
}

// SpawnRealRate creates a thread whose proportion (and, with period 0, its
// period) the controller estimates from the progress metrics declared by
// the queue links.
func (s *System) SpawnRealRate(name string, prog Program, period time.Duration, links ...QueueLink) *Thread {
	if len(links) == 0 {
		panic("realrate: SpawnRealRate needs at least one queue link")
	}
	th := s.spawn(name, prog)
	for _, l := range links {
		s.reg.RegisterQueue(th.t, l.queue.q, l.role)
	}
	th.job = s.ctl.AddRealRate(th.t, sim.FromStd(period))
	return th
}

// SpawnMiscellaneous creates a thread with no declared information; the
// constant-pressure heuristic grows its allocation until satisfied or
// squished.
func (s *System) SpawnMiscellaneous(name string, prog Program) *Thread {
	th := s.spawn(name, prog)
	th.job = s.ctl.AddMiscellaneous(th.t)
	return th
}

// SpawnInteractive creates a tty-server thread: small period, proportion
// estimated from its bursts.
func (s *System) SpawnInteractive(name string, prog Program) *Thread {
	th := s.spawn(name, prog)
	th.job = s.ctl.AddInteractive(th.t)
	return th
}

// SpawnUnmanaged creates a thread outside the controller entirely; it runs
// round-robin in the leftover CPU below every registered thread, like
// unregistered jobs under the prototype's default Linux scheduler.
func (s *System) SpawnUnmanaged(name string, prog Program) *Thread {
	return s.spawn(name, prog)
}

func (s *System) removeThread(th *Thread) {
	for i, other := range s.threads {
		if other == th {
			copy(s.threads[i:], s.threads[i+1:])
			s.threads = s.threads[:len(s.threads)-1]
			break
		}
	}
}

// Name returns the thread's name.
func (th *Thread) Name() string { return th.t.Name() }

// CPUTime returns the total simulated CPU the thread has consumed.
func (th *Thread) CPUTime() time.Duration { return time.Duration(th.t.CPUTime()) }

// State returns the scheduling state as a string (ready, running, blocked,
// sleeping, exited).
func (th *Thread) State() string { return th.t.State().String() }

// Allocation returns the thread's current proportion in ppt (0 for
// unmanaged threads).
func (th *Thread) Allocation() int {
	if th.job == nil {
		return 0
	}
	return th.job.Allocated()
}

// Desired returns the pre-squish proportion the controller last computed.
func (th *Thread) Desired() int {
	if th.job == nil {
		return 0
	}
	return th.job.Desired()
}

// Period returns the thread's current period (0 for unmanaged threads).
func (th *Thread) Period() time.Duration {
	if th.job == nil {
		return 0
	}
	return time.Duration(th.job.Period())
}

// Pressure returns the controller's cumulative progress pressure Q_t for
// the thread.
func (th *Thread) Pressure() float64 {
	if th.job == nil {
		return 0
	}
	return th.job.Pressure()
}

// Class returns the taxonomy class name, or "unmanaged".
func (th *Thread) Class() string {
	if th.job == nil {
		return "unmanaged"
	}
	return th.job.Class().String()
}

// SetImportance sets the weighted-fair-share weight (default 1). Higher
// importance loses less under overload but can never starve others.
func (th *Thread) SetImportance(w float64) {
	if th.job == nil {
		panic("realrate: cannot set importance of an unmanaged thread")
	}
	th.sys.ctl.SetImportance(th.job, w)
}

// Squished reports whether overload reduced the thread below its desired
// allocation in the last control interval.
func (th *Thread) Squished() bool {
	if th.job == nil {
		return false
	}
	return th.job.Squished()
}

// Renegotiate changes a real-time (or aperiodic real-time) thread's
// reserved proportion, subject to admission control. Applications
// typically call it from a quality-exception handler to lower their
// requirements under overload.
func (th *Thread) Renegotiate(proportion int) error {
	if th.job == nil {
		panic("realrate: cannot renegotiate an unmanaged thread")
	}
	return th.sys.ctl.Renegotiate(th.job, proportion)
}

// SpawnIntoJob creates a new thread as a member of th's job: the paper's
// "job is a collection of cooperating threads". The job's allocation is
// split across its members; its progress and usage are their combined
// metrics and CPU.
func (s *System) SpawnIntoJob(th *Thread, name string, prog Program) *Thread {
	if th.job == nil {
		panic("realrate: cannot add members to an unmanaged thread")
	}
	member := s.spawn(name, prog)
	member.job = th.job
	s.ctl.AddMember(th.job, member.t)
	return member
}
