package realrate

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Thread is a handle to a simulated thread under real-rate scheduling.
//
// The handle outlives the thread: once the program exits (or Kill is
// called), the kernel slot behind it may be recycled and reissued to a
// later spawn, so the handle freezes the thread's final statistics at exit
// and answers every read-only accessor from the frozen copy. Mutating an
// exited handle — Renegotiate, SetImportance — panics deterministically,
// naming the retired slot generation, instead of corrupting whatever
// thread now occupies the slot. Kill on an exited handle is a no-op.
type Thread struct {
	sys *System
	t   *kernel.Thread
	job *core.Job

	// adapter bridges the public program to the kernel, embedded so one
	// allocation covers handle and adapter together.
	adapter programAdapter

	// gen snapshots the kernel slot's generation at spawn; a mismatch
	// against t.Gen() means the slot was recycled under a live handle —
	// a lifecycle bug the guarded mutators turn into a deterministic
	// panic rather than an action against a stranger.
	gen uint32

	// name and pinned are immutable for the thread's whole life, cached
	// so accessors never need the (possibly reissued) kernel slot.
	name   string
	pinned bool

	// exited flips when the exit hook retires the handle; the exit*
	// fields below hold the final statistics frozen at that instant.
	exited         bool
	exitCPU        int
	exitCPUTime    time.Duration
	exitMigrations uint64
	exitAlloc      int
	exitDesired    int
	exitPeriod     time.Duration
	exitPressure   float64
	exitSquished   bool
	exitClass      string
	exitDegraded   string
	exitImportance float64

	// The open wake→dispatch SLO edge and the tracker's cached series
	// live on the handle so the per-dispatch tap touches no maps beyond
	// the byKern translation and hashes no strings (slo.go).
	sloWake    sim.Time
	sloPending bool
	sloJob     *sloSeries
	sloClass   *sloSeries
}

// spawn creates the kernel thread wired to the public program and indexes
// the handle for O(1) kernel-thread lookups.
func (s *System) spawn(name string, prog Program, affinity int) *Thread {
	if len(s.thSlab) == 0 {
		s.thSlab = make([]Thread, 256)
	}
	th := &s.thSlab[0]
	s.thSlab = s.thSlab[1:]
	*th = Thread{sys: s, name: name, pinned: affinity != kernel.AffinityAny}
	th.adapter = programAdapter{sys: s, prog: prog, self: th}
	th.t = s.kern.SpawnAffinity(name, &th.adapter, affinity)
	th.gen = th.t.Gen()
	th.t.User = th
	s.byKern[th.t] = th
	if s.slo != nil {
		// The spawn's own wake edge traced before the handle was indexed;
		// open it here so the first dispatch still yields a sample.
		th.sloPending, th.sloWake = true, s.kern.Now()
	}
	return th
}

// retire freezes the thread's final statistics on the handle and severs
// its links to the kernel slot and controller job, both of which may be
// recycled to a later spawn. Runs inside the exit hook, before the slot
// returns to the kernel's free list, so every value read here is still
// this thread's.
func (th *Thread) retire(t *kernel.Thread) {
	th.exited = true
	th.exitCPU = t.CPU()
	th.exitCPUTime = time.Duration(t.CPUTime())
	th.exitMigrations = t.Migrations()
	if j := th.job; j != nil {
		th.exitAlloc = j.Allocated()
		th.exitDesired = j.Desired()
		th.exitPeriod = time.Duration(j.Period())
		th.exitPressure = j.Pressure()
		th.exitSquished = j.Squished()
		th.exitClass = j.Class().String()
		th.exitDegraded = j.Degraded().String()
		th.exitImportance = j.Importance()
	} else {
		th.exitClass = "unmanaged"
	}
	th.job = nil
	th.adapter.prog = nil // release the program for the collector
}

// threadExited is the kernel exit hook: it freezes the handle, reaps the
// controller job eagerly (a pooled slot can be reissued before the next
// control epoch, by which time every stale reference must be gone), and
// tells observers the thread is over. Threads removed by removeThread
// (rejected spawns) were unindexed before retirement, so they never ran
// and never surface an OnExit.
func (s *System) threadExited(t *kernel.Thread, now sim.Time) {
	th, ok := s.byKern[t]
	if ok {
		delete(s.byKern, t)
		th.sloPending = false // drop any open wake edge with the handle
		// Freeze before the controller reap below: the reap may scrub and
		// pool the job object the frozen values are read from.
		th.retire(t)
	}
	// Unlink progress sources here, not only in the controller's reap:
	// under a baseline policy no controller runs, so without this an
	// exited paced/real-rate thread would leak its registration forever.
	s.reg.Unregister(t)
	// Eager in both modes: reap timing is behavior (it changes the job
	// population the next control epoch prices), so it must not depend on
	// whether pooling is enabled — only object recycling is gated.
	if s.ctl != nil {
		s.ctl.ThreadExited(t)
	}
	if !ok {
		return
	}
	for _, o := range s.hub.obs {
		o.OnExit(time.Duration(now), th)
	}
}

// SpawnRealTime creates a thread with a hard reservation: proportion in
// parts-per-thousand over the given period. Admission control may reject
// the request, in which case the thread is not created.
//
// Deprecated: use Spawn with the Reserve option.
func (s *System) SpawnRealTime(name string, prog Program, proportion int, period time.Duration) (*Thread, error) {
	return s.Spawn(name, prog, Reserve(proportion, period))
}

// SpawnAperiodic creates an aperiodic real-time thread: known proportion,
// no period; the controller assigns the 30 ms default.
//
// Deprecated: use Spawn with the Aperiodic option.
func (s *System) SpawnAperiodic(name string, prog Program, proportion int) (*Thread, error) {
	return s.Spawn(name, prog, Aperiodic(proportion))
}

// SpawnRealRate creates a thread whose proportion (and, with period 0, its
// period) the controller estimates from the progress metrics declared by
// the queue links.
//
// Deprecated: use Spawn with the RealRate option, which accepts any
// ProgressSource.
func (s *System) SpawnRealRate(name string, prog Program, period time.Duration, links ...QueueLink) *Thread {
	if len(links) == 0 {
		panic("realrate: SpawnRealRate needs at least one queue link")
	}
	sources := make([]ProgressSource, len(links))
	for i, l := range links {
		sources[i] = l
	}
	th, err := s.Spawn(name, prog, RealRate(period, sources...))
	if err != nil {
		panic(err)
	}
	return th
}

// SpawnMiscellaneous creates a thread with no declared information; the
// constant-pressure heuristic grows its allocation until satisfied or
// squished.
//
// Deprecated: use Spawn, whose default class is miscellaneous.
func (s *System) SpawnMiscellaneous(name string, prog Program) *Thread {
	th, err := s.Spawn(name, prog, Miscellaneous())
	if err != nil {
		panic(err)
	}
	return th
}

// SpawnInteractive creates a tty-server thread: small period, proportion
// estimated from its bursts.
//
// Deprecated: use Spawn with the Interactive option.
func (s *System) SpawnInteractive(name string, prog Program) *Thread {
	th, err := s.Spawn(name, prog, Interactive())
	if err != nil {
		panic(err)
	}
	return th
}

// SpawnUnmanaged creates a thread outside the controller entirely; it runs
// round-robin in the leftover CPU below every registered thread, like
// unregistered jobs under the prototype's default Linux scheduler.
//
// Deprecated: use Spawn with the Unmanaged option.
func (s *System) SpawnUnmanaged(name string, prog Program) *Thread {
	th, err := s.Spawn(name, prog, Unmanaged())
	if err != nil {
		panic(err)
	}
	return th
}

// removeThread undoes a spawn whose registration failed: the kernel thread
// is retired (so a rejected program does not keep running in the leftover
// CPU), any progress sources registered before the failure are unlinked,
// and the public handle is unindexed. Unindexing happens before Retire so
// the exit hook does not announce a thread that never publicly existed.
func (s *System) removeThread(th *Thread) {
	delete(s.byKern, th.t)
	s.reg.Unregister(th.t)
	s.kern.Retire(th.t)
}

// Kill retires the thread immediately, as if its program had returned
// Exit(): it is removed from the scheduler, any pending sleep wakeup is
// canceled, and the partial run segment (if it was on the CPU) is charged.
// The controller reaps its job — freeing any admitted reservation — at the
// next control interval, exactly as for a natural exit. Killing an exited
// thread is a no-op.
//
// Kill is the remove half of admission churn (Spawn/Kill/Renegotiate
// cycles). Call it from outside the simulation or from a timer callback
// (System.After, System.Every); a program retiring itself must return
// Exit() instead. A killed thread that holds a Mutex never releases it.
func (th *Thread) Kill() {
	if th.exited {
		return
	}
	th.assertLive("Kill")
	th.sys.kern.Retire(th.t)
}

// assertLive panics when a handle that believes itself live points at a
// kernel slot whose generation has moved on — a recycled slot reissued to
// a different thread. The panic is deterministic (it names the handle and
// both generations) where the pre-generation failure mode was silent
// corruption of the slot's new occupant.
func (th *Thread) assertLive(op string) {
	if g := th.t.Gen(); g != th.gen {
		panic(fmt.Sprintf("realrate: %s on thread %q whose kernel slot was recycled (handle generation %d, slot now %d)", op, th.name, th.gen, g))
	}
}

// Exited reports whether the thread has exited (voluntarily or by Kill).
// An exited handle keeps serving its frozen final statistics even after
// the underlying kernel slot is recycled to a later spawn; mutating calls
// (Renegotiate, SetImportance) panic instead.
func (th *Thread) Exited() bool { return th.exited }

// Name returns the thread's name.
func (th *Thread) Name() string { return th.name }

// CPU returns the CPU the thread is currently assigned to (always 0 on a
// single-CPU machine); for an exited thread, the CPU it last ran on.
func (th *Thread) CPU() int {
	if th.exited {
		return th.exitCPU
	}
	return th.t.CPU()
}

// Pinned reports whether the thread was spawned with the Affinity option.
func (th *Thread) Pinned() bool { return th.pinned }

// Migrations returns how many times work-pull moved the thread between
// CPUs.
func (th *Thread) Migrations() uint64 {
	if th.exited {
		return th.exitMigrations
	}
	return th.t.Migrations()
}

// CPUTime returns the total simulated CPU the thread has consumed.
func (th *Thread) CPUTime() time.Duration {
	if th.exited {
		return th.exitCPUTime
	}
	return time.Duration(th.t.CPUTime())
}

// State returns the scheduling state as a string (ready, running, blocked,
// sleeping, exited).
func (th *Thread) State() string {
	if th.exited {
		return kernel.StateExited.String()
	}
	return th.t.State().String()
}

// Allocation returns the thread's current proportion in ppt (0 for
// unmanaged threads); for an exited thread, its final proportion.
func (th *Thread) Allocation() int {
	if th.exited {
		return th.exitAlloc
	}
	if th.job == nil {
		return 0
	}
	return th.job.Allocated()
}

// Desired returns the pre-squish proportion the controller last computed.
func (th *Thread) Desired() int {
	if th.exited {
		return th.exitDesired
	}
	if th.job == nil {
		return 0
	}
	return th.job.Desired()
}

// Period returns the thread's current period (0 for unmanaged threads).
func (th *Thread) Period() time.Duration {
	if th.exited {
		return th.exitPeriod
	}
	if th.job == nil {
		return 0
	}
	return time.Duration(th.job.Period())
}

// Pressure returns the controller's cumulative progress pressure Q_t for
// the thread.
func (th *Thread) Pressure() float64 {
	if th.exited {
		return th.exitPressure
	}
	if th.job == nil {
		return 0
	}
	return th.job.Pressure()
}

// Degraded returns the thread's rung on the graceful-degradation ladder:
// "real-rate" when healthy (and for every non-real-rate class), "fallback"
// or "misc" after the watchdog demoted it, and "" for unmanaged threads.
func (th *Thread) Degraded() string {
	if th.exited {
		return th.exitDegraded
	}
	if th.job == nil {
		return ""
	}
	return th.job.Degraded().String()
}

// Class returns the taxonomy class name, or "unmanaged".
func (th *Thread) Class() string {
	if th.exited {
		return th.exitClass
	}
	if th.job == nil {
		return "unmanaged"
	}
	return th.job.Class().String()
}

// Importance returns the weighted-fair-share weight (0 for unmanaged
// threads). Under the overload governor's shed rung, miscellaneous
// threads are killed in ascending importance order.
func (th *Thread) Importance() float64 {
	if th.exited {
		return th.exitImportance
	}
	if th.job == nil {
		return 0
	}
	return th.job.Importance()
}

// SetImportance sets the weighted-fair-share weight (default 1). Higher
// importance loses less under overload but can never starve others.
// Setting importance on an exited thread panics: its job is gone, and its
// kernel slot may already belong to a stranger.
func (th *Thread) SetImportance(w float64) {
	if th.exited {
		panic(fmt.Sprintf("realrate: SetImportance on exited thread %q (slot generation %d retired)", th.name, th.gen))
	}
	if th.job == nil {
		panic("realrate: cannot set importance: thread has no controller-managed job (unmanaged, or a baseline policy without the feedback controller)")
	}
	th.assertLive("SetImportance")
	th.sys.ctl.SetImportance(th.job, w)
}

// Squished reports whether overload reduced the thread below its desired
// allocation in the last control interval.
func (th *Thread) Squished() bool {
	if th.exited {
		return th.exitSquished
	}
	if th.job == nil {
		return false
	}
	return th.job.Squished()
}

// Renegotiate changes a real-time (or aperiodic real-time) thread's
// reserved proportion, subject to admission control. Applications
// typically call it from a quality-exception handler to lower their
// requirements under overload. Renegotiating an exited thread panics: its
// reservation is gone, and its kernel slot may already belong to a
// stranger.
func (th *Thread) Renegotiate(proportion int) error {
	if th.exited {
		panic(fmt.Sprintf("realrate: Renegotiate on exited thread %q (slot generation %d retired)", th.name, th.gen))
	}
	if th.job == nil {
		panic("realrate: cannot renegotiate: thread has no controller-managed job (unmanaged, or a baseline policy without the feedback controller)")
	}
	th.assertLive("Renegotiate")
	err := th.sys.ctl.Renegotiate(th.job, proportion)
	th.sys.fireAdmission(AdmissionEvent{
		Time: th.sys.Now(), Thread: th, Requested: proportion,
		Period: th.Period(), Accepted: err == nil, Err: err,
	})
	return err
}

// SpawnIntoJob creates a new thread as a member of th's job: the paper's
// "job is a collection of cooperating threads". The job's allocation is
// split across its members; its progress and usage are their combined
// metrics and CPU.
//
// Deprecated: use Spawn with the InJob option.
func (s *System) SpawnIntoJob(th *Thread, name string, prog Program) *Thread {
	member, err := s.Spawn(name, prog, InJob(th))
	if err != nil {
		panic(err)
	}
	return member
}
