package realrate_test

import (
	"strings"
	"testing"
	"time"

	realrate "repro"
)

// countingObserver tallies every observer callback.
type countingObserver struct {
	realrate.NopObserver
	dispatches  int
	nilDispatch int
	actuations  int
	quality     int
	admissions  []realrate.AdmissionEvent
	lastAct     map[string]int
}

func (o *countingObserver) OnDispatch(now time.Duration, th *realrate.Thread, cpu int) {
	if th == nil {
		o.nilDispatch++ // the controller's own thread has no public handle
		return
	}
	o.dispatches++
}

func (o *countingObserver) OnActuation(now time.Duration, th *realrate.Thread, prop int, period time.Duration) {
	o.actuations++
	if th != nil {
		if o.lastAct == nil {
			o.lastAct = make(map[string]int)
		}
		o.lastAct[th.Name()] = prop
	}
}

func (o *countingObserver) OnQuality(ev realrate.QualityEvent)                    { o.quality++ }
func (o *countingObserver) OnMigration(time.Duration, *realrate.Thread, int, int) {}
func (o *countingObserver) OnExit(now time.Duration, th *realrate.Thread)         {}
func (o *countingObserver) OnAdmission(ev realrate.AdmissionEvent) {
	o.admissions = append(o.admissions, ev)
}

func TestObserverSeesDispatchActuationAdmission(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	obs := &countingObserver{}
	sys.Observe(obs)

	rt, err := sys.Spawn("rt", realrate.HogProgram(400_000), realrate.Reserve(200, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn("greedy", realrate.HogProgram(1000), realrate.Reserve(900, 10*time.Millisecond)); err == nil {
		t.Fatal("oversubscription accepted")
	}
	misc, err := sys.Spawn("misc", realrate.HogProgram(400_000))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2 * time.Second)

	if obs.dispatches == 0 {
		t.Error("no dispatches observed")
	}
	if obs.nilDispatch == 0 {
		t.Error("controller thread dispatches not surfaced (nil handle expected)")
	}
	if obs.actuations == 0 {
		t.Error("no actuations observed")
	}
	if got := obs.lastAct["misc"]; got != misc.Allocation() {
		t.Errorf("last observed actuation for misc = %d, Allocation() = %d", got, misc.Allocation())
	}
	if got := obs.lastAct["rt"]; got != 200 {
		t.Errorf("rt actuated at %d ppt, want its 200 ppt reservation", got)
	}

	if len(obs.admissions) != 2 {
		t.Fatalf("admission events = %d, want 2 (one accept, one reject)", len(obs.admissions))
	}
	acc, rej := obs.admissions[0], obs.admissions[1]
	if !acc.Accepted || acc.Thread != rt || acc.Requested != 200 || acc.Period != 10*time.Millisecond {
		t.Errorf("accept event wrong: %+v", acc)
	}
	if rej.Accepted || rej.Err == nil || rej.Requested != 900 {
		t.Errorf("reject event wrong: %+v", rej)
	}

	// Renegotiation is an admission decision too.
	if err := rt.Renegotiate(300); err != nil {
		t.Fatal(err)
	}
	if len(obs.admissions) != 3 || !obs.admissions[2].Accepted || obs.admissions[2].Requested != 300 {
		t.Errorf("renegotiate admission event missing: %+v", obs.admissions)
	}
}

func TestObserverQualityAndTracingCompose(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	obs := &countingObserver{}
	sys.Observe(obs)
	tr := sys.EnableTracing(100) // tracing and observers share the hub

	pipe := sys.NewQueue("pipe", 1<<20)
	pc := true
	producer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		pc = !pc
		if pc {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(pipe, 20_000)
	})
	cc := true
	impossible := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		cc = !cc
		if cc {
			return realrate.Consume(pipe, 4096)
		}
		return realrate.Compute(400 * 4096) // needs 2x the whole CPU
	})
	if _, err := sys.Spawn("producer", producer, realrate.Reserve(100, 10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn("consumer", impossible, realrate.RealRate(0, realrate.ConsumerOf(pipe))); err != nil {
		t.Fatal(err)
	}
	userEvents := 0
	sys.OnQuality(func(ev realrate.QualityEvent) { userEvents++ })
	sys.Run(20 * time.Second)

	if obs.quality == 0 {
		t.Error("observer missed quality exceptions")
	}
	if userEvents != obs.quality {
		t.Errorf("OnQuality callback saw %d events, observer %d; both taps must fire", userEvents, obs.quality)
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dispatch,") {
		t.Error("trace recorder starved by observer hub")
	}
}

func TestMutexRegisteredWithSystem(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	m := sys.NewMutex("info_bus")
	if m.Name() != "info_bus" {
		t.Fatalf("mutex name = %q", m.Name())
	}
	names := sys.MutexNames()
	if len(names) != 1 || names[0] != "info_bus" {
		t.Fatalf("system mutex registry = %v, want [info_bus]", names)
	}
	// A second system's registry is independent.
	sys2 := realrate.NewSystem(realrate.Config{})
	if len(sys2.MutexNames()) != 0 {
		t.Fatal("mutex leaked across systems")
	}
}
