// Allocation budgets: tier-1 companions to the churn benchmarks. Each
// test runs the same scenario as its benchmark and fails if the heap
// allocation count regresses past a ceiling. The ceilings sit ~2x above
// the pooled steady state (SLOSessions n=10000 ≈ 13.3k allocs, storm
// n=10000 ≈ 0.7k), far below the pre-pooling counts (≈212k and ≈20.7k),
// so noise never trips them but losing the free lists always does.
package realrate_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload/gen"
)

// countAllocs returns the number of heap objects allocated while fn runs.
// A single measured run (after one warmup to populate lazy globals) is
// deterministic enough here: the simulator is single-goroutine and the
// ceilings leave 2x headroom.
func countAllocs(t *testing.T, fn func()) uint64 {
	t.Helper()
	fn() // warmup: interned tables, lazy pools, timer rings
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestAllocBudgetSLOSessions holds the live-service session storm
// (BenchmarkSLOSessions n=10000) to its allocation budget.
func TestAllocBudgetSLOSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget run is a full session storm")
	}
	const budget = 30_000
	got := countAllocs(t, func() {
		sp := experiments.SLOSpec(1, 10_000, 1.0, time.Second, 8)
		if _, err := gen.Generate(sp).Run(gen.RunOpts{
			Policy: "rbs", Controller: "event", NoInvariants: true,
		}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("SLOSessions n=10000: %d allocs (budget %d)", got, budget)
	if got > budget {
		t.Fatalf("session storm allocated %d objects, budget is %d: the pooled spawn→exit lifecycle regressed", got, budget)
	}
}

// TestAllocBudgetStormDispatch holds the open-loop dispatch storm
// (BenchmarkStormDispatch n=10000) to its allocation budget.
func TestAllocBudgetStormDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget run is a full dispatch storm")
	}
	const budget = 4_000
	got := countAllocs(t, func() {
		experiments.RunContextSwitchStorm(experiments.StormConfig{
			Threads: 10_000, RunFor: sim.Second,
		})
	})
	t.Logf("StormDispatch n=10000: %d allocs (budget %d)", got, budget)
	if got > budget {
		t.Fatalf("dispatch storm allocated %d objects, budget is %d: the pooled spawn→exit lifecycle regressed", got, budget)
	}
}
