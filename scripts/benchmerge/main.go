// Command benchmerge folds `go test -bench` output (stdin) into
// BENCH_results.json as a dated history entry, so the performance
// trajectory accumulates PR over PR instead of overwriting itself.
//
// Usage: go test -bench … | go run ./scripts/benchmerge -file BENCH_results.json -date 2026-07-28 -label pr2
//
// The file's schema after merging:
//
//	{
//	  "note": …,
//	  "baseline_pre_event_core": {…},   // kept verbatim, the seed anchor
//	  "history": [ {"date": …, "label": …, "results": {name: {ns_op, b_op, allocs_op, metrics…}}} ]
//	}
//
// A legacy top-level "current" object is migrated into the history on
// first contact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	var (
		file  = flag.String("file", "BENCH_results.json", "results file to update")
		date  = flag.String("date", "", "date stamp for this entry (YYYY-MM-DD)")
		label = flag.String("label", "dev", "label for this entry")
	)
	flag.Parse()

	doc := map[string]any{}
	if raw, err := os.ReadFile(*file); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchmerge: %s is not valid JSON (%v); starting fresh\n", *file, err)
			doc = map[string]any{}
		}
	}

	history, _ := doc["history"].([]any)
	if cur, ok := doc["current"]; ok {
		history = append(history, map[string]any{
			"date": "", "label": "migrated-current", "results": cur,
		})
		delete(doc, "current")
	}

	results := map[string]any{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		entry := map[string]any{}
		// fields[1] is the iteration count; value/unit pairs follow:
		// "BenchmarkX-8 10 123 ns/op 4 B/op 5 allocs/op 6 widgets".
		for i := 3; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i]; unit {
			case "ns/op":
				entry["ns_op"] = v
			case "B/op":
				entry["b_op"] = v
			case "allocs/op":
				entry["allocs_op"] = v
			default:
				entry[strings.NewReplacer("/", "_", "-", "_").Replace(unit)] = v
			}
		}
		if len(entry) > 0 {
			results[name] = entry
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchmerge: no benchmark lines on stdin")
		os.Exit(1)
	}

	// Record per-benchmark allocation deltas against the previous history
	// entry, so allocation regressions are visible in the file itself and
	// on stdout, not only by diffing entries by hand.
	if len(history) > 0 {
		prevEntry, _ := history[len(history)-1].(map[string]any)
		prevResults, _ := prevEntry["results"].(map[string]any)
		for name, v := range results {
			entry := v.(map[string]any)
			cur, ok := entry["allocs_op"].(float64)
			if !ok {
				continue
			}
			prev, ok := prevResults[name].(map[string]any)
			if !ok {
				continue
			}
			old, ok := prev["allocs_op"].(float64)
			if !ok {
				continue
			}
			entry["allocs_op_delta"] = cur - old
			if cur != old {
				fmt.Printf("benchmerge: %s allocs/op %+.0f (%.0f -> %.0f)\n", name, cur-old, old, cur)
			}
		}
	}

	doc["history"] = append(history, map[string]any{
		"date": *date, "label": *label, "results": results,
	})
	if _, ok := doc["note"]; !ok {
		doc["note"] = "ns_op is wall time per op; Simulated*/Storm benches are wall time per simulated window"
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*file, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
	fmt.Printf("benchmerge: appended %q (%d benchmarks) to %s\n", *label, len(results), *file)
}
