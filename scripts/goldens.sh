#!/usr/bin/env bash
# Regenerates the Figure 5-8 outputs and byte-compares them against the
# committed goldens in testdata/goldens/. Any drift in the dispatch
# schedule or controller arithmetic fails the build.
#
# To re-bless after an intentional change: scripts/goldens.sh -update
set -euo pipefail
cd "$(dirname "$0")/.."

update=0
[ "${1:-}" = "-update" ] && update=1

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/rrexp" ./cmd/rrexp

status=0

# CPUs=1 equivalence: the SMP kernel pinned to one CPU must reproduce the
# committed pre-SMP dispatch trace byte-for-byte.
if go test -run 'TestRBSDispatchTraceGolden|TestSMPOneCPUGoldenEquivalence' -count=1 . >/dev/null; then
  echo "rbs_dispatch (CPUs=1): byte-identical"
else
  echo "rbs_dispatch (CPUs=1): diverged" >&2
  status=1
fi

for fig in 5 6 7 8; do
  "$tmp/rrexp" -fig "$fig" > "$tmp/fig$fig.out"
  golden="testdata/goldens/fig$fig.golden"
  if [ "$update" = 1 ]; then
    cp "$tmp/fig$fig.out" "$golden"
    echo "fig$fig: updated"
  elif cmp -s "$golden" "$tmp/fig$fig.out"; then
    echo "fig$fig: byte-identical"
  else
    echo "fig$fig: output diverged from $golden:" >&2
    diff "$golden" "$tmp/fig$fig.out" >&2 || true
    status=1
  fi
done
exit $status
