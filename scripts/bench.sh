#!/bin/sh
# bench.sh — run the event-core hot-path benchmarks and record the results
# in BENCH_results.json, preserving the recorded pre-rewrite baseline so
# every future PR can compare against both.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_results.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkEngineScheduleAndFire|BenchmarkEngineChainedTimers|BenchmarkEngineManyPending' \
    -benchmem ./internal/sim/ >>"$tmp" 2>&1
go test -run '^$' -bench 'BenchmarkSimulatedSecondOneHog|BenchmarkSimulatedSecondPipeline|BenchmarkContextSwitchStorm|BenchmarkTimerHeavySleepers' \
    -benchmem ./internal/kernel/ >>"$tmp" 2>&1

# The baseline below was measured at the seed commit, before the timer-
# wheel/event-pool rewrite (container/heap queue, per-event allocations),
# on the same benchmarks. It is kept verbatim as the comparison anchor.
awk '
BEGIN {
    print "{"
    print "  \"note\": \"ns_op is wall time per op; the Simulated* benches are wall time per simulated second\","
    print "  \"baseline_pre_event_core\": {"
    print "    \"BenchmarkEngineScheduleAndFire\":   {\"ns_op\": 76.97,   \"b_op\": 48,     \"allocs_op\": 1},"
    print "    \"BenchmarkEngineChainedTimers\":     {\"ns_op\": 71.49,   \"b_op\": 48,     \"allocs_op\": 1},"
    print "    \"BenchmarkEngineManyPending\":       {\"ns_op\": 532.1,   \"b_op\": 92,     \"allocs_op\": 1},"
    print "    \"BenchmarkSimulatedSecondOneHog\":   {\"ns_op\": 421972,  \"b_op\": 201428, \"allocs_op\": 6593},"
    print "    \"BenchmarkSimulatedSecondPipeline\": {\"ns_op\": 1420188, \"b_op\": 629788, \"allocs_op\": 24574},"
    print "    \"BenchmarkContextSwitchStorm\":      {\"ns_op\": 100103,  \"b_op\": 27738,  \"allocs_op\": 896},"
    print "    \"BenchmarkTimerHeavySleepers\":      {\"ns_op\": 771733,  \"b_op\": 273062, \"allocs_op\": 11866}"
    print "  },"
    print "  \"current\": {"
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; b = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      b = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    line = sprintf("    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", name, ns, b, allocs)
    if (n++) printf(",\n")
    printf("%s", line)
}
END {
    print ""
    print "  }"
    print "}"
}
' "$tmp" >"$out"

echo "wrote $out"
cat "$out"
