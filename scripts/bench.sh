#!/bin/sh
# bench.sh — run the hot-path benchmarks and append a dated entry to
# BENCH_results.json (via scripts/benchmerge), preserving the recorded
# pre-rewrite baseline and every previous entry so the performance
# trajectory accumulates PR over PR.
#
# Usage: scripts/bench.sh [label]
set -eu

cd "$(dirname "$0")/.."
label="${1:-dev}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Event-core benches: the simulator's fundamental speed.
go test -run '^$' -bench 'BenchmarkEngineScheduleAndFire|BenchmarkEngineChainedTimers|BenchmarkEngineManyPending' \
    -benchmem ./internal/sim/ >>"$tmp" 2>&1
go test -run '^$' -bench 'BenchmarkSimulatedSecondOneHog|BenchmarkSimulatedSecondPipeline|BenchmarkContextSwitchStorm|BenchmarkTimerHeavySleepers' \
    -benchmem ./internal/kernel/ >>"$tmp" 2>&1

# Scheduler-core scaling benches: dispatch cost versus thread count and
# the allocation-free controller tick.
go test -run '^$' -bench 'BenchmarkStormDispatch' -benchtime 30x -benchmem . >>"$tmp" 2>&1
go test -run '^$' -bench 'BenchmarkControllerStep' -benchtime 200x -benchmem ./internal/core/ >>"$tmp" 2>&1

# Workload-breadth bench: admission-churn throughput (Spawn/Kill/
# Renegotiate near capacity with the invariant checker live).
go test -run '^$' -bench 'BenchmarkChurnThroughput' -benchtime 10x -benchmem . >>"$tmp" 2>&1

# SMP storm bench: fixed backlog drained on 1/2/4/8 CPUs — wall time must
# fall as CPUs grow (the SMP kernel's throughput claim).
go test -run '^$' -bench 'BenchmarkStormSMP' -benchtime 3x -benchmem . >>"$tmp" 2>&1

# Overload governor bench: the same hog storm with the governor off and
# enabled-but-idle. The dispatches metric (storm throughput on the
# simulated machine) must be identical; the ns/op delta is the host-side
# SLO-tap/governor instrumentation cost.
go test -run '^$' -bench 'BenchmarkOverloadGovernor' -benchtime 10x -benchmem . >>"$tmp" 2>&1

# Sharded control-plane benches (pr8-ctlplane): one full control epoch at
# 10k and 100k jobs, periodic vs event mode — the event plane's per-job
# cost must stay sublinear-ish (n=100k < 2× the n=10k per-job cost). The
# 1M-job soak logs admission and per-epoch wall time into the test output.
go test -run '^$' -bench 'BenchmarkControllerStep' -benchtime 20x -benchmem ./internal/ctlplane/ >>"$tmp" 2>&1
go test -run 'TestSoak1MAdmission' -v ./internal/ctlplane/ >>"$tmp" 2>&1

# Live-service SLO bench (pr9-slo-family): a simulated second of the slo
# scenario family — open-loop session arrivals through three-stage
# pipelines under rbs + the event-driven governed control plane — at 10k
# and 100k drawn sessions. ms_per_epoch is the host cost per 10 ms control
# epoch; the 100k point must hold under ~2× the pr8 control-plane cost.
go test -run '^$' -bench 'BenchmarkSLOSessions' -benchtime 3x -benchmem . >>"$tmp" 2>&1

go run ./scripts/benchmerge -file BENCH_results.json -date "$(date -u +%F)" -label "$label" <"$tmp"
