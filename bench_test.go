// Benchmarks regenerating every figure in the paper's evaluation section,
// plus ablation benches for the design choices DESIGN.md calls out. Each
// benchmark runs the corresponding experiment harness on a shortened window
// per iteration and reports the figure's headline numbers as custom
// metrics, so `go test -bench=.` reproduces the whole evaluation:
//
//	Figure 5 → BenchmarkFig5ControllerOverhead (slope/intercept/R²)
//	Figure 6 → BenchmarkFig6Responsiveness (response time, fill, tracking)
//	Figure 7 → BenchmarkFig7UnderLoad (+ hog share under squish)
//	Figure 8 → BenchmarkFig8DispatchOverhead (overhead at 4 kHz, knee)
//	§2       → BenchmarkPathfinderInversion, BenchmarkSpinWaitLivelock
package realrate_test

import (
	"fmt"
	"testing"
	"time"

	realrate "repro"
	"repro/internal/experiments"
	"repro/internal/pid"
	"repro/internal/rbs"
	"repro/internal/sim"
	"repro/internal/workload/gen"
)

// BenchmarkFig5SweepSerial and ...SweepParallel A/B the experiment sweep
// runner itself on Figure 5's process-count sweep: identical per-point
// results (asserted by TestFig5ParallelMatchesSerial), different wall time
// on multicore hosts.
func BenchmarkFig5SweepSerial(b *testing.B) {
	experiments.SetParallel(false)
	defer experiments.SetParallel(true)
	for i := 0; i < b.N; i++ {
		experiments.RunFig5(experiments.Fig5Config{
			MaxProcesses: 40, Step: 10, RunFor: 5 * sim.Second,
		})
	}
}

func BenchmarkFig5SweepParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig5(experiments.Fig5Config{
			MaxProcesses: 40, Step: 10, RunFor: 5 * sim.Second,
		})
	}
}

func BenchmarkFig5ControllerOverhead(b *testing.B) {
	var fit struct{ slope, intercept, r2, at40 float64 }
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig5(experiments.Fig5Config{
			MaxProcesses: 40, Step: 10, RunFor: 5 * sim.Second,
		})
		fit.slope = res.Fit.Slope
		fit.intercept = res.Fit.Intercept
		fit.r2 = res.Fit.R2
		fit.at40 = res.At40
	}
	b.ReportMetric(fit.slope, "slope")
	b.ReportMetric(fit.intercept, "intercept")
	b.ReportMetric(fit.r2, "R2")
	b.ReportMetric(fit.at40*100, "pct-at-40-jobs")
}

func BenchmarkFig6Responsiveness(b *testing.B) {
	var last experiments.PipelineResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunPipeline(experiments.PipelineConfig{
			Duration: 10 * sim.Second,
			// One rising pulse inside the shortened window.
			PulseWidths: []sim.Duration{2 * sim.Second},
		})
	}
	b.ReportMetric(last.ResponseTime.Seconds()*1000, "response-ms")
	b.ReportMetric(last.MeanFill, "mean-fill")
	b.ReportMetric(last.TrackingError*100, "tracking-err-pct")
}

func BenchmarkFig7UnderLoad(b *testing.B) {
	var last experiments.PipelineResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunPipeline(experiments.PipelineConfig{
			Duration:    10 * sim.Second,
			PulseWidths: []sim.Duration{2 * sim.Second},
			WithHog:     true,
		})
	}
	b.ReportMetric(last.ResponseTime.Seconds()*1000, "response-ms")
	b.ReportMetric(last.HogShare, "hog-share")
	b.ReportMetric(last.TrackingError*100, "tracking-err-pct")
}

func BenchmarkFig8DispatchOverhead(b *testing.B) {
	var last experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig8(experiments.Fig8Config{
			Frequencies: []int64{100, 1000, 4000, 10000},
			RunFor:      2 * sim.Second,
		})
	}
	b.ReportMetric(last.OverheadAt4kHz*100, "overhead-at-4kHz-pct")
	b.ReportMetric(float64(last.KneeHz), "knee-hz")
}

// BenchmarkStormDispatch measures wall time per simulated second of a
// machine saturated with N registered CPU-bound threads — the dispatcher's
// large-N scaling curve. With the linear-scan runnable queue this grew
// O(n) per dispatch; the indexed-heap core keeps it near-logarithmic.
func BenchmarkStormDispatch(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var last experiments.StormResult
			for i := 0; i < b.N; i++ {
				last = experiments.RunContextSwitchStorm(experiments.StormConfig{
					Threads: n, RunFor: sim.Second,
				})
			}
			b.ReportMetric(float64(last.Dispatches), "dispatches")
			b.ReportMetric(float64(last.Wakeups), "wakeups")
		})
	}
}

// BenchmarkStormSMP measures wall time to drain a fixed backlog — n
// registered CPU-bound threads, each owing a fixed amount of work — on
// machines of 1/2/4/8 CPUs. More CPUs retire the same backlog in fewer
// simulated seconds (sim_elapsed_s), which is what pulls the wall time
// down with it: the throughput claim of the SMP kernel, recorded in
// BENCH_results.json by scripts/bench.sh.
func BenchmarkStormSMP(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, cpus := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/cpus=%d", n, cpus), func(b *testing.B) {
				b.ReportAllocs()
				var last experiments.StormResult
				for i := 0; i < b.N; i++ {
					last = experiments.RunContextSwitchStorm(experiments.StormConfig{
						Threads: n, CPUs: cpus, Work: 4_000_000,
					})
				}
				if last.Completed != n {
					b.Fatalf("backlog not drained: %d/%d threads completed in %v",
						last.Completed, n, last.SimElapsed)
				}
				b.ReportMetric(last.SimElapsed.Seconds(), "sim_elapsed_s")
				b.ReportMetric(float64(last.Migrations), "migrations")
			})
		}
	}
}

// BenchmarkChurnThroughput measures wall time per simulated second of the
// admission-churn stress: Spawn/Kill/Renegotiate cycles near the admission
// ceiling with the invariant checker live — the Remove/exit hot path under
// load. ops/simsec reports how much churn each simulated second absorbed.
func BenchmarkChurnThroughput(b *testing.B) {
	for _, rate := range []float64{200, 800} {
		b.Run(fmt.Sprintf("rate=%.0f", rate), func(b *testing.B) {
			b.ReportAllocs()
			var last experiments.ChurnResult
			for i := 0; i < b.N; i++ {
				last = experiments.RunChurnStress([]float64{rate}, sim.Second)
			}
			ops, violations := 0, 0
			for _, p := range last.Points {
				ops += p.Spawned + p.Kills
				violations += p.Violations
			}
			if violations > 0 {
				b.Fatalf("churn bench found %d invariant violations", violations)
			}
			b.ReportMetric(float64(ops)/float64(len(last.Points)), "ops/simsec")
		})
	}
}

// BenchmarkFig5Scale extends Figure 5's x-axis to 1000 controlled
// processes through the parallel sweep runner.
func BenchmarkFig5Scale(b *testing.B) {
	var last experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		last = experiments.RunFig5(experiments.Fig5Config{
			MaxProcesses: 1000, Step: 250, RunFor: 2 * sim.Second,
		})
	}
	b.ReportMetric(last.Points[len(last.Points)-1].Overhead*100, "pct-at-1000-jobs")
}

func BenchmarkPathfinderInversion(b *testing.B) {
	var last experiments.PathfinderResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunPathfinder(20 * sim.Second)
	}
	b.ReportMetric(float64(last.PriorityResets), "resets-fixed-priority")
	b.ReportMetric(float64(last.RealRateResets), "resets-real-rate")
}

func BenchmarkSpinWaitLivelock(b *testing.B) {
	var last experiments.LivelockResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunLivelock(5 * sim.Second)
	}
	b.ReportMetric(float64(last.PriorityInputs), "inputs-fixed-priority")
	b.ReportMetric(float64(last.RealRateInputs), "inputs-real-rate")
}

// BenchmarkAllocationVariance regenerates the abstract's claim of "lower
// variance in the amount of cycles allocated to a thread" against Linux
// goodness and lottery scheduling.
func BenchmarkAllocationVariance(b *testing.B) {
	var last experiments.VarianceResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunVariance(10 * sim.Second)
	}
	for _, row := range last.Rows {
		switch row.Scheduler {
		case "real-rate (this paper)":
			b.ReportMetric(row.StdShare, "std-realrate")
		case "linux-goodness":
			b.ReportMetric(row.StdShare, "std-linux")
		case "lottery (a-priori tickets)":
			b.ReportMetric(row.StdShare, "std-lottery")
		}
	}
}

// BenchmarkInteractiveLatency regenerates §4.1's interactive-response
// claim under full CPU load.
func BenchmarkInteractiveLatency(b *testing.B) {
	var last experiments.InteractiveResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunInteractiveLatency(10 * sim.Second)
	}
	for _, row := range last.Rows {
		if row.Scheduler == "real-rate (this paper)" {
			b.ReportMetric(row.P99.Seconds()*1000, "p99-ms-realrate")
			b.ReportMetric(float64(row.Handled), "handled-realrate")
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §5) ---

func benchGain(b *testing.B, name string, gains pid.Config) {
	var last experiments.GainAblationResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunGainAblation(name, gains, 10*sim.Second)
	}
	b.ReportMetric(last.ResponseTime.Seconds()*1000, "response-ms")
	b.ReportMetric(last.FillStd, "fill-std")
	b.ReportMetric(last.TrackingError*100, "tracking-err-pct")
}

func BenchmarkAblationFilterPOnly(b *testing.B) {
	benchGain(b, "P", pid.Config{Kp: 1.0})
}

func BenchmarkAblationFilterPI(b *testing.B) {
	benchGain(b, "PI", pid.Config{Kp: 1.0, Ki: 4.0})
}

func BenchmarkAblationFilterPID(b *testing.B) {
	benchGain(b, "PID", pid.Config{Kp: 1.0, Ki: 4.0, Kd: 0.05})
}

func BenchmarkAblationReclaimOn(b *testing.B) {
	var last experiments.ReclaimAblationResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunReclaimAblation(true, 10*sim.Second)
	}
	b.ReportMetric(last.ConsumerAlloc, "bottlenecked-alloc-ppt")
	b.ReportMetric(last.HogShare, "hog-share")
}

func BenchmarkAblationReclaimOff(b *testing.B) {
	var last experiments.ReclaimAblationResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunReclaimAblation(false, 10*sim.Second)
	}
	b.ReportMetric(last.ConsumerAlloc, "bottlenecked-alloc-ppt")
	b.ReportMetric(last.HogShare, "hog-share")
}

func BenchmarkAblationDispatcherRMS(b *testing.B) {
	var last experiments.DisciplineAblationResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunDisciplineAblation(rbs.RMS, 5*sim.Second)
	}
	b.ReportMetric(float64(last.MissedDeadlines), "missed-deadlines")
}

func BenchmarkAblationDispatcherEDF(b *testing.B) {
	var last experiments.DisciplineAblationResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunDisciplineAblation(rbs.EDF, 5*sim.Second)
	}
	b.ReportMetric(float64(last.MissedDeadlines), "missed-deadlines")
}

func BenchmarkAblationQuantizedDispatch(b *testing.B) {
	var last experiments.QuantizationAblationResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunQuantizationAblation(false, 5*sim.Second)
	}
	b.ReportMetric(last.Overdelivery, "overdelivery-x")
}

func BenchmarkAblationPreciseDispatch(b *testing.B) {
	var last experiments.QuantizationAblationResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunQuantizationAblation(true, 5*sim.Second)
	}
	b.ReportMetric(last.Overdelivery, "overdelivery-x")
}

// BenchmarkSLOSessions prices the live-service scenario family at scale:
// n sessions offered over one simulated second to an 8-CPU machine under
// rbs and the sharded event-driven control plane — exactly the spec
// rrexp -slo runs (experiments.SLOSpec), with the invariant checker off,
// so the measured cost is the workload plus the control plane and nothing
// else. ms_per_epoch is the host wall-clock per 10 ms control epoch, the
// budget the scale runs are held to; sessions_started/completed confirm
// the machine actually served the storm rather than refusing it at the
// door.
func BenchmarkSLOSessions(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var last gen.SessionReport
			var host time.Duration
			for i := 0; i < b.N; i++ {
				sp := experiments.SLOSpec(1, n, 1.0, time.Second, 8)
				start := time.Now()
				res, err := gen.Generate(sp).Run(gen.RunOpts{
					Policy: "rbs", Controller: "event", NoInvariants: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				host = time.Since(start)
				last = res.Report.Sessions
			}
			if last.Started == 0 || last.Completed == 0 {
				b.Fatalf("storm never served: %+v", last)
			}
			epochs := float64(time.Second / (10 * time.Millisecond))
			b.ReportMetric(float64(host)/float64(time.Millisecond)/epochs, "ms_per_epoch")
			b.ReportMetric(float64(last.Started), "sessions_started")
			b.ReportMetric(float64(last.Completed), "sessions_completed")
		})
	}
}

// BenchmarkOverloadGovernor prices the overload governor on the public
// storm path: the same hog storm with Config.Overload nil ("off" — the
// committed-golden configuration) and with the governor armed but never
// tripping ("idle" — an astronomically high GapFactor, so every interval
// pays the full signal assembly, SLO tap, and ladder bookkeeping while
// the rung stays at normal). The dispatches metric is the storm's
// throughput on the simulated machine and must be IDENTICAL across the
// two runs — an idle governor steals zero simulated CPU and never
// perturbs the schedule (TestGovernorIdleZeroThroughputCost pins this at
// ≤1%, actually 0%, in the regular test suite). The ns/op delta is the
// host-side instrumentation cost of the SLO tap and governor sampling —
// wall clock, not machine throughput — recorded in BENCH_results.json
// by scripts/bench.sh so the trajectory is tracked PR over PR.
func BenchmarkOverloadGovernor(b *testing.B) {
	run := func(b *testing.B, overload *realrate.OverloadConfig) {
		b.ReportAllocs()
		var dispatches uint64
		for i := 0; i < b.N; i++ {
			sys := realrate.NewSystem(realrate.Config{Overload: overload})
			for j := 0; j < 200; j++ {
				if _, err := sys.Spawn(fmt.Sprintf("hog%d", j),
					realrate.HogProgram(400_000)); err != nil {
					b.Fatal(err)
				}
			}
			sys.Run(10e9)
			dispatches = sys.Stats().Dispatches
			if overload != nil && sys.Health().OverloadRung != "normal" {
				b.Fatalf("governor not idle: rung %s", sys.Health().OverloadRung)
			}
		}
		b.ReportMetric(float64(dispatches), "dispatches")
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("idle", func(b *testing.B) {
		run(b, &realrate.OverloadConfig{GapFactor: 1e12})
	})
}
