// Quickstart: a producer/consumer pipeline under feedback-driven real-rate
// scheduling.
//
// The producer holds a fixed reservation (10% of the CPU every 10 ms) and
// writes into a bounded buffer. The consumer declares nothing but its role
// on the queue; the controller watches the fill level and discovers the
// allocation that matches the consumer's throughput to the producer's —
// about 20% of the CPU with these parameters — holding the queue near
// half-full.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	realrate "repro"
)

func main() {
	sys := realrate.NewSystem(realrate.Config{})

	// A 1 MiB bounded buffer with a symbiotic interface: the scheduler
	// can see its fill level.
	pipe := sys.NewQueue("pipe", 1<<20)

	// Producer: loop 400k cycles (1 ms of its allocation), then enqueue a
	// 20 kB block. At 10% of a 400 MHz CPU that is ≈2 MB/s.
	computing := true
	producer := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		computing = !computing
		if computing {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(pipe, 20_000)
	})

	// Consumer: dequeue 4 kB blocks and burn 40 cycles per byte. To keep
	// up with 2 MB/s it needs 80M cycles/s — 20% of the CPU. Nobody
	// tells the scheduler that; it must find out.
	consuming := true
	consumer := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		consuming = !consuming
		if consuming {
			return realrate.Consume(pipe, 4096)
		}
		return realrate.Compute(40 * 4096)
	})

	if _, err := sys.Spawn("producer", producer, realrate.Reserve(100, 10*time.Millisecond)); err != nil {
		panic(err)
	}
	cons, err := sys.Spawn("consumer", consumer, realrate.RealRate(0, realrate.ConsumerOf(pipe)))
	if err != nil {
		panic(err)
	}

	fmt.Println("time    fill   consumer-allocation  consumer-pressure")
	sys.Every(500*time.Millisecond, func(now time.Duration) {
		fmt.Printf("%5.1fs  %.3f  %4d ppt             %+.3f\n",
			now.Seconds(), pipe.FillLevel(), cons.Allocation(), cons.Pressure())
	})
	sys.Run(5 * time.Second)

	fmt.Printf("\nafter 5s: consumer discovered %d ppt (expected ≈200); fill %.3f (target 0.5)\n",
		cons.Allocation(), pipe.FillLevel())
	fmt.Printf("bytes through the pipe: %d produced, %d consumed\n",
		pipe.Produced(), pipe.Consumed())
}
