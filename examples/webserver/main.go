// Webserver: a server is "essentially the consumer of a bounded buffer,
// where the producer may or may not be on the same machine" (§3.2). Bursty
// request traffic fills a request queue; the server drains it under
// feedback control while a background batch job (a miscellaneous CPU hog)
// competes for the machine. Importance weighting keeps the server
// responsive under overload without starving the batch job.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"time"

	realrate "repro"
)

const requestBytes = 512 // each queued request is 512 bytes of state

func main() {
	sys := realrate.NewSystem(realrate.Config{})
	requests := sys.NewQueue("requests", 256*1024)

	// Traffic source: a NIC-like device with a small reservation. It
	// alternates calm (400 req/s) and burst (1600 req/s) phases every 3
	// seconds.
	phase := 0
	source := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		phase++
		if phase%2 == 1 {
			rate := 400
			if int(now/(3*time.Second))%2 == 1 {
				rate = 1600
			}
			interval := time.Second / time.Duration(rate)
			return realrate.Sleep(interval)
		}
		return realrate.Produce(requests, requestBytes)
	})
	if _, err := sys.Spawn("nic", source, realrate.Reserve(20, 5*time.Millisecond)); err != nil {
		panic(err)
	}

	// Server: 400k cycles per request (1 ms at 400 MHz). At 1600 req/s it
	// needs 640M cycles/s — more than the machine, so bursts briefly
	// queue up and drain in the calm phases.
	served := 0
	serving := true
	server := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		serving = !serving
		if serving {
			return realrate.Consume(requests, requestBytes)
		}
		served++
		return realrate.Compute(400_000)
	})
	srv, err := sys.Spawn("httpd", server,
		realrate.RealRate(0, realrate.ConsumerOf(requests)),
		realrate.Importance(4)) // the server matters more than batch work
	if err != nil {
		panic(err)
	}

	// Background batch job: takes whatever is left (miscellaneous is the
	// default class).
	batch, err := sys.Spawn("batch", realrate.HogProgram(400_000))
	if err != nil {
		panic(err)
	}

	sys.OnQuality(func(ev realrate.QualityEvent) {
		fmt.Printf("%5.1fs  QUALITY EXCEPTION: %s squished %d→%d ppt (overloaded burst)\n",
			ev.Time.Seconds(), ev.Thread.Name(), ev.Desired, ev.Allocated)
	})

	fmt.Println("time    queue-fill  served  httpd(ppt)  batch(ppt)")
	lastServed := 0
	sys.Every(time.Second, func(now time.Duration) {
		fmt.Printf("%5.1fs  %.3f       %5d   %4d        %4d\n",
			now.Seconds(), requests.FillLevel(), served-lastServed,
			srv.Allocation(), batch.Allocation())
		lastServed = served
	})
	sys.Run(12 * time.Second)

	st := sys.Stats()
	fmt.Printf("\nserved %d requests; batch job still got %.1f%% of the CPU (no starvation)\n",
		served, 100*batch.CPUTime().Seconds()/st.Elapsed.Seconds())
}
