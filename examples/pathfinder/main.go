// Pathfinder: the Mars Pathfinder scenario of §2 under real-rate
// scheduling. Three tasks share a mutex-protected information bus: a
// periodic bus-management task (with a real-time reservation), a hungry
// communications task, and a low-importance meteorological task that holds
// the mutex while it works.
//
// Under the spacecraft's fixed priorities this workload repeatedly reset
// the system: the communications task starved the meteorological task while
// it held the mutex the bus task needed — priority inversion. Under
// progress-based allocation the meteorological task cannot be starved, so
// it always releases the mutex promptly and the watchdog stays quiet. (Run
// `rrexp -pathfinder` for the side-by-side comparison with the
// fixed-priority scheduler.)
//
// Run with: go run ./examples/pathfinder
package main

import (
	"fmt"
	"time"

	realrate "repro"
)

func main() {
	sys := realrate.NewSystem(realrate.Config{})
	bus := sys.NewMutex("info_bus")

	const (
		busPeriod = 125 * time.Millisecond
		deadline  = 250 * time.Millisecond
	)

	// Bus management: every cycle, grab the bus, exchange data, release.
	var (
		busDone     int
		lastDone    time.Duration
		resets      int
		periodStart time.Duration
	)
	busPhase := 0
	busMgmt := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		busPhase++
		switch busPhase % 4 {
		case 1:
			periodStart = now
			return realrate.Lock(bus)
		case 2:
			return realrate.Compute(400_000) // 1 ms of bus work
		case 3:
			return realrate.Unlock(bus)
		default:
			busDone++
			lastDone = now
			return realrate.SleepUntil(periodStart + busPeriod)
		}
	})

	// Watchdog: resets the spacecraft if a bus cycle goes missing.
	wdPhase := 0
	watchdog := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		wdPhase++
		if wdPhase%2 == 1 {
			return realrate.Sleep(deadline / 4)
		}
		if now-lastDone > deadline {
			resets++
			fmt.Printf("%6.2fs  WATCHDOG RESET (bus silent for %v)\n", now.Seconds(), now-lastDone)
			lastDone = now
		}
		return realrate.Compute(10_000)
	})

	// Communications: long CPU bursts, nearly always runnable.
	commsPhase := 0
	comms := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		commsPhase++
		if commsPhase%2 == 1 {
			return realrate.Compute(40_000_000) // 100 ms bursts
		}
		return realrate.Sleep(time.Millisecond)
	})

	// Meteorological data: holds the bus mutex for 5 ms of work.
	weatherRuns := 0
	weatherPhase := 0
	weather := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		weatherPhase++
		switch weatherPhase % 4 {
		case 1:
			return realrate.Lock(bus)
		case 2:
			return realrate.Compute(2_000_000)
		case 3:
			return realrate.Unlock(bus)
		default:
			weatherRuns++
			return realrate.Sleep(5 * time.Millisecond)
		}
	})

	if _, err := sys.Spawn("bus_mgmt", busMgmt, realrate.Reserve(50, busPeriod)); err != nil {
		panic(err)
	}
	if _, err := sys.Spawn("watchdog", watchdog, realrate.Reserve(10, deadline/4)); err != nil {
		panic(err)
	}
	c, err := sys.Spawn("comms", comms)
	if err != nil {
		panic(err)
	}
	w, err := sys.Spawn("weather", weather)
	if err != nil {
		panic(err)
	}

	sys.Run(30 * time.Second)

	fmt.Printf("after 30s: %d bus cycles, %d watchdog resets\n", busDone, resets)
	fmt.Printf("comms got %.1f%% CPU, weather completed %d sections (%.1f%% CPU)\n",
		100*c.CPUTime().Seconds()/30, weatherRuns, 100*w.CPUTime().Seconds()/30)
	if resets == 0 {
		fmt.Println("no priority inversion: the lock holder was never starved.")
	}
}
