// Videopipeline: the multimedia pipeline of §4.4. Three stages communicate
// through shared queues: a capture source with a fixed reservation, a video
// decoder, and a renderer. The decoder needs vastly more CPU per byte than
// the renderer — and, as the paper reports, "our controller automatically
// identifies that one stage of the pipeline has vastly different CPU
// requirements than the others (the video decoder), even though all the
// processes have the same priority."
//
// Run with: go run ./examples/videopipeline
package main

import (
	"fmt"
	"time"

	realrate "repro"
)

// stage consumes fixed blocks from in, burns cyclesPerByte, produces into
// out (when non-nil).
func stage(in, out *realrate.Queue, block int64, cyclesPerByte int64) realrate.Program {
	phase := 0
	return realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		phase++
		switch phase % 3 {
		case 1:
			return realrate.Consume(in, block)
		case 2:
			return realrate.Compute(cyclesPerByte * block)
		default:
			if out == nil {
				return realrate.Compute(1)
			}
			return realrate.Produce(out, block)
		}
	})
}

func main() {
	sys := realrate.NewSystem(realrate.Config{})

	compressed := sys.NewQueue("compressed", 1<<20)
	frames := sys.NewQueue("frames", 1<<20)

	// Capture source: fixed reservation, 2 MB/s of compressed data.
	computing := true
	source := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		computing = !computing
		if computing {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(compressed, 20_000)
	})
	if _, err := sys.Spawn("capture", source, realrate.Reserve(100, 10*time.Millisecond)); err != nil {
		panic(err)
	}

	// Decoder: 120 cycles/byte — the expensive stage (needs ≈60% CPU).
	decoder, err := sys.Spawn("decoder",
		stage(compressed, frames, 4096, 120),
		realrate.RealRate(0, realrate.ConsumerOf(compressed), realrate.ProducerOf(frames)))
	if err != nil {
		panic(err)
	}

	// Renderer: 15 cycles/byte — lightweight (needs ≈7.5% CPU).
	renderer, err := sys.Spawn("renderer",
		stage(frames, nil, 4096, 15),
		realrate.RealRate(0, realrate.ConsumerOf(frames)))
	if err != nil {
		panic(err)
	}

	fmt.Println("time    decoder(ppt)  renderer(ppt)  compressed-fill  frames-fill")
	sys.Every(time.Second, func(now time.Duration) {
		fmt.Printf("%5.1fs  %7d       %7d        %.3f            %.3f\n",
			now.Seconds(), decoder.Allocation(), renderer.Allocation(),
			compressed.FillLevel(), frames.FillLevel())
	})
	sys.Run(10 * time.Second)

	fmt.Printf("\nthe controller split the CPU %d ppt (decoder) vs %d ppt (renderer)\n",
		decoder.Allocation(), renderer.Allocation())
	fmt.Printf("with no priorities and no human-supplied reservations.\n")
	fmt.Printf("frames delivered: %d bytes\n", frames.Consumed())
}
