// Cracker: §4.5's pseudo-progress metric for pure computations. A password
// cracker has no queues — its progress is "the number of keys it has
// attempted". It reports completed keys against a target rate, and the
// controller allocates exactly the CPU that sustains the rate, leaving the
// rest to a batch job. Watch the allocation converge to ≈300 ppt (1200
// keys/s × 100k cycles/key on the 400 MHz machine) without anyone
// computing that number by hand.
//
// Run with: go run ./examples/cracker
package main

import (
	"fmt"
	"time"

	realrate "repro"
)

func main() {
	sys := realrate.NewSystem(realrate.Config{})

	keys := 0
	var pace *realrate.Pace
	cracker := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		if keys > 0 {
			pace.Complete(1) // report the key finished by the last burst
		}
		keys++
		return realrate.Compute(100_000) // 0.25 ms per key
	})
	// The pace is a ProgressSource like any queue link: §4.5's "any
	// measurable work unit", here keys attempted against 1200 keys/s with
	// a 2 s (2400-key) burst buffer.
	p := realrate.NewPace("cracker", 1200, 2400)
	th, err := sys.Spawn("cracker", cracker, realrate.RealRate(30*time.Millisecond, p))
	if err != nil {
		panic(err)
	}
	pace = p

	batch, err := sys.Spawn("batch", realrate.HogProgram(400_000))
	if err != nil {
		panic(err)
	}

	fmt.Println("time    keys/s  cracker(ppt)  batch(ppt)  virtual-fill")
	lastKeys := 0
	sys.Every(time.Second, func(now time.Duration) {
		fmt.Printf("%5.1fs  %6d  %7d       %7d     %.3f\n",
			now.Seconds(), keys-lastKeys, th.Allocation(), batch.Allocation(), p.FillLevel())
		lastKeys = keys
	})
	sys.Run(10 * time.Second)

	fmt.Printf("\ncracked %d keys in 10s (target 12000); allocation settled at %d ppt\n",
		keys, th.Allocation())
	fmt.Printf("batch job kept %.1f%% of the CPU\n", 100*batch.CPUTime().Seconds()/10)
}
