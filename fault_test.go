package realrate_test

import (
	"math"
	"testing"
	"time"

	realrate "repro"
)

// valueSource is a ProgressSource returning a fixed value — including the
// hostile ones user code can produce.
type valueSource struct{ v float64 }

func (s valueSource) Pressure(now time.Duration) float64 { return s.v }
func (s valueSource) Describe() string                   { return "value" }

// wavySource is a well-behaved source whose pressure varies sample to
// sample inside the healthy band — flat only if something freezes it.
type wavySource struct{}

func (wavySource) Pressure(now time.Duration) float64 {
	return 0.1 + float64((now/time.Millisecond)%17)/200
}
func (wavySource) Describe() string { return "wavy" }

// TestCustomSourceSanitized is the table-driven hardening test for the
// custom-ProgressSource adapter: NaN and ±Inf never reach the controller
// (counted into Health instead), out-of-range finite values are clamped,
// and in-range values pass through without a rejection.
func TestCustomSourceSanitized(t *testing.T) {
	cases := []struct {
		name    string
		v       float64
		rejects bool
	}{
		{"nan", math.NaN(), true},
		{"+inf", math.Inf(1), true},
		{"-inf", math.Inf(-1), true},
		{"above range", 2.5, false},
		{"below range", -2.5, false},
		{"in range", 0.3, false},
		{"negative in range", -0.3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := realrate.NewSystem(realrate.Config{})
			th, err := sys.Spawn("stage", realrate.HogProgram(400_000),
				realrate.RealRate(10*time.Millisecond, valueSource{tc.v}))
			if err != nil {
				t.Fatal(err)
			}
			sys.Run(300 * time.Millisecond)
			if p := th.Pressure(); math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("non-finite pressure %v escaped the adapter", p)
			}
			h := sys.Health()
			if tc.rejects && h.SignalsRejected == 0 {
				t.Fatalf("hostile source value %v never rejected: %+v", tc.v, h)
			}
			if !tc.rejects && h.SignalsRejected != 0 {
				t.Fatalf("finite source value %v rejected %d times", tc.v, h.SignalsRejected)
			}
			if d := th.Desired(); d < 0 {
				t.Fatalf("desire went negative: %d", d)
			}
		})
	}
}

// ladderObserver records the fault-tolerance event stream of one run.
type ladderObserver struct {
	realrate.NopObserver
	faults   []realrate.FaultEvent
	degrades []realrate.DegradeEvent
	recovers []realrate.RecoverEvent
}

func (o *ladderObserver) OnFault(ev realrate.FaultEvent)     { o.faults = append(o.faults, ev) }
func (o *ladderObserver) OnDegrade(ev realrate.DegradeEvent) { o.degrades = append(o.degrades, ev) }
func (o *ladderObserver) OnRecover(ev realrate.RecoverEvent) { o.recovers = append(o.recovers, ev) }

// TestFreezeFaultWalksLadderEndToEnd is the public-API round trip of the
// tentpole: a scheduled FreezeSignal fault flattens a healthy thread's
// progress signal mid-run, the watchdog demotes it down the ladder (events
// via Observer), the fault clears, and the thread climbs back — leaving a
// Health snapshot that says exactly that.
func TestFreezeFaultWalksLadderEndToEnd(t *testing.T) {
	const (
		faultAt  = 100 * time.Millisecond
		faultFor = 200 * time.Millisecond
	)
	sys := realrate.NewSystem(realrate.Config{
		Faults: &realrate.FaultPlan{Seed: 7, Specs: []realrate.FaultSpec{
			{Kind: realrate.FaultFreezeSignal, Target: "stage", At: faultAt, For: faultFor},
		}},
		Controller: realrate.ControllerTuning{WatchdogIntervals: 5, WatchdogRecovery: 3},
	})
	obs := &ladderObserver{}
	sys.Observe(obs)
	th, err := sys.Spawn("stage", realrate.HogProgram(400_000),
		realrate.RealRate(10*time.Millisecond, wavySource{}))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(600 * time.Millisecond)

	if len(obs.faults) == 0 || obs.faults[0].Kind != "freeze-signal" {
		t.Fatalf("fault events = %+v, want a freeze-signal injection first", obs.faults)
	}
	if obs.faults[0].Thread == nil || obs.faults[0].Thread.Name() != "stage" {
		t.Fatalf("injection not resolved to the target thread: %+v", obs.faults[0])
	}
	if len(obs.degrades) == 0 {
		t.Fatal("frozen signal never demoted the thread")
	}
	if obs.degrades[0].Time < faultAt {
		t.Fatalf("demoted at %v, before the fault window opened at %v", obs.degrades[0].Time, faultAt)
	}
	if obs.degrades[0].From != "real-rate" || obs.degrades[0].To != "fallback" {
		t.Fatalf("first demotion %s -> %s, want real-rate -> fallback",
			obs.degrades[0].From, obs.degrades[0].To)
	}
	if len(obs.recovers) != len(obs.degrades) {
		t.Fatalf("%d recoveries for %d degradations: ladder moves must pair",
			len(obs.recovers), len(obs.degrades))
	}
	last := obs.recovers[len(obs.recovers)-1]
	if last.Time < faultAt+faultFor {
		t.Fatalf("final recovery at %v, before the fault cleared at %v", last.Time, faultAt+faultFor)
	}
	if got := th.Degraded(); got != "real-rate" {
		t.Fatalf("thread finished on rung %q, want real-rate", got)
	}
	h := sys.Health()
	if h.FaultsInjected == 0 {
		t.Fatalf("health recorded no injections: %+v", h)
	}
	if h.Degradations == 0 || h.Degradations != h.Recoveries || h.JobsDegraded != 0 {
		t.Fatalf("health ladder books do not close: %+v", h)
	}
}

// TestFaultPlanZeroWhenUnused pins the zero-cost contract's observable
// half: a run with Config.Faults nil reports an all-zero Health snapshot.
func TestFaultPlanZeroWhenUnused(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	if _, err := sys.Spawn("misc", realrate.HogProgram(400_000)); err != nil {
		t.Fatal(err)
	}
	sys.Run(300 * time.Millisecond)
	if h := sys.Health(); h != (realrate.Health{}) {
		t.Fatalf("healthy run reported non-zero health: %+v", h)
	}
}
