package realrate

import "repro/internal/core"

// The typed errors the admission paths return, re-exported so callers can
// errors.As against public names without importing internal packages.
// They are aliases, not wrappers: an error created anywhere in the stack
// matches the public type directly, end to end.
type (
	// AdmissionError reports a reservation refused by admission control:
	// the request exceeded the available capacity. Requested and Available
	// are in ppt of machine capacity.
	AdmissionError = core.AdmissionError

	// ReservationError reports a malformed reservation request —
	// non-positive proportion or period — rejected before it could reach
	// the dispatcher.
	ReservationError = core.ReservationError

	// OverloadError reports a request refused by the overload governor's
	// brownout ladder (see OverloadConfig): new admissions at the throttle
	// rung and above, reservation growth at the freeze rung. RetryAfter is
	// the backpressure hint — the earliest the ladder could have unwound.
	OverloadError = core.OverloadError
)
