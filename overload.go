package realrate

import (
	"time"

	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/sim"
)

// OverloadConfig enables the supervisory overload governor: a system-wide
// brownout ladder (normal → throttle → shed → freeze) layered over the
// paper's per-job feedback allocator, plus first-class SLO accounting
// (System.SLO). Install one via Config.Overload; nil — the default —
// costs nothing: the hot paths pay one nil check and the dispatch
// schedule is byte-identical to a build without the governor.
//
// The ladder's semantics:
//
//   - throttle: System.Spawn refuses new controller-managed admissions
//     with a *OverloadError carrying a retry-after hint.
//   - shed: additionally, the lowest-importance miscellaneous threads are
//     killed in importance order (Observer.OnShed fires for each).
//     Reservation-holding, real-rate, and interactive threads are never
//     shed.
//   - freeze: additionally, Thread.Renegotiate refuses growth.
//
// The governor needs the feedback controller's saturation signals, so the
// ladder only operates under the default RBS policy; SLO accounting works
// under every policy. Zero fields take defaults.
type OverloadConfig struct {
	// GapFactor trips the demand test when summed desire exceeds
	// capacity × GapFactor (default 1.5).
	GapFactor float64
	// SquishTrip gates the demand test on actual compression: the sample
	// only counts as saturated while granted/desired has fallen below this
	// ratio (default 0.75).
	SquishTrip float64
	// MissTrip and DemoteTrip mark an interval saturated at or above this
	// many missed period boundaries / watchdog demotions per interval;
	// 0 disables each test.
	MissTrip   uint64
	DemoteTrip uint64
	// TripIntervals is how many consecutive saturated control intervals
	// escalate the ladder one rung (default 25 ≈ 250 ms); RecoverIntervals
	// is how many consecutive healthy intervals de-escalate one rung
	// (default 50) — recovery is bounded, one rung at a time.
	TripIntervals    int
	RecoverIntervals int
	// ShedBatch is how many threads the shed rung kills per saturated
	// interval (default 1).
	ShedBatch int
	// LatencySLO is the wake→dispatch latency target for System.SLO
	// attainment accounting (default 10 ms).
	LatencySLO time.Duration
	// SessionSLO is the end-to-end session latency target for the
	// ObserveSessionLatency dimension of System.SLO (default 100 ms).
	SessionSLO time.Duration
	// LatencyTrip, when positive, makes the governor SLO-driven: an
	// interval whose recent p99 wake→dispatch latency exceeds it counts
	// as saturated.
	LatencyTrip time.Duration
}

// governorConfig compiles the public tuning to the internal governor's.
func (oc *OverloadConfig) governorConfig() overload.Config {
	return overload.Config{
		GapFactor:        oc.GapFactor,
		SquishTrip:       oc.SquishTrip,
		MissTrip:         oc.MissTrip,
		DemoteTrip:       oc.DemoteTrip,
		LatencyTrip:      sim.FromStd(oc.LatencyTrip),
		TripIntervals:    oc.TripIntervals,
		RecoverIntervals: oc.RecoverIntervals,
		ShedBatch:        oc.ShedBatch,
	}
}

// OverloadEvent fires on every brownout-ladder movement, with the
// saturation signals that drove it.
type OverloadEvent struct {
	Time time.Duration
	// From and To are ladder rungs: "normal", "throttle", "shed",
	// "freeze". They always differ by exactly one step.
	From, To string
	// Desired, Granted, Capacity are the interval's demand signals in ppt
	// of machine capacity.
	Desired, Granted, Capacity int
}

// ShedEvent fires for every thread killed by the governor's shed rung,
// just before the kill — the handle is still resolvable. An OnExit for
// the same thread follows immediately.
type ShedEvent struct {
	Time   time.Duration
	Thread *Thread
	// Class is always "miscellaneous": only best-effort work is shed.
	Class string
	// Importance is the victim's weighted-fair-share weight; the governor
	// always picks a minimum among live miscellaneous threads.
	Importance float64
	// Rung is the ladder position that ordered the shed.
	Rung string
}

// fireOverload fans a ladder movement out to observers.
func (s *System) fireOverload(now sim.Time, from, to overload.Rung, sig overload.Signals) {
	if len(s.hub.obs) == 0 {
		return
	}
	ev := OverloadEvent{
		Time:     time.Duration(now),
		From:     from.String(),
		To:       to.String(),
		Desired:  sig.Desired,
		Granted:  sig.Granted,
		Capacity: sig.Capacity,
	}
	for _, o := range s.hub.obs {
		o.OnOverload(ev)
	}
}

// fireShed fans a shed kill out to observers. It runs before the victim's
// threads are retired, so byKern still resolves them.
func (s *System) fireShed(j *core.Job, now sim.Time) {
	if len(s.hub.obs) == 0 {
		return
	}
	ev := ShedEvent{
		Time:       time.Duration(now),
		Thread:     s.byKern[j.Thread()],
		Class:      j.Class().String(),
		Importance: j.Importance(),
		Rung:       "shed",
	}
	if s.ctl != nil {
		if g := s.ctl.Governor(); g != nil {
			ev.Rung = g.Rung().String()
		}
	}
	for _, o := range s.hub.obs {
		o.OnShed(ev)
	}
}
