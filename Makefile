GO ?= go

.PHONY: all build examples vet test race bench fuzz goldens stress clean

all: build vet test goldens

build:
	$(GO) build ./...

# examples builds the runnable examples explicitly (build already covers
# them via ./..., but CI keeps a dedicated step so a broken example fails
# with a readable name).
examples:
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the sim/kernel hot-path benchmarks with -benchmem and records
# the results (ns/op, B/op, allocs/op) in BENCH_results.json alongside the
# pre-rewrite baseline, so the perf trajectory is tracked PR over PR.
bench:
	./scripts/bench.sh

# fuzz gives each fuzz target a short budget (override with FUZZTIME=…;
# CI uses a tighter budget than the local default). Targets run one per
# invocation — go test refuses multiple -fuzz matches.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz=FuzzWheelDifferential -fuzztime=$(FUZZTIME) ./internal/sim/
	$(GO) test -run '^$$' -fuzz=FuzzBoundaryWheel -fuzztime=$(FUZZTIME) ./internal/rbs/
	$(GO) test -run '^$$' -fuzz=FuzzSpawnOptions -fuzztime=$(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz=FuzzChurnSchedules -fuzztime=$(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz=FuzzFaultSchedule -fuzztime=$(FUZZTIME) ./internal/workload/gen/
	$(GO) test -run '^$$' -fuzz=FuzzOverloadLadder -fuzztime=$(FUZZTIME) ./internal/overload/
	$(GO) test -run '^$$' -fuzz=FuzzEventDrivenThresholds -fuzztime=$(FUZZTIME) ./internal/ctlplane/

# stress runs the generated-workload invariant harness wide open: every
# scenario family × STRESS_SEEDS seeds × all five policies, with failing
# seeds minimized and printed as replayable rrexp command lines — once on
# each family's own machine, then a slice with every family forced onto a
# 4-CPU machine (no-dual-run, per-CPU work conservation, and migration
# bookkeeping under SMP), then a deeper chaos slice of the faults family
# alone (injected signal/timing/actuation faults against the
# graceful-degradation oracles) on 1 and 4 CPUs, then a deeper slice of
# the overload family alone (admission storms against the brownout-ladder
# oracles: typed refusals, importance-ordered sheds, recovery to normal)
# on 1 and 4 CPUs, and finally a slice of the slo live-service family
# alone (open-loop session pipelines against the session-conservation,
# stage-ordering, and SLO-closure oracles) on 1 CPU and on 4 CPUs under
# the sharded event-driven control plane — the scale runs' configuration.
STRESS_SEEDS ?= 25
STRESS_SMP_SEEDS ?= 8
STRESS_FAULT_SEEDS ?= 15
STRESS_OVERLOAD_SEEDS ?= 15
STRESS_SLO_SEEDS ?= 15
stress:
	$(GO) run ./cmd/rrexp -gen -seeds $(STRESS_SEEDS)
	$(GO) run ./cmd/rrexp -gen -cpus 4 -seeds $(STRESS_SMP_SEEDS)
	$(GO) run ./cmd/rrexp -gen -scenario faults -seeds $(STRESS_FAULT_SEEDS)
	$(GO) run ./cmd/rrexp -gen -scenario faults -cpus 4 -seeds $(STRESS_FAULT_SEEDS)
	$(GO) run ./cmd/rrexp -gen -scenario overload -seeds $(STRESS_OVERLOAD_SEEDS)
	$(GO) run ./cmd/rrexp -gen -scenario overload -cpus 4 -seeds $(STRESS_OVERLOAD_SEEDS)
	$(GO) run ./cmd/rrexp -gen -scenario slo -seeds $(STRESS_SLO_SEEDS)
	$(GO) run ./cmd/rrexp -gen -scenario slo -cpus 4 -controller event -shards 2 -seeds $(STRESS_SLO_SEEDS)

# goldens byte-compares the Figure 5-8 outputs against the committed
# goldens in testdata/goldens/ (re-bless with scripts/goldens.sh -update).
goldens:
	./scripts/goldens.sh

clean:
	$(GO) clean ./...
