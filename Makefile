GO ?= go

.PHONY: all build vet test race bench fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the sim/kernel hot-path benchmarks with -benchmem and records
# the results (ns/op, B/op, allocs/op) in BENCH_results.json alongside the
# pre-rewrite baseline, so the perf trajectory is tracked PR over PR.
bench:
	./scripts/bench.sh

# fuzz gives the wheel's differential fuzzer a short budget (override with
# FUZZTIME=…; CI uses a tighter budget than the local default).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz=FuzzWheelDifferential -fuzztime=$(FUZZTIME) ./internal/sim/

clean:
	$(GO) clean ./...
