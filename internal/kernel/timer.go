package kernel

import "repro/internal/sim"

// Timer is a kernel timer: a callback that runs from the timer-interrupt
// handler at the first tick at or after When. This models the paper's
// do_timers(): "called on timer interrupts, checks for expired timers, and
// moves threads waiting on expired timers to the run-queue."
type Timer struct {
	When     sim.Time
	fn       func(now sim.Time)
	canceled bool
}

// Cancel prevents the timer from firing.
func (tm *Timer) Cancel() { tm.canceled = true }

// timerList keeps timers sorted by expiry with the next expiration cached,
// mirroring the prototype's optimization: "We keep a list of timers used by
// RBS threads, sorted by time of expiry, and cache the next expiration time
// to avoid doing any work unless at least one timer has expired."
type timerList struct {
	sorted []*Timer
	// next caches the earliest expiry; sim.Time max value when empty.
	next sim.Time
}

const timeMax = sim.Time(int64(^uint64(0) >> 1))

func newTimerList() *timerList {
	return &timerList{next: timeMax}
}

func (tl *timerList) add(tm *Timer) {
	// Insertion sort: timer counts are small (one per sleeping thread).
	i := len(tl.sorted)
	for i > 0 && tl.sorted[i-1].When > tm.When {
		i--
	}
	tl.sorted = append(tl.sorted, nil)
	copy(tl.sorted[i+1:], tl.sorted[i:])
	tl.sorted[i] = tm
	if tm.When < tl.next {
		tl.next = tm.When
	}
}

// expire pops and runs every non-canceled timer with When <= now. It
// returns the number of timers fired.
func (tl *timerList) expire(now sim.Time) int {
	if now < tl.next {
		return 0 // the cached check: typically constant time
	}
	fired := 0
	for len(tl.sorted) > 0 && tl.sorted[0].When <= now {
		tm := tl.sorted[0]
		copy(tl.sorted, tl.sorted[1:])
		tl.sorted = tl.sorted[:len(tl.sorted)-1]
		if tm.canceled {
			continue
		}
		tm.fn(now)
		fired++
	}
	if len(tl.sorted) > 0 {
		tl.next = tl.sorted[0].When
	} else {
		tl.next = timeMax
	}
	return fired
}

func (tl *timerList) len() int { return len(tl.sorted) }
