package kernel

import "repro/internal/sim"

// Timer is a kernel timer: a callback that runs from the timer-interrupt
// handler at the first tick at or after When. This models the paper's
// do_timers(): "called on timer interrupts, checks for expired timers, and
// moves threads waiting on expired timers to the run-queue."
//
// Timers are pooled by the kernel: once a timer has expired (fired or was
// discarded as canceled) the object may be reused for a later AddTimer, so
// holders must drop their reference after expiry.
type Timer struct {
	When sim.Time
	// fn is the callback for general timers.
	fn func(now sim.Time)
	// thread, when non-nil, is the sleeping thread to wake instead of
	// calling fn. Sleep wakeups are the overwhelmingly common timer on the
	// tick path; a direct target avoids allocating a closure per sleep.
	thread *Thread
	// next links the timer into the kernel's free list while pooled.
	next *Timer
	// seq orders timers with equal When: FIFO in registration order,
	// exactly the order the old insertion-sorted list preserved.
	seq      uint64
	canceled bool
}

// Cancel prevents the timer from firing. The timer stays on the list until
// its expiry tick discards it.
func (tm *Timer) Cancel() { tm.canceled = true }

// timerList keeps timers in a binary min-heap ordered by (When, seq) with
// the next expiration cached, an O(log n) refinement of the prototype's
// optimization: "We keep a list of timers used by RBS threads, sorted by
// time of expiry, and cache the next expiration time to avoid doing any
// work unless at least one timer has expired." The (When, seq) key makes
// the pop order identical to the old stable insertion sort, so timer fire
// order — and hence wake order at a tick — is unchanged at any scale.
type timerList struct {
	heap []*Timer
	seq  uint64
	// next caches the earliest expiry; sim.Time max value when empty.
	next sim.Time
}

const timeMax = sim.Time(int64(^uint64(0) >> 1))

func newTimerList() *timerList {
	return &timerList{next: timeMax}
}

func timerBefore(a, b *Timer) bool {
	if a.When != b.When {
		return a.When < b.When
	}
	return a.seq < b.seq
}

func (tl *timerList) add(tm *Timer) {
	tm.seq = tl.seq
	tl.seq++
	tl.heap = append(tl.heap, tm)
	tl.siftUp(len(tl.heap) - 1)
	if tm.When < tl.next {
		tl.next = tm.When
	}
}

// pop removes and returns the earliest timer, or nil when empty.
func (tl *timerList) pop() *Timer {
	if len(tl.heap) == 0 {
		return nil
	}
	tm := tl.heap[0]
	last := len(tl.heap) - 1
	tl.heap[0] = tl.heap[last]
	tl.heap[last] = nil
	tl.heap = tl.heap[:last]
	if last > 0 {
		tl.siftDown(0)
	}
	return tm
}

func (tl *timerList) siftUp(i int) {
	tm := tl.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !timerBefore(tm, tl.heap[parent]) {
			break
		}
		tl.heap[i] = tl.heap[parent]
		i = parent
	}
	tl.heap[i] = tm
}

func (tl *timerList) siftDown(i int) {
	tm := tl.heap[i]
	n := len(tl.heap)
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && timerBefore(tl.heap[r], tl.heap[kid]) {
			kid = r
		}
		if !timerBefore(tl.heap[kid], tm) {
			break
		}
		tl.heap[i] = tl.heap[kid]
		i = kid
	}
	tl.heap[i] = tm
}

func (tl *timerList) len() int { return len(tl.heap) }

// allocTimer takes a timer from the kernel's pool, or makes one.
func (k *Kernel) allocTimer() *Timer {
	tm := k.freeTimer
	if tm == nil {
		return &Timer{}
	}
	k.freeTimer = tm.next
	tm.next = nil
	tm.canceled = false
	return tm
}

// recycleTimer returns an expired timer to the pool.
func (k *Kernel) recycleTimer(tm *Timer) {
	tm.fn = nil
	tm.thread = nil
	tm.next = k.freeTimer
	k.freeTimer = tm
}

// expireTimers pops and runs every non-canceled timer with When <= now —
// the paper's do_timers(). It returns the number of timers fired.
func (k *Kernel) expireTimers(now sim.Time) int {
	tl := k.timers
	if now < tl.next {
		return 0 // the cached check: typically constant time
	}
	fired := 0
	for len(tl.heap) > 0 && tl.heap[0].When <= now {
		tm := tl.pop()
		switch {
		case tm.canceled:
			k.recycleTimer(tm)
		case tm.thread != nil:
			// Sleep wakeup: recycle first so the wake path (which may put
			// the thread right back to sleep) can reuse the object.
			th := tm.thread
			th.wakeTimer = nil
			k.recycleTimer(tm)
			k.wake(th, now)
			fired++
		default:
			fn := tm.fn
			k.recycleTimer(tm)
			fn(now)
			fired++
		}
	}
	if len(tl.heap) > 0 {
		tl.next = tl.heap[0].When
	} else {
		tl.next = timeMax
	}
	return fired
}
