package kernel

import "repro/internal/sim"

// Timer is a kernel timer: a callback that runs from the timer-interrupt
// handler at the first tick at or after When. This models the paper's
// do_timers(): "called on timer interrupts, checks for expired timers, and
// moves threads waiting on expired timers to the run-queue."
//
// Timers are pooled by the kernel: once a timer has expired (fired or was
// discarded as canceled) the object may be reused for a later AddTimer, so
// holders must drop their reference after expiry.
type Timer struct {
	When sim.Time
	// fn is the callback for general timers.
	fn func(now sim.Time)
	// thread, when non-nil, is the sleeping thread to wake instead of
	// calling fn. Sleep wakeups are the overwhelmingly common timer on the
	// tick path; a direct target avoids allocating a closure per sleep.
	thread *Thread
	// next links the timer into the kernel's free list while pooled.
	next     *Timer
	canceled bool
}

// Cancel prevents the timer from firing. The timer stays on the list until
// its expiry tick discards it.
func (tm *Timer) Cancel() { tm.canceled = true }

// timerList keeps timers sorted by expiry with the next expiration cached,
// mirroring the prototype's optimization: "We keep a list of timers used by
// RBS threads, sorted by time of expiry, and cache the next expiration time
// to avoid doing any work unless at least one timer has expired."
type timerList struct {
	sorted []*Timer
	// next caches the earliest expiry; sim.Time max value when empty.
	next sim.Time
}

const timeMax = sim.Time(int64(^uint64(0) >> 1))

func newTimerList() *timerList {
	return &timerList{next: timeMax}
}

func (tl *timerList) add(tm *Timer) {
	// Insertion sort: timer counts are small (one per sleeping thread).
	i := len(tl.sorted)
	for i > 0 && tl.sorted[i-1].When > tm.When {
		i--
	}
	tl.sorted = append(tl.sorted, nil)
	copy(tl.sorted[i+1:], tl.sorted[i:])
	tl.sorted[i] = tm
	if tm.When < tl.next {
		tl.next = tm.When
	}
}

func (tl *timerList) len() int { return len(tl.sorted) }

// allocTimer takes a timer from the kernel's pool, or makes one.
func (k *Kernel) allocTimer() *Timer {
	tm := k.freeTimer
	if tm == nil {
		return &Timer{}
	}
	k.freeTimer = tm.next
	tm.next = nil
	tm.canceled = false
	return tm
}

// recycleTimer returns an expired timer to the pool.
func (k *Kernel) recycleTimer(tm *Timer) {
	tm.fn = nil
	tm.thread = nil
	tm.next = k.freeTimer
	k.freeTimer = tm
}

// expireTimers pops and runs every non-canceled timer with When <= now —
// the paper's do_timers(). It returns the number of timers fired.
func (k *Kernel) expireTimers(now sim.Time) int {
	tl := k.timers
	if now < tl.next {
		return 0 // the cached check: typically constant time
	}
	fired := 0
	for len(tl.sorted) > 0 && tl.sorted[0].When <= now {
		tm := tl.sorted[0]
		copy(tl.sorted, tl.sorted[1:])
		tl.sorted[len(tl.sorted)-1] = nil
		tl.sorted = tl.sorted[:len(tl.sorted)-1]
		switch {
		case tm.canceled:
			k.recycleTimer(tm)
		case tm.thread != nil:
			// Sleep wakeup: recycle first so the wake path (which may put
			// the thread right back to sleep) can reuse the object.
			th := tm.thread
			th.wakeTimer = nil
			k.recycleTimer(tm)
			k.wake(th, now)
			fired++
		default:
			fn := tm.fn
			k.recycleTimer(tm)
			fn(now)
			fired++
		}
	}
	if len(tl.sorted) > 0 {
		tl.next = tl.sorted[0].When
	} else {
		tl.next = timeMax
	}
	return fired
}
