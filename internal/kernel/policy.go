package kernel

import "repro/internal/sim"

// Policy is a pluggable scheduling discipline. The kernel owns mechanism —
// run segments, timer interrupts, blocking, accounting — and calls the
// policy for every decision: which thread runs next, for how long, and
// whether a wakeup preempts.
//
// The machine may have several CPUs (Config.CPUs). The policy keeps one
// run-queue shard per CPU, keyed by Thread.CPU(): Enqueue and Dequeue
// operate on t.CPU()'s shard, Pick and Steal address a shard explicitly,
// and the kernel guarantees it only changes a thread's CPU assignment
// while the thread is outside every policy structure.
//
// The reservation-based dispatcher (internal/rbs) and the baseline
// priority schedulers (internal/baseline) both implement this interface.
type Policy interface {
	// Name identifies the policy in traces and test output.
	Name() string

	// Attach hands the policy its kernel. It is called exactly once,
	// before any threads exist.
	Attach(k *Kernel)

	// AddThread introduces a new thread; it is not yet runnable.
	AddThread(t *Thread, now sim.Time)

	// RemoveThread retires an exited thread.
	RemoveThread(t *Thread, now sim.Time)

	// Enqueue marks t runnable (newly created, woken, or preempted).
	Enqueue(t *Thread, now sim.Time)

	// Dequeue removes t from the runnable set (blocked or sleeping).
	Dequeue(t *Thread, now sim.Time)

	// Pick selects the next thread to run on the given CPU, or nil to
	// idle it. The chosen thread remains in the policy's runnable set; the
	// kernel will call Dequeue if it later blocks.
	Pick(cpu int, now sim.Time) *Thread

	// Steal removes and returns a migratable runnable thread from the
	// given CPU's shard so the kernel can reassign it to an idle CPU, or
	// nil when nothing can move. The returned thread must be out of every
	// policy structure (as after Dequeue) but still StateReady; it must
	// not be the thread currently running on that CPU, and must not be
	// pinned (Thread.Affinity() >= 0).
	Steal(from int, now sim.Time) *Thread

	// TimeSlice returns the longest contiguous time t may run before the
	// policy needs a dispatch point (quantum or budget boundary). Results
	// are clamped by the kernel to at least one, at most the horizon to
	// the next timer interrupt is irrelevant — ticks interrupt anyway.
	TimeSlice(t *Thread, now sim.Time) sim.Duration

	// Charge accounts ran time against t after a run segment on the given
	// CPU. Returning resched=true forces a dispatch instead of resuming t.
	Charge(t *Thread, cpu int, ran sim.Duration, now sim.Time) (resched bool)

	// Tick is the timer interrupt hook, called once per CPU after expired
	// timers run. Returning true forces a dispatch on that CPU (instead
	// of resuming its interrupted thread).
	Tick(cpu int, now sim.Time) (resched bool)

	// WakePreempts reports whether the newly woken thread should preempt
	// the currently running one.
	WakePreempts(woken, current *Thread, now sim.Time) bool
}
