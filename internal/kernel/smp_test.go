package kernel_test

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// smpTracer asserts the dual-run invariant exactly: between OnDispatch and
// OnDeschedule a thread occupies exactly one CPU, and no CPU hosts two
// overlapping segments. It also counts migrations for the bookkeeping
// checks.
type smpTracer struct {
	t          *testing.T
	runningOn  map[*kernel.Thread]int
	onCPU      map[int]*kernel.Thread
	migrations int
}

func newSMPTracer(t *testing.T) *smpTracer {
	return &smpTracer{
		t:         t,
		runningOn: make(map[*kernel.Thread]int),
		onCPU:     make(map[int]*kernel.Thread),
	}
}

func (tr *smpTracer) OnDispatch(now sim.Time, t *kernel.Thread) {
	cpu := t.CPU()
	if prev, ok := tr.runningOn[t]; ok {
		tr.t.Fatalf("dual run: %v dispatched on CPU %d while still on CPU %d at %v", t, cpu, prev, now)
	}
	if other, ok := tr.onCPU[cpu]; ok {
		tr.t.Fatalf("CPU %d double-booked: dispatching %v over %v at %v", cpu, t, other, now)
	}
	tr.runningOn[t] = cpu
	tr.onCPU[cpu] = t
}

func (tr *smpTracer) OnDeschedule(now sim.Time, t *kernel.Thread, ran sim.Duration) {
	cpu, ok := tr.runningOn[t]
	if !ok {
		tr.t.Fatalf("deschedule of %v which was never dispatched (at %v)", t, now)
	}
	delete(tr.runningOn, t)
	delete(tr.onCPU, cpu)
}

func (tr *smpTracer) OnWake(now sim.Time, t *kernel.Thread)             {}
func (tr *smpTracer) OnBlock(now sim.Time, t *kernel.Thread, on string) {}

func (tr *smpTracer) OnMigration(now sim.Time, t *kernel.Thread, from, to int) {
	tr.migrations++
	if from == to {
		tr.t.Fatalf("self-migration of %v on CPU %d at %v", t, from, now)
	}
	if t.Affinity() != kernel.AffinityAny {
		tr.t.Fatalf("pinned thread %v migrated %d -> %d at %v", t, from, to, now)
	}
	if _, running := tr.runningOn[t]; running {
		tr.t.Fatalf("running thread %v migrated %d -> %d at %v", t, from, to, now)
	}
}

func smpHog(cycles sim.Cycles) kernel.Program {
	op := kernel.OpCompute{Cycles: cycles}
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return &op
	})
}

// TestSMPParallelThroughput pins down the point of the refactor: N CPU-bound
// threads on N CPUs consume ~N seconds of CPU per simulated second, with
// zero dual-run violations, and per-CPU stats close against the machine
// totals.
func TestSMPParallelThroughput(t *testing.T) {
	for _, ncpu := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("cpus=%d", ncpu), func(t *testing.T) {
			eng := sim.NewEngine()
			cfg := kernel.DefaultConfig()
			cfg.CPUs = ncpu
			p := rbs.New()
			k := kernel.New(eng, cfg, p)
			tr := newSMPTracer(t)
			k.SetTracer(tr)

			threads := make([]*kernel.Thread, ncpu)
			for i := range threads {
				threads[i] = k.Spawn(fmt.Sprintf("hog%d", i), smpHog(1_000_000))
			}
			k.Start()
			eng.RunFor(sim.Second)
			k.Stop()

			st := k.Stats()
			if st.CPUs != ncpu {
				t.Fatalf("Stats.CPUs = %d, want %d", st.CPUs, ncpu)
			}
			// Unmanaged hogs are work-conserving: with one hog per CPU the
			// machine should be nearly fully busy on every CPU.
			wantBusy := sim.Duration(int64(sim.Second) * int64(ncpu) * 9 / 10)
			if st.ThreadTime() < wantBusy {
				t.Fatalf("ThreadTime = %v, want >= %v on %d CPUs (idle %v, overhead %v)",
					st.ThreadTime(), wantBusy, ncpu, st.Idle, st.Overhead)
			}
			// Every thread ran somewhere.
			for _, th := range threads {
				if th.CPUTime() == 0 {
					t.Fatalf("thread %v starved", th)
				}
			}
			// Per-CPU accounting closes against the machine totals.
			var disp, mig uint64
			var idle sim.Duration
			for c := 0; c < ncpu; c++ {
				cs := k.CPUStatsOf(c)
				disp += cs.Dispatches
				mig += cs.MigrationsIn
				idle += cs.Idle
			}
			if disp != st.Dispatches {
				t.Fatalf("per-CPU dispatches %d != machine %d", disp, st.Dispatches)
			}
			if mig != st.Migrations {
				t.Fatalf("per-CPU migrations %d != machine %d", mig, st.Migrations)
			}
			if idle != st.Idle {
				t.Fatalf("per-CPU idle %v != machine %v", idle, st.Idle)
			}
			if uint64(tr.migrations) != st.Migrations {
				t.Fatalf("tracer saw %d migrations, kernel counted %d", tr.migrations, st.Migrations)
			}
			if ncpu == 1 && st.Migrations != 0 {
				t.Fatalf("%d migrations on a single-CPU machine", st.Migrations)
			}
		})
	}
}

// TestSMPWorkPull exercises the migration seam directly. Round-robin
// placement lands hogs A and B on CPU 0 and a part-time sleeper on CPU 1;
// whenever the sleeper naps, CPU 1 goes idle and must pull the hog queued
// behind CPU 0's current instead of idling — the work-conserving point of
// the seam.
func TestSMPWorkPull(t *testing.T) {
	eng := sim.NewEngine()
	cfg := kernel.DefaultConfig()
	cfg.CPUs = 2
	p := rbs.New()
	k := kernel.New(eng, cfg, p)
	tr := newSMPTracer(t)
	k.SetTracer(tr)

	a := k.Spawn("hogA", smpHog(1_000_000)) // placed on CPU 0
	phase := 0
	sleeper := k.Spawn("sleeper", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase%2 == 1 {
			return kernel.OpCompute{Cycles: 400_000} // 1 ms at 400 MHz
		}
		return kernel.OpSleep{D: 5 * sim.Millisecond}
	})) // placed on CPU 1
	b := k.Spawn("hogB", smpHog(1_000_000)) // placed on CPU 0, behind hogA
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()

	st := k.Stats()
	if st.Migrations == 0 {
		t.Fatal("no migrations: idle CPU 1 never pulled the hog queued on CPU 0")
	}
	var perThread uint64
	for _, th := range k.Threads() {
		perThread += th.Migrations()
	}
	if perThread != st.Migrations {
		t.Fatalf("per-thread migration sum %d != machine %d", perThread, st.Migrations)
	}
	// After the pull the two hogs split the machine with the sleeper; the
	// machine must not serialize them on one CPU (each would then be
	// capped well below ~900 ms of the 2 s capacity).
	for _, th := range []*kernel.Thread{a, b} {
		if th.CPUTime() < 700*sim.Millisecond {
			t.Fatalf("hog %v got only %v of CPU under work-pull", th, th.CPUTime())
		}
	}
	if sleeper.CPUTime() == 0 {
		t.Fatal("sleeper starved")
	}
}

// TestSMPAffinityPinning verifies pins are absolute: a pinned thread only
// ever runs on its CPU, is never migrated, and SpawnAffinity rejects
// out-of-range pins.
func TestSMPAffinityPinning(t *testing.T) {
	eng := sim.NewEngine()
	cfg := kernel.DefaultConfig()
	cfg.CPUs = 2
	p := rbs.New()
	k := kernel.New(eng, cfg, p)

	pinned := k.SpawnAffinity("pinned", smpHog(500_000), 1)
	free := k.Spawn("free", smpHog(500_000))
	var wrongCPU bool
	k.SetTracer(traceFunc(func(now sim.Time, th *kernel.Thread) {
		if th == pinned && th.CPU() != 1 {
			wrongCPU = true
		}
	}))
	k.Start()
	eng.RunFor(500 * sim.Millisecond)
	k.Stop()

	if wrongCPU {
		t.Fatal("pinned thread dispatched off its CPU")
	}
	if pinned.Migrations() != 0 {
		t.Fatalf("pinned thread migrated %d times", pinned.Migrations())
	}
	if pinned.CPUTime() == 0 || free.CPUTime() == 0 {
		t.Fatalf("starvation: pinned %v free %v", pinned.CPUTime(), free.CPUTime())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SpawnAffinity(cpu=7) on a 2-CPU machine did not panic")
		}
	}()
	k.SpawnAffinity("bad", smpHog(1), 7)
}

// traceFunc adapts a dispatch func to kernel.Tracer.
type traceFunc func(now sim.Time, t *kernel.Thread)

func (f traceFunc) OnDispatch(now sim.Time, t *kernel.Thread)                     { f(now, t) }
func (f traceFunc) OnDeschedule(now sim.Time, t *kernel.Thread, ran sim.Duration) {}
func (f traceFunc) OnWake(now sim.Time, t *kernel.Thread)                         {}
func (f traceFunc) OnBlock(now sim.Time, t *kernel.Thread, on string)             {}
func (f traceFunc) OnMigration(now sim.Time, t *kernel.Thread, from, to int)      {}
