package kernel

import "repro/internal/sim"

// Program is the behavior of a simulated thread: a state machine that emits
// one operation at a time. Next is called whenever the previous operation
// has completed; returning OpExit retires the thread.
//
// Programs run "on the CPU" of the simulated machine: compute operations
// consume simulated cycles under the control of the scheduling policy, and
// queue/mutex/sleep operations are the analog of system calls.
type Program interface {
	Next(t *Thread, now sim.Time) Op
}

// ProgramFunc adapts a plain function to the Program interface.
type ProgramFunc func(t *Thread, now sim.Time) Op

// Next calls the function.
func (f ProgramFunc) Next(t *Thread, now sim.Time) Op { return f(t, now) }

// Op is one operation of a thread program. The concrete types below are the
// full set the kernel understands.
type Op interface{ isOp() }

// OpCompute burns the given number of CPU cycles.
type OpCompute struct{ Cycles sim.Cycles }

// OpProduce enqueues Bytes into Queue, blocking while the queue lacks space.
type OpProduce struct {
	Queue *Queue
	Bytes int64
}

// OpConsume dequeues Bytes from Queue, blocking while the queue lacks data.
type OpConsume struct {
	Queue *Queue
	Bytes int64
}

// OpSleep blocks the thread for at least D; the wakeup is processed at the
// first timer interrupt at or after the deadline, as in the paper's
// do_timers().
type OpSleep struct{ D sim.Duration }

// OpSleepUntil blocks the thread until at least the given instant. A
// deadline at or before the current time completes immediately.
type OpSleepUntil struct{ At sim.Time }

// OpLock acquires M, blocking while another thread holds it. Ownership is
// handed off directly to the first waiter on unlock (FIFO).
type OpLock struct{ M *Mutex }

// OpUnlock releases M. Unlocking a mutex the thread does not own panics:
// it is always a workload bug.
type OpUnlock struct{ M *Mutex }

// OpYield gives up the CPU without blocking; the thread stays runnable.
type OpYield struct{}

// OpBlock parks the thread on a raw wait queue until another thread wakes
// it. It is the primitive behind interactive jobs waiting for "tty" input.
type OpBlock struct{ WQ *WaitQueue }

// OpExit retires the thread.
type OpExit struct{}

func (OpCompute) isOp()    {}
func (OpProduce) isOp()    {}
func (OpConsume) isOp()    {}
func (OpSleep) isOp()      {}
func (OpSleepUntil) isOp() {}
func (OpLock) isOp()       {}
func (OpUnlock) isOp()     {}
func (OpYield) isOp()      {}
func (OpBlock) isOp()      {}
func (OpExit) isOp()       {}
