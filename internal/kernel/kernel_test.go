package kernel_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// hog returns a program that computes forever in bursts of the given size.
// The op struct is reused across iterations, so emitting it never allocates.
func hog(burst sim.Cycles) kernel.Program {
	op := kernel.OpCompute{Cycles: burst}
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return &op
	})
}

// newRRMachine builds a kernel on a fresh engine with a round-robin policy.
func newRRMachine(quantum sim.Duration) (*sim.Engine, *kernel.Kernel) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(quantum))
	return eng, k
}

func TestSingleHogConsumesNearlyAllCPU(t *testing.T) {
	eng, k := newRRMachine(10 * sim.Millisecond)
	h := k.Spawn("hog", hog(1_000_000))
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()

	frac := h.CPUTime().Seconds()
	if frac < 0.95 {
		t.Fatalf("hog got %.3f of the CPU, want >0.95", frac)
	}
	st := k.Stats()
	if st.Idle > 10*sim.Millisecond {
		t.Fatalf("idle = %v with a hog running", st.Idle)
	}
}

func TestConservationOfTime(t *testing.T) {
	eng, k := newRRMachine(5 * sim.Millisecond)
	k.Spawn("a", hog(500_000))
	k.Spawn("b", hog(300_000))
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()

	st := k.Stats()
	var threadTime sim.Duration
	for _, th := range k.Threads() {
		threadTime += th.CPUTime()
	}
	total := threadTime + st.Idle + st.Overhead
	diff := total - st.Elapsed
	if diff < 0 {
		diff = -diff
	}
	// Allow 1ms of slack per simulated second for tick/segment rounding.
	if diff > 2*sim.Millisecond {
		t.Fatalf("conservation broken: threads %v + idle %v + overhead %v = %v, elapsed %v",
			threadTime, st.Idle, st.Overhead, total, st.Elapsed)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	eng, k := newRRMachine(5 * sim.Millisecond)
	a := k.Spawn("a", hog(100_000))
	b := k.Spawn("b", hog(100_000))
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()

	fa := a.CPUTime().Seconds()
	fb := b.CPUTime().Seconds()
	if fa < 0.85 || fb < 0.85 {
		t.Fatalf("unfair split: a=%.3f b=%.3f of 1.0 each (2s total)", fa, fb)
	}
}

func TestIdleMachineAccumulatesIdleTime(t *testing.T) {
	eng, k := newRRMachine(0)
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	st := k.Stats()
	if st.Idle < 990*sim.Millisecond {
		t.Fatalf("idle = %v on an empty machine, want ≈1s", st.Idle)
	}
}

func TestSleepWakesAtTickGranularity(t *testing.T) {
	eng, k := newRRMachine(0)
	var wokenAt sim.Time
	done := false
	prog := kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		switch {
		case now == 0:
			return kernel.OpSleep{D: 2500 * sim.Microsecond}
		case !done:
			done = true
			wokenAt = now
			return kernel.OpExit{}
		}
		return kernel.OpExit{}
	})
	k.Spawn("sleeper", prog)
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	k.Stop()
	if !done {
		t.Fatal("sleeper never woke")
	}
	// Deadline 2.5ms; do_timers runs at ticks, so wake at the 3ms tick.
	if wokenAt < sim.Time(3*sim.Millisecond) || wokenAt > sim.Time(4*sim.Millisecond) {
		t.Fatalf("woke at %v, want the first tick at/after 2.5ms", wokenAt)
	}
}

func TestThreadExitRemovesFromMachine(t *testing.T) {
	eng, k := newRRMachine(0)
	steps := 0
	prog := kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		steps++
		if steps > 3 {
			return kernel.OpExit{}
		}
		return kernel.OpCompute{Cycles: 1000}
	})
	th := k.Spawn("worker", prog)
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	k.Stop()
	if th.State() != kernel.StateExited {
		t.Fatalf("state = %v, want exited", th.State())
	}
	st := k.Stats()
	if st.Idle < 90*sim.Millisecond {
		t.Fatalf("machine did not go idle after exit: idle=%v", st.Idle)
	}
}

func TestSpawnDuringSimulation(t *testing.T) {
	eng, k := newRRMachine(5 * sim.Millisecond)
	k.Start()
	eng.RunFor(500 * sim.Millisecond)
	late := k.Spawn("late", hog(100_000))
	eng.RunFor(500 * sim.Millisecond)
	k.Stop()
	if late.CPUTime() < 450*sim.Millisecond {
		t.Fatalf("late-spawned hog got %v, want ≈500ms", late.CPUTime())
	}
}

// pcProgram alternates compute and a queue op, reusing its op structs.
type pcProgram struct {
	q       *kernel.Queue
	cycles  sim.Cycles
	bytes   int64
	produce bool
	compute bool // next op is compute

	computeOp kernel.OpCompute
	produceOp kernel.OpProduce
	consumeOp kernel.OpConsume
}

func (p *pcProgram) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	p.compute = !p.compute
	if p.compute {
		p.computeOp = kernel.OpCompute{Cycles: p.cycles}
		return &p.computeOp
	}
	if p.produce {
		p.produceOp = kernel.OpProduce{Queue: p.q, Bytes: p.bytes}
		return &p.produceOp
	}
	p.consumeOp = kernel.OpConsume{Queue: p.q, Bytes: p.bytes}
	return &p.consumeOp
}

func TestProducerConsumerPipeline(t *testing.T) {
	eng, k := newRRMachine(sim.Millisecond)
	q := k.NewQueue("pipe", 8192)
	// Producer is fast, consumer slower: queue should fill and the
	// producer should block rather than overrun.
	k.Spawn("prod", &pcProgram{q: q, cycles: 10_000, bytes: 512, produce: true})
	k.Spawn("cons", &pcProgram{q: q, cycles: 40_000, bytes: 512})
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()

	if err := q.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if q.Consumed() == 0 {
		t.Fatal("no bytes flowed through the pipe")
	}
	// The consumer needs 4x the producer's cycles per byte, so with equal
	// scheduling the queue must have hit its ceiling and throttled the
	// producer: fill stays within bounds by conservation check, and
	// produced-consumed difference is at most the queue size.
	if q.Produced()-q.Consumed() > q.Size() {
		t.Fatalf("producer overran: produced %d consumed %d", q.Produced(), q.Consumed())
	}
}

func TestConsumerBlocksOnEmptyQueue(t *testing.T) {
	eng, k := newRRMachine(sim.Millisecond)
	q := k.NewQueue("pipe", 1024)
	cons := k.Spawn("cons", &pcProgram{q: q, cycles: 1000, bytes: 128})
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	if cons.State() != kernel.StateBlocked {
		t.Fatalf("consumer state = %v, want blocked on empty queue", cons.State())
	}
	// Now feed it.
	k.Spawn("prod", &pcProgram{q: q, cycles: 1000, bytes: 128, produce: true})
	eng.RunFor(100 * sim.Millisecond)
	k.Stop()
	if q.Consumed() == 0 {
		t.Fatal("consumer never unblocked")
	}
}

func TestQueueWakesBlockedPeer(t *testing.T) {
	eng, k := newRRMachine(sim.Millisecond)
	q := k.NewQueue("pipe", 256)
	// Producer fills the tiny queue and blocks; consumer drains it.
	k.Spawn("prod", &pcProgram{q: q, cycles: 100, bytes: 256, produce: true})
	k.Spawn("cons", &pcProgram{q: q, cycles: 100, bytes: 256})
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	if err := q.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if q.Consumed() < 10*256 {
		t.Fatalf("only %d bytes flowed; blocking handshake is broken", q.Consumed())
	}
}

// lockProgram locks, computes, unlocks, sleeps.
type lockProgram struct {
	m     *kernel.Mutex
	hold  sim.Cycles
	gap   sim.Duration
	phase int
	loops int
}

func (p *lockProgram) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	p.phase++
	switch p.phase % 4 {
	case 1:
		return kernel.OpLock{M: p.m}
	case 2:
		return kernel.OpCompute{Cycles: p.hold}
	case 3:
		return kernel.OpUnlock{M: p.m}
	default:
		p.loops++
		return kernel.OpSleep{D: p.gap}
	}
}

func TestMutexMutualExclusionAndHandoff(t *testing.T) {
	eng, k := newRRMachine(sim.Millisecond)
	m := kernel.NewMutex("m")
	a := &lockProgram{m: m, hold: 400_000, gap: sim.Millisecond}
	b := &lockProgram{m: m, hold: 400_000, gap: sim.Millisecond}
	k.Spawn("a", a)
	k.Spawn("b", b)
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	if m.Owner() != nil && m.Waiters() == 0 && m.Acquisitions() == 0 {
		t.Fatal("mutex never exercised")
	}
	if a.loops == 0 || b.loops == 0 {
		t.Fatalf("starvation through mutex: a=%d b=%d loops", a.loops, b.loops)
	}
	if m.Contended() == 0 {
		t.Fatal("expected contention with 1ms critical sections")
	}
}

func TestRecursiveLockPanics(t *testing.T) {
	eng, k := newRRMachine(sim.Millisecond)
	m := kernel.NewMutex("m")
	phase := 0
	k.Spawn("rec", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		return kernel.OpLock{M: m}
	}))
	defer func() {
		if recover() == nil {
			t.Fatal("recursive lock did not panic")
		}
	}()
	k.Start()
	eng.RunFor(10 * sim.Millisecond)
}

func TestYieldRotatesFairly(t *testing.T) {
	eng, k := newRRMachine(100 * sim.Millisecond) // long quantum: rotation must come from yields
	counts := [2]int{}
	mk := func(i int) kernel.Program {
		phase := 0
		return kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
			phase++
			if phase%2 == 1 {
				return kernel.OpCompute{Cycles: 40_000} // 0.1ms
			}
			counts[i]++
			return kernel.OpYield{}
		})
	}
	k.Spawn("y0", mk(0))
	k.Spawn("y1", mk(1))
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("yield starved a thread: %v", counts)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("yield rotation unfair: %v", counts)
	}
}

func TestOpBlockAndWake(t *testing.T) {
	eng, k := newRRMachine(sim.Millisecond)
	wq := kernel.NewWaitQueue("tty")
	served := 0
	k.Spawn("interactive", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		served++
		if served%2 == 1 {
			return kernel.OpBlock{WQ: wq}
		}
		return kernel.OpCompute{Cycles: 10_000}
	}))
	// Waker: wakes the interactive thread every 10ms.
	k.Spawn("waker", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		k.WakeOne(wq)
		return kernel.OpSleep{D: 10 * sim.Millisecond}
	}))
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	if served < 50 {
		t.Fatalf("interactive thread served %d times, want ≈100", served)
	}
}

func TestStatsCountersPlausible(t *testing.T) {
	eng, k := newRRMachine(5 * sim.Millisecond)
	k.Spawn("hog", hog(1_000_000))
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	st := k.Stats()
	// 1ms ticks for 1s ≈ 1000 ticks.
	if st.Ticks < 990 || st.Ticks > 1010 {
		t.Fatalf("ticks = %d, want ≈1000", st.Ticks)
	}
	if st.Dispatches == 0 {
		t.Fatal("no dispatches recorded")
	}
	if st.Overhead <= 0 {
		t.Fatal("no overhead recorded")
	}
	if st.Elapsed != sim.Duration(sim.Second) {
		t.Fatalf("elapsed = %v", st.Elapsed)
	}
}

func TestOverheadGrowsWithTickRate(t *testing.T) {
	measure := func(tick sim.Duration) float64 {
		eng := sim.NewEngine()
		cfg := kernel.DefaultConfig()
		cfg.TickInterval = tick
		k := kernel.New(eng, cfg, baseline.NewRoundRobin(tick))
		h := k.Spawn("hog", hog(1_000_000))
		k.Start()
		eng.RunFor(sim.Second)
		k.Stop()
		return h.CPUTime().Seconds()
	}
	coarse := measure(10 * sim.Millisecond)
	fine := measure(250 * sim.Microsecond)
	if fine >= coarse {
		t.Fatalf("finer ticks should cost CPU: coarse=%v fine=%v", coarse, fine)
	}
	// At 4kHz with ~2.7k cycles/dispatch on 400MHz, overhead ≈ 2.7%.
	loss := coarse - fine
	if loss < 0.01 || loss > 0.06 {
		t.Fatalf("4kHz overhead = %.4f, want around 0.027", loss)
	}
}

func TestLinuxPolicyNiceShares(t *testing.T) {
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	fast := k.Spawn("fast", hog(100_000))
	slow := k.Spawn("slow", hog(100_000))
	lp.SetNice(slow, 15) // heavily niced
	k.Start()
	eng.RunFor(4 * sim.Second)
	k.Stop()
	if fast.CPUTime() <= slow.CPUTime() {
		t.Fatalf("nice had no effect: fast=%v slow=%v", fast.CPUTime(), slow.CPUTime())
	}
	ratio := fast.CPUTime().Seconds() / slow.CPUTime().Seconds()
	if ratio < 2 {
		t.Fatalf("nice 15 ratio = %.2f, want >2", ratio)
	}
}

func TestLinuxRealtimeStarvesTimeSharing(t *testing.T) {
	// The failure mode §2 describes: a fixed real-time thread that never
	// blocks starves every time-sharing thread.
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	rt := k.Spawn("rt-spinner", hog(100_000))
	victim := k.Spawn("victim", hog(100_000))
	lp.SetRealtime(rt, 50)
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()
	if victim.CPUTime() > 10*sim.Millisecond {
		t.Fatalf("victim got %v; fixed RT priority should starve it", victim.CPUTime())
	}
	if rt.CPUTime() < 1900*sim.Millisecond {
		t.Fatalf("rt thread got %v, want ≈2s", rt.CPUTime())
	}
}

func TestLinuxInteractiveGetsCPUPromptly(t *testing.T) {
	// An interactive thread that mostly sleeps must preempt a hog when it
	// wakes (goodness preserved by counter carry-over).
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	k.Spawn("hog", hog(1_000_000))
	var latencies []sim.Duration
	var wantAt sim.Time
	phase := 0
	k.Spawn("inter", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase%2 == 1 {
			wantAt = now.Add(20 * sim.Millisecond)
			return kernel.OpSleep{D: 20 * sim.Millisecond}
		}
		latencies = append(latencies, now.Sub(wantAt))
		return kernel.OpCompute{Cycles: 400_000} // 1ms burst
	}))
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()
	if len(latencies) < 10 {
		t.Fatalf("interactive thread barely ran: %d wakeups", len(latencies))
	}
	var worst sim.Duration
	for _, l := range latencies[1:] {
		if l > worst {
			worst = l
		}
	}
	// Wake happens at tick granularity (≤1ms late) and the woken thread
	// preempts the hog, so scheduling latency stays within a few ticks.
	if worst > 5*sim.Millisecond {
		t.Fatalf("worst interactive latency = %v, want ≤5ms", worst)
	}
}

func TestStopHaltsDispatching(t *testing.T) {
	eng, k := newRRMachine(sim.Millisecond)
	h := k.Spawn("hog", hog(1_000_000))
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	k.Stop()
	before := h.CPUTime()
	eng.RunFor(100 * sim.Millisecond)
	if h.CPUTime() != before {
		t.Fatal("thread kept running after Stop")
	}
}

// TestTimerFireOrderFIFOAtSameTick pins the timer min-heap to the legacy
// sorted list's order: timers with equal expiry fire in registration
// order, and earlier expiries always fire first even when many timers are
// pending (the heap replaced an O(n) insertion sort).
func TestTimerFireOrderFIFOAtSameTick(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	var order []int
	deadline := sim.Time(5 * sim.Millisecond)
	// Register out of expiry order, with a batch sharing one deadline.
	for i, when := range []sim.Time{deadline, deadline, sim.Time(3 * sim.Millisecond), deadline, sim.Time(2 * sim.Millisecond)} {
		id := i
		k.AddTimer(when, func(now sim.Time) { order = append(order, id) })
	}
	k.Start()
	eng.RunFor(10 * sim.Millisecond)
	k.Stop()
	want := []int{4, 2, 0, 1, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %d timers, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", order, want)
		}
	}
}
