package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// State is a thread's scheduling state.
type State int

// Thread states.
const (
	StateReady    State = iota // runnable, waiting for the CPU
	StateRunning               // currently on the CPU
	StateBlocked               // waiting on a queue, mutex, or wait queue
	StateSleeping              // waiting for a timer
	StateExited                // retired
)

func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateSleeping:
		return "sleeping"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Thread is a simulated kernel thread. All fields are managed by the kernel
// and its policy; workloads interact with threads only through their
// Program and the read-only accessors.
type Thread struct {
	id      int
	name    string
	program Program
	kern    *Kernel

	state State
	// cpu is the CPU the thread is assigned to: its run-queue shard, and
	// the CPU it runs on when dispatched. The kernel changes it only while
	// the thread is outside every policy structure (see Kernel.migrate).
	cpu int
	// affinity pins the thread to one CPU (AffinityAny = unpinned). Pinned
	// threads are never migrated by work-pull.
	affinity int
	// migrations counts how many times the thread changed CPUs.
	migrations uint64
	// op is the operation in progress; nil when the program must be asked
	// for the next one.
	op Op
	// remaining is the unburned portion of an in-progress OpCompute.
	remaining sim.Cycles
	// zeroOps counts consecutive operations that consumed no CPU, to catch
	// runaway programs.
	zeroOps int

	// waitingOn is the wait queue the thread is parked on while Blocked.
	waitingOn *WaitQueue
	// wakeTimer is the pending sleep timer while Sleeping.
	wakeTimer *Timer

	// cpuTime is the total simulated CPU the thread has consumed.
	cpuTime sim.Duration
	// dispatched counts how many run segments the thread received.
	dispatched uint64
	// blockedCount counts voluntary blocks (queue/mutex/waitq).
	blockedCount uint64
	// lastRunStart supports burst-length measurement for the interactive
	// heuristic: time the thread last went Running after a block.
	runSinceBlock sim.Duration

	// gen is the slot's generation: incremented when the thread object is
	// recycled into the kernel's free pool, so any holder of a stale
	// reference can detect that the slot now belongs to a stranger. It is
	// 0 for the object's first occupant and survives field resets.
	gen uint32
	// listIdx is the thread's index in Kernel.threads, maintained so a
	// recycling kernel can swap-remove an exited thread in O(1).
	listIdx int
	// freeNext links the object into the kernel's thread free list while
	// pooled.
	freeNext *Thread
	// ownedMutexes counts mutexes this thread currently holds. A thread
	// that exits while holding a lock is never recycled: the Mutex.owner
	// pointer would otherwise dangle into the pool.
	ownedMutexes int

	// Sched is the policy's per-thread state; the kernel never touches it.
	Sched any
	// User is the embedding layer's per-thread state (the public package
	// stores its handle here so tracer-driven taps skip the map
	// translation); the kernel never touches it.
	User any
}

// ID returns the thread's kernel-assigned identifier.
func (t *Thread) ID() int { return t.id }

// Gen returns the slot's generation counter. A recycling kernel bumps it
// every time the object is returned to the pool, so a holder that saved
// the generation at spawn can detect use-after-retire of a recycled slot
// deterministically: saved != current means the slot was reissued.
func (t *Thread) Gen() uint32 { return t.gen }

// CPU returns the CPU the thread is currently assigned to.
func (t *Thread) CPU() int { return t.cpu }

// Affinity returns the CPU the thread is pinned to, or AffinityAny.
func (t *Thread) Affinity() int { return t.affinity }

// Migrations returns how many times the thread has changed CPUs.
func (t *Thread) Migrations() uint64 { return t.migrations }

// Name returns the thread's human-readable name.
func (t *Thread) Name() string { return t.name }

// State returns the thread's current scheduling state.
func (t *Thread) State() State { return t.state }

// CPUTime returns the total simulated CPU time the thread has consumed.
func (t *Thread) CPUTime() sim.Duration { return t.cpuTime }

// CPUCycles returns the total simulated cycles the thread has consumed.
func (t *Thread) CPUCycles() sim.Cycles {
	return sim.DurationToCycles(t.cpuTime, t.kern.cfg.ClockRate)
}

// Dispatched returns the number of run segments the thread has received.
func (t *Thread) Dispatched() uint64 { return t.dispatched }

// BlockedCount returns the number of times the thread voluntarily blocked.
func (t *Thread) BlockedCount() uint64 { return t.blockedCount }

// RunSinceBlock returns the CPU time consumed since the thread last blocked
// voluntarily. The controller's interactive heuristic estimates proportion
// from "the amount of time they typically run before blocking" (§1).
func (t *Thread) RunSinceBlock() sim.Duration { return t.runSinceBlock }

// Runnable reports whether the thread is ready or running.
func (t *Thread) Runnable() bool {
	return t.state == StateReady || t.state == StateRunning
}

func (t *Thread) String() string {
	return fmt.Sprintf("%s#%d[%s]", t.name, t.id, t.state)
}

// WaitQueue is a FIFO list of blocked threads. It is the kernel's basic
// blocking primitive; queues and mutexes are built on top of it.
type WaitQueue struct {
	name string
	// kind distinguishes a queue's embedded not-full/not-empty halves so
	// their trace labels can be derived lazily instead of concatenated at
	// construction (two string allocations per queue, paid by every
	// pooled session pipeline otherwise).
	kind wqKind
	// inline backs the waiters slice for the common one-or-two-waiter
	// case (a pipeline queue has at most one producer and one consumer),
	// so parking a thread allocates nothing.
	inline  [2]*Thread
	waiters []*Thread
}

type wqKind uint8

const (
	wqPlain wqKind = iota
	wqNotFull
	wqNotEmpty
)

// NewWaitQueue returns an empty named wait queue.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{name: name} }

// label returns the trace name, deriving the queue-half suffix on demand.
func (wq *WaitQueue) label() string {
	switch wq.kind {
	case wqNotFull:
		return wq.name + ".notFull"
	case wqNotEmpty:
		return wq.name + ".notEmpty"
	}
	return wq.name
}

// Len returns the number of parked threads.
func (wq *WaitQueue) Len() int { return len(wq.waiters) }

func (wq *WaitQueue) push(t *Thread) {
	if wq.waiters == nil {
		wq.waiters = wq.inline[:0]
	}
	wq.waiters = append(wq.waiters, t)
}

func (wq *WaitQueue) pop() *Thread {
	if len(wq.waiters) == 0 {
		return nil
	}
	t := wq.waiters[0]
	copy(wq.waiters, wq.waiters[1:])
	wq.waiters[len(wq.waiters)-1] = nil // clear the vacated tail slot
	wq.waiters = wq.waiters[:len(wq.waiters)-1]
	return t
}

func (wq *WaitQueue) remove(t *Thread) bool {
	for i, w := range wq.waiters {
		if w == t {
			copy(wq.waiters[i:], wq.waiters[i+1:])
			wq.waiters[len(wq.waiters)-1] = nil // clear the vacated tail slot
			wq.waiters = wq.waiters[:len(wq.waiters)-1]
			return true
		}
	}
	return false
}
