package kernel

import "repro/internal/sim"

// AffinityAny marks a thread as runnable on every CPU; see Thread.Affinity.
const AffinityAny = -1

// Migrator is the placement and migration seam of a multi-CPU machine.
// The kernel owns the mechanism (reassigning a thread's CPU, accounting,
// tracing); the Migrator owns the policy: where a new thread lands, and
// where an idle CPU pulls work from. On a single-CPU machine it is never
// consulted.
//
// Implementations run synchronously inside dispatch and spawn paths; they
// must be deterministic (no wall clock, no global randomness) so simulated
// schedules stay replayable.
type Migrator interface {
	// Name identifies the migrator in traces and test output.
	Name() string
	// Place returns the CPU for a thread entering the machine with no
	// affinity pin. It is called before the thread is enqueued anywhere.
	Place(t *Thread, k *Kernel) int
	// Pull selects and removes (via Policy.Steal) a thread from another
	// CPU's run queue on behalf of the idle CPU, returning nil when no
	// work can move. The kernel completes the migration: it reassigns the
	// thread and re-enqueues it on the idle CPU.
	Pull(idle int, now sim.Time, k *Kernel) *Thread
}

// WorkPull is the default migrator: round-robin initial placement and
// work-pulling on idle — an idle CPU scans its peers in ring order and
// steals the first migratable runnable thread the policy will part with.
// This is the classic work-conserving baseline: no CPU idles while another
// has a queue of unpinned ready threads.
type WorkPull struct {
	nextPlace int
}

// Name implements Migrator.
func (w *WorkPull) Name() string { return "work-pull" }

// Place implements Migrator: pure round-robin over the CPUs, which spreads
// an initial taskset evenly; transient imbalance is corrected by Pull.
func (w *WorkPull) Place(t *Thread, k *Kernel) int {
	c := w.nextPlace
	w.nextPlace = (w.nextPlace + 1) % k.NumCPUs()
	return c
}

// Pull implements Migrator: scan the other CPUs starting after the idle
// one (ring order keeps the victim choice fair and deterministic) and take
// the first thread the policy yields.
func (w *WorkPull) Pull(idle int, now sim.Time, k *Kernel) *Thread {
	n := k.NumCPUs()
	for i := 1; i < n; i++ {
		victim := (idle + i) % n
		if t := k.Policy().Steal(victim, now); t != nil {
			return t
		}
	}
	return nil
}

// StealCandidate scans a per-CPU queue in index order and returns the
// first thread that may migrate off its CPU: non-nil, not one of the
// excluded threads (the CPU's current occupant, a policy's cached
// winner), and not pinned. It is the one definition of movability the
// policies' Steal implementations share; the caller dequeues the result.
func StealCandidate(q []*Thread, exclude ...*Thread) *Thread {
scan:
	for _, t := range q {
		if t == nil || t.affinity != AffinityAny {
			continue
		}
		for _, x := range exclude {
			if t == x {
				continue scan
			}
		}
		return t
	}
	return nil
}
