package kernel_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// BenchmarkSimulatedSecondOneHog measures wall time per simulated second
// of machine time with a single CPU-bound thread — the simulator's
// fundamental speed.
func BenchmarkSimulatedSecondOneHog(b *testing.B) {
	eng, k := newRRMachine(10 * sim.Millisecond)
	k.Spawn("hog", hog(1_000_000))
	k.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(sim.Second)
	}
	b.StopTimer()
	k.Stop()
}

// BenchmarkSimulatedSecondPipeline measures a producer/consumer pair with
// queue blocking — the experiment workloads' hot path.
func BenchmarkSimulatedSecondPipeline(b *testing.B) {
	eng, k := newRRMachine(sim.Millisecond)
	q := k.NewQueue("pipe", 1<<20)
	k.Spawn("prod", &pcProgram{q: q, cycles: 100_000, bytes: 4096, produce: true})
	k.Spawn("cons", &pcProgram{q: q, cycles: 100_000, bytes: 4096})
	k.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(sim.Second)
	}
	b.StopTimer()
	k.Stop()
}

// BenchmarkContextSwitchStorm measures dispatch cost with 20 runnable
// threads and 1 ms quanta.
func BenchmarkContextSwitchStorm(b *testing.B) {
	eng, k := newRRMachine(sim.Millisecond)
	for i := 0; i < 20; i++ {
		k.Spawn("hog", hog(1_000_000))
	}
	k.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(100 * sim.Millisecond)
	}
	b.StopTimer()
	k.Stop()
}

// BenchmarkTimerHeavySleepers measures the do_timers path with 100
// periodically sleeping threads.
func BenchmarkTimerHeavySleepers(b *testing.B) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	for i := 0; i < 100; i++ {
		phase := 0
		sleepOp := kernel.OpSleep{D: 5 * sim.Millisecond}
		computeOp := kernel.OpCompute{Cycles: 10_000}
		k.Spawn("sleeper", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
			phase++
			if phase%2 == 1 {
				return &sleepOp
			}
			return &computeOp
		}))
	}
	k.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(100 * sim.Millisecond)
	}
	b.StopTimer()
	k.Stop()
}
