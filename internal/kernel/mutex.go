package kernel

import "fmt"

// Mutex is a simulated kernel mutex with FIFO direct-handoff semantics: on
// unlock, ownership transfers to the longest-waiting thread.
//
// Deliberately, there is no priority inheritance: the Mars Pathfinder
// scenario (§2 of the paper) depends on a plain mutex so that a fixed-
// priority policy exhibits priority inversion while the real-rate scheduler
// does not starve the lock holder.
type Mutex struct {
	name    string
	owner   *Thread
	waiters WaitQueue
	// acquisitions counts successful lock operations, for tests.
	acquisitions uint64
	// contended counts lock attempts that had to wait.
	contended uint64
}

// NewMutex returns an unlocked mutex that is not associated with any
// kernel. Prefer (*Kernel).NewMutex, which registers the mutex with the
// machine so tools can enumerate and name it.
func NewMutex(name string) *Mutex {
	return &Mutex{name: name, waiters: WaitQueue{name: name + ".waiters"}}
}

// NewMutex creates an unlocked mutex registered with the kernel: it shows
// up in Mutexes, so tracing and monitoring tools can enumerate the
// machine's locks by name.
func (k *Kernel) NewMutex(name string) *Mutex {
	m := NewMutex(name)
	k.mutexes = append(k.mutexes, m)
	return m
}

// Mutexes returns every mutex created through (*Kernel).NewMutex. The slice
// must not be modified.
func (k *Kernel) Mutexes() []*Mutex { return k.mutexes }

// Name returns the mutex's name.
func (m *Mutex) Name() string { return m.name }

// Owner returns the thread holding the mutex, or nil.
func (m *Mutex) Owner() *Thread { return m.owner }

// Waiters returns the number of threads blocked on the mutex.
func (m *Mutex) Waiters() int { return m.waiters.Len() }

// Acquisitions returns the number of successful lock operations.
func (m *Mutex) Acquisitions() uint64 { return m.acquisitions }

// Contended returns the number of lock attempts that blocked.
func (m *Mutex) Contended() uint64 { return m.contended }

// tryLock attempts to acquire m for t without blocking. The owner's
// held-mutex count keeps a lock-holding thread out of the recycling pool
// (see Kernel.recycleThread).
func (m *Mutex) tryLock(t *Thread) bool {
	if m.owner == nil {
		m.owner = t
		t.ownedMutexes++
		m.acquisitions++
		return true
	}
	if m.owner == t {
		panic(fmt.Sprintf("kernel: %v recursively locking mutex %q", t, m.name))
	}
	m.contended++
	return false
}

// unlock releases m held by t and returns the thread ownership was handed
// to, or nil when no one was waiting.
func (m *Mutex) unlock(t *Thread) *Thread {
	if m.owner != t {
		panic(fmt.Sprintf("kernel: %v unlocking mutex %q owned by %v", t, m.name, m.owner))
	}
	next := m.waiters.pop()
	m.owner = next
	t.ownedMutexes--
	if next != nil {
		m.acquisitions++
		next.ownedMutexes++
		next.waitingOn = nil
	}
	return next
}
