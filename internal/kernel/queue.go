package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// Queue is an in-kernel bounded byte buffer — the analog of the shared
// queues, pipes, and sockets the paper's symbiotic interfaces expose to the
// scheduler (§3.2). Producers block while the queue lacks space; consumers
// block while it lacks data. Fill level, size, and transfer totals are
// visible to the progress monitor.
type Queue struct {
	kern *Kernel
	name string
	size int64
	fill int64

	notFull  WaitQueue
	notEmpty WaitQueue

	produced int64 // total bytes ever enqueued
	consumed int64 // total bytes ever dequeued

	// watchers are notified after every successful fill change — the push
	// half of event-driven progress tracking. Nil (the default) costs the
	// transfer paths one length check.
	watchers []QueueWatcher
}

// NewQueue creates a bounded buffer of the given byte capacity. Queues
// are carved from a slab chunk (they are never freed — a pooled session
// pipeline recycles them via Reset instead), and the wait-queue halves
// derive their trace labels lazily, so a queue costs 1/256th of an
// allocation rather than three.
func (k *Kernel) NewQueue(name string, size int64) *Queue {
	if size <= 0 {
		panic("kernel: queue size must be positive")
	}
	if len(k.queueSlab) == 0 {
		k.queueSlab = make([]Queue, 256)
	}
	q := &k.queueSlab[0]
	k.queueSlab = k.queueSlab[1:]
	*q = Queue{
		kern:     k,
		name:     name,
		size:     size,
		notFull:  WaitQueue{name: name, kind: wqNotFull},
		notEmpty: WaitQueue{name: name, kind: wqNotEmpty},
	}
	return q
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.name }

// Size returns the queue's capacity in bytes.
func (q *Queue) Size() int64 { return q.size }

// Fill returns the current fill in bytes.
func (q *Queue) Fill() int64 { return q.fill }

// FillLevel returns fill/size in [0, 1] — the raw progress signal the
// controller samples.
func (q *Queue) FillLevel() float64 { return float64(q.fill) / float64(q.size) }

// Produced returns the total bytes ever enqueued.
func (q *Queue) Produced() int64 { return q.produced }

// Consumed returns the total bytes ever dequeued.
func (q *Queue) Consumed() int64 { return q.consumed }

// QueueWatcher is notified after every successful transfer in or out of
// a watched queue — i.e. whenever the fill level (the progress signal)
// actually moves. It is an interface rather than a func so callers can
// register pooled watcher objects without a closure allocation per
// registration; implementations must be cheap and must not drive the
// machine. The event-driven control plane uses watchers to mark jobs
// dirty.
type QueueWatcher interface {
	QueueChanged()
}

// Watch registers w for fill-change notification.
func (q *Queue) Watch(w QueueWatcher) { q.watchers = append(q.watchers, w) }

// notifyWatchers fires the registered fill-change watchers.
func (q *Queue) notifyWatchers() {
	for _, w := range q.watchers {
		w.QueueChanged()
	}
}

// Reset returns the queue to its freshly-created state — empty, zero
// transfer totals, no watchers — so a pooled owner (a recycled session's
// pipeline) can reuse the object instead of allocating a new one. It
// panics if any thread is still blocked on the queue: a parked waiter
// belongs to the previous life, and carrying it across a reuse would hand
// its wakeup to a stranger.
func (q *Queue) Reset() {
	if q.notFull.Len() != 0 || q.notEmpty.Len() != 0 {
		panic(fmt.Sprintf("kernel: Reset of queue %q with blocked threads (%d producers, %d consumers)",
			q.name, q.notFull.Len(), q.notEmpty.Len()))
	}
	q.fill = 0
	q.produced = 0
	q.consumed = 0
	q.watchers = q.watchers[:0]
}

// ProducerWaiting reports whether a producer is blocked on the queue.
func (q *Queue) ProducerWaiting() bool { return q.notFull.Len() > 0 }

// ConsumerWaiting reports whether a consumer is blocked on the queue.
func (q *Queue) ConsumerWaiting() bool { return q.notEmpty.Len() > 0 }

// tryProduce transfers bytes into the queue if they fit, waking one blocked
// consumer. It reports false (and transfers nothing) when full.
func (q *Queue) tryProduce(t *Thread, bytes int64, now sim.Time) bool {
	if bytes <= 0 {
		return true
	}
	if bytes > q.size {
		panic(fmt.Sprintf("kernel: %v producing %d bytes into queue %q of size %d", t, bytes, q.name, q.size))
	}
	if q.fill+bytes > q.size {
		return false
	}
	q.fill += bytes
	q.produced += bytes
	if len(q.watchers) > 0 {
		q.notifyWatchers()
	}
	if w := q.notEmpty.pop(); w != nil {
		w.waitingOn = nil
		q.kern.wake(w, now)
	}
	return true
}

// tryConsume transfers bytes out of the queue if available, waking one
// blocked producer. It reports false (and transfers nothing) when the data
// is not there yet.
func (q *Queue) tryConsume(t *Thread, bytes int64, now sim.Time) bool {
	if bytes <= 0 {
		return true
	}
	if bytes > q.size {
		panic(fmt.Sprintf("kernel: %v consuming %d bytes from queue %q of size %d", t, bytes, q.name, q.size))
	}
	if q.fill < bytes {
		return false
	}
	q.fill -= bytes
	q.consumed += bytes
	if len(q.watchers) > 0 {
		q.notifyWatchers()
	}
	if w := q.notFull.pop(); w != nil {
		w.waitingOn = nil
		q.kern.wake(w, now)
	}
	return true
}

// CheckConservation verifies produced = consumed + fill and 0 ≤ fill ≤
// size, returning an error describing any violation. Property tests call
// this after arbitrary op interleavings.
func (q *Queue) CheckConservation() error {
	if q.fill < 0 || q.fill > q.size {
		return fmt.Errorf("queue %q fill %d out of [0,%d]", q.name, q.fill, q.size)
	}
	if q.produced != q.consumed+q.fill {
		return fmt.Errorf("queue %q conservation broken: produced %d != consumed %d + fill %d",
			q.name, q.produced, q.consumed, q.fill)
	}
	return nil
}
