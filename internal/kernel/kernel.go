// Package kernel simulates the machine the paper's prototype ran on — a
// Linux 2.0.35 box with a 1 ms timer interrupt — generalized from the
// paper's single CPU to Config.CPUs homogeneous CPUs with per-CPU run
// state, a pluggable migration/placement seam (Migrator, default
// work-pull), and CPU affinity. With CPUs=1 the machine reproduces the
// paper's dispatch schedules byte-for-byte. It provides threads driven by
// Programs, a pluggable scheduling Policy (with per-CPU run-queue
// shards), kernel timers processed at timer interrupts (do_timers),
// in-kernel bounded byte queues (the pipe/socket analog used by the
// symbiotic interfaces), and mutexes (for the priority-inversion
// scenarios).
//
// The kernel charges configurable cycle costs for dispatches, timer
// interrupts, and context switches. Those costs are what Figure 8 of the
// paper measures, so they are first-class simulated work, not bookkeeping.
package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// Config sizes the simulated machine.
type Config struct {
	// ClockRate is the CPU clock. The paper's testbed is a 400 MHz
	// Pentium II.
	ClockRate sim.Hz
	// TickInterval is the timer-interrupt period; the prototype sets the
	// timer interval (and hence the upper bound on the dispatch interval)
	// to 1 millisecond.
	TickInterval sim.Duration
	// DispatchCost is charged per schedule() invocation.
	DispatchCost sim.Cycles
	// TickCost is charged per timer interrupt (do_timers etc.).
	TickCost sim.Cycles
	// SwitchCost is charged when a dispatch picks a different thread than
	// the one that ran last (context-switch overhead).
	SwitchCost sim.Cycles
	// CPUs is the number of CPUs (0 means 1). Each CPU runs at most one
	// thread at a time; the timer interrupt is processed once per tick
	// with TickCost charged per CPU, and every CPU gets a dispatch point
	// at every tick. With CPUs=1 the machine is exactly the paper's
	// single-CPU testbed.
	CPUs int
}

// NumCPUs returns the normalized CPU count (at least 1).
func (c Config) NumCPUs() int {
	if c.CPUs < 1 {
		return 1
	}
	return c.CPUs
}

// DefaultConfig matches the paper's testbed calibration (see DESIGN.md):
// a 400 MHz CPU with ~2700 cycles of total per-dispatch overhead, which
// puts Figure 8's knee at 4 kHz with ≈2.7% overhead.
func DefaultConfig() Config {
	return Config{
		ClockRate:    400_000_000,
		TickInterval: sim.Millisecond,
		DispatchCost: 1900,
		TickCost:     900,
		SwitchCost:   200,
	}
}

// FaultInjector is the kernel's slice of the fault-injection seam (see
// internal/faults): consulted at the timer interrupt for clock jitter and
// at every dispatch point for CPU stall windows. Implementations must not
// mutate kernel state. The zero-cost default is no injector: the hot paths
// pay a single nil check.
type FaultInjector interface {
	// TickDelay returns extra delay to add before the next timer
	// interrupt (clock jitter). Zero means an on-time tick.
	TickDelay(now sim.Time, interval sim.Duration) sim.Duration
	// CPUStalled reports whether the given CPU must skip this dispatch
	// point and go idle, leaving its runnable threads for peers to pull.
	CPUStalled(cpu int, now sim.Time) bool
}

// Tracer receives scheduling events as they happen. Implementations must
// not mutate kernel state. The zero-cost default is no tracer.
type Tracer interface {
	// OnDispatch fires when a thread begins a run segment.
	OnDispatch(now sim.Time, t *Thread)
	// OnDeschedule fires when a thread stops running, with the time it
	// ran and why it stopped.
	OnDeschedule(now sim.Time, t *Thread, ran sim.Duration)
	// OnWake fires when a blocked or sleeping thread becomes runnable.
	OnWake(now sim.Time, t *Thread)
	// OnBlock fires when a thread blocks voluntarily.
	OnBlock(now sim.Time, t *Thread, on string)
	// OnMigration fires when a thread is moved between CPUs (work-pull on
	// an idle CPU). It never fires on a single-CPU machine.
	OnMigration(now sim.Time, t *Thread, from, to int)
}

// Stats aggregates machine-level accounting, summed over all CPUs.
type Stats struct {
	Elapsed    sim.Duration
	Idle       sim.Duration
	Overhead   sim.Duration
	Dispatches uint64
	Ticks      uint64
	Switches   uint64
	TimerFires uint64
	Wakeups    uint64
	Migrations uint64
	// Exits counts threads that left the machine for good — program OpExit
	// and forced Retires alike. Retires counts only the forced removals
	// (admission-undo and overload shedding), so Exits − Retires is the
	// count of natural completions.
	Exits   uint64
	Retires uint64
	// CPUs is the machine's CPU count; capacity is Elapsed × CPUs.
	CPUs int
}

// ThreadTime returns the portion of the machine's capacity (Elapsed per
// CPU) spent running threads.
func (s Stats) ThreadTime() sim.Duration {
	n := s.CPUs
	if n < 1 {
		n = 1
	}
	return sim.Duration(int64(s.Elapsed)*int64(n)) - s.Idle - s.Overhead
}

// CPUStats is per-CPU accounting.
type CPUStats struct {
	// Idle is the time this CPU spent with nothing to run.
	Idle sim.Duration
	// Dispatches and Switches count scheduler activity on this CPU.
	Dispatches uint64
	Switches   uint64
	// MigrationsIn counts threads pulled onto this CPU.
	MigrationsIn uint64
}

// Kernel is the simulated machine: one or more CPUs (Config.CPUs) driven
// by one timer interrupt, entirely deterministic; all activity is driven
// by the sim.Engine event loop.
type Kernel struct {
	eng    *sim.Engine
	cfg    Config
	policy Policy

	threads []*Thread
	mutexes []*Mutex
	nextID  int

	// thrSlab is the current chunk backing new Thread objects: spawns carve
	// fresh zeroed threads out of it so an admission storm costs one
	// allocation per chunk instead of one per thread.
	thrSlab []Thread
	// queueSlab backs NewQueue the same way: session-pipeline storms
	// create queues in the tens of thousands.
	queueSlab []Queue
	// freeThread heads the free list of recycled thread objects (recycle
	// mode only); exitStub is the sentinel substituted for a recycled
	// thread anywhere the per-CPU lastRan pointer still names it, so the
	// switch-cost identity test behaves exactly as it would against a
	// stale, never-reissued pointer.
	freeThread *Thread
	exitStub   Thread
	// recycle turns on spawn→exit object recycling (see SetRecycle).
	recycle bool

	// cpus holds the per-CPU run state; cpus[0] is the boot CPU. The
	// slice is sized once at construction and never moves.
	cpus []cpu
	// migrator is the placement/work-pull seam, consulted only when the
	// machine has more than one CPU.
	migrator Migrator

	timers    *timerList
	freeTimer *Timer
	tickEv    *sim.Event
	started   bool
	stopped   bool
	baseTime  sim.Time

	// tickFn is the tick callback bound once at construction; binding a
	// method value per schedule would allocate on every tick.
	tickFn func(sim.Time)

	// busy guards against re-entrant dispatch: wakeups that occur while the
	// kernel is already inside tick/dispatch processing must not recurse
	// into the scheduler; the enclosing handler finishes the job.
	busy int

	tracer Tracer
	// faults is the optional fault injector; nil in healthy machines.
	faults FaultInjector
	// onExit, when set, fires after a thread leaves the machine for good —
	// whether its program returned OpExit or it was forcibly Retired. The
	// public layer uses it to drop per-thread indexes, so churn-heavy
	// workloads (high-rate spawn/remove cycles) cannot accumulate stale
	// entries.
	onExit func(t *Thread, now sim.Time)

	stats Stats
}

// cpu is the per-CPU run state: the running thread, its active segment,
// idle bookkeeping, and the pending-overhead account that delays the next
// run segment on this CPU.
type cpu struct {
	id      int
	current *Thread
	seg     *segment
	lastRan *Thread

	idleSince sim.Time
	idling    bool

	// pendingOverhead is kernel time that must elapse before the next run
	// segment begins on this CPU; overheadOn accumulates it, startRun
	// consumes it.
	pendingOverhead sim.Duration

	// segEndFn is this CPU's segment-end callback, bound once at
	// construction; segStore is the CPU's single segment object, reused
	// across run segments (a CPU has at most one segment active).
	segEndFn func(sim.Time)
	segStore segment

	stats CPUStats
}

// segment is one contiguous stretch of one CPU given to a thread.
type segment struct {
	t     *Thread
	start sim.Time
	end   sim.Time
	ev    *sim.Event
}

// New creates a kernel on the given engine with the given policy. The
// policy must not be shared between kernels.
func New(eng *sim.Engine, cfg Config, policy Policy) *Kernel {
	if cfg.ClockRate <= 0 {
		panic("kernel: ClockRate must be positive")
	}
	if cfg.TickInterval <= 0 {
		panic("kernel: TickInterval must be positive")
	}
	k := &Kernel{
		eng:      eng,
		cfg:      cfg,
		policy:   policy,
		timers:   newTimerList(),
		baseTime: eng.Now(),
		migrator: &WorkPull{},
	}
	k.stats.CPUs = cfg.NumCPUs()
	k.cpus = make([]cpu, cfg.NumCPUs())
	for i := range k.cpus {
		c := &k.cpus[i]
		c.id = i
		c.segEndFn = func(now sim.Time) { k.segmentEnd(c, now) }
	}
	k.tickFn = k.tick
	policy.Attach(k)
	return k
}

// Engine returns the kernel's simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Config returns the kernel's configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Policy returns the scheduling policy.
func (k *Kernel) Policy() Policy { return k.policy }

// Now returns the current simulated time.
func (k *Kernel) Now() sim.Time { return k.eng.Now() }

// NumCPUs returns the number of CPUs.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// Current returns the thread on CPU 0, or nil when it is idle. On a
// multi-CPU machine use CurrentOn.
func (k *Kernel) Current() *Thread { return k.cpus[0].current }

// CurrentOn returns the thread running on the given CPU, or nil when idle.
func (k *Kernel) CurrentOn(cpu int) *Thread { return k.cpus[cpu].current }

// SetMigrator installs a placement/work-pull policy (nil restores the
// default WorkPull). Call before Start.
func (k *Kernel) SetMigrator(m Migrator) {
	if m == nil {
		m = &WorkPull{}
	}
	k.migrator = m
}

// Migrator returns the installed migration policy.
func (k *Kernel) Migrator() Migrator { return k.migrator }

// Threads returns the machine's threads. Without recycling (the default)
// that is every thread ever created, including exited ones; with recycling
// (SetRecycle) exited threads leave the list when their objects return to
// the pool, so the slice holds only live threads and its order is not the
// creation order. The slice must not be modified.
func (k *Kernel) Threads() []*Thread { return k.threads }

// SetRecycle turns thread-object recycling on or off. When on, a thread
// that exits without holding a mutex is scrubbed and returned to a free
// pool, and the next Spawn reissues the object under a fresh ID and a
// bumped generation (Thread.Gen) — churn-heavy workloads then run the
// spawn→exit cycle without growing the heap. Callers that retain *Thread
// pointers past exit must not enable it (or must validate generations);
// the public realrate layer does both. Off, the kernel keeps the seed
// behavior: exited threads stay reachable forever.
func (k *Kernel) SetRecycle(on bool) { k.recycle = on }

// FreeThreads returns the current depth of the recycled-thread pool — the
// number of exited thread objects banked for reissue. Exposed so leak
// tests can assert the pool is bounded by the peak live population (a
// free list that outgrows peak-live means something is retiring objects
// it never owned).
func (k *Kernel) FreeThreads() int {
	n := 0
	for t := k.freeThread; t != nil; t = t.freeNext {
		n++
	}
	return n
}

// Stats returns a snapshot of machine-level accounting. Elapsed is measured
// from kernel creation; Idle includes partial in-progress idle spans and is
// summed over all CPUs.
func (k *Kernel) Stats() Stats {
	s := k.stats
	s.Elapsed = k.Now().Sub(k.baseTime)
	for i := range k.cpus {
		if k.cpus[i].idling {
			s.Idle += k.Now().Sub(k.cpus[i].idleSince)
		}
	}
	return s
}

// CPUStatsOf returns a snapshot of one CPU's accounting, including a
// partial in-progress idle span.
func (k *Kernel) CPUStatsOf(cpu int) CPUStats {
	c := &k.cpus[cpu]
	s := c.stats
	if c.idling {
		s.Idle += k.Now().Sub(c.idleSince)
	}
	return s
}

// SetTracer installs (or clears, with nil) a scheduling-event tracer.
func (k *Kernel) SetTracer(tr Tracer) { k.tracer = tr }

// SetFaultInjector installs (or clears, with nil) a fault injector. Call
// before Start; a healthy machine keeps the injector-nil fast path.
func (k *Kernel) SetFaultInjector(fi FaultInjector) { k.faults = fi }

// SetExitHook installs (or clears, with nil) a callback fired exactly once
// when a thread exits — via OpExit or Retire. The callback runs after the
// thread is fully removed from the policy, so it may inspect but must not
// re-enqueue the thread.
func (k *Kernel) SetExitHook(fn func(t *Thread, now sim.Time)) { k.onExit = fn }

// cyclesDur converts a cycle count to a duration at this machine's clock.
func (k *Kernel) cyclesDur(c sim.Cycles) sim.Duration {
	return sim.CyclesToDuration(c, k.cfg.ClockRate)
}

// Spawn creates a thread running program and makes it runnable on any CPU.
// Threads can be spawned before Start or at any point during the
// simulation.
func (k *Kernel) Spawn(name string, program Program) *Thread {
	return k.SpawnAffinity(name, program, AffinityAny)
}

// SpawnAffinity is Spawn with a CPU pin: affinity >= 0 fixes the thread to
// that CPU forever (it is never migrated); AffinityAny lets the migrator
// place it and work-pull move it.
func (k *Kernel) SpawnAffinity(name string, program Program, affinity int) *Thread {
	if affinity != AffinityAny && (affinity < 0 || affinity >= len(k.cpus)) {
		panic(fmt.Sprintf("kernel: affinity %d outside [0,%d)", affinity, len(k.cpus)))
	}
	t := k.allocThread()
	t.id = k.nextID
	t.name = name
	t.program = program
	t.kern = k
	t.state = StateReady
	t.affinity = affinity
	switch {
	case affinity != AffinityAny:
		t.cpu = affinity
	case len(k.cpus) > 1:
		t.cpu = k.migrator.Place(t, k)
		if t.cpu < 0 || t.cpu >= len(k.cpus) {
			panic(fmt.Sprintf("kernel: migrator %s placed %v on CPU %d outside [0,%d)",
				k.migrator.Name(), t, t.cpu, len(k.cpus)))
		}
	}
	k.nextID++
	t.listIdx = len(k.threads)
	k.threads = append(k.threads, t)
	now := k.Now()
	k.policy.AddThread(t, now)
	k.policy.Enqueue(t, now)
	if k.started && !k.stopped {
		k.reschedule(now)
	}
	return t
}

// Start begins the periodic timer interrupt and performs the first
// dispatch. It must be called exactly once.
func (k *Kernel) Start() {
	if k.started {
		panic("kernel: Start called twice")
	}
	k.started = true
	k.scheduleTick(k.Now().Add(k.cfg.TickInterval))
	for i := range k.cpus {
		k.dispatch(&k.cpus[i], k.Now())
	}
}

// Stop halts the timer interrupt and stops dispatching. The simulation can
// still drain remaining engine events.
func (k *Kernel) Stop() {
	if k.stopped {
		return
	}
	for i := range k.cpus {
		c := &k.cpus[i]
		if c.seg != nil {
			k.chargeSegment(c, k.Now())
		}
		k.endIdle(c, k.Now())
	}
	k.stopped = true
	if k.tickEv != nil {
		k.tickEv.Cancel()
	}
}

// scheduleTick arms the next timer interrupt, reusing the single tick
// event: after the first tick, re-arming is a pool-free Reschedule.
func (k *Kernel) scheduleTick(at sim.Time) {
	if k.tickEv == nil {
		k.tickEv = k.eng.At(at, k.tickFn)
	} else {
		k.eng.Reschedule(k.tickEv, at)
	}
}

// AddTimer registers fn to run from the timer-interrupt handler at the
// first tick at or after when. The returned Timer belongs to the kernel's
// pool: it may be reused once it has expired, so callers must not retain it
// past that point.
func (k *Kernel) AddTimer(when sim.Time, fn func(now sim.Time)) *Timer {
	tm := k.allocTimer()
	tm.When = when
	tm.fn = fn
	k.timers.add(tm)
	return tm
}

// addWakeTimer registers a sleep wakeup for t — the allocation-free fast
// path behind every OpSleep/OpSleepUntil and budget nap.
func (k *Kernel) addWakeTimer(t *Thread, when sim.Time) *Timer {
	tm := k.allocTimer()
	tm.When = when
	tm.thread = t
	k.timers.add(tm)
	return tm
}

// PendingTimers returns the number of registered, unexpired timers.
func (k *Kernel) PendingTimers() int { return k.timers.len() }

// tick is the timer interrupt: every CPU is interrupted, expired timers
// run once (globally), and every CPU reaches a dispatch point.
func (k *Kernel) tick(now sim.Time) {
	if k.stopped {
		return
	}
	k.stats.Ticks++
	k.busy++
	// Interrupt whatever is running and charge the partial segments; each
	// CPU pays for its own interrupt handler.
	for i := range k.cpus {
		c := &k.cpus[i]
		k.chargeSegment(c, now)
		k.overheadOn(c, k.cfg.TickCost)
	}
	// do_timers: run expired timers; they may wake threads.
	k.stats.TimerFires += uint64(k.expireTimers(now))
	next := now.Add(k.cfg.TickInterval)
	if k.faults != nil {
		// Clock jitter: the injector may push the next interrupt late.
		next = next.Add(k.faults.TickDelay(now, k.cfg.TickInterval))
	}
	k.scheduleTick(next)
	k.busy--
	for i := range k.cpus {
		c := &k.cpus[i]
		if k.faults != nil && k.faults.CPUStalled(c.id, now) {
			// Stall window: this CPU skips its dispatch point and idles.
			// Its current thread goes back to ready but stays in the
			// policy's structures, so an idle peer can work-pull it.
			if cur := c.current; cur != nil {
				c.current = nil
				if cur.state == StateRunning {
					cur.state = StateReady
				}
			}
			k.beginIdle(c, now)
			continue
		}
		// The policy's tick hook is per CPU: only a CPU whose current
		// thread was beaten by an enqueue re-dispatches; the rest resume
		// their interrupted threads without paying DispatchCost.
		resched := k.policy.Tick(c.id, now)
		switch {
		case c.current == nil:
			k.dispatch(c, now)
		case resched:
			cur := c.current
			c.current = nil
			if cur.state == StateRunning {
				cur.state = StateReady
			}
			k.dispatch(c, now)
		default:
			// Resume the interrupted thread without a full dispatch.
			k.beginSegment(c, c.current, now)
		}
	}
}

// overheadOn records cycles consumed by the kernel on one CPU. The cost is
// made real by delaying the start of that CPU's next run segment.
func (k *Kernel) overheadOn(c *cpu, cy sim.Cycles) {
	if cy <= 0 {
		return
	}
	d := k.cyclesDur(cy)
	k.stats.Overhead += d
	c.pendingOverhead += d
}

// dispatch runs the scheduler on one CPU: pick a thread and start a run
// segment, or go idle. The caller must have cleared c.current and c.seg.
// An idle CPU with an empty shard asks the migrator to pull work from a
// peer before giving up.
func (k *Kernel) dispatch(c *cpu, now sim.Time) {
	if k.stopped {
		return
	}
	if k.faults != nil && k.faults.CPUStalled(c.id, now) {
		// Stall window: wakeup- and reschedule-driven dispatches also skip
		// this CPU; the next healthy tick resumes normal dispatching.
		c.current = nil
		k.beginIdle(c, now)
		return
	}
	k.stats.Dispatches++
	c.stats.Dispatches++
	k.busy++
	defer func() { k.busy-- }()
	k.overheadOn(c, k.cfg.DispatchCost)
	pulled := false
	for {
		t := k.policy.Pick(c.id, now)
		if t == nil {
			if !pulled && len(k.cpus) > 1 {
				// Work-pull: one migration attempt per dispatch.
				pulled = true
				if m := k.migrator.Pull(c.id, now, k); m != nil {
					k.migrate(m, c.id, now)
					continue
				}
			}
			c.current = nil
			k.beginIdle(c, now)
			return
		}
		if t.state == StateRunning {
			panic(fmt.Sprintf("kernel: Pick(%d) returned %v already running on CPU %d", c.id, t, t.cpu))
		}
		k.endIdle(c, now)
		// Drive the program until it owes CPU; it may block or exit
		// instead, in which case we pick again.
		if !k.prepare(t, now) {
			continue
		}
		if c.lastRan != nil && c.lastRan != t {
			k.stats.Switches++
			c.stats.Switches++
			k.overheadOn(c, k.cfg.SwitchCost)
		}
		c.lastRan = t
		t.dispatched++
		k.startRun(c, t, now)
		return
	}
}

// migrate reassigns a stolen thread (already out of every policy
// structure) to its new CPU and re-enqueues it there.
func (k *Kernel) migrate(t *Thread, to int, now sim.Time) {
	from := t.cpu
	t.cpu = to
	t.migrations++
	k.stats.Migrations++
	k.cpus[to].stats.MigrationsIn++
	if k.tracer != nil {
		k.tracer.OnMigration(now, t, from, to)
	}
	k.policy.Enqueue(t, now)
}

// reschedule triggers a dispatch on every idle CPU. If a thread is
// running, enforcement waits for the next dispatch point (tick, syscall,
// or wakeup preemption), matching the prototype. Poking every idle CPU —
// not just the woken thread's — lets an idle peer work-pull a thread that
// was enqueued behind a busy CPU's current.
func (k *Kernel) reschedule(now sim.Time) {
	if k.busy != 0 || !k.started || k.stopped {
		return
	}
	for i := range k.cpus {
		c := &k.cpus[i]
		if c.current == nil && c.seg == nil {
			k.dispatch(c, now)
		}
	}
}

// opStatus is the outcome of executing one program operation.
type opStatus int

const (
	// opRun: the thread owes CPU; start a run segment.
	opRun opStatus = iota
	// opParked: the thread blocked, slept, yielded, or exited.
	opParked
	// opNext: the op completed with no CPU cost; consult the program again
	// (counts toward the zero-cost-op runaway guard).
	opNext
	// opNextFree: like opNext but exempt from the runaway guard (an
	// already-expired OpSleepUntil).
	opNextFree
)

// prepare drives t's program until it owes CPU (an in-progress OpCompute),
// or blocks/sleeps/exits. It reports whether t is ready to run a segment.
//
// Each op is accepted both by value and as a pointer: hot programs keep
// their op structs across iterations and return pointers, so emitting an
// op does not box a fresh interface value on every call.
func (k *Kernel) prepare(t *Thread, now sim.Time) bool {
	for {
		if t.op == nil {
			t.op = t.program.Next(t, now)
			if t.op == nil {
				panic(fmt.Sprintf("kernel: program of %v returned nil op", t))
			}
		}
		var st opStatus
		switch op := t.op.(type) {
		case OpCompute:
			st = k.opCompute(t, op)
		case *OpCompute:
			st = k.opCompute(t, *op)
		case OpProduce:
			st = k.opProduce(t, op, now)
		case *OpProduce:
			st = k.opProduce(t, *op, now)
		case OpConsume:
			st = k.opConsume(t, op, now)
		case *OpConsume:
			st = k.opConsume(t, *op, now)
		case OpSleep:
			st = k.opSleep(t, op.D, now)
		case *OpSleep:
			st = k.opSleep(t, op.D, now)
		case OpSleepUntil:
			st = k.opSleepUntil(t, op.At, now)
		case *OpSleepUntil:
			st = k.opSleepUntil(t, op.At, now)
		case OpLock:
			st = k.opLock(t, op.M, now)
		case *OpLock:
			st = k.opLock(t, op.M, now)
		case OpUnlock:
			st = k.opUnlock(t, op.M, now)
		case *OpUnlock:
			st = k.opUnlock(t, op.M, now)
		case OpYield:
			st = k.opYield(t, now)
		case *OpYield:
			st = k.opYield(t, now)
		case OpBlock:
			st = k.opBlock(t, op.WQ, now)
		case *OpBlock:
			st = k.opBlock(t, op.WQ, now)
		case OpExit:
			k.exit(t, now)
			return false
		case *OpExit:
			k.exit(t, now)
			return false
		default:
			panic(fmt.Sprintf("kernel: unknown op %T", t.op))
		}
		switch st {
		case opRun:
			return true
		case opParked:
			return false
		case opNextFree:
			continue
		}
		t.zeroOps++
		if t.zeroOps > 100000 {
			panic(fmt.Sprintf("kernel: thread %v executed %d consecutive zero-cost ops", t, t.zeroOps))
		}
	}
}

func (k *Kernel) opCompute(t *Thread, op OpCompute) opStatus {
	if t.remaining == 0 && op.Cycles > 0 {
		t.remaining = op.Cycles
	}
	if t.remaining > 0 {
		t.zeroOps = 0
		return opRun
	}
	t.finishOp() // zero-cycle compute completes immediately
	return opNext
}

func (k *Kernel) opProduce(t *Thread, op OpProduce, now sim.Time) opStatus {
	if !op.Queue.tryProduce(t, op.Bytes, now) {
		k.block(t, &op.Queue.notFull, now)
		return opParked
	}
	t.finishOp()
	return opNext
}

func (k *Kernel) opConsume(t *Thread, op OpConsume, now sim.Time) opStatus {
	if !op.Queue.tryConsume(t, op.Bytes, now) {
		k.block(t, &op.Queue.notEmpty, now)
		return opParked
	}
	t.finishOp()
	return opNext
}

func (k *Kernel) opSleep(t *Thread, d sim.Duration, now sim.Time) opStatus {
	deadline := now.Add(d)
	t.finishOp()
	k.sleepUntil(t, deadline, now)
	return opParked
}

func (k *Kernel) opSleepUntil(t *Thread, at, now sim.Time) opStatus {
	if at <= now {
		t.finishOp()
		return opNextFree
	}
	t.finishOp()
	k.sleepUntil(t, at, now)
	return opParked
}

func (k *Kernel) opLock(t *Thread, m *Mutex, now sim.Time) opStatus {
	if !m.tryLock(t) {
		k.block(t, &m.waiters, now)
		return opParked
	}
	t.finishOp()
	return opNext
}

func (k *Kernel) opUnlock(t *Thread, m *Mutex, now sim.Time) opStatus {
	k.unlock(t, m, now)
	t.finishOp()
	return opNext
}

func (k *Kernel) opYield(t *Thread, now sim.Time) opStatus {
	t.finishOp()
	t.state = StateReady
	// Rotate: move to the back of the policy's runnable set so Pick can
	// choose someone else.
	k.policy.Dequeue(t, now)
	k.policy.Enqueue(t, now)
	return opParked
}

func (k *Kernel) opBlock(t *Thread, wq *WaitQueue, now sim.Time) opStatus {
	// One-shot park: when woken the program resumes with its next op, so
	// the block is complete the moment it begins.
	t.finishOp()
	k.block(t, wq, now)
	return opParked
}

// finishOp clears the in-progress op so the program is consulted again.
func (t *Thread) finishOp() {
	t.op = nil
	t.remaining = 0
}

// beginSegment resumes t on its CPU after a tick. If its burst is already
// complete it is driven through prepare first.
func (k *Kernel) beginSegment(c *cpu, t *Thread, now sim.Time) {
	if t.remaining <= 0 {
		if !k.prepare(t, now) {
			c.current = nil
			k.dispatch(c, now)
			return
		}
	}
	k.startRun(c, t, now)
}

// startRun begins a run segment for t on c, bounded by the remaining burst
// and the policy's time slice, delayed by the CPU's pending overhead.
func (k *Kernel) startRun(c *cpu, t *Thread, now sim.Time) {
	slice := k.policy.TimeSlice(t, now)
	if slice <= 0 {
		// The policy refuses to run the thread right now. Give it a
		// zero-length charge round so it can deschedule the thread.
		if k.policy.Charge(t, c.id, 0, now) || t.state == StateSleeping || t.state == StateBlocked {
			c.current = nil
			k.dispatch(c, now)
			return
		}
		// The policy did nothing; run one tick to avoid livelock.
		slice = k.cfg.TickInterval
	}
	runFor := k.cyclesDur(t.remaining)
	if slice < runFor {
		runFor = slice
	}
	start := now.Add(k.takeOverhead(c))
	end := start.Add(runFor)
	c.current = t
	t.state = StateRunning
	seg := &c.segStore
	seg.t = t
	seg.start = start
	seg.end = end
	seg.ev = k.eng.At(end, c.segEndFn)
	c.seg = seg
	if k.tracer != nil {
		k.tracer.OnDispatch(start, t)
	}
}

// takeOverhead consumes a CPU's accumulated pending overhead.
func (k *Kernel) takeOverhead(c *cpu) sim.Duration {
	d := c.pendingOverhead
	c.pendingOverhead = 0
	return d
}

// chargeSegment ends c's active segment at now (early or on time), charging
// the thread for the time it actually ran and letting the policy account it.
func (k *Kernel) chargeSegment(c *cpu, now sim.Time) {
	seg := c.seg
	if seg == nil {
		return
	}
	seg.ev.Cancel()
	c.seg = nil
	t := seg.t
	seg.t = nil
	seg.ev = nil
	ran := sim.Duration(0)
	if now > seg.start {
		end := now
		if end > seg.end {
			end = seg.end
		}
		ran = end.Sub(seg.start)
	}
	if ran > 0 {
		t.cpuTime += ran
		t.runSinceBlock += ran
		burned := sim.DurationToCycles(ran, k.cfg.ClockRate)
		if burned >= t.remaining {
			t.remaining = 0
		} else {
			t.remaining -= burned
		}
	}
	if t.remaining == 0 && t.op != nil {
		switch t.op.(type) {
		case OpCompute, *OpCompute:
			t.finishOp()
		}
	}
	if k.tracer != nil {
		k.tracer.OnDeschedule(now, t, ran)
	}
	if k.policy.Charge(t, c.id, ran, now) && c.current == t {
		c.current = nil
		if t.state == StateRunning {
			t.state = StateReady
		}
	}
}

// segmentEnd fires when a run segment completes naturally on c: the burst
// finished or the policy's slice expired. Both are dispatch points.
func (k *Kernel) segmentEnd(c *cpu, now sim.Time) {
	if c.seg == nil || k.stopped {
		return
	}
	k.chargeSegment(c, now)
	if t := c.current; t != nil {
		c.current = nil
		if t.state == StateRunning {
			t.state = StateReady
		}
	}
	k.dispatch(c, now)
}

// block parks t on wq. Syscalls reach here only via prepare, so no segment
// is active.
func (k *Kernel) block(t *Thread, wq *WaitQueue, now sim.Time) {
	t.state = StateBlocked
	t.blockedCount++
	t.runSinceBlock = 0
	t.waitingOn = wq
	wq.push(t)
	if k.tracer != nil {
		k.tracer.OnBlock(now, t, wq.label())
	}
	k.policy.Dequeue(t, now)
	if c := &k.cpus[t.cpu]; c.current == t {
		c.current = nil
	}
}

// sleepUntil parks t until the first tick at or after deadline.
func (k *Kernel) sleepUntil(t *Thread, deadline, now sim.Time) {
	t.state = StateSleeping
	t.runSinceBlock = 0
	k.policy.Dequeue(t, now)
	t.wakeTimer = k.addWakeTimer(t, deadline)
	if c := &k.cpus[t.cpu]; c.current == t {
		c.current = nil
	}
}

// SleepThreadUntil forcibly deschedules a runnable thread until the given
// instant. Policies use it for budget exhaustion ("when a thread has used
// its allocation for its period, it is put to sleep until its next period
// begins", §3.1). Blocked and exited threads are left alone.
func (k *Kernel) SleepThreadUntil(t *Thread, deadline sim.Time) {
	if !t.Runnable() {
		return
	}
	k.sleepUntil(t, deadline, k.Now())
}

// wake makes a blocked or sleeping thread runnable and applies the policy's
// preemption rule.
func (k *Kernel) wake(t *Thread, now sim.Time) {
	if t.state == StateExited || t.Runnable() {
		return
	}
	if t.waitingOn != nil {
		t.waitingOn.remove(t)
		t.waitingOn = nil
	}
	if t.wakeTimer != nil {
		t.wakeTimer.Cancel()
		t.wakeTimer = nil
	}
	t.state = StateReady
	k.stats.Wakeups++
	if k.tracer != nil {
		k.tracer.OnWake(now, t)
	}
	k.policy.Enqueue(t, now)
	k.maybePreempt(t, now)
	k.reschedule(now)
}

// Wake wakes a thread parked on a raw wait queue (OpBlock) or sleeping.
// Waking a runnable thread is a no-op.
func (k *Kernel) Wake(t *Thread) { k.wake(t, k.Now()) }

// WakeOne wakes the first waiter on wq, reporting whether one was found.
func (k *Kernel) WakeOne(wq *WaitQueue) bool {
	t := wq.pop()
	if t == nil {
		return false
	}
	t.waitingOn = nil
	k.wake(t, k.Now())
	return true
}

// maybePreempt interrupts the running segment on the woken thread's CPU if
// the policy says it should preempt what is running there.
func (k *Kernel) maybePreempt(woken *Thread, now sim.Time) {
	c := &k.cpus[woken.cpu]
	cur := c.current
	if cur == nil || cur == woken || c.seg == nil {
		return
	}
	if !k.policy.WakePreempts(woken, cur, now) {
		return
	}
	k.chargeSegment(c, now)
	if c.current == cur {
		c.current = nil
		if cur.state == StateRunning {
			cur.state = StateReady
		}
	}
	k.dispatch(c, now)
}

// unlock releases m on behalf of t, handing ownership to the first waiter.
func (k *Kernel) unlock(t *Thread, m *Mutex, now sim.Time) {
	next := m.unlock(t)
	if next != nil {
		// Direct handoff: the waiter's pending OpLock has succeeded.
		next.finishOp()
		k.wake(next, now)
	}
}

// Retire forcibly removes a thread from the machine, as if its program had
// returned OpExit: it is dequeued from the policy, unhooked from any wait
// queue or wake timer, and marked exited. Callers use it to undo a Spawn
// whose higher-level registration (e.g. admission control) failed, so the
// rejected thread does not keep running in the leftover CPU.
func (k *Kernel) Retire(t *Thread) {
	if t.state == StateExited {
		return
	}
	now := k.Now()
	if c := &k.cpus[t.cpu]; c.seg != nil && c.seg.t == t {
		k.chargeSegment(c, now)
	}
	if t.waitingOn != nil {
		t.waitingOn.remove(t)
		t.waitingOn = nil
	}
	if t.wakeTimer != nil {
		t.wakeTimer.Cancel()
		t.wakeTimer = nil
	}
	k.stats.Retires++
	k.exit(t, now)
	k.reschedule(now)
}

// exit retires the thread.
func (k *Kernel) exit(t *Thread, now sim.Time) {
	t.state = StateExited
	k.stats.Exits++
	t.finishOp()
	k.policy.Dequeue(t, now)
	k.policy.RemoveThread(t, now)
	if c := &k.cpus[t.cpu]; c.current == t {
		c.current = nil
	}
	if k.onExit != nil {
		k.onExit(t, now)
	}
	if k.recycle {
		k.recycleThread(t)
	}
}

// threadSlabSize is how many Thread objects one slab chunk holds.
const threadSlabSize = 256

// allocThread returns a zeroed Thread object: from the free pool when
// recycling has banked one, otherwise carved from the current slab chunk.
// The caller fills the identity fields; gen carries over from the slot's
// previous life so stale-reference detection survives reissue.
func (k *Kernel) allocThread() *Thread {
	if t := k.freeThread; t != nil {
		k.freeThread = t.freeNext
		t.freeNext = nil
		return t
	}
	if len(k.thrSlab) == 0 {
		k.thrSlab = make([]Thread, threadSlabSize)
	}
	t := &k.thrSlab[0]
	k.thrSlab = k.thrSlab[1:]
	return t
}

// recycleThread scrubs an exited thread and returns its object to the
// pool. It runs only after the exit hook, when every layer above has
// dropped (or snapshotted) its references. A thread that exits while
// holding a mutex is left un-pooled — Mutex.owner keeps naming it — which
// is exactly the reachable-forever behavior the non-recycling kernel has.
func (k *Kernel) recycleThread(t *Thread) {
	if t.ownedMutexes != 0 {
		return
	}
	// Defensive detach: the exit paths already cancel these, but a stale
	// wake timer or wait-queue link reaching into the pool would wake a
	// stranger.
	if t.waitingOn != nil {
		t.waitingOn.remove(t)
		t.waitingOn = nil
	}
	if t.wakeTimer != nil {
		t.wakeTimer.Cancel()
		t.wakeTimer = nil
	}
	// The switch-cost test compares lastRan by identity; a reissued object
	// must read as "someone else ran last", exactly like the stale,
	// never-reissued pointer it replaces — hence the sentinel, which no
	// dispatch ever picks.
	for i := range k.cpus {
		if k.cpus[i].lastRan == t {
			k.cpus[i].lastRan = &k.exitStub
		}
	}
	// Swap-remove from the live list.
	last := len(k.threads) - 1
	if moved := k.threads[last]; moved != t {
		k.threads[t.listIdx] = moved
		moved.listIdx = t.listIdx
	}
	k.threads[last] = nil
	k.threads = k.threads[:last]
	// Scrub every field. The generation bump is what turns a retained
	// stale reference into a deterministic panic at the public layer
	// instead of silent corruption; state stays Exited so raw pointer
	// holders that poll State() keep reading a retired thread until the
	// slot is reissued.
	gen := t.gen + 1
	*t = Thread{gen: gen, state: StateExited}
	t.freeNext = k.freeThread
	k.freeThread = t
}

func (k *Kernel) beginIdle(c *cpu, now sim.Time) {
	// Kernel work accrued on the way into idle overlaps the idle span;
	// uncount it so capacity ≈ ThreadTime + Idle + Overhead stays tight.
	k.stats.Overhead -= c.pendingOverhead
	c.pendingOverhead = 0
	if c.idling {
		return
	}
	c.idling = true
	c.idleSince = now
}

func (k *Kernel) endIdle(c *cpu, now sim.Time) {
	if c.idling {
		c.idling = false
		span := now.Sub(c.idleSince)
		k.stats.Idle += span
		c.stats.Idle += span
	}
}
