package kernel_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// sleeper returns a program that sleeps in fixed intervals forever.
func sleeper(d sim.Duration) kernel.Program {
	op := kernel.OpSleep{D: d}
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return &op
	})
}

// TestRetireSleeperReleasesTimer guards the Retire path of a sleeping
// thread: its wake timer is canceled and the timer list drains — a stale
// timer would wake (and re-enqueue) a retired thread.
func TestRetireSleeperReleasesTimer(t *testing.T) {
	eng, k := newRRMachine(10 * sim.Millisecond)
	s := k.Spawn("sleeper", sleeper(100*sim.Millisecond))
	k.Start()
	eng.RunFor(5 * sim.Millisecond) // the sleeper is parked on its timer
	if s.State() != kernel.StateSleeping {
		t.Fatalf("state = %v, want sleeping", s.State())
	}
	if k.PendingTimers() == 0 {
		t.Fatal("no pending wake timer for the sleeper")
	}
	k.Retire(s)
	if s.State() != kernel.StateExited {
		t.Fatalf("state after Retire = %v", s.State())
	}
	// Run past the original wake time: the canceled timer must be
	// discarded at its expiry tick and the thread must stay retired.
	eng.RunFor(200 * sim.Millisecond)
	if got := k.PendingTimers(); got != 0 {
		t.Fatalf("pending timers = %d after expiry, want 0 (leak)", got)
	}
	if s.State() != kernel.StateExited {
		t.Fatalf("retired sleeper woke up: %v", s.State())
	}
	k.Stop()
}

// TestRetireRunningThreadClosesAccounting retires the thread that is on
// the CPU, from an engine callback mid-segment — the Kill-under-churn
// shape. The partial segment must be charged and time accounting must
// stay closed.
func TestRetireRunningThreadClosesAccounting(t *testing.T) {
	eng, k := newRRMachine(10 * sim.Millisecond)
	victim := k.Spawn("victim", hog(400_000))
	other := k.Spawn("other", hog(400_000))
	k.Start()
	eng.After(503*sim.Microsecond, func(now sim.Time) {
		if k.Current() == victim {
			k.Retire(victim)
		} else {
			k.Retire(other)
		}
	})
	eng.RunFor(sim.Second)
	k.Stop()

	retired, survivor := victim, other
	if retired.State() != kernel.StateExited {
		retired, survivor = other, victim
	}
	if retired.State() != kernel.StateExited {
		t.Fatal("neither thread retired")
	}
	if retired.CPUTime() == 0 {
		t.Fatal("mid-segment retirement dropped the partial charge")
	}
	st := k.Stats()
	total := retired.CPUTime() + survivor.CPUTime() + st.Idle + st.Overhead
	if diff := st.Elapsed - total; diff < -sim.Millisecond || diff > sim.Millisecond {
		t.Fatalf("accounting leaks %v (elapsed %v, accounted %v)", diff, st.Elapsed, total)
	}
	// The survivor owns the machine afterwards.
	if frac := survivor.CPUTime().Seconds(); frac < 0.9 {
		t.Fatalf("survivor got only %.3f of the CPU after the retirement", frac)
	}
}

// TestSpawnRetireChurnLeaksNothing cycles spawn/retire at high rate and
// checks the machine ends with no pending timers, a consistent thread
// census, and closed accounting — the kernel half of the admission-churn
// stress.
func TestSpawnRetireChurnLeaksNothing(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	exits := 0
	k.SetExitHook(func(tt *kernel.Thread, now sim.Time) { exits++ })
	keeper := k.Spawn("keeper", hog(400_000))
	k.Start()

	const cycles = 200
	rng := sim.NewRNG(7)
	var live []*kernel.Thread
	var schedule func(now sim.Time)
	spawned := 0
	schedule = func(now sim.Time) {
		// Retire roughly half the live churn threads, then spawn new ones:
		// sleepers at various depths, hogs, and instant-exiters.
		keep := live[:0]
		for _, th := range live {
			if rng.Intn(2) == 0 {
				k.Retire(th)
			} else {
				keep = append(keep, th)
			}
		}
		live = keep
		if spawned < cycles {
			for i := 0; i < 4; i++ {
				spawned++
				var prog kernel.Program
				switch rng.Intn(3) {
				case 0:
					prog = sleeper(sim.Duration(1+rng.Intn(20)) * sim.Millisecond)
				case 1:
					prog = hog(sim.Cycles(100_000 + rng.Intn(400_000)))
				default:
					prog = kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
						return kernel.OpExit{}
					})
				}
				live = append(live, k.Spawn("churn", prog))
			}
			eng.After(2*sim.Millisecond, schedule)
		} else {
			for _, th := range live {
				k.Retire(th)
			}
			live = nil
		}
	}
	eng.After(sim.Millisecond, schedule)
	eng.RunFor(sim.Second)
	// All sleep timers of retired threads must have drained at their
	// expiry ticks (churn ends ~150 ms in; the longest sleep is 20 ms).
	if got := k.PendingTimers(); got != 0 {
		t.Fatalf("pending timers = %d after churn, want 0", got)
	}
	k.Stop()

	exited := 0
	var busy sim.Duration
	for _, th := range k.Threads() {
		busy += th.CPUTime()
		if th == keeper {
			continue
		}
		if th.State() != kernel.StateExited {
			t.Fatalf("churn thread %v leaked in state %v", th, th.State())
		}
		exited++
	}
	if exited != spawned {
		t.Fatalf("spawned %d churn threads, %d exited", spawned, exited)
	}
	if exits != exited {
		t.Fatalf("exit hook fired %d times for %d exits", exits, exited)
	}
	st := k.Stats()
	total := busy + st.Idle + st.Overhead
	if diff := st.Elapsed - total; diff < -sim.Millisecond || diff > sim.Millisecond {
		t.Fatalf("accounting leaks %v under churn", diff)
	}
}

// TestRetireIdempotent pins double-Retire and Retire-after-exit as no-ops.
func TestRetireIdempotent(t *testing.T) {
	eng, k := newRRMachine(10 * sim.Millisecond)
	exits := 0
	k.SetExitHook(func(tt *kernel.Thread, now sim.Time) { exits++ })
	a := k.Spawn("a", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpExit{}
	}))
	k.Spawn("b", hog(400_000))
	k.Start()
	eng.RunFor(10 * sim.Millisecond)
	if a.State() != kernel.StateExited {
		t.Fatalf("a did not exit: %v", a.State())
	}
	k.Retire(a)
	k.Retire(a)
	if exits != 1 {
		t.Fatalf("exit hook fired %d times, want exactly 1", exits)
	}
	k.Stop()
}
