package kernel_test

import (
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// randomProgram emits a pseudo-random but deterministic op stream drawn
// from the full op vocabulary, exercising arbitrary interleavings of
// compute, queue ops, sleeps, locks, yields, and exits.
type randomProgram struct {
	rng    *sim.RNG
	queues []*kernel.Queue
	mus    []*kernel.Mutex
	held   *kernel.Mutex
	steps  int
	limit  int
}

func (p *randomProgram) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	p.steps++
	if p.steps > p.limit {
		if p.held != nil {
			m := p.held
			p.held = nil
			return kernel.OpUnlock{M: m}
		}
		return kernel.OpExit{}
	}
	// While holding a mutex, only compute or release: keeps lock usage
	// well-formed so the test exercises scheduling, not API misuse.
	if p.held != nil {
		if p.rng.Intn(2) == 0 {
			return kernel.OpCompute{Cycles: sim.Cycles(1 + p.rng.Intn(500_000))}
		}
		m := p.held
		p.held = nil
		return kernel.OpUnlock{M: m}
	}
	switch p.rng.Intn(8) {
	case 0, 1:
		return kernel.OpCompute{Cycles: sim.Cycles(1 + p.rng.Intn(2_000_000))}
	case 2:
		q := p.queues[p.rng.Intn(len(p.queues))]
		return kernel.OpProduce{Queue: q, Bytes: int64(1 + p.rng.Intn(2000))}
	case 3:
		q := p.queues[p.rng.Intn(len(p.queues))]
		return kernel.OpConsume{Queue: q, Bytes: int64(1 + p.rng.Intn(2000))}
	case 4:
		return kernel.OpSleep{D: sim.Duration(p.rng.Intn(20)) * sim.Millisecond}
	case 5:
		m := p.mus[p.rng.Intn(len(p.mus))]
		p.held = m
		return kernel.OpLock{M: m}
	case 6:
		return kernel.OpYield{}
	default:
		return kernel.OpCompute{Cycles: sim.Cycles(1 + p.rng.Intn(100_000))}
	}
}

// TestPropertyRandomWorkloadInvariants runs swarms of random programs under
// both baseline policies and checks the machine-level invariants: queue
// conservation, time conservation, and clean termination.
func TestPropertyRandomWorkloadInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		for _, mkPolicy := range []func() kernel.Policy{
			func() kernel.Policy { return baseline.NewRoundRobin(2 * sim.Millisecond) },
			func() kernel.Policy { return baseline.NewLinux() },
		} {
			eng := sim.NewEngine()
			k := kernel.New(eng, kernel.DefaultConfig(), mkPolicy())
			rng := sim.NewRNG(seed)
			queues := []*kernel.Queue{
				k.NewQueue("q0", 64*1024),
				k.NewQueue("q1", 8*1024),
			}
			mus := []*kernel.Mutex{kernel.NewMutex("m0"), kernel.NewMutex("m1")}
			n := 2 + rng.Intn(6)
			for i := 0; i < n; i++ {
				k.Spawn("rand", &randomProgram{
					rng:    sim.NewRNG(rng.Uint64()),
					queues: queues,
					mus:    mus,
					limit:  50 + rng.Intn(200),
				})
			}
			k.Start()
			eng.RunFor(3 * sim.Second)
			k.Stop()

			for _, q := range queues {
				if err := q.CheckConservation(); err != nil {
					t.Log(err)
					return false
				}
			}
			st := k.Stats()
			var threadTime sim.Duration
			for _, th := range k.Threads() {
				threadTime += th.CPUTime()
			}
			total := threadTime + st.Idle + st.Overhead
			diff := total - st.Elapsed
			if diff < 0 {
				diff = -diff
			}
			if diff > 5*sim.Millisecond {
				t.Logf("conservation drift %v (threads %v idle %v overhead %v elapsed %v)",
					diff, threadTime, st.Idle, st.Overhead, st.Elapsed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRandomWorkloadUnderRBSControl runs the same fuzz through the
// full real-rate stack (dispatcher + controller) via a helper in the rbs
// tests' style: every thread becomes a miscellaneous job.
func TestRandomWorkloadNeverDeadlocksMachine(t *testing.T) {
	// Blocked-forever threads are legal (a consumer on an empty queue),
	// but the machine itself must keep ticking and accounting.
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	q := k.NewQueue("q", 1024)
	k.Spawn("starved-consumer", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpConsume{Queue: q, Bytes: 512}
	}))
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()
	st := k.Stats()
	if st.Ticks < 1990 {
		t.Fatalf("machine stopped ticking: %d ticks", st.Ticks)
	}
	if st.Idle < 1900*sim.Millisecond {
		t.Fatalf("idle accounting wrong with one blocked thread: %v", st.Idle)
	}
}
