package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
	"repro/internal/workload/gen"
)

// The open-loop sweep is the workload-breadth counterpart of the paper's
// closed-loop figures: instead of a fixed taskset shaping its own load, a
// Poisson arrival process the scheduler did not shape drives short-lived
// tasks through the public Spawn/exit path at increasing rates, under
// every policy. Feedback-scheduling evaluations show closed-loop
// allocators behave qualitatively differently under such arrivals, which
// is exactly what the completion and admission columns surface.

// OpenLoopPoint is one (arrival rate, policy) cell.
type OpenLoopPoint struct {
	Rate          float64 // arrivals per second
	Policy        string
	Spawned       int // tasks that entered the machine
	Completed     int // tasks that ran to exit within the window
	AdmitRejected int // reservation arrivals refused by admission control
	Quality       int // quality exceptions raised (rbs only)
}

// OpenLoopResult is the full sweep.
type OpenLoopResult struct {
	RunFor sim.Duration
	CPUs   int
	Points []OpenLoopPoint
}

// RunOpenLoopSweep sweeps Poisson arrival rates across every policy
// through the parallel sweep runner. Each point is an independent machine
// driven by the seeded workload generator, so the sweep is deterministic
// and replayable. cpus sizes the machine (0 or 1: the paper's single-CPU
// testbed; rrexp -openloop -cpus N sweeps an SMP machine).
func RunOpenLoopSweep(rates []float64, runFor sim.Duration, cpus int) OpenLoopResult {
	if len(rates) == 0 {
		rates = []float64{10, 30, 60, 120, 240}
	}
	if runFor == 0 {
		runFor = 2 * sim.Second
	}
	if cpus < 1 {
		cpus = 1
	}
	policies := gen.Policies()
	pts := Sweep(len(rates)*len(policies), func(i int) OpenLoopPoint {
		rate := rates[i/len(policies)]
		policy := policies[i%len(policies)]
		sp := gen.Spec{
			Family: "openloop",
			// One seed per rate: all five policies face the identical
			// arrival plan, so the rows compare disciplines, not draws.
			Seed:     uint64(i/len(policies)) + 1,
			Duration: time.Duration(runFor),
			CPUs:     cpus,
			Taskset:  gen.TasksetSpec{Interactive: 1, RealTime: 1},
			Arrivals: gen.ArrivalSpec{
				Process:  gen.Poisson,
				Rate:     rate,
				MeanLife: 50 * time.Millisecond,
				Mix: []gen.TaskKind{
					gen.KindMisc, gen.KindMisc, gen.KindInteractive,
					gen.KindRealTime, gen.KindPaced,
				},
			},
		}
		res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: policy})
		if err != nil {
			panic(err)
		}
		return OpenLoopPoint{
			Rate:          rate,
			Policy:        policy,
			Spawned:       res.Report.Threads,
			Completed:     res.Report.Exits,
			AdmitRejected: res.Report.AdmitRejected,
			Quality:       res.Report.QualityEvents,
		}
	})
	return OpenLoopResult{RunFor: runFor, CPUs: cpus, Points: pts}
}

// Print writes the sweep as a table.
func (res OpenLoopResult) Print(w io.Writer) {
	section(w, "Open-loop arrivals: Poisson task stream vs. policy")
	fmt.Fprintf(w, "window: %v per point, %d CPU(s)\n", res.RunFor, res.CPUs)
	fmt.Fprintf(w, "%-10s %-12s %-9s %-10s %-9s %s\n",
		"rate/s", "policy", "spawned", "completed", "rejected", "quality")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-10.0f %-12s %-9d %-10d %-9d %d\n",
			p.Rate, p.Policy, p.Spawned, p.Completed, p.AdmitRejected, p.Quality)
	}
}

// WriteCSV dumps the sweep for plotting.
func (res OpenLoopResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "rate,policy,spawned,completed,rejected,quality"); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(w, "%.0f,%s,%d,%d,%d,%d\n",
			p.Rate, p.Policy, p.Spawned, p.Completed, p.AdmitRejected, p.Quality); err != nil {
			return err
		}
	}
	return nil
}
