package experiments_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestSLOSweepAttainmentMonotone runs a small attainment sweep and pins
// the curve's defining property: the service level never improves as
// offered load climbs. Goodput (met/started, the view that charges
// refusals and deaths) must be monotone non-increasing along the load
// ladder; the sub-saturation point must actually serve its users, and the
// far-past-saturation point must show real degradation — a flat curve
// means the sweep is not loading the machine at all.
func TestSLOSweepAttainmentMonotone(t *testing.T) {
	cfg := experiments.SLOConfig{
		Seed:     7,
		Sessions: 800,
		Loads:    []float64{0.25, 1, 8},
		Policies: []string{"rbs"},
		CPUs:     []int{2},
		Duration: 500 * time.Millisecond,
	}
	res := experiments.RunSLOSweep(cfg)
	if len(res.Points) != len(cfg.Loads) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(cfg.Loads))
	}
	for i, p := range res.Points {
		if p.Sessions.Started == 0 {
			t.Fatalf("load %g: no sessions started", p.Load)
		}
		if i > 0 {
			prev := res.Points[i-1]
			if p.Sessions.Goodput > prev.Sessions.Goodput+1e-9 {
				t.Errorf("goodput not monotone in offered load: %.3f at load %g, %.3f at load %g",
					prev.Sessions.Goodput, prev.Load, p.Sessions.Goodput, p.Load)
			}
		}
	}
	low, high := res.Points[0], res.Points[len(res.Points)-1]
	// At a comfortable load the sessions the system chooses to serve make
	// their deadlines (the governor refusing burst peaks is this family's
	// steady state, so goodput has no floor — but attainment over the
	// admitted-and-completed population does).
	if low.Sessions.Completed == 0 || low.Sessions.Attainment < 0.6 {
		t.Errorf("attainment %.3f over %d completed at load %g: machine cannot serve a comfortable load",
			low.Sessions.Attainment, low.Sessions.Completed, low.Load)
	}
	if high.Sessions.Goodput >= low.Sessions.Goodput {
		t.Errorf("no degradation from load %g (%.3f) to load %g (%.3f): sweep never saturates",
			low.Load, low.Sessions.Goodput, high.Load, high.Sessions.Goodput)
	}
}

// TestSLOSweepOutput pins the sweep's two output surfaces: the printed
// curves carry one block per (policy, cpus) and the CSV carries the header
// plotting scripts key on plus one row per point.
func TestSLOSweepOutput(t *testing.T) {
	cfg := experiments.SLOConfig{
		Seed:     3,
		Sessions: 200,
		Loads:    []float64{0.5, 2},
		Policies: []string{"rbs", "stride"},
		CPUs:     []int{1, 2},
		Duration: 200 * time.Millisecond,
	}
	res := experiments.RunSLOSweep(cfg)
	if want := len(cfg.Policies) * len(cfg.CPUs) * len(cfg.Loads); len(res.Points) != want {
		t.Fatalf("points = %d, want %d", len(res.Points), want)
	}

	var sb strings.Builder
	res.Print(&sb)
	for _, block := range []string{
		"policy=rbs cpus=1", "policy=rbs cpus=2",
		"policy=stride cpus=1", "policy=stride cpus=2",
	} {
		if !strings.Contains(sb.String(), block) {
			t.Errorf("printed curves missing block %q", block)
		}
	}

	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(res.Points) {
		t.Fatalf("CSV rows = %d, want header + %d points", len(lines), len(res.Points))
	}
	if !strings.HasPrefix(lines[0], "policy,cpus,load,offered_per_s,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestSLOSpecScalesWithLoad pins the spec builder the benchmark shares
// with rrexp -slo: arrival rates scale linearly with the load multiplier,
// session anatomy does not, and degenerate inputs are clamped.
func TestSLOSpecScalesWithLoad(t *testing.T) {
	a := experiments.SLOSpec(1, 1000, 1, time.Second, 4)
	b := experiments.SLOSpec(1, 1000, 2, time.Second, 4)
	if b.Sessions.Rate != 2*a.Sessions.Rate || b.Sessions.BurstRate != 2*a.Sessions.BurstRate {
		t.Errorf("rates not linear in load: %+v vs %+v", a.Sessions, b.Sessions)
	}
	if a.Sessions.Stages != b.Sessions.Stages || a.Sessions.Deadline != b.Sessions.Deadline {
		t.Error("load multiplier changed session anatomy")
	}
	c := experiments.SLOSpec(1, 100, 1, 0, 0)
	if c.Duration != time.Second || c.CPUs != 1 {
		t.Errorf("degenerate dur/cpus not clamped: %v, %d", c.Duration, c.CPUs)
	}
}
