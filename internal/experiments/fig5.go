package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fig5Point is one x/y point of Figure 5: controller CPU overhead versus
// the number of controlled processes.
type Fig5Point struct {
	Processes int
	Overhead  float64 // fraction of CPU consumed by the controller
}

// Fig5Result reproduces Figure 5 ("Overhead of Controller"): the paper
// reports a linear fit y = .00066x + .00057 with R² = .999 and 2.7% of CPU
// at 40 controlled processes.
type Fig5Result struct {
	Points []Fig5Point
	Fit    metrics.Linear
	// At40 is the overhead at 40 processes (the paper's headline 2.7%).
	At40 float64
}

// Fig5Config parameterizes the sweep.
type Fig5Config struct {
	// MaxProcesses is the largest process count (default 40).
	MaxProcesses int
	// Step is the sweep increment (default 5).
	Step int
	// RunFor is the measurement window per point (default 20 s).
	RunFor sim.Duration
}

// RunFig5 sweeps the number of controlled dummy processes and measures the
// controller thread's CPU consumption. The dummies match the paper's:
// "dummy processes that consume no CPU but are scheduled, monitored, and
// controlled."
func RunFig5(cfg Fig5Config) Fig5Result {
	if cfg.MaxProcesses == 0 {
		cfg.MaxProcesses = 40
	}
	if cfg.Step == 0 {
		cfg.Step = 5
	}
	if cfg.RunFor == 0 {
		cfg.RunFor = 20 * sim.Second
	}
	var res Fig5Result
	var counts []int
	for n := 0; n <= cfg.MaxProcesses; n += cfg.Step {
		counts = append(counts, n)
	}
	// Each point is an independent machine: shard the sweep across CPUs.
	res.Points = Sweep(len(counts), func(i int) Fig5Point {
		return Fig5Point{
			Processes: counts[i],
			Overhead:  measureControllerOverhead(counts[i], cfg.RunFor),
		}
	})
	xs := make([]float64, len(res.Points))
	ys := make([]float64, len(res.Points))
	for i, p := range res.Points {
		xs[i] = float64(p.Processes)
		ys[i] = p.Overhead
	}
	res.Fit = metrics.FitLinear(xs, ys)
	res.At40 = res.Fit.Slope*40 + res.Fit.Intercept
	return res
}

func measureControllerOverhead(n int, runFor sim.Duration) float64 {
	r := newRig(nil, nil)
	for i := 0; i < n; i++ {
		// A dummy controlled process: sleeps forever in 50 ms naps, so it
		// is scheduled and monitored but consumes (almost) no CPU.
		th := r.kern.Spawn(fmt.Sprintf("dummy%d", i), sleepyProgram())
		r.ctl.AddMiscellaneous(th)
	}
	r.start()
	r.eng.RunFor(runFor)
	r.kern.Stop()
	return r.ctl.Thread().CPUTime().Seconds() / runFor.Seconds()
}

// Print writes the paper-style report.
func (res Fig5Result) Print(w io.Writer) {
	section(w, "Figure 5: Overhead of Controller")
	fmt.Fprintf(w, "%-12s %s\n", "processes", "controller CPU fraction")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-12d %.5f\n", p.Processes, p.Overhead)
	}
	fmt.Fprintf(w, "linear fit: y = %.5fx + %.5f  (R^2 = %.4f)\n",
		res.Fit.Slope, res.Fit.Intercept, res.Fit.R2)
	fmt.Fprintf(w, "overhead at 40 jobs: %.2f%% of CPU\n", res.At40*100)
	fmt.Fprintf(w, "paper:      y = 0.00066x + 0.00057 (R^2 = 0.999); 2.7%% at 40 jobs\n")
}

// WriteCSV dumps the points for plotting.
func (res Fig5Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "processes,controller_cpu_fraction"); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(w, "%d,%.6f\n", p.Processes, p.Overhead); err != nil {
			return err
		}
	}
	return nil
}
