package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
	"repro/internal/workload/gen"
)

// The churn stress drives admission control the way a shared machine
// would: reservations spawn, renegotiate, and are killed at high rate near
// the admission ceiling. The columns that matter are the accept/reject
// split (admission keeps working at rate) and the violation count (the
// invariant harness runs inside every point — zero means the Remove/exit
// paths stayed leak-free at rate).

// ChurnPoint is one (churn rate, policy) cell.
type ChurnPoint struct {
	Rate          float64 // churn operations per second
	Policy        string
	Spawned       int
	Kills         int
	AdmitOK       int
	AdmitRejected int
	Violations    int
}

// ChurnResult is the full stress sweep.
type ChurnResult struct {
	RunFor sim.Duration
	Points []ChurnPoint
}

// RunChurnStress sweeps churn rates across every policy through the
// parallel sweep runner, with the invariant checker live inside each
// point.
func RunChurnStress(rates []float64, runFor sim.Duration) ChurnResult {
	if len(rates) == 0 {
		rates = []float64{50, 200, 800}
	}
	if runFor == 0 {
		runFor = 2 * sim.Second
	}
	policies := gen.Policies()
	pts := Sweep(len(rates)*len(policies), func(i int) ChurnPoint {
		rate := rates[i/len(policies)]
		policy := policies[i%len(policies)]
		sp := gen.Spec{
			Family: "churn",
			// One seed per rate: every policy runs the identical churn plan.
			Seed:     uint64(i/len(policies)) + 1,
			Duration: time.Duration(runFor),
			Taskset: gen.TasksetSpec{
				RealTime: 2, Misc: 2, PinnedHog: true,
			},
			Churn: gen.ChurnSpec{Rate: rate, ReserveLo: 100, ReserveHi: 500},
		}
		res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: policy})
		if err != nil {
			panic(err)
		}
		return ChurnPoint{
			Rate:          rate,
			Policy:        policy,
			Spawned:       res.Report.Threads,
			Kills:         res.Report.Kills,
			AdmitOK:       res.Report.AdmitOK,
			AdmitRejected: res.Report.AdmitRejected,
			Violations:    len(res.Report.Violations) + res.Report.TruncatedViolations,
		}
	})
	return ChurnResult{RunFor: runFor, Points: pts}
}

// Print writes the stress sweep as a table.
func (res ChurnResult) Print(w io.Writer) {
	section(w, "Admission churn: Spawn/Kill/Renegotiate near capacity")
	fmt.Fprintf(w, "window: %v per point\n", res.RunFor)
	fmt.Fprintf(w, "%-10s %-12s %-9s %-7s %-9s %-9s %s\n",
		"ops/s", "policy", "spawned", "kills", "admitted", "rejected", "violations")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-10.0f %-12s %-9d %-7d %-9d %-9d %d\n",
			p.Rate, p.Policy, p.Spawned, p.Kills, p.AdmitOK, p.AdmitRejected, p.Violations)
	}
}

// WriteCSV dumps the stress sweep for plotting.
func (res ChurnResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "rate,policy,spawned,kills,admitted,rejected,violations"); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(w, "%.0f,%s,%d,%d,%d,%d,%d\n",
			p.Rate, p.Policy, p.Spawned, p.Kills, p.AdmitOK, p.AdmitRejected, p.Violations); err != nil {
			return err
		}
	}
	return nil
}
