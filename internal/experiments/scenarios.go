package experiments

import (
	"fmt"
	"io"

	realrate "repro"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PathfinderResult compares the Mars Pathfinder scenario (§2) under fixed
// priorities and under real-rate scheduling.
type PathfinderResult struct {
	Duration sim.Duration

	// Under fixed real-time priorities (the flight software's setup).
	PriorityResets      int
	PriorityBusCycles   int64
	PriorityWeatherRuns int64

	// Under the feedback-driven real-rate scheduler.
	RealRateResets      int
	RealRateBusCycles   int64
	RealRateWeatherRuns int64
}

// RunPathfinder runs the scenario twice: on a Linux-style scheduler with
// the three tasks at fixed real-time priorities (high/medium/low), and on
// the real-rate stack with the tasks as controlled jobs.
func RunPathfinder(duration sim.Duration) PathfinderResult {
	if duration == 0 {
		duration = 60 * sim.Second
	}
	cfg := workload.DefaultPathfinderConfig()
	res := PathfinderResult{Duration: duration}

	// --- Fixed priorities ---
	{
		eng := sim.NewEngine()
		lp := realrate.Linux()
		k := kernel.New(eng, kernel.DefaultConfig(), lp.Linux)
		p := workload.NewPathfinder(k, cfg)
		lp.SetRealtime(p.Bus, 30)
		lp.SetRealtime(p.Comms, 20)
		lp.SetRealtime(p.Weather, 10)
		lp.SetRealtime(p.Watchdog, 99)
		k.Start()
		eng.RunFor(duration)
		k.Stop()
		res.PriorityResets = p.Resets()
		res.PriorityBusCycles = p.BusCompletions()
		res.PriorityWeatherRuns = p.WeatherLoops()
	}

	// --- Real-rate scheduling ---
	{
		r := newRig(nil, nil)
		p := workload.NewPathfinder(r.kern, cfg)
		// The bus task has a known period: a real-time reservation. The
		// others are miscellaneous — the controller needs nothing more.
		if _, err := r.ctl.AddRealTime(p.Bus, 50, cfg.BusPeriod); err != nil {
			panic(err)
		}
		if _, err := r.ctl.AddRealTime(p.Watchdog, 10, cfg.Deadline/4); err != nil {
			panic(err)
		}
		r.ctl.AddMiscellaneous(p.Comms)
		r.ctl.AddMiscellaneous(p.Weather)
		r.start()
		r.eng.RunFor(duration)
		r.kern.Stop()
		res.RealRateResets = p.Resets()
		res.RealRateBusCycles = p.BusCompletions()
		res.RealRateWeatherRuns = p.WeatherLoops()
	}
	return res
}

// Print writes the comparison.
func (res PathfinderResult) Print(w io.Writer) {
	section(w, "Mars Pathfinder priority inversion (§2)")
	fmt.Fprintf(w, "%-22s %-16s %s\n", "", "fixed-priority", "real-rate")
	fmt.Fprintf(w, "%-22s %-16d %d\n", "watchdog resets", res.PriorityResets, res.RealRateResets)
	fmt.Fprintf(w, "%-22s %-16d %d\n", "bus cycles done", res.PriorityBusCycles, res.RealRateBusCycles)
	fmt.Fprintf(w, "%-22s %-16d %d\n", "weather sections", res.PriorityWeatherRuns, res.RealRateWeatherRuns)
	fmt.Fprintln(w, "paper: priority inversion causes repeated resets under fixed priorities;")
	fmt.Fprintln(w, "       progress-based allocation cannot starve the lock holder.")
}

// LivelockResult compares the §2 spin-wait livelock under fixed priorities
// and real-rate scheduling.
type LivelockResult struct {
	Duration sim.Duration

	PriorityInputs  int64 // inputs the X server managed to deliver
	PriorityServed  int64 // inputs the spinner consumed
	RealRateInputs  int64
	RealRateServed  int64
	RealRateSpinCPU float64 // spinner's CPU share under real-rate
}

// RunLivelock runs the spin-wait scenario twice. Under fixed priorities
// the spinner (SCHED_FIFO) starves the X server, so no input ever arrives:
// livelock. Under real-rate scheduling the spinner is just a miscellaneous
// job; the server keeps its share and input flows.
func RunLivelock(duration sim.Duration) LivelockResult {
	if duration == 0 {
		duration = 10 * sim.Second
	}
	res := LivelockResult{Duration: duration}
	const spinBurst, serverWork = 40_000, 2_000_000

	{
		eng := sim.NewEngine()
		lp := realrate.Linux()
		k := kernel.New(eng, kernel.DefaultConfig(), lp.Linux)
		s := workload.NewSpinWait(k, spinBurst, serverWork)
		lp.SetRealtime(s.Spinner, 50) // the fixed real-time priority of §2
		k.Start()
		eng.RunFor(duration)
		k.Stop()
		res.PriorityInputs = s.Delivered()
		res.PriorityServed = s.Consumed()
	}
	{
		r := newRig(nil, nil)
		s := workload.NewSpinWait(r.kern, spinBurst, serverWork)
		r.ctl.AddMiscellaneous(s.Spinner)
		r.ctl.AddMiscellaneous(s.Server)
		r.start()
		r.eng.RunFor(duration)
		r.kern.Stop()
		res.RealRateInputs = s.Delivered()
		res.RealRateServed = s.Consumed()
		res.RealRateSpinCPU = s.Spinner.CPUTime().Seconds() / duration.Seconds()
	}
	return res
}

// Print writes the comparison.
func (res LivelockResult) Print(w io.Writer) {
	section(w, "Spin-wait livelock (§2)")
	fmt.Fprintf(w, "%-22s %-16s %s\n", "", "fixed-priority", "real-rate")
	fmt.Fprintf(w, "%-22s %-16d %d\n", "inputs delivered", res.PriorityInputs, res.RealRateInputs)
	fmt.Fprintf(w, "%-22s %-16d %d\n", "inputs consumed", res.PriorityServed, res.RealRateServed)
	fmt.Fprintln(w, "paper: the system livelocks under a fixed real-time priority; under")
	fmt.Fprintln(w, "       real-rate scheduling the X server keeps its share and input flows.")
}
