// Package experiments contains one harness per figure in the paper's
// evaluation (Figures 5–8) plus the §2 motivation scenarios (Mars
// Pathfinder priority inversion and the spin-wait livelock). Each harness
// builds a fresh simulated machine, runs the paper's workload, and returns
// a result that prints the same rows/series the paper reports and can be
// dumped as CSV for plotting.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/progress"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// rig is one simulated machine with the full real-rate stack.
type rig struct {
	eng    *sim.Engine
	kern   *kernel.Kernel
	policy *rbs.Policy
	reg    *progress.Registry
	ctl    *core.Controller
}

// newRig builds a machine with the paper's default calibration, applying
// optional tweaks to the kernel and controller configs before construction.
func newRig(kmod func(*kernel.Config), cmod func(*core.Config)) *rig {
	kcfg := kernel.DefaultConfig()
	if kmod != nil {
		kmod(&kcfg)
	}
	ccfg := core.Config{}
	if cmod != nil {
		cmod(&ccfg)
	}
	eng := sim.NewEngine()
	policy := rbs.New()
	kern := kernel.New(eng, kcfg, policy)
	reg := progress.NewRegistry()
	ctl := core.New(kern, policy, reg, ccfg)
	return &rig{eng: eng, kern: kern, policy: policy, reg: reg, ctl: ctl}
}

func (r *rig) start() {
	r.ctl.Start()
	r.kern.Start()
}

func (r *rig) startNoController() {
	r.kern.Start()
}

// sleepyProgram returns a controlled-but-idle dummy thread program.
func sleepyProgram() kernel.Program {
	op := kernel.OpSleep{D: 50 * sim.Millisecond}
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return &op
	})
}

// section prints a titled separator for experiment output.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
