package experiments

import (
	"fmt"
	"io"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig8Point is one x/y point of Figure 8: dispatcher frequency versus CPU
// available to user processes.
type Fig8Point struct {
	FrequencyHz int64
	// Available is the fraction of CPU a greedy process obtained.
	Available float64
	// Normalized is Available divided by the 100 Hz (10 ms time-slice)
	// baseline, matching the paper's normalization.
	Normalized float64
}

// Fig8Result reproduces Figure 8 ("Dispatch Overhead vs. Frequency"): CPU
// available to a hog as the dispatch interval shrinks, with a knee around
// 4000 Hz where overhead reaches ≈2.7%.
type Fig8Result struct {
	Points []Fig8Point
	// KneeHz is the lowest swept frequency at which overhead (1 −
	// Normalized) exceeds 2.5% — the visual knee of the paper's graph,
	// where it reports ≈2.7% overhead.
	KneeHz int64
	// OverheadAt4kHz is 1 − Normalized at 4000 Hz.
	OverheadAt4kHz float64
}

// Fig8Config parameterizes the sweep.
type Fig8Config struct {
	// Frequencies to sweep (default: the paper's 100 Hz – 10 kHz range).
	Frequencies []int64
	// RunFor is the measurement window per point (default 5 s).
	RunFor sim.Duration
}

// RunFig8 measures "the amount of CPU available to applications by running
// a program that attempts to use as much CPU as it can" across dispatcher
// frequencies.
func RunFig8(cfg Fig8Config) Fig8Result {
	if len(cfg.Frequencies) == 0 {
		cfg.Frequencies = []int64{100, 200, 500, 1000, 2000, 4000, 6000, 8000, 10000}
	}
	if cfg.RunFor == 0 {
		cfg.RunFor = 5 * sim.Second
	}
	var res Fig8Result
	// Index 0 is the 100 Hz normalization baseline; the rest are the swept
	// frequencies. All points are independent machines, so one parallel
	// sweep covers baseline and sweep alike.
	avails := Sweep(len(cfg.Frequencies)+1, func(i int) float64 {
		if i == 0 {
			return measureAvailableCPU(100, cfg.RunFor)
		}
		return measureAvailableCPU(cfg.Frequencies[i-1], cfg.RunFor)
	})
	baseline := avails[0]
	for i, f := range cfg.Frequencies {
		res.Points = append(res.Points, Fig8Point{
			FrequencyHz: f,
			Available:   avails[i+1],
			Normalized:  avails[i+1] / baseline,
		})
	}
	for _, p := range res.Points {
		if res.KneeHz == 0 && 1-p.Normalized > 0.025 {
			res.KneeHz = p.FrequencyHz
		}
		if p.FrequencyHz == 4000 {
			res.OverheadAt4kHz = 1 - p.Normalized
		}
	}
	return res
}

// measureAvailableCPU runs a single greedy thread on a machine whose tick
// interval (= time slice = dispatch interval) is 1/freq, like the paper's
// kernel rebuilds with different time-slice lengths.
func measureAvailableCPU(freqHz int64, runFor sim.Duration) float64 {
	tick := sim.Hz(freqHz).Period()
	r := newRig(func(kc *kernel.Config) {
		kc.TickInterval = tick
	}, nil)
	// The time slice equals the dispatch interval, as in the paper's
	// kernel rebuilds: every tick ends the slice and runs schedule().
	r.policy.UnmanagedQuantum = tick
	// Long bursts (100 ms) so the measurement isolates tick-driven
	// dispatch: the hog's own syscall rate contributes nothing.
	hog := r.kern.Spawn("hog", &workload.Hog{Burst: 40_000_000})
	// The hog is the only user process; run it unmanaged so only dispatch
	// overhead (not reservations) limits it. No controller: the paper
	// measured the raw kernel.
	r.startNoController()
	r.eng.RunFor(runFor)
	r.kern.Stop()
	return hog.CPUTime().Seconds() / runFor.Seconds()
}

// Print writes the paper-style report.
func (res Fig8Result) Print(w io.Writer) {
	section(w, "Figure 8: Dispatch Overhead vs. Frequency")
	fmt.Fprintf(w, "%-12s %-12s %s\n", "freq (Hz)", "available", "normalized to 100Hz")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-12d %-12.4f %.4f\n", p.FrequencyHz, p.Available, p.Normalized)
	}
	if res.KneeHz > 0 {
		fmt.Fprintf(w, "knee (overhead > 2.5%%) at %d Hz; overhead at 4 kHz = %.2f%%\n",
			res.KneeHz, res.OverheadAt4kHz*100)
	} else {
		fmt.Fprintf(w, "no knee within sweep; overhead at 4 kHz = %.2f%%\n",
			res.OverheadAt4kHz*100)
	}
	fmt.Fprintln(w, "paper:      knee around 4000 Hz with ≈2.7% overhead")
}

// WriteCSV dumps the points for plotting.
func (res Fig8Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "frequency_hz,available,normalized"); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(w, "%d,%.6f,%.6f\n", p.FrequencyHz, p.Available, p.Normalized); err != nil {
			return err
		}
	}
	return nil
}
