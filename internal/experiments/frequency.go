package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
)

// FrequencyPoint is one controller-rate sample of the §4.3 improvement
// study: "we plan to lower the overhead of the controller in order to run
// it at a higher frequency. Calculating the [allocations] more frequently
// causes the allocation to change faster, and results in a more responsive
// system without affecting its stability."
type FrequencyPoint struct {
	Interval     sim.Duration
	ResponseTime sim.Duration
	Settled      bool
	FillStd      float64
	// ControllerShare is the controller's own CPU fraction at this rate.
	ControllerShare float64
}

// FrequencyResult sweeps the controller interval on the Figure 6 pipeline.
type FrequencyResult struct {
	Points []FrequencyPoint
}

// RunFrequencySweep measures responsiveness and controller overhead across
// control intervals.
func RunFrequencySweep(intervals []sim.Duration, duration sim.Duration) FrequencyResult {
	if len(intervals) == 0 {
		intervals = []sim.Duration{
			5 * sim.Millisecond,
			10 * sim.Millisecond,
			20 * sim.Millisecond,
			50 * sim.Millisecond,
			100 * sim.Millisecond,
		}
	}
	if duration == 0 {
		duration = 15 * sim.Second
	}
	var res FrequencyResult
	// Each interval needs two independent machines: the pulse pipeline and
	// the controller-share measurement. Flatten both into one sweep.
	n := len(intervals)
	type freqHalf struct {
		pipeline PipelineResult
		share    float64
	}
	halves := Sweep(2*n, func(i int) freqHalf {
		interval := intervals[i%n]
		if i < n {
			cfg := PipelineConfig{
				Duration:    duration,
				PulseWidths: []sim.Duration{2 * sim.Second},
				// Fine sampling so response-time differences between
				// control rates resolve.
				SampleEvery: 20 * sim.Millisecond,
			}
			cfg.Ctl = func(cc *core.Config) {
				cc.Interval = interval
				// The controller's own reservation must fit its period.
				def := core.DefaultConfig()
				cc.Reservation = def.Reservation
				cc.Reservation.Period = interval
			}
			return freqHalf{pipeline: RunPipeline(cfg)}
		}
		// Controller share per rate, measured separately on an otherwise
		// unloaded machine with 10 controlled dummies.
		return freqHalf{share: controllerShareAt(interval)}
	})
	for i, iv := range intervals {
		pr := halves[i].pipeline
		res.Points = append(res.Points, FrequencyPoint{
			Interval:        iv,
			ResponseTime:    pr.ResponseTime,
			Settled:         pr.Settled,
			FillStd:         pr.FillStd,
			ControllerShare: halves[n+i].share,
		})
	}
	return res
}

func controllerShareAt(interval sim.Duration) float64 {
	r := newRig(nil, func(cc *core.Config) {
		cc.Interval = interval
		def := core.DefaultConfig()
		cc.Reservation = def.Reservation
		cc.Reservation.Period = interval
	})
	for i := 0; i < 10; i++ {
		th := r.kern.Spawn("dummy", sleepyProgram())
		r.ctl.AddMiscellaneous(th)
	}
	r.start()
	r.eng.RunFor(10 * sim.Second)
	r.kern.Stop()
	return r.ctl.Thread().CPUTime().Seconds() / 10
}

// Print writes the sweep table.
func (res FrequencyResult) Print(w io.Writer) {
	section(w, "Controller frequency sweep (§4.3: higher frequency → faster response)")
	fmt.Fprintf(w, "%-12s %-12s %-10s %s\n", "interval", "response", "fill-std", "controller CPU")
	for _, p := range res.Points {
		resp := "did not settle"
		if p.Settled {
			resp = p.ResponseTime.String()
		}
		fmt.Fprintf(w, "%-12v %-12s %-10.3f %.4f\n", p.Interval, resp, p.FillStd, p.ControllerShare)
	}
}
