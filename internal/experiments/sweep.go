package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweep runner shards independent simulation points across CPUs. Every
// point builds its own sim.Engine/kernel/controller stack, so points share
// no mutable state and the fan-out is embarrassingly parallel; results come
// back in index order, which keeps every report and CSV byte-identical to a
// serial run.

// parallelOff disables the parallel sweep runner when set (see SetParallel).
var parallelOff atomic.Bool

// sweepWorkers overrides the worker count when positive; 0 means
// GOMAXPROCS. Tests use it to force real goroutine fan-out on small
// machines.
var sweepWorkers atomic.Int64

// SetParallel enables or disables the parallel sweep runner. It exists for
// A/B-ing the runner itself (rrexp -seq) and for determinism tests that
// compare the two paths; results are identical either way, parallel is just
// faster.
func SetParallel(on bool) { parallelOff.Store(!on) }

// ParallelEnabled reports whether sweeps fan out across CPUs.
func ParallelEnabled() bool { return !parallelOff.Load() }

// Sweep runs fn(i) for every i in [0, n) and returns the results in index
// order. fn must be self-contained: each call builds and runs its own
// simulated machine. Points are handed to GOMAXPROCS workers via an atomic
// counter, so scheduling order is nondeterministic but the result slice is
// not.
func Sweep[T any](n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := int(sweepWorkers.Load())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if !ParallelEnabled() || workers < 2 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// SweepTasks runs a heterogeneous set of independent simulation tasks
// (closures over their own machines) and waits for all of them — the shape
// PrintAblations and RunVariance need, where each point returns a different
// result type and writes it through its closure.
func SweepTasks(tasks ...func()) {
	Sweep(len(tasks), func(i int) struct{} {
		tasks[i]()
		return struct{}{}
	})
}
