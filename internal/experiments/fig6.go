package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PipelineConfig is the §4.2 pulse pipeline: a producer with a fixed
// reservation and a pulse-driven rate, feeding a controlled real-rate
// consumer through a bounded buffer.
type PipelineConfig struct {
	// QueueSize in bytes (default 1 MiB).
	QueueSize int64
	// ProducerProportion (ppt) and ProducerPeriod form the producer's
	// fixed reservation (default 100 ppt over 10 ms).
	ProducerProportion int
	ProducerPeriod     sim.Duration
	// CyclesPerBlock is the producer's loop length (default 400k = 1 ms).
	CyclesPerBlock sim.Cycles
	// BaseRate is the resting production rate in bytes/Kcycle (default
	// 50, doubling to 100 during pulses).
	BaseRate float64
	// PulseStart, PulseWidths, PulseGap shape the Figure 6 pulse train.
	PulseStart  sim.Time
	PulseWidths []sim.Duration
	PulseGap    sim.Duration
	// ConsumerBlock and ConsumerCyclesPerByte set the consumer's fixed
	// processing cost (defaults 4096 bytes and 40 cycles/byte: the
	// consumer needs 200 ppt at the base rate, 400 ppt at the doubled
	// rate).
	ConsumerBlock         int64
	ConsumerCyclesPerByte float64
	// Duration is the experiment length (default 40 s, as in the paper).
	Duration sim.Duration
	// SampleEvery sets the plotting resolution (default 100 ms).
	SampleEvery sim.Duration
	// WithHog adds the Figure 7 competing miscellaneous load.
	WithHog bool
	// Ctl, when set, tweaks the controller configuration (used by the
	// ablation studies).
	Ctl func(*core.Config)
	// OnActuation, when set, receives every reservation change the
	// controller pushes during the run — the observer seam threaded
	// through the experiment rig (cmd/rrtrace streams it as CSV).
	OnActuation func(now sim.Time, thread string, proportion int, period sim.Duration)
}

func (c *PipelineConfig) fillDefaults() {
	if c.QueueSize == 0 {
		c.QueueSize = 1 << 20
	}
	if c.ProducerProportion == 0 {
		c.ProducerProportion = 100
	}
	if c.ProducerPeriod == 0 {
		c.ProducerPeriod = 10 * sim.Millisecond
	}
	if c.CyclesPerBlock == 0 {
		c.CyclesPerBlock = 400_000
	}
	if c.BaseRate == 0 {
		c.BaseRate = 50
	}
	if c.PulseStart == 0 {
		c.PulseStart = sim.Time(4 * sim.Second)
	}
	if len(c.PulseWidths) == 0 {
		c.PulseWidths = []sim.Duration{1 * sim.Second, 2 * sim.Second, 3 * sim.Second}
	}
	if c.PulseGap == 0 {
		c.PulseGap = 2 * sim.Second
	}
	if c.ConsumerBlock == 0 {
		c.ConsumerBlock = 4096
	}
	if c.ConsumerCyclesPerByte == 0 {
		c.ConsumerCyclesPerByte = 40
	}
	if c.Duration == 0 {
		c.Duration = 40 * sim.Second
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 100 * sim.Millisecond
	}
}

// PipelineResult holds the series Figures 6 and 7 plot, plus summary
// numbers for EXPERIMENTS.md.
type PipelineResult struct {
	// ProducerRate and ConsumerRate are progress rates in bytes/sec.
	ProducerRate, ConsumerRate *metrics.Series
	// FillLevel is the queue fill in [0,1].
	FillLevel *metrics.Series
	// ConsumerAlloc, ProducerAlloc, HogAlloc are allocations in ppt
	// (HogAlloc nil without the hog).
	ConsumerAlloc, ProducerAlloc, HogAlloc *metrics.Series
	// DriveRate is the commanded production rate in bytes/Kcycle
	// (Figure 7's third panel).
	DriveRate *metrics.Series

	// ResponseTime is how long the consumer allocation took to reach 90%
	// of its doubled level after the first rising pulse (paper: ≈1/3 s).
	ResponseTime sim.Duration
	Settled      bool
	// MeanFill and FillStd summarize the fill level over the steady tail.
	MeanFill, FillStd float64
	// TrackingError is the mean |consumerRate −
	// producerRate|/producerRate over the run, after the initial ramp.
	TrackingError float64
	// HogShare is the hog's total CPU share (Figure 7 only).
	HogShare float64
	// QualityExceptions counts exceptions raised during the run.
	QualityExceptions int
}

// RunPipeline executes the Figure 6 (WithHog=false) or Figure 7
// (WithHog=true) experiment.
func RunPipeline(cfg PipelineConfig) PipelineResult {
	cfg.fillDefaults()
	r := newRig(nil, cfg.Ctl)
	if cfg.OnActuation != nil {
		r.ctl.OnActuate(func(j *core.Job, prop int, period sim.Duration, now sim.Time) {
			cfg.OnActuation(now, j.Thread().Name(), prop, period)
		})
	}

	q := r.kern.NewQueue("pipe", cfg.QueueSize)
	rate := workload.PulseTrain(cfg.BaseRate, cfg.PulseStart, cfg.PulseWidths, cfg.PulseGap)
	prod := &workload.Producer{Queue: q, CyclesPerBlock: cfg.CyclesPerBlock, Rate: rate}
	cons := &workload.Consumer{Queue: q, BlockBytes: cfg.ConsumerBlock, CyclesPerByte: cfg.ConsumerCyclesPerByte}

	pt := r.kern.Spawn("producer", prod)
	ct := r.kern.Spawn("consumer", cons)
	pj, err := r.ctl.AddRealTime(pt, cfg.ProducerProportion, cfg.ProducerPeriod)
	if err != nil {
		panic(err)
	}
	r.reg.RegisterQueue(pt, q, progress.Producer)
	r.reg.RegisterQueue(ct, q, progress.Consumer)
	cj := r.ctl.AddRealRate(ct, 10*sim.Millisecond)

	var hogThread *kernel.Thread
	var hogJob *core.Job
	if cfg.WithHog {
		hogThread = r.kern.Spawn("hog", &workload.Hog{Burst: 400_000})
		hogJob = r.ctl.AddMiscellaneous(hogThread)
	}

	res := PipelineResult{
		ProducerRate:  metrics.NewSeries("producer_bytes_per_s"),
		ConsumerRate:  metrics.NewSeries("consumer_bytes_per_s"),
		FillLevel:     metrics.NewSeries("fill_level"),
		ConsumerAlloc: metrics.NewSeries("consumer_alloc_ppt"),
		ProducerAlloc: metrics.NewSeries("producer_alloc_ppt"),
		DriveRate:     metrics.NewSeries("drive_bytes_per_kcycle"),
	}
	if cfg.WithHog {
		res.HogAlloc = metrics.NewSeries("hog_alloc_ppt")
	}
	prodRate := metrics.NewRateSampler("producer_bytes_per_s")
	consRate := metrics.NewRateSampler("consumer_bytes_per_s")
	prodRate.Series = res.ProducerRate
	consRate.Series = res.ConsumerRate
	// Prime at t=0 so the rate series align sample-for-sample with the
	// other columns.
	prodRate.Observe(0, 0)
	consRate.Observe(0, 0)

	horizon := sim.Time(cfg.Duration)
	metrics.Sample(r.eng, cfg.SampleEvery, horizon, func(now sim.Time) {
		prodRate.Observe(now, float64(q.Produced()))
		consRate.Observe(now, float64(q.Consumed()))
		res.FillLevel.Add(now, q.FillLevel())
		res.ConsumerAlloc.Add(now, float64(cj.Allocated()))
		res.ProducerAlloc.Add(now, float64(pj.Allocated()))
		res.DriveRate.Add(now, rate(now))
		if res.HogAlloc != nil {
			res.HogAlloc.Add(now, float64(hogJob.Allocated()))
		}
	})

	r.start()
	r.eng.RunFor(cfg.Duration)
	r.kern.Stop()

	// Response time to the first rising pulse: allocation from its steady
	// base level to 90% of double.
	base := res.ConsumerAlloc.TimeWeightedMean(cfg.PulseStart.Add(-sim.Duration(sim.Second)), cfg.PulseStart)
	resp := metrics.MeasureStep(res.ConsumerAlloc, cfg.PulseStart, base, 2*base,
		cfg.PulseStart.Add(cfg.PulseWidths[0]))
	res.ResponseTime = resp.RiseTime
	res.Settled = resp.Settled

	tail := res.FillLevel.Slice(sim.Time(2*sim.Second), horizon)
	res.MeanFill = tail.Mean()
	res.FillStd = metrics.StdDev(tail.Values())
	res.TrackingError = trackingError(res.ProducerRate, res.ConsumerRate, sim.Time(2*sim.Second))
	if hogThread != nil {
		res.HogShare = hogThread.CPUTime().Seconds() / cfg.Duration.Seconds()
	}
	res.QualityExceptions = len(r.ctl.Exceptions())
	return res
}

// trackingError averages |cons−prod|/prod over paired samples after warmup.
func trackingError(prod, cons *metrics.Series, after sim.Time) float64 {
	var sum float64
	var n int
	for i := 0; i < prod.Len() && i < cons.Len(); i++ {
		p := prod.At(i)
		c := cons.At(i)
		if p.T < after || p.V <= 0 {
			continue
		}
		d := (c.V - p.V) / p.V
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Print writes the paper-style report for Figure 6.
func (res PipelineResult) Print(w io.Writer, fig string) {
	section(w, fig)
	fmt.Fprintf(w, "consumer allocation response to rate doubling: %v (settled=%v)\n",
		res.ResponseTime, res.Settled)
	fmt.Fprintf(w, "mean fill level %.3f (std %.3f); tracking error %.1f%%\n",
		res.MeanFill, res.FillStd, res.TrackingError*100)
	if res.HogAlloc != nil {
		fmt.Fprintf(w, "hog CPU share %.3f; quality exceptions %d\n", res.HogShare, res.QualityExceptions)
	}
	fmt.Fprintf(w, "paper:      response ≈1/3 s; fill recovers toward 1/2 between pulses\n")
	fmt.Fprintf(w, "series: %d samples over %d columns (use -csv to dump)\n",
		res.FillLevel.Len(), 6)
}

// WriteCSV dumps all series as one aligned table.
func (res PipelineResult) WriteCSV(w io.Writer) error {
	cols := []*metrics.Series{
		res.DriveRate, res.ProducerRate, res.ConsumerRate,
		res.FillLevel, res.ConsumerAlloc, res.ProducerAlloc,
	}
	if res.HogAlloc != nil {
		cols = append(cols, res.HogAlloc)
	}
	return metrics.WriteTableCSV(w, cols...)
}
