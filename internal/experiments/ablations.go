package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/pid"
	"repro/internal/progress"
	"repro/internal/rbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// GainAblationResult compares pressure-filter configurations (P, PI, PID)
// on the Figure 6 pulse pipeline — the design choice §3.3 justifies by
// citing PID control's "error reduction together with acceptable stability
// and damping".
type GainAblationResult struct {
	Name          string
	ResponseTime  sim.Duration
	Settled       bool
	FillStd       float64
	TrackingError float64
}

// RunGainAblation runs the pulse pipeline under the given PID gains.
func RunGainAblation(name string, gains pid.Config, duration sim.Duration) GainAblationResult {
	cfg := PipelineConfig{Duration: duration}
	cfg.Ctl = func(cc *core.Config) {
		def := core.DefaultConfig()
		g := gains
		// Preserve the conditioning (clamps, filters) of the default
		// configuration; the ablation varies only the gain structure.
		g.IntegralLo = def.PID.IntegralLo
		g.IntegralHi = def.PID.IntegralHi
		g.OutLo = def.PID.OutLo
		g.OutHi = def.PID.OutHi
		g.InputTau = def.PID.InputTau
		g.DerivativeTau = def.PID.DerivativeTau
		cc.PID = g
	}
	res := RunPipeline(cfg)
	return GainAblationResult{
		Name:          name,
		ResponseTime:  res.ResponseTime,
		Settled:       res.Settled,
		FillStd:       res.FillStd,
		TrackingError: res.TrackingError,
	}
}

// ReclaimAblationResult measures Figure 4's P−C reclamation path on a
// bottlenecked consumer: its input queue is pinned full (pressure
// saturated) but a slow downstream device, not the CPU, limits it. With
// reclamation the controller takes the unused allocation back and a
// competing job gets it; without, the allocation stays pinned high.
type ReclaimAblationResult struct {
	ReclaimOn bool
	// ConsumerAlloc is the consumer's mean allocation in the steady tail.
	ConsumerAlloc float64
	// ConsumerUse is the consumer's actual CPU share (ppt) in the tail.
	ConsumerUse float64
	// HogShare is the competing hog's CPU share over the tail.
	HogShare float64
}

// RunReclaimAblation runs the bottleneck scenario with reclamation enabled
// or effectively disabled.
func RunReclaimAblation(reclaimOn bool, duration sim.Duration) ReclaimAblationResult {
	if duration == 0 {
		duration = 20 * sim.Second
	}
	r := newRig(nil, func(cc *core.Config) {
		if !reclaimOn {
			// A reclaim threshold of (effectively) zero usage never
			// triggers: the P−C path is off.
			cc.ReclaimFraction = 1e-9
		}
	})
	q := r.kern.NewQueue("pipe", 1<<20)
	prod := &workload.Producer{Queue: q, CyclesPerBlock: 400_000, Rate: workload.ConstantRate(50)}
	pt := r.kern.Spawn("producer", prod)
	if _, err := r.ctl.AddRealTime(pt, 100, 10*sim.Millisecond); err != nil {
		panic(err)
	}
	// Bottlenecked consumer: tiny compute per block, then a 5 ms wait on a
	// slow device. The queue pins full; more CPU cannot help.
	phase := 0
	consumeOp := kernel.OpConsume{Queue: q, Bytes: 4096}
	computeOp := kernel.OpCompute{Cycles: 40_000}
	sleepOp := kernel.OpSleep{D: 5 * sim.Millisecond}
	ct := r.kern.Spawn("consumer", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		switch phase % 3 {
		case 1:
			return &consumeOp
		case 2:
			return &computeOp
		default:
			return &sleepOp
		}
	}))
	r.reg.RegisterQueue(pt, q, progress.Producer)
	r.reg.RegisterQueue(ct, q, progress.Consumer)
	cj := r.ctl.AddRealRate(ct, 10*sim.Millisecond)

	hog := r.kern.Spawn("hog", &workload.Hog{Burst: 400_000})
	r.ctl.AddMiscellaneous(hog)

	var allocSum float64
	var samples int
	tailFrom := sim.Time(duration / 2)
	var hogCPUAtTail, consCPUAtTail sim.Duration
	r.ctl.OnStep(func(now sim.Time) {
		if now >= tailFrom {
			if samples == 0 {
				hogCPUAtTail = hog.CPUTime()
				consCPUAtTail = ct.CPUTime()
			}
			allocSum += float64(cj.Allocated())
			samples++
		}
	})
	r.start()
	r.eng.RunFor(duration)
	r.kern.Stop()

	tail := (duration - sim.Duration(tailFrom)).Seconds()
	res := ReclaimAblationResult{ReclaimOn: reclaimOn}
	if samples > 0 {
		res.ConsumerAlloc = allocSum / float64(samples)
	}
	res.HogShare = (hog.CPUTime() - hogCPUAtTail).Seconds() / tail
	res.ConsumerUse = (ct.CPUTime() - consCPUAtTail).Seconds() / tail * 1000
	return res
}

// QuantizationAblationResult measures the §4.3 quantization discussion: a
// job whose true need is far below one dispatch tick per period is
// over-delivered by the tick-granularity dispatcher; precise accounting
// (or a longer period) removes the overrun.
type QuantizationAblationResult struct {
	Precise bool
	// NeedPPT is the thread's true requirement.
	NeedPPT float64
	// GotShare is the share actually delivered (ppt).
	GotShare float64
	// Overdelivery is GotShare/NeedPPT.
	Overdelivery float64
}

// RunQuantizationAblation gives a tiny real-time reservation (8 ppt over
// 10 ms: a 0.08 ms budget, well under the 1 ms tick) to a greedy thread and
// measures what the dispatcher actually delivers.
func RunQuantizationAblation(precise bool, duration sim.Duration) QuantizationAblationResult {
	if duration == 0 {
		duration = 10 * sim.Second
	}
	eng := sim.NewEngine()
	policy := rbs.New()
	policy.PreciseAccounting = precise
	kern := kernel.New(eng, kernel.DefaultConfig(), policy)
	th := kern.Spawn("tiny", &workload.Hog{Burst: 400_000})
	if err := policy.SetReservation(th, rbs.Reservation{Proportion: 8, Period: 10 * sim.Millisecond}); err != nil {
		panic(err)
	}
	// A competing reserved thread so the tiny job cannot soak idle time.
	other := kern.Spawn("bulk", &workload.Hog{Burst: 400_000})
	if err := policy.SetReservation(other, rbs.Reservation{Proportion: 800, Period: 10 * sim.Millisecond}); err != nil {
		panic(err)
	}
	kern.Start()
	eng.RunFor(duration)
	kern.Stop()

	got := th.CPUTime().Seconds() / duration.Seconds() * 1000
	return QuantizationAblationResult{
		Precise:      precise,
		NeedPPT:      8,
		GotShare:     got,
		Overdelivery: got / 8,
	}
}

// DisciplineAblationResult compares the RMS goodness dispatcher with EDF on
// the Liu-Layland counterexample: two CPU-bound reservations with
// non-harmonic periods at 95% utilization (500/10ms + 450/15ms).
type DisciplineAblationResult struct {
	Discipline      string
	MissedDeadlines uint64
}

// RunDisciplineAblation runs the 95%-utilization non-harmonic task set
// under the given dispatch discipline with precise accounting.
func RunDisciplineAblation(d rbs.Discipline, duration sim.Duration) DisciplineAblationResult {
	if duration == 0 {
		duration = 10 * sim.Second
	}
	eng := sim.NewEngine()
	p := rbs.New()
	p.Discipline = d
	p.PreciseAccounting = true
	kern := kernel.New(eng, kernel.DefaultConfig(), p)
	t1 := kern.Spawn("t1", &workload.Hog{Burst: 10_000_000})
	t2 := kern.Spawn("t2", &workload.Hog{Burst: 10_000_000})
	if err := p.SetReservation(t1, rbs.Reservation{Proportion: 500, Period: 10 * sim.Millisecond}); err != nil {
		panic(err)
	}
	if err := p.SetReservation(t2, rbs.Reservation{Proportion: 450, Period: 15 * sim.Millisecond}); err != nil {
		panic(err)
	}
	kern.Start()
	eng.RunFor(duration)
	kern.Stop()
	name := "RMS"
	if d == rbs.EDF {
		name = "EDF"
	}
	return DisciplineAblationResult{Discipline: name, MissedDeadlines: p.MissedDeadlines()}
}

// PrintAblations runs and prints the full ablation set. The nine trials are
// independent machines, so they run as one parallel sweep; printing happens
// afterwards, in the fixed report order.
func PrintAblations(w io.Writer, duration sim.Duration) {
	gains := []struct {
		name string
		cfg  pid.Config
	}{
		{"P-only", pid.Config{Kp: 1.0}},
		{"PI", pid.Config{Kp: 1.0, Ki: 4.0}},
		{"PID", pid.Config{Kp: 1.0, Ki: 4.0, Kd: 0.05}},
	}
	var gainRes [3]GainAblationResult
	var reclaimRes [2]ReclaimAblationResult
	var discRes [2]DisciplineAblationResult
	var quantRes [2]QuantizationAblationResult
	SweepTasks(
		func() { gainRes[0] = RunGainAblation(gains[0].name, gains[0].cfg, duration) },
		func() { gainRes[1] = RunGainAblation(gains[1].name, gains[1].cfg, duration) },
		func() { gainRes[2] = RunGainAblation(gains[2].name, gains[2].cfg, duration) },
		func() { reclaimRes[0] = RunReclaimAblation(true, duration/2) },
		func() { reclaimRes[1] = RunReclaimAblation(false, duration/2) },
		func() { discRes[0] = RunDisciplineAblation(rbs.RMS, duration/4) },
		func() { discRes[1] = RunDisciplineAblation(rbs.EDF, duration/4) },
		func() { quantRes[0] = RunQuantizationAblation(false, duration/2) },
		func() { quantRes[1] = RunQuantizationAblation(true, duration/2) },
	)

	section(w, "Ablation: pressure filter (P vs PI vs PID)")
	fmt.Fprintf(w, "%-8s %-12s %-10s %s\n", "filter", "response", "fill-std", "tracking-err")
	for _, res := range gainRes {
		fmt.Fprintf(w, "%-8s %-12v %-10.3f %.1f%%\n", res.Name, res.ResponseTime, res.FillStd, res.TrackingError*100)
	}

	section(w, "Ablation: Figure 4 reclamation (P−C) on a bottlenecked consumer")
	fmt.Fprintf(w, "%-10s %-16s %-16s %s\n", "reclaim", "consumer-alloc", "consumer-use", "hog-share")
	for _, res := range reclaimRes {
		fmt.Fprintf(w, "%-10v %-16.0f %-16.1f %.3f\n", res.ReclaimOn, res.ConsumerAlloc, res.ConsumerUse, res.HogShare)
	}

	section(w, "Ablation: dispatch discipline (RMS goodness vs EDF, 95% non-harmonic set)")
	fmt.Fprintf(w, "%-12s %s\n", "discipline", "missed deadlines")
	for _, res := range discRes {
		fmt.Fprintf(w, "%-12s %d\n", res.Discipline, res.MissedDeadlines)
	}

	section(w, "Ablation: dispatch quantization (§4.3)")
	fmt.Fprintf(w, "%-10s %-10s %-12s %s\n", "precise", "need", "delivered", "overdelivery")
	for _, res := range quantRes {
		fmt.Fprintf(w, "%-10v %-10.0f %-12.1f %.2fx\n", res.Precise, res.NeedPPT, res.GotShare, res.Overdelivery)
	}
}
