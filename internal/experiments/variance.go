package experiments

import (
	"fmt"
	"io"
	"time"

	realrate "repro"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/workload"
)

// VarianceRow is one scheduler's result in the allocation-variance
// comparison.
type VarianceRow struct {
	Scheduler string
	// MeanShare is the target thread's mean CPU share per window.
	MeanShare float64
	// StdShare is the standard deviation of the per-window share — the
	// "variance in the amount of cycles allocated" the abstract claims
	// proportion/period scheduling reduces.
	StdShare float64
	// UnderFrac is the fraction of windows in which the thread received
	// less than 80% of its requirement — windows in which a real-rate
	// application would have missed its rate.
	UnderFrac float64
}

// VarianceResult compares the cycle-delivery variance of the feedback
// reservation scheduler against the classical alternatives for a thread
// with a steady real-rate requirement.
type VarianceResult struct {
	// NeedShare is the thread's true requirement as a fraction of the CPU.
	NeedShare float64
	Window    sim.Duration
	Rows      []VarianceRow
}

// RunVariance measures a steady 40%-of-CPU consumer fed by a paced
// producer, competing with two CPU hogs, under three schedulers:
//
//   - the real-rate stack (reservation assigned by the feedback controller),
//   - Linux 2.0 goodness (the consumer is just another SCHED_OTHER thread —
//     fair share with two hogs is ≈33%, so priorities simply cannot express
//     the 40% requirement: "lack of fine-grain allocation"),
//   - lottery scheduling with a-priori correct tickets (the lottery can
//     express the proportion, but delivers it with high short-window
//     variance; and someone had to compute the tickets — the controller
//     finds the proportion by itself).
//
// The per-window CPU share of the consumer is the figure of merit.
func RunVariance(duration sim.Duration) VarianceResult {
	if duration == 0 {
		duration = 30 * sim.Second
	}
	const window = 100 * sim.Millisecond
	res := VarianceResult{NeedShare: 0.4, Window: window}
	// The four schedulers run on four independent machines, in parallel.
	res.Rows = Sweep(4, func(i int) VarianceRow {
		switch i {
		case 0:
			return varianceRealRate(duration, window)
		case 1:
			return varianceLinux(duration, window)
		case 2:
			return varianceLottery(duration, window)
		default:
			return varianceStride(duration, window)
		}
	})
	return res
}

// varianceWorkload spawns the common workload on a machine: reserved-rate
// producer (by construction under baselines: a self-pacing producer),
// consumer, two hogs. Returns the consumer thread and its queue.
func varianceWorkload(k *kernel.Kernel) (*kernel.Thread, *kernel.Thread, *kernel.Queue) {
	q := k.NewQueue("pipe", 1<<20)
	// Self-pacing producer: emits 20 kB every 10 ms on an absolute
	// schedule (tick-quantized wakeups cannot drift it), so the data rate
	// is exactly 2 MB/s under every scheduler. The consumer needs 80
	// cycles/byte × 2 MB/s = 40% of the CPU.
	phase := 0
	var nextAt sim.Time
	var sleepOp kernel.OpSleepUntil
	produceOp := kernel.OpProduce{Queue: q, Bytes: 20_000}
	pt := k.Spawn("producer", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase%2 == 1 {
			nextAt = nextAt.Add(10 * sim.Millisecond)
			sleepOp.At = nextAt
			return &sleepOp
		}
		return &produceOp
	}))
	cons := &workload.Consumer{Queue: q, BlockBytes: 4096, CyclesPerByte: 80}
	ct := k.Spawn("consumer", cons)
	k.Spawn("hog1", &workload.Hog{Burst: 400_000})
	k.Spawn("hog2", &workload.Hog{Burst: 400_000})
	return pt, ct, q
}

// shareSeries samples ct's CPU share per window until the horizon.
func shareSeries(eng *sim.Engine, ct *kernel.Thread, window sim.Duration, horizon sim.Time) *metrics.Series {
	s := metrics.NewSeries("share")
	var last sim.Duration
	metrics.Sample(eng, window, horizon, func(now sim.Time) {
		cur := ct.CPUTime()
		s.Add(now, (cur-last).Seconds()/window.Seconds())
		last = cur
	})
	return s
}

func varianceRow(name string, s *metrics.Series, need float64) VarianceRow {
	// Skip the first second of warm-up.
	tail := s.Slice(sim.Time(sim.Second), sim.Time(int64(^uint64(0)>>1)))
	vals := tail.Values()
	under := 0
	for _, v := range vals {
		if v < 0.8*need {
			under++
		}
	}
	row := VarianceRow{Scheduler: name, MeanShare: metrics.Mean(vals), StdShare: metrics.StdDev(vals)}
	if len(vals) > 0 {
		row.UnderFrac = float64(under) / float64(len(vals))
	}
	return row
}

func varianceRealRate(duration, window sim.Duration) VarianceRow {
	r := newRig(nil, nil)
	pt, ct, q := varianceWorkload(r.kern)
	if _, err := r.ctl.AddRealTime(pt, 20, 5*sim.Millisecond); err != nil {
		panic(err)
	}
	r.reg.RegisterQueue(pt, q, progress.Producer)
	r.reg.RegisterQueue(ct, q, progress.Consumer)
	r.ctl.AddRealRate(ct, 10*sim.Millisecond)
	for _, t := range r.kern.Threads() {
		if t.Name() == "hog1" || t.Name() == "hog2" {
			r.ctl.AddMiscellaneous(t)
		}
	}
	s := shareSeries(r.eng, ct, window, sim.Time(duration))
	r.start()
	r.eng.RunFor(duration)
	r.kern.Stop()
	return varianceRow("real-rate (this paper)", s, 0.4)
}

func varianceLinux(duration, window sim.Duration) VarianceRow {
	eng := sim.NewEngine()
	lp := realrate.Linux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp.Linux)
	_, ct, _ := varianceWorkload(k)
	s := shareSeries(eng, ct, window, sim.Time(duration))
	k.Start()
	eng.RunFor(duration)
	k.Stop()
	return varianceRow("linux-goodness", s, 0.4)
}

func varianceLottery(duration, window sim.Duration) VarianceRow {
	eng := sim.NewEngine()
	lot := realrate.Lottery(10*time.Millisecond, 12345)
	k := kernel.New(eng, kernel.DefaultConfig(), lot.Lottery)
	pt, ct, _ := varianceWorkload(k)
	// A-priori correct tickets: consumer 40% of the compute tickets, hogs
	// the rest. The producer is a device driver: overwhelming tickets so a
	// wakeup translates to a prompt win (lottery has no wake preemption).
	lot.SetTickets(ct, 400)
	lot.SetTickets(pt, 20_000)
	for _, t := range k.Threads() {
		if t.Name() == "hog1" || t.Name() == "hog2" {
			lot.SetTickets(t, 300)
		}
	}
	s := shareSeries(eng, ct, window, sim.Time(duration))
	k.Start()
	eng.RunFor(duration)
	k.Stop()
	return varianceRow("lottery (a-priori tickets)", s, 0.4)
}

func varianceStride(duration, window sim.Duration) VarianceRow {
	eng := sim.NewEngine()
	str := realrate.Stride(10 * time.Millisecond)
	k := kernel.New(eng, kernel.DefaultConfig(), str.Stride)
	pt, ct, _ := varianceWorkload(k)
	// Same a-priori tickets as the lottery: stride is its deterministic
	// twin, so this isolates randomness as the variance source.
	str.SetTickets(ct, 400)
	str.SetTickets(pt, 20_000)
	for _, t := range k.Threads() {
		if t.Name() == "hog1" || t.Name() == "hog2" {
			str.SetTickets(t, 300)
		}
	}
	s := shareSeries(eng, ct, window, sim.Time(duration))
	k.Start()
	eng.RunFor(duration)
	k.Stop()
	return varianceRow("stride (a-priori tickets)", s, 0.4)
}

// Print writes the comparison table.
func (res VarianceResult) Print(w io.Writer) {
	section(w, "Allocation variance (abstract's claim: lower variance than priority schemes)")
	fmt.Fprintf(w, "consumer needs %.0f%% of the CPU; per-%v window CPU share:\n",
		res.NeedShare*100, res.Window)
	fmt.Fprintf(w, "%-28s %-12s %-12s %s\n", "scheduler", "mean", "std", "windows <80% of need")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-28s %-12.3f %-12.3f %.1f%%\n", r.Scheduler, r.MeanShare, r.StdShare, r.UnderFrac*100)
	}
}
