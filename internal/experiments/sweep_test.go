package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// withWorkers forces a real goroutine fan-out (even on a single-CPU
// machine) for the duration of fn, restoring the default afterwards.
func withWorkers(n int64, fn func()) {
	sweepWorkers.Store(n)
	defer sweepWorkers.Store(0)
	fn()
}

func TestSweepPreservesIndexOrder(t *testing.T) {
	withWorkers(8, func() {
		got := Sweep(100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("Sweep result[%d] = %d, want %d", i, v, i*i)
			}
		}
	})
}

func TestSweepRunsEveryTaskExactlyOnce(t *testing.T) {
	withWorkers(8, func() {
		var calls [257]atomic.Int64
		Sweep(257, func(i int) struct{} {
			calls[i].Add(1)
			return struct{}{}
		})
		for i := range calls {
			if n := calls[i].Load(); n != 1 {
				t.Fatalf("point %d ran %d times, want 1", i, n)
			}
		}
	})
}

func TestSweepSerialWhenDisabled(t *testing.T) {
	SetParallel(false)
	defer SetParallel(true)
	if ParallelEnabled() {
		t.Fatal("SetParallel(false) did not take")
	}
	order := []int{}
	Sweep(10, func(i int) struct{} {
		order = append(order, i) // safe: serial path, single goroutine
		return struct{}{}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial sweep visited %v, want ascending order", order)
		}
	}
}

// TestFig5ParallelMatchesSerial is the sweep runner's determinism
// contract: every per-point result must be identical whether the points ran
// serially or sharded across goroutines.
func TestFig5ParallelMatchesSerial(t *testing.T) {
	cfg := Fig5Config{MaxProcesses: 20, Step: 10, RunFor: 2 * sim.Second}
	SetParallel(false)
	serial := RunFig5(cfg)
	SetParallel(true)
	var parallel Fig5Result
	withWorkers(4, func() { parallel = RunFig5(cfg) })
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Fig5 diverged from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

func TestFig8ParallelMatchesSerial(t *testing.T) {
	cfg := Fig8Config{Frequencies: []int64{100, 1000, 4000}, RunFor: sim.Second}
	SetParallel(false)
	serial := RunFig8(cfg)
	SetParallel(true)
	var parallel Fig8Result
	withWorkers(4, func() { parallel = RunFig8(cfg) })
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Fig8 diverged from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// TestFig5Deterministic re-runs the same experiment twice on fresh engines
// and requires bit-identical results — the fixed-seed reproducibility the
// event-core rewrite must preserve.
func TestFig5Deterministic(t *testing.T) {
	cfg := Fig5Config{MaxProcesses: 20, Step: 10, RunFor: 2 * sim.Second}
	a := RunFig5(cfg)
	b := RunFig5(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Fig5 not deterministic:\nfirst  %+v\nsecond %+v", a, b)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	cfg := PipelineConfig{Duration: 5 * sim.Second, PulseWidths: []sim.Duration{sim.Second}}
	a := RunPipeline(cfg)
	b := RunPipeline(cfg)
	if a.ResponseTime != b.ResponseTime || a.MeanFill != b.MeanFill ||
		a.TrackingError != b.TrackingError || a.FillStd != b.FillStd {
		t.Fatalf("pipeline not deterministic:\nfirst  %+v\nsecond %+v", a, b)
	}
}

func TestVarianceParallelMatchesSerial(t *testing.T) {
	SetParallel(false)
	serial := RunVariance(3 * sim.Second)
	SetParallel(true)
	var parallel VarianceResult
	withWorkers(4, func() { parallel = RunVariance(3 * sim.Second) })
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel variance diverged from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}
