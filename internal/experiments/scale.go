package experiments

import (
	"fmt"
	"io"

	"repro/internal/kernel"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// StormConfig sizes the ContextSwitchStorm scaling scenario: a machine
// saturated with registered CPU-bound threads, all dispatch-point churn.
// It is the scheduler-core stress test behind the large-N scaling claims:
// every thread burns its budget, naps to its next period, and wakes in a
// thundering herd at period boundaries, so the dispatcher's runnable set
// stays in the hundreds-to-thousands while dispatches fire every tick.
type StormConfig struct {
	// Threads is the number of registered CPU-bound threads.
	Threads int
	// Unmanaged adds round-robin threads below the registered set.
	Unmanaged int
	// RunFor is the simulated window (default 1 s); with Work set it is
	// the cap on the completion run (default 120 s).
	RunFor sim.Duration
	// Discipline selects the dispatch order under test (RMS default).
	Discipline rbs.Discipline
	// CPUs sizes the machine (0 or 1: single-CPU).
	CPUs int
	// Work, when positive, turns the storm into a run-to-completion
	// benchmark: every thread exits after burning Work cycles and the
	// machine runs until all threads are done (or RunFor caps it).
	// SimElapsed then measures how fast the machine retires a fixed
	// backlog — the number that must shrink as CPUs grow.
	Work sim.Cycles
}

// StormResult reports what the machine did during the storm.
type StormResult struct {
	Threads    int
	CPUs       int
	Dispatches uint64
	Switches   uint64
	Wakeups    uint64
	Migrations uint64
	ThreadTime sim.Duration
	Overhead   sim.Duration
	Idle       sim.Duration
	Missed     uint64
	// SimElapsed is the simulated time the run covered (time-to-drain in
	// Work mode).
	SimElapsed sim.Duration
	// Completed counts threads that finished their Work (Work mode only).
	Completed int
}

// RunContextSwitchStorm spawns cfg.Threads registered hogs with mixed
// periods and proportions summing to ≈90% of the CPU, plus optional
// unmanaged hogs, and runs the machine for the window. Beyond a few
// hundred threads the 1 ms minimum allocation oversubscribes the machine
// by construction (exactly the paper's quantization limit, §4.3), which
// maximizes budget-exhaustion naps and period-boundary wakeups — the
// worst case for the dispatcher's data structures.
func RunContextSwitchStorm(cfg StormConfig) StormResult {
	n := cfg.Threads
	if n <= 0 {
		n = 100
	}
	if cfg.RunFor == 0 {
		cfg.RunFor = sim.Second
		if cfg.Work > 0 {
			cfg.RunFor = 120 * sim.Second
		}
	}
	ncpu := cfg.CPUs
	if ncpu < 1 {
		ncpu = 1
	}
	eng := sim.NewEngine()
	p := rbs.New()
	p.Discipline = cfg.Discipline
	kcfg := kernel.DefaultConfig()
	kcfg.CPUs = ncpu
	k := kernel.New(eng, kcfg, p)
	periods := [...]sim.Duration{
		10 * sim.Millisecond,
		20 * sim.Millisecond,
		30 * sim.Millisecond,
		50 * sim.Millisecond,
		100 * sim.Millisecond,
	}
	// Registered proportions fill ~90% of the whole machine (CPUs × 1000
	// ppt), clamped to whole ppt per thread.
	prop := 900 * ncpu / n
	if prop < 1 {
		prop = 1
	}
	if prop > 1000 {
		prop = 1000
	}
	exited := 0
	var drainedAt sim.Time
	k.SetExitHook(func(t *kernel.Thread, now sim.Time) {
		exited++
		if exited == n {
			drainedAt = now
		}
	})
	// The infinite hog is stateless, so every Work=0 thread shares one
	// program instance: a 10k-thread storm spawn costs two allocations for
	// the program, not two per thread. Finite hogs carry per-thread
	// remaining-work state and stay individual.
	hog := hogProgram()
	for i := 0; i < n; i++ {
		var prog kernel.Program
		if cfg.Work > 0 {
			prog = finiteHogProgram(cfg.Work)
		} else {
			prog = hog
		}
		th := k.Spawn("storm", prog)
		res := rbs.Reservation{Proportion: prop, Period: periods[i%len(periods)]}
		if err := p.SetReservation(th, res); err != nil {
			panic(err)
		}
	}
	for i := 0; i < cfg.Unmanaged; i++ {
		k.Spawn("rr", hog)
	}
	k.Start()
	if cfg.Work > 0 {
		// Run-to-completion: advance in chunks until the backlog drains.
		const chunk = 250 * sim.Millisecond
		for ran := sim.Duration(0); exited < n && ran < cfg.RunFor; ran += chunk {
			eng.RunFor(chunk)
		}
	} else {
		eng.RunFor(cfg.RunFor)
	}
	k.Stop()
	st := k.Stats()
	elapsed := st.Elapsed
	if cfg.Work > 0 && exited == n {
		// The drain loop advances in coarse chunks; the exit hook pins the
		// exact instant the backlog emptied.
		elapsed = sim.Duration(drainedAt)
	}
	return StormResult{
		Threads:    n,
		CPUs:       ncpu,
		Dispatches: st.Dispatches,
		Switches:   st.Switches,
		Wakeups:    st.Wakeups,
		Migrations: st.Migrations,
		ThreadTime: st.ThreadTime(),
		Overhead:   st.Overhead,
		Idle:       st.Idle,
		Missed:     p.MissedDeadlines(),
		SimElapsed: elapsed,
		Completed:  exited,
	}
}

// hogProgram returns a CPU-bound program that reuses its op across calls.
func hogProgram() kernel.Program {
	op := kernel.OpCompute{Cycles: 1_000_000}
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return &op
	})
}

// finiteHogProgram burns total cycles in 1M-cycle bursts, then exits.
func finiteHogProgram(total sim.Cycles) kernel.Program {
	op := kernel.OpCompute{}
	remaining := total
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		if remaining <= 0 {
			return kernel.OpExit{}
		}
		burst := sim.Cycles(1_000_000)
		if remaining < burst {
			burst = remaining
		}
		remaining -= burst
		op.Cycles = burst
		return &op
	})
}

// ScalePoint is one row of the scaling sweep.
type ScalePoint struct {
	Threads    int
	Dispatches uint64
	Wakeups    uint64
}

// ScaleResult is the ContextSwitchStorm sweep over thread counts: the
// Figure 5 axis pushed far past the paper's 40 processes, toward the
// thousands-of-threads regime the ROADMAP targets.
type ScaleResult struct {
	Points []ScalePoint
}

// RunStormScale sweeps RunContextSwitchStorm across thread counts through
// the parallel sweep runner (each point is an independent machine).
func RunStormScale(counts []int, runFor sim.Duration) ScaleResult {
	if len(counts) == 0 {
		counts = []int{10, 100, 1000}
	}
	if runFor == 0 {
		runFor = sim.Second
	}
	pts := Sweep(len(counts), func(i int) ScalePoint {
		r := RunContextSwitchStorm(StormConfig{Threads: counts[i], RunFor: runFor})
		return ScalePoint{Threads: r.Threads, Dispatches: r.Dispatches, Wakeups: r.Wakeups}
	})
	return ScaleResult{Points: pts}
}

// Print writes the sweep as a table.
func (res ScaleResult) Print(w io.Writer) {
	section(w, "Scaling: ContextSwitchStorm sweep")
	fmt.Fprintf(w, "%-10s %-12s %s\n", "threads", "dispatches", "wakeups")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-10d %-12d %d\n", p.Threads, p.Dispatches, p.Wakeups)
	}
}

// SMPStormResult is the storm swept across machine sizes: a fixed backlog
// of per-thread work retired on 1..N CPUs. Time-to-drain must shrink as
// CPUs grow — the throughput claim of the SMP kernel.
type SMPStormResult struct {
	WorkPerThread sim.Cycles
	Points        []StormResult
}

// RunStormSMP runs the run-to-completion storm over threads × cpus through
// the parallel sweep runner. workPerThread = 0 picks a default sized so a
// 1-CPU machine takes a few simulated seconds per thousand threads.
func RunStormSMP(threads, cpus []int, workPerThread sim.Cycles) SMPStormResult {
	if len(threads) == 0 {
		threads = []int{1000, 10000}
	}
	if len(cpus) == 0 {
		cpus = []int{1, 2, 4, 8}
	}
	if workPerThread == 0 {
		workPerThread = 4_000_000 // 10 ms at 400 MHz
	}
	pts := Sweep(len(threads)*len(cpus), func(i int) StormResult {
		return RunContextSwitchStorm(StormConfig{
			Threads: threads[i/len(cpus)],
			CPUs:    cpus[i%len(cpus)],
			Work:    workPerThread,
		})
	})
	return SMPStormResult{WorkPerThread: workPerThread, Points: pts}
}

// Print writes the SMP storm sweep as a table.
func (res SMPStormResult) Print(w io.Writer) {
	section(w, "SMP storm: fixed backlog, time-to-drain vs. CPUs")
	fmt.Fprintf(w, "work per thread: %d cycles\n", res.WorkPerThread)
	fmt.Fprintf(w, "%-10s %-6s %-12s %-12s %-12s %-12s %s\n",
		"threads", "cpus", "sim-elapsed", "dispatches", "migrations", "idle", "completed")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-10d %-6d %-12v %-12d %-12d %-12v %d/%d\n",
			p.Threads, p.CPUs, p.SimElapsed, p.Dispatches, p.Migrations, p.Idle, p.Completed, p.Threads)
	}
}

// WriteCSV dumps the SMP storm sweep for plotting.
func (res SMPStormResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "threads,cpus,sim_elapsed_s,dispatches,migrations,idle_s,completed"); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(w, "%d,%d,%.6f,%d,%d,%.6f,%d\n",
			p.Threads, p.CPUs, p.SimElapsed.Seconds(), p.Dispatches, p.Migrations,
			p.Idle.Seconds(), p.Completed); err != nil {
			return err
		}
	}
	return nil
}
