package experiments

import (
	"fmt"
	"io"

	"repro/internal/kernel"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// StormConfig sizes the ContextSwitchStorm scaling scenario: a machine
// saturated with registered CPU-bound threads, all dispatch-point churn.
// It is the scheduler-core stress test behind the large-N scaling claims:
// every thread burns its budget, naps to its next period, and wakes in a
// thundering herd at period boundaries, so the dispatcher's runnable set
// stays in the hundreds-to-thousands while dispatches fire every tick.
type StormConfig struct {
	// Threads is the number of registered CPU-bound threads.
	Threads int
	// Unmanaged adds round-robin threads below the registered set.
	Unmanaged int
	// RunFor is the simulated window (default 1 s).
	RunFor sim.Duration
	// Discipline selects the dispatch order under test (RMS default).
	Discipline rbs.Discipline
}

// StormResult reports what the machine did during the storm.
type StormResult struct {
	Threads    int
	Dispatches uint64
	Switches   uint64
	Wakeups    uint64
	ThreadTime sim.Duration
	Overhead   sim.Duration
	Idle       sim.Duration
	Missed     uint64
}

// RunContextSwitchStorm spawns cfg.Threads registered hogs with mixed
// periods and proportions summing to ≈90% of the CPU, plus optional
// unmanaged hogs, and runs the machine for the window. Beyond a few
// hundred threads the 1 ms minimum allocation oversubscribes the machine
// by construction (exactly the paper's quantization limit, §4.3), which
// maximizes budget-exhaustion naps and period-boundary wakeups — the
// worst case for the dispatcher's data structures.
func RunContextSwitchStorm(cfg StormConfig) StormResult {
	n := cfg.Threads
	if n <= 0 {
		n = 100
	}
	if cfg.RunFor == 0 {
		cfg.RunFor = sim.Second
	}
	eng := sim.NewEngine()
	p := rbs.New()
	p.Discipline = cfg.Discipline
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	periods := [...]sim.Duration{
		10 * sim.Millisecond,
		20 * sim.Millisecond,
		30 * sim.Millisecond,
		50 * sim.Millisecond,
		100 * sim.Millisecond,
	}
	prop := 900 / n
	if prop < 1 {
		prop = 1
	}
	for i := 0; i < n; i++ {
		th := k.Spawn("storm", hogProgram())
		res := rbs.Reservation{Proportion: prop, Period: periods[i%len(periods)]}
		if err := p.SetReservation(th, res); err != nil {
			panic(err)
		}
	}
	for i := 0; i < cfg.Unmanaged; i++ {
		k.Spawn("rr", hogProgram())
	}
	k.Start()
	eng.RunFor(cfg.RunFor)
	k.Stop()
	st := k.Stats()
	return StormResult{
		Threads:    n,
		Dispatches: st.Dispatches,
		Switches:   st.Switches,
		Wakeups:    st.Wakeups,
		ThreadTime: st.ThreadTime(),
		Overhead:   st.Overhead,
		Idle:       st.Idle,
		Missed:     p.MissedDeadlines(),
	}
}

// hogProgram returns a CPU-bound program that reuses its op across calls.
func hogProgram() kernel.Program {
	op := kernel.OpCompute{Cycles: 1_000_000}
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return &op
	})
}

// ScalePoint is one row of the scaling sweep.
type ScalePoint struct {
	Threads    int
	Dispatches uint64
	Wakeups    uint64
}

// ScaleResult is the ContextSwitchStorm sweep over thread counts: the
// Figure 5 axis pushed far past the paper's 40 processes, toward the
// thousands-of-threads regime the ROADMAP targets.
type ScaleResult struct {
	Points []ScalePoint
}

// RunStormScale sweeps RunContextSwitchStorm across thread counts through
// the parallel sweep runner (each point is an independent machine).
func RunStormScale(counts []int, runFor sim.Duration) ScaleResult {
	if len(counts) == 0 {
		counts = []int{10, 100, 1000}
	}
	if runFor == 0 {
		runFor = sim.Second
	}
	pts := Sweep(len(counts), func(i int) ScalePoint {
		r := RunContextSwitchStorm(StormConfig{Threads: counts[i], RunFor: runFor})
		return ScalePoint{Threads: r.Threads, Dispatches: r.Dispatches, Wakeups: r.Wakeups}
	})
	return ScaleResult{Points: pts}
}

// Print writes the sweep as a table.
func (res ScaleResult) Print(w io.Writer) {
	section(w, "Scaling: ContextSwitchStorm sweep")
	fmt.Fprintf(w, "%-10s %-12s %s\n", "threads", "dispatches", "wakeups")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-10d %-12d %d\n", p.Threads, p.Dispatches, p.Wakeups)
	}
}
