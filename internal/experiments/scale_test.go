package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// TestStormScaleRuns drives the ContextSwitchStorm family at increasing
// thread counts through the parallel sweep runner: the machine must stay
// live (dispatching and waking) at every scale, and the dispatch count
// must stay bounded by the tick rate — dispatches are per-tick events, so
// a thousandfold thread increase must not inflate them more than the
// storm's own wake churn does (the old linear-scan core got *slower* per
// dispatch; the indexed core must not change dispatch semantics at all).
func TestStormScaleRuns(t *testing.T) {
	res := experiments.RunStormScale([]int{10, 100, 1000}, 200*sim.Millisecond)
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Dispatches == 0 {
			t.Fatalf("n=%d: machine never dispatched", p.Threads)
		}
		// 200 ms at a 1 ms tick with segment-end and wake dispatch points:
		// far below 10 per tick at any n.
		if p.Dispatches > 2000 {
			t.Fatalf("n=%d: %d dispatches in 200ms — dispatch storm out of bounds", p.Threads, p.Dispatches)
		}
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "ContextSwitchStorm") {
		t.Fatalf("report missing title: %s", sb.String())
	}
}

// TestStormOversubscribedCountsMisses sanity-checks the stress shape: at
// 1000 threads the 1 ms minimum allocation oversubscribes the machine, so
// the dispatcher must be reporting deadline misses (the controller's
// overload signal) rather than silently dropping periods.
func TestStormOversubscribedCountsMisses(t *testing.T) {
	res := experiments.RunContextSwitchStorm(experiments.StormConfig{
		Threads: 1000, RunFor: 200 * sim.Millisecond,
	})
	if res.Missed == 0 {
		t.Fatal("oversubscribed storm recorded no missed deadlines")
	}
	if res.ThreadTime == 0 {
		t.Fatal("storm delivered no CPU to its threads")
	}
}

// TestFig5ExtendedTo1000 pushes the Figure 5 sweep past the paper's 40
// processes into the thousands-of-jobs regime: the controller must survive
// (the legacy floor handling panicked past ~170 adaptive jobs) and its
// measured overhead must stay a valid CPU fraction, saturating at its own
// reservation rather than growing without bound.
func TestFig5ExtendedTo1000(t *testing.T) {
	res := experiments.RunFig5(experiments.Fig5Config{
		MaxProcesses: 1000, Step: 500, RunFor: 500 * sim.Millisecond,
	})
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3 (0, 500, 1000)", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Overhead < 0 || p.Overhead > 1 {
			t.Fatalf("n=%d: controller CPU fraction %v out of [0,1]", p.Processes, p.Overhead)
		}
	}
	// More controlled processes must cost more controller CPU.
	if res.Points[2].Overhead <= res.Points[0].Overhead {
		t.Fatalf("overhead not increasing: %+v", res.Points)
	}
}
