package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/pid"
	"repro/internal/sim"
)

// These tests assert the *shape* of each reproduced figure: who wins, by
// roughly what factor, and where crossovers fall — the reproduction
// criteria DESIGN.md sets out. Short windows keep them fast; the full
// paper-length runs happen in cmd/rrexp and the benchmarks.

func TestFig5LinearAndCalibrated(t *testing.T) {
	res := experiments.RunFig5(experiments.Fig5Config{
		MaxProcesses: 40, Step: 10, RunFor: 5 * sim.Second,
	})
	if res.Fit.R2 < 0.995 {
		t.Fatalf("overhead not linear: R² = %v", res.Fit.R2)
	}
	// Paper: slope .00066, intercept .00057, 2.7% at 40 jobs.
	if res.Fit.Slope < 0.0005 || res.Fit.Slope > 0.0008 {
		t.Fatalf("slope = %v, want ≈0.00066", res.Fit.Slope)
	}
	if res.Fit.Intercept < 0.0004 || res.Fit.Intercept > 0.0008 {
		t.Fatalf("intercept = %v, want ≈0.00057", res.Fit.Intercept)
	}
	if res.At40 < 0.022 || res.At40 > 0.032 {
		t.Fatalf("overhead at 40 jobs = %v, want ≈0.027", res.At40)
	}
}

func TestFig5PrintAndCSV(t *testing.T) {
	res := experiments.RunFig5(experiments.Fig5Config{
		MaxProcesses: 10, Step: 5, RunFor: 2 * sim.Second,
	})
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "linear fit") {
		t.Fatalf("report missing fit: %s", sb.String())
	}
	sb.Reset()
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "processes,controller_cpu_fraction\n") {
		t.Fatalf("bad CSV header: %s", sb.String())
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	res := experiments.RunPipeline(experiments.PipelineConfig{
		Duration:    12 * sim.Second,
		PulseWidths: []sim.Duration{2 * sim.Second},
	})
	if !res.Settled {
		t.Fatal("consumer allocation never settled after the rate doubling")
	}
	// Paper: ≈1/3 s. Accept anything clearly sub-second.
	if res.ResponseTime > 800*sim.Millisecond {
		t.Fatalf("response time = %v, want well under 1s", res.ResponseTime)
	}
	if res.MeanFill < 0.35 || res.MeanFill > 0.65 {
		t.Fatalf("mean fill = %v, want ≈0.5", res.MeanFill)
	}
	if res.TrackingError > 0.15 {
		t.Fatalf("tracking error = %v, want <15%%", res.TrackingError)
	}
	// The consumer's allocation roughly follows the drive's square wave:
	// during the pulse its mean must be well above the pre-pulse mean.
	pre := res.ConsumerAlloc.TimeWeightedMean(sim.Time(3*sim.Second), sim.Time(4*sim.Second))
	during := res.ConsumerAlloc.TimeWeightedMean(sim.Time(4500*sim.Millisecond), sim.Time(6*sim.Second))
	if during < 1.5*pre {
		t.Fatalf("pulse allocation %.0f not ≈2x pre-pulse %.0f", during, pre)
	}
}

func TestFig7HogLosesToConsumer(t *testing.T) {
	res := experiments.RunPipeline(experiments.PipelineConfig{
		Duration:    12 * sim.Second,
		PulseWidths: []sim.Duration{2 * sim.Second},
		WithHog:     true,
	})
	// The hog takes the leftover but must neither starve nor win.
	if res.HogShare < 0.15 || res.HogShare > 0.75 {
		t.Fatalf("hog share = %v", res.HogShare)
	}
	// The consumer still tracks the producer through the pulse.
	if res.TrackingError > 0.3 {
		t.Fatalf("tracking error under load = %v", res.TrackingError)
	}
	// Squish evidence: during the pulse, the hog's allocation dips below
	// its pre-pulse level (it "effectively loses allocation to the
	// consumer").
	pre := res.HogAlloc.TimeWeightedMean(sim.Time(3*sim.Second), sim.Time(4*sim.Second))
	during := res.HogAlloc.TimeWeightedMean(sim.Time(4500*sim.Millisecond), sim.Time(6*sim.Second))
	if during >= pre {
		t.Fatalf("hog allocation did not fall under pulse load: pre %.0f during %.0f", pre, during)
	}
}

func TestFig8MonotoneWithKnee(t *testing.T) {
	res := experiments.RunFig8(experiments.Fig8Config{RunFor: 2 * sim.Second})
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Available > res.Points[i-1].Available+0.001 {
			t.Fatalf("available CPU not monotone: %+v", res.Points)
		}
	}
	if res.KneeHz < 2000 || res.KneeHz > 6000 {
		t.Fatalf("knee at %d Hz, want ≈4000", res.KneeHz)
	}
	if res.OverheadAt4kHz < 0.015 || res.OverheadAt4kHz > 0.04 {
		t.Fatalf("overhead at 4kHz = %v, want ≈0.027", res.OverheadAt4kHz)
	}
}

func TestPathfinderComparison(t *testing.T) {
	res := experiments.RunPathfinder(30 * sim.Second)
	if res.PriorityResets == 0 {
		t.Fatal("fixed priorities produced no resets: inversion missing")
	}
	if res.RealRateResets != 0 {
		t.Fatalf("real-rate scheduling produced %d resets", res.RealRateResets)
	}
	// The low task does far more work under real-rate scheduling.
	if res.RealRateWeatherRuns < 2*res.PriorityWeatherRuns {
		t.Fatalf("weather runs: priority %d vs real-rate %d",
			res.PriorityWeatherRuns, res.RealRateWeatherRuns)
	}
}

func TestLivelockComparison(t *testing.T) {
	res := experiments.RunLivelock(5 * sim.Second)
	if res.PriorityInputs != 0 {
		t.Fatalf("livelock did not manifest: %d inputs under fixed priority", res.PriorityInputs)
	}
	if res.RealRateInputs == 0 {
		t.Fatal("no inputs flowed under real-rate scheduling")
	}
	if res.RealRateSpinCPU <= 0 {
		t.Fatal("spinner starved under real-rate scheduling")
	}
}

func TestGainAblationPIDBeatsPOnFillStability(t *testing.T) {
	p := experiments.RunGainAblation("P", pid.Config{Kp: 1.0}, 10*sim.Second)
	full := experiments.RunGainAblation("PID", pid.Config{Kp: 1.0, Ki: 4.0, Kd: 0.05}, 10*sim.Second)
	if !full.Settled {
		t.Fatal("PID did not settle")
	}
	if full.FillStd > p.FillStd*1.5 {
		t.Fatalf("PID fill-std %v much worse than P-only %v", full.FillStd, p.FillStd)
	}
}

func TestReclaimAblationFreesCapacity(t *testing.T) {
	on := experiments.RunReclaimAblation(true, 10*sim.Second)
	off := experiments.RunReclaimAblation(false, 10*sim.Second)
	if on.ConsumerAlloc >= off.ConsumerAlloc {
		t.Fatalf("reclaim did not shrink bottlenecked allocation: on=%v off=%v",
			on.ConsumerAlloc, off.ConsumerAlloc)
	}
	if on.HogShare <= off.HogShare {
		t.Fatalf("reclaimed capacity did not reach the hog: on=%v off=%v",
			on.HogShare, off.HogShare)
	}
}

func TestQuantizationAblation(t *testing.T) {
	q := experiments.RunQuantizationAblation(false, 5*sim.Second)
	p := experiments.RunQuantizationAblation(true, 5*sim.Second)
	if q.Overdelivery < 2 {
		t.Fatalf("tick-quantized dispatch should over-deliver small budgets: %vx", q.Overdelivery)
	}
	if p.Overdelivery > 1.2 {
		t.Fatalf("precise accounting still over-delivers: %vx", p.Overdelivery)
	}
}

func TestPipelineCSVWellFormed(t *testing.T) {
	res := experiments.RunPipeline(experiments.PipelineConfig{
		Duration:    4 * sim.Second,
		PulseWidths: []sim.Duration{sim.Second},
	})
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 30 {
		t.Fatalf("CSV has only %d lines", len(lines))
	}
	header := lines[0]
	wantCols := strings.Count(header, ",") + 1
	for i, l := range lines[1:] {
		if strings.Count(l, ",")+1 != wantCols {
			t.Fatalf("row %d has wrong arity: %q", i+1, l)
		}
	}
}
