package experiments

import (
	"fmt"
	"io"
	"time"

	realrate "repro"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// InteractiveRow is one scheduler's interactive-latency result.
type InteractiveRow struct {
	Scheduler string
	Handled   int64
	// P50 and P99 are event-to-completion latencies (user action until
	// the editor finishes its burst).
	P50, P99 sim.Duration
}

// InteractiveResult reproduces §4.1's claim: "we currently schedule both
// the controller and the X server, and see no noticeable delays in
// interactive response time even when the CPU is fully utilized."
type InteractiveResult struct {
	Duration sim.Duration
	Rows     []InteractiveRow
}

// interactiveWorkload spawns the editor, its event source, and three hogs.
func interactiveWorkload(k *kernel.Kernel) (*workload.InteractiveJob, *workload.EventSource, *kernel.Thread, *kernel.Thread, []*kernel.Thread) {
	tty := kernel.NewWaitQueue("tty")
	ij := &workload.InteractiveJob{TTY: tty, Burst: 1_200_000} // 3 ms per event
	it := k.Spawn("editor", ij)
	src := &workload.EventSource{Kernel: k, Target: ij, Interval: 50 * sim.Millisecond}
	st := k.Spawn("user", src)
	var hogs []*kernel.Thread
	for i := 0; i < 3; i++ {
		hogs = append(hogs, k.Spawn("hog", &workload.Hog{Burst: 400_000}))
	}
	return ij, src, it, st, hogs
}

func interactiveRow(name string, ij *workload.InteractiveJob) InteractiveRow {
	lats := ij.Latencies()
	row := InteractiveRow{Scheduler: name, Handled: ij.Handled()}
	if len(lats) > 0 {
		secs := make([]float64, len(lats))
		for i, l := range lats {
			secs[i] = l.Seconds()
		}
		row.P50 = sim.Duration(metrics.Percentile(secs, 50) * float64(sim.Second))
		row.P99 = sim.Duration(metrics.Percentile(secs, 99) * float64(sim.Second))
	}
	return row
}

// RunInteractiveLatency measures editor response under three schedulers
// with the CPU fully utilized by hogs.
func RunInteractiveLatency(duration sim.Duration) InteractiveResult {
	if duration == 0 {
		duration = 20 * sim.Second
	}
	res := InteractiveResult{Duration: duration}

	// Real-rate stack: editor is an interactive-class job; the user is an
	// input device with a small reservation; hogs are miscellaneous.
	{
		r := newRig(nil, nil)
		ij, _, it, st, hogs := interactiveWorkload(r.kern)
		r.ctl.AddInteractive(it)
		if _, err := r.ctl.AddRealTime(st, 10, 5*sim.Millisecond); err != nil {
			panic(err)
		}
		for _, h := range hogs {
			r.ctl.AddMiscellaneous(h)
		}
		r.start()
		r.eng.RunFor(duration)
		r.kern.Stop()
		res.Rows = append(res.Rows, interactiveRow("real-rate (this paper)", ij))
	}

	// Linux goodness: everything SCHED_OTHER except the input interrupt.
	{
		eng := sim.NewEngine()
		lp := realrate.Linux()
		k := kernel.New(eng, kernel.DefaultConfig(), lp.Linux)
		ij, _, _, st, _ := interactiveWorkload(k)
		lp.SetRealtime(st, 50) // input delivery is interrupt-driven
		k.Start()
		eng.RunFor(duration)
		k.Stop()
		res.Rows = append(res.Rows, interactiveRow("linux-goodness", ij))
	}

	// Lottery: editor holds typical tickets, the input device many.
	{
		eng := sim.NewEngine()
		lot := realrate.Lottery(10*time.Millisecond, 777)
		k := kernel.New(eng, kernel.DefaultConfig(), lot.Lottery)
		ij, _, it, st, _ := interactiveWorkload(k)
		lot.SetTickets(st, 20_000)
		lot.SetTickets(it, 100)
		k.Start()
		eng.RunFor(duration)
		k.Stop()
		res.Rows = append(res.Rows, interactiveRow("lottery", ij))
	}
	return res
}

// Print writes the comparison table.
func (res InteractiveResult) Print(w io.Writer) {
	section(w, "Interactive response under full CPU load (§4.1)")
	events := int64(res.Duration / sim.Duration(50*sim.Millisecond))
	fmt.Fprintf(w, "editor events every 50 ms (%d total), 3 ms burst each, 3 competing hogs\n", events)
	fmt.Fprintf(w, "%-26s %-9s %-12s %s\n", "scheduler", "handled", "p50 latency", "p99 latency")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-26s %-9d %-12v %v\n", r.Scheduler, r.Handled, r.P50, r.P99)
	}
	fmt.Fprintln(w, "paper: \"no noticeable delays in interactive response time even when")
	fmt.Fprintln(w, "       the CPU is fully utilized\" — human-noticeable ≈ 100 ms.")
}
