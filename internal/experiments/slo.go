package experiments

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/workload/gen"
)

// The SLO sweep is the live-service evaluation the paper's figures do not
// cover: open-loop per-user sessions (Poisson base + MMPP bursts + a
// diurnal envelope) pushed through short ingest→transform→deliver
// pipelines against an end-to-end deadline, at offered loads stepping from
// comfortable to far past saturation. Each (policy, cpus, load) point is
// an independent machine; the output is the SLO-attainment curve —
// attainment and goodput versus offered load — per policy and CPU count,
// which is where admission backpressure and importance-ordered shedding
// become visible as service-level outcomes rather than scheduler counters.

// SLOConfig sizes the SLO-attainment sweep.
type SLOConfig struct {
	// Seed drives every draw; load point i uses Seed+i so all policies
	// and CPU counts see the identical arrival realization at each load.
	Seed uint64
	// Sessions is the target session count at load 1.0 (the top of the
	// curve scales linearly with Loads).
	Sessions int
	// Loads are the offered-load multipliers, ascending; empty uses the
	// default ladder.
	Loads []float64
	// Policies to sweep; empty uses every public policy.
	Policies []string
	// CPUs values to sweep; empty uses {1, 4, 8}.
	CPUs []int
	// Controller is the control-plane mode for the feedback policy;
	// empty means "event" — the only plane that holds at 100k+ sessions.
	Controller string
	// Shards is the control-plane shard count (0: a CPU-matched default).
	Shards int
	// Duration is the simulated run length (0: 1s).
	Duration time.Duration
}

// SLOPoint is one (policy, cpus, load) row of the sweep.
type SLOPoint struct {
	Policy   string
	CPUs     int
	Load     float64
	Offered  float64 // mean offered sessions/sec
	Sessions gen.SessionReport
	P99      time.Duration // end-to-end session latency p99
	HostMS   float64       // host wall-clock for the run
	PerEpoch float64       // host ms per 10ms control epoch
}

// SLOResult is the full sweep output.
type SLOResult struct {
	Sessions int
	Duration time.Duration
	Points   []SLOPoint
}

// SLOSpec builds the generator spec for one session-workload point: n
// expected sessions over dur at the given offered-load multiplier, on a
// machine with the given CPU count. The shape mirrors the slo family's
// drawn midpoints; only the arrival rate scales with load, so curves
// across loads differ in pressure, not in session anatomy. Exported so
// BenchmarkSLOSessions measures exactly what rrexp -slo runs.
func SLOSpec(seed uint64, n int, load float64, dur time.Duration, cpus int) gen.Spec {
	if dur <= 0 {
		dur = time.Second
	}
	if cpus < 1 {
		cpus = 1
	}
	// With equal MMPP sojourn means the process spends half its time in
	// each phase, so the mean rate is (base+burst)/2 = 1.75·base when
	// burst = 2.5·base; the diurnal sine averages out. Solve base so the
	// expected session count is n·load.
	base := float64(n) * load / (1.75 * dur.Seconds())
	return gen.Spec{
		Family:   "slo",
		Seed:     seed,
		Duration: dur,
		CPUs:     cpus,
		Taskset:  gen.TasksetSpec{RealTime: 1, Misc: 2},
		Sessions: gen.SessionSpec{
			Rate:          base,
			BurstRate:     2.5 * base,
			PhaseMean:     60 * time.Millisecond,
			Diurnal:       0.4,
			Stages:        3,
			Bytes:         512,
			Chunk:         256,
			Work:          30_000,
			Deadline:      80 * time.Millisecond,
			BestEffort:    0.5,
			MaxImportance: 9,
			// Accept-backlog bound, scaled to the machine: past it a
			// session is dropped at the front end. This is what keeps a
			// controller-less baseline from accumulating an unbounded
			// thread population when offered load exceeds capacity.
			MaxLive: 2048 * cpus,
		},
	}
}

// RunSLOSweep runs the attainment sweep: policies × CPU counts × offered
// loads, one fresh machine per point. Invariant checking is off — these
// are service-level measurement runs, and the 100k-session points pay for
// the workload, not the oracles; the invariant harness covers the same
// family separately.
func RunSLOSweep(cfg SLOConfig) *SLOResult {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 4000
	}
	if len(cfg.Loads) == 0 {
		cfg.Loads = []float64{0.25, 0.5, 1, 2, 4}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = gen.Policies()
	}
	if len(cfg.CPUs) == 0 {
		cfg.CPUs = []int{1, 4, 8}
	}
	if cfg.Controller == "" {
		cfg.Controller = "event"
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	nl, nc := len(cfg.Loads), len(cfg.CPUs)
	pts := Sweep(len(cfg.Policies)*nc*nl, func(i int) SLOPoint {
		policy := cfg.Policies[i/(nc*nl)]
		cpus := cfg.CPUs[i/nl%nc]
		li := i % nl
		load := cfg.Loads[li]
		sp := SLOSpec(cfg.Seed+uint64(li), cfg.Sessions, load, cfg.Duration, cpus)
		start := time.Now()
		res, err := gen.Generate(sp).Run(gen.RunOpts{
			Policy:       policy,
			Controller:   cfg.Controller,
			Shards:       cfg.Shards,
			NoInvariants: true,
		})
		host := time.Since(start)
		if err != nil {
			panic(fmt.Sprintf("slo sweep %s/cpus=%d/load=%g: %v", policy, cpus, load, err))
		}
		epochs := float64(cfg.Duration / (10 * time.Millisecond))
		if epochs < 1 {
			epochs = 1
		}
		return SLOPoint{
			Policy:   policy,
			CPUs:     cpus,
			Load:     load,
			Offered:  float64(cfg.Sessions) * load / cfg.Duration.Seconds(),
			Sessions: res.Report.Sessions,
			P99:      res.SLO.Session.P99,
			HostMS:   float64(host) / float64(time.Millisecond),
			PerEpoch: float64(host) / float64(time.Millisecond) / epochs,
		}
	})
	return &SLOResult{Sessions: cfg.Sessions, Duration: cfg.Duration, Points: pts}
}

// Print writes the attainment curves, one block per (policy, cpus): each
// row is one offered-load point with the session outcome counters, the
// service-level attainment/goodput pair, the end-to-end p99, and the host
// cost per control epoch.
func (r *SLOResult) Print(w io.Writer) {
	section(w, fmt.Sprintf("SLO attainment curves (%d sessions at load 1.0, %s runs)",
		r.Sessions, r.Duration))
	var last string
	for _, p := range r.Points {
		key := fmt.Sprintf("%s cpus=%d", p.Policy, p.CPUs)
		if key != last {
			fmt.Fprintf(w, "\n-- policy=%s cpus=%d --\n", p.Policy, p.CPUs)
			fmt.Fprintf(w, "%6s %9s %8s %8s %8s %6s %8s %6s %6s %8s %8s %9s\n",
				"load", "offer/s", "started", "refused", "complete", "dead",
				"met", "attain", "good", "p99ms", "peak", "ms/epoch")
			last = key
		}
		s := p.Sessions
		fmt.Fprintf(w, "%6.2f %9.0f %8d %8d %8d %6d %8d %6.3f %6.3f %8.2f %8d %9.3f\n",
			p.Load, p.Offered, s.Started, s.Refused, s.Completed, s.Dead,
			s.Met, s.Attainment, s.Goodput,
			float64(p.P99)/float64(time.Millisecond), s.PeakLive, p.PerEpoch)
	}
}

// WriteCSV dumps every point as one row for plotting.
func (r *SLOResult) WriteCSV(w io.Writer) error {
	_, err := fmt.Fprintln(w, "policy,cpus,load,offered_per_s,started,refused,completed,dead,live,met,peak_live,attainment,goodput,p99_ms,host_ms,ms_per_epoch")
	if err != nil {
		return err
	}
	for _, p := range r.Points {
		s := p.Sessions
		_, err := fmt.Fprintf(w, "%s,%d,%s,%s,%d,%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s\n",
			p.Policy, p.CPUs,
			strconv.FormatFloat(p.Load, 'g', -1, 64),
			strconv.FormatFloat(p.Offered, 'g', -1, 64),
			s.Started, s.Refused, s.Completed, s.Dead, s.Live, s.Met, s.PeakLive,
			strconv.FormatFloat(s.Attainment, 'g', -1, 64),
			strconv.FormatFloat(s.Goodput, 'g', -1, 64),
			strconv.FormatFloat(float64(p.P99)/float64(time.Millisecond), 'g', -1, 64),
			strconv.FormatFloat(p.HostMS, 'g', -1, 64),
			strconv.FormatFloat(p.PerEpoch, 'g', -1, 64))
		if err != nil {
			return err
		}
	}
	return nil
}
