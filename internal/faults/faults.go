// Package faults is a seeded, deterministic fault injector for the
// real-rate stack. A schedule of Specs declares windows of misbehavior —
// frozen or corrupted progress signals, timer-interrupt jitter, CPU stall
// windows, stuck threads, dropped or delayed actuations — and the kernel
// and controller consult the Injector at their existing decision points.
//
// Determinism is call-order independent: every randomized draw is a pure
// hash of (seed, spec index, target, simulated instant), never a shared
// sequential RNG, so the same schedule perturbs the same run identically
// no matter which subsystem happens to sample first. When no injector is
// installed the consulting code paths pay a single nil check.
package faults

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Kind enumerates the fault taxonomy (see DESIGN.md §8).
type Kind int

const (
	// FreezeSignal pins a job's summed progress pressure at the first
	// value observed inside the window — the stalled-pipeline signature
	// the controller's watchdog must detect.
	FreezeSignal Kind = iota
	// JumpSignal adds a hash-drawn perturbation in [−Mag, +Mag] to the
	// pressure each sample: a wildly non-monotonic signal.
	JumpSignal
	// BadSignal replaces the pressure with NaN, ±Inf, or −Mag — the
	// corrupted-custom-source case the sanitizer must reject.
	BadSignal
	// TickJitter delays each timer interrupt by a hash-drawn fraction of
	// the tick interval (up to Mag × interval).
	TickJitter
	// CPUStall makes one CPU skip every dispatch point inside the window:
	// it goes idle regardless of runnable work, exercising work-pull
	// recovery on its peers.
	CPUStall
	// StuckThread makes the target thread spin (consuming CPU in 1 ms
	// bursts) instead of running its program: run segments with no
	// progress.
	StuckThread
	// DropActuation silently discards the controller's reservation pushes
	// for the target inside the window.
	DropActuation
	// DelayActuation defers the controller's reservation pushes for the
	// target to the next control interval.
	DelayActuation
)

func (k Kind) String() string {
	switch k {
	case FreezeSignal:
		return "freeze-signal"
	case JumpSignal:
		return "jump-signal"
	case BadSignal:
		return "bad-signal"
	case TickJitter:
		return "tick-jitter"
	case CPUStall:
		return "cpu-stall"
	case StuckThread:
		return "stuck-thread"
	case DropActuation:
		return "drop-actuation"
	case DelayActuation:
		return "delay-actuation"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec is one scheduled fault: a Kind active on [At, At+For), aimed at a
// thread name (signal/thread/actuation kinds; "" matches every thread) or
// a CPU (CPUStall), with a kind-specific magnitude.
type Spec struct {
	Kind   Kind
	Target string
	CPU    int
	At     sim.Time
	For    sim.Duration
	// Mag is the kind-specific magnitude: the perturbation bound for
	// JumpSignal, the replacement magnitude for BadSignal, the maximum
	// delay as a fraction of the tick interval for TickJitter. Unused by
	// the window-only kinds.
	Mag float64
}

// active reports whether the spec's window covers now.
func (s *Spec) active(now sim.Time) bool {
	return now >= s.At && now < s.At.Add(s.For)
}

// Event records the first injection of one spec, for observers.
type Event struct {
	Time   sim.Time
	Kind   Kind
	Target string
	CPU    int
	Spec   int // index into the schedule
}

// Injector evaluates a fault schedule. All methods are cheap enough for
// the kernel tick path: a linear scan over the (small) schedule with a
// window test per spec.
type Injector struct {
	seed  uint64
	specs []Spec
	// fired marks specs whose first injection has been announced.
	fired   []bool
	onEvent func(Event)

	injected uint64
	// frozen records the first pressure seen per (spec, target) inside a
	// FreezeSignal window.
	frozen map[frozenKey]float64
}

type frozenKey struct {
	spec   int
	target string
}

// New builds an injector for the given schedule. The schedule is copied.
func New(seed uint64, specs []Spec) *Injector {
	in := &Injector{
		seed:   seed,
		specs:  append([]Spec(nil), specs...),
		fired:  make([]bool, len(specs)),
		frozen: make(map[frozenKey]float64),
	}
	return in
}

// Specs returns the schedule. The slice must not be modified.
func (in *Injector) Specs() []Spec { return in.specs }

// OnEvent installs a callback fired once per spec, at its first actual
// injection (not merely when its window opens).
func (in *Injector) OnEvent(fn func(Event)) { in.onEvent = fn }

// Injected returns the total number of individual injections performed
// (every perturbed sample, skipped dispatch point, jittered tick, stolen
// program step, and dropped or delayed actuation).
func (in *Injector) Injected() uint64 { return in.injected }

// fire announces spec i's first injection and counts the injection.
func (in *Injector) fire(i int, now sim.Time, target string, cpu int) {
	in.injected++
	if in.fired[i] {
		return
	}
	in.fired[i] = true
	if in.onEvent != nil {
		in.onEvent(Event{Time: now, Kind: in.specs[i].Kind, Target: target, CPU: cpu, Spec: i})
	}
}

// mix is the splitmix64 finalizer: the stateless hash behind every draw.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// draw hashes (seed, spec, target, now) to a uniform uint64.
func (in *Injector) draw(spec int, target string, now sim.Time) uint64 {
	h := mix(in.seed ^ uint64(spec)*0x9E3779B97F4A7C15)
	for i := 0; i < len(target); i++ {
		h = mix(h ^ uint64(target[i]))
	}
	return mix(h ^ uint64(now))
}

// unit maps a draw to [0, 1).
func unit(u uint64) float64 { return float64(u>>11) / (1 << 53) }

// matches reports whether the spec aims at the named thread.
func (s *Spec) matches(target string) bool {
	return s.Target == "" || s.Target == target
}

// PerturbPressure applies every active signal fault aimed at target to the
// summed pressure p, returning the (possibly non-finite) corrupted value.
// The controller calls it before its own sanitizer, so injected NaN/Inf
// exercises the rejection path rather than bypassing it.
func (in *Injector) PerturbPressure(target string, now sim.Time, p float64) float64 {
	for i := range in.specs {
		s := &in.specs[i]
		if !s.active(now) || !s.matches(target) {
			continue
		}
		switch s.Kind {
		case FreezeSignal:
			k := frozenKey{spec: i, target: target}
			v, seen := in.frozen[k]
			if !seen {
				v = p
				in.frozen[k] = v
			}
			p = v
			in.fire(i, now, target, -1)
		case JumpSignal:
			p += (2*unit(in.draw(i, target, now)) - 1) * s.Mag
			in.fire(i, now, target, -1)
		case BadSignal:
			switch in.draw(i, target, now) % 4 {
			case 0:
				p = math.NaN()
			case 1:
				p = math.Inf(1)
			case 2:
				p = math.Inf(-1)
			default:
				p = -s.Mag
			}
			in.fire(i, now, target, -1)
		}
	}
	return p
}

// TickDelay returns the extra delay to add to the next timer interrupt.
func (in *Injector) TickDelay(now sim.Time, interval sim.Duration) sim.Duration {
	var d sim.Duration
	for i := range in.specs {
		s := &in.specs[i]
		if s.Kind != TickJitter || !s.active(now) {
			continue
		}
		d += sim.Duration(unit(in.draw(i, "", now)) * s.Mag * float64(interval))
		in.fire(i, now, "", -1)
	}
	return d
}

// CPUStalled reports whether the given CPU must skip this dispatch point.
func (in *Injector) CPUStalled(cpu int, now sim.Time) bool {
	for i := range in.specs {
		s := &in.specs[i]
		if s.Kind != CPUStall || s.CPU != cpu || !s.active(now) {
			continue
		}
		in.fire(i, now, "", cpu)
		return true
	}
	return false
}

// ThreadStuck reports whether the named thread's program is hijacked into
// a progress-free spin at this instant.
func (in *Injector) ThreadStuck(target string, now sim.Time) bool {
	for i := range in.specs {
		s := &in.specs[i]
		if s.Kind != StuckThread || !s.active(now) || !s.matches(target) {
			continue
		}
		in.fire(i, now, target, -1)
		return true
	}
	return false
}

// ActuationFault reports whether an actuation for the named thread must be
// dropped or delayed at this instant. Drop wins when both windows overlap.
func (in *Injector) ActuationFault(target string, now sim.Time) (drop, delay bool) {
	for i := range in.specs {
		s := &in.specs[i]
		if !s.active(now) || !s.matches(target) {
			continue
		}
		switch s.Kind {
		case DropActuation:
			in.fire(i, now, target, -1)
			drop = true
		case DelayActuation:
			in.fire(i, now, target, -1)
			delay = true
		}
	}
	if drop {
		delay = false
	}
	return drop, delay
}
