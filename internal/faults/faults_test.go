package faults

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func ms(n int64) sim.Time        { return sim.Time(n * int64(sim.Millisecond)) }
func msDur(n int64) sim.Duration { return sim.Duration(n * int64(sim.Millisecond)) }

func TestWindowsGateEveryKind(t *testing.T) {
	in := New(1, []Spec{
		{Kind: FreezeSignal, Target: "a", At: ms(10), For: msDur(10)},
		{Kind: TickJitter, At: ms(10), For: msDur(10), Mag: 0.5},
		{Kind: CPUStall, CPU: 1, At: ms(10), For: msDur(10)},
		{Kind: StuckThread, Target: "a", At: ms(10), For: msDur(10)},
		{Kind: DropActuation, Target: "a", At: ms(10), For: msDur(10)},
	})
	for _, now := range []sim.Time{ms(0), ms(9), ms(20), ms(30)} {
		if got := in.PerturbPressure("a", now, 0.25); got != 0.25 {
			t.Errorf("pressure perturbed outside window at %v: %v", now, got)
		}
		if d := in.TickDelay(now, msDur(1)); d != 0 {
			t.Errorf("tick delayed outside window at %v: %v", now, d)
		}
		if in.CPUStalled(1, now) {
			t.Errorf("CPU stalled outside window at %v", now)
		}
		if in.ThreadStuck("a", now) {
			t.Errorf("thread stuck outside window at %v", now)
		}
		if drop, delay := in.ActuationFault("a", now); drop || delay {
			t.Errorf("actuation fault outside window at %v", now)
		}
	}
	if in.Injected() != 0 {
		t.Fatalf("injections counted outside windows: %d", in.Injected())
	}
	now := ms(15)
	if got := in.PerturbPressure("a", now, 0.25); got != 0.25 {
		t.Errorf("freeze must return the first value seen: %v", got)
	}
	if got := in.PerturbPressure("a", now.Add(msDur(1)), -0.4); got != 0.25 {
		t.Errorf("freeze must pin later samples to the first value: %v", got)
	}
	if d := in.TickDelay(now, msDur(1)); d < 0 || d > msDur(1)/2 {
		t.Errorf("tick delay outside [0, Mag×interval]: %v", d)
	}
	if !in.CPUStalled(1, now) {
		t.Error("CPU 1 not stalled inside window")
	}
	if in.CPUStalled(0, now) {
		t.Error("CPU 0 stalled by a spec aimed at CPU 1")
	}
	if !in.ThreadStuck("a", now) {
		t.Error("thread a not stuck inside window")
	}
	if in.ThreadStuck("b", now) {
		t.Error("thread b stuck by a spec aimed at a")
	}
	if drop, _ := in.ActuationFault("a", now); !drop {
		t.Error("actuation not dropped inside window")
	}
	if drop, delay := in.ActuationFault("b", now); drop || delay {
		t.Error("actuation fault leaked to an unmatched target")
	}
	if in.Injected() == 0 {
		t.Fatal("no injections counted inside windows")
	}
}

func TestDrawsAreCallOrderIndependent(t *testing.T) {
	spec := []Spec{
		{Kind: JumpSignal, Target: "a", At: ms(0), For: msDur(100), Mag: 0.3},
		{Kind: BadSignal, Target: "b", At: ms(0), For: msDur(100), Mag: 0.5},
	}
	a := New(42, spec)
	b := New(42, spec)
	// a samples in one order, b in the reverse; values at each (target,
	// instant) must agree.
	pa1 := a.PerturbPressure("a", ms(5), 0.1)
	pa2 := a.PerturbPressure("b", ms(5), 0.1)
	pb2 := b.PerturbPressure("b", ms(5), 0.1)
	pb1 := b.PerturbPressure("a", ms(5), 0.1)
	if pa1 != pb1 || !sameFloat(pa2, pb2) {
		t.Fatalf("draws depend on call order: %v/%v vs %v/%v", pa1, pa2, pb1, pb2)
	}
	// Different seeds must give different perturbations.
	c := New(43, spec)
	if pc := c.PerturbPressure("a", ms(5), 0.1); pc == pa1 {
		t.Fatalf("seed ignored: %v == %v", pc, pa1)
	}
}

func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

func TestBadSignalEmitsNonFinite(t *testing.T) {
	in := New(7, []Spec{{Kind: BadSignal, At: ms(0), For: msDur(1000), Mag: 0.5}})
	sawBad := false
	for i := int64(0); i < 50; i++ {
		p := in.PerturbPressure("x", ms(i*10), 0.2)
		if math.IsNaN(p) || math.IsInf(p, 0) {
			sawBad = true
		}
	}
	if !sawBad {
		t.Fatal("BadSignal never produced NaN/Inf over 50 samples")
	}
}

func TestEventFiresOncePerSpec(t *testing.T) {
	in := New(3, []Spec{
		{Kind: FreezeSignal, Target: "a", At: ms(0), For: msDur(100)},
		{Kind: CPUStall, CPU: 0, At: ms(0), For: msDur(100)},
	})
	var events []Event
	in.OnEvent(func(ev Event) { events = append(events, ev) })
	for i := int64(0); i < 10; i++ {
		in.PerturbPressure("a", ms(i), 0.1)
		in.CPUStalled(0, ms(i))
	}
	if len(events) != 2 {
		t.Fatalf("want one event per spec, got %d: %v", len(events), events)
	}
	if events[0].Kind != FreezeSignal || events[0].Spec != 0 {
		t.Fatalf("bad first event: %+v", events[0])
	}
	if events[1].Kind != CPUStall || events[1].CPU != 0 || events[1].Spec != 1 {
		t.Fatalf("bad second event: %+v", events[1])
	}
	if in.Injected() != 20 {
		t.Fatalf("want 20 injections, got %d", in.Injected())
	}
}

func TestDropWinsOverDelay(t *testing.T) {
	in := New(9, []Spec{
		{Kind: DelayActuation, Target: "a", At: ms(0), For: msDur(100)},
		{Kind: DropActuation, Target: "a", At: ms(0), For: msDur(100)},
	})
	drop, delay := in.ActuationFault("a", ms(5))
	if !drop || delay {
		t.Fatalf("overlapping drop+delay must resolve to drop: drop=%v delay=%v", drop, delay)
	}
}

func TestKindStrings(t *testing.T) {
	for k := FreezeSignal; k <= DelayActuation; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Fatalf("kind %d has no slug: %q", int(k), s)
		}
	}
}
