package overload

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// quick is a small, fast-tripping config for tests.
func quick() Config {
	return Config{TripIntervals: 3, RecoverIntervals: 4}
}

// sat is a clearly saturated sample: demand 2× capacity, squished hard.
func sat() Signals {
	return Signals{Desired: 1800, Granted: 850, Capacity: 900}
}

// idle is a clearly healthy sample.
func idle() Signals {
	return Signals{Desired: 300, Granted: 300, Capacity: 900}
}

func TestLadderStartsNormal(t *testing.T) {
	g := New(Config{})
	if g.Rung() != Normal {
		t.Fatalf("new governor at rung %v, want normal", g.Rung())
	}
	d := g.Observe(idle())
	if d.Rung != Normal || d.Changed() || d.Shed != 0 {
		t.Fatalf("healthy sample moved the ladder: %+v", d)
	}
}

func TestEscalationNeedsStreak(t *testing.T) {
	g := New(quick())
	// Two saturated samples, then a healthy one, resets the streak.
	g.Observe(sat())
	g.Observe(sat())
	g.Observe(idle())
	for i := 0; i < 2; i++ {
		if d := g.Observe(sat()); d.Changed() {
			t.Fatalf("escalated after broken streak at sample %d", i)
		}
	}
	d := g.Observe(sat())
	if !d.Changed() || d.Rung != Throttle {
		t.Fatalf("want normal→throttle on third consecutive saturated sample, got %+v", d)
	}
}

func TestLadderClimbsOneRungAtATime(t *testing.T) {
	g := New(quick())
	want := []Rung{Throttle, Shed, Freeze}
	var moves []Rung
	for i := 0; i < 20; i++ {
		d := g.Observe(sat())
		if d.Changed() {
			if d.Rung != d.From+1 {
				t.Fatalf("ladder jumped %v→%v", d.From, d.Rung)
			}
			moves = append(moves, d.Rung)
		}
	}
	if len(moves) != len(want) {
		t.Fatalf("got moves %v, want %v", moves, want)
	}
	for i := range want {
		if moves[i] != want[i] {
			t.Fatalf("got moves %v, want %v", moves, want)
		}
	}
	// Saturated at the top rung: stays put.
	if d := g.Observe(sat()); d.Changed() || d.Rung != Freeze {
		t.Fatalf("freeze rung moved under saturation: %+v", d)
	}
}

func TestShedOnlyAtShedRungWhileSaturated(t *testing.T) {
	g := New(quick())
	for g.Rung() < Shed {
		if d := g.Observe(sat()); d.Rung < Shed && d.Shed != 0 {
			t.Fatalf("shed request at rung %v", d.Rung)
		}
	}
	if d := g.Observe(sat()); d.Shed != 1 {
		t.Fatalf("want 1 shed per saturated interval at shed rung, got %d", d.Shed)
	}
	// A healthy sample at the shed rung must not shed.
	if d := g.Observe(idle()); d.Shed != 0 {
		t.Fatalf("shed on healthy sample: %+v", d)
	}
}

// TestShedClearsDeadZone pins the bounded-recovery guarantee: at the shed
// rung, a sample in the dead zone between the recovery band and the trip
// band still sheds. Without it the ladder can strand — demand too low to
// escalate, too high to ever count healthy — and never unwind.
func TestShedClearsDeadZone(t *testing.T) {
	g := New(quick())
	for g.Rung() < Shed {
		g.Observe(sat())
	}
	// Desired 1300 on capacity 900: above the 0.8×1.5 recovery band
	// (1080) but below the 1.5 trip (1350); granted 850 keeps the
	// compression ratio under the 0.75 squish trip.
	dead := Signals{Desired: 1300, Granted: 850, Capacity: 900}
	for i := 0; i < 10; i++ {
		d := g.Observe(dead)
		if d.Changed() {
			t.Fatalf("dead-zone sample moved the ladder: %+v", d)
		}
		if d.Saturated {
			t.Fatalf("dead-zone sample judged saturated: %+v", d)
		}
		if d.Shed != 1 {
			t.Fatalf("dead-zone sample at shed rung did not shed: %+v", d)
		}
	}
}

func TestBoundedRecovery(t *testing.T) {
	g := New(quick())
	for g.Rung() < Freeze {
		g.Observe(sat())
	}
	var steps int
	for g.Rung() != Normal {
		d := g.Observe(idle())
		if d.Changed() && d.Rung != d.From-1 {
			t.Fatalf("recovery jumped %v→%v", d.From, d.Rung)
		}
		steps++
		if steps > 100 {
			t.Fatal("ladder wedged above normal under sustained healthy samples")
		}
	}
	// Each rung needs RecoverIntervals healthy samples: 3 rungs × 4.
	if steps != 12 {
		t.Fatalf("recovered in %d healthy samples, want 12", steps)
	}
}

func TestDeadZoneHoldsPosition(t *testing.T) {
	g := New(quick())
	for g.Rung() < Throttle {
		g.Observe(sat())
	}
	// Demand between the recovery band (0.8×1.5 = 1.2×) and the trip band
	// (1.5×), still squished: neither saturated nor healthy.
	mid := Signals{Desired: 1200, Granted: 850, Capacity: 900}
	for i := 0; i < 50; i++ {
		if d := g.Observe(mid); d.Changed() {
			t.Fatalf("dead-zone sample moved the ladder: %+v", d)
		}
	}
	if g.Rung() != Throttle {
		t.Fatalf("rung drifted to %v in the dead zone", g.Rung())
	}
}

func TestSquishRatioGatesDemandTrip(t *testing.T) {
	g := New(quick())
	// Huge demand but fully granted (idle big machine): not saturation.
	rich := Signals{Desired: 2000, Granted: 2000, Capacity: 900}
	for i := 0; i < 20; i++ {
		if d := g.Observe(rich); d.Rung != Normal {
			t.Fatalf("ungrudged demand tripped the ladder: %+v", d)
		}
	}
}

func TestMissAndDemoteTrips(t *testing.T) {
	g := New(Config{TripIntervals: 2, RecoverIntervals: 2, MissTrip: 5, DemoteTrip: 2})
	s := idle()
	s.Misses = 5
	g.Observe(s)
	if d := g.Observe(s); d.Rung != Throttle {
		t.Fatalf("miss trip did not escalate: %+v", d)
	}
	g2 := New(Config{TripIntervals: 2, RecoverIntervals: 2, DemoteTrip: 2})
	s2 := idle()
	s2.Demotions = 3
	g2.Observe(s2)
	if d := g2.Observe(s2); d.Rung != Throttle {
		t.Fatalf("demotion trip did not escalate: %+v", d)
	}
}

func TestLatencyTrip(t *testing.T) {
	g := New(Config{TripIntervals: 2, RecoverIntervals: 2, LatencyTrip: 5 * sim.Millisecond})
	s := idle()
	s.RecentP99 = 8 * sim.Millisecond
	g.Observe(s)
	if d := g.Observe(s); d.Rung != Throttle {
		t.Fatalf("latency trip did not escalate: %+v", d)
	}
}

func TestRetryAfterScalesWithRung(t *testing.T) {
	g := New(quick())
	iv := 10 * sim.Millisecond
	if got := g.RetryAfter(iv); got != iv {
		t.Fatalf("normal-rung retry-after = %v, want one interval", got)
	}
	prev := g.RetryAfter(iv)
	for g.Rung() < Freeze {
		g.Observe(sat())
		if ra := g.RetryAfter(iv); ra < prev {
			t.Fatalf("retry-after shrank while escalating: %v < %v", ra, prev)
		} else {
			prev = ra
		}
	}
	// freeze = rung 3 × RecoverIntervals 4 × 10 ms.
	if got := g.RetryAfter(iv); got != 120*sim.Millisecond {
		t.Fatalf("freeze retry-after = %v, want 120ms", got)
	}
}

// TestRetryAfterPositiveBoundedAtFreeze is the session-storm rig: the slo
// family's steady state is a governed system refusing admissions at
// throttle-or-above, so every refusal carries a RetryAfter hint — and a
// hint that overflows to zero or negative under adversarial tuning would
// tell every refused caller to retry immediately, at the exact moment the
// ladder is at freeze. Drive the ladder to freeze under extreme
// RecoverIntervals and interval values and require the hint to stay in
// (0, MaxRetryAfter].
func TestRetryAfterPositiveBoundedAtFreeze(t *testing.T) {
	for _, ri := range []int{1, 4, 1 << 20, 1 << 40, math.MaxInt} {
		g := New(Config{TripIntervals: 1, RecoverIntervals: ri})
		for g.Rung() < Freeze {
			g.Observe(sat())
		}
		for _, iv := range []sim.Duration{
			-sim.Millisecond, 0, 1, 10 * sim.Millisecond,
			sim.Duration(math.MaxInt64),
		} {
			ra := g.RetryAfter(iv)
			if ra <= 0 {
				t.Fatalf("RecoverIntervals=%d interval=%v: retry-after %v not positive", ri, iv, ra)
			}
			if ra > MaxRetryAfter {
				t.Fatalf("RecoverIntervals=%d interval=%v: retry-after %v exceeds bound %v", ri, iv, ra, MaxRetryAfter)
			}
		}
	}
	// The clamp must not shift well-tuned hints: the quick() freeze value
	// is pinned by TestRetryAfterScalesWithRung above.
	g := New(quick())
	for g.Rung() < Freeze {
		g.Observe(sat())
	}
	if got := g.RetryAfter(10 * sim.Millisecond); got != 120*sim.Millisecond {
		t.Fatalf("clamped freeze retry-after = %v, want 120ms", got)
	}
}

func TestZeroCapacityMachine(t *testing.T) {
	g := New(quick())
	s := Signals{Desired: 100, Granted: 0, Capacity: 0}
	for i := 0; i < 10; i++ {
		g.Observe(s)
	}
	if g.Rung() == Normal {
		t.Fatal("zero-capacity machine with demand never tripped")
	}
}

// FuzzOverloadLadder drives the governor with arbitrary bounded load
// traces and asserts the ladder can never wedge: rungs stay in range,
// every move is a single step, and a long run of clearly healthy samples
// always walks it back to normal.
func FuzzOverloadLadder(f *testing.F) {
	f.Add([]byte{0x00}, uint8(3), uint8(4))
	f.Add([]byte{0xff, 0x80, 0x01, 0x7f}, uint8(1), uint8(1))
	f.Add([]byte{0x10, 0xf0, 0x10, 0xf0, 0x10, 0xf0}, uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, trace []byte, trip, recover uint8) {
		if len(trace) > 4096 {
			trace = trace[:4096]
		}
		cfg := Config{
			TripIntervals:    int(trip%16) + 1,
			RecoverIntervals: int(recover%16) + 1,
			MissTrip:         uint64(trip % 7),
			DemoteTrip:       uint64(recover % 5),
		}
		g := New(cfg)
		for i, b := range trace {
			// Each byte encodes one interval's load: demand scales to
			// [0, 4×capacity); grant is capped at capacity and at demand.
			desired := int(b) * 4
			granted := desired
			if granted > 900 {
				granted = 900
			}
			if i%3 == 1 && granted > 0 {
				granted = granted / 2 // squish harder on some samples
			}
			d := g.Observe(Signals{
				Desired:   desired,
				Granted:   granted,
				Capacity:  900,
				Misses:    uint64(b % 11),
				Demotions: uint64(b % 3),
			})
			if d.Rung < Normal || d.Rung > Freeze {
				t.Fatalf("rung %v out of range", d.Rung)
			}
			if d.Changed() && d.Rung != d.From+1 && d.Rung != d.From-1 {
				t.Fatalf("ladder jumped %v→%v", d.From, d.Rung)
			}
			if d.Shed != 0 && d.Rung < Shed {
				t.Fatalf("shed request at rung %v", d.Rung)
			}
			if g.RetryAfter(10*sim.Millisecond) < 10*sim.Millisecond {
				t.Fatal("retry-after below one interval")
			}
		}
		// Recovery liveness: clearly healthy samples must always unwedge.
		calm := Signals{Desired: 0, Granted: 0, Capacity: 900}
		limit := (int(Freeze)+1)*cfg.RecoverIntervals + 1
		for i := 0; i < limit && g.Rung() != Normal; i++ {
			g.Observe(calm)
		}
		if g.Rung() != Normal {
			t.Fatalf("ladder wedged at %v after %d healthy samples", g.Rung(), limit)
		}
	})
}
