// Package overload implements the supervisory overload governor: an outer
// control loop layered over the paper's per-job feedback allocator. The
// inner loop (internal/core) answers "how much CPU should each job get";
// the governor answers "is the machine as a whole over-committed, and what
// system-wide degradation rung should be active". It is a pure,
// deterministic state machine — the controller feeds it one Signals sample
// per 10 ms interval and acts on the returned Decision — so it can be
// unit-tested and fuzzed in isolation from the kernel.
//
// The ladder has four rungs with one-step transitions and hysteresis:
//
//	normal   — nothing; the inner loop (squish) handles transients.
//	throttle — new admissions are rejected with a retry-after hint.
//	shed     — additionally, the lowest-importance miscellaneous jobs are
//	           killed, one batch per interval, until the recovery band
//	           clears.
//	freeze   — additionally, renegotiations to larger reservations refuse.
//
// Saturation is judged from signals already flowing through the stack:
// the desire-vs-capacity gap, the squish compression ratio, missed period
// boundaries, watchdog demotion rate, and (optionally) the recent p99
// wake→dispatch latency against a configured SLO. Escalation requires
// TripIntervals consecutive saturated samples; de-escalation requires
// RecoverIntervals consecutive healthy samples against a lower recovery
// band, so the ladder cannot chatter at the trip point.
package overload

import "repro/internal/sim"

// Rung is one step of the system-wide brownout ladder.
type Rung int

const (
	// Normal: no governor intervention.
	Normal Rung = iota
	// Throttle: new admissions are rejected with a retry-after hint.
	Throttle
	// Shed: lowest-importance miscellaneous jobs are killed in importance
	// order, one batch per saturated interval.
	Shed
	// Freeze: renegotiations to larger reservations are refused.
	Freeze
)

func (r Rung) String() string {
	switch r {
	case Normal:
		return "normal"
	case Throttle:
		return "throttle"
	case Shed:
		return "shed"
	case Freeze:
		return "freeze"
	default:
		return "rung(?)"
	}
}

// Config tunes the governor's trip points and hysteresis. The zero value
// of any field selects the default.
type Config struct {
	// GapFactor trips the demand test when the summed desire exceeds
	// Capacity × GapFactor. Above 1.0 means "over-committed beyond what
	// squish can absorb gracefully". Default 1.5.
	GapFactor float64
	// SquishTrip is the compression-ratio floor: the demand test only
	// counts as saturation while Granted/Desired has actually fallen below
	// this ratio (jobs are visibly squished, not merely asking). Default
	// 0.75.
	SquishTrip float64
	// MissTrip counts missed period boundaries per interval at or above
	// which the sample is saturated regardless of the demand test.
	// 0 disables the miss test.
	MissTrip uint64
	// DemoteTrip counts watchdog demotions per interval at or above which
	// the sample is saturated. 0 disables the demotion test.
	DemoteTrip uint64
	// LatencyTrip marks the sample saturated when the recent p99
	// wake→dispatch latency (Signals.RecentP99) exceeds it — the SLO-driven
	// trip point. 0 disables the latency test.
	LatencyTrip sim.Duration
	// TripIntervals is how many consecutive saturated samples escalate the
	// ladder by one rung. Default 25 (250 ms at the 10 ms interval).
	TripIntervals int
	// RecoverIntervals is how many consecutive healthy samples de-escalate
	// by one rung — the bounded-recovery clock. Default 50.
	RecoverIntervals int
	// ShedBatch is how many jobs the Shed rung kills per interval while
	// the recovery band has not cleared. Default 1.
	ShedBatch int
}

// withDefaults resolves zero fields to defaults.
func (c Config) withDefaults() Config {
	if c.GapFactor <= 0 {
		c.GapFactor = 1.5
	}
	if c.SquishTrip <= 0 {
		c.SquishTrip = 0.75
	}
	if c.TripIntervals <= 0 {
		c.TripIntervals = 25
	}
	if c.RecoverIntervals <= 0 {
		c.RecoverIntervals = 50
	}
	if c.ShedBatch <= 0 {
		c.ShedBatch = 1
	}
	return c
}

// Signals is one interval's saturation evidence, gathered by the
// controller at the end of its allocation pass.
type Signals struct {
	// Desired is the summed demand in ppt: reservations plus every
	// adaptive job's desire before squishing.
	Desired int
	// Granted is the summed allocation in ppt actually handed out.
	Granted int
	// Capacity is the machine's allocatable budget in ppt (the effective
	// overload threshold across all CPUs).
	Capacity int
	// Misses is the count of missed period boundaries this interval.
	Misses uint64
	// Demotions is the count of watchdog demotions this interval.
	Demotions uint64
	// RecentP99 is the recent p99 wake→dispatch latency, or 0 when SLO
	// accounting is off.
	RecentP99 sim.Duration
}

// Decision is what the controller must do after one Observe call.
type Decision struct {
	// Rung is the ladder position after this sample.
	Rung Rung
	// From is the previous rung; From != Rung means the ladder moved.
	From Rung
	// Shed is how many jobs to shed this interval: nonzero only at Shed
	// rung and above, while the sample has not cleared the recovery band.
	Shed int
	// Saturated reports how this sample was judged.
	Saturated bool
}

// Changed reports whether the ladder moved on this sample.
func (d Decision) Changed() bool { return d.Rung != d.From }

// Governor is the ladder state machine. Not safe for concurrent use; the
// controller owns it and calls Observe from its step.
type Governor struct {
	cfg Config

	rung      Rung
	satStreak int
	okStreak  int
}

// New creates a governor at the normal rung.
func New(cfg Config) *Governor {
	return &Governor{cfg: cfg.withDefaults()}
}

// Rung returns the current ladder position.
func (g *Governor) Rung() Rung { return g.rung }

// Config returns the resolved configuration.
func (g *Governor) Config() Config { return g.cfg }

// saturated judges one sample against the trip band scaled by factor:
// factor 1.0 is the escalation band; the recovery test uses a smaller
// factor so the ladder only unwinds once demand has clearly subsided.
func (g *Governor) saturated(s Signals, factor float64) bool {
	if g.cfg.MissTrip > 0 && s.Misses >= g.cfg.MissTrip {
		return true
	}
	if g.cfg.DemoteTrip > 0 && s.Demotions >= g.cfg.DemoteTrip {
		return true
	}
	if g.cfg.LatencyTrip > 0 && s.RecentP99 > g.cfg.LatencyTrip {
		return true
	}
	if s.Capacity <= 0 {
		// A machine with no allocatable budget is saturated by definition
		// whenever anything wants CPU.
		return s.Desired > 0
	}
	gap := float64(s.Desired) > float64(s.Capacity)*g.cfg.GapFactor*factor
	if !gap {
		return false
	}
	// Demand alone is not enough: jobs must actually be compressed.
	if s.Desired <= 0 {
		return false
	}
	return float64(s.Granted)/float64(s.Desired) < g.cfg.SquishTrip
}

// recoveryBand shrinks the demand trip for the healthy test, providing the
// hysteresis gap between "stop escalating" and "start recovering".
const recoveryBand = 0.8

// Observe feeds one interval's signals and returns what to do. Escalation
// and de-escalation both move exactly one rung per decision (bounded
// recovery), and a streak must rebuild from zero after every move.
func (g *Governor) Observe(s Signals) Decision {
	d := Decision{From: g.rung}
	sat := g.saturated(s, 1.0)
	healthy := !g.saturated(s, recoveryBand)
	switch {
	case sat:
		g.satStreak++
		g.okStreak = 0
	case healthy:
		g.okStreak++
		g.satStreak = 0
	default:
		// The dead zone between the trip and recovery bands: hold position.
		g.satStreak = 0
		g.okStreak = 0
	}
	if sat && g.satStreak >= g.cfg.TripIntervals && g.rung < Freeze {
		g.rung++
		g.satStreak = 0
	}
	if !sat && g.okStreak >= g.cfg.RecoverIntervals && g.rung > Normal {
		g.rung--
		g.okStreak = 0
	}
	d.Rung = g.rung
	d.Saturated = sat
	// The shed rung keeps shedding until the system clears the RECOVERY
	// band, not merely the trip band. Shedding only while fully saturated
	// would strand the ladder in the dead zone between the two bands:
	// demand too low to escalate or shed further, too high to ever count
	// healthy — brownout without bounded recovery. Shedding to the
	// low-water mark guarantees the ladder unwinds once the storm passes.
	if !healthy && g.rung >= Shed {
		d.Shed = g.cfg.ShedBatch
	}
	return d
}

// MaxRetryAfter caps the backpressure hint: past it a longer wait carries
// no information (a storm either clears within seconds or the caller
// should give up), and an unbounded product of interval × rung ×
// RecoverIntervals could overflow into a zero or negative hint under
// adversarial tuning — a poisoned hint that reads as "retry now" to every
// refused caller at once, exactly when the ladder is at freeze.
const MaxRetryAfter = 10 * sim.Second

// RetryAfter computes the backpressure hint handed to throttled callers:
// the governor cannot possibly unwind the current rung in less than
// rung × RecoverIntervals healthy intervals, so that is the earliest a
// retry could be admitted. The hint is always positive and bounded:
// never less than one interval, never more than MaxRetryAfter, for any
// rung × RecoverIntervals × interval combination.
func (g *Governor) RetryAfter(interval sim.Duration) sim.Duration {
	if interval <= 0 || interval > MaxRetryAfter {
		interval = 10 * sim.Millisecond
	}
	maxSteps := int64(MaxRetryAfter / interval) // ≥ 1: interval ≤ MaxRetryAfter
	ri := int64(g.cfg.RecoverIntervals)
	if ri < 1 {
		ri = 1
	}
	if ri > maxSteps {
		// Clamp before multiplying by the rung: RecoverIntervals alone can
		// sit near MaxInt64, where even steps := rung × ri overflows.
		return MaxRetryAfter
	}
	steps := int64(g.rung) * ri // rung ≤ 3, ri ≤ 1e10: no overflow
	if steps < 1 {
		steps = 1
	}
	if steps > maxSteps {
		return MaxRetryAfter
	}
	return interval * sim.Duration(steps)
}
