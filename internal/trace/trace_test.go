package trace_test

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/trace"
)

func buildTracedMachine() (*sim.Engine, *kernel.Kernel, *trace.Recorder) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(5*sim.Millisecond))
	rec := trace.NewRecorder()
	k.SetTracer(rec)
	return eng, k, rec
}

func TestRecorderCountsSegments(t *testing.T) {
	eng, k, rec := buildTracedMachine()
	k.Spawn("hog", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpCompute{Cycles: 1_000_000}
	}))
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()

	sums := rec.Summaries()
	if len(sums) != 1 {
		t.Fatalf("summaries = %d, want 1", len(sums))
	}
	s := sums[0]
	if s.Thread != "hog" || s.Segments == 0 {
		t.Fatalf("bad summary: %+v", s)
	}
	// Total run from the trace must match the thread's accounting.
	th := k.Threads()[0]
	diff := s.TotalRun - th.CPUTime()
	if diff < 0 {
		diff = -diff
	}
	if diff > sim.Millisecond {
		t.Fatalf("trace total %v != accounted %v", s.TotalRun, th.CPUTime())
	}
}

func TestRecorderSchedulingLatency(t *testing.T) {
	eng, k, rec := buildTracedMachine()
	// A sleeper on an idle machine: wake-to-dispatch latency should be
	// tiny (just dispatch overhead).
	phase := 0
	k.Spawn("sleeper", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase%2 == 1 {
			return kernel.OpSleep{D: 10 * sim.Millisecond}
		}
		return kernel.OpCompute{Cycles: 40_000}
	}))
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()

	lat := rec.SchedulingLatencies("sleeper")
	if len(lat) < 30 {
		t.Fatalf("only %d latency samples", len(lat))
	}
	for _, l := range lat {
		if l < 0 {
			t.Fatal("negative latency")
		}
		if l > 0.001 {
			t.Fatalf("idle-machine wake latency %v s, want ≈dispatch cost", l)
		}
	}
	s := rec.Summaries()[0]
	if s.LatencyP99 <= 0 || s.Wakes == 0 {
		t.Fatalf("latency summary empty: %+v", s)
	}
}

func TestRecorderBlockEventsAndCSV(t *testing.T) {
	eng, k, rec := buildTracedMachine()
	q := k.NewQueue("pipe", 1024)
	k.Spawn("cons", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpConsume{Queue: q, Bytes: 512} // blocks forever
	}))
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	k.Stop()

	var sawBlock bool
	for _, ev := range rec.Events() {
		if ev.Kind == trace.Block && ev.Thread == "cons" {
			sawBlock = true
			if !strings.Contains(ev.On, "pipe") {
				t.Fatalf("block event wait queue = %q", ev.On)
			}
		}
	}
	if !sawBlock {
		t.Fatal("no block event recorded")
	}
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "time_s,kind,thread,ran_us,on\n") {
		t.Fatalf("bad CSV header: %q", sb.String()[:40])
	}
	if !strings.Contains(sb.String(), "block,cons") {
		t.Fatal("CSV missing block row")
	}
}

func TestRecorderMaxEventsBound(t *testing.T) {
	eng, k, rec := buildTracedMachine()
	rec.MaxEvents = 10
	k.Spawn("hog", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpCompute{Cycles: 100_000}
	}))
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	if len(rec.Events()) != 10 {
		t.Fatalf("events = %d, want capped at 10", len(rec.Events()))
	}
	if rec.Dropped() == 0 {
		t.Fatal("drop counter not incremented")
	}
	// Aggregates keep working past the bound.
	if rec.Summaries()[0].Segments < 100 {
		t.Fatalf("aggregates stopped at the bound: %+v", rec.Summaries()[0])
	}
}

func TestLatencyUnderLoadReflectsPolicy(t *testing.T) {
	// Under round-robin with 5ms quanta and three hogs, a waking thread
	// can wait for the current quantum to finish: p99 latency should land
	// in the milliseconds, visible in the trace.
	eng, k, rec := buildTracedMachine()
	for i := 0; i < 3; i++ {
		k.Spawn("hog", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
			return kernel.OpCompute{Cycles: 1_000_000}
		}))
	}
	phase := 0
	k.Spawn("waker", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase%2 == 1 {
			return kernel.OpSleep{D: 20 * sim.Millisecond}
		}
		return kernel.OpCompute{Cycles: 40_000}
	}))
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()

	var s trace.Summary
	for _, sum := range rec.Summaries() {
		if sum.Thread == "waker" {
			s = sum
		}
	}
	if s.LatencyP99 < 500*sim.Microsecond {
		t.Fatalf("p99 latency %v too low for a loaded round-robin machine", s.LatencyP99)
	}
	if s.LatencyP99 > 20*sim.Millisecond {
		t.Fatalf("p99 latency %v absurdly high", s.LatencyP99)
	}
}
