// Package trace records scheduling events from the simulated kernel and
// derives the metrics an OS developer would pull from a real trace:
// per-thread run-segment statistics, wake-to-dispatch scheduling latency
// distributions, and a raw event log exportable as CSV.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Kind labels a trace event.
type Kind int

// Event kinds.
const (
	Dispatch Kind = iota
	Deschedule
	Wake
	Block
	Migrate
)

func (k Kind) String() string {
	switch k {
	case Dispatch:
		return "dispatch"
	case Deschedule:
		return "deschedule"
	case Wake:
		return "wake"
	case Block:
		return "block"
	case Migrate:
		return "migrate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded scheduling event.
type Event struct {
	At     sim.Time
	Kind   Kind
	Thread string
	// Ran is the segment length for Deschedule events.
	Ran sim.Duration
	// On is the wait-queue name for Block events.
	On string
	// CPU is the CPU the event happened on (the destination CPU for
	// Migrate events); From is the source CPU of a Migrate event.
	CPU  int
	From int
}

// threadStats accumulates per-thread aggregates.
type threadStats struct {
	// name is the interned thread-name string, shared by every log record
	// of the thread.
	name     string
	segments int
	totalRun sim.Duration
	longest  sim.Duration
	wakes    int
	lastWake sim.Time
	wakePend bool
	// latencies holds wake-to-dispatch samples in seconds. Above the
	// recorder's MaxLatencySamples bound it becomes a uniform reservoir
	// over all latSeen samples, so per-thread memory stays bounded at
	// 10k+ thread scale while percentiles stay representative.
	latencies []float64
	latSeen   int
}

// Recorder implements kernel.Tracer. It keeps the full event log (bounded
// by MaxEvents) plus always-on aggregates.
//
// The hot path is allocation-conscious so that tracing-enabled runs do not
// distort overhead measurements (Figure 8): per-thread stats are cached by
// thread pointer (no string hashing per event), thread-name strings are
// interned once per thread, and the event log grows into a buffer that
// Reset reuses across runs.
type Recorder struct {
	// MaxEvents bounds the raw log; 0 means keep everything. Aggregates
	// are unaffected by the bound. When set, the buffer is preallocated to
	// the bound so logging never reallocates.
	MaxEvents int
	// MaxLatencySamples bounds each thread's wake-to-dispatch latency
	// buffer; past the bound, reservoir sampling keeps a uniform sample
	// of the whole run (deterministic: the reservoir PRNG is fixed-seed).
	// 0 keeps every sample. NewRecorder defaults it to 4096.
	MaxLatencySamples int
	// MultiCPU adds the cpu column to the CSV log. It is off by default so
	// single-CPU traces stay byte-identical to the pre-SMP format.
	MultiCPU bool

	events  []Event
	dropped int
	threads map[string]*threadStats
	// byThread caches the stats entry (and the interned name string) per
	// thread pointer, so the per-event path is two map-free field reads.
	// The generation guards against pooled slot reissue: a recycled thread
	// object must re-resolve its name instead of inheriting the previous
	// occupant's cache entry.
	byThread map[*kernel.Thread]traceCache
	// rng drives reservoir replacement; fixed seed keeps runs replayable.
	rng *sim.RNG
}

// traceCache is one entry of the pointer-keyed stats cache: valid only
// while the thread object's generation still matches.
type traceCache struct {
	st  *threadStats
	gen uint32
}

var _ kernel.Tracer = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		MaxLatencySamples: 4096,
		threads:           make(map[string]*threadStats),
		byThread:          make(map[*kernel.Thread]traceCache),
		rng:               sim.NewRNG(0x7ace5eed),
	}
}

// Reset clears the event log and aggregates while keeping the log buffer's
// capacity, so a recorder can be reused across experiment runs without
// reallocating.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.dropped = 0
	clear(r.threads)
	clear(r.byThread)
}

func (r *Recorder) stats(t *kernel.Thread) *threadStats {
	gen := t.Gen()
	if c, ok := r.byThread[t]; ok && c.gen == gen {
		return c.st
	}
	name := t.Name()
	st, ok := r.threads[name]
	if !ok {
		st = &threadStats{name: name}
		r.threads[name] = st
	}
	r.byThread[t] = traceCache{st: st, gen: gen}
	return st
}

func (r *Recorder) log(at sim.Time, kind Kind, thread string, ran sim.Duration, on string, cpu, from int) {
	if r.MaxEvents > 0 {
		if len(r.events) >= r.MaxEvents {
			r.dropped++
			return
		}
		if cap(r.events) == 0 {
			r.events = make([]Event, 0, r.MaxEvents)
		}
	}
	r.events = append(r.events, Event{At: at, Kind: kind, Thread: thread, Ran: ran, On: on, CPU: cpu, From: from})
}

// addLatency records one wake-to-dispatch sample, reservoir-sampling past
// the recorder's bound so per-thread memory cannot grow without limit.
func (r *Recorder) addLatency(st *threadStats, v float64) {
	st.latSeen++
	if r.MaxLatencySamples <= 0 || len(st.latencies) < r.MaxLatencySamples {
		st.latencies = append(st.latencies, v)
		return
	}
	if j := r.rng.Intn(st.latSeen); j < len(st.latencies) {
		st.latencies[j] = v
	}
}

// OnDispatch implements kernel.Tracer.
func (r *Recorder) OnDispatch(now sim.Time, t *kernel.Thread) {
	st := r.stats(t)
	st.segments++
	if st.wakePend {
		st.wakePend = false
		r.addLatency(st, now.Sub(st.lastWake).Seconds())
	}
	r.log(now, Dispatch, st.name, 0, "", t.CPU(), 0)
}

// OnDeschedule implements kernel.Tracer.
func (r *Recorder) OnDeschedule(now sim.Time, t *kernel.Thread, ran sim.Duration) {
	st := r.stats(t)
	st.totalRun += ran
	if ran > st.longest {
		st.longest = ran
	}
	r.log(now, Deschedule, st.name, ran, "", t.CPU(), 0)
}

// OnWake implements kernel.Tracer.
func (r *Recorder) OnWake(now sim.Time, t *kernel.Thread) {
	st := r.stats(t)
	st.wakes++
	st.lastWake = now
	st.wakePend = true
	r.log(now, Wake, st.name, 0, "", t.CPU(), 0)
}

// OnBlock implements kernel.Tracer. It logs without touching aggregates
// (matching the original recorder), so a thread that only ever blocks does
// not grow a summary row.
func (r *Recorder) OnBlock(now sim.Time, t *kernel.Thread, on string) {
	r.log(now, Block, t.Name(), 0, on, t.CPU(), 0)
}

// OnMigration implements kernel.Tracer. Like OnBlock it logs without
// touching aggregates, so a thread that migrates before ever running does
// not grow a summary row.
func (r *Recorder) OnMigration(now sim.Time, t *kernel.Thread, from, to int) {
	r.log(now, Migrate, t.Name(), 0, "", to, from)
}

// Events returns the raw log (possibly truncated at MaxEvents).
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many events the MaxEvents bound discarded.
func (r *Recorder) Dropped() int { return r.dropped }

// Summary is the per-thread aggregate view.
type Summary struct {
	Thread      string
	Segments    int
	TotalRun    sim.Duration
	MeanSegment sim.Duration
	Longest     sim.Duration
	Wakes       int
	// LatencyP50/P99 are wake-to-dispatch scheduling latencies.
	LatencyP50, LatencyP99 sim.Duration
}

// Summaries returns per-thread aggregates sorted by thread name.
func (r *Recorder) Summaries() []Summary {
	names := make([]string, 0, len(r.threads))
	for n := range r.threads {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Summary, 0, len(names))
	for _, n := range names {
		st := r.threads[n]
		s := Summary{
			Thread:   n,
			Segments: st.segments,
			TotalRun: st.totalRun,
			Longest:  st.longest,
			Wakes:    st.wakes,
		}
		if st.segments > 0 {
			s.MeanSegment = sim.Duration(int64(st.totalRun) / int64(st.segments))
		}
		if len(st.latencies) > 0 {
			s.LatencyP50 = sim.Duration(metrics.Percentile(st.latencies, 50) * float64(sim.Second))
			s.LatencyP99 = sim.Duration(metrics.Percentile(st.latencies, 99) * float64(sim.Second))
		}
		out = append(out, s)
	}
	return out
}

// SchedulingLatencies returns the raw wake-to-dispatch latency samples for
// the named thread, in seconds.
func (r *Recorder) SchedulingLatencies(thread string) []float64 {
	if st, ok := r.threads[thread]; ok {
		return st.latencies
	}
	return nil
}

// WriteCSV dumps the raw event log. With MultiCPU set a cpu column is
// appended (migrations show "from>to"); without it the format — and, on a
// single-CPU machine, every byte — matches the pre-SMP recorder.
func (r *Recorder) WriteCSV(w io.Writer) error {
	header := "time_s,kind,thread,ran_us,on"
	if r.MultiCPU {
		header += ",cpu"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, ev := range r.events {
		var err error
		if r.MultiCPU {
			cpu := fmt.Sprintf("%d", ev.CPU)
			if ev.Kind == Migrate {
				cpu = fmt.Sprintf("%d>%d", ev.From, ev.CPU)
			}
			_, err = fmt.Fprintf(w, "%.6f,%s,%s,%.1f,%s,%s\n",
				ev.At.Seconds(), ev.Kind, ev.Thread,
				float64(ev.Ran)/float64(sim.Microsecond), ev.On, cpu)
		} else {
			_, err = fmt.Fprintf(w, "%.6f,%s,%s,%.1f,%s\n",
				ev.At.Seconds(), ev.Kind, ev.Thread,
				float64(ev.Ran)/float64(sim.Microsecond), ev.On)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// PrintSummaries writes a per-thread table.
func (r *Recorder) PrintSummaries(w io.Writer) {
	fmt.Fprintf(w, "%-12s %9s %12s %12s %12s %7s %12s %12s\n",
		"THREAD", "SEGMENTS", "TOTAL-RUN", "MEAN-SEG", "LONGEST", "WAKES", "LAT-P50", "LAT-P99")
	for _, s := range r.Summaries() {
		fmt.Fprintf(w, "%-12s %9d %12v %12v %12v %7d %12v %12v\n",
			s.Thread, s.Segments, s.TotalRun, s.MeanSegment, s.Longest, s.Wakes,
			s.LatencyP50, s.LatencyP99)
	}
}
