package trace

import (
	"sort"
	"testing"

	"repro/internal/kernel"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// TestLatencyReservoirBounded drives two orders of magnitude more
// wake→dispatch pairs than the bound through one thread and asserts the
// sample buffer stops growing while the reservoir stays representative
// (a uniform sample of a uniform ramp keeps its median near the middle).
func TestLatencyReservoirBounded(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), rbs.New())
	th := k.Spawn("hot", nil)

	r := NewRecorder()
	r.MaxEvents = 1 // keep the log out of the way; aggregates are the point
	const rounds = 400_000
	for i := 0; i < rounds; i++ {
		at := sim.Time(i) * 10
		r.OnWake(at, th)
		r.OnDispatch(at.Add(sim.Duration(i%1000)), th)
	}
	lat := r.SchedulingLatencies("hot")
	if len(lat) != r.MaxLatencySamples {
		t.Fatalf("latency buffer holds %d samples, want exactly the bound %d", len(lat), r.MaxLatencySamples)
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	// Latencies ramp uniformly over [0, 1000) engine units; the reservoir
	// median must sit near 500 units (in seconds at sim resolution).
	mid := (sim.Duration(500)).Seconds()
	if median < mid*0.8 || median > mid*1.2 {
		t.Fatalf("reservoir skewed: median %g, want ≈%g", median, mid)
	}
	s := r.Summaries()
	if len(s) != 1 || s[0].Wakes != rounds {
		t.Fatalf("aggregates lost under sampling: %+v", s)
	}
}

// TestRecorderFootprint10kThreads is the scale regression: a 10k-thread
// machine traced for a simulated second must keep the recorder's memory
// bounded — the event log at its cap and every per-thread latency buffer
// under the sampling bound — rather than growing with dispatch count.
func TestRecorderFootprint10kThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-thread footprint run")
	}
	const (
		threads   = 10_000
		maxEvents = 5_000
	)
	eng := sim.NewEngine()
	p := rbs.New()
	cfg := kernel.DefaultConfig()
	cfg.CPUs = 4
	k := kernel.New(eng, cfg, p)
	r := NewRecorder()
	r.MaxEvents = maxEvents
	k.SetTracer(r)

	op := kernel.OpCompute{Cycles: 1_000_000}
	prog := kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op { return &op })
	for i := 0; i < threads; i++ {
		th := k.Spawn("w", prog)
		if err := p.SetReservation(th, rbs.Reservation{Proportion: 1, Period: 10 * sim.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()

	if len(r.Events()) > maxEvents {
		t.Fatalf("event log grew past its bound: %d > %d", len(r.Events()), maxEvents)
	}
	if r.Dropped() == 0 {
		t.Fatal("run too small to exercise the event cap (no drops)")
	}
	total := 0
	for _, st := range r.threads {
		if len(st.latencies) > r.MaxLatencySamples {
			t.Fatalf("thread %s holds %d latency samples > bound %d", st.name, len(st.latencies), r.MaxLatencySamples)
		}
		total += len(st.latencies)
	}
	// Interned names: 10k same-named threads share one stats row, so the
	// whole run's latency footprint is one bounded buffer.
	if total > r.MaxLatencySamples {
		t.Fatalf("latency samples %d exceed the per-name bound %d", total, r.MaxLatencySamples)
	}
}
