package core

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/progress"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// stepRig builds a controller over n miscellaneous jobs and warms it up so
// that per-interval state (scratch buffers, converged allocations) is in
// steady state before measurement.
func stepRig(n int) (*Controller, sim.Time) {
	eng := sim.NewEngine()
	policy := rbs.New()
	kern := kernel.New(eng, kernel.DefaultConfig(), policy)
	reg := progress.NewRegistry()
	ctl := New(kern, policy, reg, Config{})
	for i := 0; i < n; i++ {
		op := kernel.OpSleep{D: 50 * sim.Millisecond}
		th := kern.Spawn("dummy", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
			return &op
		}))
		ctl.AddMiscellaneous(th)
	}
	ctl.Start()
	kern.Start()
	eng.RunFor(sim.Second)
	return ctl, kern.Now()
}

// TestControllerStepZeroAlloc asserts the acceptance criterion of the
// allocation-free actuation path: after warm-up, a control interval over
// miscellaneous and real-time jobs performs zero heap allocations. (Only
// real-rate jobs may allocate in steady state, when their pressure series
// grows its backing array.)
func TestControllerStepZeroAlloc(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000} {
		ctl, now := stepRig(n)
		if avg := testing.AllocsPerRun(100, func() { ctl.step(now) }); avg != 0 {
			t.Fatalf("n=%d: Controller.step allocates %.1f allocs/op, want 0", n, avg)
		}
	}
}

// TestControllerStepScalesPastFloorLimit pins the graceful floor
// degradation: with more adaptive jobs than the capacity has ppt for their
// floors, step must squish to a scaled floor instead of panicking (the
// legacy behavior at >170 jobs was a squish panic).
func TestControllerStepScalesPastFloorLimit(t *testing.T) {
	ctl, now := stepRig(1000)
	ctl.step(now) // must not panic
	total := 0
	for _, j := range ctl.Jobs() {
		if a := j.Allocated(); a >= 0 {
			total += a
		}
	}
	if total > ctl.EffectiveThreshold() {
		t.Fatalf("allocations sum to %d ppt, above the %d threshold", total, ctl.EffectiveThreshold())
	}
}

// TestControllerStepNegativeCapacity pins the overload corner: missed
// deadlines shrink the effective threshold, and once it drops below the
// already-admitted hard reservations the squish capacity is negative. The
// step must hand adaptive jobs nothing instead of panicking.
func TestControllerStepNegativeCapacity(t *testing.T) {
	eng := sim.NewEngine()
	policy := rbs.New()
	kern := kernel.New(eng, kernel.DefaultConfig(), policy)
	reg := progress.NewRegistry()
	ctl := New(kern, policy, reg, Config{})
	op := kernel.OpSleep{D: 50 * sim.Millisecond}
	prog := kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op { return &op })
	rt := kern.Spawn("rt", prog)
	misc := kern.Spawn("misc", prog)
	ctl.Start()
	if _, err := ctl.AddRealTime(rt, 800, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	ctl.AddMiscellaneous(misc)
	kern.Start()
	eng.RunFor(100 * sim.Millisecond)
	// Misses have driven the threshold below the admitted 800+50 ppt.
	ctl.effectiveThreshold = ctl.cfg.OverloadThreshold / 2
	ctl.step(kern.Now()) // must not panic
	if j, ok := ctl.JobOf(misc); !ok || j.Allocated() != 0 {
		t.Fatalf("adaptive job under negative capacity allocated %d ppt, want 0", mustJob(ctl, misc).Allocated())
	}
}

func mustJob(c *Controller, th *kernel.Thread) *Job {
	j, ok := c.JobOf(th)
	if !ok {
		panic("no job")
	}
	return j
}

// BenchmarkControllerStep measures one control interval (sample, estimate,
// squish, actuate) at growing job counts. The per-step cost is O(n) by
// design — the controller must look at every job — but it must be
// allocation-free after warm-up.
func BenchmarkControllerStep(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ctl, now := stepRig(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctl.step(now)
			}
		})
	}
}
