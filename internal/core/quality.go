package core

import (
	"fmt"

	"repro/internal/sim"
)

// QualityException is the controller's overload notification (§3.1/§4.2):
// when the CPU cannot satisfy a job — its queue stays pinned full while its
// allocation is squished — the controller notifies the job so it can adapt
// by lowering its resource requirements.
type QualityException struct {
	// Job is the affected job.
	Job *Job
	// Time is when the exception was raised.
	Time sim.Time
	// Pressure is the job's saturated progress pressure.
	Pressure float64
	// Desired and Allocated record the squish that triggered the
	// exception.
	Desired, Allocated int
	// Reason distinguishes overload squish from admission rejection and
	// renegotiation.
	Reason string
}

func (q QualityException) String() string {
	return fmt.Sprintf("quality exception at %v: job %s (%s) pressure %.2f desired %d got %d: %s",
		q.Time, q.Job.thread.Name(), q.Job.class, q.Pressure, q.Desired, q.Allocated, q.Reason)
}

// AdmissionError is returned when admission control rejects a real-time
// reservation request (§3.3: "the controller performs admission control by
// rejecting new real-time jobs which request more CPU than is currently
// available").
type AdmissionError struct {
	Requested int // ppt
	Available int // ppt
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("core: admission control rejected reservation of %d ppt (available %d ppt)",
		e.Requested, e.Available)
}

// ReservationError rejects a malformed reservation request — non-positive
// proportion or period — before it can reach the dispatcher. Admitting a
// non-positive proportion would corrupt the incremental admission
// accounting (freeing capacity that was never held), and a non-positive
// period used to surface only as a dispatcher error at actuation time.
type ReservationError struct {
	Proportion int
	Period     sim.Duration
}

func (e *ReservationError) Error() string {
	return fmt.Sprintf("core: invalid reservation: %d ppt over %v (proportion and period must be positive)",
		e.Proportion, e.Period)
}

// OverloadError reports a request refused by the overload governor's
// system-wide brownout ladder: at the throttle rung and above new
// admissions are rejected, and at the freeze rung renegotiations to
// larger reservations are refused as well. Callers get backpressure
// instead of a squished allocation; RetryAfter is the computed hint — the
// earliest instant the ladder could possibly have unwound to normal.
type OverloadError struct {
	// Rung names the ladder position that refused the request
	// ("throttle", "shed", or "freeze").
	Rung string
	// RetryAfter is the backpressure hint; always positive.
	RetryAfter sim.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("core: system overloaded (rung %s); retry after %v", e.Rung, e.RetryAfter)
}

// ActuationError is raised when the dispatcher refuses a reservation the
// controller tried to install. It used to be a panic
// ("core: actuation failed"); now it is counted, surfaced through OnFault,
// and the controller carries on with the job's previous reservation.
type ActuationError struct {
	Job        *Job
	Proportion int
	Period     sim.Duration
	Err        error
}

func (e *ActuationError) Error() string {
	return fmt.Sprintf("core: actuation of %d ppt over %v for job %s failed: %v",
		e.Proportion, e.Period, e.Job.thread.Name(), e.Err)
}

func (e *ActuationError) Unwrap() error { return e.Err }

// Fault is a controller-detected anomaly: a rejected progress sample, a
// failed/dropped/delayed actuation. Faults are counted in Health and fan
// out through the OnFault hook; they never panic the controller.
type Fault struct {
	Time sim.Time
	Job  *Job
	// Kind is the taxonomy slug: "signal-rejected", "actuation-error",
	// "actuation-dropped", "actuation-delayed".
	Kind   string
	Detail string
	Err    error
}

// DegradeLevel is a rung of the graceful-degradation ladder a real-rate
// job descends when its progress signal goes flat: full feedback control,
// then a frozen fallback proportion, then the miscellaneous heuristic.
type DegradeLevel int

const (
	// LevelRealRate is the healthy state: proportion from the PID filter.
	LevelRealRate DegradeLevel = iota
	// LevelFallback holds the last healthy allocation as a fixed
	// proportion; the PID filter is frozen (anti-windup), so promotion
	// resumes from the pre-fault integral without an allocation slam.
	LevelFallback
	// LevelMisc treats the job like a miscellaneous thread: usage-driven
	// constant pressure, ignoring the (untrustworthy) progress signal.
	LevelMisc
)

func (l DegradeLevel) String() string {
	switch l {
	case LevelRealRate:
		return "real-rate"
	case LevelFallback:
		return "fallback"
	case LevelMisc:
		return "misc"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Degradation records one movement on the ladder, in either direction.
type Degradation struct {
	Time     sim.Time
	Job      *Job
	From, To DegradeLevel
	Reason   string
}

// Health is the controller's fault-tolerance counters snapshot.
type Health struct {
	// SignalsRejected counts NaN/Inf pressure samples the sanitizer
	// refused to feed into the estimator.
	SignalsRejected uint64
	// ActuationErrors counts dispatcher-refused reservation installs.
	ActuationErrors uint64
	// ActuationsDropped and ActuationsDelayed count injected actuation
	// faults.
	ActuationsDropped uint64
	ActuationsDelayed uint64
	// Degradations and Recoveries count ladder movements.
	Degradations uint64
	Recoveries   uint64
	// JobsDegraded is the number of jobs currently below LevelRealRate.
	JobsDegraded int
	// Sheds counts jobs killed by the overload governor's shed rung;
	// Throttled counts admissions and renegotiations the governor refused.
	Sheds     uint64
	Throttled uint64
}
