package core

import (
	"fmt"

	"repro/internal/sim"
)

// QualityException is the controller's overload notification (§3.1/§4.2):
// when the CPU cannot satisfy a job — its queue stays pinned full while its
// allocation is squished — the controller notifies the job so it can adapt
// by lowering its resource requirements.
type QualityException struct {
	// Job is the affected job.
	Job *Job
	// Time is when the exception was raised.
	Time sim.Time
	// Pressure is the job's saturated progress pressure.
	Pressure float64
	// Desired and Allocated record the squish that triggered the
	// exception.
	Desired, Allocated int
	// Reason distinguishes overload squish from admission rejection and
	// renegotiation.
	Reason string
}

func (q QualityException) String() string {
	return fmt.Sprintf("quality exception at %v: job %s (%s) pressure %.2f desired %d got %d: %s",
		q.Time, q.Job.thread.Name(), q.Job.class, q.Pressure, q.Desired, q.Allocated, q.Reason)
}

// AdmissionError is returned when admission control rejects a real-time
// reservation request (§3.3: "the controller performs admission control by
// rejecting new real-time jobs which request more CPU than is currently
// available").
type AdmissionError struct {
	Requested int // ppt
	Available int // ppt
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("core: admission control rejected reservation of %d ppt (available %d ppt)",
		e.Requested, e.Available)
}
