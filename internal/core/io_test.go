package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestIOIntensiveConsumerMatchesDiskRate exercises §3.2's I/O-intensive
// class: a data-crunching application consumes a readahead buffer filled by
// the disk; the controller must give it exactly enough CPU "to keep the
// disks busy" — the allocation that matches the device's throughput.
func TestIOIntensiveConsumerMatchesDiskRate(t *testing.T) {
	r := newRig(core.Config{})
	readahead := r.kern.NewQueue("readahead", 1<<20)
	// 4 MB/s device: at 25 cycles/byte the cruncher needs 100M cycles/s
	// = 250 ppt of the 400 MHz CPU.
	disk := &workload.Disk{Queue: readahead, BytesPerSec: 4_000_000, BlockBytes: 16 * 1024}
	dt := r.kern.Spawn("disk", disk)
	cruncher := &workload.Consumer{Queue: readahead, BlockBytes: 4096, CyclesPerByte: 25}
	ct := r.kern.Spawn("cruncher", cruncher)

	// The disk is a device driver: small real-time reservation with a
	// short period so DMA completions are never delayed.
	if _, err := r.ctl.AddRealTime(dt, 20, 5*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.reg.RegisterQueue(dt, readahead, progress.Producer)
	r.reg.RegisterQueue(ct, readahead, progress.Consumer)
	r.ctl.AddRealRate(ct, 10*sim.Millisecond)

	// Competing load that would otherwise take everything.
	hog := r.kern.Spawn("hog", &workload.Hog{Burst: 400_000})
	r.ctl.AddMiscellaneous(hog)

	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()

	if err := readahead.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// The disk must have stayed busy: total transfer ≈ rate × time.
	wantBytes := int64(4_000_000 * 10)
	if readahead.Produced() < wantBytes*85/100 {
		t.Fatalf("disk transferred %d bytes in 10s, want ≈%d (device starved)",
			readahead.Produced(), wantBytes)
	}
	// The cruncher kept up with the device despite the hog.
	if readahead.Consumed() < readahead.Produced()*8/10 {
		t.Fatalf("cruncher lagging the disk: %d of %d", readahead.Consumed(), readahead.Produced())
	}
	// And its discovered allocation is near the 250 ppt requirement.
	j, _ := r.ctl.JobOf(ct)
	if j.Allocated() < 180 || j.Allocated() > 380 {
		t.Fatalf("cruncher allocation = %d ppt, want ≈250", j.Allocated())
	}
	// The hog got the leftover, not nothing.
	if hog.CPUTime().Seconds() < 2 {
		t.Fatalf("hog starved: %v", hog.CPUTime())
	}
}

// TestIOIntensiveWithSlowDiskReclaims: when the disk is the bottleneck the
// cruncher's allocation must track the device rate down, not the queue
// pressure up.
func TestIOIntensiveWithSlowDiskReclaims(t *testing.T) {
	r := newRig(core.Config{})
	readahead := r.kern.NewQueue("readahead", 1<<20)
	// A slow 400 kB/s device: the cruncher needs only 25 ppt.
	disk := &workload.Disk{Queue: readahead, BytesPerSec: 400_000, BlockBytes: 16 * 1024}
	dt := r.kern.Spawn("disk", disk)
	cruncher := &workload.Consumer{Queue: readahead, BlockBytes: 4096, CyclesPerByte: 25}
	ct := r.kern.Spawn("cruncher", cruncher)
	if _, err := r.ctl.AddRealTime(dt, 20, 5*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.reg.RegisterQueue(dt, readahead, progress.Producer)
	r.reg.RegisterQueue(ct, readahead, progress.Consumer)
	j := r.ctl.AddRealRate(ct, 10*sim.Millisecond)

	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()

	if j.Allocated() > 120 {
		t.Fatalf("cruncher holds %d ppt for a 25 ppt workload", j.Allocated())
	}
	if readahead.Consumed() < readahead.Produced()*8/10 {
		t.Fatalf("cruncher lagging a slow disk: %d of %d", readahead.Consumed(), readahead.Produced())
	}
}
