package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestSquishNoOverloadPassesThrough(t *testing.T) {
	out := squish([]int{100, 200, 300}, ones(3), 700, 5)
	for i, want := range []int{100, 200, 300} {
		if out[i] != want {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestSquishProportionalWithEqualWeights(t *testing.T) {
	// §3.3: "squishes each ... job's proposed allocation by an amount
	// proportional to the allocation."
	out := squish([]int{600, 300}, ones(2), 600, 5)
	if sum(out) > 600 {
		t.Fatalf("sum %d > capacity", sum(out))
	}
	// 2:1 desires should stay ≈2:1 after proportional squish.
	ratio := float64(out[0]) / float64(out[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("squished ratio = %v (out=%v), want ≈2", ratio, out)
	}
}

func TestSquishEqualDesiresEqualOut(t *testing.T) {
	out := squish([]int{800, 800, 800}, ones(3), 600, 5)
	if sum(out) > 600 {
		t.Fatalf("sum %d > capacity", sum(out))
	}
	for _, o := range out[1:] {
		if o != out[0] {
			t.Fatalf("equal desires squished unequally: %v", out)
		}
	}
}

func TestSquishImportanceGivesMore(t *testing.T) {
	// "For two jobs that both desire more than the available CPU, the
	// more important job will end up with the higher percentage."
	out := squish([]int{800, 800}, []float64{4, 1}, 600, 5)
	if sum(out) > 600 {
		t.Fatalf("sum %d > capacity", sum(out))
	}
	if out[0] <= out[1] {
		t.Fatalf("important job did not win: %v", out)
	}
	// "a more-important job cannot starve a less important job."
	if out[1] < 5 {
		t.Fatalf("less important job starved: %v", out)
	}
}

func TestSquishRespectsFloor(t *testing.T) {
	out := squish([]int{900, 900, 900, 10}, ones(4), 500, 10)
	if sum(out) > 500 {
		t.Fatalf("sum %d > capacity", sum(out))
	}
	for i, o := range out {
		if o < 10 {
			t.Fatalf("job %d below floor: %v", i, out)
		}
	}
}

func TestSquishFloorsRaiseTinyDesires(t *testing.T) {
	out := squish([]int{2, 100}, ones(2), 500, 5)
	if out[0] != 5 {
		t.Fatalf("desire below floor not raised: %v", out)
	}
}

func TestSquishPanicsWhenFloorsDontFit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when floors exceed capacity")
		}
	}()
	squish([]int{100, 100, 100}, ones(3), 20, 10)
}

func TestSquishExtremeWeights(t *testing.T) {
	out := squish([]int{500, 500}, []float64{1000, 0.001}, 400, 5)
	if sum(out) > 400 {
		t.Fatalf("sum %d > capacity", sum(out))
	}
	if out[0] < 300 {
		t.Fatalf("overwhelming importance got %v", out)
	}
	if out[1] < 5 {
		t.Fatalf("tiny importance starved: %v", out)
	}
}

// Property: output never exceeds desire (after the floor raise), never
// drops below floor, and the total never exceeds capacity.
func TestPropertySquishInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 1 + rng.Intn(8)
		desires := make([]int, n)
		weights := make([]float64, n)
		for i := range desires {
			desires[i] = rng.Intn(950)
			weights[i] = 0.25 + 4*rng.Float64()
		}
		const floor = 5
		capacity := floor*n + rng.Intn(900)
		out := squish(desires, weights, capacity, floor)
		total := 0
		for i, o := range out {
			d := desires[i]
			if d < floor {
				d = floor
			}
			if o > d || o < floor {
				t.Logf("violation: out=%v desires=%v floor=%d", out, desires, floor)
				return false
			}
			total += o
		}
		return total <= capacity || total == sumWithFloor(desires, floor)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- edge cases: floors vs capacity, degenerate weights, convergence ---

func TestSquishFloorsExactlyFillCapacity(t *testing.T) {
	// floor·n == capacity: every job collapses to its floor and the rounds
	// converge with everyone frozen (the all-frozen path).
	out := squish([]int{100, 100}, ones(2), 10, 5)
	if out[0] != 5 || out[1] != 5 {
		t.Fatalf("out = %v, want [5 5]", out)
	}
}

func TestSquishFloorTimesNExceedingCapacityPanics(t *testing.T) {
	// floor·n > capacity is a caller bug: the controller scales the floor
	// down before squishing (see step), so squish itself refuses.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when floor*n exceeds capacity")
		}
	}()
	squish([]int{500, 500, 500}, ones(3), 14, 5)
}

func TestSquishZeroFloorAllowsFullSquish(t *testing.T) {
	// The scaled floor can reach zero when capacity cannot give every job
	// one ppt; the squish must still converge and respect capacity.
	out := squish([]int{800, 800, 800}, ones(3), 2, 0)
	if sum(out) > 2 {
		t.Fatalf("sum %d > capacity 2 (out=%v)", sum(out), out)
	}
	for _, o := range out {
		if o < 0 {
			t.Fatalf("negative allocation: %v", out)
		}
	}
}

func TestSquishZeroWeightDoesNotNaN(t *testing.T) {
	// Importance weights are validated positive at the API boundary, but
	// the arithmetic must survive a zero anyway (no ±Inf mass, no NaN
	// cuts): the zero-weight job is treated as minimally important.
	out := squish([]int{500, 500}, []float64{0, 1}, 400, 5)
	if sum(out) > 400 {
		t.Fatalf("sum %d > capacity", sum(out))
	}
	for i, o := range out {
		if o < 5 || o > 500 {
			t.Fatalf("job %d out of range: %v", i, out)
		}
	}
	// The zero-weight job gives up (at least almost) everything.
	if out[0] > out[1] {
		t.Fatalf("zero-weight job won the squish: %v", out)
	}
}

func TestSquishEqualWeightsEqualDesiresStayEqual(t *testing.T) {
	for _, capacity := range []int{30, 100, 399, 900} {
		out := squish([]int{400, 400, 400}, ones(3), capacity, 5)
		if sum(out) > capacity && capacity >= 15 {
			t.Fatalf("cap %d: sum %d", capacity, sum(out))
		}
		// Shave order may skew outputs by one ppt; no more.
		for _, o := range out[1:] {
			if o > out[0]+1 || o < out[0]-1 {
				t.Fatalf("cap %d: equal desires diverged: %v", capacity, out)
			}
		}
	}
}

func TestSquishIntoMatchesSquish(t *testing.T) {
	// The in-place variant used by the controller's zero-alloc step must
	// agree with the allocating wrapper for arbitrary inputs.
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 1 + rng.Intn(10)
		desires := make([]int, n)
		weights := make([]float64, n)
		for i := range desires {
			desires[i] = rng.Intn(900)
			weights[i] = 0.1 + 5*rng.Float64()
		}
		const floor = 5
		capacity := floor*n + rng.Intn(800)
		want := squish(desires, weights, capacity, floor)
		out := make([]int, n)
		frozen := make([]bool, n)
		// Dirty scratch must not leak into the result.
		for i := range out {
			out[i] = -999
			frozen[i] = true
		}
		squishInto(out, frozen, desires, weights, capacity, floor)
		for i := range want {
			if out[i] != want[i] {
				t.Logf("mismatch at %d: squish=%v squishInto=%v", i, want, out)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sumWithFloor(ds []int, floor int) int {
	s := 0
	for _, d := range ds {
		if d < floor {
			d = floor
		}
		s += d
	}
	return s
}

// Property: with equal weights, squished outputs preserve the order of
// desires (monotonicity).
func TestPropertySquishMonotoneInDesire(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 2 + rng.Intn(6)
		desires := make([]int, n)
		for i := range desires {
			desires[i] = 5 + rng.Intn(900)
		}
		out := squish(desires, ones(n), 5*n+300, 5)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				// Integer cut rounding may skew a pair by one ppt.
				if desires[i] > desires[j] && out[i] < out[j]-1 {
					t.Logf("order flip: desires=%v out=%v", desires, out)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
