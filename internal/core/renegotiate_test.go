package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRenegotiateGrowWithinCapacity(t *testing.T) {
	r := newRig(core.Config{})
	th := r.kern.Spawn("rt", &workload.Hog{Burst: 400_000})
	j, err := r.ctl.AddRealTime(th, 200, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r.start()
	r.run(2 * sim.Second)
	used := th.CPUTime()
	if err := r.ctl.Renegotiate(j, 500); err != nil {
		t.Fatalf("renegotiation within capacity rejected: %v", err)
	}
	r.run(2 * sim.Second)
	r.kern.Stop()
	grew := (th.CPUTime() - used).Seconds() / 2
	if grew < 0.45 {
		t.Fatalf("post-renegotiation share = %.3f, want ≈0.50", grew)
	}
}

// TestRenegotiateExitDuringActuationSkipsEvent reproduces a bug the churn
// harness flushed out: actuating a renegotiation can run the machine —
// SetReservation wakes the napping thread, the wake preempts, and the
// dispatched program may exit — all before the actuation event fires. The
// event for a thread that retired mid-actuation must be suppressed:
// observers are promised nothing fires after retirement.
func TestRenegotiateExitDuringActuationSkipsEvent(t *testing.T) {
	r := newRig(core.Config{})
	exitNow := false
	th := r.kern.Spawn("victim", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		if exitNow {
			return kernel.OpExit{}
		}
		// Exactly one period's budget (100 ppt of 10 ms at 400 MHz = 1 ms):
		// the burst completes just as the budget empties, so the thread
		// naps at an op boundary and consults its program on wake.
		return kernel.OpCompute{Cycles: 400_000}
	}))
	j, err := r.ctl.AddRealTime(th, 100, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r.kern.Spawn("hog", &workload.Hog{Burst: 400_000}) // keeps the CPU busy
	r.start()
	// Run into the middle of a period: the victim has burned its 1 ms
	// budget and naps until the next period boundary.
	r.run(5500 * sim.Microsecond)
	if got := th.State(); got != kernel.StateSleeping {
		t.Fatalf("victim not napping before renegotiation: %v", got)
	}

	var actuated []*kernel.Thread
	r.ctl.OnActuate(func(aj *core.Job, prop int, period sim.Duration, now sim.Time) {
		actuated = append(actuated, aj.Thread())
	})
	// Growing the reservation re-arms the budget and wakes the napper; the
	// wake preempts the hog, the victim is dispatched, and its program
	// exits — inside the actuate call.
	exitNow = true
	if err := r.ctl.Renegotiate(j, 300); err != nil {
		t.Fatalf("renegotiation rejected: %v", err)
	}
	if got := th.State(); got != kernel.StateExited {
		t.Fatalf("victim did not exit during actuation: %v (the scenario no longer exercises the race)", got)
	}
	for _, at := range actuated {
		if at.State() == kernel.StateExited {
			t.Fatalf("actuation event fired for retired thread %v", at)
		}
	}
	// The machine stays coherent: the job is reaped at the next interval
	// and the freed reservation is admittable again.
	r.run(20 * sim.Millisecond)
	if _, ok := r.ctl.JobOf(th); ok {
		t.Fatal("exited thread's job not reaped")
	}
	nt := r.kern.Spawn("next", &workload.Hog{Burst: 400_000})
	if _, err := r.ctl.AddRealTime(nt, 300, 10*sim.Millisecond); err != nil {
		t.Fatalf("freed reservation not admittable: %v", err)
	}
}

func TestRenegotiateRejectsOverCapacity(t *testing.T) {
	r := newRig(core.Config{})
	a := r.kern.Spawn("a", &workload.Hog{Burst: 400_000})
	b := r.kern.Spawn("b", &workload.Hog{Burst: 400_000})
	ja, err := r.ctl.AddRealTime(a, 400, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ctl.AddRealTime(b, 400, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	err = r.ctl.Renegotiate(ja, 600)
	if err == nil {
		t.Fatal("oversubscribing renegotiation accepted")
	}
	if _, ok := err.(*core.AdmissionError); !ok {
		t.Fatalf("error type = %T", err)
	}
	// Shrinking must always succeed and free capacity for the other job.
	if err := r.ctl.Renegotiate(ja, 100); err != nil {
		t.Fatalf("shrink rejected: %v", err)
	}
	jb, _ := r.ctl.JobOf(b)
	if err := r.ctl.Renegotiate(jb, 600); err != nil {
		t.Fatalf("grow into freed capacity rejected: %v", err)
	}
}

func TestRenegotiateRejectsAdaptiveJobs(t *testing.T) {
	r := newRig(core.Config{})
	th := r.kern.Spawn("misc", &workload.Hog{Burst: 400_000})
	j := r.ctl.AddMiscellaneous(th)
	if err := r.ctl.Renegotiate(j, 100); err == nil {
		t.Fatal("renegotiating a miscellaneous job should fail")
	}
}

// TestPipelineStagesAutoBalance runs a four-stage pipeline with wildly
// different per-stage costs; every stage is a real-rate job (middle stages
// carry two metrics each, §3.2's "pipelines of threads by pairwise
// comparison") and the controller must find all four allocations.
func TestPipelineStagesAutoBalance(t *testing.T) {
	r := newRig(core.Config{})
	q1 := r.kern.NewQueue("q1", 1<<20)
	q2 := r.kern.NewQueue("q2", 1<<20)
	q3 := r.kern.NewQueue("q3", 1<<20)

	src := &workload.Producer{Queue: q1, CyclesPerBlock: 400_000, Rate: workload.ConstantRate(25)}
	// ≈1 MB/s through the pipeline; per-stage cycles/byte: 80, 20, 40
	// → needs ≈200, 50, 100 ppt.
	s1 := &workload.Stage{In: q1, Out: q2, BlockBytes: 4096, CyclesPerByte: 80}
	s2 := &workload.Stage{In: q2, Out: q3, BlockBytes: 4096, CyclesPerByte: 20}
	sink := &workload.Consumer{Queue: q3, BlockBytes: 4096, CyclesPerByte: 40}

	st := r.kern.Spawn("src", src)
	t1 := r.kern.Spawn("s1", s1)
	t2 := r.kern.Spawn("s2", s2)
	t3 := r.kern.Spawn("sink", sink)

	if _, err := r.ctl.AddRealTime(st, 100, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.reg.RegisterQueue(st, q1, progress.Producer)
	r.reg.RegisterQueue(t1, q1, progress.Consumer)
	r.reg.RegisterQueue(t1, q2, progress.Producer)
	r.reg.RegisterQueue(t2, q2, progress.Consumer)
	r.reg.RegisterQueue(t2, q3, progress.Producer)
	r.reg.RegisterQueue(t3, q3, progress.Consumer)
	j1 := r.ctl.AddRealRate(t1, 10*sim.Millisecond)
	j2 := r.ctl.AddRealRate(t2, 10*sim.Millisecond)
	j3 := r.ctl.AddRealRate(t3, 10*sim.Millisecond)

	r.start()
	r.run(15 * sim.Second)
	r.kern.Stop()

	// Data flowed end to end at roughly the source rate.
	if q3.Consumed() < q1.Produced()*7/10 {
		t.Fatalf("pipeline lost throughput: %d in, %d out", q1.Produced(), q3.Consumed())
	}
	// Stage allocations reflect their cost ratios (80:20:40).
	a1, a2, a3 := j1.Allocated(), j2.Allocated(), j3.Allocated()
	if a1 < a3 || a3 < a2 {
		t.Fatalf("allocation order wrong: s1=%d s2=%d sink=%d, want s1 > sink > s2", a1, a2, a3)
	}
	if a1 < 120 || a1 > 350 {
		t.Fatalf("heavy stage allocation = %d, want ≈200", a1)
	}
	for _, q := range []interface{ CheckConservation() error }{q1, q2, q3} {
		if err := q.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
}
