// Package core implements the paper's contribution: a feedback-driven
// proportion allocator for real-rate scheduling. The controller
// periodically samples each job's progress (via the symbiotic-interface
// registry), filters the summed progress pressures through a per-job PID
// (the G of Figure 3), converts cumulative pressure into a proportion
// (Figure 4: P′ = k·Q_t, or P − C when the allocation was demonstrably too
// generous), performs admission control for real-time reservations, and
// squishes real-rate/miscellaneous allocations under overload using
// importance-weighted fair share.
//
// The controller runs as a simulated thread with its own reservation, so
// its overhead — base cost plus a per-controlled-job cost each interval —
// competes for the CPU exactly as the paper's user-level prototype did
// (Figure 5 measures precisely this).
package core

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/pid"
	"repro/internal/progress"
	"repro/internal/rbs"
	"repro/internal/sim"
)

const pptDenom = rbs.PPT

// Config holds the controller's tuning. Zero fields take the defaults the
// experiments use (see DefaultConfig).
type Config struct {
	// Interval is the controller period. The prototype samples at 100 Hz
	// (10 ms) — "keeping the sampling rate reasonably high (100 Hz in our
	// prototype)".
	Interval sim.Duration
	// OverloadThreshold is the admission/squish ceiling in ppt. The paper
	// reserves spare capacity "to cover the overhead of scheduling and
	// interrupt handling" by setting it below 1.
	OverloadThreshold int
	// K is the pressure-to-proportion scaling factor (the k of Figure 4),
	// in ppt per unit of cumulative pressure.
	K float64
	// PID configures the per-job pressure filter G.
	PID pid.Config
	// ReclaimFraction triggers the P−C reduction: a job that used less
	// than this fraction of its allocation is "too generous".
	ReclaimFraction float64
	// ReclaimC is the constant reduction (ppt) applied to over-generous
	// allocations.
	ReclaimC int
	// MinProportion is the non-zero allocation floor: "It avoids
	// starvation by ensuring that every job in the system is assigned a
	// non-zero percentage of the CPU."
	MinProportion int
	// MaxProportion caps any single adaptive job's actuated allocation.
	MaxProportion int
	// DesireCap bounds the pre-squish desire. It is deliberately far above
	// MaxProportion: under overload a real-rate job's desire keeps growing
	// past the constant desire of miscellaneous hogs ("the consumer's
	// [pressure] grows as it falls further behind", §4.2), and the squish
	// arbitrates on desires — so desires must be able to wind up beyond
	// what any one job could actually be granted.
	DesireCap int
	// DefaultPeriod is assigned when a job does not specify one (30 ms in
	// the prototype).
	DefaultPeriod sim.Duration
	// MiscPressure is the constant pressure applied to miscellaneous jobs.
	MiscPressure float64
	// InteractivePeriod is the small period given to interactive jobs.
	InteractivePeriod sim.Duration
	// InteractiveHeadroom scales the burst estimate into a proportion.
	InteractiveHeadroom float64
	// InteractiveImportance is the default fair-share weight of
	// interactive jobs. Their desire is need-based (burst/period) rather
	// than wound-up, so without extra weight a greedy miscellaneous hog
	// squishes them below their bursts; the paper singles interactive
	// jobs out for "reasonable performance" (§1, §3.2).
	InteractiveImportance float64

	// PeriodAdaptation enables the §3.3 period heuristic (disabled in all
	// the paper's experiments, and by default here).
	PeriodAdaptation bool
	// MinBudgetTicks is the quantization target: budgets below this many
	// dispatch ticks double the period.
	MinBudgetTicks int
	// MinPeriod/MaxPeriod bound period adaptation.
	MinPeriod, MaxPeriod sim.Duration
	// JitterThreshold is the per-period fill oscillation (fraction of the
	// buffer) above which the period halves.
	JitterThreshold float64

	// BaseCost and PerJobCost model the controller's own execution cost:
	// each interval it computes BaseCost + PerJobCost per controlled job.
	// Calibrated to Figure 5: y = .00066x + .00057 of a 400 MHz CPU at
	// 100 Hz means ≈2280 + 2640·n cycles.
	BaseCost, PerJobCost sim.Cycles
	// Reservation is the controller thread's own reservation.
	Reservation rbs.Reservation

	// OverloadStreak is how many consecutive saturated, squished intervals
	// raise a quality exception.
	OverloadStreak int

	// WatchdogIntervals is how many consecutive flat (or rejected)
	// progress samples demote a real-rate job one rung down the
	// degradation ladder. Negative disables the watchdog.
	WatchdogIntervals int
	// WatchdogRecovery is how many consecutive moving samples promote a
	// degraded job one rung back up.
	WatchdogRecovery int
}

// DefaultConfig returns the calibration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		Interval:          10 * sim.Millisecond,
		OverloadThreshold: 900,
		K:                 2000,
		// Gains sized so the proportional leg alone can double a mid-range
		// allocation within a few control intervals, while the integral
		// leg carries the steady-state allocation. The asymmetric integral
		// range is the anti-windup guard: a long queue-empty stretch must
		// not bank negative pressure that would delay the response to the
		// next burst.
		PID: pid.Config{
			Kp: 1.0, Ki: 4.0, Kd: 0.05,
			IntegralLo: -0.02, IntegralHi: 0.5,
			DerivativeTau: 0.03,
			InputTau:      0.04,
			OutLo:         0, OutHi: 2.0,
		},
		ReclaimFraction:       0.5,
		ReclaimC:              20,
		MinProportion:         5,
		MaxProportion:         950,
		DesireCap:             4000,
		DefaultPeriod:         30 * sim.Millisecond,
		MiscPressure:          0.4,
		InteractivePeriod:     30 * sim.Millisecond,
		InteractiveHeadroom:   1.5,
		InteractiveImportance: 8,
		PeriodAdaptation:      false,
		MinBudgetTicks:        2,
		MinPeriod:             5 * sim.Millisecond,
		MaxPeriod:             200 * sim.Millisecond,
		JitterThreshold:       0.3,
		BaseCost:              2280,
		PerJobCost:            2640,
		Reservation:           rbs.Reservation{Proportion: 50, Period: 10 * sim.Millisecond},
		OverloadStreak:        25,
		WatchdogIntervals:     50,
		WatchdogRecovery:      5,
	}
}

// FaultInjector is the controller's slice of the fault-injection seam (see
// internal/faults): consulted when sampling each real-rate job's pressure
// and before each actuation. Nil (the default) keeps both hot paths a
// single branch.
type FaultInjector interface {
	// PerturbPressure corrupts a job's summed progress pressure; it may
	// return NaN/±Inf, which the sanitizer then rejects.
	PerturbPressure(target string, now sim.Time, p float64) float64
	// ActuationFault reports whether the actuation for the named job must
	// be dropped or deferred to the next control interval.
	ActuationFault(target string, now sim.Time) (drop, delay bool)
}

// delayedActuation is a reservation push deferred by a DelayActuation
// fault, applied at the start of the next control interval.
type delayedActuation struct {
	job    *Job
	prop   int
	period sim.Duration
}

// Controller is the feedback-driven proportion allocator.
type Controller struct {
	cfg    Config
	kern   *kernel.Kernel
	policy *rbs.Policy
	reg    *progress.Registry

	jobs  []*Job
	byThr map[*kernel.Thread]*Job

	thread   *kernel.Thread
	nextWake sim.Time
	phase    int
	// external marks a controller driven by the sharded control plane
	// (internal/ctlplane) instead of its own thread; Start panics then.
	external bool

	// computeOp/sleepOp are reused every control interval so the
	// controller's 100 Hz program emits ops without boxing.
	computeOp kernel.OpCompute
	sleepOp   kernel.OpSleepUntil

	// admitted sums the proportions of real-time and aperiodic real-time
	// reservations plus the controller's own.
	admitted int
	// adaptive counts jobs of adaptive classes, so the admission headroom
	// (available) is O(1) instead of a scan over every job.
	adaptive int
	// ncpu is the machine's CPU count; ceiling is the machine-wide
	// admission/squish ceiling, OverloadThreshold × ncpu. The controller
	// is phrased against capacity in ppt, so the same control law drives
	// one CPU or many — only the ceiling scales.
	ncpu    int
	ceiling int
	// effectiveThreshold shrinks when the dispatcher reports missed
	// deadlines ("the RBS ... notifies the controller which can increase
	// the amount of spare capacity by reducing the admission threshold").
	effectiveThreshold int
	lastMisses         uint64

	exceptions []QualityException
	onQuality  func(QualityException)
	onStep     func(now sim.Time)
	// onActuate observes every reservation change pushed to the dispatcher.
	// Nil (the default) keeps actuate's hot path a single branch.
	onActuate func(j *Job, prop int, period sim.Duration, now sim.Time)

	// faults is the optional fault injector; nil in healthy runs.
	faults FaultInjector
	// onFault/onDegrade/onRecover surface fault-tolerance events to the
	// observer layer.
	onFault   func(Fault)
	onDegrade func(Degradation)
	onRecover func(Degradation)
	// health accumulates the fault-tolerance counters.
	health Health
	// delayed holds actuations deferred by DelayActuation faults until
	// the next control interval.
	delayed []delayedActuation

	// gov is the optional supervisory overload governor (the outer control
	// loop over this inner one); nil keeps every hot path a single branch.
	gov *overload.Governor
	// onShed fires for every job the shed rung kills, before the kill, so
	// observers can still resolve the job's threads.
	onShed func(j *Job, now sim.Time)
	// onRung fires on every ladder movement with the signals that drove it.
	onRung func(now sim.Time, from, to overload.Rung, sig overload.Signals)
	// sloProbe, when set, supplies the recent p99 wake→dispatch latency for
	// the governor's SLO-driven trip point.
	sloProbe func() sim.Duration
	// lastEpochAt is when the governor last observed an epoch's signals.
	// AdmissionVeto compares it against the clock to detect a stalled
	// control plane (see the stall guard there).
	lastEpochAt sim.Time
	// govLastMisses/govLastDemotions turn the cumulative miss and demotion
	// totals into per-interval deltas for the governor's signals.
	govLastMisses    uint64
	govLastDemotions uint64

	steps      uint64
	actuations uint64
	// samples counts adaptive-job feedback samples (pass-1 evaluations),
	// the denominator of the event-driven mode's skip ratio.
	samples uint64

	// onJobAdd/onJobRemove announce membership changes to an external
	// control plane (internal/ctlplane), which owns per-shard job lists.
	// Nil outside sharded/event-driven configurations.
	onJobAdd    func(j *Job)
	onJobRemove func(j *Job)

	// Persistent per-interval scratch: step reslices these to zero length
	// each interval instead of allocating, so a controller tick is
	// allocation-free after warm-up (asserted by TestControllerStepZeroAlloc).
	squishable []*Job
	desireBuf  []int
	weightBuf  []float64
	allocBuf   []int
	frozenBuf  []bool

	// recycle pools Job objects, their PID filters, and their pressure
	// series across remove/add cycles; see SetRecycle.
	recycle bool
	// jobSlab backs new Job allocation; freeJob heads the free list of
	// recycled ones. retired parks removed jobs until the next epoch
	// prologue flushes them to the free list: a job removed mid-step (a
	// wake during actuation can dispatch a program that exits) may still
	// be referenced by that step's squishable scratch, so reissue must
	// wait for the epoch boundary.
	jobSlab []Job
	freeJob *Job
	retired []*Job
	// freePID pools the per-job PID filters; every pooled filter was
	// built from cfg.PID, so Reset restores the fresh-filter state.
	freePID []*pid.Controller
	// fillNames interns thread-name → "<name>.pressure" so an admission
	// storm of interned-name threads concatenates each distinct name once.
	fillNames map[string]string
	// vetoErr memoizes one OverloadError per rung: the rung string and
	// retry-after hint are pure per rung at a fixed interval, and callers
	// only ever read the fields, so an admission storm shares one object
	// per rung instead of allocating per refusal.
	vetoErr [overload.Freeze + 1]*OverloadError
}

// New creates a controller for the given machine, dispatcher, and progress
// registry. Call Start to spawn its thread.
func New(kern *kernel.Kernel, policy *rbs.Policy, reg *progress.Registry, cfg Config) *Controller {
	def := DefaultConfig()
	if cfg.Interval <= 0 {
		cfg.Interval = def.Interval
	}
	if cfg.OverloadThreshold == 0 {
		cfg.OverloadThreshold = def.OverloadThreshold
	}
	if cfg.K == 0 {
		cfg.K = def.K
	}
	if cfg.PID == (pid.Config{}) {
		cfg.PID = def.PID
	}
	if cfg.ReclaimFraction == 0 {
		cfg.ReclaimFraction = def.ReclaimFraction
	}
	if cfg.ReclaimC == 0 {
		cfg.ReclaimC = def.ReclaimC
	}
	if cfg.MinProportion == 0 {
		cfg.MinProportion = def.MinProportion
	}
	if cfg.MaxProportion == 0 {
		cfg.MaxProportion = def.MaxProportion
	}
	if cfg.DesireCap == 0 {
		cfg.DesireCap = def.DesireCap
	}
	if cfg.DefaultPeriod == 0 {
		cfg.DefaultPeriod = def.DefaultPeriod
	}
	if cfg.MiscPressure == 0 {
		cfg.MiscPressure = def.MiscPressure
	}
	if cfg.InteractivePeriod == 0 {
		cfg.InteractivePeriod = def.InteractivePeriod
	}
	if cfg.InteractiveHeadroom == 0 {
		cfg.InteractiveHeadroom = def.InteractiveHeadroom
	}
	if cfg.InteractiveImportance == 0 {
		cfg.InteractiveImportance = def.InteractiveImportance
	}
	if cfg.MinBudgetTicks == 0 {
		cfg.MinBudgetTicks = def.MinBudgetTicks
	}
	if cfg.MinPeriod == 0 {
		cfg.MinPeriod = def.MinPeriod
	}
	if cfg.MaxPeriod == 0 {
		cfg.MaxPeriod = def.MaxPeriod
	}
	if cfg.JitterThreshold == 0 {
		cfg.JitterThreshold = def.JitterThreshold
	}
	if cfg.BaseCost == 0 {
		cfg.BaseCost = def.BaseCost
	}
	if cfg.PerJobCost == 0 {
		cfg.PerJobCost = def.PerJobCost
	}
	if cfg.Reservation == (rbs.Reservation{}) {
		cfg.Reservation = def.Reservation
	}
	if cfg.OverloadStreak == 0 {
		cfg.OverloadStreak = def.OverloadStreak
	}
	if cfg.WatchdogIntervals == 0 {
		cfg.WatchdogIntervals = def.WatchdogIntervals
	}
	if cfg.WatchdogRecovery == 0 {
		cfg.WatchdogRecovery = def.WatchdogRecovery
	}
	ncpu := kern.NumCPUs()
	return &Controller{
		cfg:                cfg,
		kern:               kern,
		policy:             policy,
		reg:                reg,
		byThr:              make(map[*kernel.Thread]*Job),
		ncpu:               ncpu,
		ceiling:            cfg.OverloadThreshold * ncpu,
		effectiveThreshold: cfg.OverloadThreshold * ncpu,
	}
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// SetRecycle turns controller-state recycling on or off. When on, a
// removed job's object — with its PID filter and bounded pressure series —
// parks on a retired list and is reissued to a later admission after the
// next epoch prologue, so churn-heavy workloads add and remove jobs
// without growing the heap. Callers that retain *Job pointers past Remove
// (the experiments' post-run report readers do) must leave it off.
func (c *Controller) SetRecycle(on bool) { c.recycle = on }

// Jobs returns the controlled jobs in registration order.
func (c *Controller) Jobs() []*Job { return c.jobs }

// JobOf returns the job controlling t, if any.
func (c *Controller) JobOf(t *kernel.Thread) (*Job, bool) {
	j, ok := c.byThr[t]
	return j, ok
}

// Thread returns the controller's own thread (nil before Start).
func (c *Controller) Thread() *kernel.Thread { return c.thread }

// Steps returns the number of control intervals executed.
func (c *Controller) Steps() uint64 { return c.steps }

// Actuations returns the number of reservation changes sent to the
// dispatcher.
func (c *Controller) Actuations() uint64 { return c.actuations }

// Samples returns the number of adaptive-job feedback samples taken — in
// the periodic sweep this grows by the adaptive job count every interval;
// in event-driven mode, only by the jobs actually re-sampled.
func (c *Controller) Samples() uint64 { return c.samples }

// OnJobChange installs the membership hooks an external control plane uses
// to maintain per-shard job lists: add fires after a job is registered,
// remove after it leaves (Remove or reap). Either may be nil.
func (c *Controller) OnJobChange(add, remove func(j *Job)) {
	c.onJobAdd = add
	c.onJobRemove = remove
}

// Exceptions returns the quality exceptions raised so far.
func (c *Controller) Exceptions() []QualityException { return c.exceptions }

// OnQuality installs a callback invoked for every quality exception.
func (c *Controller) OnQuality(fn func(QualityException)) { c.onQuality = fn }

// OnStep installs a callback invoked at the end of every control interval;
// experiments use it to sample allocations in phase with the controller.
func (c *Controller) OnStep(fn func(now sim.Time)) { c.onStep = fn }

// OnActuate installs a callback invoked for every reservation change the
// controller pushes into the dispatcher — the actuation seam observers and
// trace tools consume. Pass nil to remove it.
func (c *Controller) OnActuate(fn func(j *Job, prop int, period sim.Duration, now sim.Time)) {
	c.onActuate = fn
}

// SetFaults installs (or clears, with nil) a fault injector. Healthy runs
// keep the injector-nil fast path.
func (c *Controller) SetFaults(fi FaultInjector) { c.faults = fi }

// OnFault installs a callback invoked for every controller-detected fault:
// rejected progress samples and failed/dropped/delayed actuations.
func (c *Controller) OnFault(fn func(Fault)) { c.onFault = fn }

// OnDegrade installs a callback invoked when the watchdog demotes a job
// one rung down the degradation ladder.
func (c *Controller) OnDegrade(fn func(Degradation)) { c.onDegrade = fn }

// OnRecover installs a callback invoked when a degraded job's signal
// recovers and the job is promoted one rung back up.
func (c *Controller) OnRecover(fn func(Degradation)) { c.onRecover = fn }

// SetGovernor installs (or clears, with nil) the supervisory overload
// governor. Without one every governor-related path is a single nil check.
func (c *Controller) SetGovernor(g *overload.Governor) { c.gov = g }

// Governor returns the installed overload governor, or nil.
func (c *Controller) Governor() *overload.Governor { return c.gov }

// OnShed installs a callback invoked for every job the governor's shed
// rung kills. It fires before the job's threads are retired, so the
// callback can still resolve them.
func (c *Controller) OnShed(fn func(j *Job, now sim.Time)) { c.onShed = fn }

// OnRungChange installs a callback invoked on every brownout-ladder
// movement, with the interval's saturation signals.
func (c *Controller) OnRungChange(fn func(now sim.Time, from, to overload.Rung, sig overload.Signals)) {
	c.onRung = fn
}

// SetSLOProbe installs a callback supplying the recent p99 wake→dispatch
// latency, sampled once per control interval for the governor's
// SLO-driven trip point.
func (c *Controller) SetSLOProbe(fn func() sim.Duration) { c.sloProbe = fn }

// AdmissionVeto consults the governor before a new admission: at the
// throttle rung and above, new work is refused with a typed overload
// error carrying a retry-after hint — callers get backpressure instead of
// joining an already-saturated squish.
//
// The stall guard covers the regime the ladder alone cannot: the rung
// only moves at control-epoch boundaries, and the per-epoch control cost
// grows with the job count, so under a fast enough admission storm the
// epochs themselves fall behind the interval cadence before the governor
// has accumulated its trip streak — backpressure arriving exactly too
// late, while every accepted admission slows the next epoch further. When
// the last observed epoch is staler than the governor could possibly have
// tripped in and the SLO probe's recent p99 — which is fed at dispatch
// edges, not epochs, so it stays fresh through a stall — already reads
// past the latency trip, admissions are refused as if the throttle rung
// were active. On a healthy plane the guard never fires: epochs stay
// inside the window and the ladder remains the only authority.
func (c *Controller) AdmissionVeto() error {
	if c.gov == nil {
		return nil
	}
	rung := c.gov.Rung()
	if rung < overload.Throttle {
		if !c.planeStalled() {
			return nil
		}
		rung = overload.Throttle // the guard's effective rung
	}
	c.health.Throttled++
	return c.overloadErr(rung)
}

// overloadErr returns the memoized refusal for a rung. Refused callers
// only ever read the error's fields, so while the governor holds a rung
// steady — the entire lifetime of an admission storm — every refusal
// shares one object; a new error is built only when the retry-after hint
// actually changes (the hint tracks the governor's current rung, which can
// lag the effective rung on the stall-guard path).
func (c *Controller) overloadErr(rung overload.Rung) *OverloadError {
	ra := c.gov.RetryAfter(c.cfg.Interval)
	if rung < 0 || int(rung) >= len(c.vetoErr) {
		return &OverloadError{Rung: rung.String(), RetryAfter: ra}
	}
	e := c.vetoErr[rung]
	if e == nil || e.RetryAfter != ra {
		e = &OverloadError{Rung: rung.String(), RetryAfter: ra}
		c.vetoErr[rung] = e
	}
	return e
}

// planeStalled reports whether the governor's epoch evidence is too stale
// to trust and the fresh dispatch-latency signal already reads saturated.
// Requires an SLO-driven trip point: without a latency SLO there is no
// epoch-independent saturation signal to consult.
func (c *Controller) planeStalled() bool {
	if c.sloProbe == nil {
		return false
	}
	gcfg := c.gov.Config()
	if gcfg.LatencyTrip <= 0 {
		return false
	}
	// On cadence, TripIntervals saturated epochs throttle within
	// (TripIntervals+1)·Interval; an older last epoch means the plane is
	// not keeping up with the interval clock.
	window := sim.Duration(int64(c.cfg.Interval) * int64(gcfg.TripIntervals+1))
	if c.kern.Now().Sub(c.lastEpochAt) <= window {
		return false
	}
	return c.sloProbe() > gcfg.LatencyTrip
}

// Health returns a snapshot of the fault-tolerance counters, including the
// number of jobs currently degraded.
func (c *Controller) Health() Health {
	h := c.health
	for _, j := range c.jobs {
		if j.degraded != LevelRealRate {
			h.JobsDegraded++
		}
	}
	return h
}

// EffectiveThreshold returns the current admission/squish ceiling.
func (c *Controller) EffectiveThreshold() int { return c.effectiveThreshold }

// Start spawns the controller's thread under its own reservation. It must
// be called before kernel.Start or during the run, once.
func (c *Controller) Start() {
	if c.thread != nil {
		panic("core: controller started twice")
	}
	if c.external {
		panic("core: controller is driven by an external control plane")
	}
	c.thread = c.kern.Spawn("controller", kernel.ProgramFunc(c.program))
	if err := c.policy.SetReservation(c.thread, c.cfg.Reservation); err != nil {
		panic(fmt.Sprintf("core: controller reservation: %v", err))
	}
	c.admitted += c.cfg.Reservation.Proportion
	c.nextWake = c.kern.Now().Add(c.cfg.Interval)
}

// program is the controller thread: burn the modeled cost, act, sleep.
func (c *Controller) program(t *kernel.Thread, now sim.Time) kernel.Op {
	c.phase++
	if c.phase%2 == 1 {
		c.computeOp.Cycles = c.cfg.BaseCost + sim.Cycles(len(c.jobs))*c.cfg.PerJobCost
		return &c.computeOp
	}
	c.step(now)
	wake := c.nextWake
	c.nextWake = c.nextWake.Add(c.cfg.Interval)
	c.sleepOp.At = wake
	return &c.sleepOp
}

// AddRealTime admits a reservation-holding job. Admission control rejects
// requests beyond the available capacity, and — on a multi-CPU machine —
// requests beyond one CPU: a reservation is held by one thread, and a
// thread runs on one CPU at a time.
func (c *Controller) AddRealTime(t *kernel.Thread, proportion int, period sim.Duration) (*Job, error) {
	if proportion <= 0 || period <= 0 {
		// Rejecting here keeps the malformed request out of the admission
		// accounting (a negative proportion would free capacity that was
		// never held) and out of the dispatcher (a non-positive period
		// used to surface only as an actuation failure).
		return nil, &ReservationError{Proportion: proportion, Period: period}
	}
	avail := c.available()
	if proportion > avail {
		return nil, &AdmissionError{Requested: proportion, Available: avail}
	}
	if a := c.perThreadCap(); proportion > a {
		return nil, &AdmissionError{Requested: proportion, Available: a}
	}
	j := c.addJob(t, RealTime)
	j.specified = proportion
	j.period = period
	j.periodFixed = true
	j.desired = proportion
	j.allocated = proportion
	c.admitted += proportion
	c.actuate(j, proportion, period)
	return j, nil
}

// AddAperiodicRealTime admits a job that specifies proportion only; the
// controller assigns the default period (30 ms) as a jitter bound.
func (c *Controller) AddAperiodicRealTime(t *kernel.Thread, proportion int) (*Job, error) {
	if proportion <= 0 {
		return nil, &ReservationError{Proportion: proportion, Period: c.cfg.DefaultPeriod}
	}
	avail := c.available()
	if proportion > avail {
		return nil, &AdmissionError{Requested: proportion, Available: avail}
	}
	if a := c.perThreadCap(); proportion > a {
		return nil, &AdmissionError{Requested: proportion, Available: a}
	}
	j := c.addJob(t, AperiodicRealTime)
	j.specified = proportion
	j.period = c.cfg.DefaultPeriod
	j.desired = proportion
	j.allocated = proportion
	c.admitted += proportion
	c.actuate(j, proportion, j.period)
	return j, nil
}

// AddRealRate registers a job whose progress metrics are already in the
// registry. Passing period 0 lets the controller assign (and, when
// enabled, adapt) the period.
func (c *Controller) AddRealRate(t *kernel.Thread, period sim.Duration) *Job {
	if !c.reg.HasMetrics(t) {
		panic("core: AddRealRate without registered progress metrics")
	}
	j := c.addJob(t, RealRate)
	if period > 0 {
		j.period = period
		j.periodFixed = true
	} else {
		j.period = c.cfg.DefaultPeriod
	}
	// The pressure series is only read over recent windows (period
	// adaptation, tooling), so it is bounded: at 10k+ jobs an unbounded
	// 100 Hz series per job would dominate the heap. A pooled job reuses
	// its previous life's series object and capacity, and — when the slot
	// is reissued to a same-named thread, the steady state of a recycling
	// storm — the series name too, skipping the concatenation.
	switch {
	case j.fill == nil:
		j.fillFor = t.Name()
		j.fill = metrics.NewSeries(c.pressureName(j.fillFor)).Bound(8192)
	case j.fillFor != t.Name():
		j.fillFor = t.Name()
		j.fill.Reset(c.pressureName(j.fillFor))
	default:
		j.fill.Reset(j.fill.Name)
	}
	c.bootstrap(j)
	return j
}

// AddMiscellaneous registers a job with no information at all.
func (c *Controller) AddMiscellaneous(t *kernel.Thread) *Job {
	j := c.addJob(t, Miscellaneous)
	j.period = c.cfg.DefaultPeriod
	c.bootstrap(j)
	return j
}

// AddInteractive registers a tty-server job (§3.2's interactive class).
// Interactive jobs carry a raised default importance so bulk jobs cannot
// squish them below their burst requirement.
func (c *Controller) AddInteractive(t *kernel.Thread) *Job {
	j := c.addJob(t, Interactive)
	j.period = c.cfg.InteractivePeriod
	j.importance = c.cfg.InteractiveImportance
	c.bootstrap(j)
	return j
}

// Renegotiate changes a real-time or aperiodic real-time job's reservation,
// subject to admission control — the §3.3 renegotiation path ("the
// controller may raise a quality exception and initiate a renegotiation of
// the resource reservation"). Shrinking always succeeds; growth must fit
// the available capacity.
func (c *Controller) Renegotiate(j *Job, proportion int) error {
	if j.class != RealTime && j.class != AperiodicRealTime {
		return fmt.Errorf("core: job %s is %s; only reservation-holding jobs renegotiate",
			j.thread.Name(), j.class)
	}
	if proportion <= 0 {
		return &ReservationError{Proportion: proportion, Period: j.period}
	}
	if proportion > j.specified && c.gov != nil && c.gov.Rung() >= overload.Freeze {
		// Freeze rung: renegotiations to larger reservations are refused;
		// shrinking is still welcome — it helps.
		c.health.Throttled++
		return c.overloadErr(c.gov.Rung())
	}
	delta := proportion - j.specified
	if delta > 0 && delta > c.available() {
		return &AdmissionError{Requested: delta, Available: c.available()}
	}
	// The reservation is split across the job's members, so the one-CPU
	// cap applies to the largest member share (the primary's, which takes
	// the remainder), not the job total.
	if a := c.perThreadCap(); c.maxMemberShare(j, proportion) > a {
		return &AdmissionError{Requested: proportion, Available: a * len(j.members)}
	}
	c.admitted += delta
	j.specified = proportion
	j.desired = proportion
	j.allocated = proportion
	c.actuate(j, proportion, j.period)
	return nil
}

// AddMember adds a cooperating thread to an existing job: the job's
// allocation is shared (split evenly) across its members, its progress is
// the sum of its members' metrics, and its usage is their combined CPU.
func (c *Controller) AddMember(j *Job, t *kernel.Thread) {
	if _, dup := c.byThr[t]; dup {
		panic(fmt.Sprintf("core: thread %v already controlled", t))
	}
	j.members = append(j.members, t)
	c.byThr[t] = j
	j.lastCPU = j.cpuTime()
	j.cpuBlockMark = j.cpuTime()
	j.lastBlocked = j.blockedCount()
	c.actuate(j, j.allocated, j.period)
}

// SetImportance sets the weighted-fair-share weight of a job.
func (c *Controller) SetImportance(j *Job, w float64) {
	if w <= 0 {
		panic("core: importance must be positive")
	}
	j.importance = w
}

// Remove stops controlling a job, freeing its admission if it held one.
// Removing a job that is no longer controlled (e.g. already reaped after
// its last member exited) is a no-op, so the incremental admission
// accounting cannot be corrupted by a double Remove.
func (c *Controller) Remove(j *Job) {
	found := false
	for i, other := range c.jobs {
		if other == j {
			copy(c.jobs[i:], c.jobs[i+1:])
			c.jobs[len(c.jobs)-1] = nil // clear the vacated tail slot
			c.jobs = c.jobs[:len(c.jobs)-1]
			found = true
			break
		}
	}
	if !found {
		return
	}
	if j.class == RealTime || j.class == AperiodicRealTime {
		c.admitted -= j.specified
	}
	if j.class.Adaptive() {
		c.adaptive--
	}
	for _, t := range j.members {
		delete(c.byThr, t)
		c.policy.Unregister(t)
		c.reg.Unregister(t)
	}
	if c.onJobRemove != nil {
		c.onJobRemove(j)
	}
	if c.recycle {
		c.retired = append(c.retired, j)
	}
}

// ThreadExited tears down one exited member thread's controller state
// immediately: the thread leaves its job (and the job leaves the
// controller when it was the last member), instead of lingering until the
// next epoch's reap. The recycling layers need the eager path — a pooled
// kernel thread can be reissued before the next epoch, and every stale
// *kernel.Thread reference must be gone by then — but it is correct (and
// idempotent with reap) for any caller's exit hook. Unknown threads are
// ignored.
func (c *Controller) ThreadExited(t *kernel.Thread) {
	j, ok := c.byThr[t]
	if !ok {
		return
	}
	delete(c.byThr, t)
	c.policy.Unregister(t)
	c.reg.Unregister(t)
	for i, m := range j.members {
		if m == t {
			copy(j.members[i:], j.members[i+1:])
			j.members[len(j.members)-1] = nil // clear the vacated tail slot
			j.members = j.members[:len(j.members)-1]
			break
		}
	}
	if len(j.members) == 0 {
		c.Remove(j)
		return
	}
	j.thread = j.members[0]
}

// jobSlabSize is how many Job objects one slab chunk holds.
const jobSlabSize = 256

// allocJob returns a scrubbed Job object: from the free pool when
// recycling has banked one, otherwise carved from the current slab chunk.
// A pooled object keeps its members backing array and its bounded
// pressure series (capacity, not contents) from the previous life.
func (c *Controller) allocJob() *Job {
	if j := c.freeJob; j != nil {
		c.freeJob = j.freeNext
		j.freeNext = nil
		return j
	}
	if len(c.jobSlab) == 0 {
		c.jobSlab = make([]Job, jobSlabSize)
	}
	j := &c.jobSlab[0]
	c.jobSlab = c.jobSlab[1:]
	return j
}

// pressureName returns the interned "<name>.pressure" series label.
func (c *Controller) pressureName(name string) string {
	if fn, ok := c.fillNames[name]; ok {
		return fn
	}
	fn := name + ".pressure"
	if c.fillNames == nil {
		c.fillNames = make(map[string]string)
	}
	c.fillNames[name] = fn
	return fn
}

// allocPID returns a fresh-state PID filter for cfg.PID, reusing a pooled
// one when available (every pooled filter was built from the same config,
// so Reset restores the fresh-filter state exactly).
func (c *Controller) allocPID() *pid.Controller {
	if n := len(c.freePID); n > 0 {
		g := c.freePID[n-1]
		c.freePID[n-1] = nil
		c.freePID = c.freePID[:n-1]
		g.Reset()
		return g
	}
	return pid.New(c.cfg.PID)
}

// flushRetired scrubs the jobs removed since the previous epoch and moves
// them to the free pool. Runs at the epoch prologue only: nothing from the
// current step can reference them there.
func (c *Controller) flushRetired() {
	for i, j := range c.retired {
		c.retired[i] = nil
		if j.g != nil {
			c.freePID = append(c.freePID, j.g)
		}
		for k := range j.members {
			j.members[k] = nil
		}
		members := j.members[:0]
		fill, fillFor := j.fill, j.fillFor
		*j = Job{members: members, fill: fill, fillFor: fillFor}
		j.freeNext = c.freeJob
		c.freeJob = j
	}
	c.retired = c.retired[:0]
}

func (c *Controller) addJob(t *kernel.Thread, class Class) *Job {
	if _, dup := c.byThr[t]; dup {
		panic(fmt.Sprintf("core: thread %v already controlled", t))
	}
	j := c.allocJob()
	j.thread = t
	if cap(j.members) == 0 {
		// Sized for the common small pipeline so the primary plus a few
		// AddMember calls fit without regrowing (the capacity survives
		// pooling, so a recycled job never regrows at all).
		j.members = make([]*kernel.Thread, 0, 4)
	}
	j.members = append(j.members, t)
	j.class = class
	j.importance = 1
	j.lastCPU = t.CPUTime()
	j.cpuBlockMark = t.CPUTime()
	j.lastBlocked = t.BlockedCount()
	j.usageEWMA = 1 // presume fully used until measured otherwise
	if class == RealRate {
		// Only real-rate jobs filter pressure through G; skipping the PID
		// for the other classes keeps a million-job taskset's controller
		// state within memory reach (the 1M-job admission soak).
		j.g = c.allocPID()
	}
	c.jobs = append(c.jobs, j)
	c.byThr[t] = j
	if class.Adaptive() {
		c.adaptive++
	}
	if c.onJobAdd != nil {
		c.onJobAdd(j)
	}
	return j
}

// bootstrap gives adaptive jobs their floor allocation so they can start
// making progress before the first control interval.
func (c *Controller) bootstrap(j *Job) {
	j.desired = c.cfg.MinProportion
	j.allocated = c.cfg.MinProportion
	c.actuate(j, j.allocated, j.period)
}

// available returns the admission headroom in ppt of machine capacity
// (CPUs × 1000): real-rate and miscellaneous jobs are squishable down to
// their floors, so only hard reservations and floors are unavailable. The
// adaptive-job count is maintained incrementally, so this is O(1) per
// admission check.
func (c *Controller) available() int {
	return c.effectiveThreshold - c.admitted - c.cfg.MinProportion*c.adaptive
}

// perThreadCap bounds one member thread's reservation share: a thread
// occupies at most one CPU, so no single thread's reservation may exceed
// one CPU's overload threshold no matter how much machine-wide capacity
// is free. On a single-CPU machine the available() check is always the
// tighter one, so this never fires there.
func (c *Controller) perThreadCap() int { return c.cfg.OverloadThreshold }

// maxMemberShare is the largest per-thread share actuate would hand out
// for a job-total proportion: the even split plus the remainder the
// primary member absorbs.
func (c *Controller) maxMemberShare(j *Job, proportion int) int {
	n := len(j.members)
	if n <= 1 {
		return proportion
	}
	share := proportion / n
	return share + (proportion - share*n)
}

// step is one control interval: sample, estimate, squish, actuate. The
// sharded control plane (internal/ctlplane) never calls step; it drives the
// same pieces — EpochPrologue, SampleJob, SquishApply, EpochEpilogue — one
// shard at a time.
func (c *Controller) step(now sim.Time) {
	c.prologue(now)
	dt := c.cfg.Interval.Seconds()

	// Pass 1: desired allocations. The squish inputs live in persistent
	// scratch buffers so the 100 Hz loop does not allocate.
	squishable := c.squishable[:0]
	desires := c.desireBuf[:0]
	weights := c.weightBuf[:0]
	for _, j := range c.jobs {
		if !c.sampleJob(j, now, dt, 1) {
			continue
		}
		squishable = append(squishable, j)
		desires = append(desires, j.desired)
		weights = append(weights, j.importance)
	}
	c.squishable, c.desireBuf, c.weightBuf = squishable, desires, weights
	// Jobs removed since the scratch's high-water mark must not stay
	// reachable through the backing array's tail.
	tail := squishable[len(squishable):cap(squishable)]
	for i := range tail {
		tail[i] = nil
	}

	// Pass 2: squish into the capacity left by hard reservations. The
	// capacity can go negative when missed deadlines shrink the effective
	// threshold below what is already admitted; adaptive jobs then get
	// nothing rather than panicking the squish.
	capacity := c.effectiveThreshold - c.admitted
	if capacity < 0 {
		capacity = 0
	}
	c.squishApply(squishable, desires, weights, capacity, now)

	if c.gov != nil {
		c.governorStep(now)
	}

	if c.onStep != nil {
		c.onStep(now)
	}
}

// prologue is the per-epoch preamble shared by the global sweep and the
// sharded plane: count the step, react to missed deadlines, reap exited
// jobs, and flush delayed actuations.
func (c *Controller) prologue(now sim.Time) {
	c.steps++

	// Missed deadlines shrink the effective threshold (spare capacity
	// grows), recovering slowly when the dispatcher is healthy.
	if misses := c.policy.MissedDeadlines(); misses > c.lastMisses {
		c.effectiveThreshold -= int(misses-c.lastMisses) * 5
		if c.effectiveThreshold < c.ceiling/2 {
			c.effectiveThreshold = c.ceiling / 2
		}
		c.lastMisses = misses
	} else if c.effectiveThreshold < c.ceiling {
		c.effectiveThreshold++
	}

	c.reap()

	if len(c.delayed) > 0 {
		// Apply actuations deferred by DelayActuation faults. The pending
		// list is detached first: installing a reservation can run the
		// machine, and a program running inside it could trigger a fresh
		// deferral that must not alias this batch's backing array.
		pend := c.delayed
		c.delayed = nil
		for _, d := range pend {
			if c.byThr[d.job.thread] != d.job {
				continue // job reaped while the actuation was in flight
			}
			c.apply(d.job, d.prop, d.period)
		}
	}

	if len(c.retired) > 0 {
		// Pool last: the delayed-actuation guard above must still see
		// retired jobs as distinct objects, not reissued ones.
		c.flushRetired()
	}
}

// sampleJob runs pass 1 for one job: sample its progress, update the
// watchdog, and recompute its desire. dt is the elapsed control time in
// seconds and epochs the number of control intervals it spans — both 1
// interval in the periodic sweep, possibly more when the event-driven
// plane re-samples a job it had skipped. It reports whether the job
// participates in the squish (false for reservation-holding classes).
func (c *Controller) sampleJob(j *Job, now sim.Time, dt float64, epochs int64) bool {
	switch j.class {
	case RealTime, AperiodicRealTime:
		j.desired = j.specified
		j.allocated = j.specified
		j.squished = false
		j.lastCPU = j.cpuTime()
		return false
	case RealRate:
		c.samples++
		p, ok := c.samplePressure(j, now)
		j.lastRaw = p
		if j.fill != nil {
			j.fill.Add(now, p)
		}
		c.watchdog(j, p, ok, now)
		switch {
		case j.degraded == LevelFallback:
			// Hold the last trusted allocation; the PID filter stays
			// frozen (anti-windup), so promotion resumes from the
			// pre-fault integral instead of slamming the allocation.
			j.desired = j.fallback
		case j.degraded == LevelMisc:
			j.desired = c.estimateMisc(j, dt, epochs)
		case ok:
			j.desired = c.estimate(j, p, dt, epochs)
		default:
			// Rejected sample on a healthy job: hold the desire and
			// freeze the filter rather than integrating garbage.
		}
	case Miscellaneous:
		c.samples++
		j.desired = c.estimateMisc(j, dt, epochs)
	case Interactive:
		c.samples++
		j.desired = c.estimateInteractive(j)
	}
	return true
}

// squishApply is pass 2 over one set of squishable jobs: fit their desires
// into capacity, clamp, raise quality exceptions, and actuate changes. The
// global sweep passes every adaptive job; a shard passes only its own, with
// its slice of the capacity.
func (c *Controller) squishApply(squishable []*Job, desires []int, weights []float64, capacity int, now sim.Time) {
	if len(squishable) == 0 {
		return
	}
	// The non-zero floor only fits while floor·n ≤ capacity; past that
	// point (thousands of adaptive jobs on one CPU) the machine simply
	// lacks the ppt resolution, so the floor degrades gracefully
	// instead of panicking the squish.
	floor := c.cfg.MinProportion
	if floor*len(squishable) > capacity {
		floor = capacity / len(squishable)
		if floor < 0 {
			floor = 0
		}
	}
	allocs := grow(c.allocBuf, len(squishable))
	frozen := growBool(c.frozenBuf, len(squishable))
	c.allocBuf, c.frozenBuf = allocs, frozen
	squishInto(allocs, frozen, desires, weights, capacity, floor)
	for i, j := range squishable {
		if allocs[i] > c.cfg.MaxProportion {
			allocs[i] = c.cfg.MaxProportion
		}
		j.squished = allocs[i] < j.desired
		c.maybeRaiseQuality(j, allocs[i], now)
		if c.cfg.PeriodAdaptation {
			c.adaptPeriod(j, now)
		}
		if allocs[i] != j.allocated || c.cfg.PeriodAdaptation {
			c.actuate(j, allocs[i], j.period)
		}
		j.allocated = allocs[i]
		j.lastCPU = j.cpuTime()
		j.lastBlocked = j.blockedCount()
	}
}

// governorStep runs the supervisory outer loop once per control interval:
// gather the saturation signals already flowing through this step —
// demand vs. capacity, squish compression, missed period boundaries,
// watchdog demotion rate, and (via the SLO probe) tail latency — feed
// them to the governor, and execute its decision.
func (c *Controller) governorStep(now sim.Time) {
	desired, granted := 0, 0
	for _, j := range c.jobs {
		// A job's desire is clamped to the most it could ever be granted:
		// a squished real-rate job's raw desire integrates toward
		// DesireCap by design (that is how it wins the squish), so the
		// un-clamped sum would read as brownout on any machine running
		// one busy pipeline. Demand beyond MaxProportion is not
		// actionable and must not trip the governor.
		d := j.desired
		if d > c.cfg.MaxProportion {
			d = c.cfg.MaxProportion
		}
		desired += d
		granted += j.allocated
	}
	c.governorObserve(now, desired, granted)
}

// governorObserve feeds one epoch's saturation signals to the governor and
// executes its decision. desired and granted are the MaxProportion-clamped
// demand and the granted proportion summed over every job — computed by a
// full scan in the periodic sweep, or aggregated across shards by the
// control plane. The miss and demotion deltas come from global counters,
// banked once per epoch here, so the governor's per-interval rates are
// identical under one shard or many.
func (c *Controller) governorObserve(now sim.Time, desired, granted int) {
	c.lastEpochAt = now
	sig := overload.Signals{
		// The controller's own reservation is demand too; job desires and
		// grants are current as of this epoch's passes 1 and 2.
		Desired:  desired + c.cfg.Reservation.Proportion,
		Granted:  granted + c.cfg.Reservation.Proportion,
		Capacity: c.effectiveThreshold,
	}
	// lastMisses was synced to the policy's total in the epoch prologue.
	sig.Misses = c.lastMisses - c.govLastMisses
	c.govLastMisses = c.lastMisses
	sig.Demotions = c.health.Degradations - c.govLastDemotions
	c.govLastDemotions = c.health.Degradations
	if c.sloProbe != nil {
		sig.RecentP99 = c.sloProbe()
	}
	dec := c.gov.Observe(sig)
	if dec.Changed() && c.onRung != nil {
		c.onRung(now, dec.From, dec.Rung, sig)
	}
	for n := dec.Shed; n > 0; n-- {
		if !c.shedOne(now) {
			break
		}
	}
}

// shedOne kills the lowest-importance live miscellaneous job — the shed
// rung's importance-ordered load shedding. Only best-effort work is ever
// a candidate: reservation-holding (real-time, aperiodic) and real-rate
// jobs are never shed, and neither are interactive jobs (a user is
// waiting on them). Ties break toward the oldest registration. Reports
// whether a victim was found.
func (c *Controller) shedOne(now sim.Time) bool {
	var victim *Job
	for _, j := range c.jobs {
		if j.class != Miscellaneous {
			continue
		}
		live := false
		for _, m := range j.members {
			if m.State() != kernel.StateExited {
				live = true
				break
			}
		}
		if !live {
			continue
		}
		if victim == nil || j.importance < victim.importance {
			victim = j
		}
	}
	if victim == nil {
		return false
	}
	c.health.Sheds++
	if c.onShed != nil {
		c.onShed(victim, now)
	}
	// Retire is re-entrancy-safe from inside the controller's step (the
	// kernel's busy guard defers the reschedule), and the exit hook runs
	// synchronously, so the public layer unindexes the thread before the
	// next shed candidate is evaluated. Under the eager exit path
	// (ThreadExited) each Retire also removes the member from
	// victim.members while we iterate, so walk the slice from the tail
	// with a bounds re-check instead of ranging over a stale header;
	// without the eager path the job is reaped — and its admission
	// headroom freed — on the next interval's reap.
	for i := len(victim.members) - 1; i >= 0; i-- {
		if i >= len(victim.members) {
			continue
		}
		m := victim.members[i]
		if m != nil && m.State() != kernel.StateExited {
			c.kern.Retire(m)
		}
	}
	return true
}

// observeUsage folds this interval's used/granted ratio into the job's
// smoothed usage estimate and reports it. Jobs burn their budgets in
// bursts and nap the rest of each period, so the instantaneous ratio
// aliases; reclamation must look at the average over several intervals.
// epochs is the number of control intervals since the job was last
// sampled — always 1 in the periodic sweep; the event-driven plane passes
// the actual gap so the granted baseline covers the skipped intervals.
func (c *Controller) observeUsage(j *Job, dt float64, epochs int64) float64 {
	used := j.cpuTime() - j.lastCPU
	granted := sim.Duration(int64(c.cfg.Interval) * epochs * int64(j.allocated) / pptDenom)
	ratio := 1.0
	if granted > 0 {
		ratio = float64(used) / float64(granted)
		if ratio > 1.5 {
			ratio = 1.5
		}
	}
	const tau = 0.1 // seconds: ≈10 control intervals
	alpha := dt / (tau + dt)
	j.usageEWMA += alpha * (ratio - j.usageEWMA)
	pptUsed := float64(used) / float64(c.cfg.Interval) * pptDenom
	j.usedPPT += alpha * (pptUsed - j.usedPPT)
	return j.usageEWMA
}

// estimate implements Figure 4 for one adaptive job: normally P′ = k·Q_t,
// but if the previous allocation went unused the allocation drops by the
// constant C and the banked integral bleeds off.
func (c *Controller) estimate(j *Job, pressure float64, dt float64, epochs int64) int {
	usage := c.observeUsage(j, dt, epochs)
	if j.allocated > c.cfg.MinProportion && usage < c.cfg.ReclaimFraction {
		// Too generous: the job demonstrably cannot use what it has, even
		// if its queue pressure is positive — "increasing the allocation
		// may not improve the thread's progress, as might happen ... if
		// another resource (such as a disk-as-producer) is the bottleneck"
		// (Figure 4's P−C path).
		j.g.ScaleIntegral(0.8)
		j.g.Step(pressure, dt) // keep the filter advancing
		return clampPPT(j.allocated-c.cfg.ReclaimC, c.cfg.MinProportion, c.cfg.DesireCap)
	}
	q := j.g.Step(pressure, dt)
	return clampPPT(int(c.cfg.K*q), c.cfg.MinProportion, c.cfg.DesireCap)
}

// estimateMisc implements the miscellaneous heuristic: "the controller
// approximates the thread's progress with a positive constant. In this way
// there is constant pressure to allocate more CPU to a miscellaneous
// thread, until it is either satisfied or the CPU becomes oversubscribed",
// combined with the usage check ("whether or not the application uses the
// allocation it is given"). The desire is sized from measured consumption
// with headroom, capped by the constant-pressure target K·MiscPressure: a
// busy hog's desire climbs geometrically to the cap and stays flat there —
// crucially, NOT integrated — so under overload its desire holds steady
// while a falling-behind real-rate job's pressure (and hence desire) grows
// past it and wins the squish: exactly the Figure 7 dynamic. An idle job's
// desire follows its usage back down, which is the reclamation.
func (c *Controller) estimateMisc(j *Job, dt float64, epochs int64) int {
	usage := c.observeUsage(j, dt, epochs)
	target := clampPPT(int(c.cfg.K*c.cfg.MiscPressure), c.cfg.MinProportion, c.cfg.MaxProportion)
	// Hysteresis on the usage test keeps the decision away from the
	// boundary: a squished busy hog uses ≥100% of its (quantized) grant,
	// an idle job ≈0%.
	if j.reclaiming && usage > c.cfg.ReclaimFraction+0.2 {
		j.reclaiming = false
	} else if !j.reclaiming && usage < c.cfg.ReclaimFraction-0.1 {
		j.reclaiming = true
	}
	if j.reclaiming {
		// Reclaim: follow measured consumption down (with headroom so the
		// job can ramp back).
		d := int(1.3*j.usedPPT) + c.cfg.ReclaimC
		if d > target {
			d = target
		}
		return clampPPT(d, c.cfg.MinProportion, c.cfg.MaxProportion)
	}
	// The job uses what it gets: the paper's constant pressure, verbatim.
	// Every busy miscellaneous job desires the same target, which is what
	// makes proportional squish "result in equal allocation of the CPU to
	// all competing jobs over time".
	return target
}

// estimateInteractive sizes an interactive job from its typical burst: the
// proportion that would fit its average run-before-block into each period,
// with headroom.
func (c *Controller) estimateInteractive(j *Job) int {
	blocks := j.blockedCount() - j.lastBlocked
	if blocks > 0 {
		used := j.cpuTime() - j.cpuBlockMark
		j.cpuBlockMark = j.cpuTime()
		burst := sim.Duration(int64(used) / int64(blocks))
		if j.burstEstimate == 0 {
			j.burstEstimate = burst
		} else {
			// Exponential smoothing, 1/4 new.
			j.burstEstimate = (3*j.burstEstimate + burst) / 4
		}
	}
	if j.burstEstimate == 0 {
		return c.cfg.MinProportion
	}
	prop := int(c.cfg.InteractiveHeadroom * float64(j.burstEstimate) / float64(j.period) * pptDenom)
	return clampPPT(prop, c.cfg.MinProportion, c.cfg.MaxProportion)
}

// maybeRaiseQuality raises a quality exception after a sustained stretch of
// saturated pressure while squished: the machine simply lacks the CPU.
func (c *Controller) maybeRaiseQuality(j *Job, alloc int, now sim.Time) {
	saturated := j.class == RealRate && j.lastRaw >= 0.45
	if saturated && alloc < j.desired {
		j.overloadStreak++
	} else {
		j.overloadStreak = 0
		return
	}
	if j.overloadStreak == c.cfg.OverloadStreak {
		ex := QualityException{
			Job: j, Time: now, Pressure: j.g.Output(),
			Desired: j.desired, Allocated: alloc,
			Reason: "sustained overload: renegotiate resource requirements",
		}
		c.exceptions = append(c.exceptions, ex)
		if c.onQuality != nil {
			c.onQuality(ex)
		}
		j.overloadStreak = 0
	}
}

// actuate pushes the job's reservation into the dispatcher, after letting
// the fault injector drop or defer it.
func (c *Controller) actuate(j *Job, prop int, period sim.Duration) {
	if c.faults != nil {
		now := c.kern.Now()
		if drop, delay := c.faults.ActuationFault(j.thread.Name(), now); drop || delay {
			if drop {
				c.health.ActuationsDropped++
				if c.onFault != nil {
					c.onFault(Fault{Time: now, Job: j, Kind: "actuation-dropped"})
				}
				return
			}
			c.health.ActuationsDelayed++
			c.delayed = append(c.delayed, delayedActuation{job: j, prop: prop, period: period})
			if c.onFault != nil {
				c.onFault(Fault{Time: now, Job: j, Kind: "actuation-delayed"})
			}
			return
		}
	}
	c.apply(j, prop, period)
}

// apply installs the job's reservation in the dispatcher, split evenly
// across its member threads (the remainder goes to the primary). A refused
// install is a typed, counted fault — the job keeps its previous
// reservation — not a panic: the dispatcher can reject for reasons that
// are runtime state (a corrupted period from a faulted source), and one
// bad job must not take the whole controller down.
func (c *Controller) apply(j *Job, prop int, period sim.Duration) {
	n := len(j.members)
	share := prop / n
	rem := prop - share*n
	for i, t := range j.members {
		p := share
		if i == 0 {
			p += rem
		}
		if p < 1 {
			p = 1 // every live thread keeps a non-zero reservation
		}
		if err := c.policy.SetReservation(t, rbs.Reservation{Proportion: p, Period: period}); err != nil {
			c.health.ActuationErrors++
			if c.onFault != nil {
				aerr := &ActuationError{Job: j, Proportion: p, Period: period, Err: err}
				c.onFault(Fault{Time: c.kern.Now(), Job: j, Kind: "actuation-error", Err: aerr})
			}
			continue
		}
	}
	j.actuations++
	c.actuations++
	// Installing the reservation can run the machine: SetReservation wakes
	// a napping thread, the wake may preempt, and the dispatched program
	// may exit — all before this line. An actuation event for a thread
	// that retired mid-actuation must not escape: observers are promised
	// that nothing fires after retirement.
	if c.onActuate != nil && j.thread.State() != kernel.StateExited {
		c.onActuate(j, prop, period, c.kern.Now())
	}
}

// samplePressure sums the registered progress metrics of every member
// thread, clamped to the paper's [-1/2, 1/2] pressure range. It is the
// controller's signal boundary: the fault injector perturbs here, and
// NaN/Inf is rejected here — the previous raw sample is returned with
// ok=false so the estimator never integrates garbage.
func (c *Controller) samplePressure(j *Job, now sim.Time) (float64, bool) {
	var sum float64
	for _, t := range j.members {
		// SummedPressure clamps per thread; re-clamp the job total below.
		sum += c.reg.SummedPressure(t, now)
	}
	if c.faults != nil {
		sum = c.faults.PerturbPressure(j.thread.Name(), now, sum)
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		c.health.SignalsRejected++
		if c.onFault != nil {
			c.onFault(Fault{Time: now, Job: j, Kind: "signal-rejected",
				Detail: fmt.Sprintf("pressure %v", sum)})
		}
		return j.lastRaw, false
	}
	if sum > 0.5 {
		sum = 0.5
	}
	if sum < -0.5 {
		sum = -0.5
	}
	return sum, true
}

// watchdog runs the flat-signal detector for one real-rate job. A sample
// is flat when it was rejected by the sanitizer, or when it exactly equals
// the previous sample while the job consumed CPU this interval — a live
// thread whose progress metric is byte-identical across samples is a
// stalled signal, not a steady state. Saturated samples (|p| ≥ 0.45) are
// excluded: a pinned-full queue under overload is the quality-exception
// path's business, not a signal fault. WatchdogIntervals consecutive flat
// samples demote the job one rung; WatchdogRecovery consecutive moving
// samples promote it one rung back.
func (c *Controller) watchdog(j *Job, p float64, ok bool, now sim.Time) {
	if c.cfg.WatchdogIntervals < 0 {
		return
	}
	flat := !ok
	if ok {
		if j.haveSample {
			d := p - j.lastSample
			if d < 1e-12 && d > -1e-12 && p < 0.45 && p > -0.45 && j.cpuTime() > j.lastCPU {
				flat = true
			}
		}
		j.lastSample = p
		j.haveSample = true
	}
	if flat {
		j.recoverStreak = 0
		j.flatStreak++
		if j.flatStreak >= c.cfg.WatchdogIntervals && j.degraded < LevelMisc {
			c.demote(j, now)
			j.flatStreak = 0
		}
		return
	}
	j.flatStreak = 0
	if j.degraded > LevelRealRate {
		j.recoverStreak++
		if j.recoverStreak >= c.cfg.WatchdogRecovery {
			c.promote(j, now)
			j.recoverStreak = 0
		}
	}
}

// demote moves a job one rung down the ladder. Entering LevelFallback
// freezes the last trusted allocation as the fixed fallback proportion.
func (c *Controller) demote(j *Job, now sim.Time) {
	from := j.degraded
	j.degraded++
	if j.degraded == LevelFallback {
		j.fallback = j.allocated
		if j.fallback < c.cfg.MinProportion {
			j.fallback = c.cfg.MinProportion
		}
	}
	c.health.Degradations++
	if c.onDegrade != nil {
		c.onDegrade(Degradation{Time: now, Job: j, From: from, To: j.degraded,
			Reason: "flat progress signal"})
	}
}

// promote moves a degraded job one rung back up after its signal recovers.
func (c *Controller) promote(j *Job, now sim.Time) {
	from := j.degraded
	j.degraded--
	c.health.Recoveries++
	if c.onRecover != nil {
		c.onRecover(Degradation{Time: now, Job: j, From: from, To: j.degraded,
			Reason: "progress signal recovered"})
	}
}

// reap drops exited member threads and removes jobs with no live members.
func (c *Controller) reap() {
	for i := 0; i < len(c.jobs); {
		j := c.jobs[i]
		live := j.members[:0]
		for _, t := range j.members {
			if t.State() == kernel.StateExited {
				delete(c.byThr, t)
				c.policy.Unregister(t)
				c.reg.Unregister(t)
				continue
			}
			live = append(live, t)
		}
		j.members = live
		if len(j.members) == 0 {
			c.Remove(j)
			continue
		}
		j.thread = j.members[0]
		i++
	}
}

// grow returns buf resliced to n, reallocating only when capacity is
// short — the scratch-buffer idiom behind the allocation-free step.
func grow(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func clampPPT(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
