package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/sim"
)

// stallRig is a rig with a governed controller and a scriptable SLO probe:
// the two signals the admission stall guard consults.
func stallRig(tripIntervals int, latencyTrip sim.Duration) (*rig, *sim.Duration) {
	r := newRig(core.Config{})
	r.ctl.SetGovernor(overload.New(overload.Config{
		TripIntervals: tripIntervals,
		LatencyTrip:   latencyTrip,
	}))
	p99 := new(sim.Duration)
	r.ctl.SetSLOProbe(func() sim.Duration { return *p99 })
	return r, p99
}

// TestAdmissionStallGuardRefusesOnStalledPlane pins the guard's firing
// condition: with the governor still at normal but the last control epoch
// staler than the ladder could possibly have tripped in, and the
// dispatch-fed p99 probe already past the latency trip, admissions bounce
// with the throttle rung's typed error. This is the admission-storm regime
// where epochs fall behind the interval cadence before the trip streak
// accumulates — the ladder's evidence arrives exactly too late.
func TestAdmissionStallGuardRefusesOnStalledPlane(t *testing.T) {
	r, p99 := stallRig(25, 5*sim.Millisecond)
	// The controller is never started: no epochs run, so the governor's
	// last observation goes stale while simulated time advances well past
	// the (TripIntervals+1)·Interval window (260 ms at the 10 ms default).
	r.kern.Start()
	r.run(400 * sim.Millisecond)
	r.kern.Stop()
	if rung := r.ctl.Governor().Rung(); rung != overload.Normal {
		t.Fatalf("setup: rung %v, want normal (the ladder must not have tripped)", rung)
	}

	// Stale epochs alone are not enough: the fresh latency signal must
	// also read saturated, or an idle-but-quiet plane would refuse work.
	*p99 = 2 * sim.Millisecond
	if err := r.ctl.AdmissionVeto(); err != nil {
		t.Fatalf("veto with healthy dispatch latency: %v", err)
	}

	*p99 = 40 * sim.Millisecond
	err := r.ctl.AdmissionVeto()
	var oe *core.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("stalled plane with saturated p99: error %T (%v), want *core.OverloadError", err, err)
	}
	if oe.Rung != "throttle" || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v, want effective throttle rung and positive retry-after", oe)
	}
	if h := r.ctl.Health(); h.Throttled != 1 {
		t.Fatalf("Throttled = %d, want 1", h.Throttled)
	}
}

// TestAdmissionStallGuardQuietOnHealthyPlane pins the guard's negative
// space: while epochs arrive on cadence the guard never fires, even with
// the probe far past the trip — the ladder remains the only admission
// authority on a live plane.
func TestAdmissionStallGuardQuietOnHealthyPlane(t *testing.T) {
	r, p99 := stallRig(25, 5*sim.Millisecond)
	*p99 = 40 * sim.Millisecond
	r.start()
	// 5 epochs: far under the 25-interval trip streak, so the ladder stays
	// at normal, and the last epoch is at most one interval old.
	r.run(50 * sim.Millisecond)
	if rung := r.ctl.Governor().Rung(); rung != overload.Normal {
		t.Fatalf("setup: rung %v, want normal", rung)
	}
	if err := r.ctl.AdmissionVeto(); err != nil {
		t.Fatalf("veto on a healthy plane: %v", err)
	}
	r.kern.Stop()
}

// TestAdmissionStallGuardNeedsLatencySLO pins the guard's precondition:
// without an SLO-driven trip point (or without a probe at all) there is no
// epoch-independent saturation signal, and stale epochs alone must not
// refuse admissions.
func TestAdmissionStallGuardNeedsLatencySLO(t *testing.T) {
	// Governor armed but no LatencyTrip: guard disabled.
	r, p99 := stallRig(25, 0)
	*p99 = 40 * sim.Millisecond
	r.kern.Start()
	r.run(400 * sim.Millisecond)
	r.kern.Stop()
	if err := r.ctl.AdmissionVeto(); err != nil {
		t.Fatalf("veto without a latency trip: %v", err)
	}

	// LatencyTrip set but no probe installed: guard disabled.
	r2 := newRig(core.Config{})
	r2.ctl.SetGovernor(overload.New(overload.Config{
		TripIntervals: 25,
		LatencyTrip:   5 * sim.Millisecond,
	}))
	r2.kern.Start()
	r2.run(400 * sim.Millisecond)
	r2.kern.Stop()
	if err := r2.ctl.AdmissionVeto(); err != nil {
		t.Fatalf("veto without a probe: %v", err)
	}
}
