package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestPeriodGrowsForTinyProportions exercises the quantization half of the
// §3.3 period heuristic: a real-rate job whose allocation is far below one
// dispatch tick per period should see its period grow so the budget spans
// at least MinBudgetTicks ticks.
func TestPeriodGrowsForTinyProportions(t *testing.T) {
	r := newRig(core.Config{PeriodAdaptation: true})
	q := r.kern.NewQueue("pipe", 1<<20)
	// A trickle producer: the consumer needs only a few ppt.
	prod := &workload.Producer{Queue: q, CyclesPerBlock: 400_000, Rate: workload.ConstantRate(2)}
	cons := &workload.Consumer{Queue: q, BlockBytes: 512, CyclesPerByte: 10}
	pt := r.kern.Spawn("producer", prod)
	ct := r.kern.Spawn("consumer", cons)
	if _, err := r.ctl.AddRealTime(pt, 100, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.reg.RegisterQueue(pt, q, progress.Producer)
	r.reg.RegisterQueue(ct, q, progress.Consumer)
	j := r.ctl.AddRealRate(ct, 0) // period 0: adaptable
	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()

	if j.Period() <= r.ctl.Config().DefaultPeriod {
		t.Fatalf("period = %v, want growth beyond the %v default for a tiny allocation",
			j.Period(), r.ctl.Config().DefaultPeriod)
	}
	if j.Period() > r.ctl.Config().MaxPeriod {
		t.Fatalf("period %v exceeded MaxPeriod %v", j.Period(), r.ctl.Config().MaxPeriod)
	}
}

// TestPeriodShrinksUnderJitter exercises the jitter half: with a tiny
// buffer, fill-level oscillations per period are huge relative to the
// buffer, so the period must shrink toward MinPeriod.
func TestPeriodShrinksUnderJitter(t *testing.T) {
	r := newRig(core.Config{PeriodAdaptation: true, MaxPeriod: 100 * sim.Millisecond})
	// Tiny queue: a single producer block swings the fill by 40%.
	q := r.kern.NewQueue("pipe", 50_000)
	prod := &workload.Producer{Queue: q, CyclesPerBlock: 400_000, Rate: workload.ConstantRate(50)}
	cons := &workload.Consumer{Queue: q, BlockBytes: 4096, CyclesPerByte: 40}
	pt := r.kern.Spawn("producer", prod)
	ct := r.kern.Spawn("consumer", cons)
	if _, err := r.ctl.AddRealTime(pt, 100, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.reg.RegisterQueue(pt, q, progress.Producer)
	r.reg.RegisterQueue(ct, q, progress.Consumer)
	j := r.ctl.AddRealRate(ct, 0)
	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()

	if j.Period() >= r.ctl.Config().DefaultPeriod {
		t.Fatalf("period = %v under heavy jitter, want shrink below the %v default",
			j.Period(), r.ctl.Config().DefaultPeriod)
	}
	if j.Period() < r.ctl.Config().MinPeriod {
		t.Fatalf("period %v below MinPeriod", j.Period())
	}
}

// TestPeriodPinnedWhenSpecified: a real-rate job that supplied its own
// period must never be adapted, even with adaptation enabled.
func TestPeriodPinnedWhenSpecified(t *testing.T) {
	r := newRig(core.Config{PeriodAdaptation: true})
	q := r.kern.NewQueue("pipe", 50_000)
	prod := &workload.Producer{Queue: q, CyclesPerBlock: 400_000, Rate: workload.ConstantRate(2)}
	cons := &workload.Consumer{Queue: q, BlockBytes: 512, CyclesPerByte: 10}
	pt := r.kern.Spawn("producer", prod)
	ct := r.kern.Spawn("consumer", cons)
	if _, err := r.ctl.AddRealTime(pt, 100, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.reg.RegisterQueue(pt, q, progress.Producer)
	r.reg.RegisterQueue(ct, q, progress.Consumer)
	j := r.ctl.AddRealRate(ct, 20*sim.Millisecond)
	r.start()
	r.run(5 * sim.Second)
	r.kern.Stop()
	if j.Period() != 20*sim.Millisecond {
		t.Fatalf("pinned period changed to %v", j.Period())
	}
}

// TestPeriodStaticWithoutAdaptation: the paper disabled the heuristic in
// its experiments; off must mean off.
func TestPeriodStaticWithoutAdaptation(t *testing.T) {
	r := newRig(core.Config{})
	q := r.kern.NewQueue("pipe", 1<<20)
	prod := &workload.Producer{Queue: q, CyclesPerBlock: 400_000, Rate: workload.ConstantRate(2)}
	cons := &workload.Consumer{Queue: q, BlockBytes: 512, CyclesPerByte: 10}
	pt := r.kern.Spawn("producer", prod)
	ct := r.kern.Spawn("consumer", cons)
	if _, err := r.ctl.AddRealTime(pt, 100, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.reg.RegisterQueue(pt, q, progress.Producer)
	r.reg.RegisterQueue(ct, q, progress.Consumer)
	j := r.ctl.AddRealRate(ct, 0)
	r.start()
	r.run(5 * sim.Second)
	r.kern.Stop()
	if j.Period() != r.ctl.Config().DefaultPeriod {
		t.Fatalf("period changed to %v with adaptation disabled", j.Period())
	}
}
