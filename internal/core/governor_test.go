package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/workload"
)

// saturatedSignals is a sample far over any trip band.
func saturatedSignals() overload.Signals {
	return overload.Signals{Desired: 5000, Granted: 850, Capacity: 900}
}

// governorAt walks a fresh fast-tripping governor to the requested rung.
func governorAt(r overload.Rung) *overload.Governor {
	g := overload.New(overload.Config{TripIntervals: 1, RecoverIntervals: 1 << 20})
	for g.Rung() < r {
		g.Observe(saturatedSignals())
	}
	return g
}

// TestRenegotiateRefusedForWatchdogManagedJobs is the
// watchdog-across-Renegotiate audit, pinned as a regression test: the
// renegotiation path only accepts reservation-holding classes, and the
// watchdog only manages real-rate jobs — the two never overlap. A
// demoted real-rate job must not be renegotiable, because Renegotiate
// overwrites desired/allocated wholesale and would silently clobber the
// ladder's fallback bookkeeping.
func TestRenegotiateRefusedForWatchdogManagedJobs(t *testing.T) {
	r := newRig(core.Config{WatchdogIntervals: 5, WatchdogRecovery: 3})
	th := r.kern.Spawn("stage", &workload.Hog{Burst: 400_000})
	m := &scriptedMetric{}
	r.reg.Register(th, m)
	j := r.ctl.AddRealRate(th, 10*sim.Millisecond)

	recovers := 0
	r.ctl.OnRecover(func(core.Degradation) { recovers++ })

	// Flat signal long enough for the watchdog to demote twice.
	r.start()
	r.run(sim.Second)
	if j.Degraded() != core.LevelMisc {
		t.Fatalf("setup: rung %v, want misc", j.Degraded())
	}
	allocBefore := j.Allocated()

	if err := r.ctl.Renegotiate(j, 500); err == nil {
		t.Fatal("renegotiation of a watchdog-managed real-rate job accepted")
	}
	if j.Degraded() != core.LevelMisc {
		t.Fatalf("refused renegotiation moved the ladder to %v", j.Degraded())
	}
	if j.Allocated() != allocBefore {
		t.Fatalf("refused renegotiation changed the allocation %d -> %d", allocBefore, j.Allocated())
	}
	if recovers != 0 {
		t.Fatalf("refused renegotiation fired %d recover events", recovers)
	}
	r.kern.Stop()
}

// TestRenegotiateLeavesWatchdogStateIntact renegotiates a real-time job
// while a real-rate sibling sits demoted: the admission-book update must
// not disturb the sibling's rung, and the sibling must still climb back
// once its signal livens.
func TestRenegotiateLeavesWatchdogStateIntact(t *testing.T) {
	r := newRig(core.Config{WatchdogIntervals: 5, WatchdogRecovery: 3})
	rt := r.kern.Spawn("rt", &workload.Hog{Burst: 400_000})
	jr, err := r.ctl.AddRealTime(rt, 100, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	th := r.kern.Spawn("stage", &workload.Hog{Burst: 400_000})
	m := &scriptedMetric{}
	r.reg.Register(th, m)
	j := r.ctl.AddRealRate(th, 10*sim.Millisecond)

	r.start()
	r.run(sim.Second)
	if j.Degraded() != core.LevelMisc {
		t.Fatalf("setup: rung %v, want misc", j.Degraded())
	}
	degradationsBefore := r.ctl.Health().Degradations

	if err := r.ctl.Renegotiate(jr, 300); err != nil {
		t.Fatalf("renegotiation within capacity rejected: %v", err)
	}
	r.run(100 * sim.Millisecond)
	if j.Degraded() != core.LevelMisc {
		t.Fatalf("renegotiating the rt job moved the sibling's ladder to %v", j.Degraded())
	}
	if h := r.ctl.Health(); h.Degradations != degradationsBefore {
		t.Fatalf("renegotiation changed the degradation count %d -> %d",
			degradationsBefore, h.Degradations)
	}

	// The sibling's recovery is unaffected by the renegotiated books.
	m.vary = true
	r.run(sim.Second)
	r.kern.Stop()
	if j.Degraded() != core.LevelRealRate {
		t.Fatalf("after recovery: rung %v, want real-rate", j.Degraded())
	}
	if jr.Allocated() != 300 {
		t.Fatalf("rt job allocated %d, want the renegotiated 300", jr.Allocated())
	}
}

// TestFreezeRungRefusesGrowthAdmitsShrink pins the freeze semantics:
// renegotiations to larger reservations bounce with a typed
// *core.OverloadError carrying a positive retry-after, shrinking is
// still welcome, and the throttle counter tracks the refusals.
func TestFreezeRungRefusesGrowthAdmitsShrink(t *testing.T) {
	r := newRig(core.Config{})
	th := r.kern.Spawn("rt", &workload.Hog{Burst: 400_000})
	j, err := r.ctl.AddRealTime(th, 200, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r.ctl.SetGovernor(governorAt(overload.Freeze))

	err = r.ctl.Renegotiate(j, 400)
	var oe *core.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("growth under freeze: error %T (%v), want *core.OverloadError", err, err)
	}
	if oe.Rung != "freeze" || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v, want rung freeze and positive retry-after", oe)
	}
	if j.Allocated() != 200 {
		t.Fatalf("refused growth changed the allocation to %d", j.Allocated())
	}
	if h := r.ctl.Health(); h.Throttled != 1 {
		t.Fatalf("Throttled = %d, want 1", h.Throttled)
	}

	if err := r.ctl.Renegotiate(j, 100); err != nil {
		t.Fatalf("shrink under freeze rejected: %v", err)
	}
	if j.Allocated() != 100 {
		t.Fatalf("shrink did not apply: allocated %d", j.Allocated())
	}
}

// TestAdmissionVetoFollowsRung pins the backpressure boundary: no veto at
// normal, typed veto with retry-after from throttle up.
func TestAdmissionVetoFollowsRung(t *testing.T) {
	r := newRig(core.Config{})
	if err := r.ctl.AdmissionVeto(); err != nil {
		t.Fatalf("veto without a governor: %v", err)
	}
	r.ctl.SetGovernor(governorAt(overload.Normal))
	if err := r.ctl.AdmissionVeto(); err != nil {
		t.Fatalf("veto at normal rung: %v", err)
	}
	r.ctl.SetGovernor(governorAt(overload.Throttle))
	err := r.ctl.AdmissionVeto()
	var oe *core.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("veto at throttle: error %T (%v), want *core.OverloadError", err, err)
	}
	if oe.Rung != "throttle" || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v", oe)
	}
	if h := r.ctl.Health(); h.Throttled == 0 {
		t.Fatal("veto did not count as throttled")
	}
}

// TestGovernorShedsInImportanceOrder drives the controller with more
// miscellaneous demand than the machine and a governor pinned past the
// shed rung: victims must fall in ascending importance order, and the
// reservation-holding job must never be touched.
func TestGovernorShedsInImportanceOrder(t *testing.T) {
	r := newRig(core.Config{})
	rt := r.kern.Spawn("rt", &workload.Hog{Burst: 400_000})
	if _, err := r.ctl.AddRealTime(rt, 200, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	imps := map[string]float64{"m0": 3, "m1": 1, "m2": 2}
	miscThreads := map[string]*kernel.Thread{}
	for name, imp := range imps {
		th := r.kern.Spawn(name, &workload.Hog{Burst: 400_000})
		j := r.ctl.AddMiscellaneous(th)
		r.ctl.SetImportance(j, imp)
		miscThreads[name] = th
	}
	r.ctl.SetGovernor(governorAt(overload.Shed))
	var shedOrder []string
	r.ctl.OnShed(func(j *core.Job, now sim.Time) {
		shedOrder = append(shedOrder, j.Thread().Name())
	})

	r.start()
	r.run(sim.Second)
	r.kern.Stop()

	// Three busy hogs desire ~2400 ppt of a 900 ppt machine: the governor
	// sheds in ascending importance until demand clears the recovery
	// band. With m1 and m2 gone the remaining ~1050 ppt fits under the
	// band, so the highest-importance hog survives — shedding is a
	// low-water mark, not a purge.
	want := []string{"m1", "m2"}
	if len(shedOrder) != len(want) {
		t.Fatalf("shed %v, want %v", shedOrder, want)
	}
	for i := range want {
		if shedOrder[i] != want[i] {
			t.Fatalf("shed order %v, want %v", shedOrder, want)
		}
	}
	if miscThreads["m0"].State() == kernel.StateExited {
		t.Fatal("highest-importance hog was shed below the recovery band")
	}
	if rt.State() == kernel.StateExited {
		t.Fatal("reservation-holding thread was shed")
	}
	if h := r.ctl.Health(); h.Sheds != 2 {
		t.Fatalf("Sheds = %d, want 2", h.Sheds)
	}
}
