package core

import "repro/internal/sim"

// This file is the controller's shard-facing surface: the pieces of one
// control interval (prologue → per-job sampling → squish → epilogue)
// exported individually so the sharded, staggered, event-driven control
// plane (internal/ctlplane) can drive them one shard at a time. The
// periodic global sweep (step) composes exactly the same pieces, so the
// two paths cannot drift.

// EpochPrologue begins one control epoch: it counts the step, folds missed
// deadlines into the effective threshold, reaps exited jobs, and flushes
// actuations deferred by faults. The control plane calls it once per
// epoch, on the first shard's tick.
func (c *Controller) EpochPrologue(now sim.Time) { c.prologue(now) }

// SampleJob runs pass 1 for one job: sample progress, run the watchdog,
// recompute the desire. epochs is the number of control intervals since
// the job was last sampled (≥ 1) and dt the same gap in seconds; the
// estimators integrate over the whole gap, so a skipped-then-resampled job
// converges to the same allocation the periodic sweep would have reached.
// It reports whether the job participates in the squish.
func (c *Controller) SampleJob(j *Job, now sim.Time, epochs int64) bool {
	dt := c.cfg.Interval.Seconds() * float64(epochs)
	return c.sampleJob(j, now, dt, epochs)
}

// PeekPressure reads a job's current raw summed pressure without any side
// effects: no fault perturbation, no watchdog, no filter step. The
// event-driven plane thresholds this against the job's last sampled
// pressure to decide whether a dirty signal actually moved far enough to
// warrant a re-sample.
func (c *Controller) PeekPressure(j *Job, now sim.Time) float64 {
	var sum float64
	for _, t := range j.members {
		sum += c.reg.SummedPressure(t, now)
	}
	if sum > 0.5 {
		sum = 0.5
	}
	if sum < -0.5 {
		sum = -0.5
	}
	return sum
}

// SquishApply runs pass 2 over one shard's squishable jobs with the
// shard's slice of the machine capacity: squish desires to fit, clamp,
// raise quality exceptions, and actuate changes. The scratch buffers are
// the controller's own — shard ticks are serialized by the simulation, so
// sharing them is safe and keeps every tick allocation-free.
func (c *Controller) SquishApply(squishable []*Job, desires []int, weights []float64, capacity int, now sim.Time) {
	if capacity < 0 {
		capacity = 0
	}
	c.squishApply(squishable, desires, weights, capacity, now)
}

// EpochEpilogue ends one control epoch: feed the governor the saturation
// signals aggregated across every shard and fire the per-step callback.
// desired and granted are the MaxProportion-clamped demand and granted
// proportion summed over all jobs. The control plane calls it once per
// epoch, on the last shard's tick, so governor rate deltas (misses,
// demotions) are per-epoch regardless of shard count.
func (c *Controller) EpochEpilogue(now sim.Time, desired, granted int) {
	if c.gov != nil {
		c.governorObserve(now, desired, granted)
	}
	if c.onStep != nil {
		c.onStep(now)
	}
}

// Admitted returns the proportion currently held by hard reservations
// (real-time and aperiodic jobs plus controller overhead) — what the
// control plane subtracts from the effective threshold to get the
// capacity available to adaptive jobs.
func (c *Controller) Admitted() int { return c.admitted }

// AdmitOverhead accounts an externally-spawned controller thread's
// reservation in the admission ledger, exactly as Start does for the
// single global controller thread. The control plane calls it once per
// shard thread it spawns in place of Start.
func (c *Controller) AdmitOverhead(proportion int) { c.admitted += proportion }

// MarkExternal records that an external control plane drives this
// controller; Start must not be called. The controller's own thread stays
// nil — the plane's shard threads are the overhead model instead.
func (c *Controller) MarkExternal() {
	if c.thread != nil {
		panic("core: controller already started; cannot hand to an external plane")
	}
	c.external = true
}

// External reports whether an external control plane drives this
// controller.
func (c *Controller) External() bool { return c.external }
