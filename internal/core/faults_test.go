package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// scriptedMetric is a progress metric the test steers: constant (flat)
// until vary is set, then wiggling within the healthy pressure band.
type scriptedMetric struct {
	vary bool
}

func (m *scriptedMetric) Pressure(now sim.Time) float64 {
	if !m.vary {
		return 0.2
	}
	return 0.1 + float64(now&0xff)/10000
}

func (m *scriptedMetric) Describe() string { return "scripted" }

// scriptedInjector is a minimal core.FaultInjector the tests toggle.
type scriptedInjector struct {
	nan         bool
	drop, delay bool
}

func (i *scriptedInjector) PerturbPressure(target string, now sim.Time, p float64) float64 {
	if i.nan {
		return nan()
	}
	return p
}

func (i *scriptedInjector) ActuationFault(target string, now sim.Time) (bool, bool) {
	return i.drop, i.delay
}

func nan() float64 { z := 0.0; return z / z }

func TestReservationValidationRejectsNonPositive(t *testing.T) {
	r := newRig(core.Config{})
	th := r.kern.Spawn("rt", &workload.Hog{Burst: 400_000})

	cases := []struct {
		name string
		err  error
	}{
		{"zero proportion", func() error {
			_, err := r.ctl.AddRealTime(th, 0, 10*sim.Millisecond)
			return err
		}()},
		{"negative proportion", func() error {
			_, err := r.ctl.AddRealTime(th, -100, 10*sim.Millisecond)
			return err
		}()},
		{"zero period", func() error {
			_, err := r.ctl.AddRealTime(th, 100, 0)
			return err
		}()},
		{"negative period", func() error {
			_, err := r.ctl.AddRealTime(th, 100, -sim.Millisecond)
			return err
		}()},
		{"aperiodic zero proportion", func() error {
			_, err := r.ctl.AddAperiodicRealTime(th, 0)
			return err
		}()},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var re *core.ReservationError
		if !errors.As(tc.err, &re) {
			t.Errorf("%s: error type %T, want *core.ReservationError", tc.name, tc.err)
		}
		if tc.err.Error() == "" {
			t.Errorf("%s: empty error string", tc.name)
		}
	}

	// A valid reservation still admits, and renegotiating it to a
	// non-positive proportion is refused without touching the admission
	// books.
	j, err := r.ctl.AddRealTime(th, 200, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.Renegotiate(j, 0); err == nil {
		t.Fatal("renegotiate to 0 ppt accepted")
	} else {
		var re *core.ReservationError
		if !errors.As(err, &re) {
			t.Fatalf("renegotiate error type %T, want *core.ReservationError", err)
		}
	}
	if j.Allocated() != 200 {
		t.Fatalf("rejected renegotiation changed the allocation to %d", j.Allocated())
	}
}

func TestWatchdogWalksLadderAndRecovers(t *testing.T) {
	r := newRig(core.Config{WatchdogIntervals: 5, WatchdogRecovery: 3})
	th := r.kern.Spawn("stage", &workload.Hog{Burst: 400_000})
	m := &scriptedMetric{}
	r.reg.Register(th, m)
	j := r.ctl.AddRealRate(th, 10*sim.Millisecond)

	var degrades, recovers []core.Degradation
	r.ctl.OnDegrade(func(d core.Degradation) { degrades = append(degrades, d) })
	r.ctl.OnRecover(func(d core.Degradation) { recovers = append(recovers, d) })

	// Phase 1: a bit-flat mid-range signal while the thread burns CPU —
	// the watchdog must demote real-rate → fallback → misc and stop there.
	r.start()
	r.run(sim.Second)
	if j.Degraded() != core.LevelMisc {
		t.Fatalf("after 1s of flat signal: rung %v, want misc", j.Degraded())
	}
	if len(degrades) != 2 {
		t.Fatalf("degrade events = %d, want 2 (fallback, then misc)", len(degrades))
	}
	if degrades[0].From != core.LevelRealRate || degrades[0].To != core.LevelFallback ||
		degrades[1].From != core.LevelFallback || degrades[1].To != core.LevelMisc {
		t.Fatalf("ladder walked %v->%v then %v->%v", degrades[0].From, degrades[0].To,
			degrades[1].From, degrades[1].To)
	}
	h := r.ctl.Health()
	if h.Degradations != 2 || h.JobsDegraded != 1 {
		t.Fatalf("health mid-fault = %+v", h)
	}

	// Phase 2: the signal livens; the job must climb back to the healthy
	// rung, with every recovery pairing a demotion.
	m.vary = true
	r.run(sim.Second)
	r.kern.Stop()
	if j.Degraded() != core.LevelRealRate {
		t.Fatalf("after recovery: rung %v, want real-rate", j.Degraded())
	}
	if len(recovers) != 2 {
		t.Fatalf("recover events = %d, want 2", len(recovers))
	}
	h = r.ctl.Health()
	if h.Recoveries != 2 || h.JobsDegraded != 0 {
		t.Fatalf("health after recovery = %+v", h)
	}
}

func TestWatchdogDisabledByNegativeIntervals(t *testing.T) {
	r := newRig(core.Config{WatchdogIntervals: -1})
	th := r.kern.Spawn("stage", &workload.Hog{Burst: 400_000})
	r.reg.Register(th, &scriptedMetric{})
	j := r.ctl.AddRealRate(th, 10*sim.Millisecond)
	r.start()
	r.run(2 * sim.Second)
	r.kern.Stop()
	if j.Degraded() != core.LevelRealRate {
		t.Fatalf("disabled watchdog demoted to %v", j.Degraded())
	}
	if h := r.ctl.Health(); h.Degradations != 0 {
		t.Fatalf("disabled watchdog recorded %d degradations", h.Degradations)
	}
}

func TestRejectedSignalHoldsDesireAndCounts(t *testing.T) {
	// NaN pressure at the controller boundary: the sample is rejected and
	// counted, the estimator's desire is held (anti-windup), and the
	// typed fault reaches the OnFault hook. The watchdog is disabled to
	// isolate the sanitizer.
	r := newRig(core.Config{WatchdogIntervals: -1})
	th := r.kern.Spawn("stage", &workload.Hog{Burst: 400_000})
	m := &scriptedMetric{vary: true}
	r.reg.Register(th, m)
	j := r.ctl.AddRealRate(th, 10*sim.Millisecond)
	inj := &scriptedInjector{}
	r.ctl.SetFaults(inj)
	var kinds []string
	r.ctl.OnFault(func(f core.Fault) { kinds = append(kinds, f.Kind) })

	r.start()
	r.run(sim.Second)
	if len(kinds) != 0 {
		t.Fatalf("healthy run raised faults: %v", kinds)
	}
	held := j.Desired()
	inj.nan = true
	r.run(500 * sim.Millisecond)
	r.kern.Stop()
	if j.Desired() != held {
		t.Fatalf("desire moved %d -> %d while every sample was NaN", held, j.Desired())
	}
	h := r.ctl.Health()
	if h.SignalsRejected == 0 {
		t.Fatal("no rejected signals counted")
	}
	if len(kinds) == 0 || kinds[0] != "signal-rejected" {
		t.Fatalf("fault kinds = %v, want signal-rejected events", kinds)
	}
}

func TestActuationFaultsDropDelayAndRecover(t *testing.T) {
	r := newRig(core.Config{})
	th := r.kern.Spawn("misc", &workload.Hog{Burst: 400_000})
	j := r.ctl.AddMiscellaneous(th)
	inj := &scriptedInjector{}
	r.ctl.SetFaults(inj)
	kinds := map[string]int{}
	r.ctl.OnFault(func(f core.Fault) { kinds[f.Kind]++ })

	r.start()
	// Dropped actuations: the dispatcher never sees the controller's
	// pushes, the counters climb, nothing panics.
	inj.drop = true
	r.run(500 * sim.Millisecond)
	if h := r.ctl.Health(); h.ActuationsDropped == 0 {
		t.Fatalf("no dropped actuations counted: %+v", h)
	}
	if kinds["actuation-dropped"] == 0 {
		t.Fatal("no actuation-dropped fault events")
	}

	// Delayed actuations: deferred one control interval, then applied.
	inj.drop, inj.delay = false, true
	r.run(500 * sim.Millisecond)
	if h := r.ctl.Health(); h.ActuationsDelayed == 0 {
		t.Fatalf("no delayed actuations counted: %+v", h)
	}
	if kinds["actuation-delayed"] == 0 {
		t.Fatal("no actuation-delayed fault events")
	}

	// Faults off: the controller keeps controlling — the lone misc job
	// still grows to a large allocation.
	inj.delay = false
	r.run(4 * sim.Second)
	r.kern.Stop()
	if j.Allocated() < 500 {
		t.Fatalf("post-fault allocation = %d ppt; controller did not recover", j.Allocated())
	}
}
