package core

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/pid"
	"repro/internal/sim"
)

// Class is the controller's thread taxonomy (Figure 2 of the paper):
// whether proportion, period, and a progress metric were specified
// determines how the controller treats the job.
type Class int

// The four classes of Figure 2, plus the interactive heuristic class of
// §3.2 (a server listening on a tty, scheduled with a small period and a
// proportion estimated from its burst lengths).
const (
	// RealTime jobs specify both proportion and period: a reservation the
	// controller honors and never adapts.
	RealTime Class = iota
	// AperiodicRealTime jobs specify proportion only; the controller
	// assigns the default period.
	AperiodicRealTime
	// RealRate jobs supply a progress metric but neither proportion nor
	// period; the controller estimates both.
	RealRate
	// Miscellaneous jobs supply nothing; a constant-pressure heuristic
	// grows their allocation until they are satisfied or squished.
	Miscellaneous
	// Interactive jobs are known to wait on a tty-like wait queue; they
	// get a small period and a proportion estimated from typical burst
	// length before blocking.
	Interactive
)

func (c Class) String() string {
	switch c {
	case RealTime:
		return "real-time"
	case AperiodicRealTime:
		return "aperiodic-real-time"
	case RealRate:
		return "real-rate"
	case Miscellaneous:
		return "miscellaneous"
	case Interactive:
		return "interactive"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Adaptive reports whether the controller adjusts this class's proportion.
func (c Class) Adaptive() bool {
	return c == RealRate || c == Miscellaneous || c == Interactive
}

// Job is one controlled entity: in the paper's terms, "a collection of
// cooperating threads"; here one thread per job (the prototype's jobs map
// to threads the same way).
type Job struct {
	thread *kernel.Thread
	// members lists every thread of the job, members[0] == thread. "A job
	// is a collection of cooperating threads that may or may not be
	// contained in the same process" (§3); the allocation belongs to the
	// job and is split across its members.
	members []*kernel.Thread
	class   Class

	// importance is the weighted-fair-share weight (§3.3: "we have
	// extended this simple fair-share policy by associating an importance
	// with each thread"). Default 1.
	importance float64

	// specified holds the user-supplied proportion for real-time and
	// aperiodic real-time jobs (parts per thousand).
	specified int
	// period is the current period (specified or assigned).
	period sim.Duration
	// periodFixed marks periods that must not be adapted (real-time jobs
	// or explicitly pinned real-rate jobs).
	periodFixed bool

	// g is the per-job PID pressure filter (the paper's G).
	g *pid.Controller
	// lastRaw is the most recent raw summed pressure (before G), used to
	// detect saturated queues for quality exceptions.
	lastRaw float64

	// desired is the pre-squish allocation computed this interval.
	desired int
	// allocated is the post-squish actuated allocation.
	allocated int
	// squished reports whether the last interval reduced this job below
	// its desire.
	squished bool

	// lastCPU is the thread's cpu time at the previous control interval,
	// for usage measurement (the reclamation path of Figure 4).
	lastCPU sim.Duration
	// usageEWMA smooths used/granted over ≈10 intervals. A thread burns
	// its per-period budget in bursts and naps the rest of the period, so
	// a single interval's usage aliases against the nap cycle; the
	// reclamation decision needs the average.
	usageEWMA float64
	// usedPPT smooths the thread's absolute CPU consumption, expressed in
	// parts-per-thousand of the machine, over the same horizon. The
	// miscellaneous heuristic sizes desire from it.
	usedPPT float64
	// lastBlocked is the thread's voluntary block count at the previous
	// interval, for the interactive burst estimator.
	lastBlocked uint64
	// cpuBlockMark is the thread's cpu time at the last completed burst;
	// the CPU consumed between block events, divided by the number of
	// blocks, is the true per-burst cost even when a burst spans many
	// control intervals.
	cpuBlockMark sim.Duration
	// burstEstimate is the low-passed CPU-per-burst estimate for
	// interactive jobs.
	burstEstimate sim.Duration

	// reclaiming marks a miscellaneous job whose smoothed usage fell
	// below the reclaim threshold; hysteresis keeps the heuristic from
	// dithering at the boundary.
	reclaiming bool

	// overloadStreak counts consecutive intervals at saturated positive
	// pressure while squished, used to raise quality exceptions.
	overloadStreak int

	// degraded is the job's rung on the graceful-degradation ladder
	// (LevelRealRate when healthy). Only real-rate jobs descend.
	degraded DegradeLevel
	// flatStreak counts consecutive control intervals with a flat or
	// rejected progress sample; recoverStreak counts consecutive moving
	// samples while degraded. The watchdog trades them off.
	flatStreak    int
	recoverStreak int
	// lastSample is the previous accepted pressure sample, for the
	// watchdog's flat-signal comparison; haveSample gates the first one.
	lastSample float64
	haveSample bool
	// fallback is the fixed proportion held at LevelFallback: the last
	// allocation granted while the signal was still trusted.
	fallback int

	// fill tracks recent summed-pressure samples for the period
	// adaptation heuristic (oscillation detection). fillFor is the thread
	// name the series was last named after, preserved across pooling so a
	// recycled job reissued to a same-named thread skips the rename.
	fill    *metrics.Series
	fillFor string

	// stats
	actuations uint64

	// freeNext links the object into the controller's free list while
	// pooled (recycle mode only).
	freeNext *Job
}

// Thread returns the job's primary kernel thread.
func (j *Job) Thread() *kernel.Thread { return j.thread }

// Members returns all of the job's threads. The slice must not be
// modified.
func (j *Job) Members() []*kernel.Thread { return j.members }

// cpuTime sums the CPU consumed by every member.
func (j *Job) cpuTime() sim.Duration {
	var total sim.Duration
	for _, t := range j.members {
		total += t.CPUTime()
	}
	return total
}

// blockedCount sums voluntary blocks across members.
func (j *Job) blockedCount() uint64 {
	var total uint64
	for _, t := range j.members {
		total += t.BlockedCount()
	}
	return total
}

// Class returns the job's taxonomy class.
func (j *Job) Class() Class { return j.class }

// Importance returns the job's weighted-fair-share weight.
func (j *Job) Importance() float64 { return j.importance }

// Allocated returns the proportion (ppt) actuated in the last interval.
func (j *Job) Allocated() int { return j.allocated }

// Desired returns the pre-squish proportion computed in the last interval.
func (j *Job) Desired() int { return j.desired }

// Period returns the job's current period.
func (j *Job) Period() sim.Duration { return j.period }

// Squished reports whether overload reduced the job below its desire in
// the last interval.
func (j *Job) Squished() bool { return j.squished }

// Actuations returns how many times the controller changed this job's
// reservation.
func (j *Job) Actuations() uint64 { return j.actuations }

// Pressure returns the most recent PID output (the paper's Q_t). Only
// real-rate jobs carry the filter; other classes read zero.
func (j *Job) Pressure() float64 {
	if j.g == nil {
		return 0
	}
	return j.g.Output()
}

// RawPressure returns the most recent raw summed pressure sample (before
// the PID filter) — the signal the event-driven plane thresholds against.
func (j *Job) RawPressure() float64 { return j.lastRaw }

// Degraded returns the job's rung on the graceful-degradation ladder
// (LevelRealRate when healthy).
func (j *Job) Degraded() DegradeLevel { return j.degraded }
