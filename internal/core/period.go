package core

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// adaptPeriod implements §3.3's period heuristic for aperiodic real-rate
// jobs: "a simple heuristic which increases the period to reduce
// quantization error when the proportion is small, since the dispatcher can
// only allocate multiples of the dispatch interval. The controller
// decreases the period to reduce jitter, which we detect via large
// oscillations relative to the buffer size", where oscillation is "the
// amount of change in fill-level over the course of a period, averaged over
// several periods".
//
// The paper disabled this heuristic in all its experiments; we implement it
// (and benchmark it as an ablation) but leave it off by default too.
func (c *Controller) adaptPeriod(j *Job, now sim.Time) {
	if j.periodFixed || j.class != RealRate {
		return
	}
	tick := c.kern.Config().TickInterval

	// Jitter: mean peak-to-peak swing of the fill signal per period,
	// averaged over the last several periods. The fill series stores the
	// summed pressure in [-1/2, 1/2], so amplitude 1.0 = the whole buffer.
	var amp float64
	if j.fill != nil && j.fill.Len() >= 4 {
		window := j.period
		from := now.Add(-sim.Duration(8) * window)
		if from < 0 {
			from = 0
		}
		amp = metrics.OscillationAmplitude(j.fill, from, now, window)
	}
	if amp > c.cfg.JitterThreshold {
		if halved := j.period / 2; halved >= c.cfg.MinPeriod {
			j.period = halved
		}
		return
	}

	// Quantization: the budget should span at least MinBudgetTicks
	// dispatch intervals, or the thread's allocation rounds badly. Grow
	// only while the fill is quiet (hysteresis against the jitter rule).
	budget := sim.Duration(int64(j.period) * int64(j.allocated) / pptDenom)
	if budget < sim.Duration(c.cfg.MinBudgetTicks)*tick && amp < c.cfg.JitterThreshold/2 {
		if doubled := j.period * 2; doubled <= c.cfg.MaxPeriod {
			j.period = doubled
		}
	}
}
