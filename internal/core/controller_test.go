package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/progress"
	"repro/internal/rbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// rig is a full machine: kernel + RBS dispatcher + registry + controller.
type rig struct {
	eng    *sim.Engine
	kern   *kernel.Kernel
	policy *rbs.Policy
	reg    *progress.Registry
	ctl    *core.Controller
}

func newRig(cfg core.Config) *rig {
	eng := sim.NewEngine()
	policy := rbs.New()
	kern := kernel.New(eng, kernel.DefaultConfig(), policy)
	reg := progress.NewRegistry()
	ctl := core.New(kern, policy, reg, cfg)
	return &rig{eng: eng, kern: kern, policy: policy, reg: reg, ctl: ctl}
}

func (r *rig) run(d sim.Duration) {
	r.eng.RunFor(d)
}

func (r *rig) start() {
	r.ctl.Start()
	r.kern.Start()
}

func TestControllerRunsAtConfiguredRate(t *testing.T) {
	r := newRig(core.Config{})
	r.start()
	r.run(sim.Second)
	r.kern.Stop()
	// 100 Hz for 1s ≈ 100 steps.
	if s := r.ctl.Steps(); s < 95 || s > 105 {
		t.Fatalf("controller steps = %d, want ≈100", s)
	}
}

func TestRealTimeJobReservationHonored(t *testing.T) {
	r := newRig(core.Config{})
	th := r.kern.Spawn("rt", &workload.Hog{Burst: 400_000})
	if _, err := r.ctl.AddRealTime(th, 300, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.start()
	r.run(5 * sim.Second)
	r.kern.Stop()
	got := th.CPUTime().Seconds() / 5
	if got < 0.29 || got > 0.36 {
		t.Fatalf("real-time job share = %.3f, want ≈0.30", got)
	}
}

func TestAdmissionControlRejectsOverSubscription(t *testing.T) {
	r := newRig(core.Config{})
	a := r.kern.Spawn("a", &workload.Hog{})
	b := r.kern.Spawn("b", &workload.Hog{})
	if _, err := r.ctl.AddRealTime(a, 600, 10*sim.Millisecond); err != nil {
		t.Fatalf("first reservation rejected: %v", err)
	}
	_, err := r.ctl.AddRealTime(b, 400, 10*sim.Millisecond)
	if err == nil {
		t.Fatal("oversubscribing reservation accepted")
	}
	if _, ok := err.(*core.AdmissionError); !ok {
		t.Fatalf("error type = %T, want *core.AdmissionError", err)
	}
	// A smaller request must fit.
	if _, err := r.ctl.AddRealTime(b, 200, 10*sim.Millisecond); err != nil {
		t.Fatalf("fitting reservation rejected: %v", err)
	}
}

func TestMiscellaneousJobGrowsUntilSatisfied(t *testing.T) {
	// A lone miscellaneous hog should ramp up to a large allocation
	// (constant pressure, nothing competing).
	r := newRig(core.Config{})
	th := r.kern.Spawn("misc", &workload.Hog{Burst: 400_000})
	j := r.ctl.AddMiscellaneous(th)
	r.start()
	r.run(5 * sim.Second)
	r.kern.Stop()
	if j.Allocated() < 500 {
		t.Fatalf("lone misc job allocation = %d ppt, want to grow large", j.Allocated())
	}
	// And it should actually receive the CPU.
	if th.CPUTime().Seconds()/5 < 0.5 {
		t.Fatalf("misc job CPU share = %.3f", th.CPUTime().Seconds()/5)
	}
}

func TestTwoMiscJobsConvergeToEqualShares(t *testing.T) {
	// §3.3: "In the absence of other information, this policy results in
	// equal allocation of the CPU to all competing jobs over time."
	r := newRig(core.Config{})
	a := r.kern.Spawn("misc-a", &workload.Hog{Burst: 400_000})
	b := r.kern.Spawn("misc-b", &workload.Hog{Burst: 400_000})
	r.ctl.AddMiscellaneous(a)
	r.ctl.AddMiscellaneous(b)
	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()
	sa := a.CPUTime().Seconds()
	sb := b.CPUTime().Seconds()
	ratio := sa / sb
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("misc jobs split %.2fs/%.2fs, want ≈equal", sa, sb)
	}
}

func TestImportanceWeightsShares(t *testing.T) {
	// Weighted fair share: "For two jobs that both desire more than the
	// available CPU, the more important job will end up with the higher
	// percentage", but no starvation.
	r := newRig(core.Config{})
	hi := r.kern.Spawn("important", &workload.Hog{Burst: 400_000})
	lo := r.kern.Spawn("unimportant", &workload.Hog{Burst: 400_000})
	jh := r.ctl.AddMiscellaneous(hi)
	jl := r.ctl.AddMiscellaneous(lo)
	r.ctl.SetImportance(jh, 4)
	r.ctl.SetImportance(jl, 1)
	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()
	sh := hi.CPUTime().Seconds()
	sl := lo.CPUTime().Seconds()
	if sh <= sl*1.3 {
		t.Fatalf("importance had no effect: important %.2fs vs unimportant %.2fs", sh, sl)
	}
	if sl < 0.5 {
		t.Fatalf("unimportant job starved: %.2fs of CPU in 10s", sl)
	}
}

// buildPipeline wires the Figure 6 pulse pipeline: a reserved producer at a
// fixed rate and a controlled real-rate consumer.
//
// Calibration (400 MHz clock): the producer at 100 ppt runs 40M cycles/s,
// looping 400k cycles per block, so 100 blocks/s; at the base rate of 50
// bytes/Kcycle each block is 20 kB, i.e. ≈2 MB/s of data. A consumer cost
// of 40 cycles/byte then needs 80M cycles/s = 200 ppt at the base rate and
// 400 ppt when the producer's rate doubles.
func buildPipeline(r *rig, qSize int64, prodProp int, rate workload.RateFunc, cyclesPerByte float64) (*kernel.Queue, *kernel.Thread, *kernel.Thread) {
	q := r.kern.NewQueue("pipe", qSize)
	prod := &workload.Producer{Queue: q, CyclesPerBlock: 400_000, Rate: rate}
	cons := &workload.Consumer{Queue: q, BlockBytes: 4096, CyclesPerByte: cyclesPerByte}
	pt := r.kern.Spawn("producer", prod)
	ct := r.kern.Spawn("consumer", cons)
	if _, err := r.ctl.AddRealTime(pt, prodProp, 10*sim.Millisecond); err != nil {
		panic(err)
	}
	r.reg.RegisterQueue(pt, q, progress.Producer)
	r.reg.RegisterQueue(ct, q, progress.Consumer)
	r.ctl.AddRealRate(ct, 10*sim.Millisecond)
	return q, pt, ct
}

func TestRealRateConsumerTracksProducer(t *testing.T) {
	// Steady state: producer at a fixed reservation and rate; the
	// controller must find the consumer allocation that balances the
	// queue near half-full and matches throughput.
	r := newRig(core.Config{})
	q, pt, ct := buildPipeline(r, 1<<20, 100, workload.ConstantRate(50), 40)
	_ = pt
	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()

	if err := q.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Throughput match: consumed ≈ produced (queue holds the rest).
	if q.Consumed() < q.Produced()*8/10 {
		t.Fatalf("consumer lagging: consumed %d of %d produced", q.Consumed(), q.Produced())
	}
	// Fill should settle near half.
	fl := q.FillLevel()
	if fl < 0.4 || fl > 0.6 {
		t.Fatalf("fill level settled at %.3f, want ≈0.5", fl)
	}
	// Consumer should be near the matched 200 ppt, discovered without any
	// manual configuration.
	j, _ := r.ctl.JobOf(ct)
	if j.Allocated() < 150 || j.Allocated() > 280 {
		t.Fatalf("consumer allocation = %d ppt, want ≈200", j.Allocated())
	}
}

func TestConsumerAllocationDoublesOnRateStep(t *testing.T) {
	// The Figure 6 experiment's core claim: when the producer doubles its
	// rate, the controller doubles the consumer's allocation within
	// roughly a third of a second.
	r := newRig(core.Config{})
	rate := workload.StepSchedule([]workload.Step{
		{At: 0, Rate: 50},
		{At: sim.Time(4 * sim.Second), Rate: 100},
	})
	q, _, ct := buildPipeline(r, 1<<20, 100, rate, 40)

	alloc := metrics.NewSeries("consumer.alloc")
	r.ctl.OnStep(func(now sim.Time) {
		j, _ := r.ctl.JobOf(ct)
		alloc.Add(now, float64(j.Allocated()))
	})
	r.start()
	r.run(8 * sim.Second)
	r.kern.Stop()

	before := alloc.TimeWeightedMean(sim.Time(3*sim.Second), sim.Time(4*sim.Second))
	after := alloc.TimeWeightedMean(sim.Time(6*sim.Second), sim.Time(8*sim.Second))
	if after < before*1.6 || after > before*2.6 {
		t.Fatalf("allocation before=%.1f after=%.1f, want ≈2x", before, after)
	}
	// Response time: from the step to 90% of the new level.
	resp := metrics.MeasureStep(alloc, sim.Time(4*sim.Second), before, after, sim.Time(8*sim.Second))
	if !resp.Settled {
		t.Fatal("allocation never settled after the rate step")
	}
	if resp.RiseTime > 1500*sim.Millisecond {
		t.Fatalf("rise time = %v, want sub-1.5s (paper: ≈1/3s)", resp.RiseTime)
	}
	if err := q.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSquishUnderLoadFavorsRealRate(t *testing.T) {
	// Figure 7: with a hog loading the machine, the consumer must still
	// track the producer — the hog loses allocation to the consumer whose
	// pressure grows as it falls behind.
	r := newRig(core.Config{})
	q, _, ct := buildPipeline(r, 1<<20, 100, workload.ConstantRate(50), 40)
	hog := r.kern.Spawn("hog", &workload.Hog{Burst: 400_000})
	r.ctl.AddMiscellaneous(hog)
	r.start()
	r.run(15 * sim.Second)
	r.kern.Stop()

	// Consumer keeps up overall.
	if q.Consumed() < q.Produced()*7/10 {
		t.Fatalf("consumer lagging under load: %d of %d", q.Consumed(), q.Produced())
	}
	// Hog gets the leftover but not zero (no starvation).
	hogShare := hog.CPUTime().Seconds() / 15
	if hogShare < 0.1 {
		t.Fatalf("hog starved: share %.3f", hogShare)
	}
	if hogShare > 0.85 {
		t.Fatalf("hog unhindered: share %.3f", hogShare)
	}
	j, _ := r.ctl.JobOf(ct)
	_ = j
}

func TestReclamationOfUnusedAllocation(t *testing.T) {
	// A consumer whose producer dries up (bottleneck elsewhere) must have
	// its allocation reclaimed: Figure 4's P−C path.
	r := newRig(core.Config{})
	rate := workload.StepSchedule([]workload.Step{
		{At: 0, Rate: 50},
		{At: sim.Time(4 * sim.Second), Rate: 1}, // producer nearly stops
	})
	_, _, ct := buildPipeline(r, 1<<20, 100, rate, 40)
	r.start()
	r.run(4 * sim.Second)
	j, _ := r.ctl.JobOf(ct)
	peak := j.Allocated()
	r.run(6 * sim.Second)
	r.kern.Stop()
	if j.Allocated() >= peak {
		t.Fatalf("allocation not reclaimed: peak %d, now %d", peak, j.Allocated())
	}
	if j.Allocated() > 40 {
		t.Fatalf("idle consumer still holds %d ppt", j.Allocated())
	}
}

func TestNoStarvationInvariant(t *testing.T) {
	// Every live adaptive job keeps at least the floor allocation, even
	// under gross overload.
	r := newRig(core.Config{})
	var jobs []*core.Job
	for i := 0; i < 8; i++ {
		th := r.kern.Spawn("misc", &workload.Hog{Burst: 400_000})
		jobs = append(jobs, r.ctl.AddMiscellaneous(th))
	}
	r.start()
	r.run(5 * sim.Second)
	r.kern.Stop()
	min := r.ctl.Config().MinProportion
	for i, j := range jobs {
		if j.Allocated() < min {
			t.Fatalf("job %d allocated %d < floor %d", i, j.Allocated(), min)
		}
		if j.Thread().CPUTime() == 0 {
			t.Fatalf("job %d starved outright", i)
		}
	}
}

func TestQualityExceptionOnSustainedOverload(t *testing.T) {
	// Producer reserved at a high rate; consumer needs more than the
	// machine has left. The queue pins full, pressure saturates, and the
	// controller must raise a quality exception.
	r := newRig(core.Config{})
	// Consumer needs 400 cycles/byte at 2 MB/s = 800M cycles/s = 2000 ppt:
	// far beyond the machine. The queue pins full while the consumer is
	// squished to what is left.
	q, _, _ := buildPipeline(r, 1<<20, 100, workload.ConstantRate(50), 400)
	raised := 0
	r.ctl.OnQuality(func(ex core.QualityException) { raised++ })
	r.start()
	r.run(20 * sim.Second)
	r.kern.Stop()
	if raised == 0 && len(r.ctl.Exceptions()) == 0 {
		t.Fatalf("no quality exception despite overload (fill=%.2f)", q.FillLevel())
	}
}

func TestJobRemovalOnExit(t *testing.T) {
	r := newRig(core.Config{})
	count := 0
	th := r.kern.Spawn("mortal", kernel.ProgramFunc(func(tt *kernel.Thread, now sim.Time) kernel.Op {
		count++
		if count > 10 {
			return kernel.OpExit{}
		}
		return kernel.OpCompute{Cycles: 100_000}
	}))
	r.ctl.AddMiscellaneous(th)
	r.start()
	r.run(2 * sim.Second)
	r.kern.Stop()
	if len(r.ctl.Jobs()) != 0 {
		t.Fatalf("%d jobs left after thread exit", len(r.ctl.Jobs()))
	}
}

func TestInteractiveJobSizedFromBursts(t *testing.T) {
	r := newRig(core.Config{})
	tty := kernel.NewWaitQueue("tty")
	ij := &workload.InteractiveJob{TTY: tty, Burst: 2_000_000} // 5ms bursts
	it := r.kern.Spawn("editor", ij)
	src := &workload.EventSource{Kernel: r.kern, Target: ij, Interval: 50 * sim.Millisecond}
	st := r.kern.Spawn("user", src)
	r.ctl.AddInteractive(it)
	// The event source models an input device; give it a small real-time
	// reservation with a short period so events are delivered on time
	// (the paper schedules the X server the same way).
	if _, err := r.ctl.AddRealTime(st, 20, 5*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Competing load.
	hog := r.kern.Spawn("hog", &workload.Hog{Burst: 400_000})
	r.ctl.AddMiscellaneous(hog)
	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()

	if ij.Handled() < 150 {
		t.Fatalf("interactive job handled %d events, want ≈200", ij.Handled())
	}
	j, _ := r.ctl.JobOf(it)
	// 5ms burst per 30ms period with 1.5 headroom ≈ 250 ppt.
	if j.Allocated() < 100 || j.Allocated() > 500 {
		t.Fatalf("interactive allocation = %d ppt, want ≈250", j.Allocated())
	}
}

func TestEffectiveThresholdRecoversToConfigured(t *testing.T) {
	r := newRig(core.Config{})
	r.start()
	r.run(sim.Second)
	r.kern.Stop()
	if r.ctl.EffectiveThreshold() != r.ctl.Config().OverloadThreshold {
		t.Fatalf("effective threshold = %d, want %d on a healthy machine",
			r.ctl.EffectiveThreshold(), r.ctl.Config().OverloadThreshold)
	}
}

// kernelProgramCountdown returns a program that computes n bursts and exits.
func kernelProgramCountdown(counter *int, bursts int) kernel.Program {
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		*counter++
		if *counter > bursts {
			return kernel.OpExit{}
		}
		return kernel.OpCompute{Cycles: 400_000}
	})
}

// TestSMPCapacityGeneralization pins the multi-CPU capacity math: the
// admission ceiling scales to OverloadThreshold × CPUs, no single
// reservation can exceed one CPU's threshold, and the squish hands
// adaptive jobs capacity beyond 1000 ppt in aggregate.
func TestSMPCapacityGeneralization(t *testing.T) {
	eng := sim.NewEngine()
	p := rbs.New()
	cfg := kernel.DefaultConfig()
	cfg.CPUs = 4
	k := kernel.New(eng, cfg, p)
	reg := progress.NewRegistry()
	c := core.New(k, p, reg, core.Config{})
	c.Start()

	// Per-thread cap: even with ~3550 ppt available on 4 CPUs, one thread
	// cannot reserve more than one CPU's threshold (900).
	th := k.Spawn("big", &workload.Hog{Burst: 1_000_000})
	if _, err := c.AddRealTime(th, 950, 10*sim.Millisecond); err == nil {
		t.Fatal("a 950 ppt single-thread reservation was admitted on a 4-CPU machine")
	}
	k.Retire(th)

	// Aggregate admission goes far beyond one CPU: 4 × 800 = 3200 ppt of
	// hard reservations fit under the 3600 ceiling (minus the controller's
	// own 50).
	for i := 0; i < 4; i++ {
		th := k.Spawn("rt", &workload.Hog{Burst: 1_000_000})
		if _, err := c.AddRealTime(th, 800, 10*sim.Millisecond); err != nil {
			t.Fatalf("reservation %d rejected: %v", i, err)
		}
	}
	// The next 800 must bounce: 50 + 4×800 + 800 > 3600.
	th2 := k.Spawn("over", &workload.Hog{Burst: 1_000_000})
	if _, err := c.AddRealTime(th2, 800, 10*sim.Millisecond); err == nil {
		t.Fatal("admission exceeded the 4-CPU ceiling")
	}
	k.Retire(th2)

	// Adaptive jobs squish into the leftover capacity, which is still
	// several hundred ppt here — on one CPU it would be negative.
	m := k.Spawn("hog", &workload.Hog{Burst: 1_000_000})
	c.AddMiscellaneous(m)
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()
	j, _ := c.JobOf(m)
	if j.Allocated() <= 0 {
		t.Fatalf("misc job got %d ppt on a machine with spare capacity", j.Allocated())
	}
	if got := c.EffectiveThreshold(); got > 900*4 {
		t.Fatalf("effective threshold %d exceeds the scaled ceiling %d", got, 900*4)
	}
}
