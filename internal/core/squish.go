package core

// squish reduces desired allocations to fit capacity, implementing §3.3's
// overload response: "it squishes each miscellaneous or real-rate job's
// proposed allocation by an amount proportional to the allocation",
// extended to weighted fair share where importance is the weighting factor.
//
// Each job's reduction is proportional to desire/weight, so equal-weight
// jobs are scaled multiplicatively (the paper's proportional squish: over
// time, constant-pressure jobs equalize), and a more important job gives up
// less ("importance determines the likelihood that a thread will get its
// desired allocation"). Reductions clamp at the non-zero floor so no job
// is ever starved, with the remainder redistributed over the others.
//
// squish returns the allocations in the same order as the inputs. It
// panics if capacity cannot hold the floors — callers must size floor and
// capacity so that floor·len(desires) ≤ capacity.
func squish(desires []int, weights []float64, capacity, floor int) []int {
	n := len(desires)
	out := make([]int, n)
	frozen := make([]bool, n)
	squishInto(out, frozen, desires, weights, capacity, floor)
	return out
}

// squishWeightEps stands in for non-positive importance weights, which the
// public API rejects but the arithmetic must still survive (a zero weight
// would otherwise put ±Inf into the proportional mass and NaN the cuts).
const squishWeightEps = 1e-9

// squishInto is squish writing into caller-owned buffers: out and frozen
// must have the inputs' length. The controller calls it every interval
// with persistent scratch, so the 100 Hz actuation loop does not allocate.
func squishInto(out []int, frozen []bool, desires []int, weights []float64, capacity, floor int) {
	n := len(desires)
	total := 0
	for i, d := range desires {
		if d < floor {
			d = floor
		}
		out[i] = d
		frozen[i] = false
		total += d
	}
	if total <= capacity {
		return
	}
	if floor*n > capacity {
		panic("core: squish capacity cannot hold allocation floors")
	}

	// Iteratively remove the excess. Jobs pinned at the floor drop out of
	// the distribution and their share is re-spread; at most n rounds.
	excess := total - capacity
	for round := 0; round < n && excess > 0; round++ {
		// Weight mass of the unfrozen jobs: reduction_i ∝ out_i / w_i.
		var mass float64
		for i := range out {
			if !frozen[i] {
				mass += float64(out[i]) / weightOf(weights, i)
			}
		}
		if mass <= 0 {
			break
		}
		remaining := 0
		for i := range out {
			if frozen[i] {
				continue
			}
			cut := int(float64(excess) * (float64(out[i]) / weightOf(weights, i)) / mass)
			if cut >= out[i]-floor {
				cut = out[i] - floor
				frozen[i] = true
			}
			out[i] -= cut
			remaining += cut
		}
		excess -= remaining
		if remaining == 0 {
			break // integer rounding stalled; the shave below finishes
		}
	}
	// Integer truncation can leave a small residue: shave one ppt at a
	// time from any job above its floor until the capacity holds.
	for excess > 0 {
		shaved := false
		for i := range out {
			if excess == 0 {
				break
			}
			if out[i] > floor {
				out[i]--
				excess--
				shaved = true
			}
		}
		if !shaved {
			break // everyone at the floor; floors were checked above
		}
	}
}

func weightOf(weights []float64, i int) float64 {
	if w := weights[i]; w > 0 {
		return w
	}
	return squishWeightEps
}
