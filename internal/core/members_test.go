package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestMultiThreadRealRateJob: two worker threads cooperate to drain one
// queue as a single job; the controller discovers the job's combined
// allocation and splits it across the members.
func TestMultiThreadRealRateJob(t *testing.T) {
	r := newRig(core.Config{})
	q := r.kern.NewQueue("pipe", 1<<20)
	prod := &workload.Producer{Queue: q, CyclesPerBlock: 400_000, Rate: workload.ConstantRate(50)}
	pt := r.kern.Spawn("producer", prod)
	if _, err := r.ctl.AddRealTime(pt, 100, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.reg.RegisterQueue(pt, q, progress.Producer)

	// Two identical workers share the consumption (each needs ~100 ppt of
	// the job's ~200 ppt total).
	w1 := r.kern.Spawn("worker1", &workload.Consumer{Queue: q, BlockBytes: 4096, CyclesPerByte: 40})
	w2 := r.kern.Spawn("worker2", &workload.Consumer{Queue: q, BlockBytes: 4096, CyclesPerByte: 40})
	r.reg.RegisterQueue(w1, q, progress.Consumer)
	j := r.ctl.AddRealRate(w1, 10*sim.Millisecond)
	r.ctl.AddMember(j, w2)

	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()

	if err := q.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if q.Consumed() < q.Produced()*8/10 {
		t.Fatalf("job lagging: %d of %d", q.Consumed(), q.Produced())
	}
	if fl := q.FillLevel(); fl < 0.3 || fl > 0.7 {
		t.Fatalf("fill = %.3f, want ≈0.5", fl)
	}
	// The job-level allocation covers the combined need.
	if j.Allocated() < 150 || j.Allocated() > 320 {
		t.Fatalf("job allocation = %d ppt, want ≈200", j.Allocated())
	}
	// Both members actually ran, roughly evenly.
	c1, c2 := w1.CPUTime().Seconds(), w2.CPUTime().Seconds()
	if c1 == 0 || c2 == 0 {
		t.Fatalf("a member starved: %v / %v", c1, c2)
	}
	ratio := c1 / c2
	if ratio < 0.6 || ratio > 1.7 {
		t.Fatalf("member split %v/%v, want ≈even", c1, c2)
	}
	// Both members map back to the same job.
	if jb, _ := r.ctl.JobOf(w2); jb != j {
		t.Fatal("JobOf(member) != job")
	}
}

// TestJobLevelFairness: the allocation belongs to the job, so a
// miscellaneous job with three threads gets the same CPU as a job with one
// thread — spawning more threads buys nothing.
func TestJobLevelFairness(t *testing.T) {
	r := newRig(core.Config{})
	big := r.ctl.AddMiscellaneous(r.kern.Spawn("big0", &workload.Hog{Burst: 400_000}))
	r.ctl.AddMember(big, r.kern.Spawn("big1", &workload.Hog{Burst: 400_000}))
	r.ctl.AddMember(big, r.kern.Spawn("big2", &workload.Hog{Burst: 400_000}))
	small := r.ctl.AddMiscellaneous(r.kern.Spawn("small", &workload.Hog{Burst: 400_000}))

	r.start()
	r.run(10 * sim.Second)
	r.kern.Stop()

	var bigCPU, smallCPU float64
	for _, m := range big.Members() {
		bigCPU += m.CPUTime().Seconds()
	}
	for _, m := range small.Members() {
		smallCPU += m.CPUTime().Seconds()
	}
	ratio := bigCPU / smallCPU
	if ratio < 0.75 || ratio > 1.35 {
		t.Fatalf("3-thread job got %.2fs vs 1-thread job %.2fs; allocation must be per job", bigCPU, smallCPU)
	}
}

// TestMemberExitResplitsAllocation: when a member exits, the survivors
// inherit the job's full allocation.
func TestMemberExitResplitsAllocation(t *testing.T) {
	r := newRig(core.Config{})
	n := 0
	mortal := r.kern.Spawn("mortal", kernelProgramCountdown(&n, 200))
	j := r.ctl.AddMiscellaneous(mortal)
	survivor := r.kern.Spawn("survivor", &workload.Hog{Burst: 400_000})
	r.ctl.AddMember(j, survivor)

	r.start()
	r.run(5 * sim.Second)
	r.kern.Stop()

	if len(j.Members()) != 1 {
		t.Fatalf("members = %d after exit, want 1", len(j.Members()))
	}
	if j.Thread() != survivor {
		t.Fatal("primary not re-assigned to the survivor")
	}
	// The survivor ends up with the whole job allocation: with only this
	// job on the machine it should own most of the CPU.
	if survivor.CPUTime().Seconds() < 3 {
		t.Fatalf("survivor got %v, want most of 5s", survivor.CPUTime())
	}
}

// TestDuplicateMemberPanics guards the registration invariant.
func TestDuplicateMemberPanics(t *testing.T) {
	r := newRig(core.Config{})
	th := r.kern.Spawn("x", &workload.Hog{})
	j := r.ctl.AddMiscellaneous(th)
	defer func() {
		if recover() == nil {
			t.Fatal("adding a controlled thread as a member did not panic")
		}
	}()
	r.ctl.AddMember(j, th)
}
