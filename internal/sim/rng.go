package sim

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*) used by
// workload generators. Experiments must be exactly reproducible across runs
// and platforms, so we avoid math/rand's global state and keep the algorithm
// pinned here.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value. A zero seed is
// remapped to a fixed non-zero constant since xorshift has a zero fixpoint.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Duration returns a uniform duration in [0, d).
func (r *RNG) Duration(d Duration) Duration {
	return Duration(r.Int63n(int64(d)))
}

// Exp returns an exponentially distributed value with the given mean,
// suitable for Poisson inter-arrival times in the web-server workload.
func (r *RNG) Exp(mean float64) float64 {
	// Inverse transform sampling; guard against log(0).
	u := r.Float64()
	if u >= 1 {
		u = 0.9999999999999999
	}
	return -mean * math.Log1p(-u)
}
