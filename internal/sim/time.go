// Package sim provides the discrete-event simulation substrate on which the
// simulated machine, scheduler, and feedback controller run.
//
// All simulated components share a single virtual clock owned by an Engine.
// Time is measured in integer nanoseconds so that cycle accounting on a
// simulated CPU of several hundred MHz is exact enough for the millisecond
// dispatch quanta the paper uses, while a 40-second experiment still fits
// comfortably in an int64.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute instant on the simulation clock, in nanoseconds since
// the start of the simulation. Time zero is the instant the Engine was
// created.
type Time int64

// Duration is a span of simulated time in nanoseconds. It deliberately
// mirrors time.Duration so the familiar constants convert directly.
type Duration int64

// Handy duration units, aligned with the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromStd converts a time.Duration into a sim.Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a sim.Duration into a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t (t − u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return fmt.Sprintf("t=%.6fs", t.Seconds()) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string { return time.Duration(d).String() }

// Cycles counts simulated CPU clock cycles.
type Cycles int64

// Hz is a frequency, used for CPU clock rates and controller/dispatcher
// frequencies.
type Hz int64

// CyclesToDuration converts a cycle count at the given clock rate into a
// duration, rounding up so that non-zero work always consumes non-zero time.
func CyclesToDuration(c Cycles, rate Hz) Duration {
	if c <= 0 {
		return 0
	}
	if rate <= 0 {
		panic("sim: non-positive clock rate")
	}
	// d = c / rate seconds = c * 1e9 / rate ns, rounded up.
	num := int64(c) * int64(Second)
	d := num / int64(rate)
	if num%int64(rate) != 0 {
		d++
	}
	return Duration(d)
}

// DurationToCycles converts a duration into the number of whole cycles the
// CPU completes in it at the given clock rate (rounding down).
func DurationToCycles(d Duration, rate Hz) Cycles {
	if d <= 0 {
		return 0
	}
	if rate <= 0 {
		panic("sim: non-positive clock rate")
	}
	return Cycles(int64(d) * int64(rate) / int64(Second))
}

// Period returns the duration of one cycle of the given frequency,
// rounding to the nearest nanosecond.
func (f Hz) Period() Duration {
	if f <= 0 {
		panic("sim: non-positive frequency")
	}
	return Duration((int64(Second) + int64(f)/2) / int64(f))
}
