package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// refEvent is the reference model's view of one pending event: the old
// container/heap semantics, restated as "sort by (when, seq)".
type refEvent struct {
	when Time
	seq  uint64
	id   int
}

// refModel is an executable specification of the event queue: a plain
// sorted list with the exact (when, seq) FIFO order the heap-based engine
// provided. The differential tests drive it in lockstep with the wheel.
type refModel struct {
	pending []refEvent
	seq     uint64
}

func (m *refModel) schedule(when Time, id int) {
	m.pending = append(m.pending, refEvent{when: when, seq: m.seq, id: id})
	m.seq++
}

func (m *refModel) cancel(id int) {
	for i, ev := range m.pending {
		if ev.id == id {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return
		}
	}
}

func (m *refModel) reschedule(id int, when Time) {
	m.cancel(id)
	m.schedule(when, id)
}

// popNext removes and returns the id of the earliest pending event, with
// ok=false when empty.
func (m *refModel) popNext() (int, Time, bool) {
	if len(m.pending) == 0 {
		return 0, 0, false
	}
	best := 0
	for i := 1; i < len(m.pending); i++ {
		if m.pending[i].when < m.pending[best].when ||
			(m.pending[i].when == m.pending[best].when && m.pending[i].seq < m.pending[best].seq) {
			best = i
		}
	}
	ev := m.pending[best]
	m.pending = append(m.pending[:best], m.pending[best+1:]...)
	return ev.id, ev.when, true
}

// wheelDriver drives an Engine and the reference model with the same
// operation sequence and asserts identical fire order.
type wheelDriver struct {
	t     *testing.T
	e     *Engine
	model *refModel
	// liveByID tracks the engine-side handle for every scheduled id.
	liveByID map[int]*Event
	ids      []int // live ids, for random selection
	nextID   int
	fired    []int
}

func newWheelDriver(t *testing.T) *wheelDriver {
	return &wheelDriver{
		t:        t,
		e:        NewEngine(),
		model:    &refModel{},
		liveByID: make(map[int]*Event),
	}
}

func (d *wheelDriver) schedule(delta Duration) {
	id := d.nextID
	d.nextID++
	when := d.e.Now().Add(delta)
	ev := d.e.At(when, func(now Time) {
		d.fired = append(d.fired, id)
		d.drop(id)
	})
	d.liveByID[id] = ev
	d.ids = append(d.ids, id)
	d.model.schedule(when, id)
}

func (d *wheelDriver) drop(id int) {
	delete(d.liveByID, id)
	for i, v := range d.ids {
		if v == id {
			d.ids = append(d.ids[:i], d.ids[i+1:]...)
			return
		}
	}
}

func (d *wheelDriver) cancel(id int) {
	d.liveByID[id].Cancel()
	d.drop(id)
	d.model.cancel(id)
}

func (d *wheelDriver) reschedule(id int, delta Duration) {
	when := d.e.Now().Add(delta)
	d.e.Reschedule(d.liveByID[id], when)
	d.model.reschedule(id, when)
}

func (d *wheelDriver) stepBoth() bool {
	wantID, wantWhen, ok := d.model.popNext()
	before := len(d.fired)
	if !d.e.step() {
		if ok {
			d.t.Fatalf("engine empty but model still has event id=%d at %v", wantID, wantWhen)
		}
		return false
	}
	if !ok {
		d.t.Fatalf("engine fired an event but model is empty")
	}
	if len(d.fired) != before+1 {
		d.t.Fatalf("step fired %d events, want 1", len(d.fired)-before)
	}
	got := d.fired[len(d.fired)-1]
	if got != wantID {
		d.t.Fatalf("fire order diverged: engine fired id=%d, model expects id=%d at %v", got, wantID, wantWhen)
	}
	if d.e.Now() != wantWhen {
		d.t.Fatalf("clock diverged: engine at %v, model at %v", d.e.Now(), wantWhen)
	}
	return true
}

func (d *wheelDriver) checkPending() {
	if d.e.Pending() != len(d.model.pending) {
		d.t.Fatalf("Pending() = %d, model has %d live events", d.e.Pending(), len(d.model.pending))
	}
}

// deltas spanning every placement class: same-slot, near wheel, far wheel,
// and overflow (beyond the ~33.5 ms wheel horizon).
var deltaClasses = []Duration{
	0,                     // same instant (FIFO tie-break)
	500 * Nanosecond,      // same slot
	100 * Microsecond,     // adjacent slot
	Millisecond,           // a few slots out (the kernel-tick distance)
	10 * Millisecond,      // mid-wheel
	30 * Millisecond,      // near the horizon edge
	40 * Millisecond,      // just past the horizon: overflow
	Second,                // deep overflow
	10 * Second,           // deeper overflow
	33*Millisecond + 500*Microsecond, // straddles the horizon boundary
}

func randomDelta(r *rand.Rand) Duration {
	base := deltaClasses[r.Intn(len(deltaClasses))]
	return base + Duration(r.Int63n(int64(50*Microsecond)))
}

// TestWheelDifferentialRandomOps drives the wheel and the reference model
// side by side with random schedule/cancel/reschedule/fire sequences and
// asserts identical fire order — the wheel must be observationally
// indistinguishable from the (when, seq) heap it replaced.
func TestWheelDifferentialRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := newWheelDriver(t)
		for op := 0; op < 2000; op++ {
			switch {
			case len(d.ids) == 0 || r.Intn(10) < 4:
				d.schedule(randomDelta(r))
			case r.Intn(10) < 2:
				d.cancel(d.ids[r.Intn(len(d.ids))])
			case r.Intn(10) < 2:
				d.reschedule(d.ids[r.Intn(len(d.ids))], randomDelta(r))
			default:
				d.stepBoth()
			}
			d.checkPending()
		}
		// Drain completely: the tail order must match too.
		for d.stepBoth() {
		}
		d.checkPending()
		if d.e.Pending() != 0 {
			t.Fatalf("seed %d: %d events left after drain", seed, d.e.Pending())
		}
	}
}

// TestWheelRescheduleFromCallback exercises the periodic-timer idiom: an
// event that re-arms itself from inside its own callback, checked against
// the model.
func TestWheelRescheduleFromCallback(t *testing.T) {
	e := NewEngine()
	var fires []Time
	var ev *Event
	period := 7 * Millisecond
	ev = e.At(Time(period), func(now Time) {
		fires = append(fires, now)
		if len(fires) < 50 {
			e.Reschedule(ev, now.Add(period))
		}
	})
	e.Run()
	if len(fires) != 50 {
		t.Fatalf("periodic event fired %d times, want 50", len(fires))
	}
	for i, at := range fires {
		if want := Time(period) * Time(i+1); at != want {
			t.Fatalf("fire %d at %v, want %v", i, at, want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after periodic chain ended", e.Pending())
	}
	if e.PoolSize() != 1 {
		t.Fatalf("PoolSize() = %d, want 1 (the single reused event)", e.PoolSize())
	}
}

// TestWheelPendingExcludesCanceled is the Pending() contract: canceled
// events are removed eagerly and never counted.
func TestWheelPendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, e.After(Duration(i)*Millisecond+Second, func(Time) {}))
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending() = %d, want 100", e.Pending())
	}
	for i, ev := range evs {
		if i%2 == 0 {
			ev.Cancel()
		}
	}
	if e.Pending() != 50 {
		t.Fatalf("Pending() = %d after canceling half, want 50", e.Pending())
	}
	e.Run()
	if e.Fired() != 50 {
		t.Fatalf("Fired() = %d, want 50", e.Fired())
	}
}

// TestWheelPoolReuse checks that the free list actually recycles: a
// schedule/fire loop must stop growing the pool after warm-up.
func TestWheelPoolReuse(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.After(Microsecond, func(Time) {})
		e.step()
	}
	if e.PoolSize() != 1 {
		t.Fatalf("PoolSize() = %d after serial schedule/fire, want 1", e.PoolSize())
	}
}

// TestWheelOrderMatchesSortAcrossHorizons floods every horizon class at
// once and checks the global fire order against a stable sort.
func TestWheelOrderMatchesSortAcrossHorizons(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(99))
	type rec struct {
		when Time
		seq  int
	}
	var want []rec
	var got []rec
	for i := 0; i < 5000; i++ {
		when := e.Now().Add(randomDelta(r))
		seq := i
		want = append(want, rec{when, seq})
		e.At(when, func(now Time) { got = append(got, rec{now, seq}) })
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].when < want[j].when })
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// FuzzWheelDifferential interprets fuzz bytes as an op script against the
// reference model, so `go test -fuzz=FuzzWheelDifferential ./internal/sim`
// can search for ordering divergences the random tests miss.
func FuzzWheelDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 40, 80, 120, 200, 7, 7, 7})
	f.Add([]byte{255, 254, 253, 0, 0, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4096 {
			script = script[:4096]
		}
		d := newWheelDriver(t)
		for i := 0; i < len(script); i++ {
			b := script[i]
			switch {
			case len(d.ids) == 0 || b < 110:
				cls := deltaClasses[int(b)%len(deltaClasses)]
				d.schedule(cls + Duration(b)*Microsecond)
			case b < 150:
				d.cancel(d.ids[int(b)%len(d.ids)])
			case b < 190:
				cls := deltaClasses[int(b)%len(deltaClasses)]
				d.reschedule(d.ids[int(b)%len(d.ids)], cls)
			default:
				d.stepBoth()
			}
			d.checkPending()
		}
		for d.stepBoth() {
		}
	})
}
