package sim

import "container/heap"

// Event is a scheduled callback. Events are compared by time; events at the
// same instant fire in the order they were scheduled (FIFO), which keeps the
// simulation deterministic.
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index, -1 when not queued
	canceled bool
	fn       func(Time)
}

// When returns the instant the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or was already canceled is a no-op. Cancel is O(1); the
// event is dropped lazily when it reaches the top of the queue.
func (e *Event) Cancel() { e.canceled = true }

// eventQueue is a min-heap of events ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

func (q *eventQueue) push(e *Event) { heap.Push(q, e) }

func (q *eventQueue) pop() *Event {
	return heap.Pop(q).(*Event)
}

func (q eventQueue) peek() *Event {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}
