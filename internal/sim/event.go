package sim

// Event is a scheduled callback. Events are compared by time; events at the
// same instant fire in the order they were scheduled (FIFO), which keeps the
// simulation deterministic.
//
// Events are pooled by their Engine: once an event has fired (and was not
// re-armed with Reschedule from inside its own callback) or has been
// canceled, the Engine may reuse the object for a later At/After call.
// Holders must therefore drop their reference after the event fires or is
// canceled; calling Cancel a second time on a dead event is a harmless
// no-op only until the object is reused.
type Event struct {
	when Time
	seq  uint64
	fn   func(Time)
	eng  *Engine

	// next links the event into the engine's free list while pooled.
	next *Event
	// loc records which container currently holds the event.
	loc eventLoc
	// slot is the wheel slot index while loc == locWheel.
	slot int32
	// pos is the index within the wheel slot or the overflow heap.
	pos int32

	canceled bool
}

// eventLoc identifies the container an event currently lives in.
type eventLoc int8

const (
	// locFree: in the engine's pool (or brand new), not scheduled.
	locFree eventLoc = iota
	// locDue: in the sorted imminent buffer for the current wheel slot.
	locDue
	// locWheel: in an unsorted near-horizon wheel slot.
	locWheel
	// locOverflow: in the far-horizon min-heap.
	locOverflow
	// locFiring: currently executing its callback; recycled when the
	// callback returns unless it re-arms itself via Reschedule.
	locFiring
)

// When returns the instant the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel removes a pending event from the schedule. Canceling an event that
// has already fired or was already canceled is a no-op. Cancel is O(1)
// amortized: the event is unlinked from its wheel slot, due buffer, or
// overflow heap immediately and returned to the pool, so canceled events
// never linger in the queue (and Pending never counts them).
func (e *Event) Cancel() {
	if e.loc == locFree || e.loc == locFiring {
		if e.loc == locFiring {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	e.eng.unlink(e)
	e.eng.live--
	e.eng.recycle(e)
}

// alloc takes an event from the pool, or makes one.
func (eg *Engine) alloc() *Event {
	ev := eg.free
	if ev == nil {
		return &Event{eng: eg}
	}
	eg.free = ev.next
	eg.pooled--
	ev.next = nil
	ev.canceled = false
	return ev
}

// recycle returns a dead event to the pool.
func (eg *Engine) recycle(ev *Event) {
	ev.loc = locFree
	ev.fn = nil
	ev.next = eg.free
	eg.free = ev
	eg.pooled++
}
