package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine has %d pending events", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*Time(Millisecond), func(Time) { order = append(order, 3) })
	e.At(10*Time(Millisecond), func(Time) { order = append(order, 1) })
	e.At(20*Time(Millisecond), func(Time) { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30*Time(Millisecond) {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(Millisecond), func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at index %d: got %v", i, order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(5*Millisecond, func(now Time) {
		at = now
		e.After(7*Millisecond, func(now Time) { at = now })
	})
	e.Run()
	if at != Time(12*Millisecond) {
		t.Fatalf("nested After fired at %v, want 12ms", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(Millisecond, func(Time) { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := NewEngine()
	ev := e.After(Millisecond, func(Time) {})
	ev.Cancel()
	ev.Cancel()
	e.Run()
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Time(Millisecond), func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(Time(5 * Millisecond))
	if len(fired) != 5 {
		t.Fatalf("fired %d events before horizon, want 5", len(fired))
	}
	if e.Now() != Time(5*Millisecond) {
		t.Fatalf("clock = %v, want horizon 5ms", e.Now())
	}
	e.Run()
	if len(fired) != 10 {
		t.Fatalf("fired %d events total, want 10", len(fired))
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.RunUntil(Time(Second))
	if e.Now() != Time(Second) {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine()
	e.RunFor(Second)
	e.RunFor(Second)
	if e.Now() != Time(2*Second) {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.RunFor(Second)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Time(Millisecond), func(Time) {})
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(Time)
	tick = func(now Time) {
		count++
		if count < 100 {
			e.After(Millisecond, tick)
		}
	}
	e.After(Millisecond, tick)
	e.Run()
	if count != 100 {
		t.Fatalf("chained ticks = %d, want 100", count)
	}
	if e.Now() != Time(100*Millisecond) {
		t.Fatalf("clock = %v, want 100ms", e.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.After(Duration(i)*Millisecond, func(Time) {})
	}
	ev := e.After(Millisecond, func(Time) {})
	ev.Cancel()
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7 (canceled events do not count)", e.Fired())
	}
}

// Property: regardless of insertion order, events fire in non-decreasing
// time order with FIFO tie-breaking.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		if len(offsets) > 200 {
			offsets = offsets[:200]
		}
		e := NewEngine()
		type rec struct {
			when Time
			seq  int
		}
		var fired []rec
		for i, off := range offsets {
			when := Time(off) * Time(Microsecond)
			seq := i
			e.At(when, func(now Time) { fired = append(fired, rec{now, seq}) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].when < fired[i-1].when {
				return false
			}
			if fired[i].when == fired[i-1].when && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(5 * Second)
	if got := t0.Add(3 * Second); got != Time(8*Second) {
		t.Fatalf("Add = %v", got)
	}
	if got := t0.Sub(Time(2 * Second)); got != 3*Second {
		t.Fatalf("Sub = %v", got)
	}
	if !t0.Before(Time(6 * Second)) {
		t.Fatal("Before failed")
	}
	if !t0.After(Time(4 * Second)) {
		t.Fatal("After failed")
	}
	if t0.Seconds() != 5 {
		t.Fatalf("Seconds = %v", t0.Seconds())
	}
}

func TestCyclesDurationConversion(t *testing.T) {
	const rate Hz = 400_000_000 // 400 MHz: 1 cycle = 2.5 ns
	if d := CyclesToDuration(400_000_000, rate); d != Second {
		t.Fatalf("1s of cycles = %v", d)
	}
	if d := CyclesToDuration(4, rate); d != 10 {
		t.Fatalf("4 cycles = %vns, want 10ns", int64(d))
	}
	// Round-up: 1 cycle at 400MHz is 2.5ns -> 3ns.
	if d := CyclesToDuration(1, rate); d != 3 {
		t.Fatalf("1 cycle = %vns, want 3ns (rounded up)", int64(d))
	}
	if c := DurationToCycles(Second, rate); c != 400_000_000 {
		t.Fatalf("cycles in 1s = %v", c)
	}
	if c := DurationToCycles(0, rate); c != 0 {
		t.Fatalf("cycles in 0 = %v", c)
	}
	if d := CyclesToDuration(0, rate); d != 0 {
		t.Fatalf("0 cycles = %v", d)
	}
}

// Property: converting cycles to duration and back never loses more than one
// cycle (round-trip bound) for positive cycle counts.
func TestPropertyCycleRoundTrip(t *testing.T) {
	const rate Hz = 400_000_000
	f := func(n uint32) bool {
		c := Cycles(n)
		d := CyclesToDuration(c, rate)
		back := DurationToCycles(d, rate)
		return back >= c && back <= c+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestHzPeriod(t *testing.T) {
	if p := Hz(1000).Period(); p != Millisecond {
		t.Fatalf("1kHz period = %v", p)
	}
	if p := Hz(100).Period(); p != 10*Millisecond {
		t.Fatalf("100Hz period = %v", p)
	}
	if p := Hz(4000).Period(); p != 250*Microsecond {
		t.Fatalf("4kHz period = %v", p)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGExpPositiveWithSaneMean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(5)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("Exp(5) empirical mean = %v, want ≈5", mean)
	}
}
