package sim

import "fmt"

// Engine is a deterministic discrete-event simulator. It owns the virtual
// clock and a queue of pending events; Run drains the queue in time order,
// advancing the clock to each event as it fires.
//
// The queue is a hierarchical timer wheel (see wheel.go) with a pooled,
// intrusive free list of Event objects: schedule, cancel, reschedule, and
// fire are amortized O(1) and allocation-free after warm-up.
//
// Engine is not safe for concurrent use: the whole simulation is
// single-threaded by design so that experiments are exactly reproducible.
// Parallel experiment sweeps give each point its own Engine.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64
	live  int

	// cur is the wheel cursor: the absolute slot the due buffer belongs
	// to. Events in slots ≤ cur live in due; slots in (cur, cur+wheelSlots)
	// live in the wheel; anything later lives in the overflow heap.
	cur        int64
	wheel      [wheelSlots][]*Event
	occupied   [wheelSlots / 64]uint64
	wheelCount int
	overflow   []*Event
	due        []*Event
	dueHead    int

	// free is the intrusive pool of dead events; pooled counts them.
	free   *Event
	pooled int
}

// NewEngine returns an engine with the clock at time zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of live pending events. Canceled events are
// removed from the queue eagerly, so they are never counted.
func (e *Engine) Pending() int { return e.live }

// Fired returns the total number of events that have fired so far. It is
// useful for sanity checks in tests and for instrumentation.
func (e *Engine) Fired() uint64 { return e.fired }

// PoolSize returns the number of dead events currently held for reuse.
func (e *Engine) PoolSize() int { return e.pooled }

// At schedules fn to run at the absolute instant when. Scheduling in the
// past (before the current clock) panics: that is always a logic error in a
// discrete-event simulation.
//
// The returned Event belongs to the engine's pool: it may be reused for a
// later schedule once it has fired or been canceled, so callers must not
// retain it past that point.
func (e *Engine) At(when Time, fn func(Time)) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, e.now))
	}
	ev := e.alloc()
	ev.when = when
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.arm(ev)
	return ev
}

// After schedules fn to run d after the current instant. Negative d is
// treated as zero.
func (e *Engine) After(d Duration, fn func(Time)) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Reschedule moves a pending event to a new instant, or re-arms an event
// from inside its own callback (the periodic-timer idiom: the event object
// and its callback are reused every cycle with no allocation). The event
// keeps its callback and is re-sequenced as if freshly scheduled.
// Rescheduling an event that has been released to the pool panics: the
// object may already belong to a different schedule.
func (e *Engine) Reschedule(ev *Event, when Time) {
	if when < e.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", when, e.now))
	}
	rearming := false
	switch ev.loc {
	case locFree:
		panic("sim: Reschedule of a released event")
	case locFiring:
		// Re-arm from inside the callback; step will see the event is
		// pending again and skip recycling it.
		rearming = true
	default:
		e.unlink(ev)
	}
	ev.when = when
	ev.seq = e.seq
	e.seq++
	ev.canceled = false
	if rearming {
		e.arm(ev)
	} else {
		e.insert(ev)
	}
}

// arm accounts a newly pending event and places it in the queue.
func (e *Engine) arm(ev *Event) {
	if e.live == 0 {
		// Empty queue: snap the cursor to the clock so near-future events
		// take the wheel fast path instead of migrating through overflow.
		e.cur = slotOf(e.now)
	}
	e.live++
	e.insert(ev)
}

// step fires the earliest pending event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	if !e.advance() {
		return false
	}
	ev := e.due[e.dueHead]
	e.due[e.dueHead] = nil
	e.dueHead++
	if e.dueHead == len(e.due) {
		e.due = e.due[:0]
		e.dueHead = 0
	}
	if ev.when < e.now {
		panic("sim: event queue went backwards")
	}
	e.now = ev.when
	e.live--
	e.fired++
	ev.loc = locFiring
	ev.fn(e.now)
	if ev.loc == locFiring {
		e.recycle(ev)
	}
	return true
}

// Run drains events until the queue is empty. It returns the final clock
// value. Most experiments use RunUntil instead so that periodic timers do
// not keep the simulation alive forever.
func (e *Engine) Run() Time {
	for e.step() {
	}
	return e.now
}

// RunUntil fires events until the clock reaches the given horizon. Events
// scheduled exactly at the horizon do fire; later events remain queued. The
// clock is left at the horizon even if the queue empties early, so that
// measurement windows have a precise width.
func (e *Engine) RunUntil(horizon Time) {
	if horizon < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", horizon, e.now))
	}
	for e.advance() && e.due[e.dueHead].when <= horizon {
		e.step()
	}
	e.now = horizon
}

// RunFor advances the simulation by the given span. See RunUntil.
func (e *Engine) RunFor(d Duration) {
	e.RunUntil(e.now.Add(d))
}
