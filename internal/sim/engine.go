package sim

import "fmt"

// Engine is a deterministic discrete-event simulator. It owns the virtual
// clock and a queue of pending events; Run drains the queue in time order,
// advancing the clock to each event as it fires.
//
// Engine is not safe for concurrent use: the whole simulation is
// single-threaded by design so that experiments are exactly reproducible.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	fired  uint64
	inStep bool
}

// NewEngine returns an engine with the clock at time zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events waiting to fire, including canceled
// events that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events that have fired so far. It is
// useful for sanity checks in tests and for instrumentation.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at the absolute instant when. Scheduling in the
// past (before the current clock) panics: that is always a logic error in a
// discrete-event simulation.
func (e *Engine) At(when Time, fn func(Time)) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, e.now))
	}
	ev := &Event{when: when, seq: e.seq, fn: fn, index: -1}
	e.seq++
	e.queue.push(ev)
	return ev
}

// After schedules fn to run d after the current instant. Negative d is
// treated as zero.
func (e *Engine) After(d Duration, fn func(Time)) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// step fires the earliest pending non-canceled event. It reports false when
// the queue is empty.
func (e *Engine) step() bool {
	for {
		ev := e.queue.peek()
		if ev == nil {
			return false
		}
		e.queue.pop()
		if ev.canceled {
			continue
		}
		if ev.when < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.when
		e.fired++
		ev.fn(e.now)
		return true
	}
}

// Run drains events until the queue is empty. It returns the final clock
// value. Most experiments use RunUntil instead so that periodic timers do
// not keep the simulation alive forever.
func (e *Engine) Run() Time {
	for e.step() {
	}
	return e.now
}

// RunUntil fires events until the clock reaches the given horizon. Events
// scheduled exactly at the horizon do fire; later events remain queued. The
// clock is left at the horizon even if the queue empties early, so that
// measurement windows have a precise width.
func (e *Engine) RunUntil(horizon Time) {
	if horizon < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", horizon, e.now))
	}
	for {
		ev := e.queue.peek()
		if ev == nil || ev.when > horizon {
			break
		}
		e.step()
	}
	e.now = horizon
}

// RunFor advances the simulation by the given span. See RunUntil.
func (e *Engine) RunFor(d Duration) {
	e.RunUntil(e.now.Add(d))
}
