package sim

import (
	"math"
	"math/bits"
)

// The event queue is a single-level hierarchical timer wheel with an
// overflow heap, replacing the earlier container/heap priority queue:
//
//   - Near-horizon events (within wheelSlots slot widths of the cursor) go
//     into an unsorted per-slot bucket: O(1) insert, O(1) eager cancel.
//   - Far-horizon events go into a conventional min-heap and migrate into
//     the wheel as the cursor approaches them.
//   - The slot under the cursor is kept as a (when, seq)-sorted "due"
//     buffer, so firing preserves the exact global FIFO-at-same-instant
//     order the old heap provided.
//
// Slot width is 2^slotShift ns ≈ 131 µs: a 1 ms kernel tick advances the
// cursor ~8 slots, so a slot holds only the handful of events of one
// dispatch instant and the sort inside drainSlot is effectively free. The
// occupancy bitmap makes skipping empty slots a couple of TrailingZeros
// calls instead of a 256-entry scan.
const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	slotShift  = 17 // 131072 ns per slot; wheel horizon ≈ 33.5 ms
)

// slotOf maps an instant to its absolute wheel slot number.
func slotOf(t Time) int64 { return int64(t) >> slotShift }

// insert places a pending event into the container its deadline calls for.
// The caller has already set when/seq/fn and accounted the event in live.
func (eg *Engine) insert(ev *Event) {
	s := slotOf(ev.when)
	switch {
	case s <= eg.cur:
		eg.insertDue(ev)
	case s < eg.cur+wheelSlots:
		idx := int32(s & wheelMask)
		ev.loc = locWheel
		ev.slot = idx
		ev.pos = int32(len(eg.wheel[idx]))
		eg.wheel[idx] = append(eg.wheel[idx], ev)
		eg.wheelCount++
		eg.occupied[idx>>6] |= 1 << (uint(idx) & 63)
	default:
		eg.overflowPush(ev)
	}
}

// unlink removes a pending event from whichever container holds it.
func (eg *Engine) unlink(ev *Event) {
	switch ev.loc {
	case locDue:
		eg.removeDue(ev)
	case locWheel:
		b := eg.wheel[ev.slot]
		last := len(b) - 1
		if int(ev.pos) != last {
			moved := b[last]
			b[ev.pos] = moved
			moved.pos = ev.pos
		}
		b[last] = nil
		eg.wheel[ev.slot] = b[:last]
		eg.wheelCount--
		if last == 0 {
			eg.occupied[ev.slot>>6] &^= 1 << (uint(ev.slot) & 63)
		}
	case locOverflow:
		eg.overflowRemove(int(ev.pos))
	}
}

// insertDue binary-inserts an event into the sorted imminent buffer.
func (eg *Engine) insertDue(ev *Event) {
	ev.loc = locDue
	// Fast path: strictly after the current tail (the common case — new
	// events carry the largest seq, and most land at or after the last
	// queued instant).
	n := len(eg.due)
	if n == eg.dueHead || eventBefore(eg.due[n-1], ev) {
		eg.due = append(eg.due, ev)
		return
	}
	// Slow path: binary search within the live window and shift.
	lo, hi := eg.dueHead, n
	for lo < hi {
		mid := (lo + hi) / 2
		if eventBefore(eg.due[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > eg.dueHead || eg.dueHead == 0 {
		eg.due = append(eg.due, nil)
		copy(eg.due[lo+1:], eg.due[lo:])
		eg.due[lo] = ev
		return
	}
	// Inserting at the front with drained space available: back-fill.
	eg.dueHead--
	eg.due[eg.dueHead] = ev
}

// removeDue unlinks a canceled/rescheduled event from the due buffer.
func (eg *Engine) removeDue(ev *Event) {
	lo, hi := eg.dueHead, len(eg.due)
	for lo < hi {
		mid := (lo + hi) / 2
		if eventBefore(eg.due[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first element not before ev, i.e. ev itself (when/seq are
	// unique per pending event).
	copy(eg.due[lo:], eg.due[lo+1:])
	eg.due[len(eg.due)-1] = nil
	eg.due = eg.due[:len(eg.due)-1]
	if eg.dueHead == len(eg.due) {
		eg.due = eg.due[:0]
		eg.dueHead = 0
	}
}

// eventBefore is the global firing order: by time, then by schedule order.
func eventBefore(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// advance ensures the due buffer holds the earliest pending events,
// migrating overflow events and draining the next occupied wheel slot as
// needed. It reports false when no events are pending at all.
func (eg *Engine) advance() bool {
	for {
		if eg.dueHead < len(eg.due) {
			return true
		}
		if eg.live == 0 {
			return false
		}
		next := int64(math.MaxInt64)
		if eg.wheelCount > 0 {
			next = eg.nextOccupiedSlot()
		}
		if len(eg.overflow) > 0 {
			if o := slotOf(eg.overflow[0].when); o < next {
				next = o
			}
		}
		eg.cur = next
		idx := int32(next & wheelMask)
		if b := eg.wheel[idx]; len(b) > 0 {
			eg.drainSlot(idx)
		}
		// Pull far-horizon events that are now inside the wheel window.
		for len(eg.overflow) > 0 && slotOf(eg.overflow[0].when) < eg.cur+wheelSlots {
			eg.insert(eg.overflowPop())
		}
	}
}

// nextOccupiedSlot scans the occupancy bitmap for the first nonempty slot
// strictly after the cursor. The wheel invariant guarantees every wheel
// event lives within (cur, cur+wheelSlots), so exactly one revolution of
// the bitmap needs checking.
func (eg *Engine) nextOccupiedSlot() int64 {
	start := (eg.cur + 1) & wheelMask
	// First partial word.
	const occWords = wheelSlots / 64
	w := eg.occupied[start>>6] >> (uint(start) & 63)
	if w != 0 {
		return eg.cur + 1 + int64(bits.TrailingZeros64(w))
	}
	dist := int64(64 - (start & 63))
	for i := int64(0); i < occWords; i++ {
		word := eg.occupied[((start>>6)+1+i)%occWords]
		if word != 0 {
			return eg.cur + 1 + dist + 64*i + int64(bits.TrailingZeros64(word))
		}
	}
	panic("sim: wheelCount > 0 but occupancy bitmap empty")
}

// drainSlot moves the cursor's slot into the due buffer in firing order.
// The due buffer is empty when this is called.
func (eg *Engine) drainSlot(idx int32) {
	b := eg.wheel[idx]
	eg.due = append(eg.due[:0], b...)
	eg.dueHead = 0
	for i := range b {
		b[i] = nil
	}
	eg.wheel[idx] = b[:0]
	eg.wheelCount -= len(eg.due)
	eg.occupied[idx>>6] &^= 1 << (uint(idx) & 63)
	// Insertion sort: slots hold the few events of ~131 µs of simulated
	// time, typically already in schedule (= firing) order.
	due := eg.due
	for i := 1; i < len(due); i++ {
		ev := due[i]
		j := i - 1
		for j >= 0 && eventBefore(ev, due[j]) {
			due[j+1] = due[j]
			j--
		}
		due[j+1] = ev
	}
	for _, ev := range due {
		ev.loc = locDue
	}
}

// --- overflow: a plain (when, seq) min-heap for far-horizon events ---

func (eg *Engine) overflowPush(ev *Event) {
	ev.loc = locOverflow
	ev.pos = int32(len(eg.overflow))
	eg.overflow = append(eg.overflow, ev)
	eg.overflowUp(len(eg.overflow) - 1)
}

func (eg *Engine) overflowPop() *Event {
	ev := eg.overflow[0]
	eg.overflowRemove(0)
	return ev
}

func (eg *Engine) overflowRemove(i int) {
	h := eg.overflow
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].pos = int32(i)
	}
	h[last] = nil
	eg.overflow = h[:last]
	if i < last {
		if !eg.overflowUp(i) {
			eg.overflowDown(i)
		}
	}
}

// overflowUp restores the heap above i, reporting whether it moved anything.
func (eg *Engine) overflowUp(i int) bool {
	h := eg.overflow
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].pos = int32(i)
		h[parent].pos = int32(parent)
		i = parent
		moved = true
	}
	return moved
}

func (eg *Engine) overflowDown(i int) {
	h := eg.overflow
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && eventBefore(h[right], h[left]) {
			least = right
		}
		if !eventBefore(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		h[i].pos = int32(i)
		h[least].pos = int32(least)
		i = least
	}
}
