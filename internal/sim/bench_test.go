package sim

import "testing"

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Microsecond, func(Time) {})
		e.step()
	}
}

func BenchmarkEngineChainedTimers(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func(Time)
	tick = func(Time) {
		n++
		e.After(Millisecond, tick)
	}
	e.After(Millisecond, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

func BenchmarkEngineManyPending(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 10_000; i++ {
		e.After(Duration(i)*Microsecond+Second, func(Time) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Millisecond, func(Time) {}).Cancel()
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkCyclesToDuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = CyclesToDuration(Cycles(i), 400_000_000)
	}
}
