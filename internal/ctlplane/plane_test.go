package ctlplane

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/progress"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// rig is one simulated machine with a control plane over it.
type rig struct {
	eng    *sim.Engine
	kern   *kernel.Kernel
	policy *rbs.Policy
	reg    *progress.Registry
	ctl    *core.Controller
	plane  *Plane
}

// newRig builds a machine with the given CPU count and a plane in the
// given configuration. Jobs are added by the caller before start().
func newRig(cpus int, cfg Config) *rig {
	return newRigCfg(cpus, core.Config{}, cfg)
}

// newRigCfg is newRig with an explicit controller configuration — the
// scale tests shrink the modeled per-job cycle cost, since a literal
// Figure 5 machine (2640 cycles/job at 400 MHz) cannot even touch 10⁵⁺
// jobs inside one 10 ms interval.
func newRigCfg(cpus int, ccfg core.Config, cfg Config) *rig {
	eng := sim.NewEngine()
	policy := rbs.New()
	kcfg := kernel.DefaultConfig()
	kcfg.CPUs = cpus
	kern := kernel.New(eng, kcfg, policy)
	reg := progress.NewRegistry()
	ctl := core.New(kern, policy, reg, ccfg)
	return &rig{
		eng: eng, kern: kern, policy: policy, reg: reg, ctl: ctl,
		plane: New(ctl, kern, policy, reg, cfg),
	}
}

func (r *rig) start() {
	r.plane.Start()
	r.kern.Start()
}

// addMisc spawns n sleepy miscellaneous jobs.
func (r *rig) addMisc(n int) {
	op := kernel.OpSleep{D: 50 * sim.Millisecond}
	prog := kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op { return &op })
	for i := 0; i < n; i++ {
		r.ctl.AddMiscellaneous(r.kern.Spawn("misc", prog))
	}
}

// addPipeline spawns a producer/consumer pair over one queue, registering
// the consumer as a real-rate job, and returns its job. rate paces the
// producer: bytes moved per 5 ms.
func (r *rig) addPipeline(name string, rate int64) *core.Job {
	q := r.kern.NewQueue(name, 1<<16)
	prodOps := [2]kernel.Op{
		&kernel.OpProduce{Queue: q, Bytes: rate},
		&kernel.OpSleep{D: 5 * sim.Millisecond},
	}
	var pi int
	prod := r.kern.Spawn(name+".prod", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		op := prodOps[pi%2]
		pi++
		return op
	}))
	r.policy.SetReservation(prod, rbs.Reservation{Proportion: 100, Period: 10 * sim.Millisecond})
	consOps := [2]kernel.Op{
		&kernel.OpConsume{Queue: q, Bytes: rate},
		&kernel.OpCompute{Cycles: 40000},
	}
	var ci int
	cons := r.kern.Spawn(name+".cons", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		op := consOps[ci%2]
		ci++
		return op
	}))
	r.reg.RegisterQueue(cons, q, progress.Consumer)
	return r.ctl.AddRealRate(cons, 0)
}

// legacyRig builds the same machine under the classic single-thread
// controller for differential comparison.
type legacyRig struct {
	eng    *sim.Engine
	kern   *kernel.Kernel
	policy *rbs.Policy
	reg    *progress.Registry
	ctl    *core.Controller
}

func newLegacyRig(cpus int) *legacyRig {
	eng := sim.NewEngine()
	policy := rbs.New()
	kcfg := kernel.DefaultConfig()
	kcfg.CPUs = cpus
	kern := kernel.New(eng, kcfg, policy)
	reg := progress.NewRegistry()
	ctl := core.New(kern, policy, reg, core.Config{})
	return &legacyRig{eng: eng, kern: kern, policy: policy, reg: reg, ctl: ctl}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestShardedPeriodicConvergesLikeLegacy pins the capacity-split argument:
// with no floors binding, demand-proportional shard slices reproduce the
// global squish's steady-state allocations. Equal misc jobs must end up
// with near-equal shares under 1 shard and 4.
func TestShardedPeriodicConvergesLikeLegacy(t *testing.T) {
	const n = 12
	leg := newLegacyRig(1)
	legOp := kernel.OpSleep{D: 50 * sim.Millisecond}
	legProg := kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op { return &legOp })
	for i := 0; i < n; i++ {
		leg.ctl.AddMiscellaneous(leg.kern.Spawn("misc", legProg))
	}
	leg.ctl.Start()
	leg.kern.Start()
	leg.eng.RunFor(2 * sim.Second)

	sh := newRig(1, Config{Shards: 4})
	sh.addMisc(n)
	sh.start()
	sh.eng.RunFor(2 * sim.Second)

	lj, sj := leg.ctl.Jobs(), sh.ctl.Jobs()
	if len(lj) != len(sj) {
		t.Fatalf("job counts differ: %d vs %d", len(lj), len(sj))
	}
	for i := range lj {
		d := abs(lj[i].Allocated() - sj[i].Allocated())
		if d > 30 {
			t.Errorf("job %d: legacy %d ppt, sharded %d ppt (Δ%d > 30)",
				i, lj[i].Allocated(), sj[i].Allocated(), d)
		}
	}
	var total int
	for _, j := range sj {
		total += j.Allocated()
	}
	if total > sh.ctl.EffectiveThreshold() {
		t.Fatalf("sharded allocations sum to %d ppt, above the %d threshold",
			total, sh.ctl.EffectiveThreshold())
	}
}

// TestShardedExactlyOnceSampling pins the visit protocol: over E epochs,
// every adaptive job is sampled exactly E times in periodic mode no matter
// how many shards carve up the list.
func TestShardedExactlyOnceSampling(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		r := newRig(1, Config{Shards: shards})
		const n = 10
		r.addMisc(n)
		r.start()
		r.eng.RunFor(sim.Second)
		epochs := r.plane.Epoch()
		want := uint64(epochs) * n
		got := r.ctl.Samples()
		// The last epoch may be mid-flight (some shards not yet ticked), so
		// allow up to one epoch's worth of pending samples.
		if got > want || got < want-uint64(n) {
			t.Errorf("shards=%d: %d samples over %d epochs of %d jobs, want (%d, %d]",
				shards, got, epochs, n, want-uint64(n), want)
		}
	}
}

// TestEventDrivenSkipsIdleJobs pins the point of event mode: misc jobs
// with no progress signal are re-sampled only on the staleness bound, so
// samples ≪ epochs·jobs and skips make up the difference.
func TestEventDrivenSkipsIdleJobs(t *testing.T) {
	r := newRig(1, Config{Mode: EventDriven, Shards: 2})
	const n = 40
	r.addMisc(n)
	r.start()
	r.eng.RunFor(2 * sim.Second)

	epochs := uint64(r.plane.Epoch())
	var sampled, skipped uint64
	for _, st := range r.plane.Stats() {
		sampled += st.Sampled
		skipped += st.Skipped
	}
	full := epochs * n
	if sampled+skipped < full-n || sampled+skipped > full {
		t.Fatalf("visits %d (sampled %d + skipped %d) over %d epochs, want ≈%d",
			sampled+skipped, sampled, skipped, epochs, full)
	}
	// Staleness default is 10 epochs: sampling should be ~1/10th of the
	// periodic rate (plus the initial full pass).
	maxSampled := full/uint64(r.plane.StalenessEpochs()) + 2*n
	if sampled > maxSampled {
		t.Errorf("event mode sampled %d of %d visits, want ≤ %d", sampled, full, maxSampled)
	}
	if skipped == 0 {
		t.Error("event mode skipped nothing")
	}
}

// TestEventDrivenStalenessBound pins the feedback guarantee: no job goes
// longer than the staleness bound without a sample, whatever its signal
// does.
func TestEventDrivenStalenessBound(t *testing.T) {
	r := newRig(1, Config{Mode: EventDriven, Shards: 3, MaxStaleness: 40 * sim.Millisecond})
	r.addMisc(20)
	r.addPipeline("p0", 64)
	r.start()

	bound := r.plane.StalenessEpochs()
	r.ctl.OnStep(func(now sim.Time) {
		for _, sh := range r.plane.shards {
			for _, e := range sh.list {
				if !e.sampled {
					continue
				}
				if gap := r.plane.epoch - e.sampleEpoch; gap > bound {
					t.Fatalf("t=%v: job %q un-sampled for %d epochs, bound %d",
						now, e.job.Thread().Name(), gap, bound)
				}
			}
		}
	})
	r.eng.RunFor(2 * sim.Second)
	if r.plane.Epoch() < 100 {
		t.Fatalf("only %d epochs ran", r.plane.Epoch())
	}
}

// TestEventDrivenTracksSignal pins the push half: a real-rate consumer
// whose queue moves keeps getting sampled and converges to a sane
// allocation even in event mode.
func TestEventDrivenTracksSignal(t *testing.T) {
	r := newRig(1, Config{Mode: EventDriven, Shards: 2})
	j := r.addPipeline("p0", 256)
	r.addMisc(10)
	r.start()
	r.eng.RunFor(3 * sim.Second)
	if j.Allocated() <= 0 {
		t.Fatalf("real-rate job allocated %d ppt under event mode", j.Allocated())
	}
	if r.ctl.Samples() == 0 {
		t.Fatal("no samples taken")
	}
}

// TestShardStaggering pins the phase schedule: shard s's first tick lands
// at Interval + s·Interval/S, so control work spreads across the interval
// instead of bursting.
func TestShardStaggering(t *testing.T) {
	r := newRig(1, Config{Shards: 4})
	r.addMisc(8)
	var ticks []sim.Time
	r.ctl.OnStep(func(now sim.Time) { ticks = append(ticks, now) })
	r.start()
	r.eng.RunFor(sim.Second)
	// Every shard ticks once immediately at start (as the legacy
	// controller does); from then on the last shard wakes at
	// interval·(1 + 3/4) and every interval after, so the epilogue
	// settles into the 100 Hz cadence offset by the stagger.
	if len(ticks) < 10 {
		t.Fatalf("only %d epochs completed", len(ticks))
	}
	iv := r.ctl.Config().Interval
	want := sim.Time(0).Add(iv).Add(sim.Duration(int64(iv) * 3 / 4))
	if ticks[1] < want || ticks[1] > want.Add(iv/2) {
		t.Errorf("second epilogue at %v, want ≈%v", ticks[1], want)
	}
	for i := 2; i < 8; i++ {
		if d := ticks[i].Sub(ticks[i-1]); d < iv-iv/10 || d > iv+iv/10 {
			t.Errorf("epilogue period %v between epochs %d and %d, want ≈%v", d, i-1, i, iv)
		}
	}
}

// TestPlaneJobChurn pins membership bookkeeping: jobs removed mid-run drop
// out of the shard lists and the aggregates self-correct.
func TestPlaneJobChurn(t *testing.T) {
	r := newRig(1, Config{Shards: 3, Mode: EventDriven})
	r.addMisc(9)
	r.start()
	r.eng.RunFor(500 * sim.Millisecond)
	jobs := r.ctl.Jobs()
	for i, j := range jobs {
		if i%2 == 0 {
			r.ctl.Remove(j)
		}
	}
	r.eng.RunFor(500 * sim.Millisecond)
	live := 0
	for _, sh := range r.plane.shards {
		for _, e := range sh.list {
			if !e.removed {
				live++
			}
		}
	}
	if want := len(r.ctl.Jobs()); live != want {
		t.Fatalf("%d live entries across shards, want %d", live, want)
	}
}
