package ctlplane

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// pulseMetric is a synthetic progress signal that alternates sign on every
// sample, so the controller's desire keeps changing (every sample
// actuates) and every sample is observable as one Pressure call.
type pulseMetric struct {
	calls int
}

func (m *pulseMetric) Pressure(now sim.Time) float64 {
	m.calls++
	if m.calls%2 == 0 {
		return -0.2
	}
	return 0.2
}

func (m *pulseMetric) Describe() string { return "pulse" }

// TestMigrationHandoffExactlyOnce is the migration × control-state
// contract: a job pulled to another CPU mid-interval keeps its estimator
// state and is sampled exactly once per control epoch — no double-sample
// when source and destination shards both tick in the same epoch, no lost
// sample when the re-home crosses the stagger boundary.
//
// The machine is rigged so the real-rate job is the only migratable
// thread: every ballast hog is pinned to its CPU, so each work-pull by an
// idle CPU moves exactly the job under test.
func TestMigrationHandoffExactlyOnce(t *testing.T) {
	for _, cpus := range []int{2, 4, 8} {
		r := newRig(cpus, Config{Shards: cpus})

		// One pinned duty-cycle hog per CPU: busy enough to push the
		// unpinned job off, idle enough to pull it back.
		for c := 0; c < cpus; c++ {
			ops := [2]kernel.Op{
				&kernel.OpCompute{Cycles: 2_000_000}, // 5 ms at 400 MHz
				&kernel.OpSleep{D: 5 * sim.Millisecond},
			}
			var i int
			th := r.kern.SpawnAffinity("hog", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
				op := ops[i%2]
				i++
				return op
			}), c)
			r.ctl.AddMiscellaneous(th)
		}

		jobOps := [2]kernel.Op{
			&kernel.OpCompute{Cycles: 800_000}, // 2 ms at 400 MHz
			&kernel.OpSleep{D: 3 * sim.Millisecond},
		}
		var ji int
		wanderer := r.kern.Spawn("wanderer", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
			op := jobOps[ji%2]
			ji++
			return op
		}))
		pm := &pulseMetric{}
		r.reg.Register(wanderer, pm)
		job := r.ctl.AddRealRate(wanderer, 0)

		// Every actuation of the job, stamped with the epoch it happened
		// in: two in one epoch would mean a double-sample slipped through.
		perEpoch := make(map[int64]int)
		r.ctl.OnActuate(func(j *core.Job, prop int, period sim.Duration, now sim.Time) {
			if j == job {
				perEpoch[r.plane.Epoch()]++
			}
		})

		r.start()
		r.eng.RunFor(2 * sim.Second)

		if wanderer.Migrations() == 0 {
			t.Fatalf("cpus=%d: wanderer never migrated; rig is not exercising handoff", cpus)
		}
		var handoffs uint64
		for _, st := range r.plane.Stats() {
			handoffs += st.Handoffs
		}
		if handoffs == 0 {
			t.Fatalf("cpus=%d: %d migrations but no shard handoffs", cpus, wanderer.Migrations())
		}

		// Exactly one sample per epoch: the final epoch may still be open
		// (the job's current owner shard not yet ticked), so one pending
		// sample is allowed.
		epochs := int(r.plane.Epoch())
		if pm.calls != epochs && pm.calls != epochs-1 {
			t.Errorf("cpus=%d: %d samples over %d epochs (migrations %d, handoffs %d); want exactly one per epoch",
				cpus, pm.calls, epochs, wanderer.Migrations(), handoffs)
		}
		for e, n := range perEpoch {
			if n > 1 {
				t.Errorf("cpus=%d: epoch %d actuated the job %d times, want ≤ 1", cpus, e, n)
			}
		}
	}
}
