package ctlplane

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// benchRig builds a warmed plane over n sleepy miscellaneous jobs.
func benchRig(n int, cfg Config) (*rig, sim.Time) {
	r := newRig(1, cfg)
	r.addMisc(n)
	r.start()
	r.eng.RunFor(sim.Second)
	return r, r.kern.Now()
}

// runEpoch drives one full control epoch: every shard ticks once.
func runEpoch(r *rig, now sim.Time) {
	for _, s := range r.plane.shards {
		r.plane.tick(s, now)
	}
}

// BenchmarkControllerStep measures one full control epoch across the
// plane's shards — the sharded analog of core's BenchmarkControllerStep.
// The acceptance target: event mode at n=100k stays under 2× the per-job
// cost of n=10k, because steady-state misc jobs ride the skip path and
// only 1/staleness of them are re-sampled per epoch.
func BenchmarkControllerStep(b *testing.B) {
	for _, mode := range []Mode{Periodic, EventDriven} {
		for _, n := range []int{10_000, 100_000} {
			b.Run(fmt.Sprintf("mode=%s/n=%d", mode, n), func(b *testing.B) {
				r, now := benchRig(n, Config{Mode: mode, Shards: 8})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runEpoch(r, now)
				}
			})
		}
	}
}

// TestEventDrivenPerJobCostScales enforces the acceptance criterion in
// the test suite (the benchmark records the numbers; this keeps the
// property from regressing silently): one event-mode epoch at n=100k
// must cost less than 2× the per-job cost at n=10k.
func TestEventDrivenPerJobCostScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Minimum over several small batches: `go test ./...` runs packages
	// concurrently, so any single timing window can be inflated by
	// neighbors — the min is the undisturbed cost.
	perJob := func(n int) float64 {
		r, now := benchRig(n, Config{Mode: EventDriven, Shards: 8})
		const batches, reps = 10, 3
		best := time.Duration(1<<63 - 1)
		for b := 0; b < batches; b++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				runEpoch(r, now)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(best) / float64(reps) / float64(n)
	}
	small := perJob(10_000)
	big := perJob(100_000)
	if big > 2*small {
		t.Errorf("event-mode per-job epoch cost grew %.2fx from n=10k (%.1fns) to n=100k (%.1fns), want < 2x",
			big/small, small, big)
	}
}

// TestSoak1MAdmission is the scale soak: admit one million miscellaneous
// jobs and run a handful of control epochs under the sharded event-driven
// plane. It exists to prove admission and the per-epoch machinery stay
// tractable at six figures of jobs — the wall time is logged for
// scripts/bench.sh history.
func TestSoak1MAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 1_000_000
	start := time.Now()
	// The modeled Figure 5 cost (2640 cycles/job) is honest about a
	// 400 MHz machine: it cannot visit a million jobs per 10 ms interval.
	// The soak measures the plane's host-side cost, so the modeled cycle
	// cost is collapsed to let epochs complete in simulated time.
	ccfg := core.Config{BaseCost: 100, PerJobCost: 1}
	r := newRigCfg(1, ccfg, Config{Mode: EventDriven, Shards: 8})
	op := kernel.OpSleep{D: sim.Duration(time.Hour)}
	prog := kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op { return &op })
	for i := 0; i < n; i++ {
		r.ctl.AddMiscellaneous(r.kern.Spawn("soak", prog))
	}
	admit := time.Since(start)
	r.start()
	r.eng.RunFor(60 * sim.Millisecond) // ~6 control epochs
	total := time.Since(start)

	if got := len(r.ctl.Jobs()); got != n {
		t.Fatalf("admitted %d jobs, want %d", got, n)
	}
	epochs := r.plane.Epoch()
	if epochs < 5 {
		t.Fatalf("only %d control epochs completed", epochs)
	}
	var sampled, skipped uint64
	for _, st := range r.plane.Stats() {
		sampled += st.Sampled
		skipped += st.Skipped
	}
	t.Logf("soak: %d jobs admitted in %v, %d epochs in %v total (sampled %d, skipped %d)",
		n, admit.Round(time.Millisecond), epochs, total.Round(time.Millisecond), sampled, skipped)
}
