package ctlplane

import (
	"testing"

	"repro/internal/sim"
)

// FuzzEventDrivenThresholds drives the event-driven plane under arbitrary
// threshold/staleness/shard configurations and checks the liveness
// contract: whatever the knobs say, no job that has ever been sampled
// goes more than the (normalized) staleness bound without a fresh sample.
// A starved job would mean its feedback loop is open — allocations frozen
// while the workload changes — so this bound is the mode's safety
// property.
func FuzzEventDrivenThresholds(f *testing.F) {
	f.Add(0.05, int64(100), uint8(4), uint8(24))
	f.Add(0.0, int64(0), uint8(0), uint8(1))
	f.Add(1.5, int64(1), uint8(64), uint8(40))
	f.Add(-3.0, int64(100000), uint8(7), uint8(13))
	f.Fuzz(func(t *testing.T, threshold float64, stalenessMs int64, shards, njobs uint8) {
		if njobs == 0 || njobs > 64 {
			njobs = 16
		}
		if stalenessMs < 0 {
			stalenessMs = -stalenessMs
		}
		if stalenessMs > 1000 {
			stalenessMs = 1000
		}
		r := newRig(1, Config{
			Mode:         EventDriven,
			Shards:       int(shards),
			Threshold:    threshold,
			MaxStaleness: sim.Duration(stalenessMs) * sim.Millisecond,
		})
		r.addMisc(int(njobs))
		r.addPipeline("p0", 128)
		r.start()

		bound := r.plane.StalenessEpochs()
		r.ctl.OnStep(func(now sim.Time) {
			for _, sh := range r.plane.shards {
				for _, e := range sh.list {
					if !e.sampled || e.removed {
						continue
					}
					if gap := r.plane.epoch - e.sampleEpoch; gap > bound {
						t.Fatalf("threshold=%v staleness=%dms shards=%d: job %q un-sampled for %d epochs, bound %d",
							threshold, stalenessMs, shards, e.job.Thread().Name(), gap, bound)
					}
				}
			}
		})
		r.eng.RunFor(sim.Second)
		if r.plane.Epoch() == 0 {
			t.Fatal("no epochs ran")
		}
	})
}
