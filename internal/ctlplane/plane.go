// Package ctlplane scales the feedback controller past the single global
// 100 Hz sweep. The paper's prototype walks every job each interval
// (Figure 5's cost model: BaseCost + PerJobCost·n cycles); at 100k–1M
// jobs that walk dominates the machine. The control plane splits it three
// ways:
//
//   - Sharding: each of S shards owns the jobs resident on its CPU
//     (thread-ID hashed on a uniprocessor) and runs pass 1 and pass 2
//     over only its own list. Global state — total adaptive demand, the
//     governor's saturation signals — is reconciled through small
//     per-shard aggregates republished at every shard tick.
//
//   - Staggering: shard s ticks at offset s·Interval/S inside the 10 ms
//     interval, so control work is spread across the interval instead of
//     arriving as one burst that preempts the workload.
//
//   - Event-driven sampling: in EventDriven mode the progress registry
//     pushes dirty marks on queue-fill changes, and a shard re-samples a
//     job only when its signal moved by at least Threshold since the last
//     sample, or when the MaxStaleness bound elapsed. Idle jobs cost a
//     few compares per interval; their estimators integrate over the
//     skipped epochs on the next sample, so allocations converge to what
//     the periodic sweep would have computed.
//
// The whole simulation is single-threaded (shard "threads" are simulated
// kernel threads serialized by the engine), so the plane shares one set
// of scratch buffers across shards and needs no locking.
package ctlplane

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/progress"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// Mode selects how the plane decides which jobs to re-sample each epoch.
type Mode int

const (
	// Periodic re-samples every job every epoch — the paper's sweep,
	// merely sharded and staggered.
	Periodic Mode = iota
	// EventDriven re-samples a job only when its progress signal moved
	// past the threshold or its staleness bound elapsed.
	EventDriven
)

func (m Mode) String() string {
	if m == EventDriven {
		return "event"
	}
	return "periodic"
}

// Config parameterizes the plane.
type Config struct {
	// Mode selects periodic or event-driven sampling.
	Mode Mode
	// Shards is the number of shard threads (clamped to [1, 64]).
	// Zero means one.
	Shards int
	// Threshold is the raw-pressure delta that makes a dirty signal worth
	// re-sampling in EventDriven mode. Zero means 0.05 (5% of a queue).
	Threshold float64
	// MaxStaleness bounds how long any job can go un-sampled in
	// EventDriven mode. Zero means 10 control intervals.
	MaxStaleness sim.Duration
}

// entry is the plane's per-job control state.
type entry struct {
	job *core.Job
	// shard is the entry's current home shard.
	shard int
	// lastEpoch guards exactly-once sampling: the epoch in which some
	// shard last visited this entry. A job re-homed mid-epoch onto a
	// shard that has not ticked yet carries the mark that stops the
	// second visit.
	lastEpoch int64
	// sampleEpoch is the epoch of the last actual sample; epoch −
	// sampleEpoch is the gap the estimators integrate over.
	sampleEpoch int64
	// sampled reports whether the job has ever been sampled.
	sampled bool
	// dirty is the push half: a watched metric announced a change since
	// the last sample.
	dirty bool
	// watched reports whether every progress metric the job registered is
	// watchable — i.e. whether dirty marks see all of its signal edges.
	// Refreshed at every sample.
	watched bool
	removed bool
	// freeNext links the object into the plane's free list while pooled.
	freeNext *entry
}

// shard is one slice of the control plane: a list of owned entries, a
// simulated thread that ticks once per interval at this shard's stagger
// offset, and the aggregates republished at every tick.
type shard struct {
	id     int
	thread *kernel.Thread

	list []*entry

	phase     int
	nextWake  sim.Time
	computeOp kernel.OpCompute
	sleepOp   kernel.OpSleepUntil

	// Published aggregates, refreshed at every tick of this shard; other
	// shards read the latest published value (an epoch-versioned
	// aggregate — at most one epoch stale).
	//
	// desireRaw is the un-clamped adaptive demand, the numerator of this
	// shard's capacity slice. govDesire and govGranted are the
	// MaxProportion-clamped demand and granted proportion over all jobs,
	// summed across shards for the governor at each epoch's epilogue.
	// allocAdaptive is the granted proportion over adaptive jobs only,
	// so an event-mode tick can subtract the un-sampled jobs' holdings
	// from its capacity slice.
	desireRaw     int
	govDesire     int
	govGranted    int
	allocAdaptive int

	// Work counts from the previous tick size the modeled compute cost of
	// the next one.
	lastSampled int
	lastSkipped int

	// stats
	ticks    uint64
	sampled  uint64
	skipped  uint64
	handoffs uint64
}

// Plane drives one core.Controller through sharded, staggered, optionally
// event-driven control epochs.
type Plane struct {
	ctl    *core.Controller
	kern   *kernel.Kernel
	policy *rbs.Policy
	reg    *progress.Registry
	cfg    Config

	interval        sim.Duration
	stalenessEpochs int64
	threshold       float64

	shards []*shard
	byJob  map[*core.Job]*entry
	epoch  int64

	// scratch buffers shared across shards — safe because shard ticks are
	// serialized by the simulation.
	squishable []*core.Job
	desires    []int
	weights    []float64
	preAlloc   []int
	moves      []*entry
	// adaptiveScratch collects every adaptive job visited in an event-mode
	// tick, so an over-committed shard can squish its whole list.
	adaptiveScratch []*core.Job

	// entSlab backs new entry allocation; freeEnt heads the free list of
	// dropped ones. An entry lives in exactly one shard list, is marked
	// removed at jobRemoved, and returns to the pool when its owning
	// shard's keep-loop drops it — the only point where it provably leaves
	// every reference.
	entSlab []entry
	freeEnt *entry

	started bool
}

// New wires a plane to a controller. The controller must not have been
// started; the plane replaces its thread with one thread per shard. In
// EventDriven mode the registry's dirty hook is claimed by the plane.
func New(ctl *core.Controller, kern *kernel.Kernel, policy *rbs.Policy, reg *progress.Registry, cfg Config) *Plane {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > 64 {
		cfg.Shards = 64
	}
	ccfg := ctl.Config()
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.05
	}
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = 10 * ccfg.Interval
	}
	p := &Plane{
		ctl:       ctl,
		kern:      kern,
		policy:    policy,
		reg:       reg,
		cfg:       cfg,
		interval:  ccfg.Interval,
		threshold: cfg.Threshold,
		byJob:     make(map[*core.Job]*entry),
	}
	p.stalenessEpochs = (int64(cfg.MaxStaleness) + int64(ccfg.Interval) - 1) / int64(ccfg.Interval)
	if p.stalenessEpochs < 1 {
		p.stalenessEpochs = 1
	}
	for s := 0; s < cfg.Shards; s++ {
		p.shards = append(p.shards, &shard{id: s})
	}
	ctl.MarkExternal()
	ctl.OnJobChange(p.jobAdded, p.jobRemoved)
	for _, j := range ctl.Jobs() {
		p.jobAdded(j)
	}
	if cfg.Mode == EventDriven {
		reg.SetDirtyHook(p.markDirty)
	}
	return p
}

// Start spawns the shard threads. The shards split the legacy controller
// reservation (the last shard takes the remainder, so the admitted total
// matches the single-thread plane exactly) and stagger their first wakes
// across the control interval: shard s first ticks at Start+Interval +
// s·Interval/S, shard 0 exactly where the legacy controller would have.
func (p *Plane) Start() {
	if p.started {
		panic("ctlplane: plane started twice")
	}
	p.started = true
	res := p.ctl.Config().Reservation
	ncpu := p.kern.NumCPUs()
	n := len(p.shards)
	each := res.Proportion / n
	now := p.kern.Now()
	for _, s := range p.shards {
		prop := each
		if s.id == n-1 {
			prop = res.Proportion - each*(n-1)
		}
		if prop < 1 {
			prop = 1
		}
		s.thread = p.kern.SpawnAffinity(fmt.Sprintf("ctl%d", s.id), kernel.ProgramFunc(p.programOf(s)), s.id%ncpu)
		if err := p.policy.SetReservation(s.thread, rbs.Reservation{Proportion: prop, Period: res.Period}); err != nil {
			panic(fmt.Sprintf("ctlplane: shard %d reservation: %v", s.id, err))
		}
		p.ctl.AdmitOverhead(prop)
		s.nextWake = now.Add(p.interval).Add(sim.Duration(int64(p.interval) * int64(s.id) / int64(n)))
		s.lastSampled = len(s.list)
	}
}

// programOf builds one shard's thread program: burn the modeled cost,
// tick, sleep to the next staggered wake — the same shape as the legacy
// controller thread, with the per-interval cost split across shards.
func (p *Plane) programOf(s *shard) func(t *kernel.Thread, now sim.Time) kernel.Op {
	ccfg := p.ctl.Config()
	return func(t *kernel.Thread, now sim.Time) kernel.Op {
		s.phase++
		if s.phase%2 == 1 {
			// The base bookkeeping is split evenly; the per-job term
			// charges full freight for sampled jobs and 1/8 for the
			// skip-path compares of event mode.
			work := sim.Cycles(s.lastSampled) + sim.Cycles(s.lastSkipped)/8
			s.computeOp.Cycles = ccfg.BaseCost/sim.Cycles(len(p.shards)) + work*ccfg.PerJobCost
			return &s.computeOp
		}
		p.tick(s, now)
		wake := s.nextWake
		s.nextWake = s.nextWake.Add(p.interval)
		s.sleepOp.At = wake
		return &s.sleepOp
	}
}

// homeOf returns the shard a job's primary thread is resident on: its CPU
// on a multiprocessor, a thread-ID hash on a uniprocessor.
func (p *Plane) homeOf(j *core.Job) int {
	t := j.Thread()
	if p.kern.NumCPUs() > 1 {
		return t.CPU() % len(p.shards)
	}
	return t.ID() % len(p.shards)
}

// entrySlabSize is how many entries one slab chunk holds.
const entrySlabSize = 256

// allocEntry returns a zeroed entry from the free pool or the slab.
func (p *Plane) allocEntry() *entry {
	if e := p.freeEnt; e != nil {
		p.freeEnt = e.freeNext
		*e = entry{}
		return e
	}
	if len(p.entSlab) == 0 {
		p.entSlab = make([]entry, entrySlabSize)
	}
	e := &p.entSlab[0]
	p.entSlab = p.entSlab[1:]
	return e
}

// jobAdded registers a plane entry for a newly admitted job on its home
// shard. lastEpoch 0 makes the home shard visit it at its next tick.
func (p *Plane) jobAdded(j *core.Job) {
	e := p.allocEntry()
	e.job = j
	e.shard = p.homeOf(j)
	p.byJob[j] = e
	sh := p.shards[e.shard]
	sh.list = append(sh.list, e)
}

// jobRemoved marks the entry dead; the owning shard drops it at its next
// visit. The aggregates self-correct at the same tick.
func (p *Plane) jobRemoved(j *core.Job) {
	if e := p.byJob[j]; e != nil {
		e.removed = true
		delete(p.byJob, j)
	}
}

// markDirty is the registry's dirty hook: a watched metric of one of the
// thread's job's signals moved.
func (p *Plane) markDirty(t *kernel.Thread) {
	j, ok := p.ctl.JobOf(t)
	if !ok {
		return
	}
	if e := p.byJob[j]; e != nil {
		e.dirty = true
	}
}

// watchedOf reports whether dirty marks cover all of the job's progress
// signals: at least one member registered metrics and every registered
// metric is watchable.
func (p *Plane) watchedOf(j *core.Job) bool {
	any := false
	for _, t := range j.Members() {
		if !p.reg.HasMetrics(t) {
			continue
		}
		any = true
		if !p.reg.Watched(t) {
			return false
		}
	}
	return any
}

// shouldSample decides whether a shard visit re-samples the job this
// epoch. Periodic mode always samples. Event mode samples never-sampled
// jobs, jobs past the staleness bound, and watched real-rate jobs whose
// dirty signal moved at least Threshold from the last sampled raw
// pressure; everything else (quiet watched jobs, unwatched or
// metric-less classes inside the bound) is skipped.
func (p *Plane) shouldSample(e *entry, now sim.Time) bool {
	if p.cfg.Mode == Periodic {
		return true
	}
	if !e.sampled {
		return true
	}
	if p.epoch-e.sampleEpoch >= p.stalenessEpochs {
		return true
	}
	if e.job.Class() == core.RealRate && e.watched {
		if !e.dirty {
			return false
		}
		raw := p.ctl.PeekPressure(e.job, now)
		d := raw - e.job.RawPressure()
		if d < 0 {
			d = -d
		}
		if d >= p.threshold {
			return true
		}
		e.dirty = false
	}
	return false
}

// tick runs one shard's slice of a control epoch.
//
// Shard 0's tick opens the epoch (prologue: step count, miss reaction,
// reap, delayed actuations); the last shard's tick closes it (epilogue:
// governor observation over the summed aggregates). In between, each
// shard visits its list exactly once: drop dead entries, re-home migrated
// ones (collected during the walk, applied after — the lastEpoch guard
// keeps a re-homed job from being visited twice in one epoch), decide
// whether to re-sample, and rebuild its published aggregates. Pass 2
// squishes only this epoch's sampled jobs into the shard's demand-
// proportional slice of machine capacity, minus what the shard's
// un-sampled jobs already hold — so an idle shard's tick does no squish
// work at all.
func (p *Plane) tick(s *shard, now sim.Time) {
	if s.id == 0 {
		p.epoch++
		p.ctl.EpochPrologue(now)
	}
	s.ticks++

	squishable := p.squishable[:0]
	desires := p.desires[:0]
	weights := p.weights[:0]
	preAlloc := p.preAlloc[:0]
	moves := p.moves[:0]
	allAdaptive := p.adaptiveScratch[:0]

	var desireRaw, govDesire, govGranted, allocAdaptive int
	var sampledTick, skippedTick int
	maxPPT := p.ctl.Config().MaxProportion

	keep := s.list[:0]
	for _, e := range s.list {
		if e.removed {
			// The entry leaves its only list here; its job pointer may
			// already name a recycled (reissued) object, so it must not be
			// dereferenced — just pool the entry.
			e.job = nil
			e.freeNext = p.freeEnt
			p.freeEnt = e
			continue
		}
		j := e.job
		if home := p.homeOf(j); home != s.id {
			e.shard = home
			moves = append(moves, e)
			s.handoffs++
		} else {
			keep = append(keep, e)
		}
		if e.lastEpoch == p.epoch {
			// Already visited this epoch: the entry was re-homed here by a
			// shard that ticked earlier. Its sample and its aggregate
			// contribution happened there; counting it again would
			// double-sample the job and double-count its demand.
			continue
		}
		e.lastEpoch = p.epoch

		adaptive := j.Class().Adaptive()
		if p.shouldSample(e, now) {
			epochs := p.epoch - e.sampleEpoch
			if !e.sampled || epochs < 1 {
				epochs = 1
			}
			e.watched = p.watchedOf(j)
			inSquish := p.ctl.SampleJob(j, now, epochs)
			e.sampled = true
			e.sampleEpoch = p.epoch
			e.dirty = false
			sampledTick++
			if inSquish {
				squishable = append(squishable, j)
				desires = append(desires, j.Desired())
				weights = append(weights, j.Importance())
				preAlloc = append(preAlloc, j.Allocated())
			}
		} else {
			skippedTick++
		}

		d := j.Desired()
		dc := d
		if dc > maxPPT {
			dc = maxPPT
		}
		govDesire += dc
		govGranted += j.Allocated()
		if adaptive {
			desireRaw += d
			allocAdaptive += j.Allocated()
			if p.cfg.Mode == EventDriven {
				allAdaptive = append(allAdaptive, j)
			}
		}
	}
	tail := keep[len(keep):len(s.list)]
	for i := range tail {
		tail[i] = nil
	}
	s.list = keep
	for _, e := range moves {
		p.shards[e.shard].list = append(p.shards[e.shard].list, e)
	}

	// Publish this shard's aggregates before computing the capacity slice
	// so the split sees this epoch's demand.
	s.desireRaw, s.govDesire, s.govGranted, s.allocAdaptive = desireRaw, govDesire, govGranted, allocAdaptive

	// Pass 2 over the sampled set. The shard's capacity slice is its share
	// of adaptive demand: with no floors binding, the global squish scales
	// every desire by capacity/demand, so demand-proportional slices
	// reproduce the global allocation in steady state.
	capacity := p.ctl.EffectiveThreshold() - p.ctl.Admitted()
	if capacity < 0 {
		capacity = 0
	}
	var dTotal int
	for _, o := range p.shards {
		dTotal += o.desireRaw
	}
	var slice int
	if dTotal <= 0 {
		slice = capacity / len(p.shards)
	} else {
		slice = int(int64(capacity) * int64(desireRaw) / int64(dTotal))
	}
	if p.cfg.Mode == EventDriven && allocAdaptive > slice {
		// Over-commit recovery: the shard's jobs hold more than its slice
		// (early epochs, before every shard has published demand; or a
		// demand collapse elsewhere). Waiting for staleness to re-sample
		// the holders would leave the machine over-committed for up to the
		// staleness bound, so the whole shard is squished now with
		// retained desires. The included un-sampled jobs get their usage
		// marks advanced a little early; their next sample's smoothed
		// usage absorbs it.
		squishable = append(squishable[:0], allAdaptive...)
		desires, weights, preAlloc = desires[:0], weights[:0], preAlloc[:0]
		for _, j := range allAdaptive {
			desires = append(desires, j.Desired())
			weights = append(weights, j.Importance())
			preAlloc = append(preAlloc, j.Allocated())
		}
	}
	held := 0
	for _, a := range preAlloc {
		held += a
	}
	squishCap := slice - (allocAdaptive - held)
	p.ctl.SquishApply(squishable, desires, weights, squishCap, now)
	for i, j := range squishable {
		delta := j.Allocated() - preAlloc[i]
		s.govGranted += delta
		s.allocAdaptive += delta
	}

	p.squishable, p.desires, p.weights, p.preAlloc, p.moves = squishable, desires, weights, preAlloc, moves[:0]
	p.adaptiveScratch = allAdaptive
	s.lastSampled, s.lastSkipped = sampledTick, skippedTick
	s.sampled += uint64(sampledTick)
	s.skipped += uint64(skippedTick)

	if s.id == len(p.shards)-1 {
		var dsum, gsum int
		for _, o := range p.shards {
			dsum += o.govDesire
			gsum += o.govGranted
		}
		p.ctl.EpochEpilogue(now, dsum, gsum)
	}
}

// Stat is one shard's counters.
type Stat struct {
	Shard    int
	Ticks    uint64
	Sampled  uint64
	Skipped  uint64
	Handoffs uint64
	// LastSampled/LastSkipped are the most recent tick's work counts.
	LastSampled int
	LastSkipped int
}

// Stats returns per-shard counters.
func (p *Plane) Stats() []Stat {
	out := make([]Stat, len(p.shards))
	for i, s := range p.shards {
		out[i] = Stat{
			Shard: s.id, Ticks: s.ticks, Sampled: s.sampled, Skipped: s.skipped,
			Handoffs: s.handoffs, LastSampled: s.lastSampled, LastSkipped: s.lastSkipped,
		}
	}
	return out
}

// Mode returns the plane's sampling mode.
func (p *Plane) Mode() Mode { return p.cfg.Mode }

// Shards returns the shard count.
func (p *Plane) Shards() int { return len(p.shards) }

// Epoch returns the number of completed-or-open control epochs.
func (p *Plane) Epoch() int64 { return p.epoch }

// StalenessEpochs returns the staleness bound in control intervals — the
// most epochs any job can go un-sampled in EventDriven mode.
func (p *Plane) StalenessEpochs() int64 { return p.stalenessEpochs }

// CPUTime sums the CPU consumed by every shard thread.
func (p *Plane) CPUTime() sim.Duration {
	var total sim.Duration
	for _, s := range p.shards {
		if s.thread != nil {
			total += s.thread.CPUTime()
		}
	}
	return total
}

// Threads returns the shard threads (nil entries before Start).
func (p *Plane) Threads() []*kernel.Thread {
	out := make([]*kernel.Thread, len(p.shards))
	for i, s := range p.shards {
		out[i] = s.thread
	}
	return out
}
