package metrics

import "repro/internal/sim"

// Sample schedules fn to run every interval, starting one interval from
// now, until the horizon (inclusive). Experiments use it to record time
// series out of the simulation.
func Sample(eng *sim.Engine, interval sim.Duration, horizon sim.Time, fn func(now sim.Time)) {
	if interval <= 0 {
		panic("metrics: non-positive sampling interval")
	}
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		fn(now)
		next := now.Add(interval)
		if next <= horizon {
			eng.At(next, tick)
		}
	}
	eng.At(eng.Now().Add(interval), tick)
}

// RateSampler converts a monotone counter into a rate series: each sample
// records (counter − previous) / interval. The paper's progress-rate plots
// (bytes/sec) are produced this way from queue transfer totals.
type RateSampler struct {
	Series *Series
	prev   float64
	last   sim.Time
	primed bool
}

// NewRateSampler returns a rate sampler writing into a named series.
func NewRateSampler(name string) *RateSampler {
	return &RateSampler{Series: NewSeries(name)}
}

// Observe records the counter value at now and appends the rate since the
// previous observation (skipping the first, which has no baseline).
func (r *RateSampler) Observe(now sim.Time, counter float64) {
	if r.primed {
		dt := now.Sub(r.last).Seconds()
		if dt > 0 {
			r.Series.Add(now, (counter-r.prev)/dt)
		}
	}
	r.prev = counter
	r.last = now
	r.primed = true
}
