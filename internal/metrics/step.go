package metrics

import "repro/internal/sim"

// StepResponse describes how a measured signal reacted to a step change in
// its set point at time StepAt. The paper reports that the controller takes
// "roughly 1/3 of a second to respond to the doubling in production rate"
// (Figure 6); RiseTime quantifies that.
type StepResponse struct {
	StepAt    sim.Time
	From, To  float64      // signal levels before / target after the step
	RiseTime  sim.Duration // time to first reach 90% of the step
	Settled   bool         // signal reached the 90% band within the window
	Overshoot float64      // max excursion past To, as a fraction of the step
}

// MeasureStep analyzes how series s responds to a step from `from` to `to`
// that occurs at stepAt, considering samples in [stepAt, deadline].
func MeasureStep(s *Series, stepAt sim.Time, from, to float64, deadline sim.Time) StepResponse {
	r := StepResponse{StepAt: stepAt, From: from, To: to}
	step := to - from
	if step == 0 {
		r.Settled = true
		return r
	}
	target := from + 0.9*step
	var maxPast float64
	for _, p := range s.Points() {
		if p.T < stepAt {
			continue
		}
		if p.T > deadline {
			break
		}
		reached := (step > 0 && p.V >= target) || (step < 0 && p.V <= target)
		if reached && !r.Settled {
			r.Settled = true
			r.RiseTime = p.T.Sub(stepAt)
		}
		past := (p.V - to) / step // positive = beyond the target
		if past > maxPast {
			maxPast = past
		}
	}
	r.Overshoot = maxPast
	return r
}

// OscillationAmplitude returns the mean peak-to-peak swing of the series
// within the window, computed per sub-window. The controller's period
// heuristic uses exactly this statistic on queue fill levels to detect
// jitter (§3.3: "the amount of change in fill-level over the course of a
// period, averaged over several periods").
func OscillationAmplitude(s *Series, from, to sim.Time, window sim.Duration) float64 {
	if window <= 0 || to <= from {
		return 0
	}
	var amps []float64
	cur := from
	for cur < to {
		end := cur.Add(window)
		if end > to {
			end = to
		}
		sub := s.Slice(cur, end)
		if sub.Len() >= 2 {
			amps = append(amps, sub.Max()-sub.Min())
		}
		cur = end
	}
	return Mean(amps)
}
