package metrics

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of vs, or 0 for an empty slice.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Variance returns the population variance of vs.
func Variance(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := Mean(vs)
	var acc float64
	for _, v := range vs {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(vs))
}

// StdDev returns the population standard deviation of vs.
func StdDev(vs []float64) float64 { return math.Sqrt(Variance(vs)) }

// Percentile returns the p'th percentile (0..100) of vs using linear
// interpolation between closest ranks. It copies vs before sorting.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the common descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary for vs.
func Summarize(vs []float64) Summary {
	s := Summary{N: len(vs)}
	if len(vs) == 0 {
		return s
	}
	s.Mean = Mean(vs)
	s.StdDev = StdDev(vs)
	s.Min, s.Max = vs[0], vs[0]
	for _, v := range vs {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.P50 = Percentile(vs, 50)
	s.P95 = Percentile(vs, 95)
	s.P99 = Percentile(vs, 99)
	return s
}

// Histogram is a fixed-bucket histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bucket so nothing is silently lost.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Count   int
}

// NewHistogram returns a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Observe records a value.
func (h *Histogram) Observe(v float64) {
	n := len(h.Buckets)
	idx := int(float64(n) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Buckets[idx]++
	h.Count++
}

// Fraction returns the fraction of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.Count)
}
