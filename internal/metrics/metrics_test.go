package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }

func TestSeriesAddAndQuery(t *testing.T) {
	s := NewSeries("x")
	s.Add(ms(0), 1)
	s.Add(ms(10), 2)
	s.Add(ms(20), 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if p := s.At(1); p.V != 2 || p.T != ms(10) {
		t.Fatalf("At(1) = %+v", p)
	}
	last, ok := s.Last()
	if !ok || last.V != 3 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
}

func TestSeriesRejectsBackwardsTime(t *testing.T) {
	s := NewSeries("x")
	s.Add(ms(10), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backwards sample")
		}
	}()
	s.Add(ms(5), 2)
}

func TestSeriesAllowsEqualTimes(t *testing.T) {
	s := NewSeries("x")
	s.Add(ms(10), 1)
	s.Add(ms(10), 2)
	if s.Len() != 2 {
		t.Fatal("equal-time samples rejected")
	}
}

func TestSeriesValueAtZeroOrderHold(t *testing.T) {
	s := NewSeries("x")
	s.Add(ms(10), 1)
	s.Add(ms(20), 5)
	if _, ok := s.ValueAt(ms(5)); ok {
		t.Fatal("ValueAt before first sample should report !ok")
	}
	if v, _ := s.ValueAt(ms(10)); v != 1 {
		t.Fatalf("ValueAt(10ms) = %v", v)
	}
	if v, _ := s.ValueAt(ms(15)); v != 1 {
		t.Fatalf("ValueAt(15ms) = %v", v)
	}
	if v, _ := s.ValueAt(ms(20)); v != 5 {
		t.Fatalf("ValueAt(20ms) = %v", v)
	}
	if v, _ := s.ValueAt(ms(1000)); v != 5 {
		t.Fatalf("ValueAt(1s) = %v", v)
	}
}

func TestSeriesSlice(t *testing.T) {
	s := NewSeries("x")
	for i := int64(0); i < 10; i++ {
		s.Add(ms(i*10), float64(i))
	}
	sub := s.Slice(ms(20), ms(50))
	if sub.Len() != 3 {
		t.Fatalf("Slice len = %d, want 3", sub.Len())
	}
	if sub.At(0).V != 2 || sub.At(2).V != 4 {
		t.Fatalf("Slice contents wrong: %+v", sub.Points())
	}
}

func TestSeriesMinMaxMean(t *testing.T) {
	s := NewSeries("x")
	for i, v := range []float64{3, -1, 4, 1, 5} {
		s.Add(ms(int64(i)), v)
	}
	if s.Min() != -1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Mean(); math.Abs(got-2.4) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	s := NewSeries("x")
	s.Add(ms(0), 0)
	s.Add(ms(500), 10) // signal is 0 for first half, 10 for second
	got := s.TimeWeightedMean(ms(0), ms(1000))
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("TimeWeightedMean = %v, want 5", got)
	}
	// Window entirely in the 10 region.
	got = s.TimeWeightedMean(ms(600), ms(800))
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("TimeWeightedMean(600,800) = %v, want 10", got)
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSeries("fill")
	s.Add(ms(0), 0.5)
	s.Add(ms(1000), 0.75)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time_s,fill\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "1.000000,0.75") {
		t.Fatalf("missing row: %q", out)
	}
}

func TestWriteTableCSV(t *testing.T) {
	a, b := NewSeries("a"), NewSeries("b")
	a.Add(ms(0), 1)
	a.Add(ms(10), 2)
	b.Add(ms(0), 3)
	b.Add(ms(10), 4)
	var sb strings.Builder
	if err := WriteTableCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "time_s,a,b") {
		t.Fatalf("bad header: %q", sb.String())
	}
	if !strings.Contains(sb.String(), "0.010000,2,4") {
		t.Fatalf("bad row: %q", sb.String())
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(vs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(vs); v != 4 {
		t.Fatalf("Variance = %v", v)
	}
	if sd := StdDev(vs); sd != 2 {
		t.Fatalf("StdDev = %v", sd)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(vs, 0); p != 1 {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(vs, 100); p != 10 {
		t.Fatalf("P100 = %v", p)
	}
	if p := Percentile(vs, 50); math.Abs(p-5.5) > 1e-12 {
		t.Fatalf("P50 = %v", p)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Observe(0.05)
	h.Observe(0.55)
	h.Observe(0.55)
	h.Observe(-5)  // clamped to first
	h.Observe(2.0) // clamped to last
	if h.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d", h.Buckets[0])
	}
	if h.Buckets[5] != 2 {
		t.Fatalf("bucket 5 = %d", h.Buckets[5])
	}
	if h.Buckets[9] != 1 {
		t.Fatalf("bucket 9 = %d", h.Buckets[9])
	}
	if f := h.Fraction(5); math.Abs(f-0.4) > 1e-12 {
		t.Fatalf("Fraction(5) = %v", f)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.00066*x + 0.00057 // the paper's Figure 5 line
	}
	fit := FitLinear(xs, ys)
	if math.Abs(fit.Slope-0.00066) > 1e-12 {
		t.Fatalf("Slope = %v", fit.Slope)
	}
	if math.Abs(fit.Intercept-0.00057) > 1e-12 {
		t.Fatalf("Intercept = %v", fit.Intercept)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := sim.NewRNG(3)
	var xs, ys []float64
	for i := 0; i < 100; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 2*x+1+(rng.Float64()-0.5)*0.1)
	}
	fit := FitLinear(xs, ys)
	if math.Abs(fit.Slope-2) > 0.01 {
		t.Fatalf("Slope = %v, want ≈2", fit.Slope)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v, want ≈1", fit.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	// Vertical line: all x equal.
	fit := FitLinear([]float64{1, 1, 1}, []float64{1, 2, 3})
	if fit.Slope != 0 || fit.Intercept != 2 {
		t.Fatalf("vertical fit = %+v", fit)
	}
	// Horizontal line: all y equal, exact fit.
	fit = FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if fit.Slope != 0 || fit.Intercept != 5 || fit.R2 != 1 {
		t.Fatalf("horizontal fit = %+v", fit)
	}
}

// Property: for data generated exactly on a line, FitLinear recovers the
// line with R²≈1.
func TestPropertyFitRecoversLine(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a := float64(a8) / 16
		b := float64(b8) / 16
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		fit := FitLinear(xs, ys)
		return math.Abs(fit.Slope-a) < 1e-9 && math.Abs(fit.Intercept-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureStepRising(t *testing.T) {
	s := NewSeries("alloc")
	// Signal at 100 until t=1s, then ramps to 200 over ~300ms.
	for i := int64(0); i <= 2000; i += 10 {
		tm := ms(i)
		v := 100.0
		if i > 1000 {
			v = 100 + math.Min(1, float64(i-1000)/300)*100
		}
		s.Add(tm, v)
	}
	r := MeasureStep(s, ms(1000), 100, 200, ms(2000))
	if !r.Settled {
		t.Fatal("step not settled")
	}
	// 90% of step = 190, reached at t ≈ 1000 + 270ms.
	if r.RiseTime < 250*sim.Millisecond || r.RiseTime > 300*sim.Millisecond {
		t.Fatalf("RiseTime = %v, want ≈270ms", r.RiseTime)
	}
}

func TestMeasureStepFalling(t *testing.T) {
	s := NewSeries("alloc")
	for i := int64(0); i <= 1000; i += 10 {
		v := 200.0
		if i > 500 {
			v = 100
		}
		s.Add(ms(i), v)
	}
	r := MeasureStep(s, ms(500), 200, 100, ms(1000))
	if !r.Settled {
		t.Fatal("falling step not settled")
	}
}

func TestMeasureStepNotSettled(t *testing.T) {
	s := NewSeries("alloc")
	for i := int64(0); i <= 1000; i += 10 {
		s.Add(ms(i), 100)
	}
	r := MeasureStep(s, ms(500), 100, 200, ms(1000))
	if r.Settled {
		t.Fatal("flat signal reported settled")
	}
}

func TestMeasureStepOvershoot(t *testing.T) {
	s := NewSeries("alloc")
	s.Add(ms(0), 100)
	s.Add(ms(10), 250) // 50% past a 100->200 step
	s.Add(ms(20), 200)
	r := MeasureStep(s, ms(0), 100, 200, ms(100))
	if math.Abs(r.Overshoot-0.5) > 1e-9 {
		t.Fatalf("Overshoot = %v, want 0.5", r.Overshoot)
	}
}

func TestOscillationAmplitude(t *testing.T) {
	s := NewSeries("fill")
	// Square wave between 0.4 and 0.6 with 20ms period.
	for i := int64(0); i < 1000; i += 10 {
		v := 0.4
		if (i/10)%2 == 1 {
			v = 0.6
		}
		s.Add(ms(i), v)
	}
	amp := OscillationAmplitude(s, ms(0), ms(1000), 100*sim.Millisecond)
	if math.Abs(amp-0.2) > 1e-9 {
		t.Fatalf("amplitude = %v, want 0.2", amp)
	}
	// A constant signal has zero amplitude.
	c := NewSeries("const")
	for i := int64(0); i < 1000; i += 10 {
		c.Add(ms(i), 0.5)
	}
	if amp := OscillationAmplitude(c, ms(0), ms(1000), 100*sim.Millisecond); amp != 0 {
		t.Fatalf("constant amplitude = %v", amp)
	}
}

// TestSeriesBound pins the bounded-series contract: past the bound the
// series holds only the newest samples, capacity stays within 2× the
// bound, ordering survives compaction, and recent-window queries keep
// working — the footprint guarantee behind per-job pressure series at
// 10k+ jobs.
func TestSeriesBound(t *testing.T) {
	const bound = 1000
	s := NewSeries("bounded").Bound(bound)
	const n = 100_000
	for i := 0; i < n; i++ {
		s.Add(ms(int64(i)), float64(i))
	}
	if s.Len() > 2*bound {
		t.Fatalf("bounded series holds %d points, want <= %d", s.Len(), 2*bound)
	}
	if cap(s.points) > 2*bound {
		t.Fatalf("bounded series capacity %d, want <= %d", cap(s.points), 2*bound)
	}
	// The newest samples survive, in order.
	last, ok := s.Last()
	if !ok || last.V != n-1 {
		t.Fatalf("Last = %+v, want newest sample %d", last, n-1)
	}
	for i := 1; i < s.Len(); i++ {
		if s.At(i).T < s.At(i-1).T {
			t.Fatalf("order broken at %d after compaction", i)
		}
	}
	// Recent-window zero-order-hold queries still resolve.
	if v, ok := s.ValueAt(ms(n - 10)); !ok || v != n-10 {
		t.Fatalf("ValueAt(n-10) = %v,%v", v, ok)
	}
	// Re-bounding tighter trims immediately.
	s.Bound(100)
	if s.Len() != 100 {
		t.Fatalf("re-bound to 100 left %d points", s.Len())
	}
	if last, _ := s.Last(); last.V != n-1 {
		t.Fatalf("re-bound dropped the newest sample: %+v", last)
	}
}
