package metrics

// Linear is the result of an ordinary least-squares fit y = Slope·x +
// Intercept. R2 is the coefficient of determination. Figure 5 of the paper
// reports exactly these three numbers for controller overhead versus the
// number of controlled processes (y = .00066x + .00057, R² = .999), so the
// experiment harness reproduces them with this fit.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear performs an ordinary least-squares fit of ys against xs. The
// slices must have equal length and at least two points.
func FitLinear(xs, ys []float64) Linear {
	n := len(xs)
	if n != len(ys) || n < 2 {
		panic("metrics: FitLinear needs >=2 paired points")
	}
	var sumX, sumY float64
	for i := 0; i < n; i++ {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX := sumX / float64(n)
	meanY := sumY / float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - meanX
		dy := ys[i] - meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	var fit Linear
	if sxx == 0 {
		// Vertical line; report a flat fit through the mean.
		fit.Slope = 0
		fit.Intercept = meanY
		fit.R2 = 0
		return fit
	}
	fit.Slope = sxy / sxx
	fit.Intercept = meanY - fit.Slope*meanX
	if syy == 0 {
		// All ys identical: the fit is exact.
		fit.R2 = 1
		return fit
	}
	// R² = 1 - SS_res/SS_tot.
	var ssRes float64
	for i := 0; i < n; i++ {
		r := ys[i] - (fit.Slope*xs[i] + fit.Intercept)
		ssRes += r * r
	}
	fit.R2 = 1 - ssRes/syy
	return fit
}
