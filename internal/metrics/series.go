// Package metrics provides the measurement machinery for the experiments:
// time series sampled from the simulation, summary statistics, least-squares
// regression (used to verify Figure 5's linear overhead), and step-response
// analysis (used to measure the controller's reaction time in Figure 6).
package metrics

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series. Samples must be appended in
// non-decreasing time order, which is what a discrete-event simulation
// naturally produces.
type Series struct {
	Name   string
	points []Point
	// maxPoints, when positive, bounds the series to the most recent
	// maxPoints samples (see Bound).
	maxPoints int
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Bound caps the series at the most recent max samples: once the bound is
// exceeded, the oldest points are dropped (amortized O(1) via sliding
// compaction, capacity stays ≤ 2×max). Long-running consumers that only
// read recent windows — the controller's per-job pressure series, rrtop —
// use it so 10k-thread machines do not grow per-thread memory without
// limit. max <= 0 removes the bound. Returns s for chaining.
//
// The backing array grows with actual samples (geometrically, capped at
// 2×max) rather than being pinned at 2×max up front: a bounded series
// belongs to every real-rate job, including ones that live a few control
// intervals — a live-service session, a churn-spawned pipeline — and an
// eager 2×max allocation charges each of them the full long-running
// footprint (256 KB at the controller's 8192-sample bound) for a history
// they never accumulate. At 100k sessions that eager pin was gigabytes of
// dead capacity; lazily grown, a short-lived job's series costs a few
// dozen points.
func (s *Series) Bound(max int) *Series {
	s.maxPoints = max
	s.trim()
	return s
}

// trim enforces the bound, keeping the newest maxPoints samples.
func (s *Series) trim() {
	if s.maxPoints <= 0 || len(s.points) <= s.maxPoints {
		return
	}
	keep := s.points[len(s.points)-s.maxPoints:]
	copy(s.points, keep)
	tail := s.points[s.maxPoints:]
	s.points = s.points[:s.maxPoints]
	// Zero the vacated tail so dropped samples are unreachable.
	for i := range tail {
		tail[i] = Point{}
	}
}

// Add appends a sample. It panics if time goes backwards, since that would
// silently corrupt every downstream analysis.
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		panic(fmt.Sprintf("metrics: series %q sample at %v before last %v", s.Name, t, s.points[n-1].T))
	}
	if s.maxPoints > 0 {
		if len(s.points) >= 2*s.maxPoints {
			s.trim()
		}
		if len(s.points) == cap(s.points) && cap(s.points) < 2*s.maxPoints {
			// Grow geometrically toward the 2×max ceiling ourselves so the
			// capacity invariant holds exactly; once the ceiling is reached
			// the sliding trim keeps len inside it and the series never
			// reallocates again.
			nc := 2 * cap(s.points)
			if nc == 0 {
				nc = 8
			}
			if nc > 2*s.maxPoints {
				nc = 2 * s.maxPoints
			}
			pts := make([]Point, len(s.points), nc)
			copy(pts, s.points)
			s.points = pts
		}
	}
	s.points = append(s.points, Point{t, v})
}

// Reset empties the series and renames it, keeping the backing capacity
// and the bound, so a pooled owner (a recycled controller job) can reuse
// the object as a new logical series without reallocating.
func (s *Series) Reset(name string) {
	s.Name = name
	for i := range s.points {
		s.points[i] = Point{} // dropped samples must be unreachable
	}
	s.points = s.points[:0]
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// At returns the i'th sample.
func (s *Series) At(i int) Point { return s.points[i] }

// Points returns the underlying samples. The slice must not be modified.
func (s *Series) Points() []Point { return s.points }

// Last returns the most recent sample and ok=false when the series is empty.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.points))
	for i, p := range s.points {
		vs[i] = p.V
	}
	return vs
}

// Slice returns the sub-series with from <= T < to.
func (s *Series) Slice(from, to sim.Time) *Series {
	lo := sort.Search(len(s.points), func(i int) bool { return s.points[i].T >= from })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].T >= to })
	out := &Series{Name: s.Name}
	out.points = s.points[lo:hi]
	return out
}

// ValueAt returns the sample value in effect at time t: the value of the
// latest sample at or before t (zero-order hold). ok is false when t
// precedes the first sample.
func (s *Series) ValueAt(t sim.Time) (float64, bool) {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].V, true
}

// Mean returns the arithmetic mean of the sample values (not time-weighted).
func (s *Series) Mean() float64 {
	return Mean(s.Values())
}

// TimeWeightedMean integrates the zero-order-hold signal over [from, to] and
// divides by the window width. It is the right average for quantities like
// "allocation in effect" that change at irregular instants.
func (s *Series) TimeWeightedMean(from, to sim.Time) float64 {
	if to <= from || len(s.points) == 0 {
		return 0
	}
	var acc float64
	prevT := from
	prevV, ok := s.ValueAt(from)
	if !ok {
		prevV = 0
	}
	for _, p := range s.points {
		if p.T <= from {
			prevV = p.V
			continue
		}
		if p.T >= to {
			break
		}
		acc += prevV * p.T.Sub(prevT).Seconds()
		prevT, prevV = p.T, p.V
	}
	acc += prevV * to.Sub(prevT).Seconds()
	return acc / to.Sub(from).Seconds()
}

// Min returns the minimum sample value, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.points) == 0 {
		return 0
	}
	m := s.points[0].V
	for _, p := range s.points[1:] {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Max returns the maximum sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.points) == 0 {
		return 0
	}
	m := s.points[0].V
	for _, p := range s.points[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// WriteCSV writes "seconds,value" rows (with a header) to w.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_s,%s\n", s.Name); err != nil {
		return err
	}
	for _, p := range s.points {
		if _, err := fmt.Fprintf(w, "%.6f,%.9g\n", p.T.Seconds(), p.V); err != nil {
			return err
		}
	}
	return nil
}

// WriteTableCSV writes several series that share a sampling clock as one CSV
// table. Series are aligned by index; the shortest series bounds the rows.
func WriteTableCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	fmt.Fprint(w, "time_s")
	rows := series[0].Len()
	for _, s := range series {
		fmt.Fprintf(w, ",%s", s.Name)
		if s.Len() < rows {
			rows = s.Len()
		}
	}
	fmt.Fprintln(w)
	for i := 0; i < rows; i++ {
		if _, err := fmt.Fprintf(w, "%.6f", series[0].At(i).T.Seconds()); err != nil {
			return err
		}
		for _, s := range series {
			fmt.Fprintf(w, ",%.9g", s.At(i).V)
		}
		fmt.Fprintln(w)
	}
	return nil
}
