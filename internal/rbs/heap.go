// Intrusive, index-tracked priority structures for the dispatcher's hot
// path. Each thread's positions are stored in its scheduling state
// (heapIdx/boundIdx/exhIdx), so membership tests and removals are O(1)+
// O(log n) with no allocation and no linear scans.
//
// Ordering must reproduce the legacy linear scan bit-for-bit: the scan
// picked the *first* best thread in runnable-slice order, and slice order
// was insertion order (append on Enqueue, move-to-back on rotate, with
// order-preserving removals). A monotonically increasing sequence number,
// assigned on Enqueue and reassigned on rotate, reconstructs exactly that
// order, so every comparison ties break FIFO-among-equals like the scan.
package rbs

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// readyLess orders the ready heap: the thread that should dispatch first
// is the heap top. It is the strict-weak-order completion of better():
// registered threads with budget beat unmanaged threads; within the
// registered class RMS prefers shorter (clamped) periods and EDF earlier
// period ends; all remaining ties fall back to enqueue order.
func (p *Policy) readyLess(a, b *kernel.Thread) bool {
	sa, sb := stateOf(a), stateOf(b)
	ca := sa.registered && sa.budget > 0
	cb := sb.registered && sb.budget > 0
	if ca != cb {
		return ca
	}
	if ca {
		if p.Discipline == RMS {
			pa, pb := clampedPeriodMs(sa), clampedPeriodMs(sb)
			if pa != pb {
				return pa < pb
			}
		} else {
			ea, eb := p.periodEnd(sa), p.periodEnd(sb)
			if ea != eb {
				return ea < eb
			}
		}
	}
	return sa.seq < sb.seq
}

// clampedPeriodMs is the period in whole milliseconds with the same
// clamping goodness() applies, so RMS heap order matches goodness order
// exactly (including periods that collapse to the same clamped value).
func clampedPeriodMs(st *state) int64 {
	ms := int64(st.res.Period / sim.Millisecond)
	if ms < 1 {
		ms = 1
	}
	if ms > 1<<20 {
		ms = 1 << 20
	}
	return ms
}

// --- ready heap: queued threads eligible to run ---

func (p *Policy) readyPush(t *kernel.Thread) {
	st := stateOf(t)
	st.heapIdx = len(p.ready)
	p.ready = append(p.ready, t)
	p.readyUp(st.heapIdx)
}

func (p *Policy) readyRemove(t *kernel.Thread) {
	st := stateOf(t)
	i := st.heapIdx
	if i < 0 {
		return
	}
	st.heapIdx = -1
	last := len(p.ready) - 1
	moved := p.ready[last]
	p.ready[last] = nil // clear the vacated tail slot
	p.ready = p.ready[:last]
	if i == last {
		return
	}
	p.ready[i] = moved
	stateOf(moved).heapIdx = i
	p.readyFixAt(i)
}

// readyFix restores the heap property after t's key changed in place.
func (p *Policy) readyFix(t *kernel.Thread) {
	if i := stateOf(t).heapIdx; i >= 0 {
		p.readyFixAt(i)
	}
}

func (p *Policy) readyFixAt(i int) {
	if !p.readyDown(i) {
		p.readyUp(i)
	}
}

func (p *Policy) readyTop() *kernel.Thread {
	if len(p.ready) == 0 {
		return nil
	}
	return p.ready[0]
}

func (p *Policy) readyUp(i int) {
	t := p.ready[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !p.readyLess(t, p.ready[parent]) {
			break
		}
		p.ready[i] = p.ready[parent]
		stateOf(p.ready[i]).heapIdx = i
		i = parent
	}
	p.ready[i] = t
	stateOf(t).heapIdx = i
}

func (p *Policy) readyDown(i int) bool {
	t := p.ready[i]
	n := len(p.ready)
	moved := false
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && p.readyLess(p.ready[r], p.ready[kid]) {
			kid = r
		}
		if !p.readyLess(p.ready[kid], t) {
			break
		}
		p.ready[i] = p.ready[kid]
		stateOf(p.ready[i]).heapIdx = i
		i = kid
		moved = true
	}
	p.ready[i] = t
	stateOf(t).heapIdx = i
	return moved
}

// --- period-boundary wheel: queued registered threads by period end ---
//
// Period refresh must run for every queued registered thread whose period
// ended, on every dispatch — but with thousands of oversubscribed threads,
// boundaries pass at Σ 1/periodᵢ per second, so an ordered heap pays an
// O(log n) sift per roll and dominates the profile. Period ends are timer
// deadlines, so they get the same treatment as the sim engine's event
// queue: a timer wheel of bwSlots buckets, one kernel tick wide each, with
// O(1) insert/remove (swap-remove; order within a bucket is irrelevant —
// every due entry is rolled before Pick reads the ready heap) and an
// overflow min-heap on cached keys for boundaries beyond the horizon.

const (
	bwSlots = 256
	bwMask  = bwSlots - 1

	// boundNone/boundOverflow are boundSlot sentinels; values ≥ 0 are
	// wheel bucket indices.
	boundNone     = -1
	boundOverflow = -2
)

// boundInsert files t under its current period end. t must be queued,
// registered, and not already filed. Wheel buckets are intrusive doubly
// linked lists threaded through the scheduling state, so filing and
// unfiling never allocate no matter how boundaries cluster.
func (p *Policy) boundInsert(t *kernel.Thread) {
	st := stateOf(t)
	key := p.periodEnd(st)
	st.boundKey = key
	slot := int64(key) / p.slotW
	if slot >= p.curSlot+bwSlots {
		st.boundSlot = boundOverflow
		st.boundIdx = len(p.overflow)
		p.overflow = append(p.overflow, t)
		p.overflowUp(st.boundIdx)
		return
	}
	if slot < p.curSlot {
		slot = p.curSlot // defensive; boundKey is re-checked when draining
	}
	b := int(slot & bwMask)
	st.boundSlot = b
	st.boundPrev = nil
	st.boundNext = p.buckets[b]
	if st.boundNext != nil {
		stateOf(st.boundNext).boundPrev = t
	}
	p.buckets[b] = t
}

func (p *Policy) boundRemove(t *kernel.Thread) {
	st := stateOf(t)
	switch {
	case st.boundSlot == boundNone:
		return
	case st.boundSlot == boundOverflow:
		p.overflowRemove(t)
	default:
		if st.boundPrev != nil {
			stateOf(st.boundPrev).boundNext = st.boundNext
		} else {
			p.buckets[st.boundSlot] = st.boundNext
		}
		if st.boundNext != nil {
			stateOf(st.boundNext).boundPrev = st.boundPrev
		}
		st.boundPrev = nil
		st.boundNext = nil
	}
	st.boundSlot = boundNone
	st.boundIdx = -1
}

// boundDrain rolls every queued registered thread whose period ended at or
// before now: buckets strictly behind now's slot are entirely due, and the
// current slot plus the overflow heap are filtered by cached key. Entries
// refiled during the drain always carry a rolled-past-now key, so the walk
// never revisits them.
func (p *Policy) boundDrain(now sim.Time) {
	target := int64(now) / p.slotW
	if target < p.curSlot {
		target = p.curSlot
	}
	first := p.curSlot
	if target-first >= bwSlots {
		first = target - bwSlots + 1 // the wheel holds nothing older
	}
	for s := first; s <= target; s++ {
		t := p.buckets[s&bwMask]
		for t != nil {
			st := stateOf(t)
			next := st.boundNext
			if st.boundKey <= now {
				p.boundRemove(t)
				p.rollDue(t, st, now)
			}
			t = next
		}
	}
	p.curSlot = target
	for len(p.overflow) > 0 {
		t := p.overflow[0]
		st := stateOf(t)
		if st.boundKey > now {
			break
		}
		p.boundRemove(t)
		p.rollDue(t, st, now)
	}
}

// --- overflow min-heap on (boundKey, seq), for far-future boundaries ---

func (p *Policy) overflowLess(a, b *kernel.Thread) bool {
	sa, sb := stateOf(a), stateOf(b)
	if sa.boundKey != sb.boundKey {
		return sa.boundKey < sb.boundKey
	}
	return sa.seq < sb.seq
}

func (p *Policy) overflowRemove(t *kernel.Thread) {
	st := stateOf(t)
	i := st.boundIdx
	last := len(p.overflow) - 1
	moved := p.overflow[last]
	p.overflow[last] = nil
	p.overflow = p.overflow[:last]
	if i == last {
		return
	}
	p.overflow[i] = moved
	stateOf(moved).boundIdx = i
	if !p.overflowDown(i) {
		p.overflowUp(i)
	}
}

func (p *Policy) overflowUp(i int) {
	t := p.overflow[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !p.overflowLess(t, p.overflow[parent]) {
			break
		}
		p.overflow[i] = p.overflow[parent]
		stateOf(p.overflow[i]).boundIdx = i
		i = parent
	}
	p.overflow[i] = t
	stateOf(t).boundIdx = i
}

func (p *Policy) overflowDown(i int) bool {
	t := p.overflow[i]
	n := len(p.overflow)
	moved := false
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && p.overflowLess(p.overflow[r], p.overflow[kid]) {
			kid = r
		}
		if !p.overflowLess(p.overflow[kid], t) {
			break
		}
		p.overflow[i] = p.overflow[kid]
		stateOf(p.overflow[i]).boundIdx = i
		i = kid
		moved = true
	}
	p.overflow[i] = t
	stateOf(t).boundIdx = i
	return moved
}

// --- exhausted list: queued registered threads with no budget ---

// exhAdd inserts t into the exhausted list keeping it sorted by enqueue
// sequence, which is the order the legacy scan napped exhausted threads
// in (their runnable-slice order). The list is almost always tiny.
func (p *Policy) exhAdd(t *kernel.Thread) {
	st := stateOf(t)
	if st.exhIdx >= 0 {
		return
	}
	i := len(p.exhausted)
	p.exhausted = append(p.exhausted, nil)
	for i > 0 && stateOf(p.exhausted[i-1]).seq > st.seq {
		p.exhausted[i] = p.exhausted[i-1]
		stateOf(p.exhausted[i]).exhIdx = i
		i--
	}
	p.exhausted[i] = t
	st.exhIdx = i
}

func (p *Policy) exhRemove(t *kernel.Thread) {
	st := stateOf(t)
	i := st.exhIdx
	if i < 0 {
		return
	}
	st.exhIdx = -1
	copy(p.exhausted[i:], p.exhausted[i+1:])
	last := len(p.exhausted) - 1
	p.exhausted[last] = nil
	p.exhausted = p.exhausted[:last]
	for ; i < last; i++ {
		stateOf(p.exhausted[i]).exhIdx = i
	}
}
