// Intrusive, index-tracked priority structures for the dispatcher's hot
// path, one set per CPU (a shard). Each thread's positions are stored in
// its scheduling state (heapIdx/boundIdx/exhIdx), so membership tests and
// removals are O(1)+O(log n) with no allocation and no linear scans.
//
// Ordering must reproduce the legacy linear scan bit-for-bit: the scan
// picked the *first* best thread in runnable-slice order, and slice order
// was insertion order (append on Enqueue, move-to-back on rotate, with
// order-preserving removals). A monotonically increasing sequence number,
// assigned on Enqueue and reassigned on rotate, reconstructs exactly that
// order, so every comparison ties break FIFO-among-equals like the scan.
package rbs

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// shard is one CPU's dispatch state: the ready heap, the two-level
// period-boundary wheel with its overflow heap, and the exhausted list.
// Threads live in the shard of their assigned CPU (kernel.Thread.CPU());
// the kernel only reassigns a thread between shards while it is dequeued.
type shard struct {
	// ready is the indexed heap of dispatchable queued threads: registered
	// threads with budget and the unmanaged round-robin class below them.
	ready []*kernel.Thread
	// buckets/buckets2/overflow/curSlot form the period-boundary wheel of
	// queued registered threads by next period end; Pick drains the due
	// entries instead of refreshing every runnable thread. Each bucket is
	// the head of an intrusive doubly linked list. Level 1 spans one
	// kernel tick per slot; level 2 spans bwSlots ticks per slot, so any
	// boundary within bwSlots² ticks (≈65 s at a 1 ms tick) files in O(1);
	// only boundaries beyond that fall back to the overflow min-heap.
	buckets  [bwSlots]*kernel.Thread
	buckets2 [bwSlots]*kernel.Thread
	overflow []*kernel.Thread
	curSlot  int64
	// exhausted lists queued registered threads with spent budgets, in
	// enqueue order; Pick naps them until their next period begins.
	exhausted []*kernel.Thread
	// curMin is a conservative lower bound on the smallest boundKey filed
	// in the current cursor slot's L1 bucket: while curMin > now, no entry
	// there is due and boundDrain skips the bucket walk entirely. Inserts
	// into the current slot lower it; removals leave it stale-low, which
	// only costs a wasted walk, never a late roll. Without the bound every
	// dispatch re-walks the full current-slot bucket — with thousands of
	// short-period threads sharing one tick-wide slot, that scan dominated
	// the dispatch profile at 100k-session scale.
	curMin sim.Time
}

// timeMax is the +∞ sentinel for curMin when the current slot is empty.
const timeMax = sim.Time(1<<63 - 1)

// readyLess orders the ready heap: the thread that should dispatch first
// is the heap top. It is the strict-weak-order completion of better():
// registered threads with budget beat unmanaged threads; within the
// registered class RMS prefers shorter (clamped) periods and EDF earlier
// period ends; all remaining ties fall back to enqueue order.
func (p *Policy) readyLess(a, b *kernel.Thread) bool {
	sa, sb := stateOf(a), stateOf(b)
	ca := sa.registered && sa.budget > 0
	cb := sb.registered && sb.budget > 0
	if ca != cb {
		return ca
	}
	if ca {
		if p.Discipline == RMS {
			pa, pb := clampedPeriodMs(sa), clampedPeriodMs(sb)
			if pa != pb {
				return pa < pb
			}
		} else {
			ea, eb := p.periodEnd(sa), p.periodEnd(sb)
			if ea != eb {
				return ea < eb
			}
		}
	}
	return sa.seq < sb.seq
}

// clampedPeriodMs is the period in whole milliseconds with the same
// clamping goodness() applies, so RMS heap order matches goodness order
// exactly (including periods that collapse to the same clamped value).
func clampedPeriodMs(st *state) int64 {
	ms := int64(st.res.Period / sim.Millisecond)
	if ms < 1 {
		ms = 1
	}
	if ms > 1<<20 {
		ms = 1 << 20
	}
	return ms
}

// --- ready heap: queued threads eligible to run ---

func (p *Policy) readyPush(sh *shard, t *kernel.Thread) {
	st := stateOf(t)
	st.heapIdx = len(sh.ready)
	sh.ready = append(sh.ready, t)
	p.readyUp(sh, st.heapIdx)
}

func (p *Policy) readyRemove(sh *shard, t *kernel.Thread) {
	st := stateOf(t)
	i := st.heapIdx
	if i < 0 {
		return
	}
	st.heapIdx = -1
	last := len(sh.ready) - 1
	moved := sh.ready[last]
	sh.ready[last] = nil // clear the vacated tail slot
	sh.ready = sh.ready[:last]
	if i == last {
		return
	}
	sh.ready[i] = moved
	stateOf(moved).heapIdx = i
	p.readyFixAt(sh, i)
}

// readyFix restores the heap property after t's key changed in place.
func (p *Policy) readyFix(sh *shard, t *kernel.Thread) {
	if i := stateOf(t).heapIdx; i >= 0 {
		p.readyFixAt(sh, i)
	}
}

func (p *Policy) readyFixAt(sh *shard, i int) {
	if !p.readyDown(sh, i) {
		p.readyUp(sh, i)
	}
}

func (p *Policy) readyTop(sh *shard) *kernel.Thread {
	if len(sh.ready) == 0 {
		return nil
	}
	return sh.ready[0]
}

func (p *Policy) readyUp(sh *shard, i int) {
	t := sh.ready[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !p.readyLess(t, sh.ready[parent]) {
			break
		}
		sh.ready[i] = sh.ready[parent]
		stateOf(sh.ready[i]).heapIdx = i
		i = parent
	}
	sh.ready[i] = t
	stateOf(t).heapIdx = i
}

func (p *Policy) readyDown(sh *shard, i int) bool {
	t := sh.ready[i]
	n := len(sh.ready)
	moved := false
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && p.readyLess(sh.ready[r], sh.ready[kid]) {
			kid = r
		}
		if !p.readyLess(sh.ready[kid], t) {
			break
		}
		sh.ready[i] = sh.ready[kid]
		stateOf(sh.ready[i]).heapIdx = i
		i = kid
		moved = true
	}
	sh.ready[i] = t
	stateOf(t).heapIdx = i
	return moved
}

// --- period-boundary wheel: queued registered threads by period end ---
//
// Period refresh must run for every queued registered thread whose period
// ended, on every dispatch — but with thousands of oversubscribed threads,
// boundaries pass at Σ 1/periodᵢ per second, so an ordered heap pays an
// O(log n) sift per roll and dominates the profile. Period ends are timer
// deadlines, so they get the same treatment as the sim engine's event
// queue: a hierarchical timer wheel. Level 1 has bwSlots buckets of one
// kernel tick each; level 2 has bwSlots buckets of bwSlots ticks each, so
// boundaries up to bwSlots² ticks out (≈65 s at a 1 ms tick) insert and
// remove in O(1) — L2 entries cascade into L1 as the cursor crosses their
// span. Only boundaries beyond the L2 horizon go to the overflow min-heap
// on cached keys. Order within a bucket is irrelevant: every due entry is
// rolled before Pick reads the ready heap.

const (
	bwSlots = 256
	bwMask  = bwSlots - 1
	bwBits  = 8 // log2(bwSlots): shift from an L1 slot to its L2 span

	// boundNone is the boundSlot sentinel for "not filed"; values >= 0 are
	// bucket indices within the level named by boundLevel.
	boundNone = -1
)

// Wheel levels, stored in state.boundLevel.
const (
	levelNone = iota
	levelL1
	levelL2
	levelHeap
)

// boundInsert files t under its current period end in t's shard. t must be
// queued, registered, and not already filed. Wheel buckets are intrusive
// doubly linked lists threaded through the scheduling state, so filing and
// unfiling never allocate no matter how boundaries cluster.
func (p *Policy) boundInsert(sh *shard, t *kernel.Thread) {
	st := stateOf(t)
	key := p.periodEnd(st)
	st.boundKey = key
	slot := int64(key) / p.slotW
	if slot < sh.curSlot {
		slot = sh.curSlot // defensive; boundKey is re-checked when draining
	}
	if slot < sh.curSlot+bwSlots {
		p.bucketLink(sh, &sh.buckets, t, levelL1, int(slot&bwMask))
		if slot == sh.curSlot && key < sh.curMin {
			sh.curMin = key
		}
		return
	}
	if slot>>bwBits < (sh.curSlot>>bwBits)+bwSlots {
		p.bucketLink(sh, &sh.buckets2, t, levelL2, int((slot>>bwBits)&bwMask))
		return
	}
	st.boundLevel = levelHeap
	st.boundIdx = len(sh.overflow)
	sh.overflow = append(sh.overflow, t)
	p.overflowUp(sh, st.boundIdx)
}

// bucketLink pushes t onto the head of a wheel bucket's intrusive list.
func (p *Policy) bucketLink(sh *shard, buckets *[bwSlots]*kernel.Thread, t *kernel.Thread, level, b int) {
	st := stateOf(t)
	st.boundLevel = level
	st.boundSlot = b
	st.boundPrev = nil
	st.boundNext = buckets[b]
	if st.boundNext != nil {
		stateOf(st.boundNext).boundPrev = t
	}
	buckets[b] = t
}

func (p *Policy) boundRemove(sh *shard, t *kernel.Thread) {
	st := stateOf(t)
	switch st.boundLevel {
	case levelNone:
		return
	case levelHeap:
		p.overflowRemove(sh, t)
	case levelL1, levelL2:
		buckets := &sh.buckets
		if st.boundLevel == levelL2 {
			buckets = &sh.buckets2
		}
		if st.boundPrev != nil {
			stateOf(st.boundPrev).boundNext = st.boundNext
		} else {
			buckets[st.boundSlot] = st.boundNext
		}
		if st.boundNext != nil {
			stateOf(st.boundNext).boundPrev = st.boundPrev
		}
		st.boundPrev = nil
		st.boundNext = nil
	}
	st.boundLevel = levelNone
	st.boundSlot = boundNone
	st.boundIdx = -1
}

// boundDrain rolls every queued registered thread in sh whose period ended
// at or before now. The L1 cursor advances to now's slot; L2 buckets whose
// span the cursor crossed cascade — due entries roll, the rest refile
// (necessarily into L1, since their slot is within bwSlots of the new
// cursor). Entries refiled during the drain always carry a
// rolled-past-now key, so the walk never revisits them.
func (p *Policy) boundDrain(sh *shard, now sim.Time) {
	target := int64(now) / p.slotW
	if target < sh.curSlot {
		target = sh.curSlot
	}
	oldSlot := sh.curSlot
	sh.curSlot = target

	// Fast path: the cursor did not move and the current slot's lower bound
	// says nothing there is due yet. Skipping the L1 walk is safe because a
	// surviving entry always has slot == target (anything filed behind the
	// cursor is due by construction), so curMin bounds every candidate; the
	// L2 cascade range is empty when the cursor is still. The overflow heap
	// is still polled below — its top can come due mid-slot.
	if target > oldSlot || sh.curMin <= now {
		// L1: buckets strictly behind now's slot are entirely due; the
		// current slot is filtered by cached key.
		first := oldSlot
		if target-first >= bwSlots {
			first = target - bwSlots + 1 // the wheel holds nothing older
		}
		for s := first; s <= target; s++ {
			t := sh.buckets[s&bwMask]
			for t != nil {
				st := stateOf(t)
				next := st.boundNext
				if st.boundKey <= now {
					p.boundRemove(sh, t)
					p.rollDue(t, st, now)
				}
				t = next
			}
		}

		// L2: cascade every span the cursor entered or crossed. After a jump
		// beyond the whole level every bucket is due, so the clamp to bwSlots
		// visits each index exactly once.
		old2, tgt2 := oldSlot>>bwBits, target>>bwBits
		first2 := old2 + 1
		if tgt2-first2 >= bwSlots {
			first2 = tgt2 - bwSlots + 1
		}
		for s2 := first2; s2 <= tgt2; s2++ {
			b := int(s2 & bwMask)
			for sh.buckets2[b] != nil {
				t := sh.buckets2[b]
				st := stateOf(t)
				p.boundRemove(sh, t)
				if st.boundKey <= now {
					p.rollDue(t, st, now)
				} else {
					p.boundInsert(sh, t) // refiles against the advanced cursor
				}
			}
		}

		// Recompute the current slot's exact minimum over the survivors and
		// everything the walk refiled into it; later inserts keep it fresh
		// through boundInsert.
		min := timeMax
		for t := sh.buckets[target&bwMask]; t != nil; t = stateOf(t).boundNext {
			if k := stateOf(t).boundKey; k < min {
				min = k
			}
		}
		sh.curMin = min
	}

	for len(sh.overflow) > 0 {
		t := sh.overflow[0]
		st := stateOf(t)
		if st.boundKey > now {
			break
		}
		p.boundRemove(sh, t)
		p.rollDue(t, st, now)
	}
}

// --- overflow min-heap on (boundKey, seq), for far-future boundaries ---

func (p *Policy) overflowLess(a, b *kernel.Thread) bool {
	sa, sb := stateOf(a), stateOf(b)
	if sa.boundKey != sb.boundKey {
		return sa.boundKey < sb.boundKey
	}
	return sa.seq < sb.seq
}

func (p *Policy) overflowRemove(sh *shard, t *kernel.Thread) {
	st := stateOf(t)
	i := st.boundIdx
	last := len(sh.overflow) - 1
	moved := sh.overflow[last]
	sh.overflow[last] = nil
	sh.overflow = sh.overflow[:last]
	if i == last {
		return
	}
	sh.overflow[i] = moved
	stateOf(moved).boundIdx = i
	if !p.overflowDown(sh, i) {
		p.overflowUp(sh, i)
	}
}

func (p *Policy) overflowUp(sh *shard, i int) {
	t := sh.overflow[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !p.overflowLess(t, sh.overflow[parent]) {
			break
		}
		sh.overflow[i] = sh.overflow[parent]
		stateOf(sh.overflow[i]).boundIdx = i
		i = parent
	}
	sh.overflow[i] = t
	stateOf(t).boundIdx = i
}

func (p *Policy) overflowDown(sh *shard, i int) bool {
	t := sh.overflow[i]
	n := len(sh.overflow)
	moved := false
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && p.overflowLess(sh.overflow[r], sh.overflow[kid]) {
			kid = r
		}
		if !p.overflowLess(sh.overflow[kid], t) {
			break
		}
		sh.overflow[i] = sh.overflow[kid]
		stateOf(sh.overflow[i]).boundIdx = i
		i = kid
		moved = true
	}
	sh.overflow[i] = t
	stateOf(t).boundIdx = i
	return moved
}

// --- exhausted list: queued registered threads with no budget ---

// exhAdd inserts t into the exhausted list keeping it sorted by enqueue
// sequence, which is the order the legacy scan napped exhausted threads
// in (their runnable-slice order). The list is almost always tiny.
func (p *Policy) exhAdd(sh *shard, t *kernel.Thread) {
	st := stateOf(t)
	if st.exhIdx >= 0 {
		return
	}
	i := len(sh.exhausted)
	sh.exhausted = append(sh.exhausted, nil)
	for i > 0 && stateOf(sh.exhausted[i-1]).seq > st.seq {
		sh.exhausted[i] = sh.exhausted[i-1]
		stateOf(sh.exhausted[i]).exhIdx = i
		i--
	}
	sh.exhausted[i] = t
	st.exhIdx = i
}

func (p *Policy) exhRemove(sh *shard, t *kernel.Thread) {
	st := stateOf(t)
	i := st.exhIdx
	if i < 0 {
		return
	}
	st.exhIdx = -1
	copy(sh.exhausted[i:], sh.exhausted[i+1:])
	last := len(sh.exhausted) - 1
	sh.exhausted[last] = nil
	sh.exhausted = sh.exhausted[:last]
	for ; i < last; i++ {
		stateOf(sh.exhausted[i]).exhIdx = i
	}
}
