package rbs_test

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// FuzzBoundaryWheel interprets fuzz bytes as an op script against a
// Verify-mode dispatcher: every Pick replays the legacy linear scan and
// panics on divergence, and asserts that every due period was rolled — so
// a boundary entry filed in the wrong wheel level, cascaded late from L2,
// or lost during a level hop fails the fuzz run. Period bytes are scaled
// so all three levels (L1 buckets, the second 256-slot level, and the
// overflow heap) are hit.
//
//	go test -run '^$' -fuzz=FuzzBoundaryWheel ./internal/rbs
func FuzzBoundaryWheel(f *testing.F) {
	f.Add([]byte{0x01, 0x80, 0x40, 0xFF, 0x03, 0x22})
	f.Add([]byte{0xF0, 0x0F, 0xAA, 0x55, 0x00, 0x99, 0x7F, 0xC3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		eng := sim.NewEngine()
		p := rbs.New()
		if data[0]&1 == 1 {
			p.Discipline = rbs.EDF
		}
		p.Verify = true
		k := kernel.New(eng, kernel.DefaultConfig(), p)

		var threads []*kernel.Thread
		spawn := func() *kernel.Thread {
			th := k.Spawn(fmt.Sprintf("t%d", len(threads)), hog(300_000))
			threads = append(threads, th)
			return th
		}
		// A resident unmanaged thread keeps the machine busy so dispatch
		// points (and wheel drains) keep firing.
		spawn()
		k.Start()

		// Each op consumes two bytes: an opcode/target byte and an
		// argument byte.
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], int64(data[i+1])
			th := threads[int(op>>3)%len(threads)]
			switch op & 7 {
			case 0, 1: // short period: L1
				p.SetReservation(th, rbs.Reservation{
					Proportion: int(arg % 200),
					Period:     sim.Duration(1+arg%250) * sim.Millisecond,
				})
			case 2, 3: // medium period: second wheel level
				p.SetReservation(th, rbs.Reservation{
					Proportion: int(arg % 200),
					Period:     (300 + sim.Duration(arg)*257) * sim.Millisecond,
				})
			case 4: // far period: overflow heap
				p.SetReservation(th, rbs.Reservation{
					Proportion: int(arg % 200),
					Period:     66*sim.Second + sim.Duration(arg)*sim.Second,
				})
			case 5:
				p.Unregister(th)
			case 6:
				if len(threads) < 24 {
					spawn()
				}
			default: // advance time, crossing L1 wraps and L2 spans
				eng.RunFor(sim.Duration(1+arg*arg) * sim.Millisecond)
			}
		}
		eng.RunFor(500 * sim.Millisecond)
		k.Stop()
	})
}
