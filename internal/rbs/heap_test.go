package rbs_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// The dispatcher's indexed-heap core must reproduce the legacy linear
// scan's decisions bit-for-bit. Policy.Verify makes every Pick replay the
// scan — runnable threads in enqueue order, first-best wins — and panic on
// any divergence, so driving a randomized workload with Verify on is a
// differential heap-vs-scan property test over the full policy surface:
// enqueue, dequeue, rotation, budget exhaustion, period rolls,
// re-reservation, unregistration, and both disciplines.

// chaosProgram mixes compute bursts, sleeps, yields, and queue blocking so
// threads move through every scheduling state.
func chaosProgram(rng *sim.RNG, q *kernel.Queue) kernel.Program {
	phase := 0
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		switch rng.Intn(6) {
		case 0:
			return kernel.OpSleep{D: sim.Duration(1+rng.Intn(20)) * sim.Millisecond}
		case 1:
			return kernel.OpYield{}
		case 2:
			if phase%2 == 0 {
				return kernel.OpProduce{Queue: q, Bytes: int64(64 + rng.Intn(512))}
			}
			return kernel.OpCompute{Cycles: sim.Cycles(10_000 + rng.Intn(500_000))}
		case 3:
			if phase%2 == 0 {
				return kernel.OpConsume{Queue: q, Bytes: int64(64 + rng.Intn(512))}
			}
			return kernel.OpCompute{Cycles: sim.Cycles(10_000 + rng.Intn(500_000))}
		default:
			return kernel.OpCompute{Cycles: sim.Cycles(10_000 + rng.Intn(1_000_000))}
		}
	})
}

func runDifferential(t *testing.T, seed uint64, disc rbs.Discipline) {
	t.Helper()
	rng := sim.NewRNG(seed)
	eng := sim.NewEngine()
	p := rbs.New()
	p.Discipline = disc
	p.Verify = true // every Pick cross-checks heap vs linear scan
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	q := k.NewQueue("chaos", 2048)

	n := 4 + rng.Intn(12)
	threads := make([]*kernel.Thread, n)
	for i := range threads {
		threads[i] = k.Spawn(fmt.Sprintf("t%d", i), chaosProgram(rng, q))
		if rng.Intn(3) > 0 {
			res := rbs.Reservation{
				Proportion: 10 + rng.Intn(150),
				Period:     sim.Duration(2+rng.Intn(60)) * sim.Millisecond,
			}
			if err := p.SetReservation(threads[i], res); err != nil {
				t.Fatal(err)
			}
		}
	}
	k.Start()

	// Mutate reservations mid-run so period phases, budgets, and classes
	// churn while the machine runs.
	for step := 0; step < 30; step++ {
		eng.RunFor(sim.Duration(1+rng.Intn(40)) * sim.Millisecond)
		th := threads[rng.Intn(n)]
		switch rng.Intn(4) {
		case 0:
			p.Unregister(th)
		default:
			res := rbs.Reservation{
				Proportion: rng.Intn(200), // zero-proportion edge included
				Period:     sim.Duration(1+rng.Intn(80)) * sim.Millisecond,
			}
			if err := p.SetReservation(th, res); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.RunFor(200 * sim.Millisecond)
	k.Stop()
}

func TestDifferentialHeapVsScanRMS(t *testing.T) {
	f := func(seed uint64) bool {
		runDifferential(t, seed, rbs.RMS)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentialHeapVsScanEDF(t *testing.T) {
	f := func(seed uint64) bool {
		runDifferential(t, seed, rbs.EDF)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDequeueUnqueuedIsNoOp is the regression test for Dequeue called on a
// thread that is not in the runnable set (sleeping, blocked, or already
// dequeued): it must be a no-op and must not corrupt the structures.
func TestDequeueUnqueuedIsNoOp(t *testing.T) {
	eng := sim.NewEngine()
	p := rbs.New()
	p.Verify = true
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	a := k.Spawn("a", hog(1_000_000))
	b := k.Spawn("b", hog(1_000_000))
	if err := p.SetReservation(a, rbs.Reservation{Proportion: 100, Period: 10 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	now := k.Now()
	// Double-dequeue both threads; the second call must be a no-op.
	p.Dequeue(a, now)
	p.Dequeue(a, now)
	p.Dequeue(b, now)
	p.Dequeue(b, now)
	if got := p.Pick(0, now); got != nil {
		t.Fatalf("Pick after dequeueing everything = %v, want nil", got)
	}
	// Re-enqueue and make sure the machine still schedules both.
	p.Enqueue(a, now)
	p.Enqueue(b, now)
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	k.Stop()
	if a.CPUTime() == 0 || b.CPUTime() == 0 {
		t.Fatalf("threads starved after double dequeue: a=%v b=%v", a.CPUTime(), b.CPUTime())
	}
}

// TestTotalProportionDropsOnExit pins the incremental proportion total to
// the legacy scan semantics: exited threads leave the sum immediately.
func TestTotalProportionDropsOnExit(t *testing.T) {
	eng := sim.NewEngine()
	p := rbs.New()
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	done := 0
	exiting := k.Spawn("exiting", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		done++
		if done > 1 {
			return kernel.OpExit{}
		}
		return kernel.OpCompute{Cycles: 1000}
	}))
	stayer := k.Spawn("stayer", hog(1_000_000))
	p.SetReservation(exiting, rbs.Reservation{Proportion: 300, Period: 10 * sim.Millisecond})
	p.SetReservation(stayer, rbs.Reservation{Proportion: 200, Period: 10 * sim.Millisecond})
	if got := p.TotalProportion(); got != 500 {
		t.Fatalf("TotalProportion = %d, want 500", got)
	}
	k.Start()
	eng.RunFor(50 * sim.Millisecond)
	k.Stop()
	if exiting.State() != kernel.StateExited {
		t.Fatalf("exiting thread still %v", exiting.State())
	}
	if got := p.TotalProportion(); got != 200 {
		t.Fatalf("TotalProportion after exit = %d, want 200", got)
	}
	// Unregistering the exited thread must not double-subtract.
	p.Unregister(exiting)
	if got := p.TotalProportion(); got != 200 {
		t.Fatalf("TotalProportion after unregistering exited = %d, want 200", got)
	}
}

// TestZeroProportionReservationParks covers the Budget()==0 edge: the
// thread stays registered but can never hold budget, so the dispatcher
// naps it period after period without ever selecting it.
func TestZeroProportionReservationParks(t *testing.T) {
	eng := sim.NewEngine()
	p := rbs.New()
	p.Verify = true
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	parked := k.Spawn("parked", hog(1_000_000))
	running := k.Spawn("running", hog(1_000_000))
	p.SetReservation(parked, rbs.Reservation{Proportion: 0, Period: 10 * sim.Millisecond})
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	k.Stop()
	if parked.CPUTime() != 0 {
		t.Fatalf("zero-proportion thread ran %v", parked.CPUTime())
	}
	if running.CPUTime() == 0 {
		t.Fatal("unmanaged thread starved by a zero-proportion reservation")
	}
}

// runDifferentialLongPeriods is runDifferential with periods drawn across
// all three boundary-wheel levels: L1 (< 256 ticks), L2 (256..65536
// ticks), and the overflow heap (beyond 65536 ticks = 65.5 s at the 1 ms
// tick). Verify replays the legacy scan on every Pick, so any mis-filed or
// late-cascaded boundary entry panics as a heap/scan divergence or an
// unrolled-period assertion.
func runDifferentialLongPeriods(t *testing.T, seed uint64, disc rbs.Discipline) {
	t.Helper()
	rng := sim.NewRNG(seed)
	eng := sim.NewEngine()
	p := rbs.New()
	p.Discipline = disc
	p.Verify = true
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	q := k.NewQueue("chaos", 2048)

	// Period menu spanning every wheel level; weights favor L2, the new
	// second level.
	period := func() sim.Duration {
		switch rng.Intn(6) {
		case 0:
			return sim.Duration(2+rng.Intn(200)) * sim.Millisecond // L1
		case 5:
			return sim.Duration(66+rng.Intn(30)) * sim.Second // overflow heap
		default:
			return sim.Duration(300+rng.Intn(60_000)) * sim.Millisecond // L2
		}
	}
	n := 4 + rng.Intn(10)
	threads := make([]*kernel.Thread, n)
	for i := range threads {
		threads[i] = k.Spawn(fmt.Sprintf("t%d", i), chaosProgram(rng, q))
		if rng.Intn(4) > 0 {
			res := rbs.Reservation{Proportion: 5 + rng.Intn(150), Period: period()}
			if err := p.SetReservation(threads[i], res); err != nil {
				t.Fatal(err)
			}
		}
	}
	k.Start()
	// Long windows so L1 wraps many times and the cursor crosses several
	// L2 spans; mutate reservations so entries hop between levels.
	for step := 0; step < 12; step++ {
		eng.RunFor(sim.Duration(50+rng.Intn(900)) * sim.Millisecond)
		th := threads[rng.Intn(n)]
		switch rng.Intn(4) {
		case 0:
			p.Unregister(th)
		default:
			res := rbs.Reservation{Proportion: rng.Intn(200), Period: period()}
			if err := p.SetReservation(th, res); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.RunFor(2 * sim.Second)
	k.Stop()
}

func TestDifferentialTwoLevelWheelRMS(t *testing.T) {
	f := func(seed uint64) bool {
		runDifferentialLongPeriods(t, seed, rbs.RMS)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentialTwoLevelWheelEDF(t *testing.T) {
	f := func(seed uint64) bool {
		runDifferentialLongPeriods(t, seed, rbs.EDF)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestOverflowHeapBeyondL2 pins the far edge: a period beyond the L2
// horizon files in the overflow heap, still refreshes exactly at its
// boundary, and a renegotiation back to a short period pulls it into L1.
func TestOverflowHeapBeyondL2(t *testing.T) {
	eng := sim.NewEngine()
	p := rbs.New()
	p.Verify = true
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	far := k.Spawn("far", hog(200_000))
	near := k.Spawn("near", hog(200_000))
	if err := p.SetReservation(far, rbs.Reservation{Proportion: 100, Period: 70 * sim.Second}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetReservation(near, rbs.Reservation{Proportion: 100, Period: 10 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	k.Start()
	eng.RunFor(2 * sim.Second)
	if far.CPUTime() == 0 {
		t.Fatal("overflow-heap thread never ran")
	}
	// Renegotiate down into L1 mid-run; Verify keeps checking every Pick.
	if err := p.SetReservation(far, rbs.Reservation{Proportion: 50, Period: 20 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(2 * sim.Second)
	k.Stop()
	if got := p.TotalProportion(); got != 150 {
		t.Fatalf("TotalProportion = %d, want 150", got)
	}
}
