// Package rbs implements the paper's reservation-based scheduler (§3.1): a
// proportion/period dispatcher built on goodness-style selection, in the
// mold of the prototype's modified Linux 2.0.35 scheduling policy.
//
// Each registered thread holds a reservation: a proportion in
// parts-per-thousand of a period in milliseconds. Within each period the
// thread may consume proportion×period of CPU; when the budget is spent the
// thread "is put to sleep until its next period begins". Threads the policy
// knows nothing about (unregistered) run round-robin strictly below every
// registered thread, mirroring the prototype where only registered jobs use
// the RBS policy and everything else stays on the default scheduler.
//
// Dispatch-time enforcement is quantized to the timer tick exactly as the
// prototype's was ("the minimum allocation is 1 msec", §4.3). Setting
// PreciseAccounting emulates the paper's proposed improvement of
// microsecond-granularity accounting, and is benchmarked as an ablation.
//
// The dispatcher's hot path is O(log n) in the number of queued threads:
// the runnable set is an intrusive indexed heap ordered by the discipline
// (see heap.go), period refresh is driven by a period-boundary heap
// processed at dispatch points instead of a full refresh scan per Pick,
// and the registered-proportion total is maintained incrementally. The
// resulting schedule is bit-identical to the legacy linear scan's (the
// Verify hook cross-checks every Pick against the scan order).
package rbs

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// PPT is the denominator of proportions: parts per thousand, as in the
// paper ("a percentage, specified in parts-per-thousand").
const PPT = 1000

// Discipline selects how the dispatcher orders registered threads. The
// prototype used rate-monotonic goodness; the paper notes that "we could
// equally well have used other RBS mechanisms" — EDF is provided as the
// obvious alternative and as an ablation (EDF schedules any feasible task
// set up to full utilization, while RMS can miss beyond the Liu-Layland
// bound for non-harmonic periods).
type Discipline int

const (
	// RMS orders by period: shorter period, higher goodness (the paper's
	// prototype).
	RMS Discipline = iota
	// EDF orders by earliest current deadline (end of period).
	EDF
)

// Reservation is a proportion/period pair.
type Reservation struct {
	// Proportion is the share of the CPU in parts-per-thousand.
	Proportion int
	// Period is the repeating deadline over which the proportion is owed.
	Period sim.Duration
}

// Budget returns the CPU time the reservation grants per period.
func (r Reservation) Budget() sim.Duration {
	return sim.Duration(int64(r.Period) * int64(r.Proportion) / PPT)
}

func (r Reservation) String() string {
	return fmt.Sprintf("%d/1000 over %v", r.Proportion, r.Period)
}

// state is the per-thread scheduling state.
type state struct {
	registered bool
	res        Reservation

	periodStart sim.Time
	budget      sim.Duration // remaining allocation this period
	used        sim.Duration // consumed this period
	// perBudget caches res.Budget() so the per-period roll does no
	// multiply/divide; SetReservation keeps it in sync.
	perBudget sim.Duration
	queued    bool
	napping   bool // asleep on budget exhaustion (not a voluntary sleep)
	missed    uint64

	// seq reconstructs the legacy runnable-slice order: assigned when the
	// thread enters the queue and reassigned on round-robin rotation, so
	// FIFO-among-equals tie-breaking matches the linear scan exactly.
	seq uint64
	// heapIdx/exhIdx track the thread's positions in the ready heap and
	// the exhausted list (-1 = absent).
	heapIdx int
	exhIdx  int
	// boundLevel/boundSlot/boundIdx/boundKey track the thread's entry in
	// the two-level period-boundary wheel (L1/L2 bucket or overflow heap,
	// see heap.go); boundKey caches the period end the entry was filed
	// under, and boundPrev/boundNext link the intrusive bucket list.
	boundLevel int
	boundSlot  int
	boundIdx   int
	boundKey   sim.Time
	boundPrev  *kernel.Thread
	boundNext  *kernel.Thread
	// counted marks threads included in the incremental proportion total.
	counted bool

	// rrUsed is quantum usage for unregistered threads.
	rrUsed sim.Duration

	// totalGranted accumulates the budgets granted across periods, for the
	// proportion-delivery property tests.
	totalGranted sim.Duration

	// freeNext links the object into the policy's free list while pooled
	// (recycle mode only).
	freeNext *state
}

// Policy is the reservation-based dispatcher.
type Policy struct {
	k *kernel.Kernel

	// PreciseAccounting ends run segments exactly at budget exhaustion
	// instead of at the next dispatch tick (§4.3's proposed improvement).
	PreciseAccounting bool
	// Discipline orders registered threads: RMS (default) or EDF.
	Discipline Discipline
	// UnmanagedQuantum is the round-robin quantum for unregistered threads.
	UnmanagedQuantum sim.Duration
	// Verify cross-checks every Pick against the legacy O(n) linear scan
	// and panics on divergence. Testing hook; leave false in production.
	Verify bool

	// shards holds the per-CPU dispatch structures (ready heap, boundary
	// wheel, exhausted list), indexed by kernel CPU id. Admission state —
	// the registered-proportion total, sequence numbers, missed-deadline
	// counts — stays global: the paper's overload signal sums over the
	// whole machine.
	shards []shard
	slotW  int64

	seqGen    uint64
	totalProp int
	// needResched flags CPUs whose current thread was beaten by an
	// enqueue; the kernel's per-CPU tick hook consumes them.
	needResched []bool
	missedTotal uint64

	// stSlab is the chunk backing new per-thread states; freeState heads
	// the free list of recycled ones (recycle mode only).
	stSlab    []state
	freeState *state
	// recycle pools a thread's state at RemoveThread (see SetRecycle).
	recycle bool
}

// shardOf returns the shard of t's assigned CPU.
func (p *Policy) shardOf(t *kernel.Thread) *shard { return &p.shards[t.CPU()] }

// New returns a reservation-based policy with the prototype's defaults.
func New() *Policy {
	return &Policy{UnmanagedQuantum: 10 * sim.Millisecond}
}

// Name implements kernel.Policy.
func (p *Policy) Name() string { return "rbs" }

// Attach implements kernel.Policy. The boundary wheel's slot width is the
// kernel tick: dispatch points arrive at least once per tick, so the wheel
// cursor advances at most one slot per dispatch.
func (p *Policy) Attach(k *kernel.Kernel) {
	p.k = k
	p.slotW = int64(k.Config().TickInterval)
	p.shards = make([]shard, k.NumCPUs())
	p.needResched = make([]bool, k.NumCPUs())
	for i := range p.shards {
		p.shards[i].curSlot = int64(k.Now()) / p.slotW
	}
}

// Kernel returns the kernel this policy is attached to.
func (p *Policy) Kernel() *kernel.Kernel { return p.k }

func stateOf(t *kernel.Thread) *state { return t.Sched.(*state) }

// SetRecycle turns per-thread state recycling on or off. When on, a
// thread's state object returns to a free pool at RemoveThread (thread
// exit) and its Sched slot is nilled; the read-only accessors then report
// the unregistered zero for exited threads instead of their final values.
// Callers that inspect exited threads' scheduling state after a run — the
// proportion-delivery property tests do — must leave it off (the default).
func (p *Policy) SetRecycle(on bool) { p.recycle = on }

// stateSlabSize is how many per-thread state objects one slab chunk holds.
const stateSlabSize = 256

// allocState returns a fresh unregistered state: from the free pool when
// recycling has banked one, otherwise carved from the current slab chunk.
func (p *Policy) allocState() *state {
	if st := p.freeState; st != nil {
		p.freeState = st.freeNext
		*st = state{heapIdx: -1, exhIdx: -1, boundLevel: levelNone, boundSlot: boundNone, boundIdx: -1}
		return st
	}
	if len(p.stSlab) == 0 {
		p.stSlab = make([]state, stateSlabSize)
	}
	st := &p.stSlab[0]
	p.stSlab = p.stSlab[1:]
	st.heapIdx, st.exhIdx = -1, -1
	st.boundLevel, st.boundSlot, st.boundIdx = levelNone, boundNone, -1
	return st
}

// AddThread implements kernel.Policy: new threads start unregistered.
func (p *Policy) AddThread(t *kernel.Thread, now sim.Time) {
	t.Sched = p.allocState()
}

// RemoveThread implements kernel.Policy. The thread leaves the proportion
// total here rather than at the controller's next reap, matching the old
// full-scan TotalProportion which skipped exited threads on every call.
// In recycle mode the state object is pooled here: the kernel guarantees
// the thread is already out of every dispatch structure (Dequeue runs
// first on the exit path), so nothing in the shard still references it.
func (p *Policy) RemoveThread(t *kernel.Thread, now sim.Time) {
	st, ok := t.Sched.(*state)
	if !ok {
		return
	}
	if st.counted {
		p.totalProp -= st.res.Proportion
		st.counted = false
	}
	if p.recycle {
		t.Sched = nil
		st.freeNext = p.freeState
		p.freeState = st
	}
}

// SetReservation registers t (if needed) and installs a reservation. A
// proportion increase takes effect immediately within the current period; a
// decrease caps the remaining budget. Changing the period restarts the
// period phase at the current instant.
func (p *Policy) SetReservation(t *kernel.Thread, res Reservation) error {
	if res.Proportion < 0 || res.Proportion > PPT {
		return fmt.Errorf("rbs: proportion %d out of [0,%d]", res.Proportion, PPT)
	}
	if res.Period <= 0 {
		return fmt.Errorf("rbs: non-positive period %v", res.Period)
	}
	now := p.k.Now()
	st, ok := t.Sched.(*state)
	if !ok {
		// Recycled (exited) thread: installing a reservation on a thread
		// with no scheduling state is the same silent no-op it always was
		// on an exited, un-recycled one — nothing is queued, nothing wakes.
		return nil
	}
	if !st.registered || st.res.Period != res.Period {
		if st.counted {
			p.totalProp += res.Proportion - st.res.Proportion
		} else if t.State() != kernel.StateExited {
			p.totalProp += res.Proportion
			st.counted = true
		}
		st.registered = true
		st.res = res
		st.perBudget = res.Budget()
		st.periodStart = now
		st.budget = st.perBudget
		st.used = 0
		st.totalGranted += st.budget
	} else {
		if st.counted {
			p.totalProp += res.Proportion - st.res.Proportion
		}
		st.res = res
		st.perBudget = res.Budget()
		p.refresh(t, st, now)
		// Re-derive the remaining budget from the new proportion so total
		// usage this period tops out at the new allocation.
		b := res.Budget() - st.used
		if b < 0 {
			b = 0
		}
		st.budget = b
	}
	p.reconcile(t, st)
	if st.napping && st.budget > 0 {
		// The nap was based on the old, smaller allocation.
		st.napping = false
		p.k.Wake(t)
	}
	return nil
}

// ReservationOf returns t's reservation and whether it is registered. A
// recycled (exited) thread reads as unregistered.
func (p *Policy) ReservationOf(t *kernel.Thread) (Reservation, bool) {
	st, ok := t.Sched.(*state)
	if !ok {
		return Reservation{}, false
	}
	return st.res, st.registered
}

// Unregister returns t to the unmanaged round-robin class. Unregistering a
// recycled (exited) thread is a no-op.
func (p *Policy) Unregister(t *kernel.Thread) {
	st, ok := t.Sched.(*state)
	if !ok {
		return
	}
	if st.counted {
		p.totalProp -= st.res.Proportion
		st.counted = false
	}
	st.registered = false
	st.res = Reservation{}
	p.reconcile(t, st)
}

// UsedThisPeriod returns the CPU t consumed in its current period, zero
// for a recycled (exited) thread.
func (p *Policy) UsedThisPeriod(t *kernel.Thread) sim.Duration {
	if st, ok := t.Sched.(*state); ok {
		return st.used
	}
	return 0
}

// TotalGranted returns the cumulative budget ever granted to t, zero for a
// recycled (exited) thread.
func (p *Policy) TotalGranted(t *kernel.Thread) sim.Duration {
	if st, ok := t.Sched.(*state); ok {
		return st.totalGranted
	}
	return 0
}

// MissedDeadlines returns the count of periods that ended with a runnable
// thread still holding unused budget — the dispatcher could not deliver the
// allocation. The prototype notifies the controller of misses so it can
// grow the spare capacity; the controller polls this counter.
func (p *Policy) MissedDeadlines() uint64 { return p.missedTotal }

// TotalProportion sums the proportions of all registered live threads, the
// paper's overload signal ("one can easily detect overload by summing the
// proportions"). The sum is maintained incrementally by SetReservation,
// Unregister, and thread exit, so admission-control checks are O(1)
// instead of a scan over every thread ever created.
func (p *Policy) TotalProportion() int { return p.totalProp }

// refresh rolls t's period forward to contain now, refilling the budget and
// recording deadline misses. The roll is closed-form over the k periods
// that ended (the legacy loop rolled one at a time): the first ended
// period misses iff the thread was queued with budget left, and each
// further one iff it was queued with a non-empty refill. Callers with t in
// the queue must re-fix the priority structures afterwards (roll does
// both).
func (p *Policy) refresh(t *kernel.Thread, st *state, now sim.Time) {
	if !st.registered {
		return
	}
	elapsed := now.Sub(st.periodStart)
	if elapsed < st.res.Period {
		return
	}
	k := int64(elapsed / st.res.Period)
	if st.queued {
		var miss uint64
		if st.budget > 0 {
			miss++
		}
		if k > 1 && st.perBudget > 0 {
			miss += uint64(k - 1)
		}
		st.missed += miss
		p.missedTotal += miss
	}
	st.periodStart = st.periodStart.Add(sim.Duration(k * int64(st.res.Period)))
	st.budget = st.perBudget
	st.used = 0
	st.totalGranted += sim.Duration(k * int64(st.perBudget))
}

// roll is refresh plus structure maintenance: after the period rolls, the
// boundary entry moves to its new slot, an exhausted thread whose budget
// refilled rejoins the ready heap, and an EDF deadline change reorders the
// ready heap.
func (p *Policy) roll(t *kernel.Thread, st *state, now sim.Time) {
	if !st.registered || now.Sub(st.periodStart) < st.res.Period {
		return
	}
	if !st.queued {
		p.refresh(t, st, now)
		return
	}
	p.boundRemove(p.shardOf(t), t)
	p.rollDue(t, st, now)
}

// rollDue rolls a queued registered thread whose boundary entry has been
// taken out of the wheel, and refiles it.
func (p *Policy) rollDue(t *kernel.Thread, st *state, now sim.Time) {
	sh := p.shardOf(t)
	wasExhausted := st.exhIdx >= 0
	p.refresh(t, st, now)
	p.boundInsert(sh, t)
	if wasExhausted && st.budget > 0 {
		p.exhRemove(sh, t)
		p.readyPush(sh, t)
	} else if p.Discipline == EDF {
		p.readyFix(sh, t)
	}
}

// reconcile re-derives t's structure memberships and keys from its state,
// after SetReservation/Unregister mutate the reservation arbitrarily.
func (p *Policy) reconcile(t *kernel.Thread, st *state) {
	if !st.queued {
		return
	}
	sh := p.shardOf(t)
	p.boundRemove(sh, t)
	if st.registered {
		p.boundInsert(sh, t)
	}
	if !st.registered || st.budget > 0 {
		p.exhRemove(sh, t)
		if st.heapIdx < 0 {
			p.readyPush(sh, t)
		} else {
			p.readyFix(sh, t)
		}
	} else {
		p.readyRemove(sh, t)
		p.exhAdd(sh, t)
	}
}

func (p *Policy) periodEnd(st *state) sim.Time {
	return st.periodStart.Add(st.res.Period)
}

// goodness ranks runnable threads: registered threads with budget beat
// everything, and "jobs with shorter periods have higher goodness values"
// (rate-monotonic order). Unregistered threads share a low flat score.
func (p *Policy) goodness(t *kernel.Thread) int64 {
	st := stateOf(t)
	if st.registered {
		if st.budget <= 0 {
			return 0
		}
		g := int64(1) << 40
		return g - clampedPeriodMs(st)
	}
	return 1000
}

// Enqueue implements kernel.Policy: the thread joins its assigned CPU's
// shard.
func (p *Policy) Enqueue(t *kernel.Thread, now sim.Time) {
	st := stateOf(t)
	st.napping = false
	p.refresh(t, st, now)
	if st.queued {
		return
	}
	sh := p.shardOf(t)
	st.queued = true
	st.seq = p.seqGen
	p.seqGen++
	if st.registered {
		p.boundInsert(sh, t)
		if st.budget > 0 {
			p.readyPush(sh, t)
		} else {
			p.exhAdd(sh, t)
		}
	} else {
		p.readyPush(sh, t)
	}
	if cur := p.k.CurrentOn(t.CPU()); cur != nil && p.better(t, cur) {
		p.needResched[t.CPU()] = true
	}
}

// Dequeue implements kernel.Policy.
func (p *Policy) Dequeue(t *kernel.Thread, now sim.Time) {
	st := stateOf(t)
	if !st.queued {
		return
	}
	sh := p.shardOf(t)
	st.queued = false
	p.readyRemove(sh, t)
	p.boundRemove(sh, t)
	p.exhRemove(sh, t)
}

// Steal implements kernel.Policy: hand over a migratable runnable thread
// from the given CPU's ready heap, dequeued. The heap array is scanned in
// index order, so the heap top — the thread that would run there next —
// is preferred when movable.
func (p *Policy) Steal(from int, now sim.Time) *kernel.Thread {
	sh := &p.shards[from]
	if t := kernel.StealCandidate(sh.ready, p.k.CurrentOn(from)); t != nil {
		p.Dequeue(t, now)
		return t
	}
	return nil
}

// better reports whether a should be dispatched ahead of b under the
// configured discipline. Registered threads with budget always beat
// unmanaged ones.
func (p *Policy) better(a, b *kernel.Thread) bool {
	if p.Discipline == RMS {
		return p.goodness(a) > p.goodness(b)
	}
	sa, sb := stateOf(a), stateOf(b)
	ra := sa.registered && sa.budget > 0
	rb := sb.registered && sb.budget > 0
	switch {
	case ra && !rb:
		return true
	case !ra && rb:
		return false
	case !ra && !rb:
		return false // FIFO among unmanaged: keep the earlier one
	default:
		return p.periodEnd(sa).Before(p.periodEnd(sb))
	}
}

// Pick implements kernel.Policy: the best thread under the discipline
// wins. Registered threads that are runnable with an exhausted budget are
// napped until their next period as a side effect.
//
// Instead of refreshing every runnable thread per dispatch, Pick drains
// the due entries of the period-boundary wheel (refresh runs once per
// period per thread, at O(1) amortized structure cost), naps the
// exhausted list, and takes the ready heap top: O(log n) where the legacy
// scan was O(n) on every dispatch.
func (p *Policy) Pick(cpu int, now sim.Time) *kernel.Thread {
	sh := &p.shards[cpu]
	p.boundDrain(sh, now)
	if n := len(sh.exhausted); n > 0 {
		// Detach each entry before napping it so SleepThreadUntil's Dequeue
		// skips the list and the whole drain is O(n), in enqueue order (nap
		// order fixes timer order at equal deadlines, hence wake order).
		for i := 0; i < n; i++ {
			t := sh.exhausted[i]
			sh.exhausted[i] = nil
			st := stateOf(t)
			st.exhIdx = -1
			st.napping = true
			p.k.SleepThreadUntil(t, p.periodEnd(st))
		}
		sh.exhausted = sh.exhausted[:0]
	}
	if p.Verify {
		p.verifyPick(sh, now)
	}
	return p.readyTop(sh)
}

// verifyPick replays the legacy linear scan — runnable threads in slice
// (enqueue) order, first-best wins via better() — and panics if the heap
// disagrees. It also asserts the invariants the heap relies on: every due
// period has been rolled and no exhausted thread lingers in the ready set.
func (p *Policy) verifyPick(sh *shard, now sim.Time) {
	scan := make([]*kernel.Thread, len(sh.ready))
	copy(scan, sh.ready)
	sort.Slice(scan, func(i, j int) bool {
		return stateOf(scan[i]).seq < stateOf(scan[j]).seq
	})
	var best *kernel.Thread
	for _, t := range scan {
		st := stateOf(t)
		if st.registered && now.Sub(st.periodStart) >= st.res.Period {
			panic(fmt.Sprintf("rbs: verify: %v has an unrolled period at Pick", t))
		}
		if st.registered && st.budget <= 0 {
			panic(fmt.Sprintf("rbs: verify: exhausted %v in ready heap", t))
		}
		if best == nil || p.better(t, best) {
			best = t
		}
	}
	if top := p.readyTop(sh); top != best {
		panic(fmt.Sprintf("rbs: verify: heap picked %v, scan picked %v", top, best))
	}
}

// TimeSlice implements kernel.Policy. For registered threads the slice is
// the remaining budget — rounded up to whole dispatch ticks unless
// PreciseAccounting is set, reproducing the prototype's quantization.
func (p *Policy) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	st := stateOf(t)
	if !st.registered {
		rem := p.UnmanagedQuantum - st.rrUsed
		if rem < 0 {
			rem = 0
		}
		return rem
	}
	p.roll(t, st, now)
	if st.budget <= 0 {
		return 0
	}
	if p.PreciseAccounting {
		return st.budget
	}
	tick := p.k.Config().TickInterval
	n := (int64(st.budget) + int64(tick) - 1) / int64(tick)
	return sim.Duration(n) * tick
}

// Charge implements kernel.Policy: decrement the budget and nap the thread
// until its next period once the allocation is spent.
func (p *Policy) Charge(t *kernel.Thread, cpu int, ran sim.Duration, now sim.Time) bool {
	st := stateOf(t)
	if !st.registered {
		st.rrUsed += ran
		if st.rrUsed >= p.UnmanagedQuantum {
			st.rrUsed = 0
			p.rotate(t)
			return true
		}
		return false
	}
	p.roll(t, st, now)
	st.used += ran
	st.budget -= ran
	if st.budget <= 0 {
		st.budget = 0
		if t.Runnable() {
			st.napping = true
			p.k.SleepThreadUntil(t, p.periodEnd(st))
		} else if st.queued {
			// Stays queued with a spent budget (the legacy scan kept such
			// threads in the runnable slice); Pick naps it next dispatch.
			sh := p.shardOf(t)
			p.readyRemove(sh, t)
			p.exhAdd(sh, t)
		}
		return true
	}
	return false
}

// rotate moves an unmanaged thread behind every other unmanaged thread on
// its CPU, the round-robin step at quantum expiry. Reassigning the enqueue
// sequence is exactly the legacy move-to-back of the runnable slice.
func (p *Policy) rotate(t *kernel.Thread) {
	st := stateOf(t)
	if !st.queued {
		return
	}
	st.seq = p.seqGen
	p.seqGen++
	p.readyFix(p.shardOf(t), t)
}

// Tick implements kernel.Policy.
func (p *Policy) Tick(cpu int, now sim.Time) bool {
	r := p.needResched[cpu]
	p.needResched[cpu] = false
	return r
}

// WakePreempts implements kernel.Policy: the prototype preempts "if the
// woken thread is under our control and has higher goodness".
func (p *Policy) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return p.better(woken, current)
}
