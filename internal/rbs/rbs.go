// Package rbs implements the paper's reservation-based scheduler (§3.1): a
// proportion/period dispatcher built on goodness-style selection, in the
// mold of the prototype's modified Linux 2.0.35 scheduling policy.
//
// Each registered thread holds a reservation: a proportion in
// parts-per-thousand of a period in milliseconds. Within each period the
// thread may consume proportion×period of CPU; when the budget is spent the
// thread "is put to sleep until its next period begins". Threads the policy
// knows nothing about (unregistered) run round-robin strictly below every
// registered thread, mirroring the prototype where only registered jobs use
// the RBS policy and everything else stays on the default scheduler.
//
// Dispatch-time enforcement is quantized to the timer tick exactly as the
// prototype's was ("the minimum allocation is 1 msec", §4.3). Setting
// PreciseAccounting emulates the paper's proposed improvement of
// microsecond-granularity accounting, and is benchmarked as an ablation.
package rbs

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// PPT is the denominator of proportions: parts per thousand, as in the
// paper ("a percentage, specified in parts-per-thousand").
const PPT = 1000

// Discipline selects how the dispatcher orders registered threads. The
// prototype used rate-monotonic goodness; the paper notes that "we could
// equally well have used other RBS mechanisms" — EDF is provided as the
// obvious alternative and as an ablation (EDF schedules any feasible task
// set up to full utilization, while RMS can miss beyond the Liu-Layland
// bound for non-harmonic periods).
type Discipline int

const (
	// RMS orders by period: shorter period, higher goodness (the paper's
	// prototype).
	RMS Discipline = iota
	// EDF orders by earliest current deadline (end of period).
	EDF
)

// Reservation is a proportion/period pair.
type Reservation struct {
	// Proportion is the share of the CPU in parts-per-thousand.
	Proportion int
	// Period is the repeating deadline over which the proportion is owed.
	Period sim.Duration
}

// Budget returns the CPU time the reservation grants per period.
func (r Reservation) Budget() sim.Duration {
	return sim.Duration(int64(r.Period) * int64(r.Proportion) / PPT)
}

func (r Reservation) String() string {
	return fmt.Sprintf("%d/1000 over %v", r.Proportion, r.Period)
}

// state is the per-thread scheduling state.
type state struct {
	registered bool
	res        Reservation

	periodStart sim.Time
	budget      sim.Duration // remaining allocation this period
	used        sim.Duration // consumed this period
	queued      bool
	napping     bool // asleep on budget exhaustion (not a voluntary sleep)
	missed      uint64

	// rrUsed is quantum usage for unregistered threads.
	rrUsed sim.Duration

	// totalGranted accumulates the budgets granted across periods, for the
	// proportion-delivery property tests.
	totalGranted sim.Duration
}

// Policy is the reservation-based dispatcher.
type Policy struct {
	k *kernel.Kernel

	// PreciseAccounting ends run segments exactly at budget exhaustion
	// instead of at the next dispatch tick (§4.3's proposed improvement).
	PreciseAccounting bool
	// Discipline orders registered threads: RMS (default) or EDF.
	Discipline Discipline
	// UnmanagedQuantum is the round-robin quantum for unregistered threads.
	UnmanagedQuantum sim.Duration

	runnable    []*kernel.Thread
	needResched bool
	missedTotal uint64

	// exhausted is Pick's scratch buffer, reused across dispatches.
	exhausted []*kernel.Thread
}

// New returns a reservation-based policy with the prototype's defaults.
func New() *Policy {
	return &Policy{UnmanagedQuantum: 10 * sim.Millisecond}
}

// Name implements kernel.Policy.
func (p *Policy) Name() string { return "rbs" }

// Attach implements kernel.Policy.
func (p *Policy) Attach(k *kernel.Kernel) { p.k = k }

// Kernel returns the kernel this policy is attached to.
func (p *Policy) Kernel() *kernel.Kernel { return p.k }

func stateOf(t *kernel.Thread) *state { return t.Sched.(*state) }

// AddThread implements kernel.Policy: new threads start unregistered.
func (p *Policy) AddThread(t *kernel.Thread, now sim.Time) {
	t.Sched = &state{}
}

// RemoveThread implements kernel.Policy.
func (p *Policy) RemoveThread(t *kernel.Thread, now sim.Time) {}

// SetReservation registers t (if needed) and installs a reservation. A
// proportion increase takes effect immediately within the current period; a
// decrease caps the remaining budget. Changing the period restarts the
// period phase at the current instant.
func (p *Policy) SetReservation(t *kernel.Thread, res Reservation) error {
	if res.Proportion < 0 || res.Proportion > PPT {
		return fmt.Errorf("rbs: proportion %d out of [0,%d]", res.Proportion, PPT)
	}
	if res.Period <= 0 {
		return fmt.Errorf("rbs: non-positive period %v", res.Period)
	}
	now := p.k.Now()
	st := stateOf(t)
	if !st.registered || st.res.Period != res.Period {
		st.registered = true
		st.res = res
		st.periodStart = now
		st.budget = res.Budget()
		st.used = 0
		st.totalGranted += st.budget
	} else {
		st.res = res
		p.refresh(t, st, now)
		// Re-derive the remaining budget from the new proportion so total
		// usage this period tops out at the new allocation.
		b := res.Budget() - st.used
		if b < 0 {
			b = 0
		}
		st.budget = b
	}
	if st.napping && st.budget > 0 {
		// The nap was based on the old, smaller allocation.
		st.napping = false
		p.k.Wake(t)
	}
	return nil
}

// ReservationOf returns t's reservation and whether it is registered.
func (p *Policy) ReservationOf(t *kernel.Thread) (Reservation, bool) {
	st := stateOf(t)
	return st.res, st.registered
}

// Unregister returns t to the unmanaged round-robin class.
func (p *Policy) Unregister(t *kernel.Thread) {
	st := stateOf(t)
	st.registered = false
	st.res = Reservation{}
}

// UsedThisPeriod returns the CPU t consumed in its current period.
func (p *Policy) UsedThisPeriod(t *kernel.Thread) sim.Duration {
	return stateOf(t).used
}

// TotalGranted returns the cumulative budget ever granted to t.
func (p *Policy) TotalGranted(t *kernel.Thread) sim.Duration {
	return stateOf(t).totalGranted
}

// MissedDeadlines returns the count of periods that ended with a runnable
// thread still holding unused budget — the dispatcher could not deliver the
// allocation. The prototype notifies the controller of misses so it can
// grow the spare capacity; the controller polls this counter.
func (p *Policy) MissedDeadlines() uint64 { return p.missedTotal }

// TotalProportion sums the proportions of all registered live threads, the
// paper's overload signal ("one can easily detect overload by summing the
// proportions").
func (p *Policy) TotalProportion() int {
	sum := 0
	for _, t := range p.k.Threads() {
		if t.State() == kernel.StateExited {
			continue
		}
		if st, ok := t.Sched.(*state); ok && st.registered {
			sum += st.res.Proportion
		}
	}
	return sum
}

// refresh rolls t's period forward to contain now, refilling the budget and
// recording deadline misses.
func (p *Policy) refresh(t *kernel.Thread, st *state, now sim.Time) {
	if !st.registered {
		return
	}
	for now.Sub(st.periodStart) >= st.res.Period {
		if st.queued && st.budget > 0 {
			st.missed++
			p.missedTotal++
		}
		st.periodStart = st.periodStart.Add(st.res.Period)
		st.budget = st.res.Budget()
		st.used = 0
		st.totalGranted += st.budget
	}
}

func (p *Policy) periodEnd(st *state) sim.Time {
	return st.periodStart.Add(st.res.Period)
}

// goodness ranks runnable threads: registered threads with budget beat
// everything, and "jobs with shorter periods have higher goodness values"
// (rate-monotonic order). Unregistered threads share a low flat score.
func (p *Policy) goodness(t *kernel.Thread) int64 {
	st := stateOf(t)
	if st.registered {
		if st.budget <= 0 {
			return 0
		}
		g := int64(1) << 40
		periodMs := int64(st.res.Period / sim.Millisecond)
		if periodMs < 1 {
			periodMs = 1
		}
		if periodMs > 1<<20 {
			periodMs = 1 << 20
		}
		return g - periodMs
	}
	return 1000
}

// Enqueue implements kernel.Policy.
func (p *Policy) Enqueue(t *kernel.Thread, now sim.Time) {
	st := stateOf(t)
	st.napping = false
	p.refresh(t, st, now)
	if st.queued {
		return
	}
	st.queued = true
	p.runnable = append(p.runnable, t)
	if cur := p.k.Current(); cur != nil && p.better(t, cur) {
		p.needResched = true
	}
}

// Dequeue implements kernel.Policy.
func (p *Policy) Dequeue(t *kernel.Thread, now sim.Time) {
	st := stateOf(t)
	if !st.queued {
		return
	}
	st.queued = false
	for i, r := range p.runnable {
		if r == t {
			copy(p.runnable[i:], p.runnable[i+1:])
			p.runnable = p.runnable[:len(p.runnable)-1]
			return
		}
	}
}

// better reports whether a should be dispatched ahead of b under the
// configured discipline. Registered threads with budget always beat
// unmanaged ones.
func (p *Policy) better(a, b *kernel.Thread) bool {
	if p.Discipline == RMS {
		return p.goodness(a) > p.goodness(b)
	}
	sa, sb := stateOf(a), stateOf(b)
	ra := sa.registered && sa.budget > 0
	rb := sb.registered && sb.budget > 0
	switch {
	case ra && !rb:
		return true
	case !ra && rb:
		return false
	case !ra && !rb:
		return false // FIFO among unmanaged: keep the earlier one
	default:
		return p.periodEnd(sa).Before(p.periodEnd(sb))
	}
}

// Pick implements kernel.Policy: the best thread under the discipline
// wins. Registered threads that are runnable with an exhausted budget are
// napped until their next period as a side effect.
func (p *Policy) Pick(now sim.Time) *kernel.Thread {
	exhausted := p.exhausted[:0]
	var best *kernel.Thread
	for _, t := range p.runnable {
		st := stateOf(t)
		p.refresh(t, st, now)
		if st.registered && st.budget <= 0 {
			exhausted = append(exhausted, t)
			continue
		}
		if best == nil || p.better(t, best) {
			best = t
		}
	}
	for i, t := range exhausted {
		st := stateOf(t)
		st.napping = true
		p.k.SleepThreadUntil(t, p.periodEnd(st))
		exhausted[i] = nil
	}
	p.exhausted = exhausted[:0]
	return best
}

// TimeSlice implements kernel.Policy. For registered threads the slice is
// the remaining budget — rounded up to whole dispatch ticks unless
// PreciseAccounting is set, reproducing the prototype's quantization.
func (p *Policy) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	st := stateOf(t)
	if !st.registered {
		rem := p.UnmanagedQuantum - st.rrUsed
		if rem < 0 {
			rem = 0
		}
		return rem
	}
	p.refresh(t, st, now)
	if st.budget <= 0 {
		return 0
	}
	if p.PreciseAccounting {
		return st.budget
	}
	tick := p.k.Config().TickInterval
	n := (int64(st.budget) + int64(tick) - 1) / int64(tick)
	return sim.Duration(n) * tick
}

// Charge implements kernel.Policy: decrement the budget and nap the thread
// until its next period once the allocation is spent.
func (p *Policy) Charge(t *kernel.Thread, ran sim.Duration, now sim.Time) bool {
	st := stateOf(t)
	if !st.registered {
		st.rrUsed += ran
		if st.rrUsed >= p.UnmanagedQuantum {
			st.rrUsed = 0
			p.rotate(t)
			return true
		}
		return false
	}
	p.refresh(t, st, now)
	st.used += ran
	st.budget -= ran
	if st.budget <= 0 {
		st.budget = 0
		if t.Runnable() {
			st.napping = true
			p.k.SleepThreadUntil(t, p.periodEnd(st))
		}
		return true
	}
	return false
}

func (p *Policy) rotate(t *kernel.Thread) {
	for i, r := range p.runnable {
		if r == t {
			copy(p.runnable[i:], p.runnable[i+1:])
			p.runnable[len(p.runnable)-1] = t
			return
		}
	}
}

// Tick implements kernel.Policy.
func (p *Policy) Tick(now sim.Time) bool {
	r := p.needResched
	p.needResched = false
	return r
}

// WakePreempts implements kernel.Policy: the prototype preempts "if the
// woken thread is under our control and has higher goodness".
func (p *Policy) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return p.better(woken, current)
}
