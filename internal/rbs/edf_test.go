package rbs_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// runDisciplineTaskSet runs the classic Liu-Layland counterexample: two
// CPU-bound tasks with non-harmonic periods at 95% total utilization
// (50%/10ms + 45%/15ms). RMS cannot schedule this set — the longer-period
// task misses — while EDF schedules any feasible set up to 100%.
func runDisciplineTaskSet(t *testing.T, d rbs.Discipline) (missed uint64) {
	t.Helper()
	eng := sim.NewEngine()
	p := rbs.New()
	p.Discipline = d
	// Precise accounting isolates the discipline from tick-quantization
	// overruns, which would steal the schedulability margin.
	p.PreciseAccounting = true
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	t1 := k.Spawn("t1", hog(10_000_000))
	t2 := k.Spawn("t2", hog(10_000_000))
	if err := p.SetReservation(t1, rbs.Reservation{Proportion: 500, Period: 10 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetReservation(t2, rbs.Reservation{Proportion: 450, Period: 15 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	k.Start()
	eng.RunFor(10 * sim.Second)
	k.Stop()
	return p.MissedDeadlines()
}

func TestEDFSchedulesBeyondRMSBound(t *testing.T) {
	rmsMissed := runDisciplineTaskSet(t, rbs.RMS)
	edfMissed := runDisciplineTaskSet(t, rbs.EDF)
	if rmsMissed == 0 {
		t.Fatal("RMS scheduled a 95% non-harmonic set; the Liu-Layland bound should bite")
	}
	if edfMissed > rmsMissed/10 {
		t.Fatalf("EDF missed %d deadlines vs RMS %d; EDF should schedule this set",
			edfMissed, rmsMissed)
	}
}

func TestEDFDeliversReservations(t *testing.T) {
	// The whole reservation property-suite must hold under EDF too.
	eng := sim.NewEngine()
	p := rbs.New()
	p.Discipline = rbs.EDF
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	a := k.Spawn("a", hog(1_000_000))
	b := k.Spawn("b", hog(1_000_000))
	um := k.Spawn("um", hog(1_000_000))
	p.SetReservation(a, rbs.Reservation{Proportion: 300, Period: 10 * sim.Millisecond})
	p.SetReservation(b, rbs.Reservation{Proportion: 300, Period: 30 * sim.Millisecond})
	k.Start()
	eng.RunFor(5 * sim.Second)
	k.Stop()
	if sa := share(a, 5*sim.Second); sa < 0.29 {
		t.Fatalf("a share = %.3f under EDF", sa)
	}
	if sb := share(b, 5*sim.Second); sb < 0.29 {
		t.Fatalf("b share = %.3f under EDF", sb)
	}
	if su := share(um, 5*sim.Second); su < 0.2 {
		t.Fatalf("unmanaged share = %.3f under EDF, want the leftover", su)
	}
}
