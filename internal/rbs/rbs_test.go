package rbs_test

import (
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/rbs"
	"repro/internal/sim"
)

func hog(burst sim.Cycles) kernel.Program {
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpCompute{Cycles: burst}
	})
}

func newMachine() (*sim.Engine, *kernel.Kernel, *rbs.Policy) {
	eng := sim.NewEngine()
	p := rbs.New()
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	return eng, k, p
}

func share(t *kernel.Thread, elapsed sim.Duration) float64 {
	return t.CPUTime().Seconds() / elapsed.Seconds()
}

func TestReservationBudget(t *testing.T) {
	r := rbs.Reservation{Proportion: 50, Period: 30 * sim.Millisecond}
	if b := r.Budget(); b != 1500*sim.Microsecond {
		t.Fatalf("Budget = %v, want 1.5ms (the paper's own example)", b)
	}
}

func TestSetReservationValidation(t *testing.T) {
	_, k, p := newMachine()
	th := k.Spawn("x", hog(1000))
	if err := p.SetReservation(th, rbs.Reservation{Proportion: -1, Period: sim.Millisecond}); err == nil {
		t.Fatal("negative proportion accepted")
	}
	if err := p.SetReservation(th, rbs.Reservation{Proportion: 1001, Period: sim.Millisecond}); err == nil {
		t.Fatal("proportion > 1000 accepted")
	}
	if err := p.SetReservation(th, rbs.Reservation{Proportion: 100, Period: 0}); err == nil {
		t.Fatal("zero period accepted")
	}
	if err := p.SetReservation(th, rbs.Reservation{Proportion: 100, Period: 10 * sim.Millisecond}); err != nil {
		t.Fatalf("valid reservation rejected: %v", err)
	}
	res, ok := p.ReservationOf(th)
	if !ok || res.Proportion != 100 {
		t.Fatalf("ReservationOf = %v, %v", res, ok)
	}
}

func TestProportionEnforcedAgainstGreedyThread(t *testing.T) {
	// A CPU-bound registered thread must get its proportion and no more
	// (modulo tick quantization), with the leftover going idle.
	eng, k, p := newMachine()
	th := k.Spawn("greedy", hog(1_000_000))
	if err := p.SetReservation(th, rbs.Reservation{Proportion: 200, Period: 20 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	k.Start()
	eng.RunFor(5 * sim.Second)
	k.Stop()

	got := share(th, 5*sim.Second)
	// Budget 4ms/20ms = 20%; quantization can overrun up to ~1 tick per
	// period (1ms/20ms = 5%).
	if got < 0.19 || got > 0.26 {
		t.Fatalf("share = %.4f, want ≈0.20..0.25", got)
	}
}

func TestPreciseAccountingRemovesQuantizationOverrun(t *testing.T) {
	run := func(precise bool) float64 {
		eng := sim.NewEngine()
		p := rbs.New()
		p.PreciseAccounting = precise
		k := kernel.New(eng, kernel.DefaultConfig(), p)
		th := k.Spawn("greedy", hog(1_000_000))
		if err := p.SetReservation(th, rbs.Reservation{Proportion: 150, Period: 10 * sim.Millisecond}); err != nil {
			t.Fatal(err)
		}
		k.Start()
		eng.RunFor(5 * sim.Second)
		k.Stop()
		return share(th, 5*sim.Second)
	}
	quantized := run(false)
	precise := run(true)
	if precise > quantized {
		t.Fatalf("precise %.4f should not exceed quantized %.4f", precise, quantized)
	}
	if precise < 0.149 || precise > 0.156 {
		t.Fatalf("precise share = %.4f, want ≈0.15", precise)
	}
	if quantized < 0.15 {
		t.Fatalf("quantized share = %.4f, should include overrun ≥0.15", quantized)
	}
}

func TestBudgetExhaustionNapsUntilNextPeriod(t *testing.T) {
	eng, k, p := newMachine()
	th := k.Spawn("napper", hog(10_000_000))
	if err := p.SetReservation(th, rbs.Reservation{Proportion: 100, Period: 10 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	k.Start()
	// After 5ms the 1ms budget is long spent; the thread must be asleep.
	eng.RunFor(5 * sim.Millisecond)
	if th.State() != kernel.StateSleeping {
		t.Fatalf("state at 5ms = %v, want sleeping (budget spent)", th.State())
	}
	// At 11ms the next period has begun; it must have run again.
	used := th.CPUTime()
	eng.RunFor(7 * sim.Millisecond)
	k.Stop()
	if th.CPUTime() <= used {
		t.Fatal("thread did not resume in its next period")
	}
}

func TestUnmanagedThreadsGetLeftover(t *testing.T) {
	eng, k, p := newMachine()
	reserved := k.Spawn("reserved", hog(1_000_000))
	best := k.Spawn("besteffort", hog(1_000_000))
	if err := p.SetReservation(reserved, rbs.Reservation{Proportion: 600, Period: 10 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	k.Start()
	eng.RunFor(5 * sim.Second)
	k.Stop()
	rs := share(reserved, 5*sim.Second)
	bs := share(best, 5*sim.Second)
	if rs < 0.58 || rs > 0.72 {
		t.Fatalf("reserved share = %.3f, want ≈0.6", rs)
	}
	if bs < 0.25 {
		t.Fatalf("best-effort share = %.3f, want the ≈0.4 leftover", bs)
	}
}

func TestRegisteredAlwaysBeatsUnmanaged(t *testing.T) {
	// Even a tiny reservation must be delivered against unmanaged load.
	eng, k, p := newMachine()
	small := k.Spawn("small", hog(1_000_000))
	k.Spawn("load1", hog(1_000_000))
	k.Spawn("load2", hog(1_000_000))
	if err := p.SetReservation(small, rbs.Reservation{Proportion: 100, Period: 10 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	k.Start()
	eng.RunFor(5 * sim.Second)
	k.Stop()
	got := share(small, 5*sim.Second)
	if got < 0.095 {
		t.Fatalf("reserved 10%% but got %.4f against unmanaged load", got)
	}
}

func TestRateMonotonicOrdering(t *testing.T) {
	// Two registered threads: the shorter-period one must win dispatch
	// when both are runnable ("jobs with shorter periods have higher
	// goodness values"). Verify both still meet their reservations.
	eng, k, p := newMachine()
	fast := k.Spawn("fast", hog(1_000_000))
	slow := k.Spawn("slow", hog(1_000_000))
	if err := p.SetReservation(fast, rbs.Reservation{Proportion: 300, Period: 5 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetReservation(slow, rbs.Reservation{Proportion: 300, Period: 50 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	k.Start()
	eng.RunFor(5 * sim.Second)
	k.Stop()
	fs, ss := share(fast, 5*sim.Second), share(slow, 5*sim.Second)
	if fs < 0.29 {
		t.Fatalf("fast share = %.3f, want ≥0.30", fs)
	}
	if ss < 0.29 {
		t.Fatalf("slow share = %.3f, want ≥0.30", ss)
	}
}

func TestProportionIncreaseMidPeriodTakesEffect(t *testing.T) {
	eng, k, p := newMachine()
	th := k.Spawn("adaptee", hog(10_000_000))
	if err := p.SetReservation(th, rbs.Reservation{Proportion: 50, Period: 100 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	k.Start()
	// Burn the 5ms budget, thread naps until t=100ms.
	eng.RunFor(20 * sim.Millisecond)
	if th.State() != kernel.StateSleeping {
		t.Fatalf("state = %v, want sleeping", th.State())
	}
	// Raise the allocation; the nap must end without waiting for t=100ms.
	if err := p.SetReservation(th, rbs.Reservation{Proportion: 500, Period: 100 * sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(30 * sim.Millisecond)
	k.Stop()
	// By t=50ms the thread should have run ≈5ms (old) + up to 45ms more
	// capped by the new 50ms budget; definitely more than the old 5ms.
	if th.CPUTime() < 10*sim.Millisecond {
		t.Fatalf("CPU after raise = %v, want the raised allocation to flow", th.CPUTime())
	}
}

func TestTotalProportionSums(t *testing.T) {
	_, k, p := newMachine()
	a := k.Spawn("a", hog(1000))
	b := k.Spawn("b", hog(1000))
	k.Spawn("c", hog(1000)) // unregistered
	p.SetReservation(a, rbs.Reservation{Proportion: 250, Period: 10 * sim.Millisecond})
	p.SetReservation(b, rbs.Reservation{Proportion: 300, Period: 20 * sim.Millisecond})
	if got := p.TotalProportion(); got != 550 {
		t.Fatalf("TotalProportion = %d, want 550", got)
	}
	p.Unregister(b)
	if got := p.TotalProportion(); got != 250 {
		t.Fatalf("TotalProportion after unregister = %d, want 250", got)
	}
}

func TestNoMissedDeadlinesWhenUndersubscribed(t *testing.T) {
	eng, k, p := newMachine()
	a := k.Spawn("a", hog(1_000_000))
	b := k.Spawn("b", hog(1_000_000))
	p.SetReservation(a, rbs.Reservation{Proportion: 300, Period: 10 * sim.Millisecond})
	p.SetReservation(b, rbs.Reservation{Proportion: 300, Period: 30 * sim.Millisecond})
	k.Start()
	eng.RunFor(5 * sim.Second)
	k.Stop()
	if p.MissedDeadlines() != 0 {
		t.Fatalf("missed %d deadlines on an undersubscribed machine", p.MissedDeadlines())
	}
}

func TestBlockedThreadDoesNotBurnBudget(t *testing.T) {
	// A registered consumer blocked on an empty queue must not lose its
	// reservation: when data arrives it still has budget.
	eng, k, p := newMachine()
	q := k.NewQueue("pipe", 4096)
	consumed := 0
	phase := 0
	cons := k.Spawn("cons", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase%2 == 1 {
			return kernel.OpConsume{Queue: q, Bytes: 256}
		}
		consumed++
		return kernel.OpCompute{Cycles: 40_000}
	}))
	p.SetReservation(cons, rbs.Reservation{Proportion: 300, Period: 10 * sim.Millisecond})
	k.Spawn("load", hog(1_000_000))
	k.Start()
	eng.RunFor(500 * sim.Millisecond) // consumer blocks, load runs
	if cons.State() != kernel.StateBlocked {
		t.Fatalf("consumer state = %v, want blocked", cons.State())
	}
	// Feed bursts and check the consumer drains them promptly. The
	// producer gets its own reservation so the unmanaged hog cannot delay
	// it (sleep wakeups land on 1ms ticks, so ≈1 block every 2 ticks).
	prodPhase := 0
	prod := k.Spawn("prod", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		prodPhase++
		if prodPhase%2 == 1 {
			return kernel.OpProduce{Queue: q, Bytes: 256}
		}
		return kernel.OpSleep{D: sim.Millisecond}
	}))
	p.SetReservation(prod, rbs.Reservation{Proportion: 100, Period: 5 * sim.Millisecond})
	eng.RunFor(500 * sim.Millisecond)
	k.Stop()
	if consumed < 200 {
		t.Fatalf("consumer processed %d blocks in 500ms, want ≈250+", consumed)
	}
}

// Property: for random undersubscribed reservation sets, every CPU-bound
// registered thread receives at least its proportion over a long window
// (quantization only ever over-delivers).
func TestPropertyReservationsDelivered(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		eng := sim.NewEngine()
		p := rbs.New()
		k := kernel.New(eng, kernel.DefaultConfig(), p)
		n := 2 + rng.Intn(4)
		var threads []*kernel.Thread
		var props []int
		budgetLeft := 700 // keep the machine undersubscribed
		periods := []sim.Duration{5, 10, 20, 30, 50}
		for i := 0; i < n; i++ {
			prop := 50 + rng.Intn(150)
			if prop > budgetLeft {
				break
			}
			budgetLeft -= prop
			th := k.Spawn("t", hog(1_000_000))
			per := periods[rng.Intn(len(periods))] * sim.Duration(sim.Millisecond)
			if err := p.SetReservation(th, rbs.Reservation{Proportion: prop, Period: per}); err != nil {
				return false
			}
			threads = append(threads, th)
			props = append(props, prop)
		}
		if len(threads) == 0 {
			return true
		}
		k.Start()
		eng.RunFor(3 * sim.Second)
		k.Stop()
		for i, th := range threads {
			want := float64(props[i]) / 1000
			got := share(th, 3*sim.Second)
			if got < want*0.97 {
				t.Logf("seed %d: thread %d got %.4f, want ≥%.4f", seed, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
