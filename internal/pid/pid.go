// Package pid implements the discrete proportional-integral-derivative
// controller the paper uses as its pressure filter G (§3.3, Figure 3): the
// summed progress pressures are passed through a PID control "to provide
// error reduction together with acceptable stability and damping"
// (Franklin, Powell, Emami-Naeini).
//
// The controller is assembled from SWiFT components (package swift), the
// same structure as the paper's prototype, which was built with the SWiFT
// feedback toolkit.
package pid

import "repro/internal/swift"

// Config holds the PID gains and conditioning parameters.
type Config struct {
	// Kp, Ki, Kd are the proportional, integral, and derivative gains.
	Kp, Ki, Kd float64
	// IntegralLimit clamps the magnitude of the integral accumulator
	// (anti-windup). Zero means unlimited.
	IntegralLimit float64
	// IntegralLo/IntegralHi, when IntegralHi > IntegralLo, impose an
	// asymmetric accumulator range instead of the symmetric limit.
	IntegralLo, IntegralHi float64
	// DerivativeTau, when positive, low-pass filters the derivative leg with
	// the given time constant in seconds, taming sample noise.
	DerivativeTau float64
	// InputTau, when positive, low-pass filters the error before the PID
	// legs. The paper's controller relies on exactly this: "Using a
	// suitable low-pass filter, we can schedule jobs with reasonable
	// responsiveness and low overhead while keeping the sampling rate
	// reasonably high" (§4.1). Without it, instantaneous fill samples
	// alias against the budget/nap cycle of the dispatched thread.
	InputTau float64
	// OutLo/OutHi clamp the controller output when OutHi > OutLo.
	OutLo, OutHi float64
}

// Controller is a discrete PID controller. It is deliberately a plain
// struct stepped by the caller once per control interval; the simulation
// owns the clock.
// The SWiFT components are embedded by value, not held by pointer: a
// feedback controller is allocated per real-rate job, and an admission
// storm creates tens of thousands of them, so the whole assembly must be
// one allocation (and poolable as one object).
type Controller struct {
	cfg        Config
	integ      swift.Integrator
	deriv      swift.Differentiator
	dfilter    swift.LowPass
	efilter    swift.LowPass
	clamp      swift.Clamp
	hasDFilter bool
	hasEFilter bool
	hasClamp   bool
	lastOut    float64
}

// New returns a controller with the given configuration.
func New(cfg Config) *Controller {
	c := &Controller{
		cfg: cfg,
		integ: swift.Integrator{
			Limit:   cfg.IntegralLimit,
			LimitLo: cfg.IntegralLo,
			LimitHi: cfg.IntegralHi,
		},
	}
	if cfg.DerivativeTau > 0 {
		c.dfilter = swift.LowPass{Tau: cfg.DerivativeTau}
		c.hasDFilter = true
	}
	if cfg.InputTau > 0 {
		c.efilter = swift.LowPass{Tau: cfg.InputTau}
		c.hasEFilter = true
	}
	if cfg.OutHi > cfg.OutLo {
		c.clamp = swift.Clamp{Lo: cfg.OutLo, Hi: cfg.OutHi}
		c.hasClamp = true
	}
	return c
}

// Step advances the controller one control interval of dt seconds with
// measured error err (set point minus measurement, or in the paper's terms
// the progress pressure), returning the new actuation value.
func (c *Controller) Step(err, dt float64) float64 {
	if c.hasEFilter {
		err = c.efilter.Step(err, dt)
	}
	p := c.cfg.Kp * err
	i := c.cfg.Ki * c.integ.Step(err, dt)
	d := c.deriv.Step(err, dt)
	if c.hasDFilter {
		d = c.dfilter.Step(d, dt)
	}
	out := p + i + c.cfg.Kd*d
	if c.hasClamp {
		out = c.clamp.Step(out, dt)
	}
	c.lastOut = out
	return out
}

// Output returns the most recent actuation value.
func (c *Controller) Output() float64 { return c.lastOut }

// Integral returns the current integral accumulator (before Ki scaling),
// exposed for tests and for the controller's reclamation path, which must
// bleed accumulated pressure when it decides an allocation was too generous.
func (c *Controller) Integral() float64 { return c.integ.Sum() }

// ScaleIntegral multiplies the integral accumulator by f. The proportion
// estimator uses this to implement the paper's "P − C" reduction: when the
// allocation overestimates need, the banked integral must shrink too or the
// controller would immediately undo the reduction.
func (c *Controller) ScaleIntegral(f float64) {
	cur := c.integ.Sum()
	c.integ.Reset()
	c.integ.Step(cur*f, 1)
}

// Reset returns the controller to its initial state.
func (c *Controller) Reset() {
	c.integ.Reset()
	c.deriv.Reset()
	if c.hasDFilter {
		c.dfilter.Reset()
	}
	if c.hasEFilter {
		c.efilter.Reset()
	}
	c.lastOut = 0
}
