package pid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProportionalOnly(t *testing.T) {
	c := New(Config{Kp: 2})
	if out := c.Step(3, 0.01); out != 6 {
		t.Fatalf("P-only output = %v, want 6", out)
	}
	if out := c.Step(-1, 0.01); out != -2 {
		t.Fatalf("P-only output = %v, want -2", out)
	}
}

func TestIntegralAccumulates(t *testing.T) {
	c := New(Config{Ki: 1})
	var out float64
	for i := 0; i < 100; i++ {
		out = c.Step(1, 0.01)
	}
	if math.Abs(out-1) > 1e-9 {
		t.Fatalf("I output after 1s of unit error = %v, want 1", out)
	}
}

func TestIntegralHoldsAtZeroError(t *testing.T) {
	// The defining property the paper relies on: at steady state (pressure
	// = 0) the allocation must hold, not decay, so the integral term carries
	// the equilibrium allocation.
	c := New(Config{Kp: 1, Ki: 1})
	for i := 0; i < 100; i++ {
		c.Step(0.5, 0.01)
	}
	held := c.Step(0, 0.01)
	if held <= 0.4 {
		t.Fatalf("output decayed to %v at zero error; integral should hold", held)
	}
	again := c.Step(0, 0.01)
	if math.Abs(again-held) > 1e-12 {
		t.Fatalf("output drifted from %v to %v at zero error", held, again)
	}
}

func TestDerivativeRespondsToChange(t *testing.T) {
	c := New(Config{Kd: 0.1})
	c.Step(0, 0.01)
	out := c.Step(1, 0.01) // derivative = 100, Kd·d = 10
	if math.Abs(out-10) > 1e-9 {
		t.Fatalf("D output = %v, want 10", out)
	}
}

func TestDerivativeFilterTamesSpike(t *testing.T) {
	raw := New(Config{Kd: 0.1})
	filt := New(Config{Kd: 0.1, DerivativeTau: 0.05})
	raw.Step(0, 0.01)
	filt.Step(0, 0.01)
	rawOut := raw.Step(1, 0.01)
	filtOut := filt.Step(1, 0.01)
	if filtOut >= rawOut {
		t.Fatalf("filtered derivative %v not smaller than raw %v", filtOut, rawOut)
	}
}

func TestOutputClamp(t *testing.T) {
	c := New(Config{Kp: 100, OutLo: -1, OutHi: 1})
	if out := c.Step(50, 0.01); out != 1 {
		t.Fatalf("clamped output = %v, want 1", out)
	}
	if out := c.Step(-50, 0.01); out != -1 {
		t.Fatalf("clamped output = %v, want -1", out)
	}
}

func TestAntiWindup(t *testing.T) {
	bounded := New(Config{Ki: 1, IntegralLimit: 1, OutLo: -1, OutHi: 1})
	for i := 0; i < 10000; i++ {
		bounded.Step(10, 0.01)
	}
	// After saturation ends, a bounded integrator must unwind quickly.
	steps := 0
	for bounded.Step(-10, 0.01) > 0 {
		steps++
		if steps > 100 {
			t.Fatalf("anti-windup failed: output still positive after %d reverse steps", steps)
		}
	}
}

func TestScaleIntegral(t *testing.T) {
	c := New(Config{Ki: 1})
	for i := 0; i < 100; i++ {
		c.Step(1, 0.01) // integral = 1
	}
	c.ScaleIntegral(0.5)
	if math.Abs(c.Integral()-0.5) > 1e-9 {
		t.Fatalf("scaled integral = %v, want 0.5", c.Integral())
	}
}

func TestReset(t *testing.T) {
	c := New(Config{Kp: 1, Ki: 1, Kd: 1, DerivativeTau: 0.1})
	for i := 0; i < 50; i++ {
		c.Step(1, 0.01)
	}
	c.Reset()
	if c.Integral() != 0 || c.Output() != 0 {
		t.Fatal("Reset left state behind")
	}
	if out := c.Step(0, 0.01); out != 0 {
		t.Fatalf("post-reset zero-error output = %v", out)
	}
}

func TestClosedLoopConvergence(t *testing.T) {
	// Control a trivial plant: level' = (input - drain). The PI controller
	// must drive the level to the set point and keep it there.
	c := New(Config{Kp: 2, Ki: 4, OutLo: 0, OutHi: 10})
	const (
		dt       = 0.01
		drain    = 1.0
		setPoint = 5.0
	)
	level := 0.0
	for i := 0; i < 5000; i++ {
		in := c.Step(setPoint-level, dt)
		level += (in - drain) * dt
	}
	if math.Abs(level-setPoint) > 0.05 {
		t.Fatalf("closed loop settled at %v, want %v", level, setPoint)
	}
}

// Property: P-only controller output is linear in the error.
func TestPropertyProportionalLinearity(t *testing.T) {
	f := func(e1, e2 int16) bool {
		c1 := New(Config{Kp: 3})
		c2 := New(Config{Kp: 3})
		c3 := New(Config{Kp: 3})
		a := c1.Step(float64(e1), 0.01)
		b := c2.Step(float64(e2), 0.01)
		ab := c3.Step(float64(e1)+float64(e2), 0.01)
		return math.Abs((a+b)-ab) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: output always honors the clamp.
func TestPropertyClampAlwaysHolds(t *testing.T) {
	c := New(Config{Kp: 5, Ki: 3, Kd: 0.5, OutLo: -2, OutHi: 2})
	f := func(errs []int8) bool {
		for _, e := range errs {
			out := c.Step(float64(e), 0.01)
			if out < -2 || out > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
