package pid

import "testing"

func BenchmarkStepPOnly(b *testing.B) {
	c := New(Config{Kp: 1})
	for i := 0; i < b.N; i++ {
		c.Step(0.1, 0.01)
	}
}

func BenchmarkStepFullPID(b *testing.B) {
	c := New(Config{
		Kp: 1, Ki: 4, Kd: 0.05,
		IntegralLo: -0.02, IntegralHi: 0.5,
		DerivativeTau: 0.03, InputTau: 0.04,
		OutLo: 0, OutHi: 2,
	})
	for i := 0; i < b.N; i++ {
		c.Step(0.1, 0.01)
	}
}
