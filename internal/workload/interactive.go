package workload

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// InteractiveJob models a tty server: it blocks on a wait queue until an
// event arrives, handles it with a short CPU burst, and blocks again. The
// controller's interactive heuristic estimates its proportion from those
// bursts.
type InteractiveJob struct {
	TTY   *kernel.WaitQueue
	Burst sim.Cycles

	waiting bool
	handled int64
	// latency bookkeeping: set by the event source at wake time.
	lastEvent sim.Time
	latencies []sim.Duration

	blockOp   kernel.OpBlock
	computeOp kernel.OpCompute
}

// Next implements kernel.Program.
func (ij *InteractiveJob) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	ij.waiting = !ij.waiting
	if ij.waiting {
		ij.blockOp = kernel.OpBlock{WQ: ij.TTY}
		return &ij.blockOp
	}
	if ij.lastEvent > 0 {
		ij.latencies = append(ij.latencies, now.Sub(ij.lastEvent))
	}
	ij.handled++
	ij.computeOp = kernel.OpCompute{Cycles: ij.Burst}
	return &ij.computeOp
}

// Handled returns the number of events processed.
func (ij *InteractiveJob) Handled() int64 { return ij.handled }

// Latencies returns wake-to-run latencies for processed events.
func (ij *InteractiveJob) Latencies() []sim.Duration { return ij.latencies }

// EventSource periodically wakes an interactive job, recording event times
// so latency can be measured. It models the user (or X server input).
type EventSource struct {
	Kernel   *kernel.Kernel
	Target   *InteractiveJob
	Interval sim.Duration

	sleeping bool
	events   int64

	sleepOp   kernel.OpSleep
	computeOp kernel.OpCompute
}

// Next implements kernel.Program.
func (es *EventSource) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	es.sleeping = !es.sleeping
	if es.sleeping {
		es.sleepOp = kernel.OpSleep{D: es.Interval}
		return &es.sleepOp
	}
	es.Target.lastEvent = now
	es.events++
	es.Kernel.WakeOne(es.Target.TTY)
	es.computeOp = kernel.OpCompute{Cycles: 1000}
	return &es.computeOp
}

// Events returns the number of events generated.
func (es *EventSource) Events() int64 { return es.events }
