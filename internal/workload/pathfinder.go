package workload

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// PathfinderConfig sizes the Mars Pathfinder scenario of §2: a high-
// priority bus-management task sharing a mutex with a low-priority
// meteorological task, while a medium-priority communications task starves
// the low task — the priority inversion that repeatedly reset the real
// spacecraft.
type PathfinderConfig struct {
	// BusPeriod is the bus task's activation period.
	BusPeriod sim.Duration
	// BusWork is the bus task's critical-section work.
	BusWork sim.Cycles
	// WeatherHold is the low task's critical-section work (the mutex hold
	// that gets stretched by starvation).
	WeatherHold sim.Cycles
	// WeatherGap is the low task's sleep between acquisitions.
	WeatherGap sim.Duration
	// CommsBurst and CommsGap shape the medium task: long CPU bursts with
	// tiny gaps, keeping it almost always runnable.
	CommsBurst sim.Cycles
	CommsGap   sim.Duration
	// Deadline is the watchdog's reset threshold on bus-task completion
	// gaps.
	Deadline sim.Duration
}

// DefaultPathfinderConfig mirrors the published account: a 125 ms bus
// cycle, a watchdog that resets when a full cycle is missed, and a
// communications load heavy enough to starve the low task for hundreds of
// milliseconds. (Cycle counts assume the 400 MHz simulated CPU.)
func DefaultPathfinderConfig() PathfinderConfig {
	// Under strict priorities the low task progresses only in the medium
	// task's 1 ms gaps: its 5 ms critical section stretches to ≈5 × 101 ms
	// of wall time, far past the 250 ms watchdog deadline while the bus
	// task waits on the mutex. Under real-rate scheduling the low task
	// holds a fair share and releases within tens of milliseconds.
	return PathfinderConfig{
		BusPeriod:   125 * sim.Millisecond,
		BusWork:     400_000,   // 1 ms
		WeatherHold: 2_000_000, // 5 ms inside the mutex
		WeatherGap:  5 * sim.Millisecond,
		CommsBurst:  40_000_000, // 100 ms bursts
		CommsGap:    sim.Millisecond,
		Deadline:    250 * sim.Millisecond,
	}
}

// Pathfinder is the instantiated scenario.
type Pathfinder struct {
	cfg   PathfinderConfig
	Mutex *kernel.Mutex

	Bus      *kernel.Thread
	Comms    *kernel.Thread
	Weather  *kernel.Thread
	Watchdog *kernel.Thread

	busDone        int64
	lastCompletion sim.Time
	resets         int
	resetTimes     []sim.Time
	weatherLoops   int64
}

// NewPathfinder spawns the three tasks plus a watchdog on the given
// machine. Priority (or reservation) assignment is the caller's choice —
// that is the experiment.
func NewPathfinder(k *kernel.Kernel, cfg PathfinderConfig) *Pathfinder {
	p := &Pathfinder{cfg: cfg, Mutex: kernel.NewMutex("info_bus")}

	// Bus management: lock, work, unlock, complete, sleep to next period.
	busPhase := 0
	var periodStart sim.Time
	p.Bus = k.Spawn("bus_mgmt", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		busPhase++
		switch busPhase % 4 {
		case 1:
			periodStart = now
			return kernel.OpLock{M: p.Mutex}
		case 2:
			return kernel.OpCompute{Cycles: cfg.BusWork}
		case 3:
			return kernel.OpUnlock{M: p.Mutex}
		default:
			p.busDone++
			p.lastCompletion = now
			return kernel.OpSleepUntil{At: periodStart.Add(cfg.BusPeriod)}
		}
	}))

	// Communications: long bursts, almost always runnable.
	commsPhase := 0
	p.Comms = k.Spawn("comms", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		commsPhase++
		if commsPhase%2 == 1 {
			return kernel.OpCompute{Cycles: cfg.CommsBurst}
		}
		return kernel.OpSleep{D: cfg.CommsGap}
	}))

	// Meteorological data gathering: holds the shared mutex for real work.
	weatherPhase := 0
	p.Weather = k.Spawn("weather", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		weatherPhase++
		switch weatherPhase % 4 {
		case 1:
			return kernel.OpLock{M: p.Mutex}
		case 2:
			return kernel.OpCompute{Cycles: cfg.WeatherHold}
		case 3:
			return kernel.OpUnlock{M: p.Mutex}
		default:
			p.weatherLoops++
			return kernel.OpSleep{D: cfg.WeatherGap}
		}
	}))

	// Watchdog: observes bus completions; a gap beyond the deadline is a
	// spacecraft reset.
	wdPhase := 0
	p.Watchdog = k.Spawn("watchdog", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		wdPhase++
		if wdPhase%2 == 1 {
			return kernel.OpSleep{D: cfg.Deadline / 4}
		}
		last := p.lastCompletion
		if now.Sub(last) > cfg.Deadline {
			p.resets++
			p.resetTimes = append(p.resetTimes, now)
			p.lastCompletion = now // reset clears the watchdog
		}
		return kernel.OpCompute{Cycles: 10_000}
	}))
	return p
}

// Resets returns the number of watchdog resets observed.
func (p *Pathfinder) Resets() int { return p.resets }

// ResetTimes returns when each reset occurred.
func (p *Pathfinder) ResetTimes() []sim.Time { return p.resetTimes }

// BusCompletions returns how many bus cycles completed.
func (p *Pathfinder) BusCompletions() int64 { return p.busDone }

// WeatherLoops returns how many times the low task completed its section.
func (p *Pathfinder) WeatherLoops() int64 { return p.weatherLoops }

// SpinWait is the livelock scenario of §2: a thread at fixed real-time
// priority spins waiting for input that a lower-priority server (the X
// server in the paper) must produce; under strict priorities the server
// never runs and the system livelocks.
type SpinWait struct {
	Spinner *kernel.Thread
	Server  *kernel.Thread

	inputReady bool
	delivered  int64
	consumed   int64
}

// NewSpinWait spawns the spinner and the input-producing server.
// spinBurst is the spinner's polling loop cost; serverWork is the cycles
// the server needs to produce one input.
func NewSpinWait(k *kernel.Kernel, spinBurst, serverWork sim.Cycles) *SpinWait {
	s := &SpinWait{}
	s.Spinner = k.Spawn("rt_spinner", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		if s.inputReady {
			s.inputReady = false
			s.consumed++
		}
		return kernel.OpCompute{Cycles: spinBurst}
	}))
	serverPhase := 0
	s.Server = k.Spawn("x_server", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		serverPhase++
		if serverPhase%2 == 1 {
			return kernel.OpCompute{Cycles: serverWork}
		}
		s.inputReady = true
		s.delivered++
		return kernel.OpSleep{D: sim.Millisecond}
	}))
	return s
}

// Delivered returns how many inputs the server produced.
func (s *SpinWait) Delivered() int64 { return s.delivered }

// Consumed returns how many inputs the spinner observed.
func (s *SpinWait) Consumed() int64 { return s.consumed }
