package workload

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Producer loops for a fixed number of cycles and then enqueues a block of
// data whose size follows the (possibly time-varying) production rate —
// exactly the pulse program of §4.2: "Both the producer and consumer loop
// for some number of cycles before they enqueue or dequeue a block of data.
// We fix the allocation (cycles/sec) given to the producer ... and control
// the rate at which it produces data (bytes/cycle)."
type Producer struct {
	Queue *kernel.Queue
	// CyclesPerBlock is the loop length between enqueues.
	CyclesPerBlock sim.Cycles
	// Rate is the production rate in bytes per kilocycle.
	Rate RateFunc

	computing bool
	blocks    int64

	// Op structs are reused across iterations so emitting one does not box
	// a fresh interface value per call (see kernel.Program).
	computeOp kernel.OpCompute
	produceOp kernel.OpProduce
}

// Next implements kernel.Program.
func (p *Producer) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	p.computing = !p.computing
	if p.computing {
		p.computeOp = kernel.OpCompute{Cycles: p.CyclesPerBlock}
		return &p.computeOp
	}
	bytes := int64(p.Rate(now) * float64(p.CyclesPerBlock) / 1000)
	if bytes < 1 {
		bytes = 1
	}
	if bytes > p.Queue.Size() {
		bytes = p.Queue.Size()
	}
	p.blocks++
	p.produceOp = kernel.OpProduce{Queue: p.Queue, Bytes: bytes}
	return &p.produceOp
}

// Blocks returns the number of blocks enqueued so far.
func (p *Producer) Blocks() int64 { return p.blocks }

// Consumer dequeues fixed-size blocks and burns a fixed number of cycles
// per byte — the fixed consumption rate of §4.2 whose allocation the
// controller must discover.
type Consumer struct {
	Queue *kernel.Queue
	// BlockBytes is the dequeue unit.
	BlockBytes int64
	// CyclesPerByte is the processing cost (the inverse of the consumption
	// rate in bytes/cycle).
	CyclesPerByte float64

	computing bool
	blocks    int64

	computeOp kernel.OpCompute
	consumeOp kernel.OpConsume
}

// Next implements kernel.Program.
func (c *Consumer) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	c.computing = !c.computing
	if !c.computing {
		c.consumeOp = kernel.OpConsume{Queue: c.Queue, Bytes: c.BlockBytes}
		return &c.consumeOp
	}
	c.blocks++
	cycles := sim.Cycles(c.CyclesPerByte * float64(c.BlockBytes))
	if cycles < 1 {
		cycles = 1
	}
	c.computeOp = kernel.OpCompute{Cycles: cycles}
	return &c.computeOp
}

// Blocks returns the number of blocks dequeued so far.
func (c *Consumer) Blocks() int64 { return c.blocks }

// Stage is one step of a processing pipeline: consume a block from In,
// burn CyclesPerByte per byte, produce the block into Out. In/Out may be
// nil for the first/last stage, in which case the stage synthesizes or
// discards data at the given rate.
type Stage struct {
	In, Out       *kernel.Queue
	BlockBytes    int64
	CyclesPerByte float64

	phase  int
	blocks int64

	computeOp kernel.OpCompute
	consumeOp kernel.OpConsume
	produceOp kernel.OpProduce
}

// Next implements kernel.Program.
func (s *Stage) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	s.phase++
	switch s.phase % 3 {
	case 1:
		if s.In == nil {
			s.phase++ // skip the consume leg
			break
		}
		s.consumeOp = kernel.OpConsume{Queue: s.In, Bytes: s.BlockBytes}
		return &s.consumeOp
	case 2:
		break
	default:
		if s.Out == nil {
			s.computeOp = kernel.OpCompute{Cycles: 1} // nothing to emit; keep looping
			return &s.computeOp
		}
		s.blocks++
		s.produceOp = kernel.OpProduce{Queue: s.Out, Bytes: s.BlockBytes}
		return &s.produceOp
	}
	cycles := sim.Cycles(s.CyclesPerByte * float64(s.BlockBytes))
	if cycles < 1 {
		cycles = 1
	}
	s.computeOp = kernel.OpCompute{Cycles: cycles}
	return &s.computeOp
}

// Blocks returns the number of blocks this stage has emitted.
func (s *Stage) Blocks() int64 { return s.blocks }

// Hog computes forever in fixed bursts: the "miscellaneous job (no
// progress-metric) that tries to consume as much CPU as it can" of §4.2.
type Hog struct {
	Burst sim.Cycles
	done  sim.Cycles

	computeOp kernel.OpCompute
}

// Next implements kernel.Program.
func (h *Hog) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	b := h.Burst
	if b <= 0 {
		b = 100_000
	}
	h.done += b
	h.computeOp = kernel.OpCompute{Cycles: b}
	return &h.computeOp
}

// Work returns the total cycles requested so far.
func (h *Hog) Work() sim.Cycles { return h.done }
