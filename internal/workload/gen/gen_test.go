package gen_test

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	realrate "repro"

	"repro/internal/experiments"
	"repro/internal/workload/gen"
)

// seedsPerFamily * len(gen.Families()) is the scenario count of the main
// invariant sweep: 10 × 6 = 60 distinct seeded scenarios by default, each
// run under all five policies. GEN_SEEDS widens the sweep (make stress).
var seedsPerFamily = func() uint64 {
	if s := os.Getenv("GEN_SEEDS"); s != "" {
		if n, err := strconv.ParseUint(s, 10, 32); err == nil && n > 0 {
			return n
		}
	}
	return 10
}()

// specThreads is the rough thread count of a taskset spec (pipelines
// counted at their stage bound).
func specThreads(t gen.TasksetSpec) int {
	return t.Pipelines*t.MaxStages + t.RealTime + t.Interactive + t.Misc + t.Unmanaged + t.Paced
}

// TestGeneratedScenarioInvariants is the cross-policy invariant harness:
// every (family, seed) scenario runs under all five policies and must hold
// the conformance invariants. A failure prints the minimized replayable
// rrexp command line.
func TestGeneratedScenarioInvariants(t *testing.T) {
	for _, family := range gen.Families() {
		family := family
		t.Run(family, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= seedsPerFamily; seed++ {
				violations, reports, err := gen.Check(family, seed, gen.CheckOpts{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, v := range violations {
					t.Errorf("seed %d: %s", seed, v)
				}
				// The harness must actually exercise the machine: every
				// run schedules work and samples state.
				for _, r := range reports {
					if r.Threads == 0 {
						t.Errorf("seed %d policy %s: no threads spawned", seed, r.Policy)
					}
					if r.Samples == 0 {
						t.Errorf("seed %d policy %s: checker never sampled", seed, r.Policy)
					}
				}
			}
		})
	}
}

// TestFamiliesCoverAxes pins each family to the workload axis it exists
// for: open-loop arrivals actually arrive, churn actually churns, traces
// round-trip through the CSV codec.
func TestFamiliesCoverAxes(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for _, family := range gen.Families() {
			sp, err := gen.ForSeed(family, seed)
			if err != nil {
				t.Fatal(err)
			}
			sc := gen.Generate(sp)
			switch family {
			case "pipeline":
				if sc.Pipelines() == 0 {
					t.Errorf("pipeline/%d: no pipelines", seed)
				}
			case "openloop", "bursty", "trace":
				if sc.Arrivals() == 0 {
					t.Errorf("%s/%d: no open-loop arrivals", family, seed)
				}
			case "churn":
				if sc.ChurnOps() == 0 {
					t.Errorf("churn/%d: no churn ops", seed)
				}
				if sp.Churn.Rate < 50 {
					t.Errorf("churn/%d: rate %v too low for stress", seed, sp.Churn.Rate)
				}
			case "mixed":
				if sc.Threads() < 3 {
					t.Errorf("mixed/%d: taskset too small: %d", seed, sc.Threads())
				}
			case "slo":
				if sc.Sessions() == 0 {
					t.Errorf("slo/%d: no session arrivals", seed)
				}
				if sp.Sessions.Deadline <= 0 {
					t.Errorf("slo/%d: no end-to-end deadline", seed)
				}
				if sp.Sessions.MaxLive <= 0 {
					t.Errorf("slo/%d: no accept-backlog bound", seed)
				}
			}
		}
	}
}

// TestGeneratedScenarioDeterminism is the seed-replay property: the same
// (family, seed, policy) produces a byte-identical dispatch trace on every
// run — including across the serial and parallel sweep runners, which is
// what makes a CI-reported seed reproducible on a laptop.
func TestGeneratedScenarioDeterminism(t *testing.T) {
	type point struct {
		family string
		seed   uint64
		policy string
	}
	var points []point
	for i, family := range gen.Families() {
		points = append(points, point{family, uint64(100 + i), gen.Policies()[i%len(gen.Policies())]})
	}

	traceOf := func(p point) []byte {
		sp, err := gen.ForSeed(p.family, p.seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: p.policy, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.TraceCSV) == 0 {
			t.Fatalf("%+v: empty dispatch trace", p)
		}
		return res.TraceCSV
	}

	// Serial reference: each point run directly.
	experiments.SetParallel(false)
	serial := make([][]byte, len(points))
	for i, p := range points {
		serial[i] = traceOf(p)
	}
	// Same points again, serially: run-to-run determinism.
	for i, p := range points {
		if again := traceOf(p); !bytes.Equal(serial[i], again) {
			t.Errorf("%+v: trace differs between two serial runs (%d vs %d bytes)",
				p, len(serial[i]), len(again))
		}
	}
	// Through the parallel sweep runner: worker scheduling must not leak
	// into the simulations.
	experiments.SetParallel(true)
	defer experiments.SetParallel(true)
	parallel := experiments.Sweep(len(points), func(i int) []byte {
		return traceOf(points[i])
	})
	for i, p := range points {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("%+v: serial and parallel sweep traces differ (%d vs %d bytes)",
				p, len(serial[i]), len(parallel[i]))
		}
	}
}

// TestTraceCSVRoundTrip pins the arrival-trace codec.
func TestTraceCSVRoundTrip(t *testing.T) {
	in := []gen.Arrival{
		{At: 0, Kind: gen.KindMisc},
		{At: 1500 * time.Microsecond, Kind: gen.KindRealTime},
		{At: 2 * time.Millisecond, Kind: gen.KindInteractive},
		{At: 2 * time.Millisecond, Kind: gen.KindPaced},
		{At: 70 * time.Millisecond, Kind: gen.KindUnmanaged},
	}
	var buf bytes.Buffer
	if err := gen.WriteTraceCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := gen.ParseTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost arrivals: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("arrival %d: %+v -> %+v", i, in[i], out[i])
		}
	}
	// Defects rejected: out-of-order rows and unknown kinds.
	if _, err := gen.ParseTraceCSV(bytes.NewBufferString("time_us,kind\n10,misc\n5,misc\n")); err == nil {
		t.Error("out-of-order trace accepted")
	}
	if _, err := gen.ParseTraceCSV(bytes.NewBufferString("time_us,kind\n10,warp\n")); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestPointReplayFormat pins the replay command-line syntax the harness
// prints on failure — it must match the flags cmd/rrexp parses.
func TestPointReplayFormat(t *testing.T) {
	p := gen.Point{Family: "churn", Seed: 17, Policy: "stride"}
	if got, want := p.Replay(), "rrexp -gen -scenario churn -seed 17 -policy stride"; got != want {
		t.Errorf("replay = %q, want %q", got, want)
	}
	p.Scale = 0.25
	p.Duration = 150 * time.Millisecond
	want := "rrexp -gen -scenario churn -seed 17 -policy stride -scale 0.25 -gendur 150ms"
	if got := p.Replay(); got != want {
		t.Errorf("replay = %q, want %q", got, want)
	}
}

// TestScaleShrinksSpec pins the shrinker's axis: scaling reduces counts
// and rates but never below one surviving task.
func TestScaleShrinksSpec(t *testing.T) {
	sp, err := gen.ForSeed("mixed", 3)
	if err != nil {
		t.Fatal(err)
	}
	half := sp.Scale(0.5)
	if specThreads(half.Taskset) > specThreads(sp.Taskset) {
		t.Errorf("scale grew the taskset: %d -> %d", specThreads(sp.Taskset), specThreads(half.Taskset))
	}
	if half.Arrivals.Rate >= sp.Arrivals.Rate {
		t.Errorf("scale did not reduce the arrival rate: %v -> %v", sp.Arrivals.Rate, half.Arrivals.Rate)
	}
	if sp.Taskset.Misc > 0 && half.Taskset.Misc < 1 {
		t.Error("scale erased the last misc task")
	}
}

// TestDistinctSeedsDistinctScenarios guards against a degenerate generator:
// different seeds must draw different scenarios.
func TestDistinctSeedsDistinctScenarios(t *testing.T) {
	for _, family := range gen.Families() {
		a, err := gen.ForSeed(family, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen.ForSeed(family, 2)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b) {
			t.Errorf("%s: seeds 1 and 2 drew identical specs", family)
		}
	}
}

// TestInvariantsAcrossCPUCounts runs the cross-policy invariant harness —
// including the SMP invariants: no-dual-run, per-CPU work conservation,
// migration bookkeeping — over CPUs ∈ {1, 2, 4, 8}, forcing the CPU count
// onto two contrasting families (a closed-loop pipeline shape and the
// churn stress) plus the smp family's own drawn machines.
func TestInvariantsAcrossCPUCounts(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8} {
		cpus := cpus
		t.Run(fmt.Sprintf("cpus=%d", cpus), func(t *testing.T) {
			t.Parallel()
			for _, family := range []string{"pipeline", "churn", "smp"} {
				for seed := uint64(1); seed <= 3; seed++ {
					violations, reports, err := gen.Check(family, seed, gen.CheckOpts{CPUs: cpus})
					if err != nil {
						t.Fatalf("%s seed %d: %v", family, seed, err)
					}
					for _, v := range violations {
						t.Errorf("%s seed %d: %s", family, seed, v)
					}
					for _, r := range reports {
						if r.Samples == 0 {
							t.Errorf("%s seed %d policy %s: checker never sampled", family, seed, r.Policy)
						}
					}
				}
			}
		})
	}
}

// migrationCounter counts OnMigration events through the public observer.
type migrationCounter struct {
	realrate.NopObserver
	n int
}

func (m *migrationCounter) OnMigration(time.Duration, *realrate.Thread, int, int) { m.n++ }

// TestSMPFamilyMigratesAndBalances asserts the smp family actually
// exercises the new machinery: the drawn machine has more than one CPU,
// per-CPU pinned hogs exist, and the runs observe real work-pull
// migrations (the resident load is drawn wide enough that work-pull must
// fire somewhere across seeds).
func TestSMPFamilyMigratesAndBalances(t *testing.T) {
	migrations := 0
	for seed := uint64(1); seed <= 5; seed++ {
		sp, err := gen.ForSeed("smp", seed)
		if err != nil {
			t.Fatal(err)
		}
		if sp.CPUs < 2 {
			t.Fatalf("seed %d: smp family drew %d CPUs", seed, sp.CPUs)
		}
		if !sp.Taskset.PinnedPerCPU {
			t.Fatalf("seed %d: smp family without per-CPU pinned hogs", seed)
		}
		obs := &migrationCounter{}
		if _, err := gen.Generate(sp).Run(gen.RunOpts{Policy: "rbs", Observer: obs}); err != nil {
			t.Fatal(err)
		}
		migrations += obs.n
	}
	if migrations == 0 {
		t.Fatal("no work-pull migrations across 5 smp scenarios")
	}
}
