package gen_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/workload/gen"
)

// TestReplayRoundTrip pins the replay contract end to end: a Point prints
// a command line, ParseReplay recovers the identical Point, and re-running
// the parsed point reproduces the original's dispatch trace byte for byte.
// A run-affecting flag added to Replay but forgotten in ParseReplay (or
// vice versa) breaks this test instead of silently replaying the wrong
// scenario from a CI failure report.
func TestReplayRoundTrip(t *testing.T) {
	points := []gen.Point{
		// Minimal: only the three required fields.
		{Family: "churn", Seed: 17, Policy: "stride"},
		// Every optional flag set — the slo family under the sharded
		// event-driven plane, shrunk and shortened.
		{Family: "slo", Seed: 3, Policy: "rbs", Scale: 0.5,
			Duration: 200 * time.Millisecond, CPUs: 4,
			Controller: "event", Shards: 4},
	}
	for _, p := range points {
		line := p.Replay()
		q, err := gen.ParseReplay(line)
		if err != nil {
			t.Fatalf("ParseReplay(%q): %v", line, err)
		}
		if q != p {
			t.Fatalf("round trip changed the point:\n  printed %q\n  got  %+v\n  want %+v", line, q, p)
		}
		trace := func(p gen.Point) []byte {
			sp, err := p.Spec()
			if err != nil {
				t.Fatalf("%+v: %v", p, err)
			}
			res, err := gen.Generate(sp).Run(gen.RunOpts{
				Policy: p.Policy, Controller: p.Controller, Shards: p.Shards, Trace: true,
			})
			if err != nil {
				t.Fatalf("%+v: %v", p, err)
			}
			if len(res.TraceCSV) == 0 {
				t.Fatalf("%+v: empty dispatch trace", p)
			}
			return res.TraceCSV
		}
		if orig, replayed := trace(p), trace(q); !bytes.Equal(orig, replayed) {
			t.Errorf("%q: replayed dispatch trace differs from original (%d vs %d bytes)",
				line, len(orig), len(replayed))
		}
	}
}

// TestParseReplayRejectsMalformed pins the error paths: lines that are not
// replay lines must be rejected, not half-parsed.
func TestParseReplayRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"",
		"rrexp -figures",
		"rrexp -gen -scenario churn",                          // missing -policy
		"rrexp -gen -policy rbs -seed 1",                      // missing -scenario
		"rrexp -gen -scenario churn -policy rbs -seed",        // flag without value
		"rrexp -gen -scenario churn -policy rbs -warp 9",      // unknown flag
		"rrexp -gen -scenario churn -policy rbs -seed banana", // untyped value
		"make test",
	} {
		if p, err := gen.ParseReplay(line); err == nil {
			t.Errorf("ParseReplay(%q) accepted: %+v", line, p)
		}
	}
}
