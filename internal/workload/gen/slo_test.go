package gen_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/workload/gen"
)

// TestSLOFamilyNonVacuous pins the live-service family to its purpose:
// drawn scenarios actually admit and complete sessions (the attainment
// denominator is non-empty), the SLO report carries exactly one end-to-end
// sample per completed session, and across seeds the family's steady-state
// pressure — refusals or shed deaths — actually shows up. A family that
// never refuses would make every backpressure oracle vacuous.
func TestSLOFamilyNonVacuous(t *testing.T) {
	pressured := 0
	for seed := uint64(1); seed <= 5; seed++ {
		sp, err := gen.ForSeed("slo", seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: "rbs", Controller: "event"})
		if err != nil {
			t.Fatal(err)
		}
		s := res.Report.Sessions
		if s.Started == 0 {
			t.Errorf("seed %d: no sessions started", seed)
		}
		if s.Completed == 0 {
			t.Errorf("seed %d: no sessions completed", seed)
		}
		if got, want := res.SLO.Session.Samples, uint64(s.Completed); got != want {
			t.Errorf("seed %d: %d SLO session samples, %d completed", seed, got, want)
		}
		pressured += s.Refused + s.Dead
	}
	if pressured == 0 {
		t.Error("no refusals or shed deaths across 5 slo scenarios: backpressure never exercised")
	}
}

// TestSLOInvariantsAcrossCPUCounts runs the full cross-policy invariant
// harness — session conservation, stage ordering, SLO-report closure, plus
// every scheduler oracle — over the slo family on multi-CPU machines under
// the sharded event-driven control plane, the configuration the scale runs
// use.
func TestSLOInvariantsAcrossCPUCounts(t *testing.T) {
	for _, cpus := range []int{1, 4, 8} {
		cpus := cpus
		t.Run(fmt.Sprintf("cpus=%d", cpus), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 2; seed++ {
				violations, reports, err := gen.Check("slo", seed, gen.CheckOpts{
					CPUs: cpus, Controller: "event", Shards: 2,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, v := range violations {
					t.Errorf("seed %d: %s", seed, v)
				}
				for _, r := range reports {
					if r.Samples == 0 {
						t.Errorf("seed %d policy %s: checker never sampled", seed, r.Policy)
					}
				}
			}
		})
	}
}

// TestSLOReportDeterminism is the satellite-1 pin: the SLO report — every
// percentile, every per-kind session series — and the session counters are
// byte-equal across two runs of the same scenario, on one CPU and on four
// under the sharded event plane. Per-series seeded reservoir RNG is what
// makes this hold; a shared RNG would let shard interleaving leak into the
// sampled percentiles.
func TestSLOReportDeterminism(t *testing.T) {
	for _, cpus := range []int{1, 4} {
		cpus := cpus
		t.Run(fmt.Sprintf("cpus=%d", cpus), func(t *testing.T) {
			t.Parallel()
			run := func() *gen.RunResult {
				sp, err := gen.ForSeed("slo", 11)
				if err != nil {
					t.Fatal(err)
				}
				sp.CPUs = cpus
				res, err := gen.Generate(sp).Run(gen.RunOpts{
					Policy: "rbs", Controller: "event", Shards: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a.SLO, b.SLO) {
				t.Errorf("SLO reports differ between identical runs:\n  first  %+v\n  second %+v", a.SLO, b.SLO)
			}
			if a.Report.Sessions != b.Report.Sessions {
				t.Errorf("session counters differ between identical runs:\n  first  %+v\n  second %+v",
					a.Report.Sessions, b.Report.Sessions)
			}
		})
	}
}

// TestSessionsLiveAtRunEndExcluded pins the session-level open-edge rule:
// a session still in flight when the simulation stops lands in the Live
// bucket and contributes nothing to attainment or the SLO report's session
// dimension — its end-to-end edge is open, neither met nor missed. Session
// work here is drawn so heavy that nothing can finish inside the run.
func TestSessionsLiveAtRunEndExcluded(t *testing.T) {
	sp := gen.Spec{
		Family:   "slo",
		Seed:     9,
		Duration: 150 * time.Millisecond,
		Taskset:  gen.TasksetSpec{Misc: 1},
		Sessions: gen.SessionSpec{
			Rate:          200,
			PhaseMean:     50 * time.Millisecond,
			Stages:        3,
			Bytes:         512,
			Chunk:         256,
			Work:          2_000_000_000, // seconds of compute per chunk: unfinishable
			Deadline:      60 * time.Millisecond,
			MaxImportance: 9,
		},
	}
	res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: "rbs"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Report.Violations {
		t.Error(v)
	}
	s := res.Report.Sessions
	if s.Started == 0 || s.Live == 0 {
		t.Fatalf("no sessions left in flight: %+v", s)
	}
	if s.Completed != 0 || s.Met != 0 {
		t.Fatalf("unfinishable sessions completed: %+v", s)
	}
	if s.Attainment != 0 || s.Goodput != 0 {
		t.Fatalf("open sessions moved attainment/goodput: %+v", s)
	}
	if res.SLO.Session.Samples != 0 {
		t.Fatalf("open sessions recorded %d end-to-end samples, want 0", res.SLO.Session.Samples)
	}
}

// TestSessionMaxLiveCap pins the accept-backlog bound: with a tiny MaxLive
// and a storm of arrivals, the live-session population never exceeds the
// cap, overflow arrivals land in Refused (conserved, nothing allocated),
// and the cap holds under a controller-less baseline — it is the front
// end's listen queue, not a governor feature.
func TestSessionMaxLiveCap(t *testing.T) {
	sp := gen.Spec{
		Family:   "slo",
		Seed:     5,
		Duration: 400 * time.Millisecond,
		Taskset:  gen.TasksetSpec{Misc: 1},
		Sessions: gen.SessionSpec{
			Rate:          1500,
			BurstRate:     3000,
			PhaseMean:     50 * time.Millisecond,
			Stages:        3,
			Bytes:         512,
			Chunk:         256,
			Work:          30_000,
			Deadline:      60 * time.Millisecond,
			BestEffort:    0.5,
			MaxImportance: 9,
			MaxLive:       8,
		},
	}
	for _, policy := range []string{"rbs", "round-robin"} {
		res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Report.Violations {
			t.Errorf("%s: %s", policy, v)
		}
		s := res.Report.Sessions
		if s.PeakLive > sp.Sessions.MaxLive {
			t.Errorf("%s: peak live %d exceeds MaxLive %d", policy, s.PeakLive, sp.Sessions.MaxLive)
		}
		if s.Refused == 0 {
			t.Errorf("%s: storm at MaxLive=%d produced no refusals (started %d)",
				policy, sp.Sessions.MaxLive, s.Started)
		}
		if s.Started != s.Refused+s.Completed+s.Dead+s.Live {
			t.Errorf("%s: session conservation broken: %+v", policy, s)
		}
	}
}
