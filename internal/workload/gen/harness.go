package gen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Point identifies one replayable scenario execution: everything needed to
// regenerate and re-run it is in these five values, so a Point converts to
// (and from) an rrexp command line.
type Point struct {
	Family string
	Seed   uint64
	Policy string
	// Scale multiplies taskset counts and arrival/churn rates (the
	// shrinker's axis); 0 or 1 means full size.
	Scale float64
	// Duration overrides the family's drawn duration (0: keep it).
	Duration time.Duration
	// CPUs overrides the machine's CPU count (0: the family's own, which
	// is 1 everywhere except the smp family's drawn value).
	CPUs int
	// Controller selects the control-plane sampling mode ("" or
	// "periodic": the classic sweep; "event": event-driven).
	Controller string
	// Shards splits the controller across this many shard threads (0 or
	// 1: the classic single thread).
	Shards int
}

// Replay formats the rrexp invocation that reproduces this point
// deterministically.
func (p Point) Replay() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rrexp -gen -scenario %s -seed %d -policy %s", p.Family, p.Seed, p.Policy)
	if p.Scale > 0 && p.Scale != 1 {
		fmt.Fprintf(&b, " -scale %g", p.Scale)
	}
	if p.Duration > 0 {
		fmt.Fprintf(&b, " -gendur %dms", p.Duration.Milliseconds())
	}
	if p.CPUs > 0 {
		fmt.Fprintf(&b, " -cpus %d", p.CPUs)
	}
	if p.Controller != "" && p.Controller != "periodic" {
		fmt.Fprintf(&b, " -controller %s", p.Controller)
	}
	if p.Shards > 1 {
		fmt.Fprintf(&b, " -shards %d", p.Shards)
	}
	return b.String()
}

// ParseReplay parses a command line printed by Point.Replay back into the
// Point it encodes — the other half of the replay contract. A printed
// failing seed is only useful if it actually reproduces, so the round-trip
// (Replay → ParseReplay → RunPoint → byte-identical dispatch trace) is
// pinned by a test; a run-affecting flag added to one side and forgotten
// on the other fails that test instead of silently replaying the wrong
// scenario.
func ParseReplay(line string) (Point, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != "rrexp" {
		return Point{}, fmt.Errorf("gen: replay line must start with \"rrexp\", got %q", line)
	}
	var p Point
	gen := false
	for i := 1; i < len(fields); {
		flag := fields[i]
		if flag == "-gen" {
			gen = true
			i++
			continue
		}
		if i+1 >= len(fields) {
			return Point{}, fmt.Errorf("gen: replay flag %s is missing its value", flag)
		}
		v := fields[i+1]
		i += 2
		var err error
		switch flag {
		case "-scenario":
			p.Family = v
		case "-seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "-policy":
			p.Policy = v
		case "-scale":
			p.Scale, err = strconv.ParseFloat(v, 64)
		case "-gendur":
			p.Duration, err = time.ParseDuration(v)
		case "-cpus":
			p.CPUs, err = strconv.Atoi(v)
		case "-controller":
			p.Controller = v
		case "-shards":
			p.Shards, err = strconv.Atoi(v)
		default:
			return Point{}, fmt.Errorf("gen: replay line carries unknown flag %s", flag)
		}
		if err != nil {
			return Point{}, fmt.Errorf("gen: replay flag %s: bad value %q: %v", flag, v, err)
		}
	}
	if !gen {
		return Point{}, fmt.Errorf("gen: replay line is not a -gen invocation: %q", line)
	}
	if p.Family == "" || p.Policy == "" {
		return Point{}, fmt.Errorf("gen: replay line needs -scenario and -policy: %q", line)
	}
	return p, nil
}

// Spec derives the point's declarative spec.
func (p Point) Spec() (Spec, error) {
	sp, err := ForSeed(p.Family, p.Seed)
	if err != nil {
		return Spec{}, err
	}
	if p.Scale > 0 && p.Scale != 1 {
		sp = sp.Scale(p.Scale)
	}
	if p.Duration > 0 {
		sp.Duration = p.Duration
	}
	if p.CPUs > 0 {
		sp.CPUs = p.CPUs
	}
	return sp, nil
}

// RunPoint generates and executes one point.
func RunPoint(p Point) (*RunResult, error) {
	sp, err := p.Spec()
	if err != nil {
		return nil, err
	}
	return Generate(sp).Run(RunOpts{Policy: p.Policy, Controller: p.Controller, Shards: p.Shards})
}

// CheckOpts configures a harness sweep.
type CheckOpts struct {
	// Policies restricts the disciplines (nil: all five).
	Policies []string
	// NoShrink skips minimizing failing points.
	NoShrink bool
	// Scale/Duration/CPUs pass through to every point.
	Scale    float64
	Duration time.Duration
	CPUs     int
	// Controller/Shards select the control-plane configuration for every
	// point.
	Controller string
	Shards     int
}

// Check runs one (family, seed) scenario under the requested policies and
// returns every violation, each carrying a minimized replayable command
// line, plus the per-policy reports.
func Check(family string, seed uint64, opts CheckOpts) ([]Violation, []Report, error) {
	policies := opts.Policies
	if len(policies) == 0 {
		policies = Policies()
	}
	var (
		all     []Violation
		reports []Report
	)
	for _, pol := range policies {
		p := Point{Family: family, Seed: seed, Policy: pol,
			Scale: opts.Scale, Duration: opts.Duration, CPUs: opts.CPUs,
			Controller: opts.Controller, Shards: opts.Shards}
		res, err := RunPoint(p)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, res.Report)
		if len(res.Report.Violations) == 0 {
			continue
		}
		rp := p
		if !opts.NoShrink {
			rp = Shrink(p)
		}
		replay := rp.Replay()
		for _, v := range res.Report.Violations {
			v.Replay = replay
			all = append(all, v)
		}
	}
	return all, reports, nil
}

// stillFails re-runs a candidate point and reports whether any invariant
// still breaks. Errors count as not failing (the shrinker must not wander
// into invalid specs).
func stillFails(p Point) bool {
	res, err := RunPoint(p)
	return err == nil && len(res.Report.Violations) > 0
}

// Shrink greedily minimizes a failing point along the two axes that stay
// expressible on the rrexp command line: run duration and workload scale.
// Generation is deterministic, so the returned point reproduces a failure
// exactly; if no smaller point still fails, the original is returned.
func Shrink(p Point) Point {
	sp, err := p.Spec()
	if err != nil {
		return p
	}
	best := p
	if best.Duration == 0 {
		best.Duration = sp.Duration
	}
	if best.Scale == 0 {
		best.Scale = 1
	}
	improved := true
	for tries := 0; improved && tries < 8; tries++ {
		improved = false
		if half := best.Duration / 2; half >= 50*time.Millisecond {
			cand := best
			cand.Duration = half.Round(time.Millisecond)
			if stillFails(cand) {
				best, improved = cand, true
				continue
			}
		}
		if half := best.Scale / 2; half >= 0.1 {
			cand := best
			cand.Scale = half
			if stillFails(cand) {
				best, improved = cand, true
			}
		}
	}
	return best
}
