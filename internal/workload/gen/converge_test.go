package gen

import (
	"fmt"
	"testing"
	"time"
)

// steadied strips a drawn spec of everything that makes end state depend
// on when the controller looked: arrivals, churn, faults, and the
// overload governor. What remains is a fixed taskset whose allocations
// must converge, so the end-of-run snapshot is a meaningful differential
// surface across control-plane configurations.
func steadied(family string, seed uint64, cpus int) (Spec, error) {
	sp, err := ForSeed(family, seed)
	if err != nil {
		return Spec{}, err
	}
	sp.Arrivals = ArrivalSpec{}
	sp.Churn = ChurnSpec{}
	sp.Faults = nil
	sp.Overload = false
	sp.Sessions = SessionSpec{}
	sp.CPUs = cpus
	sp.Duration = 3 * time.Second
	return sp, nil
}

// withinEnvelope reports whether two end allocations agree within the
// class-aware convergence envelope. The sharded plane splits capacity by
// demand proportion and the event plane samples on its own schedule, so
// exact ppt equality is not the contract — same-fixpoint convergence is.
// Real-rate jobs get the loosest bound: a pipeline's feedback loop has a
// family of valid fixpoints (any stage split that keeps the queues
// draining), and which one a run settles at depends on sampling order.
// The total-allocation check below is what keeps that slack honest.
func withinEnvelope(a, b EndState) bool {
	d := a.Smoothed - b.Smoothed
	if d < 0 {
		d = -d
	}
	abs, rel := 30, 0.30
	if a.Class == "real-rate" {
		abs, rel = 60, 0.60
	}
	if d <= abs {
		return true
	}
	m := a.Smoothed
	if b.Smoothed > m {
		m = b.Smoothed
	}
	return float64(d) <= rel*float64(m)
}

// TestConvergenceDifferentialOracle is the correctness argument for the
// sharded, staggered, event-driven control plane, run as a differential
// test: for steadied workloads from every generator family, the classic
// periodic sweep, the 4-shard periodic plane, and the 4-shard
// event-driven plane must all converge to the same per-thread allocation
// fixpoint (within the envelope) and to near-identical totals.
func TestConvergenceDifferentialOracle(t *testing.T) {
	configs := []struct {
		name       string
		controller string
		shards     int
	}{
		{"legacy", "periodic", 1},
		{"sharded", "periodic", 4},
		{"event", "event", 4},
	}
	for _, family := range Families() {
		for _, cpus := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/cpus=%d", family, cpus), func(t *testing.T) {
				sp, err := steadied(family, 7, cpus)
				if err != nil {
					t.Fatalf("spec: %v", err)
				}
				results := make(map[string]*RunResult, len(configs))
				for _, c := range configs {
					res, err := Generate(sp).Run(RunOpts{Controller: c.controller, Shards: c.shards})
					if err != nil {
						t.Fatalf("%s: %v", c.name, err)
					}
					if n := len(res.Report.Violations); n != 0 {
						t.Fatalf("%s: %d invariant violations: %+v", c.name, n, res.Report.Violations[0])
					}
					results[c.name] = res
				}
				base := results["legacy"]
				for _, c := range configs[1:] {
					got := results[c.name]
					if len(got.Allocations) != len(base.Allocations) {
						t.Fatalf("%s: %d surviving threads, legacy has %d",
							c.name, len(got.Allocations), len(base.Allocations))
					}
					var baseTotal, gotTotal int
					for name, want := range base.Allocations {
						have, ok := got.Allocations[name]
						if !ok {
							t.Fatalf("%s: thread %q missing from result", c.name, name)
						}
						baseTotal += want.Smoothed
						gotTotal += have.Smoothed
						if !withinEnvelope(want, have) {
							t.Errorf("%s: %s thread %q converged to %d ppt, legacy to %d (outside envelope)",
								c.name, want.Class, name, have.Smoothed, want.Smoothed)
						}
					}
					// Totals must agree tightly even where individual jobs
					// sit at different points of an equal-desire tie.
					if d := baseTotal - gotTotal; d < -baseTotal/10-20 || d > baseTotal/10+20 {
						t.Errorf("%s: total allocation %d ppt, legacy %d", c.name, gotTotal, baseTotal)
					}
				}
			})
		}
	}
}
