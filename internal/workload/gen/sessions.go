package gen

import (
	"fmt"
	"time"

	realrate "repro"
)

// The slo family's live-service session model. A session is one user's
// short streaming interaction: a multi-stage pipeline (ingest →
// transform* → deliver) of real-rate work chained through bounded
// queues, spawned whole at its drawn arrival instant and measured
// end-to-end against a per-session deadline. Sessions arrive open-loop
// at service rates (an MMPP burst process under a diurnal envelope, see
// drawSessionArrivals), so at scale the system sees what a live service
// sees: admission storms, importance-ordered shedding of best-effort
// users, and an attainment curve that bends as offered load climbs.
//
// One session is ONE job: the ingest thread is the primary (admission
// applies to it alone) and the downstream stages join its job with
// InJob, which is exempt from the admission veto — a session is
// admitted or refused atomically, never half-spawned. A drawn fraction
// of sessions is best-effort (weighted miscellaneous primaries): those
// are what the governor sheds, in drawn-importance order, when the
// storm outruns the machine.

// sessionPlan is one drawn session arrival.
type sessionPlan struct {
	at         time.Duration
	importance float64
	bestEffort bool
}

// SessionReport summarizes one run's session outcomes. Every started
// session lands in exactly one of Refused/Completed/Dead/Live (the
// conservation oracle); attainment is judged over completed sessions
// only — a session still in flight at run end has an open edge that
// must not be counted as either met or missed.
type SessionReport struct {
	// Started counts sessions whose arrival fired (spawn attempted).
	Started int
	// Refused counts primaries rejected at admission (governor
	// backpressure under overload).
	Refused int
	// Completed counts sessions whose final stage delivered the full
	// payload.
	Completed int
	// Dead counts sessions that lost a stage involuntarily (shed or
	// killed) before completing.
	Dead int
	// Live counts sessions still in flight at run end.
	Live int
	// Met counts completed sessions inside the deadline.
	Met int
	// PeakLive is the high-water mark of concurrently live sessions.
	PeakLive int
	// Attainment is Met/Completed; Goodput is Met/Started — the
	// service-level view that also charges refusals and deaths.
	Attainment float64
	Goodput    float64
}

// sessionRef resolves an exiting thread to its session and stage.
type sessionRef struct {
	st    *sessionState
	stage int
}

// sessionState is one session's live bookkeeping.
type sessionState struct {
	id      int
	arrival time.Duration
	queues  []*realrate.Queue
	threads []*realrate.Thread
	// done[i] is set by stage i's program just before its voluntary
	// Exit; an OnExit with done[stage] unset is involuntary (shed or
	// killed) and kills the session.
	done                     []bool
	refused, completed, dead bool
}

// sessionRun drives the planned sessions through one run. It implements
// realrate.Observer (exit edges only) to detect involuntary stage
// deaths and cascade-kill the survivors.
type sessionRun struct {
	realrate.NopObserver
	r        *run
	spec     SessionSpec
	deadline time.Duration
	stages   int
	chunks   int64
	chunk    int64
	work     int64

	sess []*sessionState
	byTh map[*realrate.Thread]sessionRef

	live, peakLive              int
	started, refused, completed int
	dead, met                   int

	violations []Violation
}

func newSessionRun(r *run, spec SessionSpec) *sessionRun {
	sr := &sessionRun{
		r:        r,
		spec:     spec,
		stages:   spec.Stages,
		chunk:    spec.Chunk,
		work:     spec.Work,
		deadline: spec.Deadline,
		byTh:     make(map[*realrate.Thread]sessionRef),
	}
	if sr.stages < 2 {
		sr.stages = 2
	}
	if sr.chunk <= 0 {
		sr.chunk = 256
	}
	sr.chunks = spec.Bytes / sr.chunk
	if sr.chunks < 1 {
		sr.chunks = 1
	}
	if sr.work <= 0 {
		sr.work = 20_000
	}
	if sr.deadline <= 0 {
		// Keep the runner's met/missed judgment aligned with the SLO
		// tracker's, which falls back the same way.
		sr.deadline = realrate.DefaultSessionSLO
	}
	return sr
}

// payload is the total bytes a session moves through each queue.
func (sr *sessionRun) payload() int64 { return sr.chunks * sr.chunk }

// schedule arms one timer per planned arrival.
func (sr *sessionRun) schedule(plans []sessionPlan) {
	for i := range plans {
		id, p := i, plans[i]
		sr.r.sys.After(p.at, func(now time.Duration) {
			sr.spawn(id, p, now)
		})
	}
}

// kindOf names the session class for thread names and the SLO report's
// per-kind session dimension.
func kindOf(bestEffort bool) string {
	if bestEffort {
		return "be"
	}
	return "rr"
}

// spawn admits one whole session: primary ingest first (where admission
// and the governor's veto apply), then the downstream stages into the
// same job. Threads of every session share per-role names — "sess.rr.s1"
// and friends — so the SLO tracker's by-job dimension stays O(stages),
// not O(sessions).
func (sr *sessionRun) spawn(id int, p sessionPlan, now time.Duration) {
	st := &sessionState{id: id, arrival: now, done: make([]bool, sr.stages)}
	sr.sess = append(sr.sess, st)
	sr.started++
	if sr.spec.MaxLive > 0 && sr.live >= sr.spec.MaxLive {
		// Accept-backlog overflow: the blind connection drop every real
		// front end performs when its listen queue is full. Unlike the
		// governor's veto this needs no controller, so baseline policies
		// shed load here — bluntly, with no importance order and no
		// latency signal — which is exactly the contrast the attainment
		// curves are meant to show.
		st.refused = true
		sr.refused++
		return
	}
	kind := kindOf(p.bestEffort)

	st.queues = make([]*realrate.Queue, sr.stages-1)
	for i := range st.queues {
		st.queues[i] = sr.r.sys.NewQueue(fmt.Sprintf("sess%d.q%d", id, i), sr.chunk*2)
		sr.r.chk.watchQueue(st.queues[i])
	}

	var opts []realrate.SpawnOption
	if p.bestEffort {
		opts = []realrate.SpawnOption{realrate.Miscellaneous(), realrate.Importance(p.importance)}
	} else {
		opts = []realrate.SpawnOption{
			realrate.RealRate(0, realrate.ProducerOf(st.queues[0])),
			realrate.Importance(p.importance),
		}
	}
	primary, err := sr.r.sys.Spawn("sess."+kind+".src", sr.srcProg(st, st.queues[0]), opts...)
	sr.r.chk.spawned(primary, err, false, -1)
	if err != nil {
		st.refused = true
		sr.refused++
		return
	}
	st.threads = append(st.threads, primary)
	sr.byTh[primary] = sessionRef{st, 0}
	sr.live++
	if sr.live > sr.peakLive {
		sr.peakLive = sr.live
	}

	for s := 1; s < sr.stages; s++ {
		var prog realrate.Program
		name := fmt.Sprintf("sess.%s.s%d", kind, s)
		if s < sr.stages-1 {
			prog = sr.stageProg(st, s, st.queues[s-1], st.queues[s])
		} else {
			name = "sess." + kind + ".sink"
			prog = sr.sinkProg(st, kind, st.queues[s-1])
		}
		var mopts []realrate.SpawnOption
		if sr.r.policy == "rbs" {
			// Members join the primary's job: exempt from the admission
			// veto, so an admitted session never half-spawns.
			mopts = append(mopts, realrate.InJob(primary))
		}
		mth, merr := sr.r.sys.Spawn(name, prog, mopts...)
		sr.r.chk.spawned(mth, merr, false, -1)
		if merr != nil {
			// Members are veto-exempt; a refusal here is a harness bug.
			sr.violate("session-conservation", now,
				"session %d stage %d refused after the primary was admitted: %v", id, s, merr)
			sr.killSession(st, nil)
			return
		}
		st.threads = append(st.threads, mth)
		sr.byTh[mth] = sessionRef{st, s}
	}
}

// srcProg is the ingest stage: per chunk, one compute burst then one
// enqueue; marks its stage done and exits after the full payload.
func (sr *sessionRun) srcProg(st *sessionState, out *realrate.Queue) realrate.Program {
	var sent int64
	compute := true
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if sent >= sr.chunks {
			st.done[0] = true
			return realrate.Exit()
		}
		if compute {
			compute = false
			return realrate.Compute(sr.work)
		}
		compute = true
		sent++
		return realrate.Produce(out, sr.chunk)
	})
}

// stageProg is a transform stage: consume a chunk, process it, forward
// it.
func (sr *sessionRun) stageProg(st *sessionState, stage int, in, out *realrate.Queue) realrate.Program {
	var moved int64
	phase := 0
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		switch phase {
		case 0:
			if moved >= sr.chunks {
				st.done[stage] = true
				return realrate.Exit()
			}
			phase = 1
			return realrate.Consume(in, sr.chunk)
		case 1:
			phase = 2
			return realrate.Compute(sr.work)
		default:
			phase = 0
			moved++
			return realrate.Produce(out, sr.chunk)
		}
	})
}

// sinkProg is the delivery stage: once the full payload has been
// consumed and processed, the session is complete and its end-to-end
// latency is recorded.
func (sr *sessionRun) sinkProg(st *sessionState, kind string, in *realrate.Queue) realrate.Program {
	var got int64
	consume := true
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if got >= sr.chunks {
			st.done[len(st.done)-1] = true
			sr.complete(st, kind, now)
			return realrate.Exit()
		}
		if consume {
			consume = false
			return realrate.Consume(in, sr.chunk)
		}
		consume = true
		got++
		return realrate.Compute(sr.work)
	})
}

// complete closes one session: attainment bookkeeping, the SLO report's
// session sample, and the drained-pipeline oracle (every inter-stage
// queue conserved the exact payload — the stage-ordering invariant in
// its strongest per-session form).
func (sr *sessionRun) complete(st *sessionState, kind string, now time.Duration) {
	if st.completed || st.dead {
		return
	}
	st.completed = true
	sr.completed++
	sr.live--
	lat := now - st.arrival
	if lat <= sr.deadline {
		sr.met++
	}
	sr.r.sys.ObserveSessionLatency(kind, lat)
	for i, q := range st.queues {
		if q.Produced() != sr.payload() || q.Consumed() != sr.payload() || q.Fill() != 0 {
			sr.violate("session-stage-order", now,
				"completed session %d queue %d: produced %d, consumed %d, fill %d (payload %d)",
				st.id, i, q.Produced(), q.Consumed(), q.Fill(), sr.payload())
		}
	}
}

// killSession marks a session dead and cascade-kills its surviving
// stages. The kills are deferred through a zero-delay timer: OnExit
// fires from inside the kernel's retirement path, where a re-entrant
// Kill is not safe.
func (sr *sessionRun) killSession(st *sessionState, exiting *realrate.Thread) {
	if st.completed || st.dead {
		return
	}
	st.dead = true
	sr.dead++
	sr.live--
	for _, other := range st.threads {
		if other == exiting {
			continue
		}
		o := other
		sr.r.sys.After(0, func(now time.Duration) {
			if o.State() != "exited" {
				o.Kill()
			}
		})
	}
}

// OnExit implements realrate.Observer: a stage exiting without having
// marked itself done was shed or killed mid-payload, which kills the
// whole session — a half-delivered stream is dead, not degraded — and
// releases its surviving stages, so no thread wedges forever on a queue
// that will never fill or drain again.
func (sr *sessionRun) OnExit(now time.Duration, th *realrate.Thread) {
	ref, ok := sr.byTh[th]
	if !ok {
		return
	}
	delete(sr.byTh, th)
	if ref.st.done[ref.stage] {
		return // voluntary completion
	}
	sr.killSession(ref.st, th)
}

// violate records one session-oracle breach, capped like the checker's.
func (sr *sessionRun) violate(invariant string, now time.Duration, format string, args ...any) {
	if len(sr.violations) >= maxViolations {
		return
	}
	sr.violations = append(sr.violations, Violation{
		Invariant: invariant,
		Policy:    sr.r.policy,
		Time:      now,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// finish runs the end-of-run session oracles.
func (sr *sessionRun) finish(sys *realrate.System) {
	end := sys.Now()

	// Session conservation: every arrival is in exactly one bucket.
	if sr.started != sr.refused+sr.completed+sr.dead+sr.live {
		sr.violate("session-conservation", end,
			"started %d != refused %d + completed %d + dead %d + live %d",
			sr.started, sr.refused, sr.completed, sr.dead, sr.live)
	}
	if sr.live < 0 || sr.peakLive < sr.live {
		sr.violate("session-conservation", end,
			"live %d outside [0, peak %d]", sr.live, sr.peakLive)
	}

	// Stage ordering for sessions still in flight: stage j can never
	// have forwarded more bytes than stage j-1 released to it.
	for _, st := range sr.sess {
		if st.refused || st.dead {
			continue
		}
		for j := 1; j < len(st.queues); j++ {
			if st.queues[j].Produced() > st.queues[j-1].Consumed() {
				sr.violate("session-stage-order", end,
					"session %d: stage %d produced %d bytes but stage %d only released %d",
					st.id, j+1, st.queues[j].Produced(), j, st.queues[j-1].Consumed())
			}
		}
	}

	// SLO-report closure: exactly one end-to-end sample per completed
	// session — refused, dead, and still-live sessions contribute none
	// (their edges are open or void, not missed) — the per-kind series
	// partition the total, and the tracker's exact attainment counter
	// agrees with the runner's met count.
	rep := sys.SLO()
	if rep.Session.Samples != uint64(sr.completed) {
		sr.violate("session-slo-closure", end,
			"SLO report holds %d session samples, %d sessions completed",
			rep.Session.Samples, sr.completed)
	}
	var byKind uint64
	for _, st := range rep.Sessions {
		byKind += st.Samples
	}
	if byKind != rep.Session.Samples {
		sr.violate("session-slo-closure", end,
			"per-kind session samples sum to %d, total dimension has %d",
			byKind, rep.Session.Samples)
	}
	if sr.completed > 0 {
		want := float64(sr.met) / float64(sr.completed)
		if diff := rep.Session.Attainment - want; diff < -1e-9 || diff > 1e-9 {
			sr.violate("session-slo-closure", end,
				"SLO report attainment %.6f, runner counted %d/%d met",
				rep.Session.Attainment, sr.met, sr.completed)
		}
	}
}

// report snapshots the run's session outcome.
func (sr *sessionRun) report() SessionReport {
	rep := SessionReport{
		Started:   sr.started,
		Refused:   sr.refused,
		Completed: sr.completed,
		Dead:      sr.dead,
		Live:      sr.live,
		Met:       sr.met,
		PeakLive:  sr.peakLive,
	}
	if sr.completed > 0 {
		rep.Attainment = float64(rep.Met) / float64(rep.Completed)
	}
	if sr.started > 0 {
		rep.Goodput = float64(rep.Met) / float64(rep.Started)
	}
	return rep
}
