package gen

import (
	"fmt"
	"strconv"
	"time"

	realrate "repro"
)

// The slo family's live-service session model. A session is one user's
// short streaming interaction: a multi-stage pipeline (ingest →
// transform* → deliver) of real-rate work chained through bounded
// queues, spawned whole at its drawn arrival instant and measured
// end-to-end against a per-session deadline. Sessions arrive open-loop
// at service rates (an MMPP burst process under a diurnal envelope, see
// drawSessionArrivals), so at scale the system sees what a live service
// sees: admission storms, importance-ordered shedding of best-effort
// users, and an attainment curve that bends as offered load climbs.
//
// One session is ONE job: the ingest thread is the primary (admission
// applies to it alone) and the downstream stages join its job with
// InJob, which is exempt from the admission veto — a session is
// admitted or refused atomically, never half-spawned. A drawn fraction
// of sessions is best-effort (weighted miscellaneous primaries): those
// are what the governor sheds, in drawn-importance order, when the
// storm outruns the machine.

// sessionPlan is one drawn session arrival.
type sessionPlan struct {
	at         time.Duration
	importance float64
	bestEffort bool
}

// SessionReport summarizes one run's session outcomes. Every started
// session lands in exactly one of Refused/Completed/Dead/Live (the
// conservation oracle); attainment is judged over completed sessions
// only — a session still in flight at run end has an open edge that
// must not be counted as either met or missed.
type SessionReport struct {
	// Started counts sessions whose arrival fired (spawn attempted).
	Started int
	// Refused counts primaries rejected at admission (governor
	// backpressure under overload).
	Refused int
	// Completed counts sessions whose final stage delivered the full
	// payload.
	Completed int
	// Dead counts sessions that lost a stage involuntarily (shed or
	// killed) before completing.
	Dead int
	// Live counts sessions still in flight at run end.
	Live int
	// Met counts completed sessions inside the deadline.
	Met int
	// PeakLive is the high-water mark of concurrently live sessions.
	PeakLive int
	// Attainment is Met/Completed; Goodput is Met/Started — the
	// service-level view that also charges refusals and deaths.
	Attainment float64
	Goodput    float64
}

// sessionRef resolves an exiting thread to its session and stage.
type sessionRef struct {
	st    *sessionState
	stage int
}

// sessionState is one session's live bookkeeping. Under the fast path
// (invariant checking off) states are pooled: a terminal session's state
// — queues, thread slots, embedded stage programs — is recycled to a
// later arrival instead of being reallocated per session.
type sessionState struct {
	id      int
	arrival time.Duration
	queues  []*realrate.Queue
	threads []*realrate.Thread
	// done[i] is set by stage i's program just before its voluntary
	// Exit; an OnExit with done[stage] unset is involuntary (shed or
	// killed) and kills the session.
	done                     []bool
	refused, completed, dead bool

	// Fast-path pooling fields.
	//
	// idx is the state's position in sr.sess for O(1) swap-removal (−1
	// when not listed); alive counts threads that have not yet exited —
	// the state recycles when it reaches zero on a terminal session.
	idx   int
	alive int
	// srcLink is the ingest stage's producer link, boxed once per pooled
	// state so re-admission does not re-box the interface value.
	srcLink realrate.ProgressSource
	// The stage programs live inside the state (reset per admission), so
	// a session spawns zero program closures.
	src      srcState
	mids     []midState
	sink     sinkState
	freeNext *sessionState
}

// sessionRun drives the planned sessions through one run. It implements
// realrate.Observer (exit edges only) to detect involuntary stage
// deaths and cascade-kill the survivors.
type sessionRun struct {
	realrate.NopObserver
	r        *run
	spec     SessionSpec
	deadline time.Duration
	stages   int
	chunks   int64
	chunk    int64
	work     int64

	sess []*sessionState
	byTh map[*realrate.Thread]sessionRef

	live, peakLive              int
	started, refused, completed int
	dead, met                   int

	violations []Violation

	// Fast-path machinery (active when the invariant checker is off):
	// pooled session states, a single rolling arrival timer instead of
	// one armed closure per plan, per-kind interned thread names, and a
	// reused SpawnReq so an admission allocates no option closures.
	fast     bool
	names    [2]sessionNames // indexed rr=0, be=1
	plans    []sessionPlan
	next     int
	arr      *realrate.Timer
	freeSess *sessionState
	slots    int
	req      realrate.SpawnReq
	srcSrc   [1]realrate.ProgressSource

	// Fresh-slot build slabs: a saturated storm's pool can only serve
	// sessions that have fully retired, so the peak-live population is
	// built fresh — these chunks amortize that construction to a handful
	// of allocations per 256 slots instead of ~6 per slot.
	stSlab   []sessionState
	doneSlab []bool
	qSlab    []*realrate.Queue
	thSlab   []*realrate.Thread
	midSlab  []midState
	nameBuf  []byte
}

// sessionNames are one session kind's interned thread names.
type sessionNames struct {
	kind, src, sink string
	mid             []string // mid[s-1] names stage s
}

func makeSessionNames(kind string, stages int) sessionNames {
	n := sessionNames{kind: kind, src: "sess." + kind + ".src", sink: "sess." + kind + ".sink"}
	for s := 1; s < stages-1; s++ {
		n.mid = append(n.mid, fmt.Sprintf("sess.%s.s%d", kind, s))
	}
	return n
}

func newSessionRun(r *run, spec SessionSpec) *sessionRun {
	sr := &sessionRun{
		r:        r,
		spec:     spec,
		stages:   spec.Stages,
		chunk:    spec.Chunk,
		work:     spec.Work,
		deadline: spec.Deadline,
		byTh:     make(map[*realrate.Thread]sessionRef),
	}
	if sr.stages < 2 {
		sr.stages = 2
	}
	if sr.chunk <= 0 {
		sr.chunk = 256
	}
	sr.chunks = spec.Bytes / sr.chunk
	if sr.chunks < 1 {
		sr.chunks = 1
	}
	if sr.work <= 0 {
		sr.work = 20_000
	}
	if sr.deadline <= 0 {
		// Keep the runner's met/missed judgment aligned with the SLO
		// tracker's, which falls back the same way.
		sr.deadline = realrate.DefaultSessionSLO
	}
	if r.chk == nil {
		// Without the invariant checker (open-loop storm benchmarks and
		// production-shaped sweeps) the recycling fast path drives
		// sessions; the checker-on path keeps the classic per-session
		// allocation so the pools-on/off A/B comparison runs an identical
		// driver on both sides.
		sr.fast = true
		sr.names[0] = makeSessionNames("rr", sr.stages)
		sr.names[1] = makeSessionNames("be", sr.stages)
	}
	return sr
}

// payload is the total bytes a session moves through each queue.
func (sr *sessionRun) payload() int64 { return sr.chunks * sr.chunk }

// schedule arms the planned arrivals: classically one timer closure per
// plan; on the fast path one rolling Timer walks the (monotone) plan
// list, batching every same-instant arrival through a single callback.
func (sr *sessionRun) schedule(plans []sessionPlan) {
	if !sr.fast {
		for i := range plans {
			id, p := i, plans[i]
			sr.r.sys.After(p.at, func(now time.Duration) {
				sr.spawn(id, p, now)
			})
		}
		return
	}
	if len(plans) == 0 {
		return
	}
	sr.plans = plans
	sr.arr = sr.r.sys.NewTimer(func(now time.Duration) {
		for sr.next < len(sr.plans) && sr.plans[sr.next].at <= now {
			i := sr.next
			sr.next++
			sr.spawnFast(i, sr.plans[i], now)
		}
		if sr.next < len(sr.plans) {
			sr.arr.Arm(sr.plans[sr.next].at - now)
		}
	})
	sr.arr.Arm(plans[0].at)
}

// kindOf names the session class for thread names and the SLO report's
// per-kind session dimension.
func kindOf(bestEffort bool) string {
	if bestEffort {
		return "be"
	}
	return "rr"
}

// spawn admits one whole session: primary ingest first (where admission
// and the governor's veto apply), then the downstream stages into the
// same job. Threads of every session share per-role names — "sess.rr.s1"
// and friends — so the SLO tracker's by-job dimension stays O(stages),
// not O(sessions).
func (sr *sessionRun) spawn(id int, p sessionPlan, now time.Duration) {
	st := &sessionState{id: id, arrival: now, done: make([]bool, sr.stages)}
	sr.sess = append(sr.sess, st)
	sr.started++
	if sr.spec.MaxLive > 0 && sr.live >= sr.spec.MaxLive {
		// Accept-backlog overflow: the blind connection drop every real
		// front end performs when its listen queue is full. Unlike the
		// governor's veto this needs no controller, so baseline policies
		// shed load here — bluntly, with no importance order and no
		// latency signal — which is exactly the contrast the attainment
		// curves are meant to show.
		st.refused = true
		sr.refused++
		return
	}
	kind := kindOf(p.bestEffort)

	st.queues = make([]*realrate.Queue, sr.stages-1)
	for i := range st.queues {
		st.queues[i] = sr.r.sys.NewQueue(fmt.Sprintf("sess%d.q%d", id, i), sr.chunk*2)
		sr.r.chk.watchQueue(st.queues[i])
	}

	var opts []realrate.SpawnOption
	if p.bestEffort {
		opts = []realrate.SpawnOption{realrate.Miscellaneous(), realrate.Importance(p.importance)}
	} else {
		opts = []realrate.SpawnOption{
			realrate.RealRate(0, realrate.ProducerOf(st.queues[0])),
			realrate.Importance(p.importance),
		}
	}
	primary, err := sr.r.sys.Spawn("sess."+kind+".src", sr.srcProg(st, st.queues[0]), opts...)
	sr.r.chk.spawned(primary, err, false, -1)
	if err != nil {
		st.refused = true
		sr.refused++
		return
	}
	st.threads = append(st.threads, primary)
	sr.byTh[primary] = sessionRef{st, 0}
	sr.live++
	if sr.live > sr.peakLive {
		sr.peakLive = sr.live
	}

	for s := 1; s < sr.stages; s++ {
		var prog realrate.Program
		name := fmt.Sprintf("sess.%s.s%d", kind, s)
		if s < sr.stages-1 {
			prog = sr.stageProg(st, s, st.queues[s-1], st.queues[s])
		} else {
			name = "sess." + kind + ".sink"
			prog = sr.sinkProg(st, kind, st.queues[s-1])
		}
		var mopts []realrate.SpawnOption
		if sr.r.policy == "rbs" {
			// Members join the primary's job: exempt from the admission
			// veto, so an admitted session never half-spawns.
			mopts = append(mopts, realrate.InJob(primary))
		}
		mth, merr := sr.r.sys.Spawn(name, prog, mopts...)
		sr.r.chk.spawned(mth, merr, false, -1)
		if merr != nil {
			// Members are veto-exempt; a refusal here is a harness bug.
			sr.violate("session-conservation", now,
				"session %d stage %d refused after the primary was admitted: %v", id, s, merr)
			sr.killSession(st, nil)
			return
		}
		st.threads = append(st.threads, mth)
		sr.byTh[mth] = sessionRef{st, s}
	}
}

// spawnFast is the pooled-admission form of spawn: session state, queues,
// stage programs, and thread names all come from pools or interned
// tables, so a refused arrival allocates nothing and an admitted one
// allocates only its thread handles. Semantics match spawn exactly — the
// same admission order, the same veto points, the same counters.
func (sr *sessionRun) spawnFast(id int, p sessionPlan, now time.Duration) {
	sr.started++
	if sr.spec.MaxLive > 0 && sr.live >= sr.spec.MaxLive {
		sr.refused++
		return
	}
	st := sr.acquireState(id, now)
	names := &sr.names[0]
	if p.bestEffort {
		names = &sr.names[1]
	}

	sr.req = realrate.SpawnReq{Importance: p.importance}
	if p.bestEffort {
		sr.req.Class = realrate.SpawnMisc
	} else {
		sr.req.Class = realrate.SpawnRealRate
		sr.srcSrc[0] = st.srcLink
		sr.req.Sources = sr.srcSrc[:]
	}
	st.src = srcState{sr: sr, st: st, out: st.queues[0], compute: true}
	primary, err := sr.r.sys.SpawnFrom(names.src, &st.src, &sr.req)
	if err != nil {
		sr.refused++
		sr.releaseState(st)
		return
	}
	st.threads = append(st.threads, primary)
	sr.byTh[primary] = sessionRef{st, 0}
	st.alive = 1
	sr.live++
	if sr.live > sr.peakLive {
		sr.peakLive = sr.live
	}
	st.idx = len(sr.sess)
	sr.sess = append(sr.sess, st)

	member := sr.r.policy == "rbs"
	for s := 1; s < sr.stages; s++ {
		var prog realrate.Program
		var name string
		if s < sr.stages-1 {
			m := &st.mids[s-1]
			*m = midState{sr: sr, st: st, stage: s, in: st.queues[s-1], out: st.queues[s]}
			prog, name = m, names.mid[s-1]
		} else {
			st.sink = sinkState{sr: sr, st: st, kind: names.kind, in: st.queues[s-1], consume: true}
			prog, name = &st.sink, names.sink
		}
		sr.req = realrate.SpawnReq{}
		if member {
			sr.req.Class = realrate.SpawnMember
			sr.req.Job = primary
		}
		mth, merr := sr.r.sys.SpawnFrom(name, prog, &sr.req)
		if merr != nil {
			// Members are veto-exempt; a refusal here is a harness bug.
			sr.violate("session-conservation", now,
				"session %d stage %d refused after the primary was admitted: %v", id, s, merr)
			sr.killSession(st, nil)
			return
		}
		st.threads = append(st.threads, mth)
		sr.byTh[mth] = sessionRef{st, s}
		st.alive++
	}
}

// acquireState returns a scrubbed session state: from the pool when a
// previous session has fully retired, otherwise freshly built with its
// own queue pipeline (named per pool slot, not per session — the checker
// is off on the fast path, and recycled queues keep their slot name
// across logical sessions).
func (sr *sessionRun) acquireState(id int, now time.Duration) *sessionState {
	if st := sr.freeSess; st != nil {
		sr.freeSess = st.freeNext
		st.freeNext = nil
		st.id, st.arrival = id, now
		st.refused, st.completed, st.dead = false, false, false
		for i := range st.done {
			st.done[i] = false
		}
		for _, q := range st.queues {
			q.Recycle()
		}
		return st
	}
	if len(sr.stSlab) == 0 {
		sr.stSlab = make([]sessionState, 256)
	}
	st := &sr.stSlab[0]
	sr.stSlab = sr.stSlab[1:]
	*st = sessionState{id: id, arrival: now, idx: -1}
	if len(sr.doneSlab) < sr.stages {
		sr.doneSlab = make([]bool, 256*sr.stages)
	}
	st.done = sr.doneSlab[:sr.stages:sr.stages]
	sr.doneSlab = sr.doneSlab[sr.stages:]
	nq := sr.stages - 1
	if len(sr.qSlab) < nq {
		sr.qSlab = make([]*realrate.Queue, 256*nq)
	}
	st.queues = sr.qSlab[:nq:nq]
	sr.qSlab = sr.qSlab[nq:]
	if len(sr.thSlab) < sr.stages {
		sr.thSlab = make([]*realrate.Thread, 256*sr.stages)
	}
	st.threads = sr.thSlab[:0:sr.stages]
	sr.thSlab = sr.thSlab[sr.stages:]
	if sr.stages > 2 {
		if len(sr.midSlab) < sr.stages-2 {
			sr.midSlab = make([]midState, 256*(sr.stages-2))
		}
		st.mids = sr.midSlab[: sr.stages-2 : sr.stages-2]
		sr.midSlab = sr.midSlab[sr.stages-2:]
	}
	slot := sr.slots
	sr.slots++
	for i := range st.queues {
		st.queues[i] = sr.r.sys.NewQueue(sr.queueName(slot, i), sr.chunk*2)
	}
	st.srcLink = realrate.ProducerOf(st.queues[0])
	return st
}

// queueName builds "sessp<slot>.q<i>" through a reused scratch buffer —
// one string allocation per fresh queue, versus fmt.Sprintf's three.
func (sr *sessionRun) queueName(slot, i int) string {
	b := append(sr.nameBuf[:0], "sessp"...)
	b = strconv.AppendInt(b, int64(slot), 10)
	b = append(b, ".q"...)
	b = strconv.AppendInt(b, int64(i), 10)
	sr.nameBuf = b
	return string(b)
}

// releaseState scrubs thread references and banks the state for reuse.
// Queues are recycled lazily at the next acquire, not here: release runs
// inside the kernel's exit path, and deferring the reset keeps that path
// read-only on queue state.
func (sr *sessionRun) releaseState(st *sessionState) {
	for i := range st.threads {
		st.threads[i] = nil
	}
	st.threads = st.threads[:0]
	st.freeNext = sr.freeSess
	sr.freeSess = st
}

// recycleSession retires a terminal session's state once its last thread
// has exited: swap-removed from the live list and returned to the pool.
func (sr *sessionRun) recycleSession(st *sessionState) {
	if st.idx >= 0 {
		last := len(sr.sess) - 1
		sr.sess[st.idx] = sr.sess[last]
		sr.sess[st.idx].idx = st.idx
		sr.sess[last] = nil
		sr.sess = sr.sess[:last]
		st.idx = -1
	}
	sr.releaseState(st)
}

// srcState, midState, and sinkState are the struct forms of srcProg,
// stageProg, and sinkProg: embedded in the pooled session state, stepping
// through the exact same action sequences via a reusable Ops buffer, so a
// recycled session admits with zero program or op-box allocations.
type srcState struct {
	sr      *sessionRun
	st      *sessionState
	out     *realrate.Queue
	sent    int64
	compute bool
	ops     realrate.Ops
}

func (p *srcState) Next(th *realrate.Thread, now time.Duration) realrate.Action {
	if p.sent >= p.sr.chunks {
		p.st.done[0] = true
		return realrate.Exit()
	}
	if p.compute {
		p.compute = false
		return p.ops.Compute(p.sr.work)
	}
	p.compute = true
	p.sent++
	return p.ops.Produce(p.out, p.sr.chunk)
}

type midState struct {
	sr      *sessionRun
	st      *sessionState
	stage   int
	in, out *realrate.Queue
	moved   int64
	phase   int
	ops     realrate.Ops
}

func (p *midState) Next(th *realrate.Thread, now time.Duration) realrate.Action {
	switch p.phase {
	case 0:
		if p.moved >= p.sr.chunks {
			p.st.done[p.stage] = true
			return realrate.Exit()
		}
		p.phase = 1
		return p.ops.Consume(p.in, p.sr.chunk)
	case 1:
		p.phase = 2
		return p.ops.Compute(p.sr.work)
	default:
		p.phase = 0
		p.moved++
		return p.ops.Produce(p.out, p.sr.chunk)
	}
}

type sinkState struct {
	sr      *sessionRun
	st      *sessionState
	kind    string
	in      *realrate.Queue
	got     int64
	consume bool
	ops     realrate.Ops
}

func (p *sinkState) Next(th *realrate.Thread, now time.Duration) realrate.Action {
	if p.got >= p.sr.chunks {
		p.st.done[len(p.st.done)-1] = true
		p.sr.complete(p.st, p.kind, now)
		return realrate.Exit()
	}
	if p.consume {
		p.consume = false
		return p.ops.Consume(p.in, p.sr.chunk)
	}
	p.consume = true
	p.got++
	return p.ops.Compute(p.sr.work)
}

// srcProg is the ingest stage: per chunk, one compute burst then one
// enqueue; marks its stage done and exits after the full payload.
func (sr *sessionRun) srcProg(st *sessionState, out *realrate.Queue) realrate.Program {
	var sent int64
	compute := true
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if sent >= sr.chunks {
			st.done[0] = true
			return realrate.Exit()
		}
		if compute {
			compute = false
			return realrate.Compute(sr.work)
		}
		compute = true
		sent++
		return realrate.Produce(out, sr.chunk)
	})
}

// stageProg is a transform stage: consume a chunk, process it, forward
// it.
func (sr *sessionRun) stageProg(st *sessionState, stage int, in, out *realrate.Queue) realrate.Program {
	var moved int64
	phase := 0
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		switch phase {
		case 0:
			if moved >= sr.chunks {
				st.done[stage] = true
				return realrate.Exit()
			}
			phase = 1
			return realrate.Consume(in, sr.chunk)
		case 1:
			phase = 2
			return realrate.Compute(sr.work)
		default:
			phase = 0
			moved++
			return realrate.Produce(out, sr.chunk)
		}
	})
}

// sinkProg is the delivery stage: once the full payload has been
// consumed and processed, the session is complete and its end-to-end
// latency is recorded.
func (sr *sessionRun) sinkProg(st *sessionState, kind string, in *realrate.Queue) realrate.Program {
	var got int64
	consume := true
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if got >= sr.chunks {
			st.done[len(st.done)-1] = true
			sr.complete(st, kind, now)
			return realrate.Exit()
		}
		if consume {
			consume = false
			return realrate.Consume(in, sr.chunk)
		}
		consume = true
		got++
		return realrate.Compute(sr.work)
	})
}

// complete closes one session: attainment bookkeeping, the SLO report's
// session sample, and the drained-pipeline oracle (every inter-stage
// queue conserved the exact payload — the stage-ordering invariant in
// its strongest per-session form).
func (sr *sessionRun) complete(st *sessionState, kind string, now time.Duration) {
	if st.completed || st.dead {
		return
	}
	st.completed = true
	sr.completed++
	sr.live--
	lat := now - st.arrival
	if lat <= sr.deadline {
		sr.met++
	}
	sr.r.sys.ObserveSessionLatency(kind, lat)
	for i, q := range st.queues {
		if q.Produced() != sr.payload() || q.Consumed() != sr.payload() || q.Fill() != 0 {
			sr.violate("session-stage-order", now,
				"completed session %d queue %d: produced %d, consumed %d, fill %d (payload %d)",
				st.id, i, q.Produced(), q.Consumed(), q.Fill(), sr.payload())
		}
	}
}

// killSession marks a session dead and cascade-kills its surviving
// stages. The kills are deferred through a zero-delay timer: OnExit
// fires from inside the kernel's retirement path, where a re-entrant
// Kill is not safe.
func (sr *sessionRun) killSession(st *sessionState, exiting *realrate.Thread) {
	if st.completed || st.dead {
		return
	}
	st.dead = true
	sr.dead++
	sr.live--
	for _, other := range st.threads {
		if other == exiting {
			continue
		}
		o := other
		sr.r.sys.After(0, func(now time.Duration) {
			if o.State() != "exited" {
				o.Kill()
			}
		})
	}
}

// OnExit implements realrate.Observer: a stage exiting without having
// marked itself done was shed or killed mid-payload, which kills the
// whole session — a half-delivered stream is dead, not degraded — and
// releases its surviving stages, so no thread wedges forever on a queue
// that will never fill or drain again.
func (sr *sessionRun) OnExit(now time.Duration, th *realrate.Thread) {
	ref, ok := sr.byTh[th]
	if !ok {
		return
	}
	delete(sr.byTh, th)
	if !ref.st.done[ref.stage] {
		sr.killSession(ref.st, th) // involuntary: shed or killed mid-payload
	}
	if sr.fast {
		ref.st.alive--
		if ref.st.alive == 0 && (ref.st.completed || ref.st.dead) {
			// Last thread of a terminal session: the pipeline can never be
			// touched again, so its state returns to the pool.
			sr.recycleSession(ref.st)
		}
	}
}

// violate records one session-oracle breach, capped like the checker's.
func (sr *sessionRun) violate(invariant string, now time.Duration, format string, args ...any) {
	if len(sr.violations) >= maxViolations {
		return
	}
	sr.violations = append(sr.violations, Violation{
		Invariant: invariant,
		Policy:    sr.r.policy,
		Time:      now,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// finish runs the end-of-run session oracles.
func (sr *sessionRun) finish(sys *realrate.System) {
	end := sys.Now()

	// Session conservation: every arrival is in exactly one bucket.
	if sr.started != sr.refused+sr.completed+sr.dead+sr.live {
		sr.violate("session-conservation", end,
			"started %d != refused %d + completed %d + dead %d + live %d",
			sr.started, sr.refused, sr.completed, sr.dead, sr.live)
	}
	if sr.live < 0 || sr.peakLive < sr.live {
		sr.violate("session-conservation", end,
			"live %d outside [0, peak %d]", sr.live, sr.peakLive)
	}

	// Stage ordering for sessions still in flight: stage j can never
	// have forwarded more bytes than stage j-1 released to it.
	for _, st := range sr.sess {
		if st.refused || st.dead {
			continue
		}
		for j := 1; j < len(st.queues); j++ {
			if st.queues[j].Produced() > st.queues[j-1].Consumed() {
				sr.violate("session-stage-order", end,
					"session %d: stage %d produced %d bytes but stage %d only released %d",
					st.id, j+1, st.queues[j].Produced(), j, st.queues[j-1].Consumed())
			}
		}
	}

	// SLO-report closure: exactly one end-to-end sample per completed
	// session — refused, dead, and still-live sessions contribute none
	// (their edges are open or void, not missed) — the per-kind series
	// partition the total, and the tracker's exact attainment counter
	// agrees with the runner's met count.
	rep := sys.SLO()
	if rep.Session.Samples != uint64(sr.completed) {
		sr.violate("session-slo-closure", end,
			"SLO report holds %d session samples, %d sessions completed",
			rep.Session.Samples, sr.completed)
	}
	var byKind uint64
	for _, st := range rep.Sessions {
		byKind += st.Samples
	}
	if byKind != rep.Session.Samples {
		sr.violate("session-slo-closure", end,
			"per-kind session samples sum to %d, total dimension has %d",
			byKind, rep.Session.Samples)
	}
	if sr.completed > 0 {
		want := float64(sr.met) / float64(sr.completed)
		if diff := rep.Session.Attainment - want; diff < -1e-9 || diff > 1e-9 {
			sr.violate("session-slo-closure", end,
				"SLO report attainment %.6f, runner counted %d/%d met",
				rep.Session.Attainment, sr.met, sr.completed)
		}
	}
}

// report snapshots the run's session outcome.
func (sr *sessionRun) report() SessionReport {
	rep := SessionReport{
		Started:   sr.started,
		Refused:   sr.refused,
		Completed: sr.completed,
		Dead:      sr.dead,
		Live:      sr.live,
		Met:       sr.met,
		PeakLive:  sr.peakLive,
	}
	if sr.completed > 0 {
		rep.Attainment = float64(rep.Met) / float64(rep.Completed)
	}
	if sr.started > 0 {
		rep.Goodput = float64(rep.Met) / float64(rep.Started)
	}
	return rep
}
