package gen_test

import (
	"fmt"
	"testing"
	"time"

	realrate "repro"

	"repro/internal/workload/gen"
)

// ladderCounter tallies the fault-tolerance events of one run through the
// public observer hooks.
type ladderCounter struct {
	realrate.NopObserver
	faults, degrades, recovers int
}

func (l *ladderCounter) OnFault(realrate.FaultEvent)     { l.faults++ }
func (l *ladderCounter) OnDegrade(realrate.DegradeEvent) { l.degrades++ }
func (l *ladderCounter) OnRecover(realrate.RecoverEvent) { l.recovers++ }

// TestFaultsFamilyExercisesLadder asserts the faults family is not
// vacuous: across seeds the drawn schedules actually inject, the watchdog
// actually walks threads down the degradation ladder, and they climb back
// up. Individual seeds may draw schedules too mild to demote (a freeze can
// land on a saturated signal), so the assertions aggregate.
func TestFaultsFamilyExercisesLadder(t *testing.T) {
	var injected uint64
	degrades, recovers, faultEvents := 0, 0, 0
	for seed := uint64(1); seed <= 10; seed++ {
		sp, err := gen.ForSeed("faults", seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(sp.Faults) < 2 {
			t.Fatalf("seed %d: only %d fault specs drawn", seed, len(sp.Faults))
		}
		if sp.Faults[0].Kind != realrate.FaultFreezeSignal {
			t.Fatalf("seed %d: first spec is %v, want a guaranteed freeze", seed, sp.Faults[0].Kind)
		}
		for _, f := range sp.Faults {
			if end := f.At + f.For; end > sp.Duration-200*time.Millisecond {
				t.Errorf("seed %d: fault window ends %v, inside the 200ms recovery runway of %v",
					seed, end, sp.Duration)
			}
		}
		obs := &ladderCounter{}
		res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: "rbs", Observer: obs})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Report.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
		injected += res.Health.FaultsInjected
		degrades += obs.degrades
		recovers += obs.recovers
		faultEvents += obs.faults
		if obs.degrades != res.Report.Degradations || obs.recovers != res.Report.Recoveries {
			t.Errorf("seed %d: observer saw %d/%d ladder moves, checker %d/%d",
				seed, obs.degrades, obs.recovers, res.Report.Degradations, res.Report.Recoveries)
		}
	}
	if injected == 0 {
		t.Error("no faults injected across 10 faults scenarios")
	}
	if faultEvents == 0 {
		t.Error("no OnFault events across 10 faults scenarios")
	}
	if degrades == 0 {
		t.Error("watchdog never demoted across 10 faults scenarios")
	}
	if recovers == 0 {
		t.Error("no thread ever recovered across 10 faults scenarios")
	}
}

// TestFaultsFamilyAcrossCPUCounts runs the chaos suite on multi-CPU
// machines: injected stalls must be absorbed by work-pull without
// breaking conservation, isolation, or recovery under any policy.
func TestFaultsFamilyAcrossCPUCounts(t *testing.T) {
	for _, cpus := range []int{1, 4} {
		cpus := cpus
		t.Run(fmt.Sprintf("cpus=%d", cpus), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 5; seed++ {
				violations, reports, err := gen.Check("faults", seed, gen.CheckOpts{CPUs: cpus})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, v := range violations {
					t.Errorf("seed %d: %s", seed, v)
				}
				for _, r := range reports {
					if r.Samples == 0 {
						t.Errorf("seed %d policy %s: checker never sampled", seed, r.Policy)
					}
				}
			}
		})
	}
}

// decodeFaultSchedule turns fuzz bytes into a bounded, valid fault
// schedule: at most 6 specs, windows inside [10ms, 215ms] of a 400ms run
// (leaving the bounded-recovery runway), total stall time capped so the
// work-conservation budget stays meaningful.
func decodeFaultSchedule(data []byte) []realrate.FaultSpec {
	targets := []string{"", "pipe0.s1", "paced0", "misc0", "rt0", "nosuch"}
	var (
		specs      []realrate.FaultSpec
		stallTotal time.Duration
	)
	for len(data) >= 6 && len(specs) < 6 {
		b := data[:6]
		data = data[6:]
		f := realrate.FaultSpec{
			Kind:   realrate.FaultKind(int(b[0]) % 8),
			Target: targets[int(b[4])%len(targets)],
			CPU:    int(b[5]) % 8,
			At:     time.Duration(int(b[1])%150+10) * time.Millisecond,
			For:    time.Duration(int(b[2])%50+5) * time.Millisecond,
			Mag:    float64(int(b[3])%100) / 100,
		}
		if f.Kind == realrate.FaultCPUStall {
			if stallTotal+f.For > 50*time.Millisecond {
				f.Kind = realrate.FaultDropActuation
			} else {
				stallTotal += f.For
			}
		}
		specs = append(specs, f)
	}
	return specs
}

// FuzzFaultSchedule feeds arbitrary (bounded) fault schedules to the
// faults family under every policy: whatever the schedule, the run must
// not panic and every conformance oracle — conservation, ladder pairing,
// isolation, bounded recovery — must hold.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), []byte{0, 40, 30, 50, 1, 0})
	f.Add(uint64(2), []byte{2, 10, 49, 0, 0, 0, 4, 80, 20, 0, 0, 3})
	f.Add(uint64(3), []byte{5, 60, 30, 10, 2, 1, 3, 90, 40, 0, 1, 0, 7, 20, 10, 30, 0, 5})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		sp, err := gen.ForSeed("faults", seed%16+1)
		if err != nil {
			t.Fatal(err)
		}
		sp.Duration = 400 * time.Millisecond
		sp.Faults = decodeFaultSchedule(data)
		sc := gen.Generate(sp)
		for _, pol := range gen.Policies() {
			res, err := sc.Run(gen.RunOpts{Policy: pol})
			if err != nil {
				t.Fatalf("policy %s: %v", pol, err)
			}
			for _, v := range res.Report.Violations {
				t.Errorf("policy %s: %s", pol, v)
			}
		}
	})
}
