// Package gen is the workload-breadth subsystem: a seeded, deterministic
// scenario generator that emits executable scenarios from declarative
// specs, and a cross-policy invariant harness that runs any generated
// scenario under every public scheduling policy and checks the conformance
// invariants that must hold regardless of discipline.
//
// The paper validates the feedback allocator on a handful of hand-built
// scenarios (pipeline, hog, interactive). Open-loop feedback-scheduling
// evaluations show closed-loop allocators behave qualitatively differently
// under arrival processes they did not shape, so the generator covers three
// axes the hand-built scenarios do not:
//
//   - open-loop arrival traces (Poisson, MMPP bursty, replayed CSV traces)
//     driving System.Spawn / thread exit through the public API;
//   - mixed tasksets (real-rate pipelines + reserved real-time +
//     interactive + paced + miscellaneous threads with drawn periods,
//     proportions, and queue depths);
//   - admission churn (high-rate Spawn/Kill/Renegotiate cycles near the
//     admission ceiling).
//
// Everything is derived from (family, seed) through the pinned sim.RNG, so
// a failing scenario is replayable from a single command line:
//
//	rrexp -gen -scenario churn -seed 17 -policy stride
package gen

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	realrate "repro"

	"repro/internal/sim"
)

// TaskKind classifies a generated task in the paper's Figure 2 taxonomy.
type TaskKind int

const (
	// KindMisc is a CPU-bound hog with no declared information.
	KindMisc TaskKind = iota
	// KindUnmanaged runs outside the controller entirely.
	KindUnmanaged
	// KindRealTime holds a proportion/period reservation and runs a
	// periodic burst sized to (most of) it.
	KindRealTime
	// KindInteractive blocks on a tty wait queue and handles periodic
	// events with short bursts.
	KindInteractive
	// KindPaced is a real-rate thread driven by a work-unit Pace source.
	KindPaced
)

func (k TaskKind) String() string {
	switch k {
	case KindMisc:
		return "misc"
	case KindUnmanaged:
		return "unmanaged"
	case KindRealTime:
		return "rt"
	case KindInteractive:
		return "interactive"
	case KindPaced:
		return "paced"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// parseKind is the inverse of TaskKind.String, for trace CSV decoding.
func parseKind(s string) (TaskKind, error) {
	switch s {
	case "misc":
		return KindMisc, nil
	case "unmanaged":
		return KindUnmanaged, nil
	case "rt":
		return KindRealTime, nil
	case "interactive":
		return KindInteractive, nil
	case "paced":
		return KindPaced, nil
	}
	return 0, fmt.Errorf("gen: unknown task kind %q", s)
}

// TasksetSpec sizes the initial mixed taskset. Per-task parameters
// (proportions, periods, bursts, queue depths) are drawn from the seed.
type TasksetSpec struct {
	// Pipelines is the number of real-rate pipelines: a reserved producer
	// feeding 1..MaxStages-1 real-rate stages through bounded queues.
	Pipelines int
	// MaxStages bounds the stages per pipeline (including the producer);
	// the generator draws 2..MaxStages.
	MaxStages int
	// RealTime is the number of reservation-holding periodic threads.
	RealTime int
	// Interactive is the number of tty-server threads (each paired with a
	// generated event source).
	Interactive int
	// Misc is the number of miscellaneous hogs. When PinnedHog is set the
	// first one is immortal and excluded from churn, which is what makes
	// the work-conservation invariant checkable.
	Misc int
	// Unmanaged is the number of hogs outside the controller.
	Unmanaged int
	// Paced is the number of real-rate threads driven by a work-unit pace.
	Paced int
	// PinnedHog marks the first misc hog immortal and unkillable.
	PinnedHog bool
	// PinnedPerCPU adds one immortal misc hog pinned to every CPU of the
	// machine (Spec.CPUs), anchoring the per-CPU work-conservation
	// invariant on SMP scenarios.
	PinnedPerCPU bool
}

// threads returns the rough initial thread count (pipelines count MaxStages).
func (t TasksetSpec) threads() int {
	return t.Pipelines*t.MaxStages + t.RealTime + t.Interactive + t.Misc + t.Unmanaged + t.Paced
}

// ArrivalProcess selects the open-loop arrival model.
type ArrivalProcess int

const (
	// NoArrivals: the taskset is fixed for the whole run.
	NoArrivals ArrivalProcess = iota
	// Poisson: exponential inter-arrival times at Rate per second.
	Poisson
	// MMPP: a two-phase Markov-modulated Poisson process alternating
	// between Rate (quiet) and BurstRate (burst) with exponential phase
	// sojourns of mean PhaseMean — the bursty web-serving shape.
	MMPP
	// Trace: the explicit arrival list in Trace, e.g. replayed from CSV.
	Trace
)

func (p ArrivalProcess) String() string {
	switch p {
	case NoArrivals:
		return "none"
	case Poisson:
		return "poisson"
	case MMPP:
		return "mmpp"
	case Trace:
		return "trace"
	default:
		return fmt.Sprintf("process(%d)", int(p))
	}
}

// Arrival is one open-loop task arrival.
type Arrival struct {
	At   time.Duration
	Kind TaskKind
}

// ArrivalSpec describes the open-loop arrival process.
type ArrivalSpec struct {
	Process   ArrivalProcess
	Rate      float64       // arrivals/sec (Poisson, and MMPP quiet phase)
	BurstRate float64       // arrivals/sec in the MMPP burst phase
	PhaseMean time.Duration // mean MMPP phase sojourn
	Trace     []Arrival     // explicit arrivals when Process == Trace
	// MeanLife is the mean exponential lifetime of arrived tasks; 0 means
	// they run to the end of the scenario.
	MeanLife time.Duration
	// Mix weights the kinds of arriving tasks; zero value defaults to
	// miscellaneous only.
	Mix []TaskKind
}

// ChurnSpec describes admission-churn stress: timed Spawn/Kill/Renegotiate
// cycles near the admission ceiling.
type ChurnSpec struct {
	// Rate is churn operations per second (0 disables churn).
	Rate float64
	// ReserveLo/ReserveHi bound the proportions (ppt) churn-spawned
	// reservations request; drawing near the ceiling forces rejections.
	ReserveLo, ReserveHi int
}

// SessionSpec describes the slo family's live-service workload: per-user
// sessions arriving open-loop at high rate (Poisson base + MMPP bursts +
// a diurnal envelope over simulated time), each a short multi-stage
// pipeline (ingest → transform → deliver) of threads in one job, chained
// through bounded queues, and measured against an end-to-end latency SLO
// recorded via System.ObserveSessionLatency.
type SessionSpec struct {
	// Rate is the base session arrival rate in sessions/sec (0 disables
	// sessions entirely — the zero value changes nothing for the other
	// families).
	Rate float64
	// BurstRate is the MMPP burst-phase arrival rate; at or below Rate
	// (or with PhaseMean 0) the process is pure Poisson.
	BurstRate float64
	// PhaseMean is the mean exponential MMPP phase sojourn.
	PhaseMean time.Duration
	// Diurnal is the amplitude in [0, 0.95] of a sinusoidal envelope over
	// the instantaneous arrival rate — a live service's compressed "day".
	// 0 disables the envelope.
	Diurnal float64
	// DiurnalPeriod is the envelope period (0: one period per run).
	DiurnalPeriod time.Duration
	// Stages is the pipeline depth per session, at least 2: an ingest
	// producer, Stages-2 transforms, and a delivering consumer.
	Stages int
	// Bytes is the payload each session pushes through its pipeline;
	// Chunk is the per-op granularity (both in bytes).
	Bytes, Chunk int64
	// Work is the per-chunk compute burst, in cycles, at each stage.
	Work int64
	// Deadline is the per-session end-to-end SLO the run's attainment is
	// measured against (it becomes OverloadConfig.SessionSLO).
	Deadline time.Duration
	// BestEffort is the fraction in [0, 1] of sessions spawned as
	// miscellaneous-class jobs — the shed rung's eligible victims, in
	// drawn-importance order; the rest are real-rate and never shed.
	BestEffort float64
	// MaxImportance bounds each session's drawn importance (min 1).
	MaxImportance int
	// MaxLive is the accept-backlog bound: a session arriving while
	// MaxLive sessions are already in flight is refused outright, before
	// any thread or queue exists — the front-end listen-queue drop that
	// applies under every policy, controller or not. 0 means unbounded.
	MaxLive int
}

// enabled reports whether the spec describes any sessions at all.
func (s SessionSpec) enabled() bool { return s.Rate > 0 }

// Spec is the declarative description of one generated scenario. Given the
// same Spec (same seed), Generate produces the same Scenario, and running
// it under the same policy produces a byte-identical dispatch trace.
type Spec struct {
	// Family names the generator family that drew this spec ("" for a
	// hand-built spec); it appears in names and replay command lines.
	Family string
	// Seed drives every draw.
	Seed uint64
	// Duration is the simulated run length.
	Duration time.Duration
	// CPUs is the machine's CPU count (0 means 1). The smp family draws
	// it; every family accepts an override (rrexp -cpus).
	CPUs     int
	Taskset  TasksetSpec
	Arrivals ArrivalSpec
	Churn    ChurnSpec
	// Faults is the drawn fault-injection schedule (the faults family).
	// It is fully determined by (Family, Seed), so replay regenerates it
	// instead of carrying it through the trace codec.
	Faults []realrate.FaultSpec
	// Overload marks the overload family: the runner installs a
	// fast-tripping overload governor, the generator draws misc
	// importances and hard-clamps arrival lifetimes, and the checker arms
	// the brownout-ladder oracles.
	Overload bool
	// Sessions describes the slo family's open-loop session workload
	// (zero Rate disables it). A session-bearing spec arms a lenient
	// governor in the runner and the session oracles in the checker, but
	// not the overload family's recovers-to-normal-by-end oracle —
	// session arrivals run to the end of the scenario.
	Sessions SessionSpec
}

// NumCPUs returns the normalized CPU count (at least 1).
func (s Spec) NumCPUs() int {
	if s.CPUs < 1 {
		return 1
	}
	return s.CPUs
}

// Scale returns a copy of the spec with taskset counts, arrival rates, and
// churn rates multiplied by f (0 < f <= 1). The shrinker uses it to
// minimize failing scenarios along an axis replayable from the command
// line (rrexp -gen ... -scale f).
func (s Spec) Scale(f float64) Spec {
	if f <= 0 || f > 1 {
		panic("gen: scale must be in (0, 1]")
	}
	sc := func(n int) int {
		if n == 0 {
			return 0
		}
		m := int(float64(n) * f)
		if m < 1 {
			m = 1
		}
		return m
	}
	s.Taskset.Pipelines = sc(s.Taskset.Pipelines)
	s.Taskset.RealTime = sc(s.Taskset.RealTime)
	s.Taskset.Interactive = sc(s.Taskset.Interactive)
	s.Taskset.Misc = sc(s.Taskset.Misc)
	s.Taskset.Unmanaged = sc(s.Taskset.Unmanaged)
	s.Taskset.Paced = sc(s.Taskset.Paced)
	s.Arrivals.Rate *= f
	s.Arrivals.BurstRate *= f
	s.Churn.Rate *= f
	s.Sessions.Rate *= f
	s.Sessions.BurstRate *= f
	if s.Arrivals.Process == Trace {
		keep := int(float64(len(s.Arrivals.Trace)) * f)
		s.Arrivals.Trace = s.Arrivals.Trace[:keep]
	}
	return s
}

// Families lists the scenario families ForSeed accepts, in a fixed order.
func Families() []string {
	return []string{"pipeline", "mixed", "openloop", "bursty", "churn", "trace", "smp", "faults", "overload", "slo"}
}

// ForSeed derives the declarative spec for one (family, seed) point. Every
// parameter is drawn from the pinned RNG, so the mapping is stable across
// runs and platforms.
func ForSeed(family string, seed uint64) (Spec, error) {
	// Separate the family streams: the same seed must not produce
	// correlated draws across families.
	var fam uint64
	for _, c := range family {
		fam = fam*131 + uint64(c)
	}
	rng := sim.NewRNG(seed*0x9E3779B97F4A7C15 + fam + 1)
	sp := Spec{Family: family, Seed: seed}
	ms := func(lo, hi int) time.Duration {
		return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Millisecond
	}
	n := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }

	switch family {
	case "pipeline":
		// Closed-loop, pipeline-heavy: the paper's own shape, multiplied.
		sp.Duration = ms(400, 700)
		sp.Taskset = TasksetSpec{
			Pipelines: n(1, 3), MaxStages: n(2, 4),
			Misc: n(1, 2), PinnedHog: true,
		}
	case "mixed":
		// A bit of everything: RT + real-rate + interactive + misc with a
		// slow trickle of arrivals and mild churn.
		sp.Duration = ms(400, 700)
		sp.Taskset = TasksetSpec{
			Pipelines: n(0, 2), MaxStages: 3,
			RealTime: n(1, 3), Interactive: n(1, 2),
			Misc: n(1, 2), Unmanaged: n(0, 1), Paced: n(0, 1),
			PinnedHog: true,
		}
		sp.Arrivals = ArrivalSpec{
			Process: Poisson, Rate: float64(n(5, 15)),
			MeanLife: ms(80, 150),
			Mix:      []TaskKind{KindMisc, KindRealTime, KindInteractive},
		}
		sp.Churn = ChurnSpec{Rate: float64(n(5, 20)), ReserveLo: 50, ReserveHi: 300}
	case "openloop":
		// Pure open-loop web-serving shape: short-lived arrivals over a
		// small resident set. No pinned hog: the machine may legitimately
		// idle between arrivals, so work conservation is not asserted.
		sp.Duration = ms(400, 700)
		sp.Taskset = TasksetSpec{RealTime: n(0, 2), Interactive: 1}
		sp.Arrivals = ArrivalSpec{
			Process: Poisson, Rate: float64(n(30, 80)),
			MeanLife: ms(30, 100),
			Mix:      []TaskKind{KindMisc, KindMisc, KindInteractive, KindRealTime, KindPaced},
		}
	case "bursty":
		// MMPP: quiet trickle punctuated by arrival storms.
		sp.Duration = ms(400, 700)
		sp.Taskset = TasksetSpec{Misc: 1, PinnedHog: true, RealTime: n(0, 1)}
		sp.Arrivals = ArrivalSpec{
			Process: MMPP, Rate: float64(n(2, 8)), BurstRate: float64(n(100, 250)),
			PhaseMean: ms(30, 80), MeanLife: ms(20, 60),
			Mix: []TaskKind{KindMisc, KindInteractive, KindRealTime},
		}
	case "churn":
		// Admission churn near capacity: reservations spawn, die, and
		// renegotiate at high rate against a base of RT load and hogs.
		sp.Duration = ms(400, 700)
		sp.Taskset = TasksetSpec{
			RealTime: n(2, 3), Misc: n(1, 2), PinnedHog: true,
		}
		sp.Churn = ChurnSpec{
			Rate:      float64(n(80, 200)),
			ReserveLo: 100, ReserveHi: 500,
		}
	case "trace":
		// Replayed-trace arrivals: draw a trace, round-trip it through the
		// CSV codec (so the parser is on the tested path), replay it.
		sp.Duration = ms(400, 700)
		sp.Taskset = TasksetSpec{Misc: 1, PinnedHog: true}
		mix := []TaskKind{KindMisc, KindInteractive, KindRealTime}
		raw := drawArrivals(rng, ArrivalSpec{
			Process: Poisson, Rate: float64(n(20, 60)), Mix: mix,
		}, sp.Duration)
		tr, err := roundTripTrace(raw)
		if err != nil {
			return Spec{}, fmt.Errorf("gen: trace round-trip: %w", err)
		}
		sp.Arrivals = ArrivalSpec{
			Process: Trace, Trace: tr, MeanLife: ms(40, 100), Mix: mix,
		}
	case "smp":
		// Multi-CPU machine: a pinned hog per CPU (the per-CPU
		// work-conservation anchor), mixed load with room to migrate, a
		// trickle of arrivals, and mild churn. CPUs is drawn from the
		// power-of-two ladder the invariant sweep also covers.
		sp.Duration = ms(400, 700)
		sp.CPUs = []int{2, 4, 8}[rng.Intn(3)]
		sp.Taskset = TasksetSpec{
			Pipelines: n(0, 1), MaxStages: 3,
			RealTime: n(1, 3), Interactive: n(0, 1),
			Misc: n(1, 3), Unmanaged: n(0, 2), Paced: n(0, 1),
			PinnedPerCPU: true,
		}
		sp.Arrivals = ArrivalSpec{
			Process: Poisson, Rate: float64(n(10, 30)),
			MeanLife: ms(50, 150),
			Mix:      []TaskKind{KindMisc, KindRealTime, KindInteractive},
		}
		sp.Churn = ChurnSpec{Rate: float64(n(5, 20)), ReserveLo: 50, ReserveHi: 300}
	case "faults":
		// Fault-injection chaos: a modest adaptive taskset (pipeline
		// stages and paced threads are the watchdog's clientele) under a
		// drawn schedule of signal, clock, CPU, and actuation faults.
		// Every window closes well before the end of the run, leaving the
		// bounded-recovery oracle room to watch the ladder climb back.
		sp.Duration = ms(500, 700)
		sp.Taskset = TasksetSpec{
			Pipelines: n(1, 2), MaxStages: 3,
			RealTime: n(1, 2), Misc: n(1, 2), Paced: n(0, 1),
			PinnedHog: true,
		}
		sp.Faults = drawFaults(rng, sp)
	case "overload":
		// Sustained open-loop overload: a flood of best-effort arrivals at
		// roughly twice what the machine can absorb, over a small reserved
		// base plus resident misc hogs with drawn importances (the shed
		// rung's ordered victims). The arrival window is clipped to the
		// first ~55% of the run and every lifetime is hard-clamped by the
		// runner, so demand deterministically subsides and the
		// recovers-to-normal oracle has a guaranteed settle window. No
		// pinned hog: after shedding, the machine may legitimately idle.
		sp.Duration = ms(1000, 1300)
		sp.Overload = true
		sp.Taskset = TasksetSpec{
			RealTime: n(1, 2), Misc: n(2, 4),
		}
		mix := []TaskKind{KindMisc}
		loadFor := sp.Duration * 55 / 100
		storm := drawArrivals(rng, ArrivalSpec{
			Process: Poisson, Rate: float64(n(60, 120)), Mix: mix,
		}, loadFor)
		sp.Arrivals = ArrivalSpec{
			Process: Trace, Trace: storm, MeanLife: ms(50, 90), Mix: mix,
		}
	case "slo":
		// Live-service shape: open-loop per-user sessions (Poisson base +
		// MMPP bursts + a diurnal envelope), each a short
		// ingest→transform→deliver pipeline in one job with an end-to-end
		// deadline and a drawn importance, over a small resident base. The
		// runner arms a lenient governor, so burst peaks drive admission
		// refusals and importance-ordered shedding of the best-effort
		// session slice — this family's steady state, not a fault. No
		// pinned hog: the machine may idle between diurnal peaks.
		sp.Duration = ms(900, 1200)
		sp.Taskset = TasksetSpec{RealTime: n(0, 1), Misc: n(1, 2)}
		sp.Sessions = SessionSpec{
			Rate:          float64(n(60, 140)),
			BurstRate:     float64(n(250, 450)),
			PhaseMean:     ms(40, 90),
			Diurnal:       float64(n(3, 7)) / 10,
			Stages:        n(2, 4),
			Bytes:         int64(n(2, 6)) * 256,
			Chunk:         256,
			Work:          int64(n(20, 60)) * 1000,
			Deadline:      ms(40, 90),
			BestEffort:    float64(n(3, 6)) / 10,
			MaxImportance: 9,
			MaxLive:       n(50, 150),
		}
	default:
		return Spec{}, fmt.Errorf("gen: unknown scenario family %q (have %v)", family, Families())
	}
	return sp, nil
}

// drawSessionArrivals realizes the session arrival process: candidate
// instants at the peak instantaneous rate, thinned against the actual
// rate at each instant — the MMPP phase (Poisson base / burst) times the
// diurnal envelope 1 + Diurnal·sin(2πt/period). Thinning keeps the draw
// stream fixed-length-free and exactly reproducible: every accept/reject
// consumes the same pinned RNG stream regardless of which branch wins.
func drawSessionArrivals(rng *sim.RNG, s SessionSpec, dur time.Duration) []time.Duration {
	if !s.enabled() || dur <= 0 {
		return nil
	}
	base, burst := s.Rate, s.BurstRate
	mmpp := burst > base && s.PhaseMean > 0
	if burst < base {
		burst = base
	}
	amp := math.Min(math.Max(s.Diurnal, 0), 0.95)
	period := s.DiurnalPeriod
	if period <= 0 {
		period = dur
	}
	peak := burst * (1 + amp)
	inBurst := false
	nextSwitch := dur + time.Second // unreachable without MMPP phases
	if mmpp {
		nextSwitch = time.Duration(rng.Exp(float64(s.PhaseMean)))
	}
	var out []time.Duration
	t := time.Duration(0)
	for {
		t += time.Duration(rng.Exp(float64(time.Second) / peak))
		if t >= dur {
			return out
		}
		for mmpp && t >= nextSwitch {
			inBurst = !inBurst
			nextSwitch += time.Duration(rng.Exp(float64(s.PhaseMean)))
		}
		r := base
		if inBurst {
			r = burst
		}
		r *= 1 + amp*math.Sin(2*math.Pi*float64(t)/float64(period))
		if rng.Float64()*peak < r {
			out = append(out, t)
		}
	}
}

// drawFaults draws the faults family's schedule: a guaranteed mid-run
// signal freeze on a pipeline stage (the fault that actually walks the
// watchdog down the degradation ladder) plus 1–4 further specs across the
// taxonomy, with at most one CPU stall and one tick-jitter window. Signal
// and actuation faults aim only at adaptive (real-rate) threads that
// certainly exist in the generated taskset; stalls and jitter are
// machine-wide. Every window ends at least 200 ms before the run does, so
// the bounded-recovery oracle has runway to observe the climb back to the
// healthy rung.
func drawFaults(rng *sim.RNG, sp Spec) []realrate.FaultSpec {
	n := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }
	targets := []string{"pipe0.s1"}
	if sp.Taskset.Pipelines > 1 {
		targets = append(targets, "pipe1.s1")
	}
	if sp.Taskset.Paced > 0 {
		targets = append(targets, "paced0")
	}
	target := func() string { return targets[rng.Intn(len(targets))] }
	window := func(loMS, hiMS int) (at, dur time.Duration) {
		dur = time.Duration(n(loMS, hiMS)) * time.Millisecond
		last := int((sp.Duration - dur - 200*time.Millisecond) / time.Millisecond)
		if last < 50 {
			last = 50
		}
		return time.Duration(n(50, last)) * time.Millisecond, dur
	}

	at, dur := window(100, 200)
	specs := []realrate.FaultSpec{{
		Kind: realrate.FaultFreezeSignal, Target: "pipe0.s1", At: at, For: dur,
	}}
	stalls, jitters := 0, 0
	for extra := n(1, 4); extra > 0; extra-- {
		at, dur := window(30, 120)
		f := realrate.FaultSpec{At: at, For: dur}
		switch n(0, 7) {
		case 0:
			f.Kind, f.Target = realrate.FaultFreezeSignal, target()
		case 1:
			f.Kind, f.Target = realrate.FaultJumpSignal, target()
			f.Mag = 0.2 + 0.6*rng.Float64()
		case 2:
			f.Kind, f.Target = realrate.FaultBadSignal, target()
			f.Mag = 0.4
		case 3:
			f.Kind, f.Target = realrate.FaultStuckThread, target()
		case 4:
			f.Kind, f.Target = realrate.FaultDropActuation, target()
		case 5:
			f.Kind, f.Target = realrate.FaultDelayActuation, target()
		case 6:
			if stalls > 0 {
				f.Kind, f.Target = realrate.FaultDropActuation, target()
				break
			}
			stalls++
			f.Kind = realrate.FaultCPUStall
			f.CPU = rng.Intn(8) // remapped onto the actual machine by Run
			if f.For > 60*time.Millisecond {
				f.For = 60 * time.Millisecond // bound the idle a stall can force
			}
		default:
			if jitters > 0 {
				f.Kind, f.Target = realrate.FaultDelayActuation, target()
				break
			}
			jitters++
			f.Kind = realrate.FaultTickJitter
			f.Mag = 0.2 + 0.3*rng.Float64()
		}
		specs = append(specs, f)
	}
	return specs
}

// drawArrivals realizes an arrival process over [0, dur) as a concrete
// arrival list. Trace specs are returned as-is (clipped to dur).
func drawArrivals(rng *sim.RNG, a ArrivalSpec, dur time.Duration) []Arrival {
	mix := a.Mix
	if len(mix) == 0 {
		mix = []TaskKind{KindMisc}
	}
	var out []Arrival
	switch a.Process {
	case NoArrivals:
	case Trace:
		for _, ar := range a.Trace {
			if ar.At < dur {
				out = append(out, ar)
			}
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	case Poisson:
		if a.Rate <= 0 {
			break
		}
		t := time.Duration(rng.Exp(float64(time.Second) / a.Rate))
		for t < dur {
			out = append(out, Arrival{At: t, Kind: mix[rng.Intn(len(mix))]})
			t += time.Duration(rng.Exp(float64(time.Second) / a.Rate))
		}
	case MMPP:
		if a.Rate <= 0 || a.BurstRate <= 0 || a.PhaseMean <= 0 {
			break
		}
		var t time.Duration
		burst := false
		phaseEnd := time.Duration(rng.Exp(float64(a.PhaseMean)))
		for t < dur {
			rate := a.Rate
			if burst {
				rate = a.BurstRate
			}
			t += time.Duration(rng.Exp(float64(time.Second) / rate))
			for t >= phaseEnd && phaseEnd < dur {
				// Phase switch; re-draw the sojourn. Arrival times drawn
				// across the boundary keep the old rate — acceptable for a
				// workload model and simpler to keep deterministic.
				burst = !burst
				phaseEnd += time.Duration(rng.Exp(float64(a.PhaseMean)))
			}
			if t < dur {
				out = append(out, Arrival{At: t, Kind: mix[rng.Intn(len(mix))]})
			}
		}
	}
	return out
}

// WriteTraceCSV encodes an arrival trace as CSV: one "time_us,kind" row per
// arrival, with a header.
func WriteTraceCSV(w io.Writer, trace []Arrival) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_us", "kind"}); err != nil {
		return err
	}
	for _, a := range trace {
		err := cw.Write([]string{
			strconv.FormatInt(a.At.Microseconds(), 10), a.Kind.String(),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseTraceCSV decodes a trace written by WriteTraceCSV (or by hand): a
// header row followed by "time_us,kind" rows. Rows must be time-ordered.
func ParseTraceCSV(r io.Reader) ([]Arrival, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("gen: trace csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("gen: empty trace")
	}
	var out []Arrival
	for i, row := range rows[1:] {
		us, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: trace row %d: bad time %q", i+2, row[0])
		}
		kind, err := parseKind(row[1])
		if err != nil {
			return nil, fmt.Errorf("gen: trace row %d: %w", i+2, err)
		}
		at := time.Duration(us) * time.Microsecond
		if len(out) > 0 && at < out[len(out)-1].At {
			return nil, fmt.Errorf("gen: trace row %d: out of order", i+2)
		}
		out = append(out, Arrival{At: at, Kind: kind})
	}
	return out, nil
}

// roundTripTrace pushes a trace through the CSV codec, so the "trace"
// family exercises the parser on every generated scenario.
func roundTripTrace(trace []Arrival) ([]Arrival, error) {
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, trace); err != nil {
		return nil, err
	}
	return ParseTraceCSV(&buf)
}
