package gen_test

import (
	"errors"
	"fmt"
	"testing"

	realrate "repro"

	"repro/internal/workload/gen"
)

// governorCounter tallies the overload governor's events of one run
// through the public observer hooks.
type governorCounter struct {
	realrate.NopObserver
	overloads, sheds int
	typedRejects     int
	maxRung          string
}

func (g *governorCounter) OnOverload(ev realrate.OverloadEvent) {
	g.overloads++
	if rungOrder(ev.To) > rungOrder(g.maxRung) {
		g.maxRung = ev.To
	}
}

func (g *governorCounter) OnShed(ev realrate.ShedEvent) { g.sheds++ }

func (g *governorCounter) OnAdmission(ev realrate.AdmissionEvent) {
	var oe *realrate.OverloadError
	if !ev.Accepted && errors.As(ev.Err, &oe) {
		g.typedRejects++
	}
}

func rungOrder(name string) int {
	switch name {
	case "throttle":
		return 1
	case "shed":
		return 2
	case "freeze":
		return 3
	}
	return 0
}

// TestOverloadFamilyExercisesGovernor asserts the overload family is not
// vacuous: across seeds the arrival storms actually trip the brownout
// ladder, admissions are actually refused with the typed *OverloadError,
// threads are actually shed — and every single run still unwinds the
// ladder back to normal before the end (the per-run recovery oracle in
// the checker). Individual seeds may draw storms too mild to reach the
// shed rung, so the activity assertions aggregate.
func TestOverloadFamilyExercisesGovernor(t *testing.T) {
	overloads, sheds, typed := 0, 0, 0
	var throttled uint64
	for seed := uint64(1); seed <= 10; seed++ {
		sp, err := gen.ForSeed("overload", seed)
		if err != nil {
			t.Fatal(err)
		}
		if !sp.Overload {
			t.Fatalf("seed %d: overload spec without the Overload flag", seed)
		}
		obs := &governorCounter{}
		res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: "rbs", Observer: obs})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Report.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
		if res.Report.FinalRung != "normal" {
			t.Errorf("seed %d: run ended at rung %q, want normal", seed, res.Report.FinalRung)
		}
		if obs.overloads != res.Report.OverloadEvents || obs.sheds != res.Report.Sheds {
			t.Errorf("seed %d: observer saw %d/%d governor events, checker %d/%d",
				seed, obs.overloads, obs.sheds, res.Report.OverloadEvents, res.Report.Sheds)
		}
		overloads += obs.overloads
		sheds += obs.sheds
		typed += obs.typedRejects
		throttled += res.Report.Throttled
	}
	if overloads == 0 {
		t.Error("the brownout ladder never moved across 10 overload scenarios")
	}
	if throttled == 0 {
		t.Error("no admission was ever throttled across 10 overload scenarios")
	}
	if typed == 0 {
		t.Error("no rejection ever carried a typed *OverloadError across 10 overload scenarios")
	}
	if sheds == 0 {
		t.Error("no thread was ever shed across 10 overload scenarios")
	}
}

// TestOverloadFamilyAcrossCPUCounts runs the storm suite on single- and
// multi-CPU machines under every policy: whatever the machine shape, the
// conformance oracles — shed ordering, ladder chaining, typed errors,
// bounded recovery — must hold, and baseline policies (no governor) must
// never see governor activity.
func TestOverloadFamilyAcrossCPUCounts(t *testing.T) {
	for _, cpus := range []int{1, 4} {
		cpus := cpus
		t.Run(fmt.Sprintf("cpus=%d", cpus), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 5; seed++ {
				violations, reports, err := gen.Check("overload", seed, gen.CheckOpts{CPUs: cpus})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, v := range violations {
					t.Errorf("seed %d: %s", seed, v)
				}
				for _, r := range reports {
					if r.Samples == 0 {
						t.Errorf("seed %d policy %s: checker never sampled", seed, r.Policy)
					}
					if r.Policy != "rbs" && (r.OverloadEvents > 0 || r.Sheds > 0) {
						t.Errorf("seed %d policy %s: governor activity without a controller (%d events, %d sheds)",
							seed, r.Policy, r.OverloadEvents, r.Sheds)
					}
				}
			}
		})
	}
}
