package gen

import (
	"errors"
	"fmt"
	"time"

	realrate "repro"
)

// Violation is one invariant breach observed while running a scenario.
type Violation struct {
	// Invariant is the short name of the breached invariant.
	Invariant string
	// Policy is the scheduling discipline the scenario ran under.
	Policy string
	// Time is the simulated instant of detection (post-run checks use the
	// scenario end time).
	Time time.Duration
	// Detail is a human-readable description.
	Detail string
	// Replay, when set by the harness, is the rrexp command line that
	// reproduces the failing scenario deterministically.
	Replay string
}

func (v Violation) String() string {
	s := fmt.Sprintf("[%s/%s @%v] %s", v.Invariant, v.Policy, v.Time, v.Detail)
	if v.Replay != "" {
		s += "\n    replay: " + v.Replay
	}
	return s
}

// Report aggregates one scenario execution.
type Report struct {
	Policy        string
	Threads       int // successfully spawned, arrivals and churn included
	SpawnRejected int // spawns refused (admission control or bad options)
	Exits         int
	Kills         int
	AdmitOK       int
	AdmitRejected int
	QualityEvents int
	Samples       int
	// FaultEvents, Degradations, and Recoveries count the fault-tolerance
	// activity observed through the public hooks (zero outside the faults
	// family).
	FaultEvents  int
	Degradations int
	Recoveries   int
	// OverloadEvents, Sheds, and Throttled count the overload governor's
	// activity (zero outside the overload family); MaxRung and FinalRung
	// are the highest and last brownout rungs observed.
	OverloadEvents int
	Sheds          int
	Throttled      uint64
	MaxRung        string
	FinalRung      string
	// Sessions summarizes the slo family's per-user session outcomes
	// (zero outside it).
	Sessions   SessionReport
	Violations []Violation
	// TruncatedViolations counts breaches beyond the recording cap.
	TruncatedViolations int
	// CtlStats is the control plane's per-shard counter snapshot at run
	// end (one synthesized shard under the classic controller, nil under
	// baselines).
	CtlStats []realrate.ShardStat
}

// maxViolations caps recorded breaches per run: a broken invariant tends to
// fire every sample, and 40 instances identify it as well as 4000.
const maxViolations = 40

// sampleInterval is the checker's observation period; it matches the
// controller interval so feedback windows line up with control decisions.
const sampleInterval = 10 * time.Millisecond

// feedbackWindow is the number of samples over which the RBS feedback
// properties are judged.
const feedbackWindow = 12

// faultSettle is the post-window margin inside which the fault-sensitive
// oracles stay suspended: a demoted job needs WatchdogRecovery good
// intervals per rung to climb back, plus filter re-convergence.
const faultSettle = 150 * time.Millisecond

// overloadThreshold mirrors the default admission/squish ceiling of the
// zero-value realrate.Config the harness runs under (the spare 100 ppt
// covers scheduling and interrupt overhead).
const overloadThreshold = 900

// feedbackSample is one per-thread observation.
type feedbackSample struct {
	q        float64 // cumulative pressure Q_t
	desired  int
	alloc    int
	squished bool
	cpu      time.Duration
}

// trackedThread is the checker's view of one spawned thread.
type trackedThread struct {
	th     *realrate.Thread
	name   string
	exited bool
	exits  int
	killed bool
	pinned bool
	// cpuPin is the CPU the thread was spawned with Affinity on (-1:
	// unpinned). A pinned thread must only ever dispatch there.
	cpuPin int
	// rtProp is the currently negotiated reservation for RT threads under
	// RBS (0 otherwise); Allocation must equal it at every sample.
	rtProp int
	// realRate marks threads whose desired allocation is the controller's
	// clamp(K·Q) — the feedback-tracking invariant applies to them.
	realRate bool
	window   []feedbackSample
	// allocEWMA smooths the allocation over roughly the last third of a
	// second (α=0.03 per 10 ms sample). End-of-run snapshots read this
	// instead of the instantaneous value: squish transients and the event
	// plane's staleness windows make any single instant noisy.
	allocEWMA float64
	ewmaSeen  bool
}

// checker observes one scenario execution and accumulates violations. It
// implements realrate.Observer and additionally samples system state every
// control interval.
type checker struct {
	sys    *realrate.System
	policy string
	sc     *Scenario
	rbs    bool

	queues  []*realrate.Queue
	tracked []*trackedThread
	byTh    map[*realrate.Thread]*trackedThread

	admitOK, admitRej int
	spawnRejected     int
	exits, kills      int
	quality           int
	samples           int
	overCommitStreak  int
	lastAdmitOK       int

	// cpus is the machine's CPU count; migrations counts OnMigration
	// events for the migration-bookkeeping invariant.
	cpus       int
	migrations uint64

	// Fault-tolerance oracles (the faults family). faultSpecs is the
	// planned schedule; faultTargets the thread names it aims at;
	// globalFault is set when any spec matches every thread (Target ""
	// signal/actuation faults, CPU stalls, tick jitter). degradeDepth
	// tracks each thread's net rungs down the ladder via the
	// OnDegrade/OnRecover pairing; stallTotal widens the work-conservation
	// idle budget; lastSignalFaultEnd anchors the bounded-recovery check.
	faultSpecs         []realrate.FaultSpec
	faultTargets       map[string]bool
	actTargets         map[string]bool
	globalFault        bool
	globalActFault     bool
	hasActFaults       bool
	degradeDepth       map[string]int
	faultEvents        int
	degrades, recovers int
	stallTotal         time.Duration
	lastSignalFaultEnd time.Duration

	// Overload-governor oracles. overload mirrors Spec.Overload and gates
	// the recovery-to-normal oracle (only the overload family's storm
	// provably subsides); governed is true whenever a governor is armed at
	// all — the overload family OR the slo session family — and gates the
	// event-legality checks. rung tracks the ladder through OnOverload
	// events (the governor starts at normal, so "" means "no movement
	// yet"); maxRung is the deepest rung seen.
	overload       bool
	governed       bool
	overloadEvents int
	sheds          int
	rung           string
	maxRung        string

	violations []Violation
	truncated  int
}

func newChecker(sys *realrate.System, policy string, sc *Scenario) *checker {
	c := &checker{
		sys:          sys,
		policy:       policy,
		sc:           sc,
		rbs:          policy == "rbs",
		byTh:         make(map[*realrate.Thread]*trackedThread),
		cpus:         sys.CPUs(),
		faultSpecs:   sc.Spec.Faults,
		faultTargets: make(map[string]bool),
		actTargets:   make(map[string]bool),
		degradeDepth: make(map[string]int),
		overload:     sc.Spec.Overload,
		governed:     sc.Spec.Overload || sc.Spec.Sessions.enabled(),
		rung:         "normal",
		maxRung:      "normal",
	}
	for _, f := range sc.Spec.Faults {
		if f.Target == "" {
			c.globalFault = true
		} else {
			c.faultTargets[f.Target] = true
		}
		switch f.Kind {
		case realrate.FaultCPUStall:
			c.stallTotal += f.For
		case realrate.FaultDropActuation, realrate.FaultDelayActuation:
			c.hasActFaults = true
			if f.Target == "" {
				c.globalActFault = true
			} else {
				c.actTargets[f.Target] = true
			}
		case realrate.FaultFreezeSignal, realrate.FaultJumpSignal,
			realrate.FaultBadSignal, realrate.FaultStuckThread:
			if end := f.At + f.For; end > c.lastSignalFaultEnd {
				c.lastSignalFaultEnd = end
			}
		}
	}
	return c
}

// inFaultWindow reports whether now falls inside any planned fault window
// (with the settle margin): the fault-sensitive oracles are suspended
// there — a frozen or perturbed signal legitimately decouples desire from
// the observed pressure trend, and a degraded job tracks its fallback.
func (c *checker) inFaultWindow(now time.Duration) bool {
	for _, f := range c.faultSpecs {
		if now >= f.At && now < f.At+f.For+faultSettle {
			return true
		}
	}
	return false
}

// actExempt reports whether an actuation fault can explain thread name's
// allocation diverging from the controller's intent.
func (c *checker) actExempt(name string) bool {
	return c.hasActFaults && (c.globalActFault || c.actTargets[name])
}

// violate records a breach, capped.
func (c *checker) violate(invariant string, now time.Duration, format string, args ...any) {
	if len(c.violations) >= maxViolations {
		c.truncated++
		return
	}
	c.violations = append(c.violations, Violation{
		Invariant: invariant,
		Policy:    c.policy,
		Time:      now,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// spawned records a public Spawn outcome. cpuPin is the Affinity CPU the
// spawn requested, or -1. Like every bookkeeping mutator below it is
// nil-receiver safe: RunOpts.NoInvariants runs with no checker at all.
func (c *checker) spawned(th *realrate.Thread, err error, pinned bool, cpuPin int) {
	if c == nil {
		return
	}
	if err != nil {
		c.spawnRejected++
		return
	}
	tt := &trackedThread{th: th, name: th.Name(), pinned: pinned, cpuPin: cpuPin}
	c.tracked = append(c.tracked, tt)
	c.byTh[th] = tt
}

// watchQueue adds a queue to the conservation checks.
func (c *checker) watchQueue(q *realrate.Queue) {
	if c == nil {
		return
	}
	c.queues = append(c.queues, q)
}

// watchRealRate marks a thread for the feedback-tracking invariant.
func (c *checker) watchRealRate(th *realrate.Thread, err error) {
	if c == nil || err != nil || th == nil || !c.rbs {
		return
	}
	if tt := c.byTh[th]; tt != nil {
		tt.realRate = true
	}
}

// setNegotiated records the reservation an RT thread currently holds.
func (c *checker) setNegotiated(th *realrate.Thread, prop int) {
	if c == nil {
		return
	}
	if tt := c.byTh[th]; tt != nil && c.rbs {
		tt.rtProp = prop
	}
}

// killed records a forced removal.
func (c *checker) killed(th *realrate.Thread, now time.Duration) {
	if c == nil {
		return
	}
	c.kills++
	if tt := c.byTh[th]; tt != nil {
		tt.killed = true
	}
}

// --- realrate.Observer ---

// OnDispatch implements realrate.Observer.
func (c *checker) OnDispatch(now time.Duration, th *realrate.Thread, cpu int) {
	if cpu < 0 || cpu >= c.cpus {
		c.violate("cpu-range", now, "dispatch on CPU %d outside [0,%d)", cpu, c.cpus)
	}
	if th == nil {
		return // the controller's own thread has no public handle
	}
	tt := c.byTh[th]
	if tt == nil {
		return
	}
	if tt.exited {
		c.violate("dispatch-after-exit", now, "thread %s dispatched after retirement", tt.name)
	}
	if tt.cpuPin >= 0 && cpu != tt.cpuPin {
		c.violate("affinity", now, "thread %s pinned to CPU %d but dispatched on CPU %d",
			tt.name, tt.cpuPin, cpu)
	}
}

// OnMigration implements realrate.Observer: every migration must be
// between two distinct valid CPUs and must never move a pinned thread.
// The counts are reconciled against the kernel's books in finish.
func (c *checker) OnMigration(now time.Duration, th *realrate.Thread, from, to int) {
	c.migrations++
	if from == to || from < 0 || to < 0 || from >= c.cpus || to >= c.cpus {
		c.violate("migration-bookkeeping", now, "migration %d -> %d outside the %d-CPU machine", from, to, c.cpus)
	}
	if th != nil {
		if tt := c.byTh[th]; tt != nil && tt.cpuPin >= 0 {
			c.violate("affinity", now, "pinned thread %s migrated %d -> %d", tt.name, from, to)
		}
	}
}

// OnActuation implements realrate.Observer. An actuation that cannot be
// resolved to a public handle means the controller actuated a job whose
// thread already retired (stale byKern or a missed reap).
func (c *checker) OnActuation(now time.Duration, th *realrate.Thread, prop int, period time.Duration) {
	if prop < 0 {
		c.violate("floor", now, "negative actuation %d ppt", prop)
	}
	if period <= 0 {
		c.violate("floor", now, "non-positive actuated period %v", period)
	}
	if th == nil {
		c.violate("actuation-unindexed", now, "actuation of %d ppt for an unindexed thread", prop)
		return
	}
	if tt := c.byTh[th]; tt != nil && tt.exited {
		c.violate("actuation-after-exit", now, "thread %s actuated after retirement", tt.name)
	}
}

// OnQuality implements realrate.Observer.
func (c *checker) OnQuality(ev realrate.QualityEvent) { c.quality++ }

// OnAdmission implements realrate.Observer. Every rejection must carry
// one of the typed public errors — *AdmissionError, *ReservationError, or
// *OverloadError — and an overload rejection is only legal when a
// governor is actually installed (the overload family under RBS) and must
// carry a positive retry-after hint.
func (c *checker) OnAdmission(ev realrate.AdmissionEvent) {
	if ev.Accepted {
		c.admitOK++
		return
	}
	c.admitRej++
	if ev.Err == nil {
		c.violate("admission", ev.Time, "rejection without error for %d ppt", ev.Requested)
		return
	}
	var (
		ae *realrate.AdmissionError
		re *realrate.ReservationError
		oe *realrate.OverloadError
	)
	switch {
	case errors.As(ev.Err, &oe):
		if !c.governed || !c.rbs {
			c.violate("overload-unplanned", ev.Time,
				"OverloadError %q without a governor (governed=%v policy=%s)", ev.Err, c.governed, c.policy)
		}
		if oe.RetryAfter <= 0 {
			c.violate("overload-backpressure", ev.Time,
				"OverloadError at rung %q with non-positive retry-after %v", oe.Rung, oe.RetryAfter)
		}
	case errors.As(ev.Err, &ae), errors.As(ev.Err, &re):
	default:
		c.violate("typed-error", ev.Time, "rejection with untyped error %T: %v", ev.Err, ev.Err)
	}
}

// OnExit implements realrate.Observer.
func (c *checker) OnExit(now time.Duration, th *realrate.Thread) {
	c.exits++
	tt := c.byTh[th]
	if tt == nil {
		c.violate("exit-unknown", now, "OnExit for a thread never spawned publicly")
		return
	}
	tt.exits++
	if tt.exits > 1 {
		c.violate("double-exit", now, "thread %s exited %d times", tt.name, tt.exits)
	}
	if tt.pinned {
		c.violate("lost-thread", now, "pinned hog %s exited", tt.name)
	}
	tt.exited = true
}

// OnFault implements realrate.Observer. In a scenario with no fault plan
// any fault event is an anomaly: the controller detected garbage nobody
// injected.
func (c *checker) OnFault(ev realrate.FaultEvent) {
	c.faultEvents++
	if len(c.faultSpecs) == 0 {
		c.violate("fault-unplanned", ev.Time, "fault %q (%s) without a fault plan",
			ev.Kind, ev.Detail)
	}
}

// OnDegrade implements realrate.Observer: only the feedback controller's
// watchdog demotes, so baselines must never degrade; depth is bounded by
// the ladder's two lower rungs; and — absent machine-wide faults — only
// threads the plan targets may degrade (fault isolation).
func (c *checker) OnDegrade(ev realrate.DegradeEvent) {
	c.degrades++
	if !c.rbs {
		c.violate("ladder-pairing", ev.Time, "OnDegrade under policy %s (no controller runs)", c.policy)
		return
	}
	name := "?"
	if ev.Thread != nil {
		name = ev.Thread.Name()
	}
	c.degradeDepth[name]++
	if d := c.degradeDepth[name]; d > 2 {
		c.violate("ladder-pairing", ev.Time, "thread %s demoted below the misc rung (depth %d)", name, d)
	}
	if !c.globalFault && !c.faultTargets[name] {
		c.violate("fault-isolation", ev.Time, "thread %s degraded but no planned fault targets it", name)
	}
}

// OnRecover implements realrate.Observer: every promotion pairs with an
// earlier demotion of the same thread.
func (c *checker) OnRecover(ev realrate.RecoverEvent) {
	c.recovers++
	name := "?"
	if ev.Thread != nil {
		name = ev.Thread.Name()
	}
	c.degradeDepth[name]--
	if c.degradeDepth[name] < 0 {
		c.violate("ladder-pairing", ev.Time, "thread %s recovered without a matching degrade", name)
	}
}

// rungLevel orders the brownout ladder for the one-step-at-a-time check.
func rungLevel(name string) int {
	switch name {
	case "normal":
		return 0
	case "throttle":
		return 1
	case "shed":
		return 2
	case "freeze":
		return 3
	}
	return -1
}

// OnOverload implements realrate.Observer: ladder movements only happen
// with a governor installed, move exactly one rung at a time, and chain —
// each movement starts from the rung the previous one ended on.
func (c *checker) OnOverload(ev realrate.OverloadEvent) {
	c.overloadEvents++
	if !c.governed || !c.rbs {
		c.violate("overload-unplanned", ev.Time,
			"OnOverload %s -> %s without a governor (governed=%v policy=%s)",
			ev.From, ev.To, c.governed, c.policy)
		return
	}
	from, to := rungLevel(ev.From), rungLevel(ev.To)
	if from < 0 || to < 0 {
		c.violate("overload-ladder", ev.Time, "unknown rung in movement %q -> %q", ev.From, ev.To)
		return
	}
	if d := to - from; d != 1 && d != -1 {
		c.violate("overload-ladder", ev.Time, "ladder moved %d rungs at once (%s -> %s)", d, ev.From, ev.To)
	}
	if ev.From != c.rung {
		c.violate("overload-ladder", ev.Time,
			"movement starts at %q but the ladder was last seen at %q", ev.From, c.rung)
	}
	c.rung = ev.To
	if rungLevel(ev.To) > rungLevel(c.maxRung) {
		c.maxRung = ev.To
	}
}

// OnShed implements realrate.Observer: the governor only sheds
// miscellaneous threads (reservations, real-rate pipelines, and
// interactive threads are never touched), only at the shed rung or above,
// and always a minimum-importance victim among the live miscellaneous
// threads.
func (c *checker) OnShed(ev realrate.ShedEvent) {
	c.sheds++
	if !c.governed || !c.rbs {
		c.violate("overload-unplanned", ev.Time,
			"OnShed without a governor (governed=%v policy=%s)", c.governed, c.policy)
		return
	}
	name := "?"
	if ev.Thread != nil {
		name = ev.Thread.Name()
	}
	if ev.Class != "miscellaneous" {
		c.violate("shed-class", ev.Time, "shed %s of class %q (only miscellaneous may be shed)",
			name, ev.Class)
	}
	if rungLevel(ev.Rung) < rungLevel("shed") {
		c.violate("overload-ladder", ev.Time, "shed of %s at rung %q (below shed)", name, ev.Rung)
	}
	// Importance order: the event fires before the victim retires, so the
	// victim itself is still live and the minimum includes it.
	for _, tt := range c.tracked {
		if tt.exited || tt.th.State() == "exited" || tt.th.Class() != "miscellaneous" {
			continue
		}
		if imp := tt.th.Importance(); imp < ev.Importance {
			c.violate("shed-order", ev.Time,
				"shed %s (importance %.1f) while %s (importance %.1f) was live",
				name, ev.Importance, tt.name, imp)
		}
	}
}

// startSampling arms the periodic observation.
func (c *checker) startSampling() {
	if c == nil {
		return
	}
	c.sys.Every(sampleInterval, c.sample)
}

// sample is one periodic observation: queue conservation, no-dual-run,
// admission accounting, floors, and the RBS feedback windows.
func (c *checker) sample(now time.Duration) {
	c.samples++
	c.checkQueues(now)
	if c.cpus > 1 {
		c.checkNoDualRun(now)
	}
	if !c.rbs {
		return
	}
	// Admission never over-commits — in the paper's sense. Hard
	// reservations are admitted against the threshold counting only the
	// FLOORS of squishable jobs, so the instantaneous policy total may
	// transiently exceed the machine between an admission and the next
	// squish; under sustained churn every interval can re-create a fresh
	// overshoot. What must hold: the squish reclaims within a control
	// interval — the total cannot stay above the machine across intervals
	// in which nothing new was admitted — and the live hard reservations
	// alone never exceed the admission ceiling.
	// Inside an actuation-fault window the controller's pushes are being
	// dropped or deferred by design, so allocations lag its intent: the
	// squish-reclaim and per-thread allocation oracles are suspended for
	// the affected threads until the window (plus settle) closes.
	actFault := c.hasActFaults && c.inFaultWindow(now)
	machine := realrate.PPT * c.cpus
	if tp := c.sys.TotalProportion(); tp > machine && !actFault {
		if c.admitOK != c.lastAdmitOK {
			c.overCommitStreak = 0 // fresh admission: a new transient is allowed
		}
		c.overCommitStreak++
		if c.overCommitStreak >= 3 {
			c.violate("over-commit", now,
				"total proportion %d ppt > %d across %d admission-free intervals (squish failed to reclaim)",
				tp, machine, c.overCommitStreak)
		}
	} else {
		c.overCommitStreak = 0
	}
	c.lastAdmitOK = c.admitOK
	rtSum := 0
	for _, tt := range c.tracked {
		if !tt.exited {
			rtSum += tt.rtProp
		}
	}
	if ceiling := overloadThreshold * c.cpus; rtSum > ceiling {
		c.violate("over-commit", now,
			"live hard reservations sum to %d ppt > admission ceiling %d", rtSum, ceiling)
	}
	for _, tt := range c.tracked {
		if tt.exited {
			continue
		}
		alloc := tt.th.Allocation()
		if !tt.ewmaSeen {
			tt.allocEWMA, tt.ewmaSeen = float64(alloc), true
		} else {
			tt.allocEWMA += 0.03 * (float64(alloc) - tt.allocEWMA)
		}
		if alloc < 0 {
			c.violate("floor", now, "thread %s allocation %d < 0", tt.name, alloc)
		}
		exempt := actFault && c.actExempt(tt.name)
		// Squish preserves floors: an unsquished job with a positive
		// desire is never starved to zero.
		if !tt.th.Squished() && tt.th.Desired() > 0 && alloc == 0 &&
			tt.th.Class() != "unmanaged" && !exempt {
			c.violate("floor", now, "thread %s unsquished with desired %d but zero allocation",
				tt.name, tt.th.Desired())
		}
		// Reservations are exact: an admitted RT thread holds precisely
		// what it negotiated, at every instant.
		if tt.rtProp > 0 && alloc != tt.rtProp && !exempt {
			c.violate("reservation", now, "rt thread %s allocated %d ppt, negotiated %d",
				tt.name, alloc, tt.rtProp)
		}
		if tt.realRate {
			c.feedbackSample(tt, now)
		}
	}
}

// checkNoDualRun asserts that no thread occupies two CPUs at once. The
// engine is sequential, so the per-CPU current snapshot is consistent at
// every sample instant (the kernel additionally panics if a policy ever
// Picks a running thread, which catches violations between samples).
func (c *checker) checkNoDualRun(now time.Duration) {
	stats := c.sys.CPUStats()
	for i, a := range stats {
		if a.Current == nil {
			continue
		}
		for _, b := range stats[i+1:] {
			if b.Current == a.Current {
				c.violate("no-dual-run", now, "thread %s running on CPU %d and CPU %d at once",
					a.Current.Name(), a.CPU, b.CPU)
			}
		}
	}
}

// checkQueues asserts conservation on every watched queue: bytes are
// neither lost nor invented, and the fill respects the bound. The engine
// is sequential, so this holds at every instant, not just at the end.
func (c *checker) checkQueues(now time.Duration) {
	for _, q := range c.queues {
		if q.Produced() != q.Consumed()+q.Fill() {
			c.violate("queue-conservation", now,
				"queue %s: produced %d != consumed %d + fill %d",
				q.Name(), q.Produced(), q.Consumed(), q.Fill())
		}
		if q.Fill() < 0 || q.Fill() > q.Size() {
			c.violate("queue-bound", now, "queue %s: fill %d outside [0,%d]",
				q.Name(), q.Fill(), q.Size())
		}
	}
}

// feedbackSample advances one thread's feedback window and judges it when
// full: over a window where the job was never squished and demonstrably
// used its allocation, the desired proportion must move with the sign of
// the cumulative pressure trend (Figure 4: P' = k·Q_t). The tolerance
// absorbs the P−C reclamation path, which may step the desire down by
// ReclaimC per interval while usage hovers near the reclaim threshold;
// what cannot happen is the desire moving hundreds of ppt against the
// pressure trend.
func (c *checker) feedbackSample(tt *trackedThread, now time.Duration) {
	// Fault-targeted threads are exempt for good: their signal history is
	// corrupt. Everyone else pauses (and restarts the window) while any
	// fault window is open — cross-thread coupling through shared queues
	// and actuation timing makes the trend test unsound there.
	if c.faultTargets[tt.name] {
		return
	}
	if len(c.faultSpecs) > 0 && c.inFaultWindow(now) {
		tt.window = tt.window[:0]
		return
	}
	tt.window = append(tt.window, feedbackSample{
		q:        tt.th.Pressure(),
		desired:  tt.th.Desired(),
		alloc:    tt.th.Allocation(),
		squished: tt.th.Squished(),
		cpu:      tt.th.CPUTime(),
	})
	if len(tt.window) < feedbackWindow {
		return
	}
	w := tt.window
	first, last := w[0], w[len(w)-1]
	tt.window = tt.window[1:] // slide

	var granted time.Duration
	squished := false
	for _, s := range w[:len(w)-1] {
		granted += time.Duration(int64(sampleInterval) * int64(s.alloc) / realrate.PPT)
		squished = squished || s.squished
	}
	if squished || granted <= 0 {
		return
	}
	usage := float64(last.cpu-first.cpu) / float64(granted)
	dq := last.q - first.q
	const (
		qTrend    = 0.15 // minimum |ΔQ| that counts as a trend
		tolerance = 100  // ppt of against-trend movement absorbed
	)
	if dq > qTrend && usage >= 0.8 && last.desired < first.desired-tolerance {
		c.violate("feedback-sign", now,
			"thread %s: pressure rose %.2f (usage %.0f%%) but desire fell %d -> %d ppt",
			tt.name, dq, usage*100, first.desired, last.desired)
	}
	if dq < -qTrend && last.desired > first.desired+tolerance {
		c.violate("feedback-sign", now,
			"thread %s: pressure fell %.2f but desire rose %d -> %d ppt",
			tt.name, dq, first.desired, last.desired)
	}
}

// finish runs the post-run checks.
func (c *checker) finish() {
	if c == nil {
		return
	}
	end := c.sys.Now()
	c.checkQueues(end)

	var busy time.Duration
	liveHog := false
	for _, tt := range c.tracked {
		busy += tt.th.CPUTime()
		state := tt.th.State()
		switch state {
		case "ready", "running", "blocked", "sleeping", "exited":
		default:
			c.violate("lost-thread", end, "thread %s in unknown state %q", tt.name, state)
		}
		// Exit bookkeeping closes: a kernel-exited thread must have been
		// announced exactly once (a miss means a stale byKern entry), and
		// an announced thread must really be gone.
		if state == "exited" && !tt.exited {
			c.violate("exit-hook", end, "thread %s exited without an OnExit (stale index?)", tt.name)
		}
		if tt.exited && state != "exited" {
			c.violate("exit-hook", end, "thread %s got OnExit but is %q", tt.name, state)
		}
		if tt.killed && state != "exited" {
			c.violate("lost-thread", end, "killed thread %s still %q", tt.name, state)
		}
		if tt.pinned {
			if state == "exited" {
				c.violate("lost-thread", end, "pinned hog %s exited", tt.name)
			} else {
				liveHog = true
				// Lottery is exempt: its guarantees are probabilistic, and
				// a short run can draw against one thread throughout —
				// which is precisely the paper's critique of it.
				if tt.th.CPUTime() == 0 && c.policy != "lottery" {
					c.violate("starvation", end, "pinned hog %s got zero CPU over %v", tt.name, end)
				}
			}
		}
	}

	// Closed time accounting: thread time + controller + idle + overhead
	// equals the machine's capacity (elapsed × CPUs). A leak here means
	// the kernel charged (or dropped) segments it should not have — the
	// bug class Retire-under-churn exercises.
	st := c.sys.Stats()
	capacity := st.Elapsed * time.Duration(c.cpus)
	total := busy + c.sys.ControllerCPU() + st.Idle + st.SchedOverhead
	if diff := (capacity - total).Abs(); diff > 2*time.Millisecond*time.Duration(c.cpus) {
		c.violate("time-accounting", end,
			"leaks %v (capacity %v = threads %v + controller %v + idle %v + overhead %v)",
			diff, capacity, busy, c.sys.ControllerCPU(), st.Idle, st.SchedOverhead)
	}
	if st.Dispatches == 0 || st.Ticks == 0 {
		c.violate("lost-thread", end, "no scheduling activity: %+v", st)
	}

	// Migration bookkeeping closes three ways: the observer event count,
	// the kernel's machine-wide counter, and the per-CPU pull counters
	// must all agree; a single-CPU machine must never migrate.
	cpuStats := c.sys.CPUStats()
	var pulled uint64
	for _, cs := range cpuStats {
		pulled += cs.Migrations
	}
	if c.migrations != st.Migrations || pulled != st.Migrations {
		c.violate("migration-bookkeeping", end,
			"migration counts disagree: %d observer events, %d kernel total, %d per-CPU pulls",
			c.migrations, st.Migrations, pulled)
	}
	if c.cpus == 1 && st.Migrations != 0 {
		c.violate("migration-bookkeeping", end, "%d migrations on a single-CPU machine", st.Migrations)
	}

	// Work conservation: with an immortal hog runnable the machine cannot
	// idle much. RBS naps budget-exhausted threads until their next period
	// (§3.1) — the hog included, once its squished allocation is spent —
	// so its cap is generous (heavy RT tasksets legitimately idle ~40%);
	// it still catches a scheduler that wedges the hog outright. One hog
	// occupies one CPU, so on an N-CPU machine the other N−1 may idle.
	if liveHog {
		idleCap := c.sc.Spec.Duration / 8
		if c.rbs {
			idleCap = c.sc.Spec.Duration / 2
		}
		idleCap += c.sc.Spec.Duration * time.Duration(c.cpus-1)
		// A stalled CPU idles by injection, not by scheduler defect.
		idleCap += c.stallTotal
		if st.Idle > idleCap {
			c.violate("work-conservation", end,
				"idled %v of %v capacity with hog runnable (cap %v)", st.Idle, capacity, idleCap)
		}
	}

	// Per-CPU work conservation: a CPU with its own immortal pinned hog
	// can never idle much, no matter what the other CPUs do — the sharded
	// dispatcher must keep every shard running its own work.
	for _, tt := range c.tracked {
		if !tt.pinned || tt.cpuPin < 0 || tt.th.State() == "exited" {
			continue
		}
		idleCap := c.sc.Spec.Duration / 8
		if c.rbs {
			idleCap = c.sc.Spec.Duration / 2
		}
		idleCap += c.stallTotal
		if idle := cpuStats[tt.cpuPin].Idle; idle > idleCap {
			c.violate("cpu-work-conservation", end,
				"CPU %d idled %v of %v with pinned hog %s runnable (cap %v)",
				tt.cpuPin, idle, st.Elapsed, tt.name, idleCap)
		}
	}

	// Brownout recovery: the overload family's arrival storm ends at 55%
	// of the run and its lifetimes are clamped, so by the end demand has
	// drained and the governor must have unwound the ladder to normal.
	// The checker's event-chained view and the system's own rung must
	// agree throughout, and they must both be back at normal here.
	if c.overload && c.rbs {
		h := c.sys.Health()
		if h.OverloadRung != c.rung {
			c.violate("overload-ladder", end,
				"system reports rung %q but ladder events chain to %q", h.OverloadRung, c.rung)
		}
		if c.rung != "normal" {
			c.violate("overload-recovery", end,
				"ladder still at %q at run end (max rung %q, %d sheds, %d throttled)",
				c.rung, c.maxRung, c.sheds, h.Throttled)
		}
	}

	// Bounded recovery: once the last signal-affecting fault clears with
	// enough runway before the end of the run, every surviving real-rate
	// job must have climbed back to the healthy rung.
	if c.rbs && len(c.faultSpecs) > 0 && end >= c.lastSignalFaultEnd+faultSettle {
		for _, tt := range c.tracked {
			if tt.exited {
				continue
			}
			deg := tt.th.Degraded()
			if d := c.degradeDepth[tt.name]; d != 0 || (deg != "" && deg != "real-rate") {
				c.violate("bounded-recovery", end,
					"thread %s still on rung %q (net depth %d) %v after the last signal fault cleared",
					tt.name, deg, d, end-c.lastSignalFaultEnd)
			}
		}
	}
}

// report snapshots the run outcome.
func (c *checker) report() Report {
	return Report{
		Policy:              c.policy,
		Threads:             len(c.tracked),
		SpawnRejected:       c.spawnRejected,
		Exits:               c.exits,
		Kills:               c.kills,
		AdmitOK:             c.admitOK,
		AdmitRejected:       c.admitRej,
		QualityEvents:       c.quality,
		Samples:             c.samples,
		FaultEvents:         c.faultEvents,
		Degradations:        c.degrades,
		Recoveries:          c.recovers,
		OverloadEvents:      c.overloadEvents,
		Sheds:               c.sheds,
		Throttled:           c.sys.Health().Throttled,
		MaxRung:             c.maxRung,
		FinalRung:           c.rung,
		Violations:          c.violations,
		TruncatedViolations: c.truncated,
		CtlStats:            c.sys.ShardStats(),
	}
}
