package gen

import (
	"bytes"
	"fmt"
	"time"

	realrate "repro"

	"repro/internal/sim"
)

// clockHz mirrors the default testbed clock; burst sizes are drawn in
// cycles against it.
const clockHz = 400_000_000

// overloadMaxLife caps arrival lifetimes in the overload family so the
// storm's demand drains deterministically once admissions stop.
const overloadMaxLife = 150 * time.Millisecond

// taskPlan is one concrete generated task: every parameter already drawn.
type taskPlan struct {
	name string
	kind TaskKind
	// burst is the compute burst in cycles (misc/unmanaged/interactive/rt
	// bursts, paced unit cost).
	burst int64
	// prop/period are the reservation for KindRealTime (and the event
	// period for KindInteractive).
	prop   int
	period time.Duration
	// life is how long the task runs before exiting on its own (0: forever).
	life time.Duration
	// targetPerSec/depth parameterize KindPaced.
	targetPerSec float64
	depth        float64
	// pinned marks the immortal, unkillable hog work conservation needs.
	pinned bool
	// pin is the Affinity CPU plus one (0 = unpinned); the +1 keeps the
	// zero value meaning "any CPU".
	pin int
	// importance is the weighted-fair-share weight (0 = leave the default);
	// the overload family draws it so shed order is observable.
	importance float64
}

// affinity returns the 0-based pinned CPU, or -1 when unpinned.
func (tp taskPlan) affinity() int { return tp.pin - 1 }

// pipelinePlan is one generated real-rate pipeline: a reserved producer
// feeding stages-1 real-rate threads through bounded queues.
type pipelinePlan struct {
	name       string
	stages     int // total threads, producer included (>= 2)
	qSize      int64
	block      int64 // bytes moved per producer emit / stage op
	prodCost   int64 // producer cycles per emitted block
	prodProp   int
	prodPeriod time.Duration
	// perByte is the per-stage compute intensity, cycles per byte.
	perByte []int64
}

// churnOp is one timed admission-churn operation.
type churnOp int

const (
	churnSpawn churnOp = iota
	churnKill
	churnRenegotiate
)

type churnPlan struct {
	at   time.Duration
	op   churnOp
	task taskPlan // for churnSpawn
	prop int      // for churnRenegotiate
}

type arrivalPlan struct {
	at   time.Duration
	task taskPlan
}

// Scenario is an executable generated scenario: the fully-drawn plan of an
// initial taskset, open-loop arrivals, and churn operations. Build one
// with Generate and run it (any number of times, under any policy) with
// Run.
type Scenario struct {
	Spec     Spec
	tasks    []taskPlan
	pipes    []pipelinePlan
	arrivals []arrivalPlan
	churn    []churnPlan
	sessions []sessionPlan
}

// Generate draws the concrete scenario for a spec. The same spec always
// yields the same scenario.
func Generate(spec Spec) *Scenario {
	rng := sim.NewRNG(spec.Seed*0x2545F4914F6CDD1D + 0xA5A5)
	if spec.Duration <= 0 {
		spec.Duration = 500 * time.Millisecond
	}
	sc := &Scenario{Spec: spec}
	ts := spec.Taskset

	n := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }
	n64 := func(lo, hi int64) int64 { return lo + rng.Int63n(hi-lo+1) }
	ms := func(lo, hi int) time.Duration {
		return time.Duration(n(lo, hi)) * time.Millisecond
	}

	for i := 0; i < ts.Pipelines; i++ {
		stages := 2
		if ts.MaxStages > 2 {
			stages = n(2, ts.MaxStages)
		}
		pp := pipelinePlan{
			name:       fmt.Sprintf("pipe%d", i),
			stages:     stages,
			qSize:      n64(32<<10, 1<<20),
			block:      n64(4<<10, 16<<10),
			prodCost:   n64(200_000, 600_000),
			prodProp:   n(60, 150),
			prodPeriod: ms(10, 20),
		}
		for s := 1; s < stages; s++ {
			pp.perByte = append(pp.perByte, n64(10, 60))
		}
		sc.pipes = append(sc.pipes, pp)
	}
	for i := 0; i < ts.RealTime; i++ {
		prop := n(50, 250)
		period := ms(5, 40)
		sc.tasks = append(sc.tasks, taskPlan{
			name: fmt.Sprintf("rt%d", i), kind: KindRealTime,
			prop: prop, period: period,
			// Burn ~90% of the reservation each period, so RT threads are
			// real load but do not overrun their budgets.
			burst: int64(float64(prop) / 1000 * period.Seconds() * clockHz * 0.9),
		})
	}
	for i := 0; i < ts.Interactive; i++ {
		sc.tasks = append(sc.tasks, taskPlan{
			name: fmt.Sprintf("tty%d", i), kind: KindInteractive,
			period: ms(20, 60), burst: n64(50_000, 200_000),
		})
	}
	for i := 0; i < ts.Misc; i++ {
		tp := taskPlan{
			name: fmt.Sprintf("misc%d", i), kind: KindMisc,
			burst:  n64(100_000, 400_000),
			pinned: ts.PinnedHog && i == 0,
		}
		// Every new draw below is gated on spec.Overload (or the slo
		// family's session spec) so the draw streams — and therefore the
		// scenarios — of the other families stay byte-identical to what
		// they were before the governor.
		if spec.Overload || spec.Sessions.enabled() {
			tp.importance = float64(n(1, 9))
		}
		sc.tasks = append(sc.tasks, tp)
	}
	if ts.PinnedPerCPU {
		// One immortal hog pinned to every CPU: the anchor of the per-CPU
		// work-conservation invariant on SMP machines.
		for c := 0; c < spec.NumCPUs(); c++ {
			sc.tasks = append(sc.tasks, taskPlan{
				name: fmt.Sprintf("cpuhog%d", c), kind: KindMisc,
				burst:  n64(100_000, 400_000),
				pinned: true, pin: c + 1,
			})
		}
	}
	for i := 0; i < ts.Unmanaged; i++ {
		sc.tasks = append(sc.tasks, taskPlan{
			name: fmt.Sprintf("um%d", i), kind: KindUnmanaged,
			burst: n64(100_000, 400_000),
		})
	}
	for i := 0; i < ts.Paced; i++ {
		sc.tasks = append(sc.tasks, taskPlan{
			name: fmt.Sprintf("paced%d", i), kind: KindPaced,
			burst:        n64(200_000, 800_000),
			targetPerSec: float64(n(50, 200)),
			depth:        float64(n(20, 100)),
		})
	}

	// Open-loop arrivals: realize the process, then draw per-arrival
	// parameters (lifetime included).
	for i, a := range drawArrivals(rng, spec.Arrivals, spec.Duration) {
		tp := drawArrivalTask(rng, a.Kind, fmt.Sprintf("arr%d", i))
		if spec.Arrivals.MeanLife > 0 {
			tp.life = expLife(rng, spec.Arrivals.MeanLife)
		}
		if spec.Overload {
			tp.importance = float64(n(1, 9))
			// Clamp lifetimes so the arrival storm provably subsides and
			// the recovery oracle (rung back to normal by run end) is a
			// property of the governor, not of a lucky exponential tail.
			if tp.life > overloadMaxLife {
				tp.life = overloadMaxLife
			}
		}
		sc.arrivals = append(sc.arrivals, arrivalPlan{at: a.At, task: tp})
	}

	// Churn: a Poisson stream of spawn/kill/renegotiate operations.
	if spec.Churn.Rate > 0 {
		lo, hi := spec.Churn.ReserveLo, spec.Churn.ReserveHi
		if lo <= 0 {
			lo = 50
		}
		if hi <= lo {
			hi = lo + 200
		}
		t := time.Duration(rng.Exp(float64(time.Second) / spec.Churn.Rate))
		i := 0
		for t < spec.Duration {
			cp := churnPlan{at: t}
			switch rng.Intn(5) {
			case 0, 1: // spawn a short-lived reservation near the ceiling
				period := ms(5, 50)
				prop := n(lo, hi)
				cp.op = churnSpawn
				cp.task = taskPlan{
					name: fmt.Sprintf("churn%d", i), kind: KindRealTime,
					prop: prop, period: period,
					burst: int64(float64(prop) / 1000 * period.Seconds() * clockHz * 0.9),
					life:  ms(30, 120),
				}
			case 2, 3:
				cp.op = churnKill
			default:
				cp.op = churnRenegotiate
				cp.prop = n(lo, hi)
			}
			sc.churn = append(sc.churn, cp)
			i++
			t += time.Duration(rng.Exp(float64(time.Second) / spec.Churn.Rate))
		}
	}

	// Sessions: the slo family's open-loop stream of per-user pipelines.
	// Gated on the spec so every other family's draw stream is untouched.
	if spec.Sessions.enabled() {
		maxImp := spec.Sessions.MaxImportance
		if maxImp < 1 {
			maxImp = 1
		}
		for _, at := range drawSessionArrivals(rng, spec.Sessions, spec.Duration) {
			sc.sessions = append(sc.sessions, sessionPlan{
				at:         at,
				importance: float64(n(1, maxImp)),
				bestEffort: rng.Float64() < spec.Sessions.BestEffort,
			})
		}
	}
	return sc
}

// drawArrivalTask draws the parameters of one open-loop arrival.
func drawArrivalTask(rng *sim.RNG, kind TaskKind, name string) taskPlan {
	n := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }
	n64 := func(lo, hi int64) int64 { return lo + rng.Int63n(hi-lo+1) }
	tp := taskPlan{name: name, kind: kind}
	switch kind {
	case KindRealTime:
		tp.prop = n(30, 150)
		tp.period = time.Duration(n(5, 30)) * time.Millisecond
		tp.burst = int64(float64(tp.prop) / 1000 * tp.period.Seconds() * clockHz * 0.9)
	case KindInteractive:
		tp.period = time.Duration(n(20, 60)) * time.Millisecond
		tp.burst = n64(50_000, 200_000)
	case KindPaced:
		tp.burst = n64(200_000, 800_000)
		tp.targetPerSec = float64(n(50, 200))
		tp.depth = float64(n(20, 100))
	default: // misc, unmanaged
		tp.burst = n64(100_000, 400_000)
	}
	return tp
}

// expLife draws an exponential lifetime, floored so a task always gets a
// chance to run.
func expLife(rng *sim.RNG, mean time.Duration) time.Duration {
	l := time.Duration(rng.Exp(float64(mean)))
	if l < 5*time.Millisecond {
		l = 5 * time.Millisecond
	}
	return l
}

// Threads returns the size of the initial taskset (pipelines expanded).
func (sc *Scenario) Threads() int {
	total := len(sc.tasks)
	for _, pp := range sc.pipes {
		total += pp.stages
	}
	return total
}

// Arrivals returns the number of open-loop arrivals in the plan.
func (sc *Scenario) Arrivals() int { return len(sc.arrivals) }

// Pipelines returns the number of generated pipelines.
func (sc *Scenario) Pipelines() int { return len(sc.pipes) }

// ChurnOps returns the number of planned churn operations.
func (sc *Scenario) ChurnOps() int { return len(sc.churn) }

// Sessions returns the number of planned session arrivals.
func (sc *Scenario) Sessions() int { return len(sc.sessions) }

// Policies lists the public policy constructors the harness runs under, in
// a fixed order: the paper's RBS plus every baseline.
func Policies() []string {
	return []string{"rbs", "stride", "lottery", "linux", "round-robin"}
}

// policyFor builds a fresh policy instance by name. The lottery PRNG is
// seeded from the scenario seed, so lottery runs are reproducible too.
func policyFor(name string, seed uint64) (realrate.Policy, error) {
	switch name {
	case "rbs":
		return realrate.RBS(), nil
	case "stride":
		return realrate.Stride(10 * time.Millisecond), nil
	case "lottery":
		return realrate.Lottery(10*time.Millisecond, seed|1), nil
	case "linux":
		return realrate.Linux(), nil
	case "round-robin":
		return realrate.RoundRobin(10 * time.Millisecond), nil
	}
	return nil, fmt.Errorf("gen: unknown policy %q (have %v)", name, Policies())
}

// RunOpts configures one execution of a scenario.
type RunOpts struct {
	// Policy names the scheduling discipline (see Policies). Empty = rbs.
	Policy string
	// Trace records the dispatch trace; RunResult.TraceCSV holds the raw
	// CSV (the byte-identity surface of the determinism property test).
	Trace bool
	// Observer, when non-nil, is registered alongside the checker.
	Observer realrate.Observer
	// Controller selects the control-plane sampling mode: "periodic"
	// (default) or "event".
	Controller string
	// Shards splits the controller across this many staggered shard
	// threads (0 or 1: the classic single controller thread).
	Shards int
	// NoInvariants skips the invariant checker entirely. Large-scale
	// perf runs (rrexp -slo at 100k+ sessions, BenchmarkSLOSessions) pay
	// for the workload, not the oracles; the session counters and SLO
	// report are still produced.
	NoInvariants bool
}

// RunResult is the outcome of one scenario execution.
type RunResult struct {
	Policy   string
	Report   Report
	TraceCSV []byte
	// Health is the system's fault-tolerance snapshot at the end of the
	// run (all zeros outside the faults family).
	Health realrate.Health
	// Allocations maps thread name → end-of-run allocation state for
	// every tracked thread still alive. The convergence differential
	// oracle compares these across control-plane configurations.
	Allocations map[string]EndState
	// CtlStats is the control plane's per-shard counter snapshot (one
	// synthesized shard under the classic controller, nil under
	// baselines).
	CtlStats []realrate.ShardStat
	// SLO is the system's latency-SLO accounting snapshot (zero unless a
	// governor was armed — the overload and slo families).
	SLO realrate.SLOReport
}

// EndState is one thread's allocation at the end of a run.
type EndState struct {
	// Allocated is the instantaneous proportion in ppt.
	Allocated int
	// Smoothed is the checker's allocation EWMA (≈300 ms time constant) —
	// the convergence-comparison surface, robust to squish transients and
	// event-plane staleness windows that make any single instant noisy.
	Smoothed int
	// Class is the controller's taxonomy class for the thread
	// ("real-rate", "miscellaneous", ...).
	Class string
}

// run is the live execution state of one scenario under one policy.
type run struct {
	sc     *Scenario
	sys    *realrate.System
	policy string
	rng    *sim.RNG // runtime draws: churn targets
	chk    *checker
	sess   *sessionRun

	// killable/rt are the live churn pools, in spawn order (deterministic).
	killable []*realrate.Thread
	rt       []*realrate.Thread
}

// Run executes the scenario under one policy and returns the invariant
// report. Executions are independent: the same scenario can be run under
// every policy, or twice under one (byte-identical traces).
func (sc *Scenario) Run(opts RunOpts) (*RunResult, error) {
	name := opts.Policy
	if name == "" {
		name = "rbs"
	}
	pol, err := policyFor(name, sc.Spec.Seed)
	if err != nil {
		return nil, err
	}
	cfg := realrate.Config{Policy: pol, CPUs: sc.Spec.CPUs}
	switch opts.Controller {
	case "", "periodic":
	case "event":
		cfg.CtlPlane.Mode = realrate.ControllerEventDriven
	default:
		return nil, fmt.Errorf("gen: unknown controller mode %q (want periodic or event)", opts.Controller)
	}
	cfg.CtlPlane.Shards = opts.Shards
	if len(sc.Spec.Faults) > 0 {
		// Remap drawn stall CPUs onto the actual machine and arm a fast
		// watchdog (6 flat intervals down a rung, 3 good ones back up) so
		// the short generated runs walk the full degradation ladder.
		specs := make([]realrate.FaultSpec, len(sc.Spec.Faults))
		copy(specs, sc.Spec.Faults)
		for i := range specs {
			if specs[i].Kind == realrate.FaultCPUStall {
				specs[i].CPU %= sc.Spec.NumCPUs()
			}
		}
		cfg.Faults = &realrate.FaultPlan{Seed: sc.Spec.Seed, Specs: specs}
		cfg.Controller.WatchdogIntervals = 6
		cfg.Controller.WatchdogRecovery = 3
	}
	if sc.Spec.Overload {
		// Fast governor tuning for short generated runs: trip after 5
		// saturated intervals (~50 ms at the default 10 ms interval), walk
		// back up after 7 healthy ones, so a 1 s storm can climb the ladder
		// and still recover to normal before the run ends.
		cfg.Overload = &realrate.OverloadConfig{
			TripIntervals:    5,
			RecoverIntervals: 7,
			ShedBatch:        1,
			LatencySLO:       5 * time.Millisecond,
		}
	}
	if sc.Spec.Sessions.enabled() && cfg.Overload == nil {
		// The slo family always runs governed: sessions are refused (not
		// queued) under overload, and shed order follows drawn importance.
		// Slightly more lenient than the overload family's tuning — session
		// storms are the workload here, not a transient to recover from —
		// and SessionSLO arms the end-to-end session latency dimension of
		// the SLO report.
		cfg.Overload = &realrate.OverloadConfig{
			TripIntervals:    6,
			RecoverIntervals: 8,
			ShedBatch:        2,
			LatencySLO:       5 * time.Millisecond,
			SessionSLO:       sc.Spec.Sessions.Deadline,
		}
	}
	sys := realrate.NewSystem(cfg)
	r := &run{
		sc:     sc,
		sys:    sys,
		policy: name,
		rng:    sim.NewRNG(sc.Spec.Seed ^ 0xC0FFEE),
	}
	if !opts.NoInvariants {
		r.chk = newChecker(sys, name, sc)
		sys.Observe(r.chk)
	}
	if sc.Spec.Sessions.enabled() {
		r.sess = newSessionRun(r, sc.Spec.Sessions)
		sys.Observe(r.sess)
	}
	if opts.Observer != nil {
		sys.Observe(opts.Observer)
	}
	var tr *realrate.Tracing
	if opts.Trace {
		tr = sys.EnableTracing(0)
	}

	r.spawnInitial()
	r.scheduleArrivals()
	r.scheduleChurn()
	if r.sess != nil {
		r.sess.schedule(sc.sessions)
	}
	r.chk.startSampling()
	sys.Run(sc.Spec.Duration)
	r.chk.finish()

	res := &RunResult{Policy: name, Health: sys.Health(), CtlStats: sys.ShardStats(), SLO: sys.SLO()}
	if r.chk != nil {
		res.Report = r.chk.report()
		res.Allocations = make(map[string]EndState, len(r.chk.tracked))
		for _, tt := range r.chk.tracked {
			if tt.th.State() != "exited" {
				res.Allocations[tt.name] = EndState{Allocated: tt.th.Allocation(),
					Smoothed: int(tt.allocEWMA + 0.5), Class: tt.th.Class()}
			}
		}
	} else {
		res.Report = Report{Policy: name}
	}
	if r.sess != nil {
		r.sess.finish(sys)
		res.Report.Sessions = r.sess.report()
		res.Report.Violations = append(res.Report.Violations, r.sess.violations...)
	}
	if tr != nil {
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return nil, err
		}
		res.TraceCSV = buf.Bytes()
	}
	return res, nil
}

// spawnInitial builds the resident taskset through the public API.
func (r *run) spawnInitial() {
	for pi := range r.sc.pipes {
		r.spawnPipeline(&r.sc.pipes[pi])
	}
	for i := range r.sc.tasks {
		r.spawnTask(r.sc.tasks[i])
	}
}

// spawnPipeline spawns one producer → stages chain through bounded queues.
// Pipeline stages are not churnable: killing a mid-stage would wedge the
// pipeline on a full or empty queue, which is a valid state but makes
// every downstream throughput signal vacuous.
func (r *run) spawnPipeline(pp *pipelinePlan) {
	queues := make([]*realrate.Queue, pp.stages-1)
	for i := range queues {
		queues[i] = r.sys.NewQueue(fmt.Sprintf("%s.q%d", pp.name, i), pp.qSize)
		r.chk.watchQueue(queues[i])
	}
	prod := producerProgram(queues[0], pp.block, pp.prodCost)
	th, err := r.sys.Spawn(pp.name+".src", prod,
		realrate.Reserve(pp.prodProp, pp.prodPeriod))
	r.chk.spawned(th, err, false, -1)
	for s := 1; s < pp.stages; s++ {
		var out *realrate.Queue
		if s < pp.stages-1 {
			out = queues[s]
		}
		stage := stageProgram(queues[s-1], out, pp.block, pp.perByte[s-1])
		opts := []realrate.SpawnOption{}
		sources := []realrate.ProgressSource{realrate.ConsumerOf(queues[s-1])}
		if out != nil {
			sources = append(sources, realrate.ProducerOf(out))
		}
		opts = append(opts, realrate.RealRate(0, sources...))
		sth, err := r.sys.Spawn(fmt.Sprintf("%s.s%d", pp.name, s), stage, opts...)
		r.chk.spawned(sth, err, false, -1)
		r.chk.watchRealRate(sth, err)
	}
}

// spawnTask spawns one non-pipeline task and registers it in the churn
// pools.
func (r *run) spawnTask(tp taskPlan) {
	var (
		th  *realrate.Thread
		err error
	)
	dieAt := time.Duration(0)
	if tp.life > 0 {
		dieAt = r.sys.Now() + tp.life
	}
	var pin []realrate.SpawnOption
	if tp.pin > 0 {
		pin = []realrate.SpawnOption{realrate.Affinity(tp.affinity())}
	}
	with := func(opts ...realrate.SpawnOption) []realrate.SpawnOption {
		return append(opts, pin...)
	}
	switch tp.kind {
	case KindMisc:
		var opts []realrate.SpawnOption
		if tp.importance > 0 {
			opts = append(opts, realrate.Importance(tp.importance))
		}
		th, err = r.sys.Spawn(tp.name, hogProgram(tp.burst, dieAt), with(opts...)...)
	case KindUnmanaged:
		th, err = r.sys.Spawn(tp.name, hogProgram(tp.burst, dieAt), with(realrate.Unmanaged())...)
	case KindRealTime:
		th, err = r.sys.Spawn(tp.name, rtProgram(tp.burst, tp.period, dieAt),
			with(realrate.Reserve(tp.prop, tp.period))...)
	case KindInteractive:
		wq := r.sys.NewWaitQueue(tp.name + ".tty")
		th, err = r.sys.Spawn(tp.name, interactiveProgram(wq, tp.burst, dieAt),
			with(realrate.Interactive())...)
		if err == nil {
			r.sys.Every(tp.period, func(now time.Duration) { wq.WakeOne() })
		}
	case KindPaced:
		pace := realrate.NewPace(tp.name, tp.targetPerSec, tp.depth)
		th, err = r.sys.Spawn(tp.name, pacedProgram(pace, tp.burst, dieAt),
			with(realrate.RealRate(30*time.Millisecond, pace))...)
	}
	r.chk.spawned(th, err, tp.pinned, tp.affinity())
	if err != nil {
		return
	}
	if tp.kind == KindPaced {
		// After spawned(): watchRealRate resolves the tracked entry.
		r.chk.watchRealRate(th, err)
	}
	if !tp.pinned {
		r.killable = append(r.killable, th)
	}
	if tp.kind == KindRealTime {
		r.rt = append(r.rt, th)
		r.chk.setNegotiated(th, tp.prop)
	}
}

// scheduleArrivals injects the open-loop arrival plan through After.
func (r *run) scheduleArrivals() {
	for i := range r.sc.arrivals {
		ap := r.sc.arrivals[i]
		r.sys.After(ap.at, func(now time.Duration) {
			r.spawnTask(ap.task)
		})
	}
}

// scheduleChurn injects the admission-churn plan. Kill and renegotiate
// targets are drawn at execution time from the live pools with the
// run-local RNG: deterministic for a (scenario, policy) pair.
func (r *run) scheduleChurn() {
	for i := range r.sc.churn {
		cp := r.sc.churn[i]
		r.sys.After(cp.at, func(now time.Duration) {
			switch cp.op {
			case churnSpawn:
				r.spawnTask(cp.task)
			case churnKill:
				r.prune()
				if len(r.killable) == 0 {
					return
				}
				th := r.killable[r.rng.Intn(len(r.killable))]
				th.Kill()
				r.chk.killed(th, now)
			case churnRenegotiate:
				if r.policy != "rbs" {
					return // baselines have no reservations to renegotiate
				}
				r.prune()
				if len(r.rt) == 0 {
					return
				}
				th := r.rt[r.rng.Intn(len(r.rt))]
				if err := th.Renegotiate(cp.prop); err == nil {
					r.chk.setNegotiated(th, cp.prop)
				}
			}
		})
	}
}

// prune drops exited threads from the churn pools (exits are announced via
// the checker's OnExit, but pools are pruned lazily here to keep the
// checker free of run bookkeeping).
func (r *run) prune() {
	live := r.killable[:0]
	for _, th := range r.killable {
		if th.State() != "exited" {
			live = append(live, th)
		}
	}
	r.killable = live
	rts := r.rt[:0]
	for _, th := range r.rt {
		if th.State() != "exited" {
			rts = append(rts, th)
		}
	}
	r.rt = rts
}

// --- generated thread programs ---
// All programs check their death time between operations and exit on their
// own; Kill handles the forced-removal paths.

// hogProgram computes forever in bursts (the canonical CPU-bound load).
func hogProgram(burst int64, dieAt time.Duration) realrate.Program {
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if dieAt > 0 && now >= dieAt {
			return realrate.Exit()
		}
		return realrate.Compute(burst)
	})
}

// rtProgram burns one burst per period on an absolute schedule.
func rtProgram(burst int64, period time.Duration, dieAt time.Duration) realrate.Program {
	var next time.Duration
	compute := true
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if dieAt > 0 && now >= dieAt {
			return realrate.Exit()
		}
		if next == 0 {
			next = now + period
		}
		if compute {
			compute = false
			return realrate.Compute(burst)
		}
		compute = true
		at := next
		next += period
		return realrate.SleepUntil(at)
	})
}

// interactiveProgram waits for tty events and handles each with a burst.
func interactiveProgram(wq *realrate.WaitQueue, burst int64, dieAt time.Duration) realrate.Program {
	waiting := false
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if dieAt > 0 && now >= dieAt {
			return realrate.Exit()
		}
		waiting = !waiting
		if waiting {
			return realrate.Wait(wq)
		}
		return realrate.Compute(burst)
	})
}

// pacedProgram computes one work unit per burst and reports it to the pace.
func pacedProgram(pace *realrate.Pace, unit int64, dieAt time.Duration) realrate.Program {
	first := true
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if dieAt > 0 && now >= dieAt {
			return realrate.Exit()
		}
		if !first {
			pace.Complete(1)
		}
		first = false
		return realrate.Compute(unit)
	})
}

// producerProgram alternates a compute burst and a block emit.
func producerProgram(out *realrate.Queue, block, cost int64) realrate.Program {
	compute := true
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		compute = !compute
		if !compute {
			return realrate.Compute(cost)
		}
		return realrate.Produce(out, block)
	})
}

// stageProgram consumes a block, processes it, and (for middle stages)
// forwards it.
func stageProgram(in, out *realrate.Queue, block, perByte int64) realrate.Program {
	phase := 0
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		switch phase {
		case 0:
			phase = 1
			return realrate.Consume(in, block)
		case 1:
			if out != nil {
				phase = 2
			} else {
				phase = 0
			}
			return realrate.Compute(block * perByte)
		default:
			phase = 0
			return realrate.Produce(out, block)
		}
	})
}
