package workload

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Disk models the I/O subsystem as a producer, per §3.2's I/O-intensive
// class: "Applications that process large data sets can be considered
// consumers of data that is produced by the I/O subsystem... Using informed
// prefetching interfaces such as TIP or Dynamic Sets... allows the system
// to monitor the rate of progress of the I/O subsystem as a producer/
// consumer for a particular job."
//
// The device transfers fixed-size blocks into a readahead buffer at a fixed
// throughput, using (almost) no CPU: each block is a DMA that takes
// BlockBytes/BytesPerSec of wall time, paced on an absolute schedule so
// scheduler jitter cannot slow the device down.
type Disk struct {
	Queue *kernel.Queue
	// BytesPerSec is the device throughput (e.g. ~20 MB/s for a fast 1998
	// SCSI disk).
	BytesPerSec int64
	// BlockBytes is the transfer unit (default 64 kB).
	BlockBytes int64

	phase  int
	nextAt sim.Time
	blocks int64

	sleepOp   kernel.OpSleepUntil
	produceOp kernel.OpProduce
}

// Next implements kernel.Program.
func (d *Disk) Next(t *kernel.Thread, now sim.Time) kernel.Op {
	block := d.BlockBytes
	if block <= 0 {
		block = 64 * 1024
	}
	if block > d.Queue.Size() {
		block = d.Queue.Size()
	}
	d.phase++
	if d.phase%2 == 1 {
		// Seek + transfer time for one block, on an absolute schedule.
		d.nextAt = d.nextAt.Add(sim.Duration(block * int64(sim.Second) / d.BytesPerSec))
		d.sleepOp = kernel.OpSleepUntil{At: d.nextAt}
		return &d.sleepOp
	}
	d.blocks++
	d.produceOp = kernel.OpProduce{Queue: d.Queue, Bytes: block}
	return &d.produceOp
}

// Blocks returns the number of blocks transferred.
func (d *Disk) Blocks() int64 { return d.blocks }
