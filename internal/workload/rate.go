// Package workload provides the thread programs the experiments run: the
// pulse-driven producer and fixed-rate consumer of Figures 6 and 7, CPU
// hogs, interactive jobs, multi-stage pipelines (the video-decoder scenario
// of §4.4), and the motivation scenarios of §2 (Mars Pathfinder priority
// inversion and the spin-wait livelock).
package workload

import (
	"sort"

	"repro/internal/sim"
)

// RateFunc gives a production (or consumption) rate at an instant, in
// bytes per kilocycle — the unit Figure 7's "Production rate" axis uses.
type RateFunc func(now sim.Time) float64

// ConstantRate returns a fixed rate.
func ConstantRate(bytesPerKcycle float64) RateFunc {
	return func(sim.Time) float64 { return bytesPerKcycle }
}

// Step is one breakpoint of a stepwise rate schedule.
type Step struct {
	At   sim.Time
	Rate float64 // bytes per kilocycle
}

// StepSchedule returns a piecewise-constant rate: the rate of the latest
// breakpoint at or before now. Steps are sorted by time.
func StepSchedule(steps []Step) RateFunc {
	s := make([]Step, len(steps))
	copy(s, steps)
	sort.Slice(s, func(i, j int) bool { return s[i].At < s[j].At })
	return func(now sim.Time) float64 {
		rate := 0.0
		if len(s) > 0 {
			rate = s[0].Rate
		}
		for _, st := range s {
			if st.At > now {
				break
			}
			rate = st.Rate
		}
		return rate
	}
}

// PulseTrain builds the paper's Figure 6 drive signal: starting from base,
// the rate doubles for each pulse width, returning to base between rising
// pulses; after the rising pulses the rate holds at double and dips back to
// base for each falling pulse ("After running for three rising pulses, the
// producer keeps its default rate high and generates three falling
// pulses").
//
// gap is the recovery time between pulses.
func PulseTrain(base float64, start sim.Time, widths []sim.Duration, gap sim.Duration) RateFunc {
	var steps []Step
	steps = append(steps, Step{At: 0, Rate: base})
	at := start
	// Rising pulses: base -> 2·base -> base.
	for _, w := range widths {
		steps = append(steps, Step{At: at, Rate: 2 * base})
		at = at.Add(w)
		steps = append(steps, Step{At: at, Rate: base})
		at = at.Add(gap)
	}
	// Hold high, then falling pulses: 2·base -> base -> 2·base.
	steps = append(steps, Step{At: at, Rate: 2 * base})
	at = at.Add(gap)
	for _, w := range widths {
		steps = append(steps, Step{At: at, Rate: base})
		at = at.Add(w)
		steps = append(steps, Step{At: at, Rate: 2 * base})
		at = at.Add(gap)
	}
	return StepSchedule(steps)
}
