package workload_test

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/workload"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Millisecond) }

func TestConstantRate(t *testing.T) {
	r := workload.ConstantRate(42)
	if r(0) != 42 || r(ms(1000)) != 42 {
		t.Fatal("constant rate not constant")
	}
}

func TestStepSchedule(t *testing.T) {
	r := workload.StepSchedule([]workload.Step{
		{At: ms(100), Rate: 2},
		{At: 0, Rate: 1}, // out of order on purpose: must be sorted
		{At: ms(200), Rate: 3},
	})
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{0, 1}, {ms(50), 1}, {ms(100), 2}, {ms(150), 2}, {ms(200), 3}, {ms(999), 3},
	}
	for _, c := range cases {
		if got := r(c.at); got != c.want {
			t.Fatalf("rate at %v = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestPulseTrainShape(t *testing.T) {
	base := 50.0
	r := workload.PulseTrain(base, ms(1000), []sim.Duration{sim.Duration(ms(500))}, sim.Duration(ms(500)))
	// Before the first pulse: base.
	if got := r(ms(500)); got != base {
		t.Fatalf("pre-pulse rate = %v", got)
	}
	// During the rising pulse: double.
	if got := r(ms(1200)); got != 2*base {
		t.Fatalf("pulse rate = %v, want %v", got, 2*base)
	}
	// Between pulse and hold: back to base.
	if got := r(ms(1600)); got != base {
		t.Fatalf("post-pulse rate = %v, want %v", got, base)
	}
	// Hold phase: high. (pulse ends at 1.5s, gap to 2s, hold from 2s on)
	if got := r(ms(2100)); got != 2*base {
		t.Fatalf("hold rate = %v, want %v", got, 2*base)
	}
	// Falling pulse: dips to base at 2.5s for 500ms.
	if got := r(ms(2700)); got != base {
		t.Fatalf("falling pulse rate = %v, want %v", got, base)
	}
	// After everything: high again.
	if got := r(ms(4000)); got != 2*base {
		t.Fatalf("final rate = %v, want %v", got, 2*base)
	}
}

func TestProducerConsumerThroughRoundRobin(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	q := k.NewQueue("pipe", 1<<20)
	prod := &workload.Producer{Queue: q, CyclesPerBlock: 400_000, Rate: workload.ConstantRate(50)}
	cons := &workload.Consumer{Queue: q, BlockBytes: 4096, CyclesPerByte: 10}
	k.Spawn("prod", prod)
	k.Spawn("cons", cons)
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()
	if err := q.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if prod.Blocks() == 0 || cons.Blocks() == 0 {
		t.Fatalf("pipeline idle: prod=%d cons=%d blocks", prod.Blocks(), cons.Blocks())
	}
	// Producer block size at rate 50 with 400k cycles/block is 20kB.
	wantPerBlock := int64(20_000)
	if got := q.Produced() / prod.Blocks(); got != wantPerBlock {
		t.Fatalf("bytes/block = %d, want %d", got, wantPerBlock)
	}
}

func TestProducerClampsBlockToQueueSize(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	q := k.NewQueue("tiny", 1000)
	prod := &workload.Producer{Queue: q, CyclesPerBlock: 400_000, Rate: workload.ConstantRate(1000)}
	cons := &workload.Consumer{Queue: q, BlockBytes: 100, CyclesPerByte: 1}
	k.Spawn("prod", prod)
	k.Spawn("cons", cons)
	k.Start()
	eng.RunFor(500 * sim.Millisecond)
	k.Stop()
	if err := q.CheckConservation(); err != nil {
		t.Fatal(err) // would panic inside the kernel if unclamped
	}
}

func TestStagePipelineFlows(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	qa := k.NewQueue("a", 64*1024)
	qb := k.NewQueue("b", 64*1024)
	src := &workload.Producer{Queue: qa, CyclesPerBlock: 100_000, Rate: workload.ConstantRate(50)}
	mid := &workload.Stage{In: qa, Out: qb, BlockBytes: 1024, CyclesPerByte: 5}
	sink := &workload.Consumer{Queue: qb, BlockBytes: 1024, CyclesPerByte: 2}
	k.Spawn("src", src)
	k.Spawn("mid", mid)
	k.Spawn("sink", sink)
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()
	if qb.Consumed() == 0 {
		t.Fatal("nothing flowed through the two-queue pipeline")
	}
	if err := qa.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := qb.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if mid.Blocks() == 0 {
		t.Fatal("middle stage did no work")
	}
}

func TestHogConsumesEverything(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	h := &workload.Hog{Burst: 400_000}
	th := k.Spawn("hog", h)
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	if th.CPUTime().Seconds() < 0.95 {
		t.Fatalf("hog share = %v", th.CPUTime())
	}
	if h.Work() == 0 {
		t.Fatal("work counter empty")
	}
}

func TestHogDefaultBurst(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	th := k.Spawn("hog", &workload.Hog{}) // zero burst: default applies
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	k.Stop()
	if th.CPUTime() == 0 {
		t.Fatal("defaulted hog never ran")
	}
}

func TestInteractiveJobAndEventSource(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(sim.Millisecond))
	tty := kernel.NewWaitQueue("tty")
	ij := &workload.InteractiveJob{TTY: tty, Burst: 10_000}
	it := k.Spawn("edit", ij)
	src := &workload.EventSource{Kernel: k, Target: ij, Interval: 10 * sim.Millisecond}
	k.Spawn("user", src)
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	if ij.Handled() < 50 {
		t.Fatalf("handled %d events, want ≈100", ij.Handled())
	}
	if src.Events() < ij.Handled() {
		t.Fatalf("events %d < handled %d", src.Events(), ij.Handled())
	}
	if len(ij.Latencies()) == 0 {
		t.Fatal("no latencies recorded")
	}
	for _, l := range ij.Latencies() {
		if l < 0 {
			t.Fatal("negative latency")
		}
	}
	_ = it
}

func TestPathfinderScenarioUnderFixedPriorities(t *testing.T) {
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	p := workload.NewPathfinder(k, workload.DefaultPathfinderConfig())
	lp.SetRealtime(p.Bus, 30)
	lp.SetRealtime(p.Comms, 20)
	lp.SetRealtime(p.Weather, 10)
	lp.SetRealtime(p.Watchdog, 99)
	k.Start()
	eng.RunFor(30 * sim.Second)
	k.Stop()
	if p.Resets() == 0 {
		t.Fatal("no watchdog resets: priority inversion did not manifest")
	}
	if p.BusCompletions() == 0 {
		t.Fatal("bus task never completed at all")
	}
	if len(p.ResetTimes()) != p.Resets() {
		t.Fatal("reset times out of sync with count")
	}
}

func TestSpinWaitLivelockUnderFixedPriorities(t *testing.T) {
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	s := workload.NewSpinWait(k, 40_000, 2_000_000)
	lp.SetRealtime(s.Spinner, 50)
	k.Start()
	eng.RunFor(5 * sim.Second)
	k.Stop()
	if s.Delivered() != 0 {
		t.Fatalf("server delivered %d inputs past an RT spinner; expected livelock", s.Delivered())
	}
	if s.Consumed() != 0 {
		t.Fatalf("spinner consumed %d inputs from nowhere", s.Consumed())
	}
}

func TestSpinWaitFlowsUnderRoundRobin(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(5*sim.Millisecond))
	s := workload.NewSpinWait(k, 40_000, 2_000_000)
	k.Start()
	eng.RunFor(5 * sim.Second)
	k.Stop()
	if s.Delivered() == 0 || s.Consumed() == 0 {
		t.Fatalf("no flow under fair scheduling: delivered=%d consumed=%d", s.Delivered(), s.Consumed())
	}
	// Most delivered inputs should be observed (flag may coalesce a few).
	if float64(s.Consumed()) < 0.5*float64(s.Delivered()) {
		t.Fatalf("spinner observed %d of %d inputs", s.Consumed(), s.Delivered())
	}
}

func TestPulseTrainAveragesAboveBase(t *testing.T) {
	base := 50.0
	r := workload.PulseTrain(base, ms(1000), []sim.Duration{sim.Duration(ms(1000))}, sim.Duration(ms(1000)))
	var sum float64
	n := 0
	for at := sim.Time(0); at < ms(10_000); at = at.Add(sim.Duration(ms(10))) {
		v := r(at)
		if v != base && v != 2*base {
			t.Fatalf("rate %v is neither base nor double", v)
		}
		sum += v
		n++
	}
	mean := sum / float64(n)
	if mean <= base || mean >= 2*base {
		t.Fatalf("mean rate %v outside (base, 2·base)", mean)
	}
	if math.IsNaN(mean) {
		t.Fatal("NaN rate")
	}
}
