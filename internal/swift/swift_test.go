package swift

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGain(t *testing.T) {
	g := &Gain{K: 2.5}
	if out := g.Step(4, 0.01); out != 10 {
		t.Fatalf("Gain.Step = %v", out)
	}
	g.Reset() // must not panic or change behavior
	if out := g.Step(-2, 0.01); out != -5 {
		t.Fatalf("Gain.Step = %v", out)
	}
}

func TestIntegratorAccumulates(t *testing.T) {
	i := &Integrator{}
	var out float64
	for k := 0; k < 100; k++ {
		out = i.Step(1, 0.01) // integrate 1 for 1 second
	}
	if math.Abs(out-1) > 1e-9 {
		t.Fatalf("∫1 dt over 1s = %v, want 1", out)
	}
	i.Reset()
	if i.Sum() != 0 {
		t.Fatal("Reset did not clear integrator")
	}
}

func TestIntegratorAntiWindup(t *testing.T) {
	i := &Integrator{Limit: 0.5}
	for k := 0; k < 1000; k++ {
		i.Step(10, 0.01)
	}
	if i.Sum() != 0.5 {
		t.Fatalf("clamped sum = %v, want 0.5", i.Sum())
	}
	for k := 0; k < 2000; k++ {
		i.Step(-10, 0.01)
	}
	if i.Sum() != -0.5 {
		t.Fatalf("clamped sum = %v, want -0.5", i.Sum())
	}
}

func TestDifferentiator(t *testing.T) {
	d := &Differentiator{}
	if out := d.Step(5, 0.01); out != 0 {
		t.Fatalf("first sample derivative = %v, want 0", out)
	}
	if out := d.Step(6, 0.01); math.Abs(out-100) > 1e-9 {
		t.Fatalf("d/dt = %v, want 100", out)
	}
	if out := d.Step(6, 0.01); out != 0 {
		t.Fatalf("flat derivative = %v, want 0", out)
	}
	d.Reset()
	if out := d.Step(100, 0.01); out != 0 {
		t.Fatalf("post-reset derivative = %v, want 0", out)
	}
}

func TestLowPassConvergesToStep(t *testing.T) {
	l := &LowPass{Tau: 0.1}
	l.Step(0, 0.01)
	var out float64
	for k := 0; k < 200; k++ { // 2 seconds = 20 time constants
		out = l.Step(1, 0.01)
	}
	if math.Abs(out-1) > 1e-6 {
		t.Fatalf("low-pass settled at %v, want 1", out)
	}
}

func TestLowPassFirstSamplePassesThrough(t *testing.T) {
	l := &LowPass{Tau: 0.1}
	if out := l.Step(42, 0.01); out != 42 {
		t.Fatalf("first sample = %v, want 42 (no initial transient)", out)
	}
}

func TestLowPassSmoothes(t *testing.T) {
	l := &LowPass{Tau: 0.5}
	l.Step(0, 0.01)
	// Alternate +1/-1: output should stay near 0, well inside [-1,1].
	var maxAbs float64
	in := 1.0
	for k := 0; k < 1000; k++ {
		out := l.Step(in, 0.01)
		in = -in
		if a := math.Abs(out); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0.1 {
		t.Fatalf("low-pass output reached %v on alternating input", maxAbs)
	}
}

func TestClamp(t *testing.T) {
	c := &Clamp{Lo: -1, Hi: 1}
	cases := [][2]float64{{5, 1}, {-5, -1}, {0.5, 0.5}, {-1, -1}, {1, 1}}
	for _, tc := range cases {
		if out := c.Step(tc[0], 0.01); out != tc[1] {
			t.Fatalf("Clamp(%v) = %v, want %v", tc[0], out, tc[1])
		}
	}
}

func TestDeadband(t *testing.T) {
	d := &Deadband{Width: 0.1}
	if out := d.Step(0.05, 0.01); out != 0 {
		t.Fatalf("inside band = %v, want 0", out)
	}
	if out := d.Step(-0.05, 0.01); out != 0 {
		t.Fatalf("inside band = %v, want 0", out)
	}
	if out := d.Step(0.2, 0.01); out != 0.2 {
		t.Fatalf("outside band = %v, want passthrough", out)
	}
}

func TestPipelineComposition(t *testing.T) {
	p := NewPipeline(&Gain{K: 2}, &Clamp{Lo: 0, Hi: 5})
	if out := p.Step(10, 0.01); out != 5 {
		t.Fatalf("pipeline = %v, want 5 (gain then clamp)", out)
	}
	if out := p.Step(1, 0.01); out != 2 {
		t.Fatalf("pipeline = %v, want 2", out)
	}
}

func TestPipelineReset(t *testing.T) {
	i := &Integrator{}
	p := NewPipeline(i, &Gain{K: 1})
	p.Step(1, 1)
	p.Reset()
	if i.Sum() != 0 {
		t.Fatal("pipeline reset did not propagate")
	}
}

func TestSumOfParallel(t *testing.T) {
	s := NewSum(&Gain{K: 1}, &Gain{K: 2}, &Gain{K: 3})
	if out := s.Step(1, 0.01); out != 6 {
		t.Fatalf("sum = %v, want 6", out)
	}
}

func TestFuncAdapter(t *testing.T) {
	double := Func(func(in, _ float64) float64 { return 2 * in })
	if out := double.Step(3, 0); out != 6 {
		t.Fatalf("Func.Step = %v", out)
	}
	double.Reset() // must be callable
}

// Property: integrating then differentiating a bounded signal approximately
// recovers it (up to the one-sample lag of the backward difference).
func TestPropertyIntegrateDifferentiate(t *testing.T) {
	f := func(samples []int8) bool {
		if len(samples) < 3 {
			return true
		}
		if len(samples) > 64 {
			samples = samples[:64]
		}
		const dt = 0.01
		i := &Integrator{}
		d := &Differentiator{}
		// Prime the differentiator with the first integrated sample.
		d.Step(i.Step(float64(samples[0]), dt), dt)
		for _, s := range samples[1:] {
			in := float64(s)
			got := d.Step(i.Step(in, dt), dt)
			if math.Abs(got-in) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp output is always within bounds and idempotent.
func TestPropertyClampBounds(t *testing.T) {
	c := &Clamp{Lo: -2, Hi: 3}
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		out := c.Step(v, 0)
		if out < -2 || out > 3 {
			return false
		}
		return c.Step(out, 0) == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
