// Package swift is a software feedback toolkit in the spirit of SWiFT
// (Goel, Steere, Pu, Walpole — OGI CSE-98-009), the toolkit the paper's
// controller is implemented with. A controller is a *circuit*: a directed
// composition of small stateful components, each transforming one sample per
// control interval. The paper's PID pressure filter G is assembled from
// these parts (see package pid).
package swift

// Component is one stage of a feedback circuit. Step consumes the input
// sample for the current control interval (dt seconds since the previous
// step) and produces the output sample.
type Component interface {
	// Step advances the component one control interval.
	Step(in, dt float64) float64
	// Reset returns the component to its initial state.
	Reset()
}

// Func adapts a stateless function to a Component.
type Func func(in, dt float64) float64

// Step invokes the function.
func (f Func) Step(in, dt float64) float64 { return f(in, dt) }

// Reset is a no-op for stateless components.
func (Func) Reset() {}

// Gain multiplies the input by a constant K.
type Gain struct{ K float64 }

// Step returns K·in.
func (g *Gain) Step(in, _ float64) float64 { return g.K * in }

// Reset is a no-op: Gain is stateless.
func (g *Gain) Reset() {}

// Integrator accumulates the input over time (rectangular rule). Limit, if
// positive, clamps the accumulated magnitude: this is the classic
// anti-windup guard that keeps the controller from banking unbounded error
// while actuation is saturated. LimitLo/LimitHi, when set (LimitHi >
// LimitLo), impose an asymmetric range instead — a proportion allocator
// wants plenty of positive authority but almost no negative bank, or a
// long queue-empty stretch would delay the response to the next burst.
type Integrator struct {
	Limit            float64
	LimitLo, LimitHi float64
	sum              float64
}

// Step adds in·dt to the accumulator and returns it.
func (i *Integrator) Step(in, dt float64) float64 {
	i.sum += in * dt
	lo, hi := -i.Limit, i.Limit
	if i.LimitHi > i.LimitLo {
		lo, hi = i.LimitLo, i.LimitHi
	} else if i.Limit <= 0 {
		return i.sum
	}
	if i.sum > hi {
		i.sum = hi
	} else if i.sum < lo {
		i.sum = lo
	}
	return i.sum
}

// Reset zeroes the accumulator.
func (i *Integrator) Reset() { i.sum = 0 }

// Sum returns the current accumulated value without advancing the component.
func (i *Integrator) Sum() float64 { return i.sum }

// Differentiator emits the time-derivative of its input using a first-order
// backward difference.
type Differentiator struct {
	prev    float64
	started bool
}

// Step returns (in − prev)/dt, or 0 on the first sample.
func (d *Differentiator) Step(in, dt float64) float64 {
	if !d.started || dt <= 0 {
		d.prev = in
		d.started = true
		return 0
	}
	out := (in - d.prev) / dt
	d.prev = in
	return out
}

// Reset forgets the previous sample.
func (d *Differentiator) Reset() { d.prev = 0; d.started = false }

// LowPass is a single-pole exponential low-pass filter with time constant
// Tau (seconds). The paper notes a "suitable low-pass filter" lets the
// controller sample fast while staying smooth (§4.1).
type LowPass struct {
	Tau     float64
	state   float64
	started bool
}

// Step filters the input.
func (l *LowPass) Step(in, dt float64) float64 {
	if !l.started {
		l.state = in
		l.started = true
		return in
	}
	if l.Tau <= 0 {
		l.state = in
		return in
	}
	alpha := dt / (l.Tau + dt)
	l.state += alpha * (in - l.state)
	return l.state
}

// Reset forgets the filter state.
func (l *LowPass) Reset() { l.state = 0; l.started = false }

// Clamp limits the input to [Lo, Hi].
type Clamp struct{ Lo, Hi float64 }

// Step returns in clamped to [Lo, Hi].
func (c *Clamp) Step(in, _ float64) float64 {
	if in < c.Lo {
		return c.Lo
	}
	if in > c.Hi {
		return c.Hi
	}
	return in
}

// Reset is a no-op: Clamp is stateless.
func (c *Clamp) Reset() {}

// Deadband passes the input through unless its magnitude is below Width, in
// which case it emits zero. Useful to stop actuation chatter around the set
// point.
type Deadband struct{ Width float64 }

// Step applies the dead band.
func (d *Deadband) Step(in, _ float64) float64 {
	if in > -d.Width && in < d.Width {
		return 0
	}
	return in
}

// Reset is a no-op: Deadband is stateless.
func (d *Deadband) Reset() {}

// Pipeline runs components in sequence, feeding each one's output to the
// next.
type Pipeline struct{ Stages []Component }

// NewPipeline builds a pipeline from the given stages.
func NewPipeline(stages ...Component) *Pipeline { return &Pipeline{Stages: stages} }

// Step threads the sample through every stage.
func (p *Pipeline) Step(in, dt float64) float64 {
	out := in
	for _, s := range p.Stages {
		out = s.Step(out, dt)
	}
	return out
}

// Reset resets every stage.
func (p *Pipeline) Reset() {
	for _, s := range p.Stages {
		s.Reset()
	}
}

// SumOf feeds the same input to several components and sums their outputs —
// the parallel composition used to build a PID from P, I, and D legs.
type SumOf struct{ Terms []Component }

// NewSum builds a parallel sum of the given terms.
func NewSum(terms ...Component) *SumOf { return &SumOf{Terms: terms} }

// Step feeds in to every term and returns the sum of outputs.
func (s *SumOf) Step(in, dt float64) float64 {
	var out float64
	for _, c := range s.Terms {
		out += c.Step(in, dt)
	}
	return out
}

// Reset resets every term.
func (s *SumOf) Reset() {
	for _, c := range s.Terms {
		c.Reset()
	}
}
