package baseline

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Scheduling classes of the Linux 2.0 scheduler.
const (
	// SchedOther is the default time-sharing class with counter decay.
	SchedOther = iota
	// SchedFIFO is the fixed real-time class: runs to completion or block,
	// strictly above every SchedOther thread. This is the class whose
	// deployment the paper calls out ("the recent deployment of fixed
	// real-time priorities in systems such as Linux and Windows NT").
	SchedFIFO
)

// linuxState is the per-thread state of the Linux policy.
type linuxState struct {
	class int
	// priority is the time-sharing priority in ticks (Linux 2.0's
	// p->priority): both the counter refill amount and the goodness boost.
	priority int64
	// counter is the remaining quantum in ticks (p->counter).
	counter int64
	// rtprio orders SchedFIFO threads among themselves.
	rtprio int
	// consumed accumulates partial-tick run time until a full tick can be
	// charged against counter.
	consumed sim.Duration
	runnable bool
}

// Linux emulates the Linux 2.0.35 scheduler the paper modified: one run
// queue, goodness-based selection, counter decay with epoch recalculation
// (the classic multilevel feedback behavior), nice values, and fixed
// real-time priorities layered above the time-sharing class.
type Linux struct {
	k *kernel.Kernel
	// DefaultPriority is the counter refill in ticks for new threads.
	// Linux 2.0's DEF_PRIORITY was 20 ticks of 10 ms (200 ms); with the
	// prototype's 1 ms tick that is 200 ticks.
	DefaultPriority int64
	// runnable holds one run queue per CPU; counters and priorities stay
	// global (the epoch recalculation sweeps every thread, as Linux did).
	runnable    [][]*kernel.Thread
	threads     []*kernel.Thread
	needResched []bool
}

// NewLinux returns a Linux-style goodness policy.
func NewLinux() *Linux {
	return &Linux{DefaultPriority: 200}
}

// Name implements kernel.Policy.
func (p *Linux) Name() string { return "linux-goodness" }

// Attach implements kernel.Policy.
func (p *Linux) Attach(k *kernel.Kernel) {
	p.k = k
	p.runnable = make([][]*kernel.Thread, k.NumCPUs())
	p.needResched = make([]bool, k.NumCPUs())
}

func state(t *kernel.Thread) *linuxState { return t.Sched.(*linuxState) }

// AddThread implements kernel.Policy.
func (p *Linux) AddThread(t *kernel.Thread, now sim.Time) {
	st := &linuxState{class: SchedOther, priority: p.DefaultPriority}
	st.counter = st.priority
	t.Sched = st
	p.threads = append(p.threads, t)
}

// RemoveThread implements kernel.Policy.
func (p *Linux) RemoveThread(t *kernel.Thread, now sim.Time) {
	for i, r := range p.threads {
		if r == t {
			copy(p.threads[i:], p.threads[i+1:])
			p.threads[len(p.threads)-1] = nil // keep the exited thread unreachable
			p.threads = p.threads[:len(p.threads)-1]
			return
		}
	}
}

// SetNice adjusts a time-sharing thread's priority the way nice does:
// positive nice lowers priority. The mapping compresses nice −20..19 onto
// a priority multiplier, mirroring Linux 2.0's priority = DEF_PRIORITY +
// 10·nice/… behavior loosely but monotonically.
func (p *Linux) SetNice(t *kernel.Thread, nice int) {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	st := state(t)
	st.priority = p.DefaultPriority - int64(nice)*p.DefaultPriority/20
	if st.priority < 1 {
		st.priority = 1
	}
	if st.counter > st.priority {
		st.counter = st.priority
	}
}

// SetRealtime moves a thread into the fixed-priority SchedFIFO class.
func (p *Linux) SetRealtime(t *kernel.Thread, rtprio int) {
	st := state(t)
	st.class = SchedFIFO
	st.rtprio = rtprio
}

// goodness mirrors Linux 2.0: real-time threads get 1000+rtprio, putting
// them above every time-sharing thread; time-sharing threads score
// counter (+priority when they still have quantum left); zero when spent.
func (p *Linux) goodness(t *kernel.Thread) int64 {
	st := state(t)
	if st.class == SchedFIFO {
		return 1_000_000 + int64(st.rtprio)
	}
	if st.counter <= 0 {
		return 0
	}
	return st.counter + st.priority
}

// Enqueue implements kernel.Policy.
func (p *Linux) Enqueue(t *kernel.Thread, now sim.Time) {
	st := state(t)
	if st.runnable {
		return
	}
	st.runnable = true
	p.runnable[t.CPU()] = append(p.runnable[t.CPU()], t)
	if cur := p.k.CurrentOn(t.CPU()); cur != nil && p.goodness(t) > p.goodness(cur) {
		p.needResched[t.CPU()] = true
	}
}

// Dequeue implements kernel.Policy.
func (p *Linux) Dequeue(t *kernel.Thread, now sim.Time) {
	st := state(t)
	if !st.runnable {
		return
	}
	st.runnable = false
	q := p.runnable[t.CPU()]
	for i, r := range q {
		if r == t {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil // clear the vacated tail slot
			p.runnable[t.CPU()] = q[:len(q)-1]
			return
		}
	}
}

// Pick implements kernel.Policy: highest goodness on the CPU's queue wins;
// when every runnable time-sharing thread there has exhausted its counter,
// recalculate all counters (the epoch boundary of the multilevel feedback
// scheduler): counter = counter/2 + priority.
func (p *Linux) Pick(cpu int, now sim.Time) *kernel.Thread {
	if len(p.runnable[cpu]) == 0 {
		return nil
	}
	best := p.selectBest(cpu)
	if best != nil {
		return best
	}
	// Epoch: every runnable thread spent. Blocked threads keep half their
	// counter, rewarding interactive behavior exactly as Linux did.
	for _, t := range p.threads {
		st := state(t)
		st.counter = st.counter/2 + st.priority
	}
	return p.selectBest(cpu)
}

// Steal implements kernel.Policy: hand over the highest-goodness
// migratable thread on the victim's queue (first-best in queue order, like
// the dispatch scan).
func (p *Linux) Steal(from int, now sim.Time) *kernel.Thread {
	cur := p.k.CurrentOn(from)
	var best *kernel.Thread
	var bestG int64
	for _, t := range p.runnable[from] {
		if t == cur || t.Affinity() != kernel.AffinityAny {
			continue
		}
		if g := p.goodness(t); best == nil || g > bestG {
			best, bestG = t, g
		}
	}
	if best != nil {
		p.Dequeue(best, now)
	}
	return best
}

func (p *Linux) selectBest(cpu int) *kernel.Thread {
	var best *kernel.Thread
	var bestG int64
	for _, t := range p.runnable[cpu] {
		if g := p.goodness(t); g > bestG {
			best, bestG = t, g
		}
	}
	return best
}

// TimeSlice implements kernel.Policy: real-time threads run until they
// block; time-sharing threads run out their counter.
func (p *Linux) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	st := state(t)
	if st.class == SchedFIFO {
		return sim.Duration(1 << 62)
	}
	if st.counter <= 0 {
		// Spent; Pick recalculates at the next epoch. One tick keeps the
		// machine moving if we are forced to run anyway.
		return p.k.Config().TickInterval
	}
	return sim.Duration(st.counter)*p.k.Config().TickInterval - st.consumed
}

// Charge implements kernel.Policy: burn whole ticks off the counter.
func (p *Linux) Charge(t *kernel.Thread, cpu int, ran sim.Duration, now sim.Time) bool {
	st := state(t)
	if st.class == SchedFIFO {
		return false
	}
	st.consumed += ran
	tick := p.k.Config().TickInterval
	for st.consumed >= tick {
		st.consumed -= tick
		if st.counter > 0 {
			st.counter--
		}
	}
	return st.counter <= 0
}

// Tick implements kernel.Policy.
func (p *Linux) Tick(cpu int, now sim.Time) bool {
	r := p.needResched[cpu]
	p.needResched[cpu] = false
	return r
}

// WakePreempts implements kernel.Policy: strictly higher goodness preempts,
// which is how the prototype's do_timers behaves.
func (p *Linux) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return p.goodness(woken) > p.goodness(current)
}

// Runnable returns the total run-queue length over all CPUs, for tests.
func (p *Linux) Runnable() int {
	n := 0
	for _, q := range p.runnable {
		n += len(q)
	}
	return n
}
