package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestStrideProportional(t *testing.T) {
	eng := sim.NewEngine()
	st := baseline.NewStride(10 * sim.Millisecond)
	k := kernel.New(eng, kernel.DefaultConfig(), st)
	a := k.Spawn("a", hog(400_000))
	b := k.Spawn("b", hog(400_000))
	st.SetTickets(a, 300)
	st.SetTickets(b, 100)
	k.Start()
	eng.RunFor(10 * sim.Second)
	k.Stop()
	ratio := a.CPUTime().Seconds() / b.CPUTime().Seconds()
	// Stride is deterministic: the 3:1 ratio should be tight.
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("ticket ratio 3:1 gave CPU ratio %.3f", ratio)
	}
}

func TestStrideLowerVarianceThanLottery(t *testing.T) {
	measure := func(policy kernel.Policy, setTickets func(t *kernel.Thread, n int64)) float64 {
		eng := sim.NewEngine()
		k := kernel.New(eng, kernel.DefaultConfig(), policy)
		a := k.Spawn("a", hog(400_000))
		b := k.Spawn("b", hog(400_000))
		setTickets(a, 500)
		setTickets(b, 500)
		s := metrics.NewSeries("share")
		var last sim.Duration
		metrics.Sample(eng, 100*sim.Millisecond, sim.Time(10*sim.Second), func(now sim.Time) {
			cur := a.CPUTime()
			s.Add(now, (cur-last).Seconds()/0.1)
			last = cur
		})
		k.Start()
		eng.RunFor(10 * sim.Second)
		k.Stop()
		return metrics.StdDev(s.Values())
	}
	lot := baseline.NewLottery(10*sim.Millisecond, 5)
	stdLottery := measure(lot, lot.SetTickets)
	str := baseline.NewStride(10 * sim.Millisecond)
	stdStride := measure(str, str.SetTickets)
	if stdStride >= stdLottery {
		t.Fatalf("stride std %.4f not below lottery std %.4f", stdStride, stdLottery)
	}
}

func TestStrideSleeperCannotBankCredit(t *testing.T) {
	eng := sim.NewEngine()
	st := baseline.NewStride(10 * sim.Millisecond)
	k := kernel.New(eng, kernel.DefaultConfig(), st)
	// Sleeps 900ms, then wants the CPU. Without the rejoin rule it would
	// monopolize the machine for its banked pass.
	phase := 0
	sleeper := k.Spawn("sleeper", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase == 1 {
			return kernel.OpSleep{D: 900 * sim.Millisecond}
		}
		return kernel.OpCompute{Cycles: 400_000}
	}))
	worker := k.Spawn("worker", hog(400_000))
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()
	// After waking at 0.9s, the sleeper shares 50/50 for 1.1s ≈ 0.55s; it
	// must not have much more than that.
	if sleeper.CPUTime() > 700*sim.Millisecond {
		t.Fatalf("sleeper banked credit: %v", sleeper.CPUTime())
	}
	if worker.CPUTime() < 1200*sim.Millisecond {
		t.Fatalf("worker got %v, want ≈1.45s", worker.CPUTime())
	}
}

func TestStrideTicketValidation(t *testing.T) {
	eng := sim.NewEngine()
	st := baseline.NewStride(0)
	k := kernel.New(eng, kernel.DefaultConfig(), st)
	th := k.Spawn("x", hog(1000))
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive tickets accepted")
		}
	}()
	st.SetTickets(th, -1)
}

// TestStridePassHeapUnderChurn stresses the indexed pass heap: sleepers
// leave and rejoin at the minimum pass constantly, while two CPU-bound
// threads with 3:1 tickets must still split the CPU 3:1.
func TestStridePassHeapUnderChurn(t *testing.T) {
	eng := sim.NewEngine()
	str := baseline.NewStride(sim.Millisecond)
	k := kernel.New(eng, kernel.DefaultConfig(), str)
	for i := 0; i < 40; i++ {
		phase := 0
		k.Spawn("churn", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
			phase++
			if phase%2 == 1 {
				return kernel.OpCompute{Cycles: 50_000}
			}
			return kernel.OpSleep{D: 2 * sim.Millisecond}
		}))
	}
	a := k.Spawn("a", hog(400_000))
	b := k.Spawn("b", hog(400_000))
	str.SetTickets(a, 300)
	str.SetTickets(b, 100)
	k.Start()
	eng.RunFor(20 * sim.Second)
	k.Stop()
	ratio := a.CPUTime().Seconds() / b.CPUTime().Seconds()
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("3:1 tickets gave CPU ratio %.2f under churn", ratio)
	}
}
