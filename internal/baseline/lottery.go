package baseline

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// lotteryState is the per-thread state of the lottery policy.
type lotteryState struct {
	tickets int64
	used    sim.Duration
	// slot is the thread's position in the drawing order (-1 when not
	// runnable). Slots are handed out in enqueue order, so ascending slot
	// equals the legacy runnable-slice order and a draw walks the same
	// sequence the linear scan did.
	slot     int
	runnable bool
}

// Lottery implements lottery scheduling (Waldspurger & Weihl, OSDI 1994 —
// the paper's citation [21] for proportional-share allocation): each
// runnable thread holds tickets, and every quantum a uniformly random
// ticket picks the winner. Shares are proportional in expectation but
// noisy over short windows — the contrast the paper draws when it claims
// "lower variance in the amount of cycles allocated to a thread" for
// feedback-assigned reservations.
//
// The drawing is O(log n): ticket counts live in a Fenwick tree indexed
// by slot, and the winning ticket is found by binary descent over prefix
// sums. Because slots follow enqueue order, the winner for a given random
// draw is byte-identical to the legacy linear walk's.
type Lottery struct {
	k       *kernel.Kernel
	quantum sim.Duration
	rng     *sim.RNG
	current *kernel.Thread

	// fen is a 1-based Fenwick tree over ticket counts per slot; slots
	// holds the thread occupying each slot (nil after dequeue).
	fen      []int64
	slots    []*kernel.Thread
	nextSlot int
	live     int
	total    int64
}

// NewLottery returns a lottery scheduler with the given quantum and seed.
// A non-positive quantum defaults to 10 ms (a typical 1990s time slice).
func NewLottery(quantum sim.Duration, seed uint64) *Lottery {
	if quantum <= 0 {
		quantum = 10 * sim.Millisecond
	}
	return &Lottery{quantum: quantum, rng: sim.NewRNG(seed)}
}

// Name implements kernel.Policy.
func (p *Lottery) Name() string { return "lottery" }

// Attach implements kernel.Policy.
func (p *Lottery) Attach(k *kernel.Kernel) { p.k = k }

func lstate(t *kernel.Thread) *lotteryState { return t.Sched.(*lotteryState) }

// AddThread implements kernel.Policy; threads start with 100 tickets.
func (p *Lottery) AddThread(t *kernel.Thread, now sim.Time) {
	t.Sched = &lotteryState{tickets: 100, slot: -1}
}

// RemoveThread implements kernel.Policy.
func (p *Lottery) RemoveThread(t *kernel.Thread, now sim.Time) {}

// SetTickets assigns a thread's ticket count (must be positive).
func (p *Lottery) SetTickets(t *kernel.Thread, n int64) {
	if n <= 0 {
		panic("baseline: tickets must be positive")
	}
	st := lstate(t)
	if st.runnable {
		p.fenAdd(st.slot, n-st.tickets)
		p.total += n - st.tickets
	}
	st.tickets = n
}

// Tickets returns a thread's ticket count.
func (p *Lottery) Tickets(t *kernel.Thread) int64 { return lstate(t).tickets }

// Enqueue implements kernel.Policy.
func (p *Lottery) Enqueue(t *kernel.Thread, now sim.Time) {
	st := lstate(t)
	if st.runnable {
		return
	}
	st.runnable = true
	if p.nextSlot == len(p.slots) {
		if p.live*2 <= len(p.slots) && len(p.slots) >= 64 {
			p.compact()
		} else {
			p.pushLeaf()
		}
	}
	st.slot = p.nextSlot
	p.nextSlot++
	p.slots[st.slot] = t
	p.fenAdd(st.slot, st.tickets)
	p.total += st.tickets
	p.live++
}

// Dequeue implements kernel.Policy.
func (p *Lottery) Dequeue(t *kernel.Thread, now sim.Time) {
	st := lstate(t)
	if !st.runnable {
		return
	}
	st.runnable = false
	p.fenAdd(st.slot, -st.tickets)
	p.total -= st.tickets
	p.slots[st.slot] = nil
	st.slot = -1
	p.live--
	if p.current == t {
		p.current = nil
	}
}

// compact renumbers live slots densely in ascending (enqueue) order, so
// slot space stays O(live) even though every enqueue consumes a fresh
// slot. Relative order is preserved, which keeps draws identical.
func (p *Lottery) compact() {
	w := 0
	for r := 0; r < p.nextSlot; r++ {
		if t := p.slots[r]; t != nil {
			p.slots[w] = t
			lstate(t).slot = w
			w++
		}
	}
	for i := w; i < len(p.slots); i++ {
		p.slots[i] = nil
	}
	p.nextSlot = w
	p.rebuild()
}

// pushLeaf grows the slot space by one. The new Fenwick node at 1-based
// index i summarizes the range (i−lowbit(i), i]; with the new leaf itself
// zero, that is prefix(i−1) − prefix(i−lowbit(i)), computable from the
// existing tree in O(log n).
func (p *Lottery) pushLeaf() {
	if len(p.fen) == 0 {
		p.fen = append(p.fen, 0) // index 0 unused
	}
	p.slots = append(p.slots, nil)
	i := len(p.slots)
	p.fen = append(p.fen, p.prefix(i-1)-p.prefix(i-i&(-i)))
}

// prefix sums the tickets of 1-based tree indices 1..i (slots 0..i−1).
func (p *Lottery) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += p.fen[i]
	}
	return s
}

func (p *Lottery) rebuild() {
	for i := range p.fen {
		p.fen[i] = 0
	}
	for i := 0; i < p.nextSlot; i++ {
		if t := p.slots[i]; t != nil {
			p.fenAdd(i, lstate(t).tickets)
		}
	}
}

// fenAdd adds delta at slot (0-based) in the 1-based Fenwick tree.
func (p *Lottery) fenAdd(slot int, delta int64) {
	for i := slot + 1; i < len(p.fen); i += i & (-i) {
		p.fen[i] += delta
	}
}

// fenFind returns the thread at the smallest slot whose prefix ticket sum
// exceeds draw — exactly the thread the legacy linear walk would land on.
func (p *Lottery) fenFind(draw int64) *kernel.Thread {
	idx := 0
	// Largest power of two ≤ tree size.
	bit := 1
	for bit<<1 < len(p.fen) {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next < len(p.fen) && p.fen[next] <= draw {
			draw -= p.fen[next]
			idx = next
		}
	}
	if idx >= len(p.slots) {
		return nil
	}
	return p.slots[idx] // idx is 0-based slot (idx in tree = slot+1 passed)
}

// Pick implements kernel.Policy: hold a lottery. The winner of the
// previous drawing keeps the CPU until its quantum expires, so the drawing
// frequency is the quantum, not the dispatch rate.
func (p *Lottery) Pick(now sim.Time) *kernel.Thread {
	if p.live == 0 {
		p.current = nil
		return nil
	}
	if p.current != nil && lstate(p.current).runnable && lstate(p.current).used < p.quantum {
		return p.current
	}
	draw := p.rng.Int63n(p.total)
	t := p.fenFind(draw)
	if t == nil {
		// Unreachable: draw < total guarantees a live slot.
		for _, s := range p.slots {
			if s != nil {
				t = s
				break
			}
		}
	}
	if t != p.current && p.current != nil {
		lstate(p.current).used = 0
	}
	p.current = t
	lstate(t).used = 0
	return t
}

// TimeSlice implements kernel.Policy.
func (p *Lottery) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	rem := p.quantum - lstate(t).used
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Charge implements kernel.Policy: quantum expiry triggers a fresh lottery.
func (p *Lottery) Charge(t *kernel.Thread, ran sim.Duration, now sim.Time) bool {
	st := lstate(t)
	st.used += ran
	if st.used >= p.quantum {
		st.used = p.quantum // Pick redraws and resets
		return true
	}
	return false
}

// Tick implements kernel.Policy.
func (p *Lottery) Tick(now sim.Time) bool { return false }

// WakePreempts implements kernel.Policy: lottery winners are not preempted
// by wakeups; the woken thread joins the next drawing.
func (p *Lottery) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return false
}
