package baseline

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// lotteryState is the per-thread state of the lottery policy.
type lotteryState struct {
	tickets int64
	used    sim.Duration
	// slot is the thread's position in its CPU's drawing order (-1 when
	// not runnable). Slots are handed out in enqueue order, so ascending
	// slot equals the legacy runnable-slice order and a draw walks the
	// same sequence the linear scan did.
	slot     int
	runnable bool
}

// lotteryShard is one CPU's drawing state: a 1-based Fenwick tree over
// ticket counts per slot, the threads occupying the slots, and the winner
// of the last drawing.
type lotteryShard struct {
	fen      []int64
	slots    []*kernel.Thread
	nextSlot int
	live     int
	total    int64
	current  *kernel.Thread
}

// Lottery implements lottery scheduling (Waldspurger & Weihl, OSDI 1994 —
// the paper's citation [21] for proportional-share allocation): each
// runnable thread holds tickets, and every quantum a uniformly random
// ticket picks the winner. Shares are proportional in expectation but
// noisy over short windows — the contrast the paper draws when it claims
// "lower variance in the amount of cycles allocated to a thread" for
// feedback-assigned reservations.
//
// The drawing is O(log n): ticket counts live in a Fenwick tree indexed
// by slot, one tree per CPU (each CPU holds its own lottery over its own
// shard; the PRNG is shared, so the machine-wide draw sequence stays
// deterministic). Because slots follow enqueue order, the winner for a
// given random draw is byte-identical to the legacy linear walk's.
type Lottery struct {
	k       *kernel.Kernel
	quantum sim.Duration
	rng     *sim.RNG
	shards  []lotteryShard
}

// NewLottery returns a lottery scheduler with the given quantum and seed.
// A non-positive quantum defaults to 10 ms (a typical 1990s time slice).
func NewLottery(quantum sim.Duration, seed uint64) *Lottery {
	if quantum <= 0 {
		quantum = 10 * sim.Millisecond
	}
	return &Lottery{quantum: quantum, rng: sim.NewRNG(seed)}
}

// Name implements kernel.Policy.
func (p *Lottery) Name() string { return "lottery" }

// Attach implements kernel.Policy.
func (p *Lottery) Attach(k *kernel.Kernel) {
	p.k = k
	p.shards = make([]lotteryShard, k.NumCPUs())
}

func lstate(t *kernel.Thread) *lotteryState { return t.Sched.(*lotteryState) }

// AddThread implements kernel.Policy; threads start with 100 tickets.
func (p *Lottery) AddThread(t *kernel.Thread, now sim.Time) {
	t.Sched = &lotteryState{tickets: 100, slot: -1}
}

// RemoveThread implements kernel.Policy.
func (p *Lottery) RemoveThread(t *kernel.Thread, now sim.Time) {}

// SetTickets assigns a thread's ticket count (must be positive).
func (p *Lottery) SetTickets(t *kernel.Thread, n int64) {
	if n <= 0 {
		panic("baseline: tickets must be positive")
	}
	st := lstate(t)
	if st.runnable {
		sh := &p.shards[t.CPU()]
		sh.fenAdd(st.slot, n-st.tickets)
		sh.total += n - st.tickets
	}
	st.tickets = n
}

// Tickets returns a thread's ticket count.
func (p *Lottery) Tickets(t *kernel.Thread) int64 { return lstate(t).tickets }

// Enqueue implements kernel.Policy.
func (p *Lottery) Enqueue(t *kernel.Thread, now sim.Time) {
	st := lstate(t)
	if st.runnable {
		return
	}
	sh := &p.shards[t.CPU()]
	st.runnable = true
	if sh.nextSlot == len(sh.slots) {
		if sh.live*2 <= len(sh.slots) && len(sh.slots) >= 64 {
			sh.compact()
		} else {
			sh.pushLeaf()
		}
	}
	st.slot = sh.nextSlot
	sh.nextSlot++
	sh.slots[st.slot] = t
	sh.fenAdd(st.slot, st.tickets)
	sh.total += st.tickets
	sh.live++
}

// Dequeue implements kernel.Policy.
func (p *Lottery) Dequeue(t *kernel.Thread, now sim.Time) {
	st := lstate(t)
	if !st.runnable {
		return
	}
	sh := &p.shards[t.CPU()]
	st.runnable = false
	sh.fenAdd(st.slot, -st.tickets)
	sh.total -= st.tickets
	sh.slots[st.slot] = nil
	st.slot = -1
	sh.live--
	if sh.current == t {
		sh.current = nil
	}
}

// compact renumbers live slots densely in ascending (enqueue) order, so
// slot space stays O(live) even though every enqueue consumes a fresh
// slot. Relative order is preserved, which keeps draws identical.
func (sh *lotteryShard) compact() {
	w := 0
	for r := 0; r < sh.nextSlot; r++ {
		if t := sh.slots[r]; t != nil {
			sh.slots[w] = t
			lstate(t).slot = w
			w++
		}
	}
	for i := w; i < len(sh.slots); i++ {
		sh.slots[i] = nil
	}
	sh.nextSlot = w
	sh.rebuild()
}

// pushLeaf grows the slot space by one. The new Fenwick node at 1-based
// index i summarizes the range (i−lowbit(i), i]; with the new leaf itself
// zero, that is prefix(i−1) − prefix(i−lowbit(i)), computable from the
// existing tree in O(log n).
func (sh *lotteryShard) pushLeaf() {
	if len(sh.fen) == 0 {
		sh.fen = append(sh.fen, 0) // index 0 unused
	}
	sh.slots = append(sh.slots, nil)
	i := len(sh.slots)
	sh.fen = append(sh.fen, sh.prefix(i-1)-sh.prefix(i-i&(-i)))
}

// prefix sums the tickets of 1-based tree indices 1..i (slots 0..i−1).
func (sh *lotteryShard) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += sh.fen[i]
	}
	return s
}

func (sh *lotteryShard) rebuild() {
	for i := range sh.fen {
		sh.fen[i] = 0
	}
	for i := 0; i < sh.nextSlot; i++ {
		if t := sh.slots[i]; t != nil {
			sh.fenAdd(i, lstate(t).tickets)
		}
	}
}

// fenAdd adds delta at slot (0-based) in the 1-based Fenwick tree.
func (sh *lotteryShard) fenAdd(slot int, delta int64) {
	for i := slot + 1; i < len(sh.fen); i += i & (-i) {
		sh.fen[i] += delta
	}
}

// fenFind returns the thread at the smallest slot whose prefix ticket sum
// exceeds draw — exactly the thread the legacy linear walk would land on.
func (sh *lotteryShard) fenFind(draw int64) *kernel.Thread {
	idx := 0
	// Largest power of two ≤ tree size.
	bit := 1
	for bit<<1 < len(sh.fen) {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next < len(sh.fen) && sh.fen[next] <= draw {
			draw -= sh.fen[next]
			idx = next
		}
	}
	if idx >= len(sh.slots) {
		return nil
	}
	return sh.slots[idx] // idx is 0-based slot (idx in tree = slot+1 passed)
}

// Pick implements kernel.Policy: hold a lottery on the CPU's shard. The
// winner of the previous drawing keeps the CPU until its quantum expires,
// so the drawing frequency is the quantum, not the dispatch rate.
func (p *Lottery) Pick(cpu int, now sim.Time) *kernel.Thread {
	sh := &p.shards[cpu]
	if sh.live == 0 {
		sh.current = nil
		return nil
	}
	if sh.current != nil && lstate(sh.current).runnable && lstate(sh.current).used < p.quantum {
		return sh.current
	}
	draw := p.rng.Int63n(sh.total)
	t := sh.fenFind(draw)
	if t == nil {
		// Unreachable: draw < total guarantees a live slot.
		for _, s := range sh.slots {
			if s != nil {
				t = s
				break
			}
		}
	}
	if t != sh.current && sh.current != nil {
		lstate(sh.current).used = 0
	}
	sh.current = t
	lstate(t).used = 0
	return t
}

// Steal implements kernel.Policy: hand over the first migratable thread in
// the victim's slot order (enqueue order, like the legacy walk). The
// shard's reigning lottery winner is excluded along with the CPU's
// current occupant.
func (p *Lottery) Steal(from int, now sim.Time) *kernel.Thread {
	sh := &p.shards[from]
	if t := kernel.StealCandidate(sh.slots[:sh.nextSlot], p.k.CurrentOn(from), sh.current); t != nil {
		p.Dequeue(t, now)
		return t
	}
	return nil
}

// TimeSlice implements kernel.Policy.
func (p *Lottery) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	rem := p.quantum - lstate(t).used
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Charge implements kernel.Policy: quantum expiry triggers a fresh lottery.
func (p *Lottery) Charge(t *kernel.Thread, cpu int, ran sim.Duration, now sim.Time) bool {
	st := lstate(t)
	st.used += ran
	if st.used >= p.quantum {
		st.used = p.quantum // Pick redraws and resets
		return true
	}
	return false
}

// Tick implements kernel.Policy.
func (p *Lottery) Tick(cpu int, now sim.Time) bool { return false }

// WakePreempts implements kernel.Policy: lottery winners are not preempted
// by wakeups; the woken thread joins the next drawing.
func (p *Lottery) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return false
}
