package baseline

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// lotteryState is the per-thread state of the lottery policy.
type lotteryState struct {
	tickets  int64
	used     sim.Duration
	runnable bool
}

// Lottery implements lottery scheduling (Waldspurger & Weihl, OSDI 1994 —
// the paper's citation [21] for proportional-share allocation): each
// runnable thread holds tickets, and every quantum a uniformly random
// ticket picks the winner. Shares are proportional in expectation but
// noisy over short windows — the contrast the paper draws when it claims
// "lower variance in the amount of cycles allocated to a thread" for
// feedback-assigned reservations.
type Lottery struct {
	k        *kernel.Kernel
	quantum  sim.Duration
	rng      *sim.RNG
	runnable []*kernel.Thread
	current  *kernel.Thread
}

// NewLottery returns a lottery scheduler with the given quantum and seed.
// A non-positive quantum defaults to 10 ms (a typical 1990s time slice).
func NewLottery(quantum sim.Duration, seed uint64) *Lottery {
	if quantum <= 0 {
		quantum = 10 * sim.Millisecond
	}
	return &Lottery{quantum: quantum, rng: sim.NewRNG(seed)}
}

// Name implements kernel.Policy.
func (p *Lottery) Name() string { return "lottery" }

// Attach implements kernel.Policy.
func (p *Lottery) Attach(k *kernel.Kernel) { p.k = k }

func lstate(t *kernel.Thread) *lotteryState { return t.Sched.(*lotteryState) }

// AddThread implements kernel.Policy; threads start with 100 tickets.
func (p *Lottery) AddThread(t *kernel.Thread, now sim.Time) {
	t.Sched = &lotteryState{tickets: 100}
}

// RemoveThread implements kernel.Policy.
func (p *Lottery) RemoveThread(t *kernel.Thread, now sim.Time) {}

// SetTickets assigns a thread's ticket count (must be positive).
func (p *Lottery) SetTickets(t *kernel.Thread, n int64) {
	if n <= 0 {
		panic("baseline: tickets must be positive")
	}
	lstate(t).tickets = n
}

// Tickets returns a thread's ticket count.
func (p *Lottery) Tickets(t *kernel.Thread) int64 { return lstate(t).tickets }

// Enqueue implements kernel.Policy.
func (p *Lottery) Enqueue(t *kernel.Thread, now sim.Time) {
	st := lstate(t)
	if st.runnable {
		return
	}
	st.runnable = true
	p.runnable = append(p.runnable, t)
}

// Dequeue implements kernel.Policy.
func (p *Lottery) Dequeue(t *kernel.Thread, now sim.Time) {
	st := lstate(t)
	if !st.runnable {
		return
	}
	st.runnable = false
	for i, r := range p.runnable {
		if r == t {
			copy(p.runnable[i:], p.runnable[i+1:])
			p.runnable = p.runnable[:len(p.runnable)-1]
			return
		}
	}
	if p.current == t {
		p.current = nil
	}
}

// Pick implements kernel.Policy: hold a lottery. The winner of the
// previous drawing keeps the CPU until its quantum expires, so the drawing
// frequency is the quantum, not the dispatch rate.
func (p *Lottery) Pick(now sim.Time) *kernel.Thread {
	if len(p.runnable) == 0 {
		p.current = nil
		return nil
	}
	if p.current != nil && lstate(p.current).runnable && lstate(p.current).used < p.quantum {
		return p.current
	}
	var total int64
	for _, t := range p.runnable {
		total += lstate(t).tickets
	}
	draw := p.rng.Int63n(total)
	for _, t := range p.runnable {
		draw -= lstate(t).tickets
		if draw < 0 {
			if t != p.current {
				if p.current != nil {
					lstate(p.current).used = 0
				}
			}
			p.current = t
			lstate(t).used = 0
			return t
		}
	}
	return p.runnable[len(p.runnable)-1] // unreachable; satisfies the compiler
}

// TimeSlice implements kernel.Policy.
func (p *Lottery) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	rem := p.quantum - lstate(t).used
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Charge implements kernel.Policy: quantum expiry triggers a fresh lottery.
func (p *Lottery) Charge(t *kernel.Thread, ran sim.Duration, now sim.Time) bool {
	st := lstate(t)
	st.used += ran
	if st.used >= p.quantum {
		st.used = p.quantum // Pick redraws and resets
		return true
	}
	return false
}

// Tick implements kernel.Policy.
func (p *Lottery) Tick(now sim.Time) bool { return false }

// WakePreempts implements kernel.Policy: lottery winners are not preempted
// by wakeups; the woken thread joins the next drawing.
func (p *Lottery) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return false
}
