package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func TestLotteryProportionalInExpectation(t *testing.T) {
	eng := sim.NewEngine()
	lot := baseline.NewLottery(10*sim.Millisecond, 42)
	k := kernel.New(eng, kernel.DefaultConfig(), lot)
	a := k.Spawn("a", hog(400_000))
	b := k.Spawn("b", hog(400_000))
	lot.SetTickets(a, 300)
	lot.SetTickets(b, 100)
	k.Start()
	eng.RunFor(20 * sim.Second)
	k.Stop()

	ra := a.CPUTime().Seconds()
	rb := b.CPUTime().Seconds()
	ratio := ra / rb
	// 3:1 tickets → 3:1 CPU in expectation; allow lottery noise.
	if ratio < 2.3 || ratio > 3.9 {
		t.Fatalf("ticket ratio 3:1 gave CPU ratio %.2f (%.2fs/%.2fs)", ratio, ra, rb)
	}
}

func TestLotteryNoStarvation(t *testing.T) {
	eng := sim.NewEngine()
	lot := baseline.NewLottery(10*sim.Millisecond, 7)
	k := kernel.New(eng, kernel.DefaultConfig(), lot)
	small := k.Spawn("small", hog(400_000))
	big := k.Spawn("big", hog(400_000))
	lot.SetTickets(small, 10)
	lot.SetTickets(big, 990)
	k.Start()
	eng.RunFor(20 * sim.Second)
	k.Stop()
	if small.CPUTime() < 50*sim.Millisecond {
		t.Fatalf("small ticket holder effectively starved: %v", small.CPUTime())
	}
}

func TestLotteryDeterministicWithSeed(t *testing.T) {
	run := func() sim.Duration {
		eng := sim.NewEngine()
		lot := baseline.NewLottery(10*sim.Millisecond, 99)
		k := kernel.New(eng, kernel.DefaultConfig(), lot)
		a := k.Spawn("a", hog(400_000))
		k.Spawn("b", hog(400_000))
		k.Start()
		eng.RunFor(5 * sim.Second)
		k.Stop()
		return a.CPUTime()
	}
	if run() != run() {
		t.Fatal("same seed produced different schedules")
	}
}

func TestLotteryBlockedThreadsExcluded(t *testing.T) {
	eng := sim.NewEngine()
	lot := baseline.NewLottery(10*sim.Millisecond, 3)
	k := kernel.New(eng, kernel.DefaultConfig(), lot)
	// A sleeper holds most tickets but is almost never runnable.
	phase := 0
	sleeper := k.Spawn("sleeper", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase%2 == 1 {
			return kernel.OpSleep{D: 100 * sim.Millisecond}
		}
		return kernel.OpCompute{Cycles: 40_000}
	}))
	lot.SetTickets(sleeper, 10_000)
	worker := k.Spawn("worker", hog(400_000))
	k.Start()
	eng.RunFor(5 * sim.Second)
	k.Stop()
	if worker.CPUTime() < 4500*sim.Millisecond {
		t.Fatalf("worker got %v; sleeping tickets must not count", worker.CPUTime())
	}
}

func TestLotteryTicketValidation(t *testing.T) {
	eng := sim.NewEngine()
	lot := baseline.NewLottery(0, 1) // default quantum path too
	k := kernel.New(eng, kernel.DefaultConfig(), lot)
	th := k.Spawn("x", hog(1000))
	if lot.Tickets(th) != 100 {
		t.Fatalf("default tickets = %d, want 100", lot.Tickets(th))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive tickets accepted")
		}
	}()
	lot.SetTickets(th, 0)
}

// TestLotteryChurnExercisesSlotCompaction cycles many sleepers through the
// runnable set so enqueues burn through thousands of drawing slots: the
// Fenwick tree must compact without disturbing proportionality and the
// slot space must stay O(live threads).
func TestLotteryChurnExercisesSlotCompaction(t *testing.T) {
	eng := sim.NewEngine()
	lot := baseline.NewLottery(sim.Millisecond, 1234)
	k := kernel.New(eng, kernel.DefaultConfig(), lot)
	mk := func(name string) *kernel.Thread {
		phase := 0
		return k.Spawn(name, kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
			phase++
			if phase%2 == 1 {
				return kernel.OpCompute{Cycles: 100_000}
			}
			return kernel.OpSleep{D: 3 * sim.Millisecond}
		}))
	}
	var churners []*kernel.Thread
	for i := 0; i < 40; i++ {
		churners = append(churners, mk("churn"))
	}
	big := k.Spawn("big", hog(400_000))
	small := k.Spawn("small", hog(400_000))
	lot.SetTickets(big, 900)
	lot.SetTickets(small, 300)
	k.Start()
	eng.RunFor(20 * sim.Second)
	k.Stop()
	for _, th := range churners {
		if th.CPUTime() == 0 {
			t.Fatal("churner starved across slot compactions")
		}
	}
	ratio := big.CPUTime().Seconds() / small.CPUTime().Seconds()
	if ratio < 2.2 || ratio > 4.0 {
		t.Fatalf("3:1 tickets gave CPU ratio %.2f under slot churn", ratio)
	}
}

// TestLotteryTicketChangeWhileRunnable pins SetTickets' incremental
// Fenwick update for runnable threads.
func TestLotteryTicketChangeWhileRunnable(t *testing.T) {
	eng := sim.NewEngine()
	lot := baseline.NewLottery(10*sim.Millisecond, 5)
	k := kernel.New(eng, kernel.DefaultConfig(), lot)
	a := k.Spawn("a", hog(400_000))
	b := k.Spawn("b", hog(400_000))
	k.Start()
	eng.RunFor(sim.Second)
	// Flip the odds 1:1 → 9:1 mid-run, while both threads are runnable.
	lot.SetTickets(a, 900)
	lot.SetTickets(b, 100)
	beforeA, beforeB := a.CPUTime(), b.CPUTime()
	eng.RunFor(20 * sim.Second)
	k.Stop()
	da := (a.CPUTime() - beforeA).Seconds()
	db := (b.CPUTime() - beforeB).Seconds()
	if ratio := da / db; ratio < 5 {
		t.Fatalf("9:1 tickets after change gave CPU ratio %.2f", ratio)
	}
}
